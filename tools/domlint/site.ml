(* A "site" is one module-toplevel binding that owns ambient mutable
   state: a value that exists once per process (or once per domain) and
   is reachable from every compile that runs in it. Sites are what the
   [@@domain_safety] attribute classifies and what the DS0xx checks
   gate. *)

type classification =
  | Frozen_after_init
      (* written only during module initialization (single-threaded, before
         any [Domain.spawn]); all later access is read-only *)
  | Domain_local
      (* one instance per domain via [Domain.DLS]; never shared, so writes
         cannot race (memo tables re-warm per domain) *)
  | Guarded
      (* shared across domains behind a mutex bundled in the same binding *)
  | Reset_per_run
      (* process-wide cache cleared by an explicit [reset_*] entry point;
         single-domain only until migrated to [Domain_local]/[Guarded] *)
  | Unsafe of string
      (* known-unsafe under domains, with the reason; a TODO the gate keeps
         visible instead of letting it hide *)

let classification_to_string = function
  | Frozen_after_init -> "frozen_after_init"
  | Domain_local -> "domain_local"
  | Guarded -> "guarded"
  | Reset_per_run -> "reset_per_run"
  | Unsafe reason -> Printf.sprintf "unsafe %S" reason

(* What the scanner recognised inside the binding's evaluated-at-init
   region (or, for [Unsafe_stdlib], anywhere in the binding). *)
type kind =
  | Ref_cell  (* ref ... *)
  | Table  (* Hashtbl/Queue/Stack/Weak.create, …  *)
  | Buffer_like  (* Buffer.create *)
  | Array_value  (* Array.make / [| … |] / Bytes.create *)
  | Mutable_record  (* record literal with a known-mutable field *)
  | Lazy_block  (* toplevel lazy: forcing is a write, and racy forcing raises *)
  | Dls_slot  (* Domain.DLS.new_key / Domain_safe.Local.make *)
  | Guard_slot  (* Mutex.create / Domain_safe.Guarded.make *)
  | Unsafe_stdlib of string
      (* global-effect stdlib entry point: Random.self_init, global Format
         state, Printexc.register_printer, … *)

let kind_to_string = function
  | Ref_cell -> "ref"
  | Table -> "table"
  | Buffer_like -> "buffer"
  | Array_value -> "array"
  | Mutable_record -> "mutable-record"
  | Lazy_block -> "lazy"
  | Dls_slot -> "dls-slot"
  | Guard_slot -> "guard-slot"
  | Unsafe_stdlib what -> Printf.sprintf "stdlib:%s" what

type t = {
  file : string;
  line : int;
  binding : string;  (* dotted path inside the file, e.g. "Cache.tbl" *)
  kinds : kind list;  (* non-empty, deduplicated, scan order *)
  classification : (classification, string) result option;
      (* [None]: no attribute; [Some (Error msg)]: malformed payload *)
  escapes : bool;  (* exported through the .mli (or no .mli exists) *)
  has_table_anywhere : bool;
      (* a table allocation occurs anywhere in the binding, including
         behind function/lazy/DLS-init bodies — what DS020 keys on *)
}

let has_kind k t = List.mem k t.kinds
