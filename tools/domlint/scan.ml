(* Parsetree scan for ambient mutable state.

   One file at a time: parse the .ml with compiler-libs
   ([Parse.implementation]), walk every module-toplevel value binding
   (including bindings inside toplevel [module M = struct … end]), and
   record a {!Site.t} for each binding whose *evaluated-at-init* region
   allocates mutable state. Expressions under [fun]/[function]/[lazy]
   run per call, not at module init, so the walker switches to a
   "later" mode there and only keeps looking for the hard-unsafe stdlib
   calls (global PRNG seeding, global formatter mutation) that are
   wrong whenever they run.

   The scan is purely syntactic — no typing pass — so it recognises
   the standard allocation spellings ([ref], [Hashtbl.create],
   [Array.make], [\[| … |\]], record literals with fields declared
   [mutable] in the same file, [lazy], [Domain.DLS.new_key],
   [Domain_safe.Local.make], [Mutex.create]) rather than chasing
   aliases. That is the point: the attribute discipline keeps ambient
   state in these recognisable forms, and anything cleverer fails the
   gate until it is rewritten into one of them. *)

module SS = Set.Make (String)

type intf = No_intf | Vals of SS.t

type file_result = {
  sites : Site.t list;
  (* toplevel [reset_*] function name -> idents its body references *)
  resets : (string * SS.t) list;
}

let last_of_longident li = Longident.last li

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_longident p @ [ s ]
  | Longident.Lapply (a, _) -> flatten_longident a

(* ---- what a call allocates ---------------------------------------- *)

(* (module, function) suffixes that build a fresh mutable container *)
let call_site path =
  match List.rev (flatten_longident path) with
  | [ "ref" ] -> Some Site.Ref_cell
  | "create" :: m :: _ when m = "Hashtbl" || m = "Queue" || m = "Stack"
                            || m = "Weak" || m = "Ephemeron" ->
    Some Site.Table
  | "create" :: "Buffer" :: _ -> Some Site.Buffer_like
  | ("make" | "create" | "init" | "create_float" | "make_matrix") :: "Array" :: _
  | ("make" | "create" | "init") :: "Bytes" :: _ | ("make" | "init") :: "Float" :: _ ->
    Some Site.Array_value
  | ("new_key" :: "DLS" :: _) | ("make" :: "Local" :: _) -> Some Site.Dls_slot
  | ("create" :: "Mutex" :: _) | ("make" :: "Guarded" :: _) ->
    Some Site.Guard_slot
  | _ -> None

(* stdlib entry points that mutate global/program-wide state no matter
   where they are called from *)
let hard_unsafe_call path =
  match flatten_longident path with
  | [ "Random"; ("self_init" | "init" | "full_init" | "set_state") as f ] ->
    Some ("Random." ^ f)
  | "Format"
    :: (( "set_formatter_out_channel" | "set_formatter_out_functions"
        | "set_margin" | "set_max_indent" | "set_max_boxes"
        | "set_ellipsis_text" | "set_tags" | "set_formatter_tag_functions" ) as
        f)
    :: _ ->
    Some ("Format." ^ f)
  | [ "Printexc"; "register_printer" ] -> Some "Printexc.register_printer"
  | [ "Callback"; "register" ] -> Some "Callback.register"
  | _ -> None

(* ---- attribute parsing -------------------------------------------- *)

let attribute_name = "domain_safety"

let parse_payload (payload : Parsetree.payload) :
    (Site.classification, string) result =
  let open Parsetree in
  let bad () =
    Error
      "expected frozen_after_init | domain_local | guarded | reset_per_run | \
       unsafe \"reason\""
  in
  match payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident kw; _ } -> (
      match kw with
      | "frozen_after_init" -> Ok Site.Frozen_after_init
      | "domain_local" -> Ok Site.Domain_local
      | "guarded" -> Ok Site.Guarded
      | "reset_per_run" -> Ok Site.Reset_per_run
      | "unsafe" -> Error "unsafe needs a reason: [@@domain_safety unsafe \"…\"]"
      | _ -> bad ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "unsafe"; _ }; _ },
          [ ( Asttypes.Nolabel,
              { pexp_desc = Pexp_constant (Pconst_string (reason, _, _)); _ } )
          ] ) ->
      Ok (Site.Unsafe reason)
    | _ -> bad ())
  | _ -> bad ()

let find_attribute (attrs : Parsetree.attributes) =
  List.find_opt
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = attribute_name)
    attrs

(* ---- mutable record fields declared in this file ------------------- *)

let mutable_fields_of structure =
  let acc = ref SS.empty in
  let add_labels labels =
    List.iter
      (fun (ld : Parsetree.label_declaration) ->
        if ld.pld_mutable = Asttypes.Mutable then
          acc := SS.add ld.pld_name.txt !acc)
      labels
  in
  let open Ast_iterator in
  let it =
    { default_iterator with
      type_declaration =
        (fun it td ->
          (match td.Parsetree.ptype_kind with
           | Parsetree.Ptype_record labels -> add_labels labels
           | _ -> ());
          default_iterator.type_declaration it td);
      constructor_declaration =
        (fun it cd ->
          (match cd.Parsetree.pcd_args with
           | Parsetree.Pcstr_record labels -> add_labels labels
           | _ -> ());
          default_iterator.constructor_declaration it cd) }
  in
  it.structure it structure;
  !acc

(* ---- the binding walker ------------------------------------------- *)

type found = {
  mutable kinds : Site.kind list;  (* reverse scan order *)
  mutable table_anywhere : bool;
}

let add_kind found k = if not (List.mem k found.kinds) then found.kinds <- k :: found.kinds

(* Walk one binding's RHS. [eval_now] starts true and drops to false
   under function/lazy bodies; allocation kinds are recorded only in
   eval-now position, hard-unsafe calls always, and [table_anywhere]
   always (so DS020 sees tables born inside DLS initializers). *)
let analyze_rhs ~mutable_fields (rhs : Parsetree.expression) =
  let found = { kinds = []; table_anywhere = false } in
  let eval_now = ref true in
  let later f =
    let saved = !eval_now in
    eval_now := false;
    f ();
    eval_now := saved
  in
  let open Ast_iterator in
  let it =
    { default_iterator with
      expr =
        (fun iter e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_fun (_, default, _, body) ->
            Option.iter (iter.expr iter) default;
            later (fun () -> iter.expr iter body)
          | Parsetree.Pexp_function cases ->
            later (fun () -> List.iter (iter.case iter) cases)
          | Parsetree.Pexp_lazy inner ->
            if !eval_now then add_kind found Site.Lazy_block;
            later (fun () -> iter.expr iter inner)
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt = path; _ }; _ }, args)
            ->
            (match call_site path with
             | Some k ->
               if !eval_now then add_kind found k;
               if k = Site.Table then found.table_anywhere <- true
             | None -> ());
            (match hard_unsafe_call path with
             | Some what -> add_kind found (Site.Unsafe_stdlib what)
             | None -> ());
            List.iter (fun (_, a) -> iter.expr iter a) args
          | Parsetree.Pexp_record (fields, base) ->
            if
              !eval_now
              && List.exists
                   (fun ((lbl : Longident.t Asttypes.loc), _) ->
                     SS.mem (last_of_longident lbl.txt) mutable_fields)
                   fields
            then add_kind found Site.Mutable_record;
            Option.iter (iter.expr iter) base;
            List.iter (fun (_, v) -> iter.expr iter v) fields
          | Parsetree.Pexp_array _ ->
            if !eval_now then add_kind found Site.Array_value;
            default_iterator.expr iter e
          | _ -> default_iterator.expr iter e) }
  in
  it.expr it rhs;
  { found with kinds = List.rev found.kinds }

let idents_of (e : Parsetree.expression) =
  let acc = ref SS.empty in
  let open Ast_iterator in
  let it =
    { default_iterator with
      expr =
        (fun iter e ->
          (match e.Parsetree.pexp_desc with
           | Parsetree.Pexp_ident { txt; _ } ->
             acc := SS.add (last_of_longident txt) !acc
           | _ -> ());
          default_iterator.expr iter e) }
  in
  it.expr it e;
  !acc

let rec binding_names (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> [ txt ]
  | Parsetree.Ppat_constraint (p, _) | Parsetree.Ppat_alias (p, _) ->
    binding_names p
  | Parsetree.Ppat_tuple ps -> List.concat_map binding_names ps
  | Parsetree.Ppat_construct ({ txt = Longident.Lident "()"; _ }, None) ->
    [ "()" ]
  | Parsetree.Ppat_any -> [ "_" ]
  | _ -> []

let rec is_function (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) ->
    is_function e
  | _ -> false

(* ---- one file ------------------------------------------------------ *)

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let parse_interface ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  Parse.interface lexbuf

let intf_vals signature =
  let acc = ref SS.empty in
  let open Ast_iterator in
  let it =
    { default_iterator with
      value_description =
        (fun iter vd ->
          acc := SS.add vd.Parsetree.pval_name.txt !acc;
          default_iterator.value_description iter vd) }
  in
  it.signature it signature;
  Vals !acc

let scan_structure ~file ~intf structure =
  let mutable_fields = mutable_fields_of structure in
  let sites = ref [] in
  let resets = ref [] in
  let escapes name =
    match intf with
    | No_intf -> true
    | Vals vs -> SS.mem name vs
  in
  let rec structure_items prefix items =
    List.iter (structure_item prefix) items
  and structure_item prefix (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) -> List.iter (value_binding prefix) vbs
    | Parsetree.Pstr_module mb -> module_binding prefix mb
    | Parsetree.Pstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | Parsetree.Pstr_include { pincl_mod = m; _ } -> module_expr prefix m
    | _ -> ()
  and module_binding prefix (mb : Parsetree.module_binding) =
    let name = Option.value ~default:"_" mb.Parsetree.pmb_name.txt in
    module_expr (prefix @ [ name ]) mb.Parsetree.pmb_expr
  and module_expr prefix (m : Parsetree.module_expr) =
    match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure items -> structure_items prefix items
    | Parsetree.Pmod_constraint (m, _) -> module_expr prefix m
    | _ -> ()
  and value_binding prefix (vb : Parsetree.value_binding) =
    let names = binding_names vb.Parsetree.pvb_pat in
    let name = String.concat "," names in
    let qualified =
      String.concat "." (prefix @ [ (if name = "" then "_" else name) ])
    in
    let line = vb.Parsetree.pvb_loc.Location.loc_start.Lexing.pos_lnum in
    let attr =
      Option.map
        (fun (a : Parsetree.attribute) -> parse_payload a.attr_payload)
        (find_attribute vb.Parsetree.pvb_attributes)
    in
    let rhs = vb.Parsetree.pvb_expr in
    if is_function rhs then begin
      (* functions allocate per call — never ambient. Still: remember
         reset_* entry points, and a [@@domain_safety] attribute on a
         plain function is stale by definition (reported by Check). *)
      List.iter
        (fun n ->
          if String.length n >= 5 && String.sub n 0 5 = "reset" then
            resets := (n, idents_of rhs) :: !resets)
        names;
      match attr with
      | None -> ()
      | Some classification ->
        sites :=
          { Site.file;
            line;
            binding = qualified;
            kinds = [];
            classification = Some classification;
            escapes = List.exists escapes names;
            has_table_anywhere = false }
          :: !sites
    end
    else begin
      let found = analyze_rhs ~mutable_fields rhs in
      if found.kinds <> [] || attr <> None then
        sites :=
          { Site.file;
            line;
            binding = qualified;
            kinds = found.kinds;
            classification = attr;
            escapes =
              (* toplevel names are checked against the .mli's vals; for
                 bindings nested in submodules the .mli governs through
                 its module signature, which we do not resolve — treat
                 them as private whenever an .mli exists at all *)
              (match prefix with
               | [] -> List.exists escapes names
               | _ -> intf = No_intf);
            has_table_anywhere = found.table_anywhere }
          :: !sites
    end
  in
  structure_items [] structure;
  { sites = List.rev !sites; resets = List.rev !resets }
