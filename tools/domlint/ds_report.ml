(* Deterministic rendering of the inventory + diagnostics: text for
   humans, `qcc.domlint/1` JSON for tooling, SARIF 2.1.0 for code
   scanners — the same three surfaces qlint reports on, with the rule
   catalog read from the shared Qlint.Registry so DS codes are
   documented in exactly one place. *)

module J = Qobs.Json

let schema = "qcc.domlint/1"

let sort_sites sites =
  List.sort
    (fun (a : Site.t) (b : Site.t) ->
      match compare a.Site.file b.Site.file with
      | 0 -> (
        match compare a.Site.line b.Site.line with
        | 0 -> compare a.Site.binding b.Site.binding
        | c -> c)
      | c -> c)
    sites

let classification_field (s : Site.t) =
  match s.Site.classification with
  | None -> "UNCLASSIFIED"
  | Some (Error _) -> "MALFORMED"
  | Some (Ok c) -> Site.classification_to_string c

let site_json (s : Site.t) =
  J.Obj
    [ ("binding", J.Str s.Site.binding);
      ("classification", J.Str (classification_field s));
      ("escapes", J.Bool s.Site.escapes);
      ("file", J.Str s.Site.file);
      ("kinds", J.List (List.map (fun k -> J.Str (Site.kind_to_string k)) s.Site.kinds));
      ("line", J.Int s.Site.line) ]

let diag_json (d : Check.diag) =
  J.Obj
    [ ("binding", J.Str d.Check.binding);
      ("code", J.Str d.Check.code);
      ("file", J.Str d.Check.file);
      ("line", J.Int d.Check.line);
      ("message", J.Str d.Check.message) ]

let to_json ~files_scanned ~sites ~diags =
  let classified =
    List.length
      (List.filter
         (fun (s : Site.t) ->
           match s.Site.classification with Some (Ok _) -> true | _ -> false)
         sites)
  in
  J.Obj
    [ ("diagnostics", J.List (List.map diag_json diags));
      ("errors", J.Int (List.length diags));
      ("files_scanned", J.Int files_scanned);
      ("schema", J.Str schema);
      ("sites", J.List (List.map site_json (sort_sites sites)));
      ("sites_classified", J.Int classified);
      ("sites_total", J.Int (List.length sites)) ]

let pp_text ppf ~files_scanned ~sites ~diags =
  let sites = sort_sites sites in
  Format.fprintf ppf
    "domlint: %d files scanned, %d ambient mutable-state sites, %d diagnostics@."
    files_scanned (List.length sites) (List.length diags);
  List.iter
    (fun (s : Site.t) ->
      Format.fprintf ppf "  %s:%-4d %-42s [%s]%s %s@." s.Site.file s.Site.line
        s.Site.binding
        (String.concat "," (List.map Site.kind_to_string s.Site.kinds))
        (if s.Site.escapes then " escapes" else "")
        (classification_field s))
    sites;
  List.iter
    (fun (d : Check.diag) ->
      Format.fprintf ppf "%s:%d: %s error: %s@." d.Check.file d.Check.line
        d.Check.code d.Check.message)
    diags

(* ---- SARIF 2.1.0 --------------------------------------------------- *)

let rule_of code =
  let base = [ ("id", J.Str code) ] in
  match Qlint.Registry.find code with
  | None -> J.Obj base
  | Some entry ->
    J.Obj
      (base
       @ [ ( "shortDescription",
             J.Obj [ ("text", J.Str entry.Qlint.Registry.summary) ] );
           ( "defaultConfiguration",
             J.Obj [ ("level", J.Str "error") ] );
           ( "properties",
             J.Obj
               [ ( "family",
                   J.Str (Qlint.Registry.family_title entry.Qlint.Registry.family)
                 ) ] ) ])

let sarif_result ~rule_index (d : Check.diag) =
  J.Obj
    [ ("ruleId", J.Str d.Check.code);
      ("ruleIndex", J.Int (rule_index d.Check.code));
      ("level", J.Str "error");
      ("message", J.Obj [ ("text", J.Str d.Check.message) ]);
      ( "locations",
        J.List
          [ J.Obj
              [ ( "physicalLocation",
                  J.Obj
                    [ ( "artifactLocation",
                        J.Obj [ ("uri", J.Str d.Check.file) ] );
                      ( "region",
                        J.Obj [ ("startLine", J.Int d.Check.line) ] ) ] );
                ( "logicalLocations",
                  J.List
                    [ J.Obj
                        [ ("fullyQualifiedName", J.Str d.Check.binding);
                          ("kind", J.Str "member") ] ] ) ] ] ) ]

let to_sarif ~diags =
  let codes =
    List.sort_uniq compare (List.map (fun d -> d.Check.code) diags)
  in
  let rule_index code =
    let rec go k = function
      | [] -> -1
      | c :: _ when c = code -> k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 codes
  in
  J.Obj
    [ ("version", J.Str "2.1.0");
      ( "$schema",
        J.Str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ( "runs",
        J.List
          [ J.Obj
              [ ( "tool",
                  J.Obj
                    [ ( "driver",
                        J.Obj
                          [ ("name", J.Str "domlint");
                            ("informationUri", J.Str "README.md");
                            ("rules", J.List (List.map rule_of codes)) ] ) ] );
                ("results", J.List (List.map (sarif_result ~rule_index) diags))
              ] ] ) ]
