(* DS0xx checks over the scan results.

   DS010  unclassified ambient mutable state (module-private)
   DS011  unclassified toplevel mutable state escaping the module
   DS020  memo table classified domain_local/reset_per_run with no
          reset_* entry point referencing it in the same file
   DS030  domain-unsafe stdlib use without a classification
   DS040  [@@domain_safety] attribute that no longer matches the code

   Every diagnostic is an error: the gate's contract is "zero
   unclassified or stale sites", not a severity ladder. *)

type diag = {
  code : string;
  file : string;
  line : int;
  binding : string;
  message : string;
}

let plain_mutable = function
  | Site.Ref_cell | Site.Table | Site.Buffer_like | Site.Array_value
  | Site.Mutable_record | Site.Lazy_block ->
    true
  | Site.Dls_slot | Site.Guard_slot | Site.Unsafe_stdlib _ -> false

let short_name binding =
  match String.rindex_opt binding '.' with
  | None -> binding
  | Some i -> String.sub binding (i + 1) (String.length binding - i - 1)

let kinds_brief kinds =
  String.concat "," (List.map Site.kind_to_string kinds)

let diagnose_file (fr : Scan.file_result) =
  let resettable name =
    List.exists (fun (_, idents) -> Scan.SS.mem name idents) fr.Scan.resets
  in
  let site_diags (s : Site.t) =
    let d code message =
      { code; file = s.Site.file; line = s.Site.line; binding = s.Site.binding;
        message }
    in
    let unsafe_stdlib_diags () =
      List.filter_map
        (function
          | Site.Unsafe_stdlib what ->
            Some
              (d "DS030"
                 (Printf.sprintf
                    "domain-unsafe stdlib use (%s) in `%s` — classify the \
                     binding or remove the call"
                    what s.Site.binding))
          | _ -> None)
        s.Site.kinds
    in
    match s.Site.classification with
    | None ->
      let mutable_kinds = List.filter plain_mutable s.Site.kinds in
      let slotted =
        List.exists (fun k -> k = Site.Dls_slot || k = Site.Guard_slot) s.Site.kinds
      in
      (if mutable_kinds <> [] || slotted then
         if s.Site.escapes && not slotted then
           [ d "DS011"
               (Printf.sprintf
                  "toplevel mutable state `%s` (%s) escapes the module — \
                   classify it with [@@domain_safety …] and audit every \
                   external writer"
                  s.Site.binding (kinds_brief s.Site.kinds)) ]
         else
           [ d "DS010"
               (Printf.sprintf
                  "unclassified ambient mutable state `%s` (%s) — add \
                   [@@domain_safety frozen_after_init | domain_local | \
                   guarded | reset_per_run | unsafe \"reason\"]"
                  s.Site.binding (kinds_brief s.Site.kinds)) ]
       else [])
      @ unsafe_stdlib_diags ()
    | Some (Error msg) ->
      [ d "DS040" (Printf.sprintf "malformed [@@domain_safety] payload: %s" msg) ]
    | Some (Ok c) ->
      let stale why = [ d "DS040" ("stale [@@domain_safety] classification: " ^ why) ] in
      let has = Fun.flip Site.has_kind s in
      if s.Site.kinds = [] then
        stale
          (Printf.sprintf
             "`%s` owns no ambient mutable state the scanner recognises — \
              drop the attribute or use a recognised allocation form"
             s.Site.binding)
      else if c = Site.Domain_local && not (has Site.Dls_slot) then
        stale
          "domain_local requires the binding to be a Domain.DLS slot \
           (Domain.DLS.new_key / Domain_safe.Local.make)"
      else if c = Site.Guarded && not (has Site.Guard_slot) then
        stale
          "guarded requires a mutex bundled in the same binding \
           (Mutex.create / Domain_safe.Guarded.make)"
      else if has Site.Dls_slot && c <> Site.Domain_local then
        stale "a Domain.DLS slot must be classified domain_local"
      else if (has Site.Guard_slot && not (has Site.Dls_slot))
              && c <> Site.Guarded then
        stale "a mutex-bundled binding must be classified guarded"
      else if
        (c = Site.Domain_local || c = Site.Reset_per_run)
        && s.Site.has_table_anywhere
        && not (resettable (short_name s.Site.binding))
      then
        [ d "DS020"
            (Printf.sprintf
               "memo table `%s` has no reset_* entry point referencing it \
                in this module — cold-start measurement and tests cannot \
                clear it"
               s.Site.binding) ]
      else []
  in
  List.concat_map site_diags fr.Scan.sites

let diagnose frs =
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> (match compare a.line b.line with 0 -> compare a.code b.code | c -> c)
      | c -> c)
    (List.concat_map diagnose_file frs)
