(* domlint — domain-safety static analysis over the repo's own sources.

     domlint [--format text|json|sarif] [PATH…]

   PATHs are .ml files or directories (recursed, skipping _build and
   dot-directories); default is `lib`. Exit 1 on any DS0xx diagnostic,
   2 on a parse/IO failure. See README "Domain safety" for the code
   glossary and the [@@domain_safety] attribute vocabulary. *)

open Domlint_lib

let rec collect acc path =
  if Sys.is_directory path then
    let base = Filename.basename path in
    if base = "_build" || (String.length base > 0 && base.[0] = '.') then acc
    else
      Array.fold_left
        (fun acc entry -> collect acc (Filename.concat path entry))
        acc
        (let entries = Sys.readdir path in
         Array.sort compare entries;
         entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path =
  let source = read_file path in
  let intf_path = Filename.remove_extension path ^ ".mli" in
  let intf =
    if Sys.file_exists intf_path then
      Scan.intf_vals (Scan.parse_interface ~path:intf_path (read_file intf_path))
    else Scan.No_intf
  in
  Scan.scan_structure ~file:path ~intf
    (Scan.parse_implementation ~path source)

let () =
  let format = ref "text" in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format" :: f :: rest ->
      if not (List.mem f [ "text"; "json"; "sarif" ]) then begin
        Printf.eprintf "domlint: unknown format %S (text|json|sarif)\n" f;
        exit 2
      end;
      format := f;
      parse_args rest
    | "--format" :: [] ->
      Printf.eprintf "domlint: --format needs an argument\n";
      exit 2
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = if !paths = [] then [ "lib" ] else List.rev !paths in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "domlint: no such file or directory: %s\n" p;
        exit 2
      end)
    roots;
  let files = List.sort compare (List.fold_left collect [] roots) in
  let results =
    List.map
      (fun path ->
        try scan_file path
        with exn ->
          Printf.eprintf "domlint: %s: %s\n" path (Printexc.to_string exn);
          exit 2)
      files
  in
  let sites = List.concat_map (fun r -> r.Scan.sites) results in
  let diags = Check.diagnose results in
  (match !format with
   | "json" ->
     print_string
       (Qobs.Json.to_string
          (Ds_report.to_json ~files_scanned:(List.length files) ~sites ~diags));
     print_newline ()
   | "sarif" ->
     print_string (Qobs.Json.to_string (Ds_report.to_sarif ~diags));
     print_newline ()
   | _ ->
     Ds_report.pp_text Format.std_formatter ~files_scanned:(List.length files)
       ~sites ~diags);
  if diags <> [] then exit 1
