(* qcc — compile quantum circuits with aggregated-instruction pulses.

   Subcommands:
     compile    compile a QASM file (or named benchmark) under a strategy
     compare    run all strategies and print normalized latencies
     profile    per-pass wall-time breakdown over a benchmark/strategy matrix
     stats      aggregate / diff flight-recorder ledgers (--ledger files)
     bench-list list the built-in benchmark instances
     lint       run the Qlint static checkers on a circuit / compilation
     analyze    forward abstract interpretation: abstract states + summaries
     certify    translation-validate every pass boundary of a compilation
     verify     verify sampled aggregated instructions of a compilation
     pulse      GRAPE-synthesize a pulse for a named 1-2 qubit gate *)

open Cmdliner

(* user errors (bad flags, malformed inputs) exit 2 with a one-line
   message instead of an uncaught-exception backtrace *)
let or_die f =
  let die msg =
    Printf.eprintf "qcc: %s\n" msg;
    exit 2
  in
  try f () with Failure msg | Invalid_argument msg -> die msg

let load_circuit ~qasm_file ~benchmark =
  match (qasm_file, benchmark) with
  | Some path, None -> Qgate.Qasm.read_file path
  | None, Some name ->
    (match Qapps.Suite.find name with
     | b -> Qapps.Suite.lowered b
     | exception Not_found ->
       failwith
         (Printf.sprintf "unknown benchmark %S (see qcc bench-list)" name))
  | Some _, Some _ -> failwith "give either a QASM file or a benchmark, not both"
  | None, None -> failwith "give a QASM file (-f) or a benchmark name (-b)"

let parse_size ~what s =
  match int_of_string_opt s with
  | None ->
    failwith
      (Printf.sprintf "%s: %S is not an integer" what s)
  | Some n when n <= 0 ->
    failwith
      (Printf.sprintf "%s: %d is not a positive qubit count" what n)
  | Some n -> n

let topology_of = function
  | None -> None
  | Some "grid" -> None
  | Some s ->
    (match String.split_on_char ':' s with
     | [ "line"; n ] -> Some (Qmap.Topology.line (parse_size ~what:"line topology" n))
     | [ "full"; n ] -> Some (Qmap.Topology.full (parse_size ~what:"full topology" n))
     | _ ->
       failwith
         (Printf.sprintf
            "bad topology %S: expected 'grid', 'line:N' or 'full:N' with N \
             a positive integer" s))

let qasm_arg =
  Arg.(value & opt (some file) None & info [ "f"; "qasm" ] ~doc:"Input QASM file.")

let bench_arg =
  Arg.(value & opt (some string) None
       & info [ "b"; "benchmark" ] ~doc:"Built-in benchmark name (see bench-list).")

(* the strategy list is derived from the registry, so a new strategy
   shows up in --help and error messages without touching the CLI *)
let strategy_doc =
  Printf.sprintf "Strategy: %s." (String.concat " | " Qcc.Strategy.names)

let strategy_arg =
  Arg.(value & opt string "cls+aggregation"
       & info [ "s"; "strategy" ] ~doc:strategy_doc)

let topology_arg =
  Arg.(value & opt (some string) None
       & info [ "t"; "topology" ] ~doc:"Topology: grid (default), line:N, full:N.")

let width_arg =
  Arg.(value & opt int 10
       & info [ "w"; "width" ] ~doc:"Aggregated-instruction width limit.")

let arch_arg =
  Arg.(value & opt string "xy"
       & info [ "a"; "architecture" ]
           ~doc:"Physical coupling: xy (transmon), zz (flux/NMR), heisenberg (quantum dot).")

let device_of = function
  | "xy" -> Qcontrol.Device.default
  | "zz" -> Qcontrol.Device.with_interaction Qcontrol.Device.Zz Qcontrol.Device.default
  | "heisenberg" | "dots" ->
    Qcontrol.Device.with_interaction Qcontrol.Device.Heisenberg Qcontrol.Device.default
  | s -> failwith (Printf.sprintf "unknown architecture %S (xy zz heisenberg)" s)

let config topology width arch =
  if width <= 0 then
    failwith
      (Printf.sprintf "--width: %d is not a positive width limit" width);
  { Qcc.Compiler.device = device_of arch;
    topology = topology_of topology;
    width_limit = width }

let print_result r =
  Qcc.Report.print_kv
    [ ("strategy", Qcc.Strategy.to_string r.Qcc.Compiler.strategy);
      ("latency (ns)", Printf.sprintf "%.1f" r.Qcc.Compiler.latency);
      ("instructions", string_of_int r.Qcc.Compiler.n_instructions);
      ("swaps inserted", string_of_int r.Qcc.Compiler.n_swaps_inserted);
      ("merges", string_of_int r.Qcc.Compiler.n_merges);
      ("compile time (s)", Printf.sprintf "%.2f" r.Qcc.Compiler.compile_time) ]

(* -v → Info (per-compile summaries on the "qcc" source), -vv → Debug
   (adds per-span close timings from "qobs") *)
let setup_logs verbosity =
  if verbosity > 0 then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbosity >= 2 then Logs.Debug else Logs.Info))
  end

let verbosity_arg =
  Arg.(value & flag_all
       & info [ "v"; "verbose" ]
           ~doc:"Verbosity: once for per-compile info logs, twice for \
                 per-pass debug timings plus the pass summary and full \
                 schedule.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the compilation (open \
                 in about://tracing or Perfetto).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write pipeline metrics (counters/gauges/histograms) as JSON.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable result summary as JSON.")

let ledger_arg =
  Arg.(value & opt (some string) None
       & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Append one qcc.ledger/1 row per compilation to this JSONL \
                 flight-recorder file (aggregate with qcc stats).")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Run up to N benchmark×strategy jobs in parallel on an \
                 OCaml domain pool. Deterministic: results are \
                 byte-identical to -j 1 (the sequential driver) at any N \
                 — only wall time changes. On a single compilation \
                 (compile) the whole pipeline is one job, so the flag is \
                 validated and has no effect.")

let check_jobs jobs =
  if jobs < 1 then
    failwith (Printf.sprintf "--jobs: %d is not a positive worker count" jobs);
  jobs

let with_ledger path f =
  match path with
  | None -> f None
  | Some p ->
    let l = Qobs.Ledger.open_file p in
    Fun.protect ~finally:(fun () -> Qobs.Ledger.close l) (fun () -> f (Some l))

let source_label ~qasm_file ~benchmark =
  match (benchmark, qasm_file) with
  | Some name, _ -> Some name
  | None, Some path -> Some (Filename.basename path)
  | None, None -> None

let wrote path = Printf.printf "wrote %s\n%!" path

let compile_cmd =
  let run qasm bench strategy topology width arch trace_file metrics_file
      json_file ledger_file jobs verbosity =
    or_die @@ fun () ->
    let _ = check_jobs jobs in
    let verbosity = List.length verbosity in
    setup_logs verbosity;
    let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
    let strategy = Qcc.Strategy.of_string strategy in
    (* a ledger row wants per-pass spans and the metric snapshot, so
       --ledger implies enabled collectors *)
    let obs =
      if trace_file <> None || ledger_file <> None || verbosity >= 2 then
        Qobs.Trace.create ()
      else Qobs.Trace.disabled
    in
    let metrics =
      if metrics_file <> None || ledger_file <> None then Qobs.Metrics.create ()
      else Qobs.Metrics.disabled
    in
    let r =
      with_ledger ledger_file @@ fun ledger ->
      Qcc.Compiler.compile ~config:(config topology width arch) ~obs ~metrics
        ?ledger
        ?source_label:(source_label ~qasm_file:qasm ~benchmark:bench)
        ~strategy circuit
    in
    print_result r;
    Option.iter
      (fun path ->
        Qobs.Trace.write_chrome_file path obs;
        wrote path)
      trace_file;
    Option.iter
      (fun path ->
        Qobs.Metrics.write_file path metrics;
        wrote path)
      metrics_file;
    Option.iter
      (fun path ->
        Qobs.Json.write_file path (Qcc.Report.result_to_json r);
        wrote path)
      json_file;
    if verbosity >= 2 then begin
      print_string (Qobs.Trace.to_text obs);
      Format.printf "%a@." Qsched.Schedule.pp r.Qcc.Compiler.schedule
    end
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a circuit under one strategy.")
    Term.(const run $ qasm_arg $ bench_arg $ strategy_arg $ topology_arg
          $ width_arg $ arch_arg $ trace_arg $ metrics_arg $ json_arg
          $ ledger_arg $ jobs_arg $ verbosity_arg)

let compare_cmd =
  let run qasm benches topology width arch json_file ledger_file jobs =
    or_die @@ fun () ->
    let jobs = check_jobs jobs in
    let cfg = config topology width arch in
    let rows =
      with_ledger ledger_file @@ fun ledger ->
      match (qasm, benches) with
      | Some _, _ :: _ ->
        failwith "give either a QASM file or benchmarks, not both"
      | None, (_ :: _ as benches) ->
        if jobs <= 1 then
          List.map
            (fun name ->
              let circuit =
                load_circuit ~qasm_file:None ~benchmark:(Some name)
              in
              ( name,
                Qcc.Compiler.compile_all ~config:cfg ?ledger
                  ~source_label:name circuit ))
            benches
        else
          (* every benchmark×strategy cell becomes a pool job; circuits
             are loaded (and the lazy suite entries forced) here on the
             caller's domain, before any worker spawns *)
          Qcc.Compiler.compile_matrix ~config:cfg ?ledger ~jobs
            (List.map
               (fun name ->
                 (name, load_circuit ~qasm_file:None ~benchmark:(Some name)))
               benches)
      | _ ->
        [ ( "circuit",
            Qcc.Compiler.compile_all ~config:cfg ?ledger
              ?source_label:(source_label ~qasm_file:qasm ~benchmark:None)
              ?jobs:(if jobs > 1 then Some jobs else None)
              (load_circuit ~qasm_file:qasm ~benchmark:None) ) ]
    in
    Qcc.Report.print_speedup_table ~header:"normalized latency (isa = 1.0)"
      ?json:json_file rows
  in
  let benches =
    Arg.(value & opt_all string []
         & info [ "b"; "benchmark" ]
             ~doc:"Built-in benchmark name (repeatable; see bench-list).")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all strategies on one or more circuits.")
    Term.(const run $ qasm_arg $ benches $ topology_arg $ width_arg
          $ arch_arg $ json_arg $ ledger_arg $ jobs_arg)

(* per-pass wall-time matrix: compile each benchmark under each strategy
   with tracing on, then read the pass spans back out of result.trace *)
let profile_cmd =
  let canonical_passes = Qcc.Compiler.canonical_passes () in
  let run benches strategies topology width arch format jobs =
    or_die @@ fun () ->
    let jobs = check_jobs jobs in
    let benches = if benches = [] then [ "maxcut-line" ] else benches in
    let strategies =
      match strategies with
      | [] -> Qcc.Strategy.all
      | names -> List.map Qcc.Strategy.of_string names
    in
    let config = config topology width arch in
    let find_bench bname =
      try Qapps.Suite.find bname
      with Not_found ->
        failwith
          (Printf.sprintf "unknown benchmark %S (see qcc bench-list)" bname)
    in
    (* one compile per (benchmark, strategy) cell, tracing + metrics on;
       the json rendering reads the same spans the text table does, plus
       the per-pass GC allocation columns. All cells are computed up
       front — with -j N, as jobs on the domain pool (private per-cell
       collectors, no shared cache: each cell is an independent measured
       compile) — and regrouped per benchmark for rendering. *)
    let bench_cells =
      let circuits =
        List.map (fun b -> (b, Qapps.Suite.lowered (find_bench b))) benches
      in
      let n_strat = List.length strategies in
      let cells =
        Array.of_list
          (List.concat_map
             (fun (_, circuit) ->
               List.map (fun s -> (circuit, s)) strategies)
             circuits)
      in
      let compile_cell (circuit, strategy) =
        let obs = Qobs.Trace.create () in
        let metrics = Qobs.Metrics.create () in
        let r = Qcc.Compiler.compile ~config ~obs ~metrics ~strategy circuit in
        (strategy, r, metrics)
      in
      let results =
        if jobs <= 1 then Array.map compile_cell cells
        else
          Qcc.Parallel.map ~jobs ~init:Qcc.Compiler.reset_all_memos
            (fun _ cell -> compile_cell cell)
            cells
      in
      List.mapi
        (fun bi (bname, circuit) ->
          (bname, circuit,
           List.init n_strat (fun si -> results.((bi * n_strat) + si))))
        circuits
    in
    let profile_json () =
      let open Qobs.Json in
      let bench_obj (bname, circuit, compiled) =
        let strategy_obj (strategy, r, metrics) =
          let passes =
            match r.Qcc.Compiler.trace with
            | None -> []
            | Some root -> List.map Qobs.Ledger.pass_row (Qobs.Span.children root)
          in
          Obj
            [ ("strategy", Str (Qcc.Strategy.to_string strategy));
              ("latency_ns", Float r.Qcc.Compiler.latency);
              ("instructions", Int r.Qcc.Compiler.n_instructions);
              ("swaps", Int r.Qcc.Compiler.n_swaps_inserted);
              ("merges", Int r.Qcc.Compiler.n_merges);
              ("compile_time_s", Float r.Qcc.Compiler.compile_time);
              ("passes", List passes);
              ("metrics", Qobs.Metrics.to_json metrics) ]
        in
        Obj
          [ ("benchmark", Str bname);
            ("n_qubits", Int (Qgate.Circuit.n_qubits circuit));
            ("n_gates", Int (Qgate.Circuit.n_gates circuit));
            ("strategies", List (List.map strategy_obj compiled)) ]
      in
      print_endline
        (to_string
           (Obj
              [ ("schema", Str "qcc.profile/1");
                ("benchmarks", List (List.map bench_obj bench_cells)) ]))
    in
    let profile_text () =
    List.iter
      (fun (bname, circuit, compiled) ->
        Printf.printf "\n==== %s (%d qubits, %d gates) ====\n" bname
          (Qgate.Circuit.n_qubits circuit)
          (Qgate.Circuit.n_gates circuit);
        let shown_passes =
          List.filter
            (fun p ->
              List.exists
                (fun (s, _, _) -> List.mem p (Qcc.Compiler.passes s))
                compiled)
            canonical_passes
        in
        let cell fmt = Printf.printf " %12s" fmt in
        Printf.printf "%-14s" "pass (ms)";
        List.iter
          (fun (s, _, _) -> cell (Qcc.Strategy.to_string s))
          compiled;
        print_newline ();
        let span_ms r name =
          match r.Qcc.Compiler.trace with
          | None -> None
          | Some root ->
            (match Qobs.Span.find_all ~name root with
             | [] -> None
             | spans ->
               Some
                 (List.fold_left
                    (fun acc s -> acc +. Qobs.Span.duration_ns s)
                    0. spans
                  /. 1e6))
        in
        List.iter
          (fun pass ->
            Printf.printf "%-14s" pass;
            List.iter
              (fun (_, r, _) ->
                match span_ms r pass with
                | Some ms -> cell (Printf.sprintf "%.3f" ms)
                | None -> cell "-")
              compiled;
            print_newline ())
          shown_passes;
        Printf.printf "%-14s" "total";
        List.iter
          (fun (_, r, _) -> cell (Printf.sprintf "%.3f" (Option.value ~default:0. (span_ms r "compile"))))
          compiled;
        print_newline ();
        let metric_row label value =
          Printf.printf "%-14s" label;
          List.iter (fun entry -> cell (value entry)) compiled;
          print_newline ()
        in
        metric_row "latency (ns)" (fun (_, r, _) ->
            Printf.sprintf "%.1f" r.Qcc.Compiler.latency);
        metric_row "instructions" (fun (_, r, _) ->
            string_of_int r.Qcc.Compiler.n_instructions);
        metric_row "swaps" (fun (_, r, _) ->
            string_of_int r.Qcc.Compiler.n_swaps_inserted);
        metric_row "merges" (fun (_, r, _) ->
            string_of_int r.Qcc.Compiler.n_merges);
        let counter name (_, _, m) =
          string_of_int (Qobs.Metrics.counter_value m name)
        in
        metric_row "commute fast" (counter "commute.fast_path");
        metric_row "commute dense" (counter "commute.unitary");
        metric_row "agg attempted" (counter "agg.attempted");
        metric_row "agg accepted" (counter "agg.accepted");
        metric_row "agg vetoed" (counter "agg.vetoed_monotonic");
        Printf.printf "%!")
      bench_cells
    in
    match format with
    | "text" -> profile_text ()
    | "json" -> profile_json ()
    | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f)
  in
  let benches =
    Arg.(value & opt_all string []
         & info [ "b"; "benchmark" ]
             ~doc:"Benchmark to profile (repeatable; default maxcut-line).")
  in
  let strategies =
    Arg.(value & opt_all string []
         & info [ "s"; "strategy" ]
             ~doc:"Strategy to profile (repeatable; default all five).")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ]
             ~doc:"Report format: text (default) or json (schema \
                   qcc.profile/1, with per-pass wall time and GC \
                   allocation).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Compile a benchmark/strategy matrix with tracing on and print \
             the per-pass wall-time breakdown plus headline metrics.")
    Term.(const run $ benches $ strategies $ topology_arg $ width_arg
          $ arch_arg $ format $ jobs_arg)

let stats_cmd =
  let run files base format top =
    or_die @@ fun () ->
    if files = [] then failwith "give at least one ledger file";
    let read path =
      match Qobs.Ledger.read_file path with
      | Ok rows -> rows
      | Error msg -> failwith msg
    in
    let cur = Qobs.Stats.of_rows (List.concat_map read files) in
    match base with
    | None ->
      (match format with
       | "text" -> Format.printf "%a" (Qobs.Stats.pp_text ~top) cur
       | "json" -> print_endline (Qobs.Json.to_string (Qobs.Stats.to_json cur))
       | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f))
    | Some base_path ->
      let d = Qobs.Stats.diff ~base:(Qobs.Stats.of_rows (read base_path)) ~cur in
      (match format with
       | "text" -> Format.printf "%a" (Qobs.Stats.pp_diff ~top) d
       | "json" ->
         print_endline (Qobs.Json.to_string (Qobs.Stats.diff_to_json d))
       | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f))
  in
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"LEDGER"
             ~doc:"Ledger JSONL file(s) written by --ledger (concatenated).")
  in
  let base =
    Arg.(value & opt (some file) None
         & info [ "diff" ] ~docv:"BASE"
             ~doc:"Diff against a baseline ledger: per-pass wall-time \
                   movers, compile-time and cache-rate deltas.")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ]
             ~doc:"Report format: text (default) or json (schema qcc.stats/1).")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K" ~doc:"Rows in the slowest-passes table.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Aggregate flight-recorder ledgers (qcc.ledger/1): slowest \
             passes by wall time and allocation, stage-cache hit rates, \
             commutation route mix; --diff compares two ledgers.")
    Term.(const run $ files $ base $ format $ top)

let bench_list_cmd =
  let run () =
    List.iter
      (fun (b : Qapps.Suite.benchmark) ->
        let c = Lazy.force b.Qapps.Suite.circuit in
        Printf.printf "%-16s %-12s qubits=%d (paper: %d) gates=%d  %s\n"
          b.Qapps.Suite.name b.Qapps.Suite.application
          (Qgate.Circuit.n_qubits c) b.Qapps.Suite.paper_qubits
          (Qgate.Circuit.n_gates c) b.Qapps.Suite.purpose)
      Qapps.Suite.all
  in
  Cmd.v (Cmd.info "bench-list" ~doc:"List built-in benchmarks.")
    Term.(const run $ const ())

let lint_cmd =
  let run qasm bench strategy topology width arch format semantic ancillas
      threshold explain =
    or_die @@ fun () ->
    match explain with
    | Some code ->
      (* --explain needs no input circuit: print the registry entry *)
      (match Qlint.Registry.explain code with
       | Some text -> print_endline text
       | None ->
         failwith
           (Printf.sprintf "unknown diagnostic code %S (see the QL glossary \
                            in the README)" code))
    | None ->
      let threshold =
        match threshold with
        | None -> None
        | Some "warning" -> Some Qlint.Diagnostic.Warning
        | Some "error" -> Some Qlint.Diagnostic.Error
        | Some s ->
          failwith
            (Printf.sprintf "unknown severity threshold %S (warning | error)" s)
      in
      let render report =
        (match format with
         | "text" -> Format.printf "%a" Qlint.Report.pp_text report
         | "json" -> Format.printf "%a" Qlint.Report.pp_json report
         | "sarif" -> Format.printf "%a" Qlint.Sarif.pp report
         | f ->
           failwith (Printf.sprintf "unknown format %S (text | json | sarif)" f));
        let fails =
          match threshold with
          | Some sev -> Qlint.Report.has_at_least sev report
          | None -> Qlint.Report.has_errors report
        in
        if fails then exit 1
      in
      (* front-door lint: QASM parse + well-formedness before compiling *)
      let input_diags =
        match (qasm, bench) with
        | Some _, Some _ ->
          failwith "give either a QASM file or a benchmark, not both"
        | Some path, None ->
          Qlint.Check_circuit.lint_qasm_file ~stage:"input" path
        | _ ->
          Qlint.Check_circuit.run ~stage:"input" ~warn_unused:true
            (load_circuit ~qasm_file:qasm ~benchmark:bench)
      in
      if List.exists Qlint.Diagnostic.is_error input_diags then
        render (Qlint.Report.of_list input_diags)
      else begin
        let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
        let strategy = Qcc.Strategy.of_string strategy in
        let cfg = config topology width arch in
        (* static composition check of the pass sequence itself, before
           running it *)
        let pipeline_diags =
          Qlint.Check_pipeline.run ~stage:"pipeline"
            (Qcc.Compiler.describe_passes strategy)
        in
        (* semantic lints interpret the input circuit abstractly; the
           aggregation-opportunity lints need the compiled GDG *)
        let semantic_diags =
          if semantic then
            Qlint.Check_semantic.run ~stage:"input" ~ancillas circuit
          else []
        in
        let compiled, aggop_diags =
          match
            Qcc.Compiler.compile ~config:cfg ~check:true ~strategy circuit
          with
          | r ->
            let aggop =
              if semantic then
                Qlint.Check_aggop.run ~stage:"aggregate"
                  ~gate_time:
                    (Qcontrol.Latency_model.gate_time cfg.Qcc.Compiler.device)
                  ~width_limit:cfg.Qcc.Compiler.width_limit r.Qcc.Compiler.gdg
              else []
            in
            (r.Qcc.Compiler.diagnostics, aggop)
          | exception Qlint.Report.Check_failed rep ->
            (Qlint.Report.diagnostics rep, [])
        in
        render
          (Qlint.Report.of_list
             (input_diags @ pipeline_diags @ semantic_diags @ compiled
              @ aggop_diags))
      end
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ]
             ~doc:"Report format: text (default), json or sarif (SARIF 2.1.0).")
  in
  let semantic =
    Arg.(value & flag
         & info [ "semantic" ]
             ~doc:"Also run the semantic lints: abstract-interpretation \
                   circuit checks (QL06x) and aggregation-opportunity \
                   checks over the compiled GDG (QL07x).")
  in
  let ancillas =
    Arg.(value & opt_all int []
         & info [ "ancilla" ] ~docv:"QUBIT"
             ~doc:"Declare a qubit as an ancilla for QL063 (must be \
                   provably returned to |0>). Repeatable; only meaningful \
                   with --semantic.")
  in
  let threshold =
    Arg.(value & opt (some string) None
         & info [ "severity-threshold" ] ~docv:"SEV"
             ~doc:"Exit 1 when any diagnostic at or above this severity \
                   (warning | error) is reported. Default: error.")
  in
  let explain =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"CODE"
             ~doc:"Explain a diagnostic code (e.g. QL060) and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static checkers (circuit, GDG, schedule, mapping, \
             aggregation, and with --semantic the abstract-interpretation \
             lints) over a full compilation; exit 1 on any error \
             diagnostic (tunable with --severity-threshold).")
    Term.(const run $ qasm_arg $ bench_arg $ strategy_arg $ topology_arg
          $ width_arg $ arch_arg $ format $ semantic $ ancillas $ threshold
          $ explain)

let analyze_cmd =
  let run qasm bench topology width arch format =
    or_die @@ fun () ->
    let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
    let cfg = config topology width arch in
    let metrics = Qobs.Metrics.create () in
    Qobs.Metrics.with_ambient metrics @@ fun () ->
    Qflow.Summary.reset_memo ();
    let cr = Qflow.Analysis.circuit circuit in
    let gdg =
      Qgdg.Gdg.of_circuit
        ~latency:
          (Qcontrol.Latency_model.block_time
             ~width_limit:cfg.Qcc.Compiler.width_limit cfg.Qcc.Compiler.device)
        circuit
    in
    let gr = Qflow.Analysis.gdg gdg in
    let klass_counts =
      List.map
        (fun k ->
          ( k,
            List.length
              (List.filter
                 (fun (i : Qflow.Analysis.inst_info) ->
                   i.Qflow.Analysis.summary.Qflow.Summary.klass = k)
                 gr.Qflow.Analysis.insts) ))
        [ Qflow.Summary.Identity; Qflow.Summary.Diagonal;
          Qflow.Summary.Clifford; Qflow.Summary.Phase_linear;
          Qflow.Summary.General ]
    in
    let hits = Qobs.Metrics.counter_value metrics "qflow.summary.hit" in
    let misses = Qobs.Metrics.counter_value metrics "qflow.summary.miss" in
    (match format with
     | "text" ->
       Printf.printf "circuit: %d qubits, %d gates\n" cr.Qflow.Analysis.n_qubits
         cr.Qflow.Analysis.n_gates;
       Printf.printf "final abstract state:\n";
       Array.iteri
         (fun q v ->
           Printf.printf "  q%-3d %s\n" q (Qflow.Absval.to_string v))
         cr.Qflow.Analysis.final;
       (match cr.Qflow.Analysis.dead with
        | [] -> Printf.printf "dead gates: none\n"
        | dead ->
          Printf.printf "dead gates: %d\n" (List.length dead);
          List.iter
            (fun (i, g) ->
              Printf.printf "  [%d] %s\n" i (Qgate.Gate.to_string g))
            dead);
       Printf.printf "gdg: %d instructions, %d transfer steps\n"
         (List.length gr.Qflow.Analysis.insts) gr.Qflow.Analysis.steps;
       Printf.printf "summary klasses:";
       List.iter
         (fun (k, n) ->
           if n > 0 then
             Printf.printf " %s=%d" (Qflow.Summary.klass_to_string k) n)
         klass_counts;
       print_newline ();
       Printf.printf "summary cache: %d hits, %d misses\n" hits misses
     | "json" ->
       let open Qobs.Json in
       let j =
         Obj
           [ ("schema", Str "qcc.analyze/1");
             ("n_qubits", Int cr.Qflow.Analysis.n_qubits);
             ("n_gates", Int cr.Qflow.Analysis.n_gates);
             ( "final",
               List
                 (Array.to_list
                    (Array.map
                       (fun v -> Str (Qflow.Absval.to_string v))
                       cr.Qflow.Analysis.final)) );
             ( "dead",
               List
                 (List.map
                    (fun (i, g) ->
                      Obj
                        [ ("gate_index", Int i);
                          ("gate", Str (Qgate.Gate.to_string g)) ])
                    cr.Qflow.Analysis.dead) );
             ("instructions", Int (List.length gr.Qflow.Analysis.insts));
             ("transfer_steps", Int gr.Qflow.Analysis.steps);
             ( "klasses",
               Obj
                 (List.map
                    (fun (k, n) -> (Qflow.Summary.klass_to_string k, Int n))
                    klass_counts) );
             ( "summary_cache",
               Obj [ ("hits", Int hits); ("misses", Int misses) ] ) ]
       in
       print_endline (to_string j)
     | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f))
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~doc:"Report format: text (default) or json.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the forward abstract interpretation (Qflow) over a \
             circuit: per-qubit final abstract states, provably dead \
             gates, per-instruction algebraic summary classes and the \
             summary-cache hit/miss counters.")
    Term.(const run $ qasm_arg $ bench_arg $ topology_arg $ width_arg
          $ arch_arg $ format)

let certify_cmd =
  let run qasm bench strategies topology width arch format jobs =
    or_die @@ fun () ->
    let jobs = check_jobs jobs in
    let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
    let strategies =
      match strategies with
      | [] -> Qcc.Strategy.all
      | names -> List.map Qcc.Strategy.of_string names
    in
    let cfg = config topology width arch in
    (* a refuted boundary is a per-strategy verdict, not a pool failure:
       catch it inside the job so every strategy still reports *)
    let cert_of strategy =
      match
        Qcc.Compiler.compile ~config:cfg ~certify:true ~strategy circuit
      with
      | r -> Option.get r.Qcc.Compiler.certificate
      | exception Qcert.Certificate.Certification_failed c -> c
    in
    let certs =
      if jobs <= 1 then List.map cert_of strategies
      else
        Array.to_list
          (Qcc.Parallel.map ~jobs ~init:Qcc.Compiler.reset_all_memos
             (fun _ strategy -> cert_of strategy)
             (Array.of_list strategies))
    in
    (match format with
     | "text" ->
       List.iter (fun c -> Format.printf "%a@." Qcert.Certificate.pp c) certs
     | "json" ->
       print_endline
         (Qobs.Json.to_string
            (Qobs.Json.Obj
               [ ("schema", Qobs.Json.Str "qcc.certify/1");
                 ("results",
                  Qobs.Json.List (List.map Qcert.Certificate.to_json certs)) ]))
     | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f));
    if not (List.for_all Qcert.Certificate.ok certs) then exit 1
  in
  let strategies =
    Arg.(value & opt_all string []
         & info [ "s"; "strategy" ]
             ~doc:"Strategy to certify (repeatable; default all five).")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~doc:"Report format: text (default) or json.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Translation-validate a compilation: prove every pass boundary \
             (lowering, GDG, contraction, scheduling, routing, aggregation, \
             end-to-end) and print the per-boundary certificate; exit 1 on \
             any refuted boundary.")
    Term.(const run $ qasm_arg $ bench_arg $ strategies $ topology_arg
          $ width_arg $ arch_arg $ format $ jobs_arg)

let verify_cmd =
  let run qasm bench topology width arch samples format =
    or_die @@ fun () ->
    let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
    let r =
      Qcc.Compiler.compile ~config:(config topology width arch)
        ~strategy:Qcc.Strategy.Cls_aggregation circuit
    in
    let rng = Qgraph.Rand.create 2025 in
    let report =
      Qsim.Verify.verify_sampled ~samples rng (device_of arch)
        (Qcc.Compiler.blocks r)
    in
    (match format with
     | "text" -> Format.printf "@[<v>%a@]@." Qsim.Verify.pp_report report
     | "json" ->
       print_endline (Qobs.Json.to_string (Qsim.Verify.report_to_json report))
     | f -> failwith (Printf.sprintf "unknown format %S (text | json)" f))
  in
  let samples =
    Arg.(value & opt int 10 & info [ "n"; "samples" ] ~doc:"Blocks to sample.")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~doc:"Report format: text (default) or json.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify sampled aggregated instructions (unitary + pulse).")
    Term.(const run $ qasm_arg $ bench_arg $ topology_arg $ width_arg $ arch_arg
          $ samples $ format)

let pulse_cmd =
  let run gate duration =
    or_die @@ fun () ->
    let target, n_qubits, couplings =
      match gate with
      | "x" -> (Qgate.Unitary.of_kind Qgate.Gate.X, 1, [])
      | "h" -> (Qgate.Unitary.of_kind Qgate.Gate.H, 1, [])
      | "cnot" | "cx" -> (Qgate.Unitary.of_kind Qgate.Gate.Cnot, 2, [ (0, 1) ])
      | "iswap" -> (Qgate.Unitary.of_kind Qgate.Gate.Iswap, 2, [ (0, 1) ])
      | "swap" -> (Qgate.Unitary.of_kind Qgate.Gate.Swap, 2, [ (0, 1) ])
      | "zz" -> (Qgate.Unitary.of_kind (Qgate.Gate.Rzz 5.67), 2, [ (0, 1) ])
      | g -> failwith (Printf.sprintf "unknown gate %S (x h cnot iswap swap zz)" g)
    in
    let problem =
      { Qcontrol.Grape.n_qubits;
        couplings;
        target;
        duration;
        n_steps = max 20 (int_of_float duration);
        device = Qcontrol.Device.default }
    in
    let r = Qcontrol.Grape.optimize problem in
    Printf.printf "fidelity %.5f after %d iterations (converged: %b)\n"
      r.Qcontrol.Grape.fidelity r.Qcontrol.Grape.iterations
      r.Qcontrol.Grape.converged;
    Format.printf "%a@." Qcontrol.Pulse.pp r.Qcontrol.Grape.pulse
  in
  let gate =
    Arg.(value & pos 0 string "iswap" & info [] ~docv:"GATE" ~doc:"Gate name.")
  in
  let duration =
    Arg.(value & opt float 60. & info [ "d"; "duration" ] ~doc:"Pulse length (ns).")
  in
  Cmd.v (Cmd.info "pulse" ~doc:"GRAPE-synthesize a pulse for a named gate.")
    Term.(const run $ gate $ duration)

let export_cmd =
  let run qasm bench strategy topology width arch out_dir =
    or_die @@ fun () ->
    let circuit = load_circuit ~qasm_file:qasm ~benchmark:bench in
    let strategy = Qcc.Strategy.of_string strategy in
    let r =
      Qcc.Compiler.compile ~config:(config topology width arch) ~strategy circuit
    in
    (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path name = Filename.concat out_dir name in
    Qviz.Dot.write_file (path "gdg.dot") r.Qcc.Compiler.gdg;
    Qviz.Timeline.write_svg (path "schedule.svg") r.Qcc.Compiler.schedule;
    Qviz.Timeline.write_json (path "schedule.json") r.Qcc.Compiler.schedule;
    print_result r;
    Printf.printf "wrote %s, %s, %s
" (path "gdg.dot") (path "schedule.svg")
      (path "schedule.json")
  in
  let out_dir =
    Arg.(value & opt string "qcc-out"
         & info [ "o"; "output" ] ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Compile and write the GDG (DOT) and schedule (SVG + JSON).")
    Term.(const run $ qasm_arg $ bench_arg $ strategy_arg $ topology_arg
          $ width_arg $ arch_arg $ out_dir)

let () =
  let doc = "optimized compilation of aggregated quantum instructions" in
  let info = Cmd.info "qcc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ compile_cmd; compare_cmd; profile_cmd; stats_cmd;
                      bench_list_cmd; lint_cmd; analyze_cmd; certify_cmd;
                      verify_cmd; pulse_cmd; export_cmd ]))
