(** Aggregation-opportunity lints (QL07x) over a gate dependence graph.

    - QL070 info: two chain-adjacent instructions whose algebraic
      summaries ({!Qflow.Summary}) prove they commute as operators, and
      whose joint support fits the width limit — a merge (or reorder)
      opportunity the optimizer left on the table
    - QL071 info: an aggregate all of whose members are diagonal (so
      they mutually commute and admit one optimal-control pulse), yet
      whose recorded latency is the serial sum of its members' gate
      times — the block was costed serially

    Both are advisory ([Info]): on a final aggregated GDG a reported
    pair may have been legitimately rejected (monotonicity veto), and a
    CLS-contracted block is serially costed by design. The lints make
    the leftover opportunities visible; `qcc lint --semantic` surfaces
    them without failing CI.

    QL071 needs a per-gate cost and is skipped when [gate_time] is not
    given. *)

val run :
  ?stage:string ->
  ?gate_time:(Qgate.Gate.t -> float) ->
  width_limit:int ->
  Qgdg.Gdg.t ->
  Diagnostic.t list
