type entry = {
  code : string;
  family : string;
  severity : Diagnostic.severity;
  summary : string;
}

let families =
  [ ("circuit", "circuit / QASM well-formedness");
    ("gdg", "GDG structural invariants");
    ("schedule", "schedule legality");
    ("mapping", "mapping / routing legality");
    ("aggregation", "aggregation policy");
    ("semantic", "semantic circuit lints (abstract interpretation)");
    ("aggop", "aggregation-opportunity lints");
    ("pipeline", "pass-sequence composition");
    ("domain-safety", "ambient mutable state / multi-domain safety (domlint)") ]

let family_title key = List.assoc key families

let e code family severity summary = { code; family; severity; summary }

let all =
  let open Diagnostic in
  [ e "DS010" "domain-safety" Error
      "unclassified ambient mutable state at module toplevel";
    e "DS011" "domain-safety" Error
      "toplevel mutable state escaping the module unclassified";
    e "DS020" "domain-safety" Error
      "memo table without a reset_* entry point";
    e "DS030" "domain-safety" Error
      "domain-unsafe stdlib use at module toplevel";
    e "DS040" "domain-safety" Error
      "stale or malformed [@@domain_safety] classification";
    e "QL010" "circuit" Error "gate qubit index outside the register";
    e "QL011" "circuit" Error "duplicate qubit operands in one gate";
    e "QL012" "circuit" Error "operand count does not match the gate's arity";
    e "QL013" "circuit" Warning "register qubit never used";
    e "QL015" "circuit" Error "QASM parse failure";
    e "QL020" "gdg" Error "dependence cycle";
    e "QL021" "gdg" Error "chain references an id with no node";
    e "QL022" "gdg" Error "node on a chain outside its qubit support";
    e "QL023" "gdg" Error "node missing from a support qubit's chain";
    e "QL024" "gdg" Error "node appears twice on one chain";
    e "QL025" "gdg" Error "duplicate instruction id in a raw stream";
    e "QL026" "gdg" Error "a parent shares no qubit with its child";
    e "QL027" "gdg" Error "instruction with no member gates";
    e "QL028" "gdg" Error "negative instruction latency";
    e "QL030" "schedule" Error "two instructions double-book a qubit";
    e "QL031" "schedule" Error
      "dependence-order violation against a non-commuting predecessor";
    e "QL032" "schedule" Warning "entry duration differs from the instruction latency";
    e "QL033" "schedule" Error "entry with negative duration";
    e "QL034" "schedule" Error "schedule and GDG disagree on the instruction set";
    e "QL035" "schedule" Warning "recorded makespan differs from the last finish time";
    e "QL036" "schedule" Error "one instruction scheduled twice";
    e "QL040" "mapping" Error "a 2-qubit physical gate joins non-adjacent sites";
    e "QL041" "mapping" Error "a placement is not a consistent logical-site bijection";
    e "QL042" "mapping" Error
      "final placement does not equal initial placement composed with the routing SWAPs";
    e "QL043" "mapping" Error "a site index outside the device";
    e "QL050" "aggregation" Error "aggregated block wider than the width limit";
    e "QL051" "aggregation" Error
      "block support differs from the union of its member gates' supports";
    e "QL052" "aggregation" Warning "block with an empty qubit support";
    e "QL060" "semantic" Warning
      "dead gate: provably identity on the inferred abstract state";
    e "QL061" "semantic" Warning
      "adjacent self-inverse gate pair the optimizer missed";
    e "QL062" "semantic" Info
      "trailing diagonal gate affects no computational-basis output";
    e "QL063" "semantic" Warning "ancilla not provably returned to |0>";
    e "QL070" "aggop" Info
      "adjacent instructions commute algebraically but were never merged";
    e "QL071" "aggop" Info
      "aggregate of commuting diagonal members costed serially";
    e "QL080" "pipeline" Error "empty pipeline";
    e "QL081" "pipeline" Error "first pass does not consume the source stage";
    e "QL082" "pipeline" Error "consecutive passes whose stages do not line up";
    e "QL083" "pipeline" Error "last pass does not produce the sink stage";
    e "QL084" "pipeline" Error "duplicate pass name";
  ]

let find code = List.find_opt (fun (entry : entry) -> entry.code = code) all

let explain code =
  match find code with
  | None -> None
  | Some entry ->
    Some
      (Printf.sprintf "%s (%s)\n  family:   %s\n  checked:  %s" entry.code
         (Diagnostic.severity_to_string entry.severity)
         (family_title entry.family) entry.summary)

let markdown_glossary () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "| code | severity | family | check |\n";
  Buffer.add_string b "|---|---|---|---|\n";
  List.iter
    (fun entry ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s | %s |\n" entry.code
           (Diagnostic.severity_to_string entry.severity)
           (family_title entry.family) entry.summary))
    all;
  Buffer.contents b
