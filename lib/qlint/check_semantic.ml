module Gate = Qgate.Gate
module D = Diagnostic

(* [next.(i)] = per-qubit successor map of gate [i]: for each qubit of
   gate [i], the index of the next gate touching that qubit (if any) —
   one backward pass over the stream *)
let next_use gates =
  let arr = Array.of_list gates in
  let n = Array.length arr in
  let next = Array.make n [] in
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    next.(i) <-
      List.map
        (fun q -> (q, Hashtbl.find_opt last q))
        (Gate.qubits arr.(i));
    List.iter (fun q -> Hashtbl.replace last q i) (Gate.qubits arr.(i))
  done;
  (arr, next)

let set_eq a b =
  List.sort_uniq compare a = List.sort_uniq compare b

let run ?stage ?(ancillas = []) circuit =
  let analysis = Qflow.Analysis.circuit circuit in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let dead_idx = Hashtbl.create 16 in
  List.iter
    (fun (k, _) -> Hashtbl.replace dead_idx k ())
    analysis.Qflow.Analysis.dead;
  (* QL060 — dead on the abstract state *)
  List.iter
    (fun (k, g) ->
      add
        (D.make ?stage ~gate_index:k ~qubits:(Gate.qubits g) ~code:"QL060"
           ~severity:D.Warning
           (Printf.sprintf
              "dead gate: %s is provably identity on the abstract state"
              (Gate.to_string g))))
    analysis.Qflow.Analysis.dead;
  let arr, next = next_use (Qgate.Circuit.gates circuit) in
  (* QL061 — adjacent self-inverse pairs: the next gate on every qubit
     of gate i is the same j, supports coincide, and the composition is
     identity up to global phase *)
  let consumed = Hashtbl.create 16 in
  Array.iteri
    (fun i gi ->
      if
        (not (Hashtbl.mem consumed i))
        && not (Hashtbl.mem dead_idx i)
      then
        match next.(i) with
        | (_, Some j0) :: rest
          when List.for_all (fun (_, nx) -> nx = Some j0) rest
               && (not (Hashtbl.mem dead_idx j0))
               && set_eq (Gate.qubits gi) (Gate.qubits arr.(j0)) ->
          let s = Qflow.Summary.of_gates [ gi; arr.(j0) ] in
          if s.Qflow.Summary.klass = Qflow.Summary.Identity then begin
            Hashtbl.replace consumed j0 ();
            add
              (D.make ?stage ~gate_index:i ~qubits:(Gate.qubits gi)
                 ~code:"QL061" ~severity:D.Warning
                 (Printf.sprintf
                    "gates %d and %d (%s, %s) are an adjacent self-inverse \
                     pair the optimizer missed"
                    i j0 (Gate.to_string gi)
                    (Gate.to_string arr.(j0))))
          end
        | _ -> ())
    arr;
  (* QL062 — trailing diagonal gates: diagonal content commutes with
     every terminal computational-basis measurement *)
  Array.iteri
    (fun i gi ->
      if
        Gate.is_diagonal_kind gi.Gate.kind
        && (not (Hashtbl.mem dead_idx i))
        && (not (Hashtbl.mem consumed i))
        && List.for_all (fun (_, nx) -> nx = None) next.(i)
        && next.(i) <> []
      then
        add
          (D.make ?stage ~gate_index:i ~qubits:(Gate.qubits gi) ~code:"QL062"
             ~severity:D.Info
             (Printf.sprintf
                "%s after the last use of its qubits affects no \
                 computational-basis output"
                (Gate.to_string gi))))
    arr;
  (* QL063 — declared ancillas must provably return to |0⟩ *)
  List.iter
    (fun q ->
      if q >= 0 && q < analysis.Qflow.Analysis.n_qubits then begin
        let v = analysis.Qflow.Analysis.final.(q) in
        if v <> Qflow.Absval.Zero then
          add
            (D.make ?stage ~qubits:[ q ] ~code:"QL063" ~severity:D.Warning
               (Printf.sprintf
                  "ancilla %d is not provably returned to |0> (final \
                   abstract state: %s)"
                  q
                  (Qflow.Absval.to_string v)))
      end)
    (List.sort_uniq compare ancillas);
  List.rev !diags
