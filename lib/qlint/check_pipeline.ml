module D = Diagnostic

let diag ?stage = D.make ?stage ~severity:D.Error

let run ?stage ?(source = "source") ?(sink = "scheduled") descriptors =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (match descriptors with
   | [] -> add (diag ?stage ~code:"QL080" "pipeline has no passes")
   | (first, inp, _) :: _ ->
     if inp <> source then
       add
         (diag ?stage ~code:"QL081"
            (Printf.sprintf
               "first pass %S consumes a %s artifact, but pipelines start \
                from a %s"
               first inp source)));
  let rec edges = function
    | (a, _, out) :: ((b, inp, _) :: _ as rest) ->
      if out <> inp then
        add
          (diag ?stage ~code:"QL082"
             (Printf.sprintf
                "pass %S produces a %s artifact but its successor %S \
                 consumes a %s"
                a out b inp));
      edges rest
    | [ (last, _, out) ] ->
      if out <> sink then
        add
          (diag ?stage ~code:"QL083"
             (Printf.sprintf
                "last pass %S produces a %s artifact, but the driver \
                 finalizes a %s"
                last out sink))
    | [] -> ()
  in
  edges descriptors;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _, _) ->
      if Hashtbl.mem seen name then
        add
          (diag ?stage ~code:"QL084"
             (Printf.sprintf "pass %S appears more than once" name))
      else Hashtbl.add seen name ())
    descriptors;
  List.rev !diags
