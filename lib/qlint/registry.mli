(** The single source of truth for diagnostic codes.

    One entry per QL0xx code: its family, the severity it is emitted
    at, and a one-line description. Everything that enumerates codes
    derives from this table — the README glossary block (pinned by a
    test against {!markdown_glossary}), the [qcc lint --explain]
    output, the SARIF rule catalog ({!Sarif}), and the
    registry-vs-[.mli]-doc consistency test. A code that is not in
    this table cannot appear in documentation without the test suite
    noticing. *)

type entry = {
  code : string;  (** "QL010" … *)
  family : string;  (** family key, e.g. ["circuit"], ["semantic"] *)
  severity : Diagnostic.severity;  (** severity this code is emitted at *)
  summary : string;  (** one-line description *)
}

val all : entry list
(** Every known code, sorted by code. *)

val find : string -> entry option

val families : (string * string) list
(** [(key, title)] in code order, e.g.
    [("circuit", "circuit / QASM well-formedness")]. *)

val family_title : string -> string
(** Raises [Not_found] on an unknown key. *)

val explain : string -> string option
(** Multi-line human explanation of one code ([qcc lint --explain]);
    [None] for unknown codes. *)

val markdown_glossary : unit -> string
(** The full markdown glossary table (header + one row per code), as
    embedded in README.md between the [ql-glossary] markers. *)
