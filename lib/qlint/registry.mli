(** The single source of truth for diagnostic codes.

    One entry per QL0xx code: its family, the severity it is emitted
    at, and a one-line description. Everything that enumerates codes
    derives from this table — the README glossary block (pinned by a
    test against {!markdown_glossary}), the [qcc lint --explain]
    output, the SARIF rule catalog ({!Sarif}), and the
    registry-vs-[.mli]-doc consistency test. A code that is not in
    this table cannot appear in documentation without the test suite
    noticing.

    Besides the QL0xx codes emitted by the [Check_*] modules here, the
    table registers the DS0xx domain-safety family emitted by
    [tools/domlint], the static analyzer that inventories ambient
    mutable state at module toplevel and gates [dune runtest] on its
    classification:

    - DS010: unclassified ambient mutable state (a module-toplevel ref,
      table, buffer, array or mutable record with no [@@domain_safety]
      attribute).
    - DS011: the same, but the binding escapes the module through its
      interface — every external writer must be audited.
    - DS020: a memo table classified [domain_local] or [reset_per_run]
      with no [reset_*] entry point referencing it in its module, so
      cold-start measurement and tests cannot clear it.
    - DS030: domain-unsafe stdlib use at module init
      ([Random.self_init], global [Format] mutation, …).
    - DS040: a [@@domain_safety] classification that no longer matches
      the code it annotates (stale or malformed). *)

type entry = {
  code : string;  (** "QL010" … *)
  family : string;  (** family key, e.g. ["circuit"], ["semantic"] *)
  severity : Diagnostic.severity;  (** severity this code is emitted at *)
  summary : string;  (** one-line description *)
}

val all : entry list
(** Every known code, sorted by code. *)

val find : string -> entry option

val families : (string * string) list
(** [(key, title)] in code order, e.g.
    [("circuit", "circuit / QASM well-formedness")]. *)

val family_title : string -> string
(** Raises [Not_found] on an unknown key. *)

val explain : string -> string option
(** Multi-line human explanation of one code ([qcc lint --explain]);
    [None] for unknown codes. *)

val markdown_glossary : unit -> string
(** The full markdown glossary table (header + one row per code), as
    embedded in README.md between the [ql-glossary] markers. *)
