(** Schedule legality (QL03x).

    - QL030 error: two instructions double-book a qubit — the diagnostic
      names both instruction ids, the shared qubit and the overlapping
      interval (the diagnostic-producing form of
      {!Qsched.Schedule.no_qubit_overlap})
    - QL031 error: dependence-order violation — an instruction starts
      before a chain predecessor it does not commute with
    - QL032 warning: entry duration differs from the instruction latency
    - QL033 error: entry with negative duration
    - QL034 error: schedule and GDG disagree on the instruction set
    - QL035 warning: recorded makespan differs from the last finish time
    - QL036 error: one instruction scheduled twice *)

val run :
  ?stage:string ->
  ?original:Qgdg.Gdg.t ->
  ?reorderable:(Qgdg.Inst.t -> Qgdg.Inst.t -> bool) ->
  Qsched.Schedule.t ->
  Diagnostic.t list
(** Without [original], only the intra-schedule checks run (QL030, QL032,
    QL033, QL035, QL036). With it, every pair of instructions sharing a
    qubit must start in chain order unless [reorderable] (default: never)
    declares them commuting, and the schedule must cover exactly the
    graph's instructions. *)
