module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst
module D = Diagnostic

let inst_sanity ?stage (i : Inst.t) =
  let diags = ref [] in
  if i.Inst.gates = [] then
    diags :=
      D.make ?stage ~insts:[ i.Inst.id ] ~code:"QL027" ~severity:D.Error
        (Printf.sprintf "instruction %d has no member gates" i.Inst.id)
      :: !diags;
  if i.Inst.latency < 0. then
    diags :=
      D.make ?stage ~insts:[ i.Inst.id ] ~code:"QL028" ~severity:D.Error
        (Printf.sprintf "instruction %d has negative latency %g" i.Inst.id
           i.Inst.latency)
      :: !diags;
  List.rev !diags

let of_problem ?stage = function
  | Gdg.Cycle ids ->
    D.make ?stage ~insts:ids ~code:"QL020" ~severity:D.Error
      (Printf.sprintf "dependence cycle through instructions %s"
         (String.concat ", " (List.map string_of_int ids)))
  | Gdg.Dangling_node { qubit; id } ->
    D.make ?stage ~insts:[ id ] ~qubits:[ qubit ] ~code:"QL021"
      ~severity:D.Error
      (Printf.sprintf "qubit %d's chain references instruction %d, which \
                       does not exist"
         qubit id)
  | Gdg.Not_in_support { qubit; id } ->
    D.make ?stage ~insts:[ id ] ~qubits:[ qubit ] ~code:"QL022"
      ~severity:D.Error
      (Printf.sprintf
         "instruction %d sits on qubit %d's chain but does not act on it" id
         qubit)
  | Gdg.Missing_from_chain { qubit; id } ->
    D.make ?stage ~insts:[ id ] ~qubits:[ qubit ] ~code:"QL023"
      ~severity:D.Error
      (Printf.sprintf
         "instruction %d acts on qubit %d but is missing from its chain" id
         qubit)
  | Gdg.Duplicate_on_chain { qubit; id } ->
    D.make ?stage ~insts:[ id ] ~qubits:[ qubit ] ~code:"QL024"
      ~severity:D.Error
      (Printf.sprintf "instruction %d appears twice on qubit %d's chain" id
         qubit)

let run ?stage g =
  let structural = List.map (of_problem ?stage) (Gdg.problems g) in
  (* the remaining checks need a well-formed node table; skip them when
     the structure is already broken rather than raise mid-analysis *)
  if structural <> [] then structural
  else begin
    let diags = ref [] in
    List.iter
      (fun (i : Inst.t) ->
        diags := List.rev_append (inst_sanity ?stage i) !diags;
        List.iter
          (fun (p : Inst.t) ->
            if not (Inst.shares_qubit p i) then
              diags :=
                D.make ?stage ~insts:[ p.Inst.id; i.Inst.id ] ~code:"QL026"
                  ~severity:D.Error
                  (Printf.sprintf
                     "instruction %d is a parent of %d but they share no \
                      qubit"
                     p.Inst.id i.Inst.id)
                :: !diags)
          (Gdg.parents g i.Inst.id))
      (Gdg.insts g);
    List.rev !diags
  end

let check_insts ?stage ~n_qubits insts =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (i : Inst.t) ->
      if Hashtbl.mem seen i.Inst.id then
        add
          (D.make ?stage ~insts:[ i.Inst.id ] ~code:"QL025" ~severity:D.Error
             (Printf.sprintf "duplicate instruction id %d in the stream"
                i.Inst.id))
      else Hashtbl.replace seen i.Inst.id ();
      List.iter
        (fun q ->
          if q < 0 || q >= n_qubits then
            add
              (D.make ?stage ~insts:[ i.Inst.id ] ~qubits:[ q ] ~code:"QL010"
                 ~severity:D.Error
                 (Printf.sprintf
                    "instruction %d touches qubit %d outside the %d-qubit \
                     register"
                    i.Inst.id q n_qubits)))
        i.Inst.qubits;
      List.iter add (inst_sanity ?stage i))
    insts;
  List.rev !diags
