module Schedule = Qsched.Schedule
module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst
module D = Diagnostic

let eps = 1e-9

let intra ?stage (s : Schedule.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* per-entry timing sanity *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (e : Schedule.entry) ->
      let id = e.Schedule.inst.Inst.id in
      if Hashtbl.mem seen id then
        add
          (D.make ?stage ~insts:[ id ] ~code:"QL036" ~severity:D.Error
             (Printf.sprintf "instruction %d is scheduled more than once" id))
      else Hashtbl.replace seen id ();
      let duration = e.Schedule.finish -. e.Schedule.start in
      if duration < -.eps then
        add
          (D.make ?stage ~insts:[ id ]
             ~interval:(e.Schedule.start, e.Schedule.finish) ~code:"QL033"
             ~severity:D.Error
             (Printf.sprintf "instruction %d finishes before it starts" id))
      else if Float.abs (duration -. e.Schedule.inst.Inst.latency) > 1e-6 then
        add
          (D.make ?stage ~insts:[ id ]
             ~interval:(e.Schedule.start, e.Schedule.finish) ~code:"QL032"
             ~severity:D.Warning
             (Printf.sprintf
                "instruction %d occupies %.3f ns but its latency is %.3f ns"
                id duration e.Schedule.inst.Inst.latency)))
    s.Schedule.entries;
  (* qubit-resource conflicts, with the exact pair, qubit and window *)
  List.iter
    (fun ((a : Schedule.entry), (b : Schedule.entry), q) ->
      let ia = a.Schedule.inst.Inst.id and ib = b.Schedule.inst.Inst.id in
      let lo = Float.max a.Schedule.start b.Schedule.start in
      let hi = Float.min a.Schedule.finish b.Schedule.finish in
      add
        (D.make ?stage ~insts:[ ia; ib ] ~qubits:[ q ] ~interval:(lo, hi)
           ~code:"QL030" ~severity:D.Error
           (Printf.sprintf
              "instructions %d and %d double-book qubit %d over [%.2f, %.2f]"
              ia ib q lo hi)))
    (Schedule.conflicts s);
  let last_finish =
    List.fold_left
      (fun acc (e : Schedule.entry) -> Float.max acc e.Schedule.finish)
      0. s.Schedule.entries
  in
  if Float.abs (last_finish -. s.Schedule.makespan) > 1e-6 then
    add
      (D.make ?stage ~interval:(0., s.Schedule.makespan) ~code:"QL035"
         ~severity:D.Warning
         (Printf.sprintf
            "recorded makespan %.3f ns differs from the last finish %.3f ns"
            s.Schedule.makespan last_finish));
  List.rev !diags

let against_gdg ?stage ~reorderable g (s : Schedule.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let start = Hashtbl.create 64 in
  List.iter
    (fun (e : Schedule.entry) ->
      let id = e.Schedule.inst.Inst.id in
      if not (Hashtbl.mem start id) then
        Hashtbl.replace start id e.Schedule.start)
    s.Schedule.entries;
  (* the schedule must cover exactly the graph's instruction set *)
  Gdg.iter_insts g (fun i ->
      if not (Hashtbl.mem start i.Inst.id) then
        add
          (D.make ?stage ~insts:[ i.Inst.id ] ~code:"QL034" ~severity:D.Error
             (Printf.sprintf "instruction %d is in the GDG but never \
                              scheduled"
                i.Inst.id)));
  List.iter
    (fun (e : Schedule.entry) ->
      if not (Gdg.mem g e.Schedule.inst.Inst.id) then
        add
          (D.make ?stage ~insts:[ e.Schedule.inst.Inst.id ] ~code:"QL034"
             ~severity:D.Error
             (Printf.sprintf
                "scheduled instruction %d does not exist in the GDG"
                e.Schedule.inst.Inst.id)))
    s.Schedule.entries;
  (* chain order modulo declared commutations: a chain predecessor must
     not start strictly later (overlaps are QL030's business) *)
  for q = 0 to Gdg.n_qubits g - 1 do
    let rec pairs = function
      | [] -> ()
      | (a : Inst.t) :: rest ->
        List.iter
          (fun (b : Inst.t) ->
            match
              (Hashtbl.find_opt start a.Inst.id, Hashtbl.find_opt start b.Inst.id)
            with
            | Some sa, Some sb ->
              if sb < sa -. 1e-9 && not (reorderable a b) then
                add
                  (D.make ?stage ~insts:[ a.Inst.id; b.Inst.id ]
                     ~qubits:[ q ] ~interval:(sb, sa) ~code:"QL031"
                     ~severity:D.Error
                     (Printf.sprintf
                        "instruction %d starts at %.2f, before \
                         non-commuting chain predecessor %d on qubit %d \
                         (starts %.2f)"
                        b.Inst.id sb a.Inst.id q sa))
            | _ -> () (* coverage gaps already reported as QL034 *))
          rest;
        pairs rest
    in
    pairs (Gdg.chain g q)
  done;
  List.rev !diags

let run ?stage ?original ?(reorderable = fun _ _ -> false) s =
  let diags = intra ?stage s in
  match original with
  | None -> diags
  | Some g -> diags @ against_gdg ?stage ~reorderable g s
