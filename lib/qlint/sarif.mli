(** SARIF 2.1.0 rendering of a lint report.

    Static Analysis Results Interchange Format: one [run] of the
    [qlint] tool, with a rule catalog derived from {!Registry} for
    every code present in the report and one [result] per diagnostic.
    Severities map to SARIF levels ([Error→error], [Warning→warning],
    [Info→note]); the structured location lands in a logical location
    (the pipeline stage) plus a [properties] bag carrying the
    instruction ids, qubits, gate index and time window. Code-review
    frontends (GitHub code scanning among them) render these as
    annotations. *)

val to_json : Report.t -> Qobs.Json.t
val to_string : Report.t -> string
val pp : Format.formatter -> Report.t -> unit
