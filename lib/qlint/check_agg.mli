(** Aggregation policy (QL05x).

    - QL050 error: an aggregated block's qubit support exceeds the width
      limit (the optimal-control scalability bound, paper §2.5)
    - QL051 error: a block's recorded qubit set differs from the union of
      its member gates' supports — merged blocks must cover exactly their
      members
    - QL052 warning: a block with an empty qubit support *)

val run : ?stage:string -> width_limit:int -> Qgdg.Gdg.t -> Diagnostic.t list
(** Checks every instruction of an aggregated GDG. The diagonal-detection
    pass may create 2-qubit blocks regardless of the limit, so callers
    should pass [max width_limit 2]. *)
