(** Structured diagnostics for the pipeline static checkers.

    Every finding carries a stable [QL0xx] code, a severity, a
    human-readable message and a structured location naming the pipeline
    stage, instructions, qubits and time window involved — enough for a
    tool (or a test) to pinpoint the offending IR object without parsing
    the message. The code families:

    - QL01x circuit / QASM well-formedness
    - QL02x GDG structural invariants
    - QL03x schedule legality
    - QL04x mapping / routing legality
    - QL05x aggregation policy
    - QL06x semantic circuit lints (abstract interpretation)
    - QL07x aggregation-opportunity lints
    - QL08x pass-sequence composition

    {!Registry} is the single source of truth mapping each code to its
    family, severity and one-line summary. *)

type severity = Error | Warning | Info

type location = {
  stage : string option;  (** pipeline stage that produced the IR *)
  insts : int list;  (** instruction ids involved *)
  qubits : int list;  (** logical qubits or device sites involved *)
  gate_index : int option;  (** position in a gate stream *)
  interval : (float * float) option;  (** time window, ns *)
}

type t = {
  code : string;  (** "QL010" … "QL084" (see {!Registry.all}) *)
  severity : severity;
  message : string;
  loc : location;
}

val no_loc : location

val make :
  ?stage:string ->
  ?insts:int list ->
  ?qubits:int list ->
  ?gate_index:int ->
  ?interval:float * float ->
  code:string ->
  severity:severity ->
  string ->
  t

val is_error : t -> bool
val severity_to_string : severity -> string

val severity_rank : severity -> int
(** 0 = [Error], 1 = [Warning], 2 = [Info]. *)

val compare : t -> t -> int
(** Report order: severity (errors first), then code, then stage, then
    instruction ids, then the remaining location fields and message — a
    deterministic total order over any checker interleaving. *)

val equal : t -> t -> bool
(** Structural equality (the cross-checker dedup predicate in
    {!Report.of_list}). *)

val pp : Format.formatter -> t -> unit
(** One line: [QL030 error [stage] message (insts 3,7; qubits 2; t in
    [10.0, 12.5])]. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object; all location fields present ([null]/[[]] when
    absent). *)
