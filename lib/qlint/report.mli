(** Diagnostic collections and reporters.

    A report is the ordered set of diagnostics one lint run produced,
    with text and JSON renderings. [Check_failed] is how the compiler's
    [~check] mode fails fast: the exception carries the full structured
    report accumulated up to (and including) the offending boundary. *)

type t = { diagnostics : Diagnostic.t list }

exception Check_failed of t

val empty : t

val of_list : Diagnostic.t list -> t
(** Sorts into report order (severity, code, stage, instruction ids,
    remaining location, message) and drops exact duplicates, so the
    rendered report is deterministic regardless of which checkers ran
    in which order, and overlapping checkers never double-report. *)

val diagnostics : t -> Diagnostic.t list
val errors : t -> Diagnostic.t list
val has_errors : t -> bool

val worst : t -> Diagnostic.severity option
(** Most severe diagnostic present ([None] on an empty report). *)

val has_at_least : Diagnostic.severity -> t -> bool
(** Any diagnostic at or above the given severity? (The CI exit-code
    gate behind [qcc lint --severity-threshold].) *)

val counts : t -> int * int * int
(** (errors, warnings, infos). *)

val summary : t -> string
(** e.g. ["2 errors, 1 warning"] or ["no diagnostics"]. *)

val pp_text : Format.formatter -> t -> unit
(** One diagnostic per line, then the summary line. *)

val to_json : t -> string
(** [{"diagnostics": [...], "errors": n, "warnings": n, "infos": n}]. *)

val pp_json : Format.formatter -> t -> unit
