type severity = Error | Warning | Info

type location = {
  stage : string option;
  insts : int list;
  qubits : int list;
  gate_index : int option;
  interval : (float * float) option;
}

type t = {
  code : string;
  severity : severity;
  message : string;
  loc : location;
}

let no_loc =
  { stage = None; insts = []; qubits = []; gate_index = None; interval = None }

let make ?stage ?(insts = []) ?(qubits = []) ?gate_index ?interval ~code
    ~severity message =
  { code;
    severity;
    message;
    loc = { stage; insts; qubits; gate_index; interval } }

let is_error d = d.severity = Error

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* report order: severity, code, stage (None first), instruction ids,
   then the remaining location fields and the message — a total,
   deterministic key so reports from interleaved checkers always render
   identically *)
let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match Stdlib.compare a.code b.code with
     | 0 ->
       (match Stdlib.compare a.loc.stage b.loc.stage with
        | 0 ->
          (match Stdlib.compare a.loc.insts b.loc.insts with
           | 0 -> Stdlib.compare (a.loc.qubits, a.loc.gate_index, a.message)
                    (b.loc.qubits, b.loc.gate_index, b.message)
           | c -> c)
        | c -> c)
     | c -> c)
  | c -> c

let equal a b = compare a b = 0 && a.loc.interval = b.loc.interval

let ints is = String.concat "," (List.map string_of_int is)

let pp ppf d =
  Format.fprintf ppf "%s %s" d.code (severity_to_string d.severity);
  Option.iter (Format.fprintf ppf " [%s]") d.loc.stage;
  Format.fprintf ppf ": %s" d.message;
  let details =
    List.filter_map
      (fun x -> x)
      [ (match d.loc.insts with [] -> None | is -> Some ("insts " ^ ints is));
        (match d.loc.qubits with [] -> None | qs -> Some ("qubits " ^ ints qs));
        Option.map (Printf.sprintf "gate %d") d.loc.gate_index;
        Option.map
          (fun (a, b) -> Printf.sprintf "t in [%.2f, %.2f]" a b)
          d.loc.interval ]
  in
  if details <> [] then
    Format.fprintf ppf " (%s)" (String.concat "; " details)

let to_string d = Format.asprintf "%a" pp d

(* minimal JSON encoding — no external dependency *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_int_list is =
  Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int is))

let to_json d =
  let fields =
    [ ("code", json_string d.code);
      ("severity", json_string (severity_to_string d.severity));
      ("message", json_string d.message);
      ("stage",
       match d.loc.stage with Some s -> json_string s | None -> "null");
      ("insts", json_int_list d.loc.insts);
      ("qubits", json_int_list d.loc.qubits);
      ("gate_index",
       match d.loc.gate_index with Some k -> string_of_int k | None -> "null");
      ("interval",
       match d.loc.interval with
       | Some (a, b) ->
         Printf.sprintf "[%s,%s]" (json_float a) (json_float b)
       | None -> "null") ]
  in
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v)
          fields))
