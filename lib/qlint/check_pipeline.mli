(** Pass-sequence composition (QL08x).

    Checks a pipeline description — [(pass name, input stage, output
    stage)] triples as produced by the compiler's pass registry — for
    composition errors before anything runs:

    - QL080 error: empty pipeline
    - QL081 error: first pass does not consume the source stage
    - QL082 error: consecutive passes whose stages do not line up
    - QL083 error: last pass does not produce the sink stage
    - QL084 error: duplicate pass name (span names must be unique)

    This is the static complement of the driver's runtime stage
    witnesses: the driver raises on the first bad edge at execution
    time, this check reports every bad edge without running anything. *)

val run :
  ?stage:string -> ?source:string -> ?sink:string ->
  (string * string * string) list -> Diagnostic.t list
(** [source] defaults to ["source"], [sink] to ["scheduled"]. *)
