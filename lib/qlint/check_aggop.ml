module Gate = Qgate.Gate
module Inst = Qgdg.Inst
module D = Diagnostic

let run ?stage ?gate_time ~width_limit gdg =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let order = Qgdg.Gdg.insts gdg in
  let summaries = Hashtbl.create 64 in
  let summary (i : Inst.t) =
    match Hashtbl.find_opt summaries i.Inst.id with
    | Some s -> s
    | None ->
      let s = Qflow.Summary.of_inst i in
      Hashtbl.replace summaries i.Inst.id s;
      s
  in
  (* QL070 — chain-adjacent pairs that commute algebraically; enumerate
     successors in topological inst order / sorted qubit order so the
     report is deterministic *)
  let _, succs = Qgdg.Gdg.neighbor_tables gdg in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a : Inst.t) ->
      List.iter
        (fun q ->
          match Hashtbl.find_opt succs (a.Inst.id, q) with
          | None -> ()
          | Some bid ->
            if not (Hashtbl.mem seen (a.Inst.id, bid)) then begin
              Hashtbl.replace seen (a.Inst.id, bid) ();
              let b = Qgdg.Gdg.find gdg bid in
              let joint =
                List.sort_uniq compare (a.Inst.qubits @ b.Inst.qubits)
              in
              if List.length joint <= width_limit then begin
                let sa = summary a and sb = summary b in
                match
                  Qflow.Summary.commutes ~a:a.Inst.gates ~b:b.Inst.gates sa sb
                with
                | Some true ->
                  add
                    (D.make ?stage ~insts:[ a.Inst.id; bid ] ~qubits:joint
                       ~code:"QL070" ~severity:D.Info
                       (Printf.sprintf
                          "adjacent instructions %d and %d commute \
                           algebraically (%s x %s) but were never merged"
                          a.Inst.id bid
                          (Qflow.Summary.klass_to_string sa.Qflow.Summary.klass)
                          (Qflow.Summary.klass_to_string sb.Qflow.Summary.klass)))
                | Some false | None -> ()
              end
            end)
        a.Inst.qubits)
    order;
  (* QL071 — all-diagonal aggregates costed as the serial sum of their
     members' gate times *)
  (match gate_time with
   | None -> ()
   | Some cost ->
     List.iter
       (fun (i : Inst.t) ->
         if
           List.length i.Inst.gates >= 2
           && List.for_all
                (fun g -> Gate.is_diagonal_kind g.Gate.kind)
                i.Inst.gates
         then begin
           let serial =
             List.fold_left (fun acc g -> acc +. cost g) 0. i.Inst.gates
           in
           if serial > 0. && i.Inst.latency >= serial -. 1e-6 then
             add
               (D.make ?stage ~insts:[ i.Inst.id ] ~qubits:i.Inst.qubits
                  ~code:"QL071" ~severity:D.Info
                  (Printf.sprintf
                     "aggregate %d: %d diagonal members commute yet are \
                      costed serially (%.1f ns = member sum)"
                     i.Inst.id
                     (List.length i.Inst.gates)
                     i.Inst.latency))
         end)
       order);
  List.rev !diags
