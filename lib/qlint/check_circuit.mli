(** Circuit / QASM well-formedness (QL01x).

    - QL010 error: gate qubit index outside the register
    - QL011 error: duplicate qubit operands in one gate
    - QL012 error: operand count does not match the gate's arity
    - QL013 warning: register qubit never used (only with [warn_unused])
    - QL015 error: QASM parse failure

    [Qgate.Gate.make]/[Circuit.make] enforce most of this at construction
    time; the checker re-verifies hand-built or deserialized gate records
    and turns violations into diagnostics instead of exceptions. *)

val check_gates :
  ?stage:string -> n_qubits:int -> Qgate.Gate.t list -> Diagnostic.t list

val run :
  ?stage:string -> ?warn_unused:bool -> Qgate.Circuit.t -> Diagnostic.t list
(** [warn_unused] defaults to [false]: compiled circuits legitimately
    carry idle register qubits (device sites), so only the front-door
    input lint asks for QL013. *)

val lint_qasm_string : ?stage:string -> string -> Diagnostic.t list
(** Parse, then {!run} with [warn_unused:true]; a parse failure is the
    single QL015 diagnostic. *)

val lint_qasm_file : ?stage:string -> string -> Diagnostic.t list
