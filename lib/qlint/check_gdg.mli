(** GDG structural invariants (QL02x).

    - QL020 error: dependence cycle
    - QL021 error: chain references an id with no node
    - QL022 error: node on a chain outside its qubit support
    - QL023 error: node missing from a support qubit's chain
    - QL024 error: node appears twice on one chain
    - QL025 error: duplicate instruction id in a raw stream
    - QL026 error: a parent shares no qubit with its child
    - QL027 error: instruction with no member gates
    - QL028 error: negative instruction latency *)

val run : ?stage:string -> Qgdg.Gdg.t -> Diagnostic.t list
(** Structural problems ({!Qgdg.Gdg.problems}), parent/child qubit
    sharing, and per-instruction sanity. *)

val check_insts :
  ?stage:string -> n_qubits:int -> Qgdg.Inst.t list -> Diagnostic.t list
(** Lint a raw instruction stream before graph construction — duplicate
    ids, out-of-range qubits and per-instruction sanity, without the
    exceptions [Gdg.of_insts] would raise. *)
