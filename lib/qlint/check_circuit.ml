module Gate = Qgate.Gate
module D = Diagnostic

let rec has_dup = function
  | [] -> false
  | (q : int) :: rest -> List.mem q rest || has_dup rest

let check_gates ?stage ~n_qubits gates =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iteri
    (fun index g ->
      let qubits = Gate.qubits g in
      let arity = Gate.kind_arity g.Gate.kind in
      if List.length qubits <> arity then
        add
          (D.make ?stage ~gate_index:index ~qubits ~code:"QL012"
             ~severity:D.Error
             (Printf.sprintf "gate %s takes %d operand%s but is given %d"
                (Gate.name g) arity
                (if arity = 1 then "" else "s")
                (List.length qubits)));
      if has_dup qubits then
        add
          (D.make ?stage ~gate_index:index ~qubits ~code:"QL011"
             ~severity:D.Error
             (Printf.sprintf "gate %s repeats a qubit operand" (Gate.name g)));
      List.iter
        (fun q ->
          if q < 0 || q >= n_qubits then
            add
              (D.make ?stage ~gate_index:index ~qubits:[ q ] ~code:"QL010"
                 ~severity:D.Error
                 (Printf.sprintf
                    "gate %s touches qubit %d outside the %d-qubit register"
                    (Gate.name g) q n_qubits)))
        qubits)
    gates;
  List.rev !diags

let run ?stage ?(warn_unused = false) circuit =
  let n_qubits = Qgate.Circuit.n_qubits circuit in
  let gates = Qgate.Circuit.gates circuit in
  let diags = check_gates ?stage ~n_qubits gates in
  if not warn_unused then diags
  else begin
    let used = Qgate.Circuit.used_qubits circuit in
    let idle =
      List.filter (fun q -> not (List.mem q used)) (List.init n_qubits Fun.id)
    in
    diags
    @ List.map
        (fun q ->
          D.make ?stage ~qubits:[ q ] ~code:"QL013" ~severity:D.Warning
            (Printf.sprintf "register qubit %d is never used" q))
        idle
  end

(* [Gate.make] inside the parser rejects repeated / out-of-range
   operands with [Invalid_argument] before the checker can see the gate
   as data; report that as a lint finding too, under the matching code *)
let lint_parsed ?stage ~where parse =
  match parse () with
  | circuit -> run ?stage ~warn_unused:true circuit
  | exception Qgate.Qasm.Parse_error msg ->
    [ D.make ?stage ~code:"QL015" ~severity:D.Error
        (Printf.sprintf "QASM parse error%s: %s" where msg) ]
  | exception Invalid_argument msg ->
    let contains sub =
      let n = String.length sub and m = String.length msg in
      let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
      at 0
    in
    let code =
      if contains "repeated qubit" then "QL011"
      else if contains "arity" then "QL012"
      else "QL010"
    in
    [ D.make ?stage ~code ~severity:D.Error
        (Printf.sprintf "malformed gate%s: %s" where msg) ]

let lint_qasm_string ?stage text =
  lint_parsed ?stage ~where:"" (fun () -> Qgate.Qasm.of_string text)

let lint_qasm_file ?stage path =
  lint_parsed ?stage
    ~where:(Printf.sprintf " in %s" path)
    (fun () -> Qgate.Qasm.read_file path)
