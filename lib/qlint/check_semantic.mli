(** Semantic circuit lints (QL06x), powered by {!Qflow}'s forward
    abstract interpretation from |0…0⟩.

    - QL060 warning: dead gate — provably identity (up to global phase)
      on the inferred abstract state, so removing it leaves the
      statevector unchanged up to global phase
    - QL061 warning: adjacent self-inverse gate pair (the pair composes
      to the identity and nothing on their qubits runs in between) the
      optimizer missed
    - QL062 info: a diagonal gate after the last use of all its qubits —
      it only rotates computational-basis phases, so it cannot affect
      any terminal computational-basis measurement
    - QL063 warning: a declared ancilla whose final abstract state is
      not provably [Zero]

    QL060/QL061/QL062 are mutually exclusive per gate (a gate already
    reported dead is not re-reported as half of a pair or as trailing).
    QL063 only fires for qubits passed in [ancillas] — the IR carries
    no ancilla annotations, so the caller declares them. *)

val run :
  ?stage:string -> ?ancillas:int list -> Qgate.Circuit.t -> Diagnostic.t list
