(** Mapping / routing legality (QL04x).

    - QL040 error: a 2-qubit physical gate joins non-adjacent sites (a
      wider gate is not site-local)
    - QL041 error: a placement is not a consistent logical↔site bijection
    - QL042 error: the final placement does not equal the initial
      placement composed with the net effect of the routing SWAPs
    - QL043 error: a site index outside the device *)

val check_placement :
  ?stage:string -> ?label:string -> topology:Qmap.Topology.t ->
  Qmap.Placement.t -> Diagnostic.t list
(** QL041/QL043 on one placement; [label] names it in messages
    ("initial", "final"). *)

val check_adjacency :
  ?stage:string -> topology:Qmap.Topology.t -> Qgdg.Inst.t list ->
  Diagnostic.t list
(** QL040/QL043 on every member gate of a physical instruction stream. *)

val check_adjacency_circuit :
  ?stage:string -> topology:Qmap.Topology.t -> Qgate.Circuit.t ->
  Diagnostic.t list
(** Same, over a plain physical circuit; locations carry the gate index
    instead of an instruction id. *)

val check_routing :
  ?stage:string ->
  topology:Qmap.Topology.t ->
  initial:Qmap.Placement.t ->
  final:Qmap.Placement.t ->
  logical:Qgate.Gate.t list ->
  physical:Qgate.Gate.t list ->
  unit ->
  Diagnostic.t list
(** Replays the router's contract: walking the physical stream, every
    gate must be the current-placement image of the next logical gate,
    or a routing SWAP that updates the placement; the walk must consume
    the whole logical stream and land exactly on [final]. Catches wrong
    relabelling, dropped/duplicated gates and placement drift (QL042). *)

val run :
  ?stage:string ->
  topology:Qmap.Topology.t ->
  ?initial:Qmap.Placement.t ->
  ?final:Qmap.Placement.t ->
  Qgdg.Inst.t list ->
  Diagnostic.t list
(** Adjacency over the stream plus placement consistency for whichever
    placements are supplied. *)
