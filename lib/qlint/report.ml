type t = { diagnostics : Diagnostic.t list }

exception Check_failed of t

let empty = { diagnostics = [] }
let of_list ds = { diagnostics = List.stable_sort Diagnostic.compare ds }
let diagnostics r = r.diagnostics
let errors r = List.filter Diagnostic.is_error r.diagnostics
let has_errors r = List.exists Diagnostic.is_error r.diagnostics

let counts r =
  List.fold_left
    (fun (e, w, i) (d : Diagnostic.t) ->
      match d.Diagnostic.severity with
      | Diagnostic.Error -> (e + 1, w, i)
      | Diagnostic.Warning -> (e, w + 1, i)
      | Diagnostic.Info -> (e, w, i + 1))
    (0, 0, 0) r.diagnostics

let summary r =
  let e, w, i = counts r in
  if e + w + i = 0 then "no diagnostics"
  else begin
    let part n what =
      if n = 0 then None
      else Some (Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s"))
    in
    String.concat ", "
      (List.filter_map
         (fun x -> x)
         [ part e "error"; part w "warning"; part i "info" ])
  end

let pp_text ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  Format.fprintf ppf "%s@." (summary r)

let to_json r =
  let e, w, i = counts r in
  Printf.sprintf
    "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d}"
    (String.concat "," (List.map Diagnostic.to_json r.diagnostics))
    e w i

let pp_json ppf r = Format.fprintf ppf "%s@." (to_json r)

let () =
  Printexc.register_printer (function
    | Check_failed r ->
      Some
        (Printf.sprintf "Qlint.Report.Check_failed (%s)" (summary r))
    | _ -> None)
