type t = { diagnostics : Diagnostic.t list }

exception Check_failed of t

let empty = { diagnostics = [] }

(* sort into report order, then drop exact duplicates — overlapping
   checkers (the front-door circuit lint and the first pipeline
   checkpoint, say) may report the same finding twice *)
let of_list ds =
  let sorted = List.stable_sort Diagnostic.compare ds in
  let rec dedup = function
    | a :: (b :: _ as rest) when Diagnostic.equal a b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  { diagnostics = dedup sorted }

let diagnostics r = r.diagnostics
let errors r = List.filter Diagnostic.is_error r.diagnostics
let has_errors r = List.exists Diagnostic.is_error r.diagnostics

let worst r =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      match acc with
      | None -> Some d.Diagnostic.severity
      | Some s ->
        if
          Diagnostic.severity_rank d.Diagnostic.severity
          < Diagnostic.severity_rank s
        then Some d.Diagnostic.severity
        else acc)
    None r.diagnostics

let has_at_least threshold r =
  List.exists
    (fun (d : Diagnostic.t) ->
      Diagnostic.severity_rank d.Diagnostic.severity
      <= Diagnostic.severity_rank threshold)
    r.diagnostics

let counts r =
  List.fold_left
    (fun (e, w, i) (d : Diagnostic.t) ->
      match d.Diagnostic.severity with
      | Diagnostic.Error -> (e + 1, w, i)
      | Diagnostic.Warning -> (e, w + 1, i)
      | Diagnostic.Info -> (e, w, i + 1))
    (0, 0, 0) r.diagnostics

let summary r =
  let e, w, i = counts r in
  if e + w + i = 0 then "no diagnostics"
  else begin
    let part n what =
      if n = 0 then None
      else Some (Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s"))
    in
    String.concat ", "
      (List.filter_map
         (fun x -> x)
         [ part e "error"; part w "warning"; part i "info" ])
  end

let pp_text ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  Format.fprintf ppf "%s@." (summary r)

let to_json r =
  let e, w, i = counts r in
  Printf.sprintf
    "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"infos\":%d}"
    (String.concat "," (List.map Diagnostic.to_json r.diagnostics))
    e w i

let pp_json ppf r = Format.fprintf ppf "%s@." (to_json r)

(* module-init registration, never re-run after load *)
let () =
  Printexc.register_printer (function
    | Check_failed r ->
      Some
        (Printf.sprintf "Qlint.Report.Check_failed (%s)" (summary r))
    | _ -> None)
  [@@domain_safety frozen_after_init]
