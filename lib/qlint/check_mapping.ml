module Gate = Qgate.Gate
module Inst = Qgdg.Inst
module Topology = Qmap.Topology
module Placement = Qmap.Placement
module D = Diagnostic

let check_placement ?stage ?(label = "placement") ~topology p =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_sites = Topology.n_sites topology in
  if Array.length p.Placement.site_to_logical <> n_sites then
    add
      (D.make ?stage ~code:"QL043" ~severity:D.Error
         (Printf.sprintf
            "%s covers %d sites but the device has %d" label
            (Array.length p.Placement.site_to_logical)
            n_sites));
  Array.iteri
    (fun logical site ->
      if site < 0 || site >= Array.length p.Placement.site_to_logical then
        add
          (D.make ?stage ~qubits:[ site ] ~code:"QL043" ~severity:D.Error
             (Printf.sprintf "%s sends logical qubit %d to site %d, outside \
                              the device"
                label logical site))
      else if p.Placement.site_to_logical.(site) <> logical then
        add
          (D.make ?stage ~qubits:[ site ] ~code:"QL041" ~severity:D.Error
             (Printf.sprintf
                "%s is not a bijection: logical qubit %d maps to site %d, \
                 which records occupant %d"
                label logical site
                p.Placement.site_to_logical.(site))))
    p.Placement.logical_to_site;
  List.rev !diags

let check_adjacency ?stage ~topology insts =
  let n_sites = Topology.n_sites topology in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (i : Inst.t) ->
      List.iter
        (fun g ->
          let qubits = Gate.qubits g in
          let out_of_range = List.filter (fun q -> q < 0 || q >= n_sites) qubits in
          if out_of_range <> [] then
            add
              (D.make ?stage ~insts:[ i.Inst.id ] ~qubits:out_of_range
                 ~code:"QL043" ~severity:D.Error
                 (Printf.sprintf
                    "instruction %d's gate %s touches a site outside the \
                     %d-site device"
                    i.Inst.id (Gate.to_string g) n_sites))
          else if not (Qmap.Router.gate_respects_topology ~topology g) then
            add
              (D.make ?stage ~insts:[ i.Inst.id ] ~qubits ~code:"QL040"
                 ~severity:D.Error
                 (Printf.sprintf
                    "instruction %d's gate %s acts on non-adjacent sites"
                    i.Inst.id (Gate.to_string g))))
        i.Inst.gates)
    insts;
  List.rev !diags

let check_adjacency_circuit ?stage ~topology circuit =
  let n_sites = Topology.n_sites topology in
  let out_of_range g =
    List.filter (fun q -> q < 0 || q >= n_sites) (Gate.qubits g)
  in
  List.concat_map
    (fun (index, g) ->
      match out_of_range g with
      | [] ->
        [ D.make ?stage ~gate_index:index ~qubits:(Gate.qubits g)
            ~code:"QL040" ~severity:D.Error
            (Printf.sprintf "gate %s acts on non-adjacent sites"
               (Gate.to_string g)) ]
      | bad ->
        [ D.make ?stage ~gate_index:index ~qubits:bad ~code:"QL043"
            ~severity:D.Error
            (Printf.sprintf "gate %s touches a site outside the %d-site \
                             device"
               (Gate.to_string g) n_sites) ])
    (Qmap.Router.topology_violations ~topology circuit)

(* Replay the routing contract. The physical stream interleaves
   current-placement images of the logical gates with inserted SWAPs;
   a SWAP identical to the expected routed gate is the program's own
   (the router never inserts a SWAP between already-adjacent operands,
   which is exactly when the expected image is that SWAP). *)
let check_routing ?stage ~topology ~initial ~final ~logical ~physical () =
  let err fmt =
    Printf.ksprintf
      (fun m -> [ D.make ?stage ~code:"QL042" ~severity:D.Error m ])
      fmt
  in
  let n_sites = Topology.n_sites topology in
  let rec walk placement index logical physical =
    match (logical, physical) with
    | [], [] ->
      if Placement.equal placement final then []
      else begin
        let drift =
          Array.to_list placement.Placement.logical_to_site
          |> List.mapi (fun l s -> (l, s))
          |> List.find_opt (fun (l, s) ->
                 final.Placement.logical_to_site.(l) <> s)
        in
        match drift with
        | Some (l, s) ->
          err
            "final placement disagrees with initial ∘ routing SWAPs: \
             logical qubit %d ends on site %d, but the result records %d"
            l s final.Placement.logical_to_site.(l)
        | None -> err "final placement disagrees with initial ∘ routing SWAPs"
      end
    | l :: ls, p :: ps ->
      let expected =
        Gate.map_qubits (fun q -> Placement.site_of placement q) l
      in
      if Gate.equal p expected then walk placement (index + 1) ls ps
      else begin
        match (p.Gate.kind, Gate.qubits p) with
        | Gate.Swap, [ a; b ]
          when a >= 0 && a < n_sites && b >= 0 && b < n_sites ->
          walk (Placement.apply_swap placement a b) (index + 1) logical ps
        | _ ->
          err
            "physical gate %d is %s, but the placement image of the next \
             logical gate is %s and it is not a routing SWAP"
            index (Gate.to_string p) (Gate.to_string expected)
      end
    | [], p :: ps ->
      (match (p.Gate.kind, Gate.qubits p) with
       | Gate.Swap, [ a; b ]
         when a >= 0 && a < n_sites && b >= 0 && b < n_sites ->
         walk (Placement.apply_swap placement a b) (index + 1) [] ps
       | _ ->
         err
           "physical gate %d (%s) has no corresponding logical gate left"
           index (Gate.to_string p))
    | _ :: _, [] ->
      err
        "the physical stream ends with %d logical gate%s unrouted"
        (List.length logical)
        (if List.length logical = 1 then "" else "s")
  in
  match walk initial 0 logical physical with
  | diags -> diags
  | exception Invalid_argument msg -> err "routing replay failed: %s" msg

let run ?stage ~topology ?initial ?final insts =
  let placement_diags label = function
    | None -> []
    | Some p -> check_placement ?stage ~label ~topology p
  in
  placement_diags "initial placement" initial
  @ placement_diags "final placement" final
  @ check_adjacency ?stage ~topology insts
