module D = Diagnostic
module J = Qobs.Json

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let rule_of code =
  let base = [ ("id", J.Str code) ] in
  match Registry.find code with
  | None -> J.Obj base
  | Some entry ->
    J.Obj
      (base
       @ [ ("shortDescription", J.Obj [ ("text", J.Str entry.Registry.summary) ]);
           ( "defaultConfiguration",
             J.Obj [ ("level", J.Str (level_of entry.Registry.severity)) ] );
           ( "properties",
             J.Obj [ ("family", J.Str (Registry.family_title entry.Registry.family)) ]
           ) ])

let result_of ~rule_index (d : D.t) =
  let loc = d.D.loc in
  let properties =
    List.filter_map Fun.id
      [ (match loc.D.insts with
         | [] -> None
         | is -> Some ("insts", J.List (List.map (fun i -> J.Int i) is)));
        (match loc.D.qubits with
         | [] -> None
         | qs -> Some ("qubits", J.List (List.map (fun q -> J.Int q) qs)));
        Option.map (fun k -> ("gateIndex", J.Int k)) loc.D.gate_index;
        Option.map
          (fun (a, b) -> ("interval", J.List [ J.Float a; J.Float b ]))
          loc.D.interval ]
  in
  J.Obj
    ([ ("ruleId", J.Str d.D.code);
       ("ruleIndex", J.Int (rule_index d.D.code));
       ("level", J.Str (level_of d.D.severity));
       ("message", J.Obj [ ("text", J.Str d.D.message) ]) ]
     @ [ ( "locations",
           J.List
             [ J.Obj
                 [ ( "logicalLocations",
                     J.List
                       [ J.Obj
                           [ ( "fullyQualifiedName",
                               J.Str (Option.value ~default:"lint" loc.D.stage)
                             );
                             ("kind", J.Str "module") ] ] ) ] ] ) ]
     @ if properties = [] then [] else [ ("properties", J.Obj properties) ])

let to_json report =
  let diags = Report.diagnostics report in
  (* rule catalog: distinct codes in report order; ruleIndex points into it *)
  let codes = List.sort_uniq compare (List.map (fun d -> d.D.code) diags) in
  let rule_index code =
    let rec go k = function
      | [] -> -1
      | c :: _ when c = code -> k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 codes
  in
  J.Obj
    [ ("$schema", J.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", J.Str "2.1.0");
      ( "runs",
        J.List
          [ J.Obj
              [ ( "tool",
                  J.Obj
                    [ ( "driver",
                        J.Obj
                          [ ("name", J.Str "qlint");
                            ( "informationUri",
                              J.Str
                                "https://github.com/paper-repo-growth/qagg" );
                            ("version", J.Str "1.0.0");
                            ("rules", J.List (List.map rule_of codes)) ] ) ] );
                ("results", J.List (List.map (result_of ~rule_index) diags)) ]
          ] ) ]

let to_string report = J.to_string (to_json report)
let pp ppf report = Format.fprintf ppf "%s@." (to_string report)
