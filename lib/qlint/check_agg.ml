module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst
module Gate = Qgate.Gate
module D = Diagnostic

let run ?stage ~width_limit g =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (i : Inst.t) ->
      let width = Inst.width i in
      if width > width_limit then
        add
          (D.make ?stage ~insts:[ i.Inst.id ] ~qubits:i.Inst.qubits
             ~code:"QL050" ~severity:D.Error
             (Printf.sprintf
                "block %d spans %d qubits, over the width limit %d"
                i.Inst.id width width_limit));
      let member_support =
        List.sort_uniq compare (List.concat_map Gate.qubits i.Inst.gates)
      in
      if List.sort_uniq compare i.Inst.qubits <> member_support then
        add
          (D.make ?stage ~insts:[ i.Inst.id ] ~qubits:i.Inst.qubits
             ~code:"QL051" ~severity:D.Error
             (Printf.sprintf
                "block %d records qubits {%s} but its member gates act on \
                 {%s}"
                i.Inst.id
                (String.concat "," (List.map string_of_int i.Inst.qubits))
                (String.concat ","
                   (List.map string_of_int member_support))));
      if i.Inst.qubits = [] then
        add
          (D.make ?stage ~insts:[ i.Inst.id ] ~code:"QL052"
             ~severity:D.Warning
             (Printf.sprintf "block %d has an empty qubit support" i.Inst.id)))
    (Gdg.insts g);
  List.rev !diags
