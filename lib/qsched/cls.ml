module Inst = Qgdg.Inst

let schedule g =
  let n_qubits = Qgdg.Gdg.n_qubits g in
  let groups = Qgdg.Comm_group.build g in
  (* per-qubit queue of remaining groups; head is the current group *)
  let queue = Array.init (max 1 n_qubits) (fun q ->
      ref (Qgdg.Comm_group.groups_on groups q))
  in
  let total = Qgdg.Gdg.size g in
  let scheduled : (int, Schedule.entry) Hashtbl.t = Hashtbl.create total in
  let qubit_free = Array.make (max 1 n_qubits) 0. in
  let in_current_group id q =
    match !(queue.(q)) with
    | [] -> false
    | current :: _ -> List.mem id current
  in
  let drop_from_group id q =
    match !(queue.(q)) with
    | [] -> ()
    | current :: rest ->
      let current = List.filter (( <> ) id) current in
      queue.(q) := if current = [] then rest else current :: rest
  in
  let topo = Qgdg.Gdg.insts g in
  let eps = 1e-9 in
  let time = ref 0. in
  let entries = ref [] in
  while Hashtbl.length scheduled < total do
    let candidates =
      List.filter
        (fun (i : Inst.t) ->
          (not (Hashtbl.mem scheduled i.Inst.id))
          && List.for_all
               (fun q ->
                 in_current_group i.Inst.id q
                 && qubit_free.(q) <= !time +. eps)
               i.Inst.qubits)
        topo
    in
    let claimed = Array.make (max 1 n_qubits) false in
    let select (i : Inst.t) =
      let entry =
        { Schedule.inst = i;
          start = !time;
          finish = !time +. i.Inst.latency }
      in
      Hashtbl.replace scheduled i.Inst.id entry;
      entries := entry :: !entries;
      List.iter
        (fun q ->
          claimed.(q) <- true;
          qubit_free.(q) <- entry.Schedule.finish;
          drop_from_group i.Inst.id q)
        i.Inst.qubits
    in
    if candidates <> [] then begin
      Qobs.Metrics.tick "cls.matching_rounds";
      (* wide instructions claim greedily; the rest go through matching *)
      let wide, narrow = List.partition (fun i -> Inst.width i > 2) candidates in
      List.iter
        (fun (i : Inst.t) ->
          if List.for_all (fun q -> not claimed.(q)) i.Inst.qubits then select i)
        wide;
      let edges =
        List.filter_map
          (fun (i : Inst.t) ->
            if List.exists (fun q -> claimed.(q)) i.Inst.qubits then None
            else
              match i.Inst.qubits with
              | [ q ] -> Some { Qgraph.Matching.u = q; v = q; label = i }
              | [ q; r ] -> Some { Qgraph.Matching.u = q; v = r; label = i }
              | _ -> None)
          narrow
      in
      let chosen = Qgraph.Matching.maximal_edges ~n:n_qubits edges in
      Qobs.Metrics.tick ~by:(List.length chosen) "cls.matched";
      List.iter (fun e -> select e.Qgraph.Matching.label) chosen
    end;
    if Hashtbl.length scheduled < total then begin
      let startable_now =
        List.exists
          (fun (i : Inst.t) ->
            (not (Hashtbl.mem scheduled i.Inst.id))
            && List.for_all
                 (fun q ->
                   in_current_group i.Inst.id q
                   && qubit_free.(q) <= !time +. eps)
                 i.Inst.qubits)
          topo
      in
      if not startable_now then begin
        (* advance to the next completion event *)
        let next =
          Hashtbl.fold
            (fun _ e acc ->
              if e.Schedule.finish > !time +. eps then
                Float.min acc e.Schedule.finish
              else acc)
            scheduled Float.infinity
        in
        if next = Float.infinity then
          failwith "Cls.schedule: deadlock (malformed dependence graph)";
        Qobs.Metrics.tick "cls.time_advances";
        time := next
      end
    end
  done;
  Schedule.make ~n_qubits !entries

let makespan g = (schedule g).Schedule.makespan
