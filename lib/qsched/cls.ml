module Inst = Qgdg.Inst

let schedule g =
  let n_qubits = Qgdg.Gdg.n_qubits g in
  let groups = Qgdg.Comm_group.build g in
  (* Per-qubit cursor over the ordered groups: [head.(q)] is the current
     group's position and [remaining.(q).(pos)] counts its unscheduled
     members. Membership probes are O(1) flat-index lookups against the
     group index instead of [List.mem] scans of a shrinking head list,
     and emptying the current group advances the cursor exactly where
     the list version dropped an emptied head — an unscheduled
     instruction is in the current group iff its group position equals
     the cursor. *)
  let total = Qgdg.Gdg.size g in
  let scheduled : (int, Schedule.entry) Hashtbl.t = Hashtbl.create total in
  let qubit_free = Array.make (max 1 n_qubits) 0. in
  let head = Array.make (max 1 n_qubits) 0 in
  let remaining =
    Array.init (max 1 n_qubits) (fun q ->
        Array.of_list
          (List.map List.length (Qgdg.Comm_group.groups_on groups q)))
  in
  let in_current_group id q =
    head.(q) < Array.length remaining.(q)
    && Qgdg.Comm_group.lookup groups ~qubit:q id = head.(q)
  in
  let drop_from_group id q =
    let pos = Qgdg.Comm_group.lookup groups ~qubit:q id in
    if pos >= 0 then begin
      remaining.(q).(pos) <- remaining.(q).(pos) - 1;
      while
        head.(q) < Array.length remaining.(q) && remaining.(q).(head.(q)) = 0
      do
        head.(q) <- head.(q) + 1
      done
    end
  in
  (* the unscheduled suffix of the topological order, pruned each round
     so the per-round scans shrink as the schedule fills (relative order
     is preserved, so candidate order — and therefore every matching
     decision — is unchanged) *)
  let topo_rest = ref (Qgdg.Gdg.insts g) in
  let eps = 1e-9 in
  let time = ref 0. in
  let entries = ref [] in
  while Hashtbl.length scheduled < total do
    topo_rest :=
      List.filter
        (fun (i : Inst.t) -> not (Hashtbl.mem scheduled i.Inst.id))
        !topo_rest;
    let candidates =
      List.filter
        (fun (i : Inst.t) ->
          List.for_all
            (fun q ->
              in_current_group i.Inst.id q && qubit_free.(q) <= !time +. eps)
            i.Inst.qubits)
        !topo_rest
    in
    let claimed = Array.make (max 1 n_qubits) false in
    let select (i : Inst.t) =
      let entry =
        { Schedule.inst = i;
          start = !time;
          finish = !time +. i.Inst.latency }
      in
      Hashtbl.replace scheduled i.Inst.id entry;
      entries := entry :: !entries;
      List.iter
        (fun q ->
          claimed.(q) <- true;
          qubit_free.(q) <- entry.Schedule.finish;
          drop_from_group i.Inst.id q)
        i.Inst.qubits
    in
    if candidates <> [] then begin
      Qobs.Metrics.tick "cls.matching_rounds";
      (* wide instructions claim greedily; the rest go through matching *)
      let wide, narrow = List.partition (fun i -> Inst.width i > 2) candidates in
      List.iter
        (fun (i : Inst.t) ->
          if List.for_all (fun q -> not claimed.(q)) i.Inst.qubits then select i)
        wide;
      let edges =
        List.filter_map
          (fun (i : Inst.t) ->
            if List.exists (fun q -> claimed.(q)) i.Inst.qubits then None
            else
              match i.Inst.qubits with
              | [ q ] -> Some { Qgraph.Matching.u = q; v = q; label = i }
              | [ q; r ] -> Some { Qgraph.Matching.u = q; v = r; label = i }
              | _ -> None)
          narrow
      in
      let chosen = Qgraph.Matching.maximal_edges ~n:n_qubits edges in
      Qobs.Metrics.tick ~by:(List.length chosen) "cls.matched";
      List.iter (fun e -> select e.Qgraph.Matching.label) chosen
    end;
    if Hashtbl.length scheduled < total then begin
      let startable_now =
        List.exists
          (fun (i : Inst.t) ->
            (not (Hashtbl.mem scheduled i.Inst.id))
            && List.for_all
                 (fun q ->
                   in_current_group i.Inst.id q
                   && qubit_free.(q) <= !time +. eps)
                 i.Inst.qubits)
          !topo_rest
      in
      if not startable_now then begin
        (* advance to the next qubit-release event: a candidate only
           becomes startable when some qubit frees up, and the release
           instants are exactly the [qubit_free] values, so stepping to
           the least one past [time] visits every instant at which the
           candidate set can grow (completions that are not any qubit's
           latest were barren rounds) *)
        let next =
          Array.fold_left
            (fun acc f -> if f > !time +. eps then Float.min acc f else acc)
            Float.infinity qubit_free
        in
        if next = Float.infinity then
          failwith "Cls.schedule: deadlock (malformed dependence graph)";
        Qobs.Metrics.tick "cls.time_advances";
        time := next
      end
    end
  done;
  Schedule.make ~n_qubits !entries

let makespan g = (schedule g).Schedule.makespan
