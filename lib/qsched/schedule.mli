(** Timed instruction schedules.

    A schedule assigns a start time to every instruction; qubits are
    exclusive resources for the instruction's duration. The makespan is
    the circuit's pulse latency — the quantity every experiment in the
    paper reports. *)

type entry = { inst : Qgdg.Inst.t; start : float; finish : float }

type t = {
  n_qubits : int;
  entries : entry list;  (** sorted by start time (ties by id) *)
  makespan : float;
}

val make : n_qubits:int -> entry list -> t
(** Sorts entries and computes the makespan. Raises [Invalid_argument]
    when an entry has [finish < start]. *)

val conflicts : t -> (entry * entry * int) list
(** Every pair of entries double-booking a qubit, as
    [(earlier, later, qubit)] with [earlier.start <= later.start] — the
    overlapping window is [later.start, min earlier.finish later.finish].
    Busy intervals are half-open: entries meeting exactly at an endpoint
    ([finish = start], up to 1e-9) do not conflict, and a zero-duration
    entry never conflicts, even at an instant a neighbor occupies.
    Ordered by qubit, then start time. *)

val no_qubit_overlap : t -> bool
(** No two entries occupy a shared qubit at overlapping times
    ([conflicts] is empty). *)

val respects_order : ?reorderable:(Qgdg.Inst.t -> Qgdg.Inst.t -> bool) ->
  original:Qgdg.Gdg.t -> t -> bool
(** Every pair of instructions sharing a qubit either runs in its original
    chain order or is [reorderable] (default: never) — the legality
    condition for commutativity-aware schedules. *)

val utilization : t -> float
(** Busy fraction: Σ (instruction duration × width) / (n_qubits ×
    makespan) ∈ [0, 1]. The resource-efficiency counterpart of the
    makespan — parallel circuits score high, serial ones low. 0 for an
    empty schedule. *)

val qubit_busy_time : t -> int -> float
(** Total time the qubit spends inside instructions. *)

val linearize : t -> Qgdg.Inst.t list
(** Instructions by start time — a sequential order realizing the
    schedule. *)

val to_circuit : t -> Qgate.Circuit.t
(** Member gates of the linearization, as a circuit. *)

val pp : Format.formatter -> t -> unit
