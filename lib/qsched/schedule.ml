type entry = { inst : Qgdg.Inst.t; start : float; finish : float }

type t = { n_qubits : int; entries : entry list; makespan : float }

let compare_entries a b =
  match compare a.start b.start with
  | 0 -> compare a.inst.Qgdg.Inst.id b.inst.Qgdg.Inst.id
  | c -> c

let make ~n_qubits entries =
  List.iter
    (fun e ->
      if e.finish < e.start then invalid_arg "Schedule.make: negative duration")
    entries;
  let entries = List.sort compare_entries entries in
  let makespan = List.fold_left (fun acc e -> Float.max acc e.finish) 0. entries in
  { n_qubits; entries; makespan }

let conflict_eps = 1e-9

let conflicts t =
  let by_qubit = Hashtbl.create 32 in
  List.iter
    (fun e ->
      List.iter
        (fun q ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_qubit q) in
          Hashtbl.replace by_qubit q (e :: prev))
        e.inst.Qgdg.Inst.qubits)
    t.entries;
  let qubits =
    List.sort compare (Hashtbl.fold (fun q _ acc -> q :: acc) by_qubit [])
  in
  List.concat_map
    (fun q ->
      let sorted = List.sort compare_entries (Hashtbl.find by_qubit q) in
      (* sorted by start: an entry can only conflict with later entries
         that begin before it finishes; among those, a conflict needs a
         positive-measure overlap window — busy intervals are half-open,
         so a zero-duration entry never collides, even at a busy
         instant *)
      let rec walk = function
        | [] -> []
        | a :: rest ->
          let rec take = function
            | b :: more when b.start < a.finish -. conflict_eps ->
              if Float.min a.finish b.finish -. b.start > conflict_eps then
                (a, b, q) :: take more
              else take more
            | _ -> []
          in
          take rest @ walk rest
      in
      walk sorted)
    qubits

let no_qubit_overlap t = conflicts t = []

let respects_order ?(reorderable = fun _ _ -> false) ~original t =
  let position = Hashtbl.create 64 in
  List.iteri
    (fun k e -> Hashtbl.replace position e.inst.Qgdg.Inst.id k)
    t.entries;
  let ok = ref true in
  for q = 0 to Qgdg.Gdg.n_qubits original - 1 do
    let chain = Qgdg.Gdg.chain original q in
    let rec pairs = function
      | [] -> ()
      | (a : Qgdg.Inst.t) :: rest ->
        List.iter
          (fun (b : Qgdg.Inst.t) ->
            match
              (Hashtbl.find_opt position a.Qgdg.Inst.id,
               Hashtbl.find_opt position b.Qgdg.Inst.id)
            with
            | Some pa, Some pb ->
              if pa > pb && not (reorderable a b) then ok := false
            | _ -> ok := false)
          rest;
        pairs rest
    in
    pairs chain
  done;
  !ok

let qubit_busy_time t q =
  List.fold_left
    (fun acc e ->
      if Qgdg.Inst.acts_on e.inst q then acc +. (e.finish -. e.start) else acc)
    0. t.entries

let utilization t =
  if t.makespan <= 0. || t.n_qubits = 0 then 0.
  else begin
    let busy =
      List.fold_left
        (fun acc e ->
          acc
          +. ((e.finish -. e.start)
              *. float_of_int (Qgdg.Inst.width e.inst)))
        0. t.entries
    in
    busy /. (float_of_int t.n_qubits *. t.makespan)
  end

let linearize t = List.map (fun e -> e.inst) t.entries

let to_circuit t =
  Qgate.Circuit.make t.n_qubits
    (List.concat_map (fun e -> e.inst.Qgdg.Inst.gates) t.entries)

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule: makespan %.2f ns@," t.makespan;
  List.iter
    (fun e ->
      Format.fprintf ppf "  [%8.2f, %8.2f] %a@," e.start e.finish Qgdg.Inst.pp
        e.inst)
    t.entries;
  Format.fprintf ppf "@]"
