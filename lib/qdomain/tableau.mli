(** Pauli-tableau abstract domain for Clifford circuits.

    A Clifford unitary is determined, up to global phase, by its
    conjugation action on the 2n Pauli generators X₀…Xₙ₋₁, Z₀…Zₙ₋₁
    (Aaronson–Gottesman stabilizer formalism). The tableau stores the
    image of each generator as a signed Pauli string; two Clifford gate
    sequences are equal up to global phase iff their tableaus coincide —
    the comparison is sound {e and} complete on the Clifford fragment,
    and costs O(gates·n) bit operations, so it scales to the 30–60-qubit
    benchmarks where dense unitaries are hopeless.

    Rotation gates are admitted exactly when their angle is a multiple
    of π/2 (within [angle_eps]); composite vocabulary gates (iSWAP, Rxx,
    Ryy, Rzz, CZ, CPhase at multiples of π) are expanded through verified
    Clifford decompositions. [T]/[Tdg]/[Sqrt_iswap]/[Ccx] and generic
    angles are outside the domain. *)

type t

val angle_eps : float
(** Tolerance for recognizing an angle as a multiple of π/2 ([1e-9]). *)

val identity : int -> t
(** The identity tableau on [n] qubits. *)

val apply_gate : t -> Qgate.Gate.t -> bool
(** Conjugate the tableau by one gate, in place. Returns [false] (and
    leaves the tableau unchanged) when the gate is not Clifford — the
    caller should then abandon the domain. *)

val of_gates : n_qubits:int -> Qgate.Gate.t list -> t option
(** The tableau of a gate sequence applied in time order, or [None] if
    any gate falls outside the Clifford fragment. *)

val equal : t -> t -> bool
(** Tableau equality — equivalently, equality of the represented Clifford
    unitaries up to global phase. *)

val pp : Format.formatter -> t -> unit
