module Gate = Qgate.Gate

(* linear.(q) is the affine parity computed into output qubit q: bits
   0..n-1 select input qubits, bit n is the affine constant. phases maps
   a parity vector (constant bit normalized away) to an accumulated
   angle. global is the input-independent phase, tracked so the state
   pins the unitary exactly (not just up to global phase) — the
   commutation oracle needs strict operator equality. *)
type t = {
  n : int;
  mutable linear : Bitvec.t array;
  phases : (string, Bitvec.t * float) Hashtbl.t;
  mutable global : float;
}

let identity n =
  { n;
    linear =
      Array.init n (fun q ->
          let v = Bitvec.create (n + 1) in
          Bitvec.set v q true;
          v);
    phases = Hashtbl.create 16;
    global = 0. }

let copy t =
  { t with
    linear = Array.map Bitvec.copy t.linear;
    phases = Hashtbl.copy t.phases }

(* attach angle theta to the parity ⟨p, (x,1)⟩; a set constant bit is
   folded away via θ·(1 ⊕ ⟨p'⟩) = θ − θ·⟨p'⟩, the constant θ landing in
   the global phase *)
let add_phase t theta p =
  let v = Bitvec.copy p in
  let theta =
    if Bitvec.get v t.n then begin
      Bitvec.set v t.n false;
      t.global <- t.global +. theta;
      -.theta
    end
    else theta
  in
  if not (Bitvec.is_zero v) then begin
    let key = Bitvec.to_key v in
    match Hashtbl.find_opt t.phases key with
    | Some (_, cur) -> Hashtbl.replace t.phases key (v, cur +. theta)
    | None -> Hashtbl.add t.phases key (v, theta)
  end

(* CPhase(θ) = diag(1,1,1,e^{iθ}) adds θ·(x_a ∧ x_b)
   = θ/2·x_a + θ/2·x_b − θ/2·(x_a ⊕ x_b) exactly *)
let apply_cphase t theta a b =
  add_phase t (theta /. 2.) t.linear.(a);
  add_phase t (theta /. 2.) t.linear.(b);
  let p = Bitvec.copy t.linear.(a) in
  Bitvec.xor_into ~src:t.linear.(b) p;
  add_phase t (-.theta /. 2.) p

let apply_gate t (g : Gate.t) =
  match (g.Gate.kind, g.Gate.qubits) with
  | Gate.I, _ -> true
  | Gate.X, [ q ] ->
    Bitvec.flip t.linear.(q) t.n;
    true
  | Gate.Y, [ q ] ->
    (* Y = i·X·Z: Z's phase on the pre-flip value, then the X flip, and
       the factor i in the global phase *)
    add_phase t Float.pi t.linear.(q);
    Bitvec.flip t.linear.(q) t.n;
    t.global <- t.global +. (Float.pi /. 2.);
    true
  | Gate.Cnot, [ c; tq ] ->
    Bitvec.xor_into ~src:t.linear.(c) t.linear.(tq);
    true
  | Gate.Swap, [ a; b ] ->
    let tmp = t.linear.(a) in
    t.linear.(a) <- t.linear.(b);
    t.linear.(b) <- tmp;
    true
  | Gate.Z, [ q ] ->
    add_phase t Float.pi t.linear.(q);
    true
  | Gate.S, [ q ] ->
    add_phase t (Float.pi /. 2.) t.linear.(q);
    true
  | Gate.Sdg, [ q ] ->
    add_phase t (-.Float.pi /. 2.) t.linear.(q);
    true
  | Gate.T, [ q ] ->
    add_phase t (Float.pi /. 4.) t.linear.(q);
    true
  | Gate.Tdg, [ q ] ->
    add_phase t (-.Float.pi /. 4.) t.linear.(q);
    true
  | Gate.Rz theta, [ q ] ->
    (* Rz(θ) = e^{-iθ/2}·Phase(θ) *)
    add_phase t theta t.linear.(q);
    t.global <- t.global -. (theta /. 2.);
    true
  | Gate.Phase theta, [ q ] ->
    add_phase t theta t.linear.(q);
    true
  | Gate.Cz, [ a; b ] ->
    apply_cphase t Float.pi a b;
    true
  | Gate.Cphase theta, [ a; b ] ->
    apply_cphase t theta a b;
    true
  | Gate.Rzz theta, [ a; b ] ->
    (* CNOT·Rz(θ)_b·CNOT: θ lands on the parity x_a ⊕ x_b, with Rz's
       e^{-iθ/2} in the global phase *)
    let p = Bitvec.copy t.linear.(a) in
    Bitvec.xor_into ~src:t.linear.(b) p;
    add_phase t theta p;
    t.global <- t.global -. (theta /. 2.);
    true
  | _ -> false

let of_gates ~n_qubits gates =
  let t = identity n_qubits in
  if List.for_all (apply_gate t) gates then Some t else None

let is_linear_identity t =
  let ok = ref true in
  Array.iteri
    (fun q v ->
      if !ok then
        for i = 0 to t.n do
          if Bitvec.get v i <> (i = q) then ok := false
        done)
    t.linear;
  !ok

(* angle difference folded to (-π, π] *)
let normalize_angle a =
  let two_pi = 2. *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi
  else if a <= -.Float.pi then a +. two_pi
  else a

let equal ?(eps = 1e-7) a b =
  a.n = b.n
  && Array.for_all2 Bitvec.equal a.linear b.linear
  &&
  let angle tbl key = match Hashtbl.find_opt tbl key with
    | Some (_, th) -> th
    | None -> 0.
  in
  let ok = ref true in
  let check key _ =
    if Float.abs (normalize_angle (angle a.phases key -. angle b.phases key))
       > eps
    then ok := false
  in
  Hashtbl.iter check a.phases;
  Hashtbl.iter check b.phases;
  !ok

(* Strict operator equality (global phase included). The affine parts
   must coincide (complete: distinct affine maps give distinct
   unitaries). Equal phase tables and equal global phase prove equality
   directly; a table mismatch is NOT a refutation — angle sets related by
   nonlinear GF(2) identities (π on p, q and p⊕q is the identity) can
   represent the same diagonal — so the residual is decided by
   enumerating all 2^n inputs, exact up to [eps] per basis state. Beyond
   [enum_limit] qubits the residual is left undecided ([None]). *)
let enum_limit = 16

let strict_equal ?(eps = 1e-9) a b =
  if a.n <> b.n then invalid_arg "Phase_poly.strict_equal: width mismatch";
  if not (Array.for_all2 Bitvec.equal a.linear b.linear) then Some false
  else if
    (* quick path: identical tables and identical global phase mod 2π *)
    Float.abs (normalize_angle (a.global -. b.global)) <= eps
    &&
    let angle tbl key =
      match Hashtbl.find_opt tbl key with Some (_, th) -> th | None -> 0.
    in
    let ok = ref true in
    let check key _ =
      if
        Float.abs
          (normalize_angle (angle a.phases key -. angle b.phases key))
        > eps
      then ok := false
    in
    Hashtbl.iter check a.phases;
    Hashtbl.iter check b.phases;
    !ok
  then Some true
  else if a.n > enum_limit then None
  else begin
    (* evaluate the phase difference on every input assignment; qubit q
       of the assignment x is bit q (any consistent convention works
       since all of them are enumerated) *)
    let parity p x =
      let acc = ref false in
      for q = 0 to a.n - 1 do
        if Bitvec.get p q && (x lsr q) land 1 = 1 then acc := not !acc
      done;
      !acc
    in
    let phi t x =
      let acc = ref t.global in
      Hashtbl.iter
        (fun _ (p, th) -> if parity p x then acc := !acc +. th)
        t.phases;
      !acc
    in
    let equal = ref true in
    let x = ref 0 in
    let dim = 1 lsl a.n in
    while !equal && !x < dim do
      if Float.abs (normalize_angle (phi a !x -. phi b !x)) > eps then
        equal := false;
      incr x
    done;
    Some !equal
  end

let to_matrix t =
  if t.n > 12 then invalid_arg "Phase_poly.to_matrix: register too large";
  let dim = 1 lsl t.n in
  (* qubit q is bit n-1-q of a basis index (Cmat's big-endian order) *)
  let bit x q = x lsr (t.n - 1 - q) land 1 = 1 in
  let parity p x =
    let acc = ref (Bitvec.get p t.n) in
    for q = 0 to t.n - 1 do
      if Bitvec.get p q && bit x q then acc := not !acc
    done;
    !acc
  in
  let m = Qnum.Cmat.create dim dim in
  for x = 0 to dim - 1 do
    let phi = ref t.global in
    Hashtbl.iter
      (fun _ (p, th) -> if parity p x then phi := !phi +. th)
      t.phases;
    let y = ref 0 in
    for q = 0 to t.n - 1 do
      if parity t.linear.(q) x then y := !y lor (1 lsl (t.n - 1 - q))
    done;
    Qnum.Cmat.set m !y x (Qnum.Cx.cis !phi)
  done;
  m

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun q v -> Format.fprintf ppf "q%d <- %a@," q Bitvec.pp v)
    t.linear;
  Hashtbl.iter
    (fun _ (p, th) -> Format.fprintf ppf "phase %.4f on %a@," th Bitvec.pp p)
    t.phases;
  if Float.abs t.global > 0. then
    Format.fprintf ppf "global %.4f@," t.global;
  Format.fprintf ppf "@]"
