type t = { n : int; bits : Bytes.t }

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { n; bits = Bytes.make ((n + 7) / 8) '\000' }

let length v = v.n
let copy v = { v with bits = Bytes.copy v.bits }

let check v i name =
  if i < 0 || i >= v.n then invalid_arg (Printf.sprintf "Bitvec.%s" name)

let get v i =
  check v i "get";
  Char.code (Bytes.get v.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i "set";
  let byte = Char.code (Bytes.get v.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set v.bits (i lsr 3) (Char.chr byte)

let flip v i = set v i (not (get v i))

let swap v i j =
  let bi = get v i and bj = get v j in
  set v i bj;
  set v j bi

let xor_into ~src dst =
  if src.n <> dst.n then invalid_arg "Bitvec.xor_into: length mismatch";
  for k = 0 to Bytes.length src.bits - 1 do
    Bytes.set dst.bits k
      (Char.chr (Char.code (Bytes.get dst.bits k)
                 lxor Char.code (Bytes.get src.bits k)))
  done

let is_zero v = Bytes.for_all (fun c -> c = '\000') v.bits
let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let popcount v =
  let total = ref 0 in
  Bytes.iter
    (fun c ->
      let x = ref (Char.code c) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr total
      done)
    v.bits;
  !total

let to_key v = Printf.sprintf "%d:%s" v.n (Bytes.to_string v.bits)

let pp ppf v =
  for i = 0 to v.n - 1 do
    Format.pp_print_char ppf (if get v i then '1' else '0')
  done
