(** Packed mutable bit vectors.

    The substrate of the symbolic certification domains: Pauli-tableau
    rows ({!Tableau}) and GF(2) parity vectors ({!Phase_poly}) are bit
    vectors over the qubit register. Fixed width, byte-packed. *)

type t

val create : int -> t
(** [create n] is the all-zero vector of [n] bits. Raises
    [Invalid_argument] on a negative length. *)

val length : t -> int
val copy : t -> t

val get : t -> int -> bool
(** Raises [Invalid_argument] out of range. *)

val set : t -> int -> bool -> unit
val flip : t -> int -> unit
val swap : t -> int -> int -> unit
(** Exchange two bit positions. *)

val xor_into : src:t -> t -> unit
(** [xor_into ~src dst] sets [dst := dst xor src]. Raises
    [Invalid_argument] on a length mismatch. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val popcount : t -> int

val to_key : t -> string
(** An opaque string usable as a hash-table key; equal vectors (same
    length, same bits) map to equal keys and vice versa. *)

val pp : Format.formatter -> t -> unit
(** Bits as a ["0110…"] string, index 0 first. *)
