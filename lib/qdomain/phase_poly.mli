(** Phase-polynomial abstract domain for CNOT + diagonal circuits.

    Circuits over {CNOT, SWAP, X} and diagonal gates (Z, S, Sdg, T, Tdg,
    Rz, Phase, CZ, CPhase, Rzz) implement an affine-linear map on basis
    states together with a phase that is a sum of angles over GF(2)
    parities of the inputs:

      |x⟩ ↦ e^{i(g + φ(x))} |Ax ⊕ c⟩,  φ(x) = Σ_p θ_p·⟨p, (x,1)⟩

    The state tracks A, c (one affine parity per output qubit), the
    table θ, and the input-independent global phase g, so it pins the
    represented unitary exactly. Two such circuits with equal states are
    equal operators; equality of the affine part is also complete —
    distinct affine maps give distinct unitaries. Phase-table comparison
    is exact per parity and sound, but angle sets related by nonlinear
    GF(2) identities (e.g. π on p, q and p⊕q) can in principle represent
    the same diagonal — {!strict_equal} resolves that residual by
    enumeration on small registers; {!equal} treats a table mismatch as
    inequality, which the certifier accepts as a refutation only after
    the dense fallback is out of reach. This is exactly the domain for
    the CNOT–Rz–CNOT structures {!Qgdg.Diagonal} contracts, at any
    register width. *)

type t

val identity : int -> t
val copy : t -> t

val apply_gate : t -> Qgate.Gate.t -> bool
(** Apply one gate in place; [false] (state unchanged) when the gate is
    outside the CNOT+diagonal fragment. *)

val of_gates : n_qubits:int -> Qgate.Gate.t list -> t option

val is_linear_identity : t -> bool
(** The affine part is the identity map — i.e. the circuit is diagonal in
    the computational basis (its phase table may still be nontrivial). *)

val equal : ?eps:float -> t -> t -> bool
(** Same affine map and same phase table (angles compared modulo 2π with
    absolute tolerance [eps], default [1e-7]); ignores the global
    phase. *)

val strict_equal : ?eps:float -> t -> t -> bool option
(** Exact operator equality, global phase included. [Some false] on an
    affine mismatch (complete); [Some true] when tables and global phase
    coincide; otherwise the residual diagonal is decided by enumerating
    all basis states ([eps] tolerance per state, default [1e-9]) when the
    register has at most 16 qubits, and left undecided ([None]) beyond
    that. Raises [Invalid_argument] on a width mismatch. *)

val to_matrix : t -> Qnum.Cmat.t
(** The dense unitary (big-endian qubit order, as {!Qnum.Cmat}); for
    cross-checking the domain against {!Qgate.Unitary} on small supports.
    Raises [Invalid_argument] beyond 12 qubits. *)

val pp : Format.formatter -> t -> unit
