module Gate = Qgate.Gate

(* One row per Pauli generator: the image is (-1)^sign · P(x,z) where
   P has an X factor on qubit q iff x.(q), a Z factor iff z.(q) (both =
   Y). Rows 0..n-1 are the images of X_q, rows n..2n-1 of Z_q. *)
type row = { x : Bitvec.t; z : Bitvec.t; mutable sign : bool }

type t = { n : int; rows : row array }

let angle_eps = 1e-9

let identity n =
  { n;
    rows =
      Array.init (2 * n) (fun k ->
          let x = Bitvec.create n and z = Bitvec.create n in
          if k < n then Bitvec.set x k true else Bitvec.set z (k - n) true;
          { x; z; sign = false }) }

(* primitive Clifford generators the update rules are written for *)
type prim =
  | PH of int
  | PS of int
  | PSdg of int
  | PX of int
  | PY of int
  | PZ of int
  | PCnot of int * int
  | PSwap of int * int

let apply_prim t p =
  let each f = Array.iter f t.rows in
  match p with
  | PH q ->
    each (fun r ->
        let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
        if xq && zq then r.sign <- not r.sign;
        Bitvec.set r.x q zq;
        Bitvec.set r.z q xq)
  | PS q ->
    each (fun r ->
        let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
        if xq && zq then r.sign <- not r.sign;
        Bitvec.set r.z q (xq <> zq))
  | PSdg q ->
    each (fun r ->
        let xq = Bitvec.get r.x q and zq = Bitvec.get r.z q in
        if xq && not zq then r.sign <- not r.sign;
        Bitvec.set r.z q (xq <> zq))
  | PX q -> each (fun r -> if Bitvec.get r.z q then r.sign <- not r.sign)
  | PZ q -> each (fun r -> if Bitvec.get r.x q then r.sign <- not r.sign)
  | PY q ->
    each (fun r ->
        if Bitvec.get r.x q <> Bitvec.get r.z q then r.sign <- not r.sign)
  | PCnot (c, tq) ->
    each (fun r ->
        let xc = Bitvec.get r.x c and zc = Bitvec.get r.z c in
        let xt = Bitvec.get r.x tq and zt = Bitvec.get r.z tq in
        if xc && zt && xt = zc then r.sign <- not r.sign;
        Bitvec.set r.x tq (xt <> xc);
        Bitvec.set r.z c (zc <> zt))
  | PSwap (a, b) ->
    each (fun r ->
        Bitvec.swap r.x a b;
        Bitvec.swap r.z a b)

(* [quarter_turns theta] is [Some k], k ∈ 0..3, when theta ≈ k·π/2
   (mod 2π); the Clifford eligibility test for rotation angles *)
let quarter_turns theta =
  let half_pi = Float.pi /. 2. in
  let k = Float.round (theta /. half_pi) in
  if Float.abs (theta -. (k *. half_pi)) <= angle_eps then
    Some (((int_of_float k mod 4) + 4) mod 4)
  else None

let half_turns theta =
  let k = Float.round (theta /. Float.pi) in
  if Float.abs (theta -. (k *. Float.pi)) <= angle_eps then
    Some (((int_of_float k mod 2) + 2) mod 2)
  else None

let s_times k q = List.init k (fun _ -> PS q)
let cz_prims a b = [ PH b; PCnot (a, b); PH b ]

(* Verified Clifford decompositions of the vocabulary (each checked
   against the dense unitary in test_qcert):
   - Rz/Phase(k·π/2) ≅ S^k up to global phase
   - Rx(θ) = H·Rz(θ)·H exactly; Ry(θ) = S·Rx(θ)·S†
   - CZ = H_b·CNOT·H_b; CPhase(k·π) = CZ^k
   - iSWAP = SWAP·CZ·(S⊗S)
   - Rzz(θ) = CNOT·Rz(θ)_t·CNOT exactly; Rxx = (H⊗H)·Rzz·(H⊗H);
     Ryy = (S⊗S)·Rxx·(S⊗S)†
   A prim sequence [p1; p2; …] is in circuit-time order: the represented
   unitary is … · U(p2) · U(p1). *)
let prims_of_gate (g : Gate.t) =
  match (g.Gate.kind, g.Gate.qubits) with
  | Gate.I, _ -> Some []
  | Gate.X, [ q ] -> Some [ PX q ]
  | Gate.Y, [ q ] -> Some [ PY q ]
  | Gate.Z, [ q ] -> Some [ PZ q ]
  | Gate.H, [ q ] -> Some [ PH q ]
  | Gate.S, [ q ] -> Some [ PS q ]
  | Gate.Sdg, [ q ] -> Some [ PSdg q ]
  | (Gate.Rz theta | Gate.Phase theta), [ q ] ->
    Option.map (fun k -> s_times k q) (quarter_turns theta)
  | Gate.Rx theta, [ q ] ->
    Option.map (fun k -> (PH q :: s_times k q) @ [ PH q ]) (quarter_turns theta)
  | Gate.Ry theta, [ q ] ->
    Option.map
      (fun k -> (PSdg q :: PH q :: s_times k q) @ [ PH q; PS q ])
      (quarter_turns theta)
  | Gate.Cnot, [ c; tq ] -> Some [ PCnot (c, tq) ]
  | Gate.Cz, [ a; b ] -> Some (cz_prims a b)
  | Gate.Cphase theta, [ a; b ] ->
    Option.map (fun k -> if k = 1 then cz_prims a b else []) (half_turns theta)
  | Gate.Swap, [ a; b ] -> Some [ PSwap (a, b) ]
  | Gate.Iswap, [ a; b ] ->
    Some ([ PS a; PS b ] @ cz_prims a b @ [ PSwap (a, b) ])
  | Gate.Rzz theta, [ a; b ] ->
    Option.map
      (fun k -> (PCnot (a, b) :: s_times k b) @ [ PCnot (a, b) ])
      (quarter_turns theta)
  | Gate.Rxx theta, [ a; b ] ->
    Option.map
      (fun k ->
        [ PH a; PH b; PCnot (a, b) ]
        @ s_times k b
        @ [ PCnot (a, b); PH a; PH b ])
      (quarter_turns theta)
  | Gate.Ryy theta, [ a; b ] ->
    Option.map
      (fun k ->
        [ PSdg a; PSdg b; PH a; PH b; PCnot (a, b) ]
        @ s_times k b
        @ [ PCnot (a, b); PH a; PH b; PS a; PS b ])
      (quarter_turns theta)
  | (Gate.T | Gate.Tdg | Gate.Sqrt_iswap | Gate.Ccx), _ -> None
  | _ -> None

let apply_gate t g =
  match prims_of_gate g with
  | None -> false
  | Some prims ->
    List.iter (apply_prim t) prims;
    true

let of_gates ~n_qubits gates =
  let t = identity n_qubits in
  if List.for_all (apply_gate t) gates then Some t else None

let equal a b =
  a.n = b.n
  && Array.for_all2
       (fun (r : row) (s : row) ->
         r.sign = s.sign && Bitvec.equal r.x s.x && Bitvec.equal r.z s.z)
       a.rows b.rows

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k (r : row) ->
      let gen = if k < t.n then Printf.sprintf "X%d" k
        else Printf.sprintf "Z%d" (k - t.n)
      in
      Format.fprintf ppf "%s -> %c x:%a z:%a@," gen
        (if r.sign then '-' else '+')
        Bitvec.pp r.x Bitvec.pp r.z)
    t.rows;
  Format.fprintf ppf "@]"
