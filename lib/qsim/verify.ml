type outcome = {
  support : int list;
  width : int;
  model_time : float;
  pulse_time : float option;
  pulse_fidelity : float option;
  passed : bool;
}

type report = {
  outcomes : outcome list;
  n_checked : int;
  n_passed : int;
  n_pulse_checked : int;
}

let verify_block ?(fidelity_threshold = 0.99) ?(slack = 1.6)
    ?(max_pulse_width = 2) device gates =
  if gates = [] then invalid_arg "Verify.verify_block: empty block";
  let support, target = Qgate.Unitary.on_support gates in
  let width = List.length support in
  let unitary_ok = Qnum.Cmat.is_unitary ~eps:1e-7 target in
  let model_time = Qcontrol.Latency_model.block_time device gates in
  if width > max_pulse_width then
    { support;
      width;
      model_time;
      pulse_time = None;
      pulse_fidelity = None;
      passed = unitary_ok }
  else begin
    let duration = Float.max 4. (model_time *. slack) in
    let n_steps = max 16 (int_of_float (Float.ceil duration)) in
    let couplings = Qcontrol.Hamiltonian.line_couplings width in
    let problem =
      { Qcontrol.Grape.n_qubits = width;
        couplings;
        target;
        duration;
        n_steps;
        device }
    in
    let result =
      Qcontrol.Grape.optimize ~target_fidelity:fidelity_threshold problem
    in
    { support;
      width;
      model_time;
      pulse_time = Some (Qcontrol.Pulse.duration result.Qcontrol.Grape.pulse);
      pulse_fidelity = Some result.Qcontrol.Grape.fidelity;
      passed = unitary_ok && result.Qcontrol.Grape.fidelity >= fidelity_threshold }
  end

let verify_sampled ?(samples = 10) ?fidelity_threshold ?slack ?max_pulse_width
    rng device blocks =
  (* empty member lists carry no unitary to check: skip them so the
     sampler is total on any block list *)
  let blocks = Array.of_list (List.filter (fun b -> b <> []) blocks) in
  let chosen =
    if Array.length blocks <= samples then Array.to_list blocks
    else
      List.map
        (fun k -> blocks.(k))
        (Qgraph.Rand.pick_distinct rng samples (Array.length blocks))
  in
  let outcomes =
    List.map
      (verify_block ?fidelity_threshold ?slack ?max_pulse_width device)
      chosen
  in
  { outcomes;
    n_checked = List.length outcomes;
    n_passed = List.length (List.filter (fun o -> o.passed) outcomes);
    n_pulse_checked =
      List.length (List.filter (fun o -> o.pulse_fidelity <> None) outcomes) }

let outcome_to_json o =
  let open Qobs.Json in
  let opt f = function None -> Null | Some v -> f v in
  Obj
    [ ("support", List (List.map (fun q -> Int q) o.support));
      ("width", Int o.width);
      ("model_time_ns", Float o.model_time);
      ("pulse_time_ns", opt (fun t -> Float t) o.pulse_time);
      ("pulse_fidelity", opt (fun f -> Float f) o.pulse_fidelity);
      ("passed", Bool o.passed) ]

let report_to_json r =
  let open Qobs.Json in
  Obj
    [ ("schema", Str "qcc.verify/1");
      ("n_checked", Int r.n_checked);
      ("n_passed", Int r.n_passed);
      ("n_pulse_checked", Int r.n_pulse_checked);
      ("outcomes", List (List.map outcome_to_json r.outcomes)) ]

let pp_report ppf r =
  Format.fprintf ppf
    "verified %d/%d aggregated instructions (%d with pulse synthesis)"
    r.n_passed r.n_checked r.n_pulse_checked;
  List.iter
    (fun o ->
      Format.fprintf ppf "@,  width=%d model=%.1fns%s%s %s" o.width
        o.model_time
        (match o.pulse_time with
         | Some t -> Printf.sprintf " pulse=%.1fns" t
         | None -> "")
        (match o.pulse_fidelity with
         | Some f -> Printf.sprintf " fid=%.4f" f
         | None -> "")
        (if o.passed then "ok" else "FAILED"))
    r.outcomes
