(** Verification of aggregated instructions (paper §3.6).

    For sampled aggregated instructions, (1) recompute the target unitary
    from the member gates and check it is a well-formed unitary, and
    (2) for instructions narrow enough for the optimal control unit to run
    locally, synthesize a pulse with GRAPE at the latency model's
    predicted duration (with slack) and check the realized propagator's
    fidelity against the target — the paper's QuTiP-based procedure. *)

type outcome = {
  support : int list;
  width : int;
  model_time : float;  (** latency-model pulse time, ns *)
  pulse_time : float option;  (** GRAPE pulse duration when attempted *)
  pulse_fidelity : float option;  (** realized |tr(U†V)|²/d² when attempted *)
  passed : bool;
}

type report = {
  outcomes : outcome list;
  n_checked : int;
  n_passed : int;
  n_pulse_checked : int;
}

val verify_block :
  ?fidelity_threshold:float ->
  ?slack:float ->
  ?max_pulse_width:int ->
  Qcontrol.Device.t ->
  Qgate.Gate.t list ->
  outcome
(** Verify one aggregated instruction given as its member gate list.
    Defaults: threshold 0.99, duration slack 1.6×, pulse checks for
    width ≤ 2. Raises [Invalid_argument] on an empty block. *)

val verify_sampled :
  ?samples:int ->
  ?fidelity_threshold:float ->
  ?slack:float ->
  ?max_pulse_width:int ->
  Qgraph.Rand.t ->
  Qcontrol.Device.t ->
  Qgate.Gate.t list list ->
  report
(** Sample up to [samples] (default 10, the paper's count) blocks and
    verify each. Empty member lists are skipped, so the function is total
    on any block list (including [[]], which yields an all-zero report). *)

val report_to_json : report -> Qobs.Json.t
(** Schema ["qcc.verify/1"]: counts plus one object per outcome with
    support, width, model/pulse times and fidelity. *)

val pp_report : Format.formatter -> report -> unit
