(** Named counters, gauges and histograms for the compilation pipeline.

    A registry is either enabled or the shared {!disabled} null registry;
    every recording operation checks the flag before touching (or
    allocating) anything, so default-off instrumentation costs one branch.

    Deep pipeline passes (commutation checks, routing, CLS, aggregation,
    the latency model) record through the {e ambient} registry — a
    process-wide current registry installed by [Compiler.compile] around a
    traced compilation ({!with_ambient}) — so their call signatures stay
    clean. The ambient registry defaults to {!disabled}.

    Kinds are fixed by first use of a name: recording a different kind
    under an existing name is ignored. *)

type t

type hist_stats = {
  n : int;
  sum : float;
  min : float;
  max : float;
}

val create : unit -> t
val disabled : t
val enabled : t -> bool
val reset : t -> unit

val incr : t -> ?by:int -> string -> unit
(** Counter increment ([by] defaults to 1). *)

val gauge : t -> string -> float -> unit
(** Gauge: last write wins. *)

val observe : t -> string -> float -> unit
(** Histogram sample: summary stats (count/sum/min/max) plus a fixed
    log-spaced bucket grid (half-powers of two spanning ~3e-10..3e9) from
    which {!hist_quantile} and the exported p50/p90/p99 are read. *)

val counter_value : t -> string -> int
(** 0 when absent or not a counter. *)

val gauge_value : t -> string -> float option
val hist_value : t -> string -> hist_stats option

val hist_quantile : t -> string -> float -> float option
(** Bucket-estimated quantile of a histogram (worst-case relative error
    one bucket ratio, [sqrt 2]), clamped to the observed min/max; [None]
    when absent or not a histogram. [q <= 0] reads the min, [q >= 1] the
    max. *)

val names : t -> string list
(** Sorted. *)

val to_json : t -> Json.t
(** One field per metric, sorted by name: counters as ints, gauges as
    floats, histograms as [{count,max,mean,min,p50,p90,p99,sum}] objects
    (keys sorted). Byte-deterministic given the same recorded samples. *)

val pp_text : Format.formatter -> t -> unit
val write_file : string -> t -> unit

val absorb : into:t -> t -> unit
(** In-place shard join: fold [src] into [into] under the same pointwise
    law as {!merge} ([into] ⊕ [src] per name; [src] is not mutated).
    The parallel drivers use it to land per-job shards — merged in job
    index order — in the caller's registry without replacing the
    caller's [t]. No-op when [into] is disabled. *)

val merge : t -> t -> t
(** Pointwise shard join (fresh registry; the arguments are not
    mutated): counters add, histograms add counts/sums/buckets and
    widen min/max, gauges keep the max. Commutative and associative —
    a domain pool can join per-domain shards in any order and get the
    same snapshot ({!to_json} byte-identical), which the qcheck laws in
    the test suite pin. On a name bound to different metric kinds the
    winner is chosen by fixed kind priority (histogram > gauge >
    counter), independent of argument order. *)

(** {2 Ambient registry}

    Per-domain ([Domain.DLS]): each domain sees (and installs) its own
    ambient registry, starting at {!disabled}. Concurrent compiles on a
    domain pool therefore tick into disjoint shards, which the spawner
    {!merge}s at join — no cross-domain write can race. *)

val ambient : unit -> t
val set_ambient : t -> unit
(** Install for the {e calling domain} only. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Install, run, restore (also on exceptions). *)

val tick : ?by:int -> string -> unit
(** [incr] on the ambient registry. *)

val record : string -> float -> unit
(** [observe] on the ambient registry. *)

val set : string -> float -> unit
(** [gauge] on the ambient registry. *)
