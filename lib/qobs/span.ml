type attr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type gc_delta = {
  minor_words : float;
  major_words : float;
  major_collections : int;
}

type t = {
  name : string;
  start_ns : float;
  mutable stop_ns : float;
  mutable attrs : (string * attr) list;
  mutable rev_children : t list;
  mutable gc0 : gc_delta option;
  mutable gc : gc_delta option;
}

let make ~name ~start_ns =
  { name; start_ns; stop_ns = start_ns; attrs = []; rev_children = [];
    gc0 = None; gc = None }

(* [Gc.minor_words] reads the allocation pointer, so deltas are exact
   even between minor collections; [quick_stat]'s own [minor_words] is
   only refreshed at collection boundaries and would read 0 for any
   span that does not trigger one *)
let gc_now () =
  let s = Gc.quick_stat () in
  { minor_words = Gc.minor_words ();
    major_words = s.Gc.major_words;
    major_collections = s.Gc.major_collections }

let duration_ns s = s.stop_ns -. s.start_ns
let children s = List.rev s.rev_children
let add_attr s name v = s.attrs <- (name, v) :: s.attrs

let rec count s =
  List.fold_left (fun acc c -> acc + count c) 1 s.rev_children

let find_all ~name s =
  let rec go acc s =
    let acc = if s.name = name then s :: acc else acc in
    List.fold_left go acc (children s)
  in
  List.rev (go [] s)

(* first write wins after reversal: attrs are stored newest-first, so
   dedup keeping the first (newest) occurrence; exported order is sorted
   by key so every exporter is byte-deterministic *)
let exported_attrs s =
  let seen = Hashtbl.create 8 in
  let newest_first =
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      s.attrs
  in
  List.sort (fun (a, _) (b, _) -> compare a b) newest_first

let attr_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | Str s -> Json.Str s

let gc_json g =
  Json.Obj
    [ ("major_collections", Json.Int g.major_collections);
      ("major_words", Json.Float g.major_words);
      ("minor_words", Json.Float g.minor_words) ]

let rec to_json s =
  Json.Obj
    (( "name", Json.Str s.name)
     :: ("start_ns", Json.Float s.start_ns)
     :: ("dur_ns", Json.Float (duration_ns s))
     :: (match s.gc with Some g -> [ ("alloc", gc_json g) ] | None -> [])
     @ [ ("attrs",
          Json.Obj
            (List.map (fun (k, v) -> (k, attr_json v)) (exported_attrs s)));
         ("children", Json.List (List.map to_json (children s))) ])

let to_chrome_events ?(pid = 1) ?(tid = 1) ?(first_id = 1) s =
  (* ids are assigned depth-first in pre-order, so the same tree always
     exports the same ids regardless of when it was recorded *)
  let next = ref first_id in
  let rec go acc s =
    let id = !next in
    incr next;
    let alloc_args =
      match s.gc with
      | Some g ->
        [ ("major_collections", Json.Int g.major_collections);
          ("major_words", Json.Float g.major_words);
          ("minor_words", Json.Float g.minor_words) ]
      | None -> []
    in
    let event =
      Json.Obj
        [ ("name", Json.Str s.name);
          ("cat", Json.Str "compile");
          ("ph", Json.Str "X");
          ("id", Json.Int id);
          ("ts", Json.Float (s.start_ns /. 1e3));
          ("dur", Json.Float (duration_ns s /. 1e3));
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args",
           Json.Obj
             (List.map (fun (k, v) -> (k, attr_json v)) (exported_attrs s)
              @ alloc_args)) ]
    in
    List.fold_left go (event :: acc) (children s)
  in
  List.rev (go [] s)

let pp_text ppf s =
  let rec go indent s =
    let attrs =
      match exported_attrs s with
      | [] -> ""
      | kvs ->
        "  "
        ^ String.concat " "
            (List.map
               (fun (k, v) ->
                 let value =
                   match v with
                   | Int n -> string_of_int n
                   | Float f -> Printf.sprintf "%g" f
                   | Bool b -> string_of_bool b
                   | Str s -> s
                 in
                 Printf.sprintf "%s=%s" k value)
               kvs)
    in
    let alloc =
      match s.gc with
      | Some g ->
        Printf.sprintf "  minor_kw=%.1f major_kw=%.1f majors=%d"
          (g.minor_words /. 1e3) (g.major_words /. 1e3) g.major_collections
      | None -> ""
    in
    Format.fprintf ppf "%s%-*s %10.3f ms%s%s@." indent
      (max 1 (32 - String.length indent))
      s.name
      (duration_ns s /. 1e6)
      alloc attrs;
    List.iter (go (indent ^ "  ")) (children s)
  in
  go "" s
