let schema = "qcc.ledger/1"

type t = {
  path : string;
  oc : out_channel;
  lock : Mutex.t;
}

let open_file path =
  { path;
    oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path;
    lock = Mutex.create () }

let path t = t.path
let close t = Mutex.protect t.lock (fun () -> close_out t.oc)

(* Channel primitives are atomic per call in OCaml 5, but a row is one
   write + newline + flush — three calls that can interleave across
   domains and tear rows. Serialize outside the lock, then emit the
   whole line (and flush) in one critical section. *)
let append t row =
  let line = Json.to_string row ^ "\n" in
  Mutex.protect t.lock (fun () ->
      output_string t.oc line;
      flush t.oc)

(* one row per pass span directly under the compile root; certify-* and
   any other instrumented children count too, which is what a latency
   ledger wants — they are wall time the run paid for *)
let pass_row span =
  let gc =
    match span.Span.gc with
    | Some g -> g
    | None -> { Span.minor_words = 0.; major_words = 0.; major_collections = 0 }
  in
  Json.Obj
    [ ("pass", Json.Str span.Span.name);
      ("wall_ns", Json.Float (Span.duration_ns span));
      ("minor_words", Json.Float gc.Span.minor_words);
      ("major_words", Json.Float gc.Span.major_words);
      ("major_collections", Json.Int gc.Span.major_collections) ]

let row ?(source_label = "") ?domain ~strategy ~backend_digest ~source_digest
    ~chain_digest ~latency_ns ~compile_time_s ~cache_hits ~cache_misses ?trace
    ~metrics () =
  let passes =
    match trace with
    | None -> []
    | Some root -> List.map pass_row (Span.children root)
  in
  let domain_field =
    match domain with None -> [] | Some d -> [ ("domain", Json.Int d) ]
  in
  Json.Obj
    ([ ("schema", Json.Str schema);
       ("source", Json.Str source_label);
       ("strategy", Json.Str strategy) ]
     @ domain_field
     @ [
      ("backend_digest", Json.Str backend_digest);
      ("source_digest", Json.Str source_digest);
      ("chain_digest", Json.Str chain_digest);
      ("latency_ns", Json.Float latency_ns);
      ("compile_time_s", Json.Float compile_time_s);
      ("cache",
       Json.Obj
         [ ("hits", Json.Int cache_hits); ("misses", Json.Int cache_misses) ]);
      ("passes", Json.List passes);
      ("metrics", Metrics.to_json metrics) ])

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
          match Json.of_string line with
          | Ok row -> go (lineno + 1) (row :: acc)
          | Error msg ->
            Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])
