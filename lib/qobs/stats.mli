(** Aggregation and diffing of {!Ledger} rows — the engine behind
    [qcc stats].

    Pure over parsed JSON rows: rows whose [schema] is not
    [qcc.ledger/1] are counted as skipped, everything else folds into
    per-pass wall/allocation totals, cache hit rates and the
    commutation-route mix ([commute.route.*] / [qflow.route.*] /
    [detect.route.*] counters summed across rows). JSON output carries
    schema [qcc.stats/1]. *)

val schema : string
(** ["qcc.stats/1"]. *)

type pass_stat = {
  pass : string;
  calls : int;
  wall_ns : float;
  minor_words : float;
  major_words : float;
  major_collections : int;
}

type t = {
  rows : int;
  skipped : int;
  compile_time_s : float;
  cache_hits : int;
  cache_misses : int;
  passes : pass_stat list;  (** wall time descending, then name *)
  routes : (string * int) list;  (** sorted by metric name *)
  commute_checks : int;  (** sum of the [commute.checks] counter *)
  detect_checks : int;  (** sum of the [detect.checks] counter *)
  domains : (int * int) list;
      (** rows per worker-domain id (rows without a [domain] field
          contribute nothing), sorted by id — shows how a parallel
          driver spread the jobs *)
}

val of_rows : Json.t list -> t
val hit_rate : t -> float
(** Cache hit fraction in [0,1]; 0 when no cache traffic. *)

val detect_route_sum : t -> int
(** Sum of the [detect.route.*] counters. Every detection query takes
    exactly one route, so this must equal [detect_checks]; [pp_text]
    flags a violation. *)

val to_json : t -> Json.t
(** [qcc.stats/1], [mode = "aggregate"]. *)

val pp_text : ?top:int -> Format.formatter -> t -> unit
(** Human summary; [top] bounds the slowest-passes table (default 10). *)

type diff_entry = {
  name : string;
  base_ns : float;
  cur_ns : float;
}

type diff = {
  base : t;
  cur : t;
  delta : diff_entry list;  (** by absolute wall delta, descending *)
}

val diff : base:t -> cur:t -> diff
val ratio : diff_entry -> float
(** [cur/base]; [infinity] when the pass is new. *)

val diff_to_json : diff -> Json.t
(** [qcc.stats/1], [mode = "diff"]; new passes get [ratio = null]. *)

val pp_diff : ?top:int -> Format.formatter -> diff -> unit
