(** Monotonic wall clock for span timing.

    The stdlib offers [Sys.time] (CPU seconds — wrong for wall-clock
    profiling) and [Unix.gettimeofday] (wall seconds, but steppable by
    NTP). This module derives a {e non-decreasing} wall clock from
    [Unix.gettimeofday] by clamping: a backwards step freezes the clock
    until real time catches up, so span durations are never negative and
    successive readings never go back. Origin is the first use in the
    process. *)

val now_ns : unit -> float
(** Nanoseconds since process start; guaranteed non-decreasing across
    calls. *)

val elapsed_ns : float -> float
(** [elapsed_ns t0] = [now_ns () -. t0] (>= 0 for any earlier reading). *)
