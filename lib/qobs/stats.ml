let schema = "qcc.stats/1"

type pass_stat = {
  pass : string;
  calls : int;
  wall_ns : float;
  minor_words : float;
  major_words : float;
  major_collections : int;
}

type t = {
  rows : int;
  skipped : int;
  compile_time_s : float;
  cache_hits : int;
  cache_misses : int;
  passes : pass_stat list;  (* wall time descending, then name *)
  routes : (string * int) list;  (* sorted by metric name *)
  commute_checks : int;
  detect_checks : int;
  domains : (int * int) list;  (* domain id -> rows, sorted by id *)
}

(* ---- row field access ---- *)

let str_mem k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let num_mem k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let int_mem k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let is_route name =
  let pre p =
    String.length name > String.length p && String.sub name 0 (String.length p) = p
  in
  pre "commute.route." || pre "qflow.route." || pre "detect.route."

let of_rows rows =
  let passes = Hashtbl.create 32 in
  let routes = Hashtbl.create 16 in
  let domains = Hashtbl.create 8 in
  let n = ref 0 and skipped = ref 0 in
  let compile_time = ref 0. in
  let hits = ref 0 and misses = ref 0 in
  let checks = ref 0 in
  let detect_checks = ref 0 in
  List.iter
    (fun row ->
      if str_mem "schema" row <> Some "qcc.ledger/1" then incr skipped
      else begin
        incr n;
        (match int_mem "domain" row with
         | Some d ->
           Hashtbl.replace domains d
             (1 + Option.value ~default:0 (Hashtbl.find_opt domains d))
         | None -> ());
        compile_time :=
          !compile_time +. Option.value ~default:0. (num_mem "compile_time_s" row);
        (match Json.member "cache" row with
         | Some cache ->
           hits := !hits + Option.value ~default:0 (int_mem "hits" cache);
           misses := !misses + Option.value ~default:0 (int_mem "misses" cache)
         | None -> ());
        (match Json.member "passes" row with
         | Some (Json.List prs) ->
           List.iter
             (fun pr ->
               match str_mem "pass" pr with
               | None -> ()
               | Some name ->
                 let prev =
                   match Hashtbl.find_opt passes name with
                   | Some p -> p
                   | None ->
                     { pass = name; calls = 0; wall_ns = 0.; minor_words = 0.;
                       major_words = 0.; major_collections = 0 }
                 in
                 Hashtbl.replace passes name
                   { prev with
                     calls = prev.calls + 1;
                     wall_ns =
                       prev.wall_ns
                       +. Option.value ~default:0. (num_mem "wall_ns" pr);
                     minor_words =
                       prev.minor_words
                       +. Option.value ~default:0. (num_mem "minor_words" pr);
                     major_words =
                       prev.major_words
                       +. Option.value ~default:0. (num_mem "major_words" pr);
                     major_collections =
                       prev.major_collections
                       + Option.value ~default:0 (int_mem "major_collections" pr)
                   })
             prs
         | _ -> ());
        match Json.member "metrics" row with
        | Some (Json.Obj fields) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Json.Int count when is_route name ->
                Hashtbl.replace routes name
                  (count
                   + Option.value ~default:0 (Hashtbl.find_opt routes name))
              | Json.Int count when name = "commute.checks" ->
                checks := !checks + count
              | Json.Int count when name = "detect.checks" ->
                detect_checks := !detect_checks + count
              | _ -> ())
            fields
        | _ -> ()
      end)
    rows;
  { rows = !n;
    skipped = !skipped;
    compile_time_s = !compile_time;
    cache_hits = !hits;
    cache_misses = !misses;
    passes =
      List.sort
        (fun a b ->
          match compare b.wall_ns a.wall_ns with
          | 0 -> compare a.pass b.pass
          | c -> c)
        (Hashtbl.fold (fun _ p acc -> p :: acc) passes []);
    routes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) routes []);
    commute_checks = !checks;
    detect_checks = !detect_checks;
    domains =
      List.sort compare
        (Hashtbl.fold (fun d c acc -> (d, c) :: acc) domains []) }

let detect_route_sum t =
  List.fold_left
    (fun acc (name, count) ->
      if
        String.length name > 13 && String.sub name 0 13 = "detect.route."
      then acc + count
      else acc)
    0 t.routes

let hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0. else float_of_int t.cache_hits /. float_of_int total

let pass_json p =
  Json.Obj
    [ ("pass", Json.Str p.pass);
      ("calls", Json.Int p.calls);
      ("wall_ns", Json.Float p.wall_ns);
      ("minor_words", Json.Float p.minor_words);
      ("major_words", Json.Float p.major_words);
      ("major_collections", Json.Int p.major_collections) ]

let body_json t =
  [ ("rows", Json.Int t.rows);
    ("skipped", Json.Int t.skipped);
    ("compile_time_s", Json.Float t.compile_time_s);
    ("cache",
     Json.Obj
       [ ("hits", Json.Int t.cache_hits);
         ("misses", Json.Int t.cache_misses);
         ("hit_rate", Json.Float (hit_rate t)) ]);
    ("passes", Json.List (List.map pass_json t.passes));
    ("routes", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.routes));
    ("commute_checks", Json.Int t.commute_checks);
    ("detect_checks", Json.Int t.detect_checks);
    ("domains",
     Json.Obj
       (List.map (fun (d, c) -> (string_of_int d, Json.Int c)) t.domains)) ]

let to_json t =
  Json.Obj (("schema", Json.Str schema) :: ("mode", Json.Str "aggregate")
            :: body_json t)

let pp_text ?(top = 10) ppf t =
  Format.fprintf ppf "rows        %d%s@." t.rows
    (if t.skipped > 0 then Printf.sprintf "  (%d skipped)" t.skipped else "");
  Format.fprintf ppf "compile     %.3f s total@." t.compile_time_s;
  Format.fprintf ppf "cache       %d hits / %d misses (%.0f%% hit rate)@."
    t.cache_hits t.cache_misses (100. *. hit_rate t);
  if t.domains <> [] then
    Format.fprintf ppf "domains     %d (%s)@." (List.length t.domains)
      (String.concat ", "
         (List.map
            (fun (d, c) -> Printf.sprintf "d%d: %d rows" d c)
            t.domains));
  if t.passes <> [] then begin
    Format.fprintf ppf "@.%-26s %9s %12s %12s %12s@." "pass (top by wall)"
      "calls" "wall ms" "minor kw" "major kw";
    List.iteri
      (fun i p ->
        if i < top then
          Format.fprintf ppf "%-26s %9d %12.3f %12.1f %12.1f@." p.pass p.calls
            (p.wall_ns /. 1e6) (p.minor_words /. 1e3) (p.major_words /. 1e3))
      t.passes
  end;
  if t.routes <> [] then begin
    Format.fprintf ppf "@.%-26s %9s@." "commutation route" "decisions";
    List.iter
      (fun (name, count) -> Format.fprintf ppf "%-26s %9d@." name count)
      t.routes;
    Format.fprintf ppf "%-26s %9d@." "commute.checks" t.commute_checks;
    if t.detect_checks > 0 then begin
      Format.fprintf ppf "%-26s %9d@." "detect.checks" t.detect_checks;
      let routed = detect_route_sum t in
      if routed <> t.detect_checks then
        Format.fprintf ppf
          "WARNING     detect.route.* sums to %d, not detect.checks %d — \
           route partition violated@."
          routed t.detect_checks
    end
  end

(* ---- diff ---- *)

type diff_entry = {
  name : string;
  base_ns : float;
  cur_ns : float;
}

type diff = {
  base : t;
  cur : t;
  delta : diff_entry list;  (* by |cur - base| descending *)
}

let diff ~base ~cur =
  let tbl = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace tbl p.pass (p.wall_ns, 0.)) base.passes;
  List.iter
    (fun p ->
      let b = match Hashtbl.find_opt tbl p.pass with
        | Some (b, _) -> b
        | None -> 0.
      in
      Hashtbl.replace tbl p.pass (b, p.wall_ns))
    cur.passes;
  let delta =
    Hashtbl.fold
      (fun name (base_ns, cur_ns) acc -> { name; base_ns; cur_ns } :: acc)
      tbl []
    |> List.sort (fun a b ->
           match
             compare
               (Float.abs (b.cur_ns -. b.base_ns))
               (Float.abs (a.cur_ns -. a.base_ns))
           with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  { base; cur; delta }

let ratio e = if e.base_ns <= 0. then Float.infinity else e.cur_ns /. e.base_ns

let diff_to_json d =
  Json.Obj
    [ ("schema", Json.Str schema);
      ("mode", Json.Str "diff");
      ("base", Json.Obj (body_json d.base));
      ("cur", Json.Obj (body_json d.cur));
      ("passes",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [ ("pass", Json.Str e.name);
                  ("base_ns", Json.Float e.base_ns);
                  ("cur_ns", Json.Float e.cur_ns);
                  ("ratio",
                   if Float.is_finite (ratio e) then Json.Float (ratio e)
                   else Json.Null) ])
            d.delta)) ]

let pp_diff ?(top = 10) ppf d =
  Format.fprintf ppf "compile     %.3f s -> %.3f s (%+.1f%%)@."
    d.base.compile_time_s d.cur.compile_time_s
    (if d.base.compile_time_s <= 0. then 0.
     else
       100.
       *. (d.cur.compile_time_s -. d.base.compile_time_s)
       /. d.base.compile_time_s);
  Format.fprintf ppf "cache       %.0f%% -> %.0f%% hit rate@."
    (100. *. hit_rate d.base) (100. *. hit_rate d.cur);
  Format.fprintf ppf "@.%-26s %12s %12s %8s@." "pass (top movers)" "base ms"
    "cur ms" "ratio";
  List.iteri
    (fun i e ->
      if i < top then
        Format.fprintf ppf "%-26s %12.3f %12.3f %8s@." e.name (e.base_ns /. 1e6)
          (e.cur_ns /. 1e6)
          (if Float.is_finite (ratio e) then Printf.sprintf "%.2fx" (ratio e)
           else "new"))
    d.delta
