(** Minimal JSON tree, emitter and parser.

    The observability layer's one serialization format: traces, metrics
    and machine-readable reports all go through {!t}. The emitter always
    produces valid JSON (floats keep a decimal point or exponent so they
    parse back as floats; non-finite floats degrade to [null]); the parser
    accepts exactly the JSON grammar (objects, arrays, strings with
    escapes incl. [\uXXXX], numbers, booleans, null) — enough for
    round-trip tests and for linting our own emitted files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val pp : Format.formatter -> t -> unit
(** [to_string] followed by a newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document ([Error] carries a position-annotated
    message). Numbers without [.]/[e] parse as [Int], others as [Float]. *)

val member : string -> t -> t option
(** Field lookup on [Obj] (None on other constructors). *)

val write_file : string -> t -> unit
(** Write the compact rendering plus a trailing newline. *)
