(** Flight-recorder ledger: an append-only JSONL sink, one row per
    compilation.

    Each row (schema [qcc.ledger/1]) fingerprints {e what} was compiled
    (backend / source / pass-chain digests), {e how long} it took
    (end-to-end and per pass, wall time and GC allocation), and {e what
    the pipeline did} (the full metric snapshot, stage-cache hit/miss
    deltas). Rows are flushed as they are written, so a ledger from a
    crashed run is still readable up to the crash. [qcc stats] aggregates
    and diffs these files ({!Stats}). *)

val schema : string
(** ["qcc.ledger/1"]. *)

type t

val open_file : string -> t
(** Open for append, creating the file if needed. *)

val path : t -> string
val close : t -> unit

val append : t -> Json.t -> unit
(** Write one row as a single line and flush. *)

val pass_row : Span.t -> Json.t
(** [{pass, wall_ns, minor_words, major_words, major_collections}] for
    one pass span (zero allocation fields when the span carries no GC
    delta). Also used by [qcc profile --format json]. *)

val row :
  ?source_label:string ->
  ?domain:int ->
  strategy:string ->
  backend_digest:string ->
  source_digest:string ->
  chain_digest:string ->
  latency_ns:float ->
  compile_time_s:float ->
  cache_hits:int ->
  cache_misses:int ->
  ?trace:Span.t ->
  metrics:Metrics.t ->
  unit ->
  Json.t
(** Build a [qcc.ledger/1] row. [trace] is the compilation's root span;
    its direct children become the [passes] array (wall time plus GC
    delta each). [cache_hits]/[cache_misses] are the {e deltas} for this
    run, not cache lifetime totals. Digests are hex strings. [domain]
    is the integer id of the domain that ran the compile (the worker,
    under a parallel driver) — omitted, the row carries no [domain]
    field; [qcc stats] aggregates rows per domain when present. *)

val read_file : string -> (Json.t list, string) result
(** Parse a JSONL ledger (blank lines skipped); [Error] carries
    [file:line: message] for the first malformed row. *)
