(** Timed spans — the nodes of a trace tree.

    A span is a named interval on the monotonic wall clock ({!Clock}) with
    typed attributes and child spans. Spans are built by {!Trace};
    exporters here turn a finished span into indented text, a nested JSON
    object, or flat Chrome [trace_event] entries (openable in
    [about://tracing] / Perfetto). *)

type attr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type t = {
  name : string;
  start_ns : float;
  mutable stop_ns : float;
  mutable attrs : (string * attr) list;  (** reverse insertion order *)
  mutable rev_children : t list;  (** reverse chronological (internal) *)
}

val make : name:string -> start_ns:float -> t
(** An open span ([stop_ns = start_ns], no attrs, no children). *)

val duration_ns : t -> float
val children : t -> t list
(** Chronological order. *)

val add_attr : t -> string -> attr -> unit
(** Later writes to the same key shadow earlier ones on export. *)

val count : t -> int
(** Number of spans in the tree (including [t]). *)

val find_all : name:string -> t -> t list
(** All spans with that name, depth-first. *)

val attr_json : attr -> Json.t

val to_json : t -> Json.t
(** [{name, start_ns, dur_ns, attrs, children}] — start times relative to
    the process clock origin. *)

val to_chrome_events : ?pid:int -> ?tid:int -> t -> Json.t list
(** One complete ("ph":"X") event per span, depth-first; [ts]/[dur] in
    microseconds as the format requires. *)

val pp_text : Format.formatter -> t -> unit
(** Indented tree: name, duration in ms, attributes as [k=v]. *)
