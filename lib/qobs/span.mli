(** Timed spans — the nodes of a trace tree.

    A span is a named interval on the monotonic wall clock ({!Clock}) with
    typed attributes, child spans and (when recorded by {!Trace}) the GC
    allocation delta over the interval. Exporters here turn a finished
    span into indented text, a nested JSON object, or flat Chrome
    [trace_event] entries (openable in [about://tracing] / Perfetto).
    Exports are byte-deterministic for a given tree: attributes are
    emitted in sorted key order and Chrome event ids are assigned
    depth-first. *)

type attr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type gc_delta = {
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated directly in the major heap *)
  major_collections : int;  (** major collection cycles completed *)
}

type t = {
  name : string;
  start_ns : float;
  mutable stop_ns : float;
  mutable attrs : (string * attr) list;  (** reverse insertion order *)
  mutable rev_children : t list;  (** reverse chronological (internal) *)
  mutable gc0 : gc_delta option;
      (** absolute GC counters at open (internal, set by {!Trace}) *)
  mutable gc : gc_delta option;
      (** allocation over the span, inclusive of children — filled at
          close when a snapshot was taken at open *)
}

val make : name:string -> start_ns:float -> t
(** An open span ([stop_ns = start_ns], no attrs, no children, no GC
    snapshot). *)

val gc_now : unit -> gc_delta
(** Current absolute GC counters ([Gc.quick_stat], O(1)). *)

val duration_ns : t -> float
val children : t -> t list
(** Chronological order. *)

val add_attr : t -> string -> attr -> unit
(** Later writes to the same key shadow earlier ones on export. *)

val count : t -> int
(** Number of spans in the tree (including [t]). *)

val find_all : name:string -> t -> t list
(** All spans with that name, depth-first. *)

val attr_json : attr -> Json.t

val to_json : t -> Json.t
(** [{name, start_ns, dur_ns, alloc?, attrs, children}] — start times
    relative to the process clock origin; [alloc] present only when the
    span carries a GC delta. *)

val to_chrome_events : ?pid:int -> ?tid:int -> ?first_id:int -> t -> Json.t list
(** One complete ("ph":"X") event per span, depth-first; [ts]/[dur] in
    microseconds as the format requires. Events carry stable integer
    [id]s assigned in pre-order starting at [first_id] (default 1); GC
    deltas are folded into [args]. *)

val pp_text : Format.formatter -> t -> unit
(** Indented tree: name, duration in ms, allocation (when present),
    attributes as [k=v]. *)
