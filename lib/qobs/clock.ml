let t0 = Unix.gettimeofday ()
let last = ref 0.

let now_ns () =
  let t = (Unix.gettimeofday () -. t0) *. 1e9 in
  if t > !last then last := t;
  !last

let elapsed_ns start = now_ns () -. start
