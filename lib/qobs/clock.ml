let t0 = Unix.gettimeofday ()

(* monotonicity clamp: per-domain, so concurrent readers never race on
   the high-water mark (each domain's spans are already ordered by its
   own reads; cross-domain ordering is the joiner's problem) *)
let last = Domain_safe.Local.make (fun () -> 0.) [@@domain_safety domain_local]

let now_ns () =
  let t = (Unix.gettimeofday () -. t0) *. 1e9 in
  let prev = Domain_safe.Local.get last in
  if t > prev then begin
    Domain_safe.Local.set last t;
    t
  end
  else prev

let elapsed_ns start = now_ns () -. start
