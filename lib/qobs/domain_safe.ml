module Local = struct
  type 'a t = 'a Domain.DLS.key

  let make init = Domain.DLS.new_key init
  let get = Domain.DLS.get
  let set = Domain.DLS.set
end

module Guarded = struct
  type 'a t = {
    mutex : Mutex.t;
    value : 'a;
  }

  let make value = { mutex = Mutex.create (); value }
  let with_ t f = Mutex.protect t.mutex (fun () -> f t.value)
end

module Monitor = struct
  type 'a t = {
    mutex : Mutex.t;
    cond : Condition.t;
    value : 'a;
  }

  let make value =
    { mutex = Mutex.create (); cond = Condition.create (); value }

  let with_ t f = Mutex.protect t.mutex (fun () -> f t.value)
  let wait t = Condition.wait t.cond t.mutex
  let broadcast t = Condition.broadcast t.cond
end
