(** The two domain-safety building blocks the [@@domain_safety]
    discipline (tools/domlint, README "Domain safety") is built on.

    Ambient mutable state — memo tables, the ambient metrics registry,
    the monotonic-clock clamp — must be one of: frozen after module
    init, {e per-domain} (this module's {!Local}), or {e shared behind
    a mutex} (this module's {!Guarded}). domlint recognises
    [Local.make]/[Guarded.make] (and the raw [Domain.DLS.new_key] /
    [Mutex.create] they wrap) as the [domain_local] / [guarded] site
    forms and keeps the classification honest: a [domain_local]
    attribute on a binding that is not a DLS slot is a DS040 error. *)

module Local : sig
  (** One instance per domain, via [Domain.DLS]. The right shape for
      memo tables: caches re-warm independently per domain, no write
      can race, and results stay deterministic because a memo hit
      returns exactly what a recomputation would. *)

  type 'a t

  val make : (unit -> 'a) -> 'a t
  (** [make init] — [init] runs once per domain, on that domain's first
      {!get}. Like all ambient state, slots must be bound at module
      toplevel (and classified [[@@domain_safety domain_local]]). *)

  val get : 'a t -> 'a

  val set : 'a t -> 'a -> unit
  (** Replace the calling domain's instance (used by reset entry points
      and ambient-registry swaps; other domains are unaffected). *)
end

module Guarded : sig
  (** A value shared across domains behind its own mutex — the mutex
      and the value live in one binding so domlint can see they travel
      together. For low-frequency critical sections (a stage-cache
      probe, a ledger append), not per-gate hot paths. *)

  type 'a t

  val make : 'a -> 'a t

  val with_ : 'a t -> ('a -> 'b) -> 'b
  (** [with_ t f] runs [f value] holding the mutex ([Mutex.protect]:
      released on exceptions too). Do not call {!with_} re-entrantly
      from [f] — stdlib mutexes are not recursive. *)
end
