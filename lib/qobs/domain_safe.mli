(** The two domain-safety building blocks the [@@domain_safety]
    discipline (tools/domlint, README "Domain safety") is built on.

    Ambient mutable state — memo tables, the ambient metrics registry,
    the monotonic-clock clamp — must be one of: frozen after module
    init, {e per-domain} (this module's {!Local}), or {e shared behind
    a mutex} (this module's {!Guarded}). domlint recognises
    [Local.make]/[Guarded.make] (and the raw [Domain.DLS.new_key] /
    [Mutex.create] they wrap) as the [domain_local] / [guarded] site
    forms and keeps the classification honest: a [domain_local]
    attribute on a binding that is not a DLS slot is a DS040 error. *)

module Local : sig
  (** One instance per domain, via [Domain.DLS]. The right shape for
      memo tables: caches re-warm independently per domain, no write
      can race, and results stay deterministic because a memo hit
      returns exactly what a recomputation would. *)

  type 'a t

  val make : (unit -> 'a) -> 'a t
  (** [make init] — [init] runs once per domain, on that domain's first
      {!get}. Like all ambient state, slots must be bound at module
      toplevel (and classified [[@@domain_safety domain_local]]). *)

  val get : 'a t -> 'a

  val set : 'a t -> 'a -> unit
  (** Replace the calling domain's instance (used by reset entry points
      and ambient-registry swaps; other domains are unaffected). *)
end

module Guarded : sig
  (** A value shared across domains behind its own mutex — the mutex
      and the value live in one binding so domlint can see they travel
      together. For low-frequency critical sections (a stage-cache
      probe, a ledger append), not per-gate hot paths. *)

  type 'a t

  val make : 'a -> 'a t

  val with_ : 'a t -> ('a -> 'b) -> 'b
  (** [with_ t f] runs [f value] holding the mutex ([Mutex.protect]:
      released on exceptions too). Do not call {!with_} re-entrantly
      from [f] — stdlib mutexes are not recursive. *)
end

module Monitor : sig
  (** {!Guarded} plus a condition variable: a shared value whose
      critical sections can also {e wait} for another domain to change
      it (and be woken by {!broadcast}). The shape for compute-once
      caches: a prober that finds an in-flight entry parks on the
      condition instead of duplicating the work. *)

  type 'a t

  val make : 'a -> 'a t

  val with_ : 'a t -> ('a -> 'b) -> 'b
  (** As {!Guarded.with_}: runs [f value] holding the mutex, released
      on exceptions. Not re-entrant. *)

  val wait : 'a t -> unit
  (** Park until the next {!broadcast}. Must be called from inside
      {!with_} (the condition atomically releases and reacquires the
      monitor's mutex); re-check the predicate after waking — wakeups
      can be spurious. *)

  val broadcast : 'a t -> unit
  (** Wake every domain parked in {!wait}. Callable with or without the
      mutex held. *)
end
