let src = Logs.Src.create "qobs" ~doc:"qcc observability (spans, metrics)"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  enabled : bool;
  mutable stack : Span.t list;  (* open spans, innermost first *)
  mutable rev_roots : Span.t list;
  mutable last : Span.t option;
}

let create () = { enabled = true; stack = []; rev_roots = []; last = None }
(* the null trace: every writer checks [enabled] first, so these
   mutable fields are never written after init *)
let disabled = { enabled = false; stack = []; rev_roots = []; last = None }
  [@@domain_safety frozen_after_init]
let enabled t = t.enabled

let close t span =
  span.Span.stop_ns <- Clock.now_ns ();
  (match span.Span.gc0 with
   | Some g0 ->
     let g1 = Span.gc_now () in
     span.Span.gc <-
       Some
         { Span.minor_words = g1.Span.minor_words -. g0.Span.minor_words;
           major_words = g1.Span.major_words -. g0.Span.major_words;
           major_collections =
             g1.Span.major_collections - g0.Span.major_collections }
   | None -> ());
  (match t.stack with
   | top :: rest when top == span -> t.stack <- rest
   | _ ->
     (* unbalanced close (an escaped span reference); drop everything the
        stray span still covers so the structure stays a forest *)
     let rec pop = function
       | top :: rest when top != span -> pop rest
       | _ :: rest -> rest
       | [] -> []
     in
     t.stack <- pop t.stack);
  (match t.stack with
   | parent :: _ -> parent.Span.rev_children <- span :: parent.Span.rev_children
   | [] -> t.rev_roots <- span :: t.rev_roots);
  t.last <- Some span;
  Log.debug (fun m ->
      m "%s: %.3f ms" span.Span.name (Span.duration_ns span /. 1e6))

let with_span t name f =
  if not t.enabled then f ()
  else begin
    let span = Span.make ~name ~start_ns:(Clock.now_ns ()) in
    span.Span.gc0 <- Some (Span.gc_now ());
    t.stack <- span :: t.stack;
    Fun.protect ~finally:(fun () -> close t span) f
  end

let attr t name v =
  if t.enabled then
    match t.stack with
    | span :: _ -> Span.add_attr span name v
    | [] -> ()

let attr_int t name v = if t.enabled then attr t name (Span.Int v)
let attr_float t name v = if t.enabled then attr t name (Span.Float v)
let attr_bool t name v = if t.enabled then attr t name (Span.Bool v)
let attr_str t name v = if t.enabled then attr t name (Span.Str v)

let roots t = List.rev t.rev_roots
let last_span t = t.last

let reset t =
  t.rev_roots <- [];
  t.last <- None

let to_text t =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (fun s -> Span.pp_text ppf s) (roots t);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let to_json t = Json.Obj [ ("spans", Json.List (List.map Span.to_json (roots t))) ]

let to_chrome t =
  (* stable span ids: pre-order position across the root forest *)
  let next_id = ref 1 in
  let events =
    Json.Obj
      [ ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str "qcc") ]) ]
    :: List.concat_map
         (fun root ->
           let evs = Span.to_chrome_events ~first_id:!next_id root in
           next_id := !next_id + Span.count root;
           evs)
         (roots t)
  in
  Json.Obj
    [ ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.Str "ns") ]

let write_chrome_file path t = Json.write_file path (to_chrome t)
let write_json_file path t = Json.write_file path (to_json t)
