type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- emitter ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    (* keep a decimal marker so the value reads back as a float *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun k x ->
        if k > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun k (name, x) ->
        if k > 0 then Buffer.add_char buf ',';
        escape_to buf name;
        Buffer.add_char buf ':';
        to_buffer buf x)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let pp ppf j = Format.fprintf ppf "%s@." (to_string j)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ---- parser (recursive descent over a string) ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %c, found %c" c d)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let utf8_of_code buf code =
    (* BMP code points only — surrogate pairs are rejoined by the caller *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "unterminated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
              (try utf8_of_code buf (hex4 ())
               with Failure _ -> fail "bad \\u escape")
            | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let chunk = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') chunk
    in
    if is_float then
      match float_of_string_opt chunk with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" chunk)
    else
      match int_of_string_opt chunk with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" chunk)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (name, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
