(** Trace collector — hierarchical timed spans around pipeline passes.

    The null-collector pattern makes instrumentation free when off:
    {!disabled} short-circuits {!with_span} to a direct call of the body
    and turns every attribute write into a no-op {e before} any
    allocation, so a pipeline compiled against a disabled collector runs
    the uninstrumented code path.

    Span closes are also logged on the ["qobs"] [Logs] source at debug
    level, so [-vv] on the CLI streams pass timings live. *)

type t

val create : unit -> t
(** An enabled, empty collector. *)

val disabled : t
(** The shared null collector: every operation is a no-op. *)

val enabled : t -> bool

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Run the body inside a fresh span, nested under the innermost open
    span (or as a new root). The span is closed even if the body raises.
    On {!disabled}, exactly [f ()]. *)

val attr_int : t -> string -> int -> unit
(** Attach an attribute to the innermost open span; no-op when disabled
    or outside any [with_span]. *)

val attr_float : t -> string -> float -> unit
val attr_bool : t -> string -> bool -> unit
val attr_str : t -> string -> string -> unit

val roots : t -> Span.t list
(** Completed top-level spans, chronological. *)

val last_span : t -> Span.t option
(** The most recently {e closed} span (after a top-level [with_span]
    returns, that call's span). *)

val reset : t -> unit
(** Drop all completed spans (open spans are unaffected). *)

val to_text : t -> string
(** Indented per-pass summary of every root span. *)

val to_json : t -> Json.t
(** [{"spans": [...]}] of nested {!Span.to_json} objects. *)

val to_chrome : t -> Json.t
(** Chrome [trace_event] document:
    [{"traceEvents": [...], "displayTimeUnit": "ns"}] — load in
    [about://tracing] or Perfetto. *)

val write_chrome_file : string -> t -> unit
val write_json_file : string -> t -> unit
