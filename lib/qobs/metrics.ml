type hist_stats = {
  n : int;
  sum : float;
  min : float;
  max : float;
}

(* Every histogram shares one fixed log-spaced bucket grid (half-powers
   of two): bucket 0 is the underflow (v <= 0 or below the grid), bucket
   k in 1..n_buckets-1 nominally covers [2^((k-64)/2), 2^((k-63)/2)),
   spanning ~3e-10 .. 3e9 — wide enough for ns..s durations expressed in
   ms, word counts and qubit widths alike. Quantiles read off the
   cumulative bucket counts with a worst-case relative error of one
   bucket ratio (sqrt 2), clamped to the observed min/max. *)
let n_buckets = 128

let bucket_of v =
  if v <= 0. then 0
  else begin
    let i = 64 + int_of_float (Float.floor (2. *. Float.log2 v)) in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i
  end

(* geometric midpoint of bucket k's nominal bounds *)
let bucket_rep k = Float.exp2 ((float_of_int (k - 64) +. 0.5) /. 2.)

type metric =
  | Counter of { mutable count : int }
  | Gauge of { mutable value : float }
  | Hist of {
      mutable n : int;
      mutable sum : float;
      mutable min : float;
      mutable max : float;
      buckets : int array;
    }

type t = {
  enabled : bool;
  table : (string, metric) Hashtbl.t;
}

let create () = { enabled = true; table = Hashtbl.create 64 }

(* the null collector: every writer checks [enabled] first, so this
   table is never written after init *)
let disabled = { enabled = false; table = Hashtbl.create 0 }
  [@@domain_safety frozen_after_init]
let enabled t = t.enabled
let reset t = Hashtbl.reset t.table

let incr t ?(by = 1) name =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Counter c) -> c.count <- c.count + by
    | Some _ -> ()
    | None -> Hashtbl.replace t.table name (Counter { count = by })

let gauge t name v =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Gauge g) -> g.value <- v
    | Some _ -> ()
    | None -> Hashtbl.replace t.table name (Gauge { value = v })

let observe t name v =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Hist h) ->
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v < h.min then h.min <- v;
      if v > h.max then h.max <- v;
      let k = bucket_of v in
      h.buckets.(k) <- h.buckets.(k) + 1
    | Some _ -> ()
    | None ->
      let buckets = Array.make n_buckets 0 in
      buckets.(bucket_of v) <- 1;
      Hashtbl.replace t.table name
        (Hist { n = 1; sum = v; min = v; max = v; buckets })

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.count
  | Some _ | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> Some g.value
  | Some _ | None -> None

let hist_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Hist h) -> Some { n = h.n; sum = h.sum; min = h.min; max = h.max }
  | Some _ | None -> None

(* rank-based read over the cumulative bucket counts: the smallest bucket
   whose cumulative count reaches ceil(q * n). Deterministic, and exact
   up to the bucket ratio; the clamp keeps estimates inside the true
   observed range (so single-bucket histograms report min <= p50 <= max) *)
let quantile ~n ~lo ~hi ~(buckets : int array) q =
  if n = 0 then 0.
  else if q <= 0. then lo
  else if q >= 1. then hi
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int n)) in
    let target = if target < 1 then 1 else target in
    let rec go k cum =
      if k >= n_buckets then hi
      else begin
        let cum = cum + buckets.(k) in
        if cum >= target then
          let rep = if k = 0 then lo else bucket_rep k in
          Float.min hi (Float.max lo rep)
        else go (k + 1) cum
      end
    in
    go 0 0
  end

let hist_quantile t name q =
  match Hashtbl.find_opt t.table name with
  | Some (Hist h) ->
    Some (quantile ~n:h.n ~lo:h.min ~hi:h.max ~buckets:h.buckets q)
  | Some _ | None -> None

let names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.table [])

(* histogram fields in sorted key order: exports are byte-deterministic
   given the same samples *)
let metric_json = function
  | Counter c -> Json.Int c.count
  | Gauge g -> Json.Float g.value
  | Hist h ->
    Json.Obj
      [ ("count", Json.Int h.n);
        ("max", Json.Float h.max);
        ("mean", Json.Float (if h.n = 0 then 0. else h.sum /. float_of_int h.n));
        ("min", Json.Float h.min);
        ("p50",
         Json.Float (quantile ~n:h.n ~lo:h.min ~hi:h.max ~buckets:h.buckets 0.5));
        ("p90",
         Json.Float (quantile ~n:h.n ~lo:h.min ~hi:h.max ~buckets:h.buckets 0.9));
        ("p99",
         Json.Float
           (quantile ~n:h.n ~lo:h.min ~hi:h.max ~buckets:h.buckets 0.99));
        ("sum", Json.Float h.sum) ]

let to_json t =
  Json.Obj
    (List.map
       (fun name -> (name, metric_json (Hashtbl.find t.table name)))
       (names t))

let pp_text ppf t =
  List.iter
    (fun name ->
      let value =
        match Hashtbl.find t.table name with
        | Counter c -> string_of_int c.count
        | Gauge g -> Printf.sprintf "%g" g.value
        | Hist h ->
          let q p = quantile ~n:h.n ~lo:h.min ~hi:h.max ~buckets:h.buckets p in
          Printf.sprintf "count=%d sum=%g min=%g max=%g p50=%g p90=%g p99=%g"
            h.n h.sum h.min h.max (q 0.5) (q 0.9) (q 0.99)
      in
      Format.fprintf ppf "%-36s %s@." name value)
    (names t)

let write_file path t = Json.write_file path (to_json t)

(* ---- merge (per-domain shard join) ---- *)

(* Pointwise, commutative and associative (qcheck-pinned): counters
   add; histograms add counts/sums/buckets and widen min/max; gauges
   keep the max (last-write order across shards is meaningless). On a
   name bound to different metric kinds in the two shards, the winner
   is picked by fixed kind priority (Hist > Gauge > Counter) so the
   result does not depend on argument order. *)

let copy_metric = function
  | Counter c -> Counter { count = c.count }
  | Gauge g -> Gauge { value = g.value }
  | Hist h -> Hist { h with buckets = Array.copy h.buckets }

let merge_metric a b =
  match (a, b) with
  | Counter x, Counter y -> Counter { count = x.count + y.count }
  | Gauge x, Gauge y -> Gauge { value = Float.max x.value y.value }
  | Hist x, Hist y ->
    Hist
      { n = x.n + y.n;
        sum = x.sum +. y.sum;
        min = Float.min x.min y.min;
        max = Float.max x.max y.max;
        buckets = Array.init n_buckets (fun k -> x.buckets.(k) + y.buckets.(k))
      }
  | (Hist _ as h), _ | _, (Hist _ as h) -> copy_metric h
  | (Gauge _ as g), _ | _, (Gauge _ as g) -> copy_metric g

let absorb ~into src =
  if into.enabled then
    Hashtbl.iter
      (fun name m ->
        match Hashtbl.find_opt into.table name with
        | None -> Hashtbl.replace into.table name (copy_metric m)
        | Some existing ->
          Hashtbl.replace into.table name (merge_metric existing m))
      src.table

let merge a b =
  let t = { enabled = true; table = Hashtbl.create 64 } in
  absorb ~into:t a;
  absorb ~into:t b;
  t

(* ---- ambient registry ---- *)

(* per-domain: each domain installs its own registry (a shard), and the
   spawner merges the shards at join — concurrent [tick]s can never
   race because no two domains ever share a table *)
let ambient_slot = Domain_safe.Local.make (fun () -> disabled)
  [@@domain_safety domain_local]

let ambient () = Domain_safe.Local.get ambient_slot
let set_ambient t = Domain_safe.Local.set ambient_slot t

let with_ambient t f =
  let saved = ambient () in
  set_ambient t;
  Fun.protect ~finally:(fun () -> set_ambient saved) f

let tick ?by name =
  let t = ambient () in
  if t.enabled then incr t ?by name

let record name v =
  let t = ambient () in
  if t.enabled then observe t name v

let set name v =
  let t = ambient () in
  if t.enabled then gauge t name v
