type hist_stats = {
  n : int;
  sum : float;
  min : float;
  max : float;
}

type metric =
  | Counter of { mutable count : int }
  | Gauge of { mutable value : float }
  | Hist of {
      mutable n : int;
      mutable sum : float;
      mutable min : float;
      mutable max : float;
    }

type t = {
  enabled : bool;
  table : (string, metric) Hashtbl.t;
}

let create () = { enabled = true; table = Hashtbl.create 64 }
let disabled = { enabled = false; table = Hashtbl.create 0 }
let enabled t = t.enabled
let reset t = Hashtbl.reset t.table

let incr t ?(by = 1) name =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Counter c) -> c.count <- c.count + by
    | Some _ -> ()
    | None -> Hashtbl.replace t.table name (Counter { count = by })

let gauge t name v =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Gauge g) -> g.value <- v
    | Some _ -> ()
    | None -> Hashtbl.replace t.table name (Gauge { value = v })

let observe t name v =
  if t.enabled then
    match Hashtbl.find_opt t.table name with
    | Some (Hist h) ->
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v < h.min then h.min <- v;
      if v > h.max then h.max <- v
    | Some _ -> ()
    | None -> Hashtbl.replace t.table name (Hist { n = 1; sum = v; min = v; max = v })

let counter_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.count
  | Some _ | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> Some g.value
  | Some _ | None -> None

let hist_value t name =
  match Hashtbl.find_opt t.table name with
  | Some (Hist h) -> Some { n = h.n; sum = h.sum; min = h.min; max = h.max }
  | Some _ | None -> None

let names t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.table [])

let metric_json = function
  | Counter c -> Json.Int c.count
  | Gauge g -> Json.Float g.value
  | Hist h ->
    Json.Obj
      [ ("count", Json.Int h.n);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ("mean", Json.Float (if h.n = 0 then 0. else h.sum /. float_of_int h.n)) ]

let to_json t =
  Json.Obj
    (List.map
       (fun name -> (name, metric_json (Hashtbl.find t.table name)))
       (names t))

let pp_text ppf t =
  List.iter
    (fun name ->
      let value =
        match Hashtbl.find t.table name with
        | Counter c -> string_of_int c.count
        | Gauge g -> Printf.sprintf "%g" g.value
        | Hist h ->
          Printf.sprintf "count=%d sum=%g min=%g max=%g" h.n h.sum h.min h.max
      in
      Format.fprintf ppf "%-36s %s@." name value)
    (names t)

let write_file path t = Json.write_file path (to_json t)

(* ---- ambient registry ---- *)

let ambient_ref = ref disabled
let ambient () = !ambient_ref
let set_ambient t = ambient_ref := t

let with_ambient t f =
  let saved = !ambient_ref in
  ambient_ref := t;
  Fun.protect ~finally:(fun () -> ambient_ref := saved) f

let tick ?by name =
  let t = !ambient_ref in
  if t.enabled then incr t ?by name

let record name v =
  let t = !ambient_ref in
  if t.enabled then observe t name v

let set name v =
  let t = !ambient_ref in
  if t.enabled then gauge t name v
