type t = { r : int; c : int; re : float array; im : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Cmat.create: negative dimension";
  { r; c; re = Array.make (r * c) 0.; im = Array.make (r * c) 0. }

let rows m = m.r
let cols m = m.c
let idx m i j = (i * m.c) + j

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Cmat.get";
  let k = idx m i j in
  Cx.make m.re.(k) m.im.(k)

let set m i j z =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Cmat.set";
  let k = idx m i j in
  m.re.(k) <- Cx.re z;
  m.im.(k) <- Cx.im z

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      set m i j (f i j)
    done
  done;
  m

let of_lists rows_l =
  match rows_l with
  | [] -> create 0 0
  | first :: _ ->
    let r = List.length rows_l and c = List.length first in
    if List.exists (fun row -> List.length row <> c) rows_l then
      invalid_arg "Cmat.of_lists: ragged rows";
    let a = Array.of_list (List.map Array.of_list rows_l) in
    init r c (fun i j -> a.(i).(j))

let of_real_lists rows_l =
  of_lists (List.map (List.map Cx.of_float) rows_l)

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }
let zeros r c = create r c

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.(idx m i i) <- 1.
  done;
  m

let diag d =
  let n = Array.length d in
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i d.(i)
  done;
  m

let diagonal m =
  if m.r <> m.c then invalid_arg "Cmat.diagonal: not square";
  Array.init m.r (fun i -> get m i i)

let map2 name f a b =
  if a.r <> b.r || a.c <> b.c then
    invalid_arg (Printf.sprintf "Cmat.%s: dimension mismatch" name);
  init a.r a.c (fun i j -> f (get a i j) (get b i j))

let add a b = map2 "add" Cx.add a b
let sub a b = map2 "sub" Cx.sub a b
let neg a = init a.r a.c (fun i j -> Cx.neg (get a i j))
let scale z a = init a.r a.c (fun i j -> Cx.mul z (get a i j))
let scale_real s a = init a.r a.c (fun i j -> Cx.scale s (get a i j))

let mul a b =
  if a.c <> b.r then invalid_arg "Cmat.mul: dimension mismatch";
  let m = create a.r b.c in
  (* i-k-j loop order keeps the inner loop streaming over contiguous rows *)
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let ar = a.re.((i * a.c) + k) and ai = a.im.((i * a.c) + k) in
      if ar <> 0. || ai <> 0. then begin
        let boff = k * b.c and moff = i * b.c in
        for j = 0 to b.c - 1 do
          let br = b.re.(boff + j) and bi = b.im.(boff + j) in
          m.re.(moff + j) <- m.re.(moff + j) +. (ar *. br) -. (ai *. bi);
          m.im.(moff + j) <- m.im.(moff + j) +. (ar *. bi) +. (ai *. br)
        done
      end
    done
  done;
  m

let mul_list = function
  | [] -> invalid_arg "Cmat.mul_list: empty list"
  | first :: rest -> List.fold_left mul first rest

let rec pow m k =
  if m.r <> m.c then invalid_arg "Cmat.pow: not square";
  if k < 0 then invalid_arg "Cmat.pow: negative exponent";
  if k = 0 then identity m.r
  else if k mod 2 = 0 then begin
    let h = pow m (k / 2) in
    mul h h
  end
  else mul m (pow m (k - 1))

let transpose m = init m.c m.r (fun i j -> get m j i)
let conj m = init m.r m.c (fun i j -> Cx.conj (get m i j))
let dagger m = init m.c m.r (fun i j -> Cx.conj (get m j i))

let trace m =
  if m.r <> m.c then invalid_arg "Cmat.trace: not square";
  let acc = ref Cx.zero in
  for i = 0 to m.r - 1 do
    acc := Cx.add !acc (get m i i)
  done;
  !acc

let kron a b =
  let m = create (a.r * b.r) (a.c * b.c) in
  for ia = 0 to a.r - 1 do
    for ja = 0 to a.c - 1 do
      let z = get a ia ja in
      if not (Cx.is_zero ~eps:0. z) then
        for ib = 0 to b.r - 1 do
          for jb = 0 to b.c - 1 do
            set m ((ia * b.r) + ib) ((ja * b.c) + jb) (Cx.mul z (get b ib jb))
          done
        done
    done
  done;
  m

let kron_list = function
  | [] -> identity 1
  | first :: rest -> List.fold_left kron first rest

let apply m v =
  if m.c <> Vec.dim v then invalid_arg "Cmat.apply: dimension mismatch";
  let vre = Vec.unsafe_re v and vim = Vec.unsafe_im v in
  let out = Vec.create m.r in
  let ore_ = Vec.unsafe_re out and oim = Vec.unsafe_im out in
  for i = 0 to m.r - 1 do
    let off = i * m.c in
    let sr = ref 0. and si = ref 0. in
    for j = 0 to m.c - 1 do
      let ar = m.re.(off + j) and ai = m.im.(off + j) in
      sr := !sr +. (ar *. vre.(j)) -. (ai *. vim.(j));
      si := !si +. (ar *. vim.(j)) +. (ai *. vre.(j))
    done;
    ore_.(i) <- !sr;
    oim.(i) <- !si
  done;
  out

let column m j = Vec.init m.r (fun i -> get m i j)
let row m i = Vec.init m.c (fun j -> get m i j)

let max_abs m =
  let worst = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    let d = Float.hypot m.re.(k) m.im.(k) in
    if d > !worst then worst := d
  done;
  !worst

let max_abs_diff a b =
  if a.r <> b.r || a.c <> b.c then
    invalid_arg "Cmat.max_abs_diff: dimension mismatch";
  let worst = ref 0. in
  for k = 0 to Array.length a.re - 1 do
    let d = Float.hypot (a.re.(k) -. b.re.(k)) (a.im.(k) -. b.im.(k)) in
    if d > !worst then worst := d
  done;
  !worst

let frobenius_norm m =
  let acc = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    acc := !acc +. (m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))
  done;
  Float.sqrt !acc

let equal ?(eps = 1e-9) a b =
  a.r = b.r && a.c = b.c && max_abs_diff a b <= eps

let equal_up_to_phase ?(eps = 1e-9) a b =
  a.r = b.r && a.c = b.c
  &&
  (* find the entry of largest modulus in b and align phases there *)
  let best = ref 0 and best_abs = ref (-1.) in
  Array.iteri
    (fun k br ->
      let d = Float.hypot br b.im.(k) in
      if d > !best_abs then begin
        best_abs := d;
        best := k
      end)
    b.re;
  if !best_abs <= eps then max_abs a <= eps
  else begin
    let k = !best in
    let zb = Cx.make b.re.(k) b.im.(k) and za = Cx.make a.re.(k) a.im.(k) in
    if Cx.abs za <= eps then false
    else begin
      let phase = Cx.div za zb in
      let phase = Cx.scale (1. /. Cx.abs phase) phase in
      max_abs_diff a (scale phase b) <= eps
    end
  end

let is_square m = m.r = m.c

let is_unitary ?(eps = 1e-9) m =
  is_square m && max_abs_diff (mul (dagger m) m) (identity m.r) <= eps

let is_hermitian ?(eps = 1e-9) m =
  is_square m && max_abs_diff m (dagger m) <= eps

let is_diagonal ?(eps = 1e-9) m =
  is_square m
  &&
  let ok = ref true in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      if i <> j && Float.hypot m.re.(idx m i j) m.im.(idx m i j) > eps then
        ok := false
    done
  done;
  !ok

let commute ?(eps = 1e-9) a b =
  if a.r <> a.c || b.r <> b.c || a.r <> b.r then
    invalid_arg "Cmat.commute: dimension mismatch";
  (* entry-by-entry comparison of a·b and b·a with early exit: each entry
     of the products is one row·column product, and a non-commuting pair
     reveals a violating entry almost immediately, so the quadratic scan
     rarely pays the full cubic cost. The accumulation order matches
     {!mul} term for term, so the decision is identical to comparing the
     fully materialized products. *)
  let n = a.r in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < n do
    let jc = !j in
    let i = ref 0 in
    while !ok && !i < n do
      let off = !i * n in
      let xr = ref 0. and xi = ref 0. in
      let yr = ref 0. and yi = ref 0. in
      for k = 0 to n - 1 do
        let ar = a.re.(off + k) and ai = a.im.(off + k) in
        if ar <> 0. || ai <> 0. then begin
          let br = b.re.((k * n) + jc) and bi = b.im.((k * n) + jc) in
          xr := !xr +. (ar *. br) -. (ai *. bi);
          xi := !xi +. (ar *. bi) +. (ai *. br)
        end
      done;
      for k = 0 to n - 1 do
        let br = b.re.(off + k) and bi = b.im.(off + k) in
        if br <> 0. || bi <> 0. then begin
          let ar = a.re.((k * n) + jc) and ai = a.im.((k * n) + jc) in
          yr := !yr +. (br *. ar) -. (bi *. ai);
          yi := !yi +. (br *. ai) +. (bi *. ar)
        end
      done;
      if Float.hypot (!xr -. !yr) (!xi -. !yi) > eps then ok := false;
      incr i
    done;
    incr j
  done;
  !ok

let det m =
  if m.r <> m.c then invalid_arg "Cmat.det: not square";
  let n = m.r in
  if n = 0 then Cx.one
  else begin
    let a = copy m in
    let d = ref Cx.one in
    (try
       for k = 0 to n - 1 do
         (* partial pivoting *)
         let piv = ref k and piv_abs = ref (Cx.abs (get a k k)) in
         for i = k + 1 to n - 1 do
           let v = Cx.abs (get a i k) in
           if v > !piv_abs then begin
             piv := i;
             piv_abs := v
           end
         done;
         if !piv_abs = 0. then begin
           d := Cx.zero;
           raise Exit
         end;
         if !piv <> k then begin
           for j = 0 to n - 1 do
             let tmp = get a k j in
             set a k j (get a !piv j);
             set a !piv j tmp
           done;
           d := Cx.neg !d
         end;
         d := Cx.mul !d (get a k k);
         for i = k + 1 to n - 1 do
           let f = Cx.div (get a i k) (get a k k) in
           for j = k to n - 1 do
             set a i j (Cx.sub (get a i j) (Cx.mul f (get a k j)))
           done
         done
       done
     with Exit -> ());
    !d
  end

let fidelity u v =
  if u.r <> v.r || u.c <> v.c || u.r <> u.c then
    invalid_arg "Cmat.fidelity: dimension mismatch";
  let d = float_of_int u.r in
  let t = trace (mul (dagger u) v) in
  Cx.norm2 t /. (d *. d)

(* Qubit q is bit (n-1-q) of a basis index (big-endian convention). *)
let bit_of_qubit n q = n - 1 - q

(* the shared index frame of [embed] and [mul_embedded]: the bit positions
   of the target qubits, the remaining positions, and the composition of a
   rest-configuration with a k-bit local index into a full basis index *)
let embed_frame ~name ~n_qubits ~targets u =
  let k = List.length targets in
  if u.r <> 1 lsl k || u.c <> 1 lsl k then
    invalid_arg
      (Printf.sprintf "Cmat.%s: unitary dimension does not match target count"
         name);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun q ->
      if q < 0 || q >= n_qubits then
        invalid_arg (Printf.sprintf "Cmat.%s: qubit out of range" name);
      if Hashtbl.mem seen q then
        invalid_arg (Printf.sprintf "Cmat.%s: duplicate target" name);
      Hashtbl.add seen q ())
    targets;
  let target_bits = Array.of_list (List.map (bit_of_qubit n_qubits) targets) in
  let rest_bits =
    List.filter
      (fun b -> not (Array.exists (( = ) b) target_bits))
      (List.init n_qubits (fun b -> b))
  in
  let rest_bits = Array.of_list rest_bits in
  (* compose a full index from a rest-configuration and a k-bit local index;
     local bit 0 of u's index space is its least-significant bit, which is
     the last listed target *)
  let compose rest_cfg local =
    let r = ref 0 in
    Array.iteri
      (fun pos b -> if (rest_cfg lsr pos) land 1 = 1 then r := !r lor (1 lsl b))
      rest_bits;
    Array.iteri
      (fun pos b ->
        let local_bit = k - 1 - pos in
        if (local lsr local_bit) land 1 = 1 then r := !r lor (1 lsl b))
      target_bits;
    !r
  in
  (k, Array.length rest_bits, compose)

let embed ~n_qubits ~targets u =
  let k, n_rest, compose = embed_frame ~name:"embed" ~n_qubits ~targets u in
  let dim = 1 lsl n_qubits in
  let m = create dim dim in
  for rest_cfg = 0 to (1 lsl n_rest) - 1 do
    for lr = 0 to (1 lsl k) - 1 do
      let full_r = compose rest_cfg lr in
      for lc = 0 to (1 lsl k) - 1 do
        let z = get u lr lc in
        if not (Cx.is_zero ~eps:0. z) then
          set m full_r (compose rest_cfg lc) z
      done
    done
  done;
  m

let mul_embedded ~n_qubits ~targets u m =
  let k, n_rest, compose =
    embed_frame ~name:"mul_embedded" ~n_qubits ~targets u
  in
  let dim = 1 lsl n_qubits in
  if m.r <> dim then invalid_arg "Cmat.mul_embedded: dimension mismatch";
  let dk = 1 lsl k in
  let out = create dim m.c in
  (* block-local matrix product: each rest-configuration selects 2^k rows
     of [m] that mix among themselves under embed(u); everything else is
     a row copy scaled by u's entries. Cost 4^n·2^k instead of 8^n. *)
  let rows_idx = Array.make dk 0 in
  for rest_cfg = 0 to (1 lsl n_rest) - 1 do
    for l = 0 to dk - 1 do
      rows_idx.(l) <- compose rest_cfg l
    done;
    for lr = 0 to dk - 1 do
      let out_off = rows_idx.(lr) * m.c in
      for lc = 0 to dk - 1 do
        let ur = u.re.((lr * dk) + lc) and ui = u.im.((lr * dk) + lc) in
        if ur <> 0. || ui <> 0. then begin
          let src_off = rows_idx.(lc) * m.c in
          for j = 0 to m.c - 1 do
            let br = m.re.(src_off + j) and bi = m.im.(src_off + j) in
            out.re.(out_off + j) <-
              out.re.(out_off + j) +. (ur *. br) -. (ui *. bi);
            out.im.(out_off + j) <-
              out.im.(out_off + j) +. (ur *. bi) +. (ui *. br)
          done
        end
      done
    done
  done;
  out

(* local index of a full basis index under [targets] (listed order, first
   target = most significant local bit, matching {!embed_frame}),
   tabulated for all 2^n indices *)
let local_index_table ~n_qubits ~targets =
  let k = List.length targets in
  let tb = Array.of_list (List.map (bit_of_qubit n_qubits) targets) in
  Array.init (1 lsl n_qubits) (fun idx ->
      let l = ref 0 in
      Array.iteri
        (fun pos b ->
          if (idx lsr b) land 1 = 1 then l := !l lor (1 lsl (k - 1 - pos)))
        tb;
      !l)

let commute_embedded ?(eps = 1e-9) ~n_qubits ~targets_a ua ~targets_b ub =
  (* Decides [commute (embed ua) (embed ub)] straight from the own-support
     matrices. An embedded entry a[i,k] is structurally zero unless i and
     k agree outside the target bits, so each row·column product of the
     two orderings has 2^|targets| candidate terms, not 2^n — cost
     4ⁿ·(2^ka + 2^kb) instead of 8ⁿ. The candidate k's are enumerated in
     ascending order and value-zero entries skipped exactly as in
     {!commute}, so the surviving terms accumulate in the same order with
     the same values and the decision is identical to embedding first
     (structurally-skipped terms are exact zeros, which only affect the
     sign of a zero accumulator — invisible to the comparison). *)
  let frame targets (u : t) =
    let k, _, _ = embed_frame ~name:"commute_embedded" ~n_qubits ~targets u in
    let bits = List.map (bit_of_qubit n_qubits) targets in
    let mask = List.fold_left (fun m b -> m lor (1 lsl b)) 0 bits in
    let sorted = List.sort compare bits in
    (* spreading counter bit t to the t-th lowest target bit is monotone,
       so c ↦ base lor spread.(c) walks the structural k's in ascending
       order *)
    let spread =
      Array.init (1 lsl k) (fun c ->
          let r = ref 0 in
          List.iteri
            (fun t b -> if (c lsr t) land 1 = 1 then r := !r lor (1 lsl b))
            sorted;
          !r)
    in
    (mask, spread, local_index_table ~n_qubits ~targets)
  in
  let mask_a, spread_a, loc_a = frame targets_a ua in
  let mask_b, spread_b, loc_b = frame targets_b ub in
  let n = 1 lsl n_qubits in
  let da = ua.c and db = ub.c in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < n do
    let jc = !j in
    let i = ref 0 in
    while !ok && !i < n do
      let ii = !i in
      let xr = ref 0. and xi = ref 0. in
      let yr = ref 0. and yi = ref 0. in
      let base_a = ii land lnot mask_a in
      let ra = loc_a.(ii) * da in
      for c = 0 to Array.length spread_a - 1 do
        let k = base_a lor spread_a.(c) in
        let ar = ua.re.(ra + loc_a.(k)) and ai = ua.im.(ra + loc_a.(k)) in
        if (ar <> 0. || ai <> 0.) && (k lxor jc) land lnot mask_b = 0 then begin
          let o = (loc_b.(k) * db) + loc_b.(jc) in
          let br = ub.re.(o) and bi = ub.im.(o) in
          xr := !xr +. (ar *. br) -. (ai *. bi);
          xi := !xi +. (ar *. bi) +. (ai *. br)
        end
      done;
      let base_b = ii land lnot mask_b in
      let rb = loc_b.(ii) * db in
      for c = 0 to Array.length spread_b - 1 do
        let k = base_b lor spread_b.(c) in
        let br = ub.re.(rb + loc_b.(k)) and bi = ub.im.(rb + loc_b.(k)) in
        if (br <> 0. || bi <> 0.) && (k lxor jc) land lnot mask_a = 0 then begin
          let o = (loc_a.(k) * da) + loc_a.(jc) in
          let ar = ua.re.(o) and ai = ua.im.(o) in
          yr := !yr +. (br *. ar) -. (bi *. ai);
          yi := !yi +. (br *. ai) +. (bi *. ar)
        end
      done;
      if Float.hypot (!xr -. !yr) (!xi -. !yi) > eps then ok := false;
      incr i
    done;
    incr j
  done;
  !ok

let permute_qubits perm u =
  let n =
    let rec log2 d acc = if d <= 1 then acc else log2 (d / 2) (acc + 1) in
    log2 u.r 0
  in
  if u.r <> 1 lsl n || u.r <> u.c then
    invalid_arg "Cmat.permute_qubits: not a square power-of-two matrix";
  if Array.length perm <> n then
    invalid_arg "Cmat.permute_qubits: permutation size mismatch";
  let remap index =
    let out = ref 0 in
    for q = 0 to n - 1 do
      let b_in = bit_of_qubit n q and b_out = bit_of_qubit n perm.(q) in
      if (index lsr b_in) land 1 = 1 then out := !out lor (1 lsl b_out)
    done;
    !out
  in
  let m = create u.r u.c in
  for i = 0 to u.r - 1 do
    for j = 0 to u.c - 1 do
      set m (remap i) (remap j) (get u i j)
    done
  done;
  m

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "[@[<hov>";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf ppf ",@ ";
      Cx.pp ppf (get m i j)
    done;
    Format.fprintf ppf "@]]";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
