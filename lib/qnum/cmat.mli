(** Dense complex matrices.

    Row-major storage in two float arrays. This module is the workhorse for
    gate unitaries, Hamiltonians and small-system propagators; dimensions are
    expected to stay small (≤ 2¹⁰). *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val rows : t -> int
val cols : t -> int

val init : int -> int -> (int -> int -> Cx.t) -> t
val of_lists : Cx.t list list -> t
(** Raises [Invalid_argument] on ragged input. *)

val of_real_lists : float list list -> t

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t

val identity : int -> t
val zeros : int -> int -> t

val diag : Cx.t array -> t
(** Square matrix with the given diagonal. *)

val diagonal : t -> Cx.t array
(** Diagonal entries of a square matrix. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Cx.t -> t -> t
val scale_real : float -> t -> t
val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on dimension mismatch. *)

val mul_list : t list -> t
(** [mul_list [a; b; c]] is [a*b*c]. Raises on the empty list. *)

val pow : t -> int -> t
(** [pow m k] for square [m], [k >= 0]. *)

val transpose : t -> t
val conj : t -> t
val dagger : t -> t
(** Conjugate transpose. *)

val trace : t -> Cx.t

val kron : t -> t -> t
(** Kronecker (tensor) product; [kron a b] has block structure a_ij·b. *)

val kron_list : t list -> t

val apply : t -> Vec.t -> Vec.t
(** Matrix–vector product. *)

val column : t -> int -> Vec.t
val row : t -> int -> Vec.t

val max_abs : t -> float
val max_abs_diff : t -> t -> float
val frobenius_norm : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Entrywise comparison with absolute tolerance (default [1e-9]). *)

val equal_up_to_phase : ?eps:float -> t -> t -> bool
(** [equal_up_to_phase a b] holds when [a = exp(iφ)·b] for some global
    phase φ. This is the right notion of equality for quantum unitaries. *)

val is_square : t -> bool
val is_unitary : ?eps:float -> t -> bool
val is_hermitian : ?eps:float -> t -> bool
val is_diagonal : ?eps:float -> t -> bool

val commute : ?eps:float -> t -> t -> bool
(** [commute a b] tests [a*b = b*a]. *)

val det : t -> Cx.t
(** Determinant via LU decomposition with partial pivoting. *)

val fidelity : t -> t -> float
(** [fidelity u v] is |tr(u† v)|² / d² for d×d unitaries — the standard
    (phase-insensitive) gate fidelity used as the GRAPE loss. *)

(** {1 Qubit-indexed helpers}

    Qubit [0] is the most significant bit of a basis-state index, matching
    the usual big-endian circuit-diagram convention: for a 2-qubit system,
    basis order is |00⟩,|01⟩,|10⟩,|11⟩ with qubit 0 on the left. *)

val embed : n_qubits:int -> targets:int list -> t -> t
(** [embed ~n_qubits ~targets u] lifts a 2^k×2^k unitary [u] acting on the
    listed target qubits (in the order given, which maps to [u]'s own qubit
    order) to the full 2ⁿ×2ⁿ space, acting as identity elsewhere.
    Raises [Invalid_argument] on duplicate or out-of-range targets or when
    [u]'s dimension is not 2^(length targets). *)

val mul_embedded : n_qubits:int -> targets:int list -> t -> t -> t
(** [mul_embedded ~n_qubits ~targets u m] is
    [mul (embed ~n_qubits ~targets u) m] computed without materializing the
    embedded operator — O(4ⁿ·2^k) for a k-qubit [u] instead of the O(8ⁿ)
    full product. This is the workhorse for composing gate sequences into
    block unitaries. Raises like {!embed} on bad targets, plus when [m]
    does not have 2ⁿ rows. *)

val commute_embedded :
  ?eps:float ->
  n_qubits:int ->
  targets_a:int list ->
  t ->
  targets_b:int list ->
  t ->
  bool
(** [commute_embedded ~n_qubits ~targets_a ua ~targets_b ub] decides
    [commute (embed ua) (embed ub)] without materializing either embedded
    operator: each row·column term sum only visits the structurally
    nonzero entries, so the cost is O(4ⁿ·(2^ka + 2^kb)) instead of O(8ⁿ).
    Term order and zero-skipping match {!commute} on the embedded
    matrices, so the two always return the same answer. Raises like
    {!embed} on bad targets. *)

val permute_qubits : int array -> t -> t
(** [permute_qubits perm u] relabels the qubits of a 2ⁿ×2ⁿ matrix:
    qubit [q] of the input becomes qubit [perm.(q)] of the output. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
