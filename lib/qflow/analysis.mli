(** The forward abstract-interpretation drivers.

    [circuit] runs the {!Transfer} functions over a flat gate stream
    (one exact forward pass — straight-line code needs no joins) and
    reports, per gate, whether it was provably dead on arrival, plus
    the final per-qubit abstract state.

    [gdg] runs a worklist fixpoint over a gate dependence graph in
    topological order: each instruction's per-qubit input is the output
    of its chain predecessor ([Zero] at a chain head), member gates are
    interpreted in block order, and an instruction is re-queued only
    when a predecessor's output changes (on a well-formed DAG the
    seeding pass already converges; the worklist makes the solver total
    on any graph). Every instruction also gets its content-addressed
    {!Summary}. *)

type circuit_result = {
  n_qubits : int;
  n_gates : int;
  final : Absval.t array;  (** per-qubit state after the last gate *)
  dead : (int * Qgate.Gate.t) list;
      (** gates provably identity (up to global phase) on their input
          abstract state, as (stream index, gate), in stream order *)
}

val circuit : Qgate.Circuit.t -> circuit_result
val gates : n_qubits:int -> Qgate.Gate.t list -> circuit_result

type inst_info = {
  inst_id : int;
  input : (int * Absval.t) list;  (** per support qubit, sorted *)
  output : (int * Absval.t) list;
  summary : Summary.t;
  dead_members : int list;
      (** member indexes provably identity at their point in the block *)
}

type gdg_result = {
  n_qubits : int;
  final : Absval.t array;
      (** per-qubit state after the last instruction of its chain *)
  insts : inst_info list;  (** in topological order *)
  steps : int;  (** worklist transfer evaluations (tests) *)
}

val gdg : Qgdg.Gdg.t -> gdg_result
