(** Gate transfer functions over the per-qubit abstract state.

    The state is one {!Absval.t} per register qubit. [dead] decides
    whether a gate is {e provably} the identity — up to global phase —
    on the current abstract state; [apply] advances the state by one
    gate (a dead gate leaves it unchanged). Both are total over the
    whole {!Qgate.Gate.kind} vocabulary.

    Soundness argument, by case (all classes below [Top] assert the
    qubit is an unentangled tensor factor of the deterministic concrete
    state, see {!Absval}):

    - A diagonal gate whose support qubits are all [⊑ Basis] multiplies
      a definite basis product state by one scalar — a global phase.
    - A controlled gate with a control at [Zero] acts as the identity
      branch exactly.
    - [Cz]/[Cphase] with either qubit at [Zero] fix |0⟩⊗ψ exactly.
    - [Swap]-family gates on two [Zero] qubits fix |00⟩ exactly
      (iSWAP and √iSWAP included).
    - An entangling gate between two possibly-superposed qubits sends
      both to [Top]; a two-qubit gate with one definite basis operand
      degenerates to a single-qubit (or identity) action on the other,
      which stays within its class. *)

val angle_eps : float
(** Tolerance for recognizing angles modulo 2π ([1e-9]). *)

val multiple_of : float -> float -> bool
(** [multiple_of m a]: is [a] within {!angle_eps} of an integer
    multiple of [m]? *)

val dead : Absval.t array -> Qgate.Gate.t -> bool
(** Is the gate provably identity (up to global phase) on this state?
    Never true for gates that could change any computational-basis
    amplitude's modulus. *)

val apply : Absval.t array -> Qgate.Gate.t -> unit
(** Advance the state by one gate, in place ([dead] gates are
    no-ops). Qubit indices outside the array raise
    [Invalid_argument]. *)

val step : Absval.t array -> Qgate.Gate.t -> bool
(** [dead st g] followed by [apply st g]; returns the deadness verdict
    (the one-pass driver of {!Analysis}). *)
