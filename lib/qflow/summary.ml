module Gate = Qgate.Gate

type klass = Qgdg.Oracle.klass =
  | Identity
  | Diagonal
  | Clifford
  | Phase_linear
  | General

let klass_to_string = Qgdg.Oracle.klass_to_string

type t = Qgdg.Oracle.t = {
  digest : string;
  support : int list;
  klass : klass;
  in_clifford : bool;
  in_phase_poly : bool;
  all_diagonal : bool;
}

(* order-preserving relabelling of a gate list onto 0..|support|-1 *)
let relabel_onto support gs =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gs

(* Classification lives in the GDG-layer oracle (Qgdg.Oracle) so the
   detect pass, CLS grouping and this summary layer share one
   digest-keyed table; this module keeps only the algebraic pairwise memo
   (the joint overlap pattern matters, so the single-block digests are
   not a sufficient key). Memo entries are pure functions of their keys
   and the table is per-domain (Domain.DLS), so per-domain re-warming
   keeps results deterministic while no write can race. *)
type memo_state = { pair : (string, bool option) Hashtbl.t }

let memos =
  Qobs.Domain_safe.Local.make (fun () -> { pair = Hashtbl.create 1024 })
  [@@domain_safety domain_local]

let of_gates gs =
  let s, hit = Qgdg.Oracle.of_gates gs in
  Qobs.Metrics.tick (if hit then "qflow.summary.hit" else "qflow.summary.miss");
  s

let of_inst (i : Qgdg.Inst.t) = of_gates i.Qgdg.Inst.gates

let max_pair_width = 12

(* Route attribution, mirroring Qgdg.Commute: every [commutes] query
   ticks "qflow.pair.checks" and exactly one "qflow.route.<r>" counter
   (structural / oversize / memo / phase_poly / tableau / undecided),
   plus the matching per-route time histogram. The clock is read only
   when a metrics registry is ambient. *)
let now_if_metrics () =
  if Qobs.Metrics.enabled (Qobs.Metrics.ambient ()) then
    Some (Qobs.Clock.now_ns ())
  else None

let route_structural = ("qflow.route.structural", "qflow.route.structural.ms")
let route_oversize = ("qflow.route.oversize", "qflow.route.oversize.ms")
let route_memo = ("qflow.route.memo", "qflow.route.memo.ms")
let route_phase_poly = ("qflow.route.phase_poly", "qflow.route.phase_poly.ms")
let route_tableau = ("qflow.route.tableau", "qflow.route.tableau.ms")
let route_undecided = ("qflow.route.undecided", "qflow.route.undecided.ms")

let route (name, hist) t0 =
  match t0 with
  | None -> ()
  | Some t0 ->
    Qobs.Metrics.tick name;
    Qobs.Metrics.record hist (Qobs.Clock.elapsed_ns t0 /. 1e6)

let commutes ~a ~b sa sb =
  Qobs.Metrics.tick "qflow.pair.checks";
  let t0 = now_if_metrics () in
  if not (List.exists (fun q -> List.mem q sb.support) sa.support) then begin
    route route_structural t0;
    Some true
  end
  else if
    (sa.klass = Identity || sa.klass = Diagonal)
    && (sb.klass = Identity || sb.klass = Diagonal)
  then begin
    route route_structural t0;
    Some true
  end
  else begin
    let joint = List.sort_uniq compare (sa.support @ sb.support) in
    let n_qubits = List.length joint in
    if n_qubits > max_pair_width then begin
      route route_oversize t0;
      None
    end
    else begin
      let la = relabel_onto joint a and lb = relabel_onto joint b in
      let key = Marshal.to_string (la, lb) [] in
      let m = Qobs.Domain_safe.Local.get memos in
      match Hashtbl.find_opt m.pair key with
      | Some r ->
        Qobs.Metrics.tick "qflow.summary.hit";
        route route_memo t0;
        r
      | None ->
        Qobs.Metrics.tick "qflow.summary.miss";
        let r, taken =
          Qgdg.Oracle.algebraic_pair
            ~in_phase_poly:(sa.in_phase_poly && sb.in_phase_poly)
            ~in_clifford:(sa.in_clifford && sb.in_clifford)
            ~n_qubits la lb
        in
        let route_taken =
          match taken with
          | Qgdg.Oracle.Pair_phase_poly -> route_phase_poly
          | Qgdg.Oracle.Pair_tableau -> route_tableau
          | Qgdg.Oracle.Pair_undecided -> route_undecided
        in
        Hashtbl.replace m.pair key r;
        route route_taken t0;
        r
    end
  end

(* idempotent; clears the calling domain's pair table only — the shared
   classification memo is the oracle's ({!Qgdg.Oracle.reset_memos}) *)
let reset_memo () =
  let m = Qobs.Domain_safe.Local.get memos in
  Hashtbl.reset m.pair
