module Gate = Qgate.Gate

type klass = Identity | Diagonal | Clifford | Phase_linear | General

let klass_to_string = function
  | Identity -> "identity"
  | Diagonal -> "diagonal"
  | Clifford -> "clifford"
  | Phase_linear -> "phase-linear"
  | General -> "general"

type t = {
  digest : string;
  support : int list;
  klass : klass;
  in_clifford : bool;
  in_phase_poly : bool;
}

(* order-preserving relabelling of a gate list onto 0..|support|-1 *)
let relabel_onto support gs =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gs

let support_of gs = List.sort_uniq compare (List.concat_map Gate.qubits gs)

(* Classification of a relabelled block is memoized on its digest — the
   payload depends only on the block's shape, never on where it sits on
   the register — and pairwise algebraic commutation on the relabelled
   pair. Both tables live in one per-domain slot (Domain.DLS): memo
   entries are pure functions of their keys, so per-domain re-warming
   keeps results deterministic while no write can race. *)
type memo_state = {
  classify : (string, klass * bool * bool) Hashtbl.t;
  pair : (string, bool option) Hashtbl.t;
}

let memos =
  Qobs.Domain_safe.Local.make (fun () ->
      { classify = Hashtbl.create 1024; pair = Hashtbl.create 1024 })
  [@@domain_safety domain_local]

let classify ~n_qubits local =
  let pp = Qdomain.Phase_poly.of_gates ~n_qubits local in
  let tb = Qdomain.Tableau.of_gates ~n_qubits local in
  let in_phase_poly = pp <> None in
  let in_clifford = tb <> None in
  let identity =
    (match tb with
     | Some t -> Qdomain.Tableau.equal t (Qdomain.Tableau.identity n_qubits)
     | None -> false)
    ||
    match pp with
    | Some p -> Qdomain.Phase_poly.equal p (Qdomain.Phase_poly.identity n_qubits)
    | None -> false
  in
  let diagonal =
    List.for_all (fun g -> Gate.is_diagonal_kind g.Gate.kind) local
    ||
    match pp with
    | Some p -> Qdomain.Phase_poly.is_linear_identity p
    | None -> false
  in
  let klass =
    if identity then Identity
    else if diagonal then Diagonal
    else if in_clifford then Clifford
    else if in_phase_poly then Phase_linear
    else General
  in
  (klass, in_clifford, in_phase_poly)

let of_gates gs =
  let support = support_of gs in
  let local = relabel_onto support gs in
  let digest = Digest.to_hex (Digest.string (Marshal.to_string local [])) in
  let m = Qobs.Domain_safe.Local.get memos in
  let klass, in_clifford, in_phase_poly =
    match Hashtbl.find_opt m.classify digest with
    | Some payload ->
      Qobs.Metrics.tick "qflow.summary.hit";
      payload
    | None ->
      Qobs.Metrics.tick "qflow.summary.miss";
      let payload = classify ~n_qubits:(List.length support) local in
      Hashtbl.replace m.classify digest payload;
      payload
  in
  { digest; support; klass; in_clifford; in_phase_poly }

let of_inst (i : Qgdg.Inst.t) = of_gates i.Qgdg.Inst.gates

let max_pair_width = 12

(* Algebraic-only pairwise commutation is memoized under the relabelled
   pair, in [memos].pair (the joint overlap pattern matters, so the
   single-block digests are not a sufficient key).

   Route attribution, mirroring Qgdg.Commute: every [commutes] query
   ticks "qflow.pair.checks" and exactly one "qflow.route.<r>" counter
   (structural / oversize / memo / phase_poly / tableau / undecided),
   plus the matching per-route time histogram. The clock is read only
   when a metrics registry is ambient. *)
let now_if_metrics () =
  if Qobs.Metrics.enabled (Qobs.Metrics.ambient ()) then
    Some (Qobs.Clock.now_ns ())
  else None

let route_structural = ("qflow.route.structural", "qflow.route.structural.ms")
let route_oversize = ("qflow.route.oversize", "qflow.route.oversize.ms")
let route_memo = ("qflow.route.memo", "qflow.route.memo.ms")
let route_phase_poly = ("qflow.route.phase_poly", "qflow.route.phase_poly.ms")
let route_tableau = ("qflow.route.tableau", "qflow.route.tableau.ms")
let route_undecided = ("qflow.route.undecided", "qflow.route.undecided.ms")

let route (name, hist) t0 =
  match t0 with
  | None -> ()
  | Some t0 ->
    Qobs.Metrics.tick name;
    Qobs.Metrics.record hist (Qobs.Clock.elapsed_ns t0 /. 1e6)

let decide_pair ~n_qubits a b =
  match
    ( Qdomain.Phase_poly.of_gates ~n_qubits (a @ b),
      Qdomain.Phase_poly.of_gates ~n_qubits (b @ a) )
  with
  | Some p_ab, Some p_ba ->
    (Qdomain.Phase_poly.strict_equal ~eps:1e-9 p_ab p_ba, route_phase_poly)
  | _ -> (
    match
      ( Qdomain.Tableau.of_gates ~n_qubits (a @ b),
        Qdomain.Tableau.of_gates ~n_qubits (b @ a) )
    with
    | Some t_ab, Some t_ba ->
      let r =
        if not (Qdomain.Tableau.equal t_ab t_ba) then Some false
        else begin
          (* tableau equality is up to global phase; one statevector
             column decides the residual *)
          let s_ab = Qgate.Unitary.state_of_gates ~n_qubits (a @ b) in
          let s_ba = Qgate.Unitary.state_of_gates ~n_qubits (b @ a) in
          let ok = ref true in
          Array.iteri
            (fun i z ->
              if Qnum.Cx.abs (Qnum.Cx.sub z s_ba.(i)) > 1e-6 then ok := false)
            s_ab;
          Some !ok
        end
      in
      (r, route_tableau)
    | _ -> (None, route_undecided))

let commutes ~a ~b sa sb =
  Qobs.Metrics.tick "qflow.pair.checks";
  let t0 = now_if_metrics () in
  if not (List.exists (fun q -> List.mem q sb.support) sa.support) then begin
    route route_structural t0;
    Some true
  end
  else if
    (sa.klass = Identity || sa.klass = Diagonal)
    && (sb.klass = Identity || sb.klass = Diagonal)
  then begin
    route route_structural t0;
    Some true
  end
  else begin
    let joint = List.sort_uniq compare (sa.support @ sb.support) in
    let n_qubits = List.length joint in
    if n_qubits > max_pair_width then begin
      route route_oversize t0;
      None
    end
    else begin
      let la = relabel_onto joint a and lb = relabel_onto joint b in
      let key = Marshal.to_string (la, lb) [] in
      let m = Qobs.Domain_safe.Local.get memos in
      match Hashtbl.find_opt m.pair key with
      | Some r ->
        Qobs.Metrics.tick "qflow.summary.hit";
        route route_memo t0;
        r
      | None ->
        Qobs.Metrics.tick "qflow.summary.miss";
        let r, route_taken = decide_pair ~n_qubits la lb in
        Hashtbl.replace m.pair key r;
        route route_taken t0;
        r
    end
  end

(* idempotent; clears the calling domain's tables only *)
let reset_memo () =
  let m = Qobs.Domain_safe.Local.get memos in
  Hashtbl.reset m.classify;
  Hashtbl.reset m.pair
