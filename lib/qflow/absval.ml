type t = Zero | Basis | Stabilizer | Diag | Top

let bottom = Zero
let top = Top
let rank = function Zero -> 0 | Basis -> 1 | Stabilizer -> 2 | Diag -> 3 | Top -> 4
let leq a b = rank a <= rank b
let join a b = if rank a >= rank b then a else b
let compare a b = Stdlib.compare (rank a) (rank b)
let equal a b = rank a = rank b

let to_string = function
  | Zero -> "zero"
  | Basis -> "basis"
  | Stabilizer -> "stabilizer"
  | Diag -> "diag"
  | Top -> "top"

let of_string = function
  | "zero" -> Some Zero
  | "basis" -> Some Basis
  | "stabilizer" -> Some Stabilizer
  | "diag" -> Some Diag
  | "top" -> Some Top
  | _ -> None

let pp ppf v = Format.pp_print_string ppf (to_string v)
let all = [ Zero; Basis; Stabilizer; Diag; Top ]
