type circuit_result = {
  n_qubits : int;
  n_gates : int;
  final : Absval.t array;
  dead : (int * Qgate.Gate.t) list;
}

let gates ~n_qubits gs =
  let st = Array.make n_qubits Absval.bottom in
  let dead = ref [] in
  List.iteri
    (fun k g -> if Transfer.step st g then dead := (k, g) :: !dead)
    gs;
  { n_qubits; n_gates = List.length gs; final = st; dead = List.rev !dead }

let circuit c =
  gates ~n_qubits:(Qgate.Circuit.n_qubits c) (Qgate.Circuit.gates c)

type inst_info = {
  inst_id : int;
  input : (int * Absval.t) list;
  output : (int * Absval.t) list;
  summary : Summary.t;
  dead_members : int list;
}

type gdg_result = {
  n_qubits : int;
  final : Absval.t array;
  insts : inst_info list;
  steps : int;
}

module Work = Set.Make (struct
  type t = int * int (* topo position, inst id *)

  let compare = compare
end)

let gdg g =
  let n_qubits = Qgdg.Gdg.n_qubits g in
  let order = Qgdg.Gdg.insts g in
  let pos = Hashtbl.create 64 in
  List.iteri (fun k (i : Qgdg.Inst.t) -> Hashtbl.replace pos i.Qgdg.Inst.id k) order;
  let preds, succs = Qgdg.Gdg.neighbor_tables g in
  (* per-instruction output values on its support qubits *)
  let out : (int, (int * Absval.t) list) Hashtbl.t = Hashtbl.create 64 in
  let info : (int, inst_info) Hashtbl.t = Hashtbl.create 64 in
  let input_of (i : Qgdg.Inst.t) =
    List.map
      (fun q ->
        match Hashtbl.find_opt preds (i.Qgdg.Inst.id, q) with
        | None -> (q, Absval.bottom)
        | Some p -> (
          match Hashtbl.find_opt out p with
          | Some vals -> (q, try List.assoc q vals with Not_found -> Absval.top)
          | None -> (q, Absval.bottom)))
      i.Qgdg.Inst.qubits
  in
  let steps = ref 0 in
  let work =
    ref
      (List.fold_left
         (fun acc (i : Qgdg.Inst.t) ->
           Work.add (Hashtbl.find pos i.Qgdg.Inst.id, i.Qgdg.Inst.id) acc)
         Work.empty order)
  in
  while not (Work.is_empty !work) do
    let ((_, id) as item) = Work.min_elt !work in
    work := Work.remove item !work;
    let i = Qgdg.Gdg.find g id in
    let input = input_of i in
    incr steps;
    (* interpret the member gates on a full-width scratch state; gates
       of this block only touch its support *)
    let st = Array.make n_qubits Absval.top in
    List.iter (fun (q, v) -> st.(q) <- v) input;
    let dead_members = ref [] in
    List.iteri
      (fun k gate -> if Transfer.step st gate then dead_members := k :: !dead_members)
      i.Qgdg.Inst.gates;
    let output = List.map (fun q -> (q, st.(q))) i.Qgdg.Inst.qubits in
    let changed =
      match Hashtbl.find_opt out id with
      | Some prev -> prev <> output
      | None -> true
    in
    Hashtbl.replace out id output;
    Hashtbl.replace info id
      { inst_id = id;
        input;
        output;
        summary = Summary.of_inst i;
        dead_members = List.rev !dead_members };
    if changed then
      List.iter
        (fun q ->
          match Hashtbl.find_opt succs (id, q) with
          | Some s -> work := Work.add (Hashtbl.find pos s, s) !work
          | None -> ())
        i.Qgdg.Inst.qubits
  done;
  (* final per-qubit state: the output of the last instruction on each
     qubit's chain *)
  let final = Array.make n_qubits Absval.bottom in
  for q = 0 to n_qubits - 1 do
    match List.rev (Qgdg.Gdg.chain_ids g q) with
    | [] -> final.(q) <- Absval.bottom
    | last :: _ -> (
      match Hashtbl.find_opt out last with
      | Some vals -> (
        final.(q) <- (try List.assoc q vals with Not_found -> Absval.top))
      | None -> final.(q) <- Absval.top)
  done;
  { n_qubits;
    final;
    insts =
      List.map (fun (i : Qgdg.Inst.t) -> Hashtbl.find info i.Qgdg.Inst.id) order;
    steps = !steps }
