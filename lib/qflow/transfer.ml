module Gate = Qgate.Gate
open Absval

let angle_eps = 1e-9
let tau = 2. *. Float.pi

let multiple_of m a =
  let r = a -. (m *. Float.round (a /. m)) in
  Float.abs r < angle_eps

(* a ≈ π (mod 2π): the rotation is a Pauli up to global phase *)
let pauli_angle a = multiple_of tau (a -. Float.pi)
let clifford_angle a = multiple_of (Float.pi /. 2.) a

let get st q =
  if q < 0 || q >= Array.length st then
    invalid_arg (Printf.sprintf "Qflow.Transfer: qubit %d out of range" q)
  else st.(q)

let dead st (g : Gate.t) =
  let v q = get st q in
  match (g.Gate.kind, g.Gate.qubits) with
  | Gate.I, _ -> true
  (* full-turn rotations are ±identity *)
  | (Gate.Rx a | Gate.Ry a | Gate.Rz a | Gate.Rxx a | Gate.Ryy a | Gate.Rzz a), _
    when multiple_of tau a ->
    true
  | (Gate.Phase a | Gate.Cphase a), _ when multiple_of tau a -> true
  (* a controlled gate whose control is exactly |0⟩ takes the identity
     branch *)
  | Gate.Cnot, c :: _ when v c = Zero -> true
  | Gate.Ccx, c1 :: c2 :: _ when v c1 = Zero || v c2 = Zero -> true
  | (Gate.Cz | Gate.Cphase _), [ a; b ] when v a = Zero || v b = Zero -> true
  (* the swap family fixes |00⟩ exactly *)
  | (Gate.Swap | Gate.Iswap | Gate.Sqrt_iswap), [ a; b ]
    when v a = Zero && v b = Zero ->
    true
  (* a diagonal gate on definite basis qubits is one global phase *)
  | k, qs when Gate.is_diagonal_kind k && List.for_all (fun q -> leq (v q) Basis) qs
    ->
    true
  | _ -> false

(* single-qubit class maps; [Top] is always a fixpoint *)
let x_like = function Zero -> Basis | v -> v
let h_like = function Zero | Basis | Stabilizer -> Stabilizer | v -> v
let diag_like ~clifford = function
  | (Zero | Basis) as v -> v
  | Stabilizer -> if clifford then Stabilizer else Diag
  | v -> v

let apply st (g : Gate.t) =
  if not (dead st g) then begin
    let v q = get st q in
    let set q x = st.(q) <- x in
    let entangle qs = List.iter (fun q -> set q Top) qs in
    match (g.Gate.kind, g.Gate.qubits) with
    | (Gate.X | Gate.Y), [ q ] -> set q (x_like (v q))
    | (Gate.Z | Gate.S | Gate.Sdg), [ _ ] -> ()
    | (Gate.T | Gate.Tdg), [ q ] -> set q (diag_like ~clifford:false (v q))
    | (Gate.Rz a | Gate.Phase a), [ q ] ->
      set q (diag_like ~clifford:(clifford_angle a) (v q))
    | Gate.H, [ q ] -> set q (h_like (v q))
    | (Gate.Rx a | Gate.Ry a), [ q ] ->
      if pauli_angle a then set q (x_like (v q))
      else if clifford_angle a then set q (h_like (v q))
      else set q (if v q = Top then Top else Diag)
    | Gate.Cnot, [ c; t ] ->
      (* [dead] already dispatched c = Zero, so ⊑ Basis means Basis: a
         definite control value, i.e. the gate is I or X on the target *)
      if leq (v c) Basis then set t (x_like (v t)) else entangle [ c; t ]
    | Gate.Cz, [ a; b ] ->
      (* one definite basis operand degrades CZ to I-or-Z on the other,
         and Z preserves every class *)
      if leq (v a) Basis || leq (v b) Basis then () else entangle [ a; b ]
    | Gate.Cphase th, [ a; b ] ->
      if leq (v a) Basis then set b (diag_like ~clifford:(clifford_angle th) (v b))
      else if leq (v b) Basis then
        set a (diag_like ~clifford:(clifford_angle th) (v a))
      else entangle [ a; b ]
    | Gate.Rzz th, [ a; b ] ->
      (* Rzz(π) ∝ Z⊗Z: class-preserving on both sides *)
      if pauli_angle th then ()
      else if leq (v a) Basis then
        set b (diag_like ~clifford:(clifford_angle th) (v b))
      else if leq (v b) Basis then
        set a (diag_like ~clifford:(clifford_angle th) (v a))
      else entangle [ a; b ]
    | Gate.Swap, [ a; b ] ->
      let va = v a in
      set a (v b);
      set b va
    | Gate.Iswap, [ a; b ] ->
      (* with a definite basis operand, iSWAP is SWAP plus an S-like
         phase on the moved state — class-preserving either way *)
      if leq (v a) Basis || leq (v b) Basis then begin
        let va = v a in
        set a (v b);
        set b va
      end
      else entangle [ a; b ]
    | Gate.Sqrt_iswap, [ a; b ] -> entangle [ a; b ]
    | (Gate.Rxx a | Gate.Ryy a), [ p; q ] ->
      if pauli_angle a then begin
        set p (x_like (v p));
        set q (x_like (v q))
      end
      else entangle [ p; q ]
    | Gate.Ccx, [ c1; c2; t ] ->
      if leq (v c1) Basis && leq (v c2) Basis then set t (x_like (v t))
      else entangle [ c1; c2; t ]
    | Gate.I, _ -> ()
    | _, qs ->
      (* malformed arity (hand-built record): stay sound *)
      entangle qs
  end

let step st g =
  let d = dead st g in
  if not d then apply st g;
  d
