(** Per-qubit abstract values — the lattice of the dataflow analysis.

    The compiler's circuits are straight-line and start from |0…0⟩, so
    the concrete register state at every program point is a single,
    fixed vector. An abstract value classifies what the analysis has
    proved about one qubit's tensor factor in that vector:

    {v
        Top          no information (the qubit may be entangled)
         |
        Diag         unentangled; an arbitrary single-qubit pure state
         |           (stabilizer states rotated by diagonal-phase
         |           gates land here, as do generic 1q rotations)
        Stabilizer   unentangled; one of the six single-qubit
         |           stabilizer states, up to phase
        Basis        unentangled; |0⟩ or |1⟩, up to phase
         |
        Zero         unentangled; exactly |0⟩
    v}

    The order is a chain, so [join] is [max]. Soundness invariant: if
    the analysis assigns value [v] to a qubit, the concrete state at
    that point factors as (single-qubit state in γ(v)) ⊗ (rest) —
    except for [Top], which promises nothing. Every class below [Top]
    implies the qubit is disentangled from the rest of the register,
    which is what licenses the dead-gate reasoning in {!Transfer}. *)

type t = Zero | Basis | Stabilizer | Diag | Top

val bottom : t
(** [Zero] — the initial state of every qubit. *)

val top : t

val leq : t -> t -> bool
(** The chain order ([Zero ⊑ Basis ⊑ Stabilizer ⊑ Diag ⊑ Top]). *)

val join : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val rank : t -> int
(** 0 for [Zero] … 4 for [Top]; [leq a b ⟺ rank a <= rank b]. *)

val to_string : t -> string
(** Lower-case name: ["zero"], ["basis"], ["stabilizer"], ["diag"],
    ["top"]. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val all : t list
(** The five values in lattice order (for tests and reports). *)
