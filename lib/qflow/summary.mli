(** Content-addressed per-instruction algebraic summaries.

    A summary classifies a member-gate block by the cheapest abstract
    domain that pins its semantics — identity, diagonal, Clifford
    (Pauli tableau), CNOT+diagonal (phase polynomial) — together with
    its support and a content digest of the block relabelled onto its
    own support. Classification lives in the GDG-layer commutation
    oracle ({!Qgdg.Oracle}) and is memoized on the digest: congruent
    blocks anywhere on the register (the same excitation or adder
    template stamped onto different qubit sets) are classified once per
    domain, and the detect pass, CLS grouping and this layer share the
    table. Cache traffic is observable through the ambient metrics
    registry as [qflow.summary.hit] / [qflow.summary.miss]
    (see {!Qobs.Metrics}). *)

type klass = Qgdg.Oracle.klass =
  | Identity  (** provably identity up to global phase *)
  | Diagonal  (** diagonal in the computational basis *)
  | Clifford  (** inside the Pauli-tableau fragment *)
  | Phase_linear  (** inside the CNOT+diagonal fragment (non-Clifford) *)
  | General  (** escapes every algebraic domain *)

val klass_to_string : klass -> string
(** Lower-case name: ["identity"] … ["general"]. *)

type t = Qgdg.Oracle.t = {
  digest : string;  (** hex digest of the relabelled member list *)
  support : int list;  (** sorted qubit support *)
  klass : klass;
  in_clifford : bool;  (** tableau domain applies (independent of klass) *)
  in_phase_poly : bool;  (** phase-polynomial domain applies *)
  all_diagonal : bool;  (** every member gate is syntactically diagonal *)
}

val of_gates : Qgate.Gate.t list -> t
val of_inst : Qgdg.Inst.t -> t

val commutes : a:Qgate.Gate.t list -> b:Qgate.Gate.t list -> t -> t -> bool option
(** [commutes ~a ~b sa sb]: do the blocks commute as operators, decided
    {e algebraically only} — disjoint supports, diagonal×diagonal, the
    phase-polynomial domain (exact), or the tableau domain (up to a
    statevector-column global-phase tie-break)? [None] when the pair
    escapes all of these (no dense fallback here — see
    {!Qgdg.Commute} for the full decision procedure). Decisions are
    memoized under the relabelled pair. Joint supports wider than
    {!max_pair_width} return [None].

    Every call ticks [qflow.pair.checks] and exactly one
    [qflow.route.<r>] counter (structural / oversize / memo /
    phase_poly / tableau / undecided) with a matching [.ms] histogram,
    when a metrics registry is ambient. *)

val max_pair_width : int
(** Joint-support cap for pairwise algebraic checks (12). *)

val reset_memo : unit -> unit
(** Clear the process-wide pair memo (tests). The shared classification
    memo is cleared by {!Qgdg.Oracle.reset_memos} /
    {!Qgdg.Commute.reset_memos}. *)
