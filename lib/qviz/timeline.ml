module Inst = Qgdg.Inst
module Schedule = Qsched.Schedule

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_json (s : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"n_qubits\": %d, \"makespan\": %.6f, \"entries\": ["
       s.Schedule.n_qubits s.Schedule.makespan);
  List.iteri
    (fun k (e : Schedule.entry) ->
      if k > 0 then Buffer.add_string buf ", ";
      let i = e.Schedule.inst in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\": %d, \"start\": %.6f, \"finish\": %.6f, \"qubits\": [%s], \"gates\": [%s]}"
           i.Inst.id e.Schedule.start e.Schedule.finish
           (String.concat ", " (List.map string_of_int i.Inst.qubits))
           (String.concat ", "
              (List.map
                 (fun g -> Printf.sprintf "\"%s\"" (json_escape (Qgate.Gate.to_string g)))
                 i.Inst.gates))))
    s.Schedule.entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* read-only colour table *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]
  [@@domain_safety frozen_after_init]

let to_svg ?(width = 900) ?(lane_height = 26) (s : Schedule.t) =
  let n = max 1 s.Schedule.n_qubits in
  let label_w = 46 in
  let plot_w = width - label_w - 10 in
  let makespan = Float.max 1e-9 s.Schedule.makespan in
  let x_of t = label_w + int_of_float (float_of_int plot_w *. t /. makespan) in
  let height = (n * lane_height) + 40 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  (* qubit lanes *)
  for q = 0 to n - 1 do
    let y = 20 + (q * lane_height) in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"4\" y=\"%d\" fill=\"#333\">q%d</text>\n"
         (y + (lane_height / 2) + 4) q);
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n"
         label_w (y + lane_height) (label_w + plot_w) (y + lane_height))
  done;
  (* instruction rectangles *)
  List.iteri
    (fun k (e : Schedule.entry) ->
      let i = e.Schedule.inst in
      let color = palette.(k mod Array.length palette) in
      let x = x_of e.Schedule.start in
      let w = max 2 (x_of e.Schedule.finish - x) in
      List.iter
        (fun q ->
          let y = 20 + (q * lane_height) + 2 in
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" fill-opacity=\"0.85\" stroke=\"#333\" stroke-width=\"0.5\"><title>#%d [%0.1f, %0.1f] %s</title></rect>\n"
               x y w (lane_height - 4) color i.Inst.id e.Schedule.start
               e.Schedule.finish
               (String.concat "; "
                  (List.map Qgate.Gate.to_string i.Inst.gates))))
        i.Inst.qubits)
    s.Schedule.entries;
  (* time axis *)
  let axis_y = 20 + (n * lane_height) + 14 in
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333\">0 ns</text>\n" label_w axis_y);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%.1f ns</text>\n"
       (label_w + plot_w) axis_y makespan);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let write_json path s = write_string path (to_json s)
let write_svg ?width ?lane_height path s = write_string path (to_svg ?width ?lane_height s)
