module Pulse = Qcontrol.Pulse

(* read-only colour table *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
     "#b07aa1"; "#9c755f" |]
  [@@domain_safety frozen_after_init]

let to_svg ?(width = 860) ?(height = 360) ?(title = "control pulses") p =
  let margin_l = 60 and margin_r = 140 and margin_t = 30 and margin_b = 30 in
  let plot_w = width - margin_l - margin_r in
  let plot_h = height - margin_t - margin_b in
  let steps = Pulse.n_steps p in
  let duration = Float.max 1e-9 (Pulse.duration p) in
  let amp_max =
    Array.fold_left
      (fun acc label -> Float.max acc (Pulse.max_amplitude p label))
      1e-9 p.Pulse.labels
  in
  let x_of t =
    margin_l + int_of_float (float_of_int plot_w *. t /. duration)
  in
  let y_of a =
    margin_t + (plot_h / 2)
    - int_of_float (float_of_int plot_h /. 2. *. a /. (1.1 *. amp_max))
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"18\" fill=\"#333\">%s</text>\n" margin_l
       title);
  (* axes *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#999\"/>\n"
       margin_l (y_of 0.) (margin_l + plot_w) (y_of 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%+.3f GHz</text>\n"
       (margin_l - 4) (y_of amp_max + 4) amp_max);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%+.3f GHz</text>\n"
       (margin_l - 4) (y_of (-.amp_max) + 4) (-.amp_max));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#333\" text-anchor=\"end\">%.1f ns</text>\n"
       (margin_l + plot_w) (height - 8) duration);
  (* one step polyline per channel *)
  Array.iteri
    (fun ch label ->
      let color = palette.(ch mod Array.length palette) in
      let points = Buffer.create 512 in
      for step = 0 to steps - 1 do
        let t0 = p.Pulse.dt *. float_of_int step in
        let t1 = p.Pulse.dt *. float_of_int (step + 1) in
        let y = y_of p.Pulse.amps.(step).(ch) in
        Buffer.add_string points (Printf.sprintf "%d,%d %d,%d " (x_of t0) y (x_of t1) y)
      done;
      Buffer.add_string buf
        (Printf.sprintf
           "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n"
           (Buffer.contents points) color);
      (* legend *)
      let ly = margin_t + (ch * 16) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"10\" fill=\"%s\"/>\n"
           (width - margin_r + 10) ly color);
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%d\" y=\"%d\" fill=\"#333\">%s</text>\n"
           (width - margin_r + 26) (ly + 9) label))
    p.Pulse.labels;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg ?width ?height ?title path p =
  let oc = open_out path in
  output_string oc (to_svg ?width ?height ?title p);
  close_out oc
