module Gate = Qgate.Gate
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

let check_same_shape g g' =
  if Gate.name g <> Gate.name g' || Gate.qubits g <> Gate.qubits g' then
    invalid_arg
      "Partial.reparameterize: rebinding must preserve gate kind and qubits"

let reparameterize ?(config = Compiler.default_config) result f =
  let t0 = Sys.time () in
  let cost gates = Backend.block_cost config gates in
  let rebound =
    List.map
      (fun (i : Inst.t) ->
        let gates =
          List.map
            (fun g ->
              let g' = f g in
              check_same_shape g g';
              g')
            i.Inst.gates
        in
        Inst.make ~id:i.Inst.id ~latency:(cost gates) gates)
      (Gdg.insts result.Compiler.gdg)
  in
  let gdg =
    Gdg.of_insts ~n_qubits:(Gdg.n_qubits result.Compiler.gdg) rebound
  in
  let schedule = Qsched.Cls.schedule gdg in
  { result with
    Compiler.gdg;
    schedule;
    latency = schedule.Qsched.Schedule.makespan;
    n_instructions = Gdg.size gdg;
    compile_time = Sys.time () -. t0 }

let rebind_rotations ?config result ~gamma ~beta =
  reparameterize ?config result (fun g ->
      match g.Gate.kind with
      | Gate.Rz a ->
        { g with Gate.kind = Gate.Rz (Float.copy_sign gamma a) }
      | Gate.Rx a ->
        { g with Gate.kind = Gate.Rx (Float.copy_sign (2. *. beta) a) }
      | _ -> g)
