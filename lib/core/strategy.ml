type t = Isa | Cls | Aggregation | Cls_aggregation | Cls_hand

let all = [ Isa; Cls; Aggregation; Cls_aggregation; Cls_hand ]

let to_string = function
  | Isa -> "isa"
  | Cls -> "cls"
  | Aggregation -> "aggregation"
  | Cls_aggregation -> "cls+aggregation"
  | Cls_hand -> "cls+hand"

let of_string = function
  | "isa" -> Isa
  | "cls" -> Cls
  | "aggregation" | "agg" -> Aggregation
  | "cls+aggregation" | "cls+agg" | "cls_aggregation" | "cls_agg" ->
    Cls_aggregation
  | "cls+hand" | "hand" -> Cls_hand
  | s -> invalid_arg (Printf.sprintf "Strategy.of_string: unknown %S" s)

let pp ppf s = Format.pp_print_string ppf (to_string s)
