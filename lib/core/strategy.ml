type t = Isa | Cls | Aggregation | Cls_aggregation | Cls_hand

let all = [ Isa; Cls; Aggregation; Cls_aggregation; Cls_hand ]

let to_string = function
  | Isa -> "isa"
  | Cls -> "cls"
  | Aggregation -> "aggregation"
  | Cls_aggregation -> "cls+aggregation"
  | Cls_hand -> "cls+hand"

let names = List.map to_string all

let aliases =
  [ ("agg", Aggregation);
    ("cls+agg", Cls_aggregation);
    ("cls_aggregation", Cls_aggregation);
    ("cls_agg", Cls_aggregation);
    ("hand", Cls_hand) ]

let of_string s =
  match List.find_opt (fun x -> to_string x = s) all with
  | Some x -> x
  | None ->
    (match List.assoc_opt s aliases with
     | Some x -> x
     | None ->
       invalid_arg
         (Printf.sprintf "Strategy.of_string: unknown %S (expected %s)" s
            (String.concat " | " names)))

let pp ppf s = Format.pp_print_string ppf (to_string s)

let passes = function
  | Isa -> Stages.isa
  | Cls -> Stages.cls
  | Aggregation -> Stages.aggregation
  | Cls_aggregation -> Stages.cls_aggregation
  | Cls_hand -> Stages.cls_hand
