(** The compilation target, as one value.

    Bundles everything the pipeline needs to know about the machine it
    compiles for: the physical device (interaction type and control
    amplitudes), the qubit connectivity, and the aggregated-instruction
    width limit. Passes reach it through {!Pass.ctx}; alternative targets
    are alternative values of {!t}, not edits to the compiler.

    {!Compiler.config} is an alias of this record, so existing
    [{ Compiler.default_config with ... }] call sites keep working. *)

type t = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
      (** [None] selects a near-square grid sized to the circuit. *)
  width_limit : int;  (** maximum qubits per aggregated instruction *)
}

val default : t
(** Transmon XY device, auto grid, width limit 10 — the paper's setup. *)

val make :
  ?device:Qcontrol.Device.t ->
  ?topology:Qmap.Topology.t ->
  ?width_limit:int ->
  unit ->
  t

val topology_for : t -> Qgate.Circuit.t -> Qmap.Topology.t
(** The explicit topology, or a grid sized for the circuit. *)

val gate_cost : t -> Qgate.Gate.t -> float
(** Native latency of one gate on this device, ns. *)

val serial_cost : t -> Qgate.Gate.t list -> float
(** Critical-path latency of a block pulsed gate by gate (ISA mode). *)

val block_cost : t -> Qgate.Gate.t list -> float
(** Modeled latency of a block compiled as one aggregated pulse,
    respecting the width limit. *)

val fingerprint : t -> string
(** Content digest of the backend; part of every stage-cache key, so
    artifacts compiled for different targets can never be confused. *)
