(** Typed stage artifacts flowing through the pass manager.

    Each artifact records everything downstream passes may need, so a
    pass is a pure function from one artifact to the next and the driver
    ({!Pipeline}) never has to thread loose tuples around. Artifacts
    accumulate context as compilation proceeds: the lowered circuit rides
    along from [lowered] to [costed] (the end-to-end certifier needs it),
    merge counts survive scheduling and routing, and the route survives
    rebuilds.

    The GADT {!stage} names each artifact type at the value level; it is
    what lets {!Pass.packed} erase pass types for declarative pipelines
    while {!Pipeline.run} recovers them safely via {!equal_stage}. *)

module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

(** What routing established: where logical qubits started, where they
    ended up, and how many SWAPs the router paid. *)
type route_info = {
  initial : Qmap.Placement.t;
  final : Qmap.Placement.t;
  swaps : int;
}

(** Output of lowering. [base] is the circuit as lowered to the ISA and
    never changes afterwards (the topology default and the end-to-end
    certificate are derived from it); [circuit] is the current gate
    stream, which peephole passes ([handopt-pre]) may replace. *)
type lowered = { base : Circuit.t; circuit : Circuit.t }

(** The two program representations that flow into placement/routing: a
    plain gate stream, or a linearized instruction stream whose grouping
    must survive routing. *)
type program = Gates of Circuit.t | Insts of Inst.t list

(** A dependence graph (plus the contractions performed so far) —
    [route] is [Some] once the gates in the graph are physical. *)
type gdg_built = {
  l : lowered;
  gdg : Gdg.t;
  merges : int;
  route : route_info option;
}

type placed = {
  l : lowered;
  placement : Qmap.Placement.t;
  program : program;
  merges : int;
}

type routed = {
  l : lowered;
  route : route_info;
  rprogram : program;  (** the program, rewritten over device sites *)
  merges : int;
}

type scheduled = {
  l : lowered;
  gdg : Gdg.t;
  schedule : Qsched.Schedule.t;
  merges : int;
  route : route_info option;
}

type aggregated = {
  l : lowered;
  gdg : Gdg.t;
  merges : int;
  route : route_info;
}

(** The final artifact the driver returns: a routed, scheduled program
    with its headline cost. *)
type costed = {
  l : lowered;
  gdg : Gdg.t;
  schedule : Qsched.Schedule.t;
  latency : float;
  merges : int;
  route : route_info;
}

type _ stage =
  | Source : Circuit.t stage
  | Lowered : lowered stage
  | Gdg_built : gdg_built stage
  | Placed : placed stage
  | Routed : routed stage
  | Scheduled : scheduled stage
  | Aggregated : aggregated stage
  | Costed : costed stage

let stage_name : type a. a stage -> string = function
  | Source -> "source"
  | Lowered -> "lowered"
  | Gdg_built -> "gdg"
  | Placed -> "placed"
  | Routed -> "routed"
  | Scheduled -> "scheduled"
  | Aggregated -> "aggregated"
  | Costed -> "costed"

type (_, _) eq = Eq : ('a, 'a) eq

let equal_stage : type a b. a stage -> b stage -> (a, b) eq option =
 fun x y ->
  match (x, y) with
  | Source, Source -> Some Eq
  | Lowered, Lowered -> Some Eq
  | Gdg_built, Gdg_built -> Some Eq
  | Placed, Placed -> Some Eq
  | Routed, Routed -> Some Eq
  | Scheduled, Scheduled -> Some Eq
  | Aggregated, Aggregated -> Some Eq
  | Costed, Costed -> Some Eq
  | _ -> None

(** Deep-copy the mutable parts of an artifact. Circuits, instructions,
    placements-as-used and schedules are immutable; only the GDG is
    updated in place (by [detect] and [aggregate]), so only GDG-carrying
    artifacts copy anything. The stage cache relies on this to hand a
    private graph to in-place passes whose input is cache-resident. *)
let clone : type a. a stage -> a -> a =
 fun stage v ->
  match stage with
  | Gdg_built ->
    let (r : gdg_built) = v in
    { r with gdg = Gdg.copy r.gdg }
  | Aggregated ->
    let (r : aggregated) = v in
    { r with gdg = Gdg.copy r.gdg }
  | Scheduled ->
    let (r : scheduled) = v in
    { r with gdg = Gdg.copy r.gdg }
  | Costed ->
    let (r : costed) = v in
    { r with gdg = Gdg.copy r.gdg }
  | Source | Lowered | Placed | Routed -> v
