exception
  Stage_mismatch of { pass : string; expected : string; got : string }

(* module-init registration, never re-run: Printexc's printer list is
   only extended here before any domain can spawn *)
let () =
  Printexc.register_printer (function
    | Stage_mismatch { pass; expected; got } ->
      Some
        (Printf.sprintf
           "Pipeline.Stage_mismatch: pass %S expects a %s artifact, got %s"
           pass expected got)
    | _ -> None)
  [@@domain_safety frozen_after_init]

module Cache = struct
  type entry = E : 'a Ir.stage * 'a -> entry

  type state = {
    tbl : (string, entry) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  (* Mutex-guarded (Qobs.Domain_safe.Guarded) rather than per-domain: a
     cache exists to SHARE artifacts across compiles, including compiles
     running on different domains. The lock is held only around table
     lookups/inserts and counter bumps, never while a pass runs. *)
  type t = state Qobs.Domain_safe.Guarded.t

  let create () =
    Qobs.Domain_safe.Guarded.make { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

  let hits t = Qobs.Domain_safe.Guarded.with_ t (fun s -> s.hits)
  let misses t = Qobs.Domain_safe.Guarded.with_ t (fun s -> s.misses)
  let length t = Qobs.Domain_safe.Guarded.with_ t (fun s -> Hashtbl.length s.tbl)

  let clear t =
    Qobs.Domain_safe.Guarded.with_ t (fun s ->
        Hashtbl.reset s.tbl;
        s.hits <- 0;
        s.misses <- 0)

  let find t k = Qobs.Domain_safe.Guarded.with_ t (fun s -> Hashtbl.find_opt s.tbl k)
  let add t k e = Qobs.Domain_safe.Guarded.with_ t (fun s -> Hashtbl.replace s.tbl k e)
  let note_hit t = Qobs.Domain_safe.Guarded.with_ t (fun s -> s.hits <- s.hits + 1)
  let note_miss t = Qobs.Domain_safe.Guarded.with_ t (fun s -> s.misses <- s.misses + 1)
end

(* Keys chain provenance: the root digests the backend and the source
   circuit (both plain data), and each pass extends the chain with its
   fingerprint. Two strategies that share a prefix of passes therefore
   share exactly that prefix of keys — and nothing past the first
   divergence. *)
let root_key backend source =
  Digest.string (Backend.fingerprint backend ^ Marshal.to_string source [])

let chain key fingerprint = Digest.string (key ^ "\x00" ^ fingerprint)

let validate (passes : Pass.packed list) =
  let rec go : type a. a Ir.stage -> Pass.packed list -> unit =
   fun prev -> function
    | [] -> ()
    | Pass.P p :: rest ->
      (match Ir.equal_stage prev p.Pass.inp with
       | Some Ir.Eq -> ()
       | None ->
         raise
           (Stage_mismatch
              { pass = p.Pass.name;
                expected = Ir.stage_name p.Pass.inp;
                got = Ir.stage_name prev }));
      go p.Pass.out rest
  in
  go Ir.Source passes

(* One pass: cache lookup / span / run, then the hooks in seed order
   (note inside the span, note_after on the parent, lint checkpoint,
   certification). Hooks always run — a cache hit skips only the work,
   so diagnostics, certificates and span structure are identical with
   and without sharing. *)
let exec :
    type a b. Pass.ctx -> Cache.t option -> string option -> (a, b) Pass.t ->
    a -> b =
 fun ctx cache key p a ->
  let lookup () : b option =
    match (cache, key) with
    | Some c, Some k ->
      (match Cache.find c k with
       | Some (Cache.E (st, v)) ->
         (match Ir.equal_stage st p.Pass.out with
          | Some Ir.Eq -> Some v
          | None -> None)
       | None -> None)
    | _ -> None
  in
  let produce () =
    match lookup () with
    | Some b ->
      (match cache with
       | Some c -> Cache.note_hit c
       | None -> ());
      Qobs.Metrics.incr ctx.Pass.metrics "pipeline.cache.hit";
      Pass.with_span ctx p.Pass.name (fun () ->
          Qobs.Trace.attr_str ctx.Pass.obs "cache" "hit";
          (match p.Pass.note with Some f -> f ctx a b | None -> ());
          b)
    | None ->
      (match cache with
       | Some c ->
         Cache.note_miss c;
         Qobs.Metrics.incr ctx.Pass.metrics "pipeline.cache.miss"
       | None -> ());
      (* never mutate a cache-resident artifact: in-place passes get a
         private copy of the graph when sharing is on *)
      let a = if p.Pass.mutates && cache <> None then Ir.clone p.Pass.inp a
        else a
      in
      let b =
        Pass.with_span ctx p.Pass.name (fun () ->
            let b = p.Pass.run ctx a in
            (match p.Pass.note with Some f -> f ctx a b | None -> ());
            b)
      in
      (match (cache, key) with
       | Some c, Some k -> Cache.add c k (Cache.E (p.Pass.out, b))
       | _ -> ());
      b
  in
  let hooked b =
    (match p.Pass.note_after with Some f -> f ctx a b | None -> ());
    (match (p.Pass.check, ctx.Pass.lint) with
     | Some f, Some acc ->
       let diags = f ctx a b in
       acc := List.rev_append diags !acc;
       if List.exists Qlint.Diagnostic.is_error diags then
         raise
           (Qlint.Report.Check_failed (Qlint.Report.of_list (List.rev !acc)))
     | _ -> ());
    b
  in
  match (p.Pass.certify, ctx.Pass.cert) with
  | Some (Pass.Cert_pre (snap, post)), Some c ->
    let s = snap a in
    let b = hooked (produce ()) in
    post ctx c s b;
    b
  | Some (Pass.Cert f), Some c ->
    let b = hooked (produce ()) in
    f ctx c a b;
    b
  | _ -> hooked (produce ())

type boxed = B : 'a Ir.stage * 'a -> boxed

let run ~ctx ?cache passes source =
  let key0 =
    match cache with
    | Some _ -> Some (root_key ctx.Pass.backend source)
    | None -> None
  in
  let step acc packed =
    match (acc, packed) with
    | (B (st, v), key), Pass.P p ->
      (match Ir.equal_stage st p.Pass.inp with
       | None ->
         raise
           (Stage_mismatch
              { pass = p.Pass.name;
                expected = Ir.stage_name p.Pass.inp;
                got = Ir.stage_name st })
       | Some Ir.Eq ->
         let key = Option.map (fun k -> chain k p.Pass.fingerprint) key in
         let b = exec ctx cache key p v in
         (B (p.Pass.out, b), key))
  in
  let final, _ = List.fold_left step (B (Ir.Source, source), key0) passes in
  match final with
  | B (Ir.Scheduled, (s : Ir.scheduled)) ->
    let route =
      match s.route with
      | Some r -> r
      | None -> invalid_arg "Pipeline.run: final schedule is not routed"
    in
    { Ir.l = s.l;
      gdg = s.gdg;
      schedule = s.schedule;
      latency = s.schedule.Qsched.Schedule.makespan;
      merges = s.merges;
      route }
  | B (st, _) ->
    raise
      (Stage_mismatch
         { pass = "<end>"; expected = "scheduled"; got = Ir.stage_name st })
