exception
  Stage_mismatch of { pass : string; expected : string; got : string }

(* module-init registration, never re-run: Printexc's printer list is
   only extended here before any domain can spawn *)
let () =
  Printexc.register_printer (function
    | Stage_mismatch { pass; expected; got } ->
      Some
        (Printf.sprintf
           "Pipeline.Stage_mismatch: pass %S expects a %s artifact, got %s"
           pass expected got)
    | _ -> None)
  [@@domain_safety frozen_after_init]

module Cache = struct
  module Monitor = Qobs.Domain_safe.Monitor

  type entry = E : 'a Ir.stage * 'a -> entry

  (* a slot is either a landed artifact or an in-flight claim: the
     first prober to miss a key marks it [Pending] and computes; later
     probers park on the monitor instead of duplicating the work, so
     each distinct artifact is computed exactly once no matter how many
     domains race on the same key *)
  type slot =
    | Ready of entry
    | Pending

  type state = {
    tbl : (string, slot) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  (* Monitor-guarded (mutex + condition) rather than per-domain: a
     cache exists to SHARE artifacts across compiles, including compiles
     running on different domains. The lock is held only around table
     lookups/inserts and counter bumps — or parked in [Monitor.wait],
     which releases it — never while a pass runs. *)
  type t = state Qobs.Domain_safe.Monitor.t

  let create () =
    Monitor.make { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

  let hits t = Monitor.with_ t (fun s -> s.hits)
  let misses t = Monitor.with_ t (fun s -> s.misses)

  let length t =
    Monitor.with_ t (fun s ->
        Hashtbl.fold
          (fun _ slot acc ->
            match slot with Ready _ -> acc + 1 | Pending -> acc)
          s.tbl 0)

  (* not safe against compiles in flight on other domains: a parked
     waiter is woken (and will recompute), but a claim fulfilled after
     the reset re-lands its artifact. For tests and between runs. *)
  let clear t =
    Monitor.with_ t (fun s ->
        Hashtbl.reset s.tbl;
        s.hits <- 0;
        s.misses <- 0);
    Monitor.broadcast t

  (* The one atomic probe: the lookup and the matching counter bump
     happen in a single critical section, so [hits + misses] always
     equals the number of probes — the separate find/note_hit/note_miss
     trio this replaces was a check-then-act race that let the counters
     drift from the lookups they were supposed to describe under
     domains. [None] means the caller now HOLDS the [Pending] claim for
     [k] and must either {!fulfil} or {!cancel} it; [Some e] after a
     park still counts as one hit (the artifact was shared, just not
     yet landed when we probed). *)
  let find_or_note t k =
    Monitor.with_ t (fun s ->
        let rec go () =
          match Hashtbl.find_opt s.tbl k with
          | Some (Ready e) ->
            s.hits <- s.hits + 1;
            Some e
          | Some Pending ->
            Monitor.wait t;
            go ()
          | None ->
            s.misses <- s.misses + 1;
            Hashtbl.replace s.tbl k Pending;
            None
        in
        go ())

  let fulfil t k e =
    Monitor.with_ t (fun s -> Hashtbl.replace s.tbl k (Ready e));
    Monitor.broadcast t

  (* release a claim whose compute raised, waking parked waiters so one
     of them re-probes, misses and becomes the new computer *)
  let cancel t k =
    Monitor.with_ t (fun s ->
        match Hashtbl.find_opt s.tbl k with
        | Some Pending -> Hashtbl.remove s.tbl k
        | Some (Ready _) | None -> ());
    Monitor.broadcast t
end

(* Keys chain provenance: the root digests the backend and the source
   circuit (both plain data), and each pass extends the chain with its
   fingerprint. Two strategies that share a prefix of passes therefore
   share exactly that prefix of keys — and nothing past the first
   divergence.

   The source bytes must be canonical. Marshal is sharing-sensitive:
   two structurally equal circuits built by different code paths (one
   sharing a gate value, one rebuilding it) marshal to different bytes,
   silently splitting the cache — and the bytes are not stable across
   runs. Digest the canonical QASM serialization instead: it depends
   only on circuit structure. *)
let root_key backend source =
  Digest.string
    (Backend.fingerprint backend ^ "\x00" ^ Qgate.Qasm.to_string source)

let chain key fingerprint = Digest.string (key ^ "\x00" ^ fingerprint)

let validate (passes : Pass.packed list) =
  let rec go : type a. a Ir.stage -> Pass.packed list -> unit =
   fun prev -> function
    | [] -> ()
    | Pass.P p :: rest ->
      (match Ir.equal_stage prev p.Pass.inp with
       | Some Ir.Eq -> ()
       | None ->
         raise
           (Stage_mismatch
              { pass = p.Pass.name;
                expected = Ir.stage_name p.Pass.inp;
                got = Ir.stage_name prev }));
      go p.Pass.out rest
  in
  go Ir.Source passes

(* One pass: cache lookup / span / run, then the hooks in seed order
   (note inside the span, note_after on the parent, lint checkpoint,
   certification). Hooks always run — a cache hit skips only the work,
   so diagnostics, certificates and span structure are identical with
   and without sharing. *)
let exec :
    type a b. Pass.ctx -> Cache.t option -> string option -> (a, b) Pass.t ->
    a -> b =
 fun ctx cache key p a ->
  let compute () : b =
    (* never mutate a cache-resident artifact: in-place passes get a
       private copy of the graph when sharing is on *)
    let a = if p.Pass.mutates && cache <> None then Ir.clone p.Pass.inp a
      else a
    in
    Pass.with_span ctx p.Pass.name (fun () ->
        let b = p.Pass.run ctx a in
        (match p.Pass.note with Some f -> f ctx a b | None -> ());
        b)
  in
  let hit (b : b) : b =
    Qobs.Metrics.incr ctx.Pass.metrics "pipeline.cache.hit";
    Pass.with_span ctx p.Pass.name (fun () ->
        Qobs.Trace.attr_str ctx.Pass.obs "cache" "hit";
        (match p.Pass.note with Some f -> f ctx a b | None -> ());
        b)
  in
  let produce () =
    match (cache, key) with
    | None, _ | _, None -> compute ()
    | Some c, Some k ->
      (match Cache.find_or_note c k with
       | Some (Cache.E (st, v)) ->
         (match Ir.equal_stage st p.Pass.out with
          | Some Ir.Eq -> hit v
          | None ->
            (* a wrong-stage artifact under a provenance-chained key is
               impossible short of a fingerprint collision; recompute
               and land the corrected entry (counted as the hit the
               probe recorded) *)
            Qobs.Metrics.incr ctx.Pass.metrics "pipeline.cache.hit";
            let b = compute () in
            Cache.fulfil c k (Cache.E (p.Pass.out, b));
            b)
       | None ->
         (* we hold the Pending claim: fulfil on success, cancel on
            failure so parked waiters never deadlock *)
         Qobs.Metrics.incr ctx.Pass.metrics "pipeline.cache.miss";
         (match compute () with
          | b ->
            Cache.fulfil c k (Cache.E (p.Pass.out, b));
            b
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Cache.cancel c k;
            Printexc.raise_with_backtrace e bt))
  in
  let hooked b =
    (match p.Pass.note_after with Some f -> f ctx a b | None -> ());
    (match (p.Pass.check, ctx.Pass.lint) with
     | Some f, Some acc ->
       let diags = f ctx a b in
       acc := List.rev_append diags !acc;
       if List.exists Qlint.Diagnostic.is_error diags then
         raise
           (Qlint.Report.Check_failed (Qlint.Report.of_list (List.rev !acc)))
     | _ -> ());
    b
  in
  match (p.Pass.certify, ctx.Pass.cert) with
  | Some (Pass.Cert_pre (snap, post)), Some c ->
    let s = snap a in
    let b = hooked (produce ()) in
    post ctx c s b;
    b
  | Some (Pass.Cert f), Some c ->
    let b = hooked (produce ()) in
    f ctx c a b;
    b
  | _ -> hooked (produce ())

type boxed = B : 'a Ir.stage * 'a -> boxed

let run ~ctx ?cache passes source =
  let key0 =
    match cache with
    | Some _ -> Some (root_key ctx.Pass.backend source)
    | None -> None
  in
  let step acc packed =
    match (acc, packed) with
    | (B (st, v), key), Pass.P p ->
      (match Ir.equal_stage st p.Pass.inp with
       | None ->
         raise
           (Stage_mismatch
              { pass = p.Pass.name;
                expected = Ir.stage_name p.Pass.inp;
                got = Ir.stage_name st })
       | Some Ir.Eq ->
         let key = Option.map (fun k -> chain k p.Pass.fingerprint) key in
         let b = exec ctx cache key p v in
         (B (p.Pass.out, b), key))
  in
  let final, _ = List.fold_left step (B (Ir.Source, source), key0) passes in
  match final with
  | B (Ir.Scheduled, (s : Ir.scheduled)) ->
    let route =
      match s.route with
      | Some r -> r
      | None -> invalid_arg "Pipeline.run: final schedule is not routed"
    in
    { Ir.l = s.l;
      gdg = s.gdg;
      schedule = s.schedule;
      latency = s.schedule.Qsched.Schedule.makespan;
      merges = s.merges;
      route }
  | B (st, _) ->
    raise
      (Stage_mismatch
         { pass = "<end>"; expected = "scheduled"; got = Ir.stage_name st })
