(** Fixed-size domain-pool executor for the parallel compile drivers.

    The determinism contract: results are slotted by job index, so
    [map ~jobs:n f arr] returns byte-for-byte what [map ~jobs:1 f arr]
    returns, for any [n] — provided [f] is deterministic per job and
    any state it shares across jobs is merge-order-independent (the
    compute-once {!Pipeline.Cache}, index-order-merged
    {!Qobs.Metrics} shards, the mutex-guarded {!Qobs.Ledger}). Only
    scheduling — which worker runs which job, and when — varies with
    the pool size. *)

val map :
  ?jobs:int -> ?init:(unit -> unit) -> (int -> 'a -> 'b) -> 'a array ->
  'b array
(** [map ~jobs ~init f arr] computes [|f 0 arr.(0); f 1 arr.(1); ...|]
    on a pool of [min jobs (Array.length arr)] fresh domains that pull
    job indices from a shared atomic counter.

    [jobs <= 1] (the default) runs on the calling domain — same code
    path a pooled worker executes, including the [init] call, so it is
    the sequential reference the pooled runs are byte-identical to.

    [init] (default: nothing) runs once per worker domain before its
    first job — the drivers pass [Compiler.reset_all_memos] so every
    worker starts from the same cold per-domain memo state.

    If [f] (or [init]) raises on any worker, every domain is still
    joined — no orphans — and then the recorded exception with the
    {e lowest} job index is re-raised on the calling domain with its
    original backtrace. Workers stop pulling new jobs once a failure
    is recorded, but jobs already in flight run to completion. *)
