(** Compilation strategies compared in the paper's evaluation (Fig. 9).

    A strategy is a declarative pass sequence over the {!Stages} catalog
    ({!passes}); {!Pipeline.run} interprets it. *)

type t =
  | Isa  (** gate-based baseline: decompose, route, ASAP-schedule *)
  | Cls  (** commutativity detection + CLS, gates still pulsed one by one *)
  | Aggregation  (** instruction aggregation without CLS *)
  | Cls_aggregation  (** the paper's full pipeline *)
  | Cls_hand  (** CLS + mechanical hand optimization ([39, 48]) *)

val all : t list

val names : string list
(** Canonical names, in {!all} order — the single source for CLI help. *)

val aliases : (string * t) list
(** Accepted shorthands ([agg], [cls_agg], [hand], …). *)

val to_string : t -> string

val of_string : string -> t
(** Accepts canonical names and {!aliases}. Raises [Invalid_argument]
    listing the valid names otherwise. *)

val pp : Format.formatter -> t -> unit

val passes : t -> Pass.packed list
(** The strategy as a pass sequence. *)
