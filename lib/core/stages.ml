(** The pass catalog: every transformation the five strategies compose.

    Each entry bundles the work with its span, lint check and
    certification boundary exactly where the hand-written pipelines had
    them; {!Strategy.passes} picks sequences from this catalog and
    {!Pipeline.run} interprets them. Behavioral variants of a pass
    (serial vs. modeled cost, gate vs. instruction input) are distinct
    catalog entries with distinct fingerprints so the stage cache never
    conflates them, while sharing the span name the paper's terminology
    uses. *)

module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

(* ---- cost models, resolved against the backend in the context ---- *)

type cost = Serial | Model

let cost_tag = function Serial -> "serial" | Model -> "model"

let cost_fn cost ctx gates =
  match cost with
  | Serial -> Backend.serial_cost ctx.Pass.backend gates
  | Model -> Backend.block_cost ctx.Pass.backend gates

let topology ctx (l : Ir.lowered) = Backend.topology_for ctx.Pass.backend l.base

let flatten_insts insts =
  List.concat_map (fun (i : Inst.t) -> i.Inst.gates) insts

let flat_circuit ~n_sites = function
  | Ir.Gates c -> c
  | Ir.Insts insts -> Circuit.make n_sites (flatten_insts insts)

let count_swaps c = Circuit.count (fun g -> g.Gate.kind = Gate.Swap) c

(* ---- lint boundaries (pure producers; Pipeline checkpoints them) ---- *)

let logical_schedule_diags gdg schedule =
  let groups = Qgdg.Comm_group.build gdg in
  Qlint.Check_schedule.run ~stage:"cls" ~original:gdg
    ~reorderable:(Qgdg.Comm_group.reorderable groups)
    schedule

(* the routing boundary for instruction streams: placement consistency,
   site adjacency, and a full replay of the router's contract *)
let routed_insts_diags ~topology ~initial ~final ~logical ~routed =
  let gates insts = List.concat_map (fun (i : Inst.t) -> i.Inst.gates) insts in
  Qlint.Check_mapping.run ~stage:"route" ~topology ~initial ~final routed
  @ Qlint.Check_mapping.check_routing ~stage:"route" ~topology ~initial ~final
      ~logical:(gates logical) ~physical:(gates routed) ()

(* same boundary when the router ran over a plain gate stream *)
let routed_circuit_diags ~topology ~initial ~final ~logical ~physical =
  Qlint.Check_mapping.check_placement ~stage:"route" ~label:"initial placement"
    ~topology initial
  @ Qlint.Check_mapping.check_placement ~stage:"route"
      ~label:"final placement" ~topology final
  @ Qlint.Check_mapping.check_adjacency_circuit ~stage:"route" ~topology
      physical
  @ Qlint.Check_mapping.check_routing ~stage:"route" ~topology ~initial ~final
      ~logical:(Circuit.gates logical) ~physical:(Circuit.gates physical) ()

let aggregate_diags ~width_limit gdg =
  (* diagonal detection may build 2-qubit blocks below any limit *)
  Qlint.Check_agg.run ~stage:"aggregate" ~width_limit:(max width_limit 2) gdg
  @ Qlint.Check_gdg.run ~stage:"aggregate" gdg

(* the last boundary re-checks everything the earlier passes could have
   invalidated: graph structure, block policy, site adjacency and the
   final schedule's legality modulo declared commutations *)
let final_diags ctx (b : Ir.scheduled) =
  let topology = topology ctx b.l in
  let groups = Qgdg.Comm_group.build b.gdg in
  Qlint.Check_gdg.run ~stage:"schedule" b.gdg
  @ Qlint.Check_agg.run ~stage:"schedule"
      ~width_limit:(max ctx.Pass.backend.Backend.width_limit 2)
      b.gdg
  @ Qlint.Check_mapping.check_adjacency ~stage:"schedule" ~topology
      (Gdg.insts b.gdg)
  @ Qlint.Check_schedule.run ~stage:"schedule" ~original:b.gdg
      ~reorderable:(Qgdg.Comm_group.reorderable groups)
      b.schedule

(* ---- the passes ---- *)

let lower =
  Pass.P
    (Pass.make ~name:"lower" ~fingerprint:"lower" ~inp:Ir.Source
       ~out:Ir.Lowered
       ~note_after:(fun ctx _ (b : Ir.lowered) ->
         if Pass.observing ctx then begin
           Qobs.Trace.attr_int ctx.obs "qubits" (Circuit.n_qubits b.circuit);
           Qobs.Trace.attr_int ctx.obs "gates" (Circuit.n_gates b.circuit);
           Qobs.Metrics.incr ctx.metrics ~by:(Circuit.n_gates b.circuit)
             "lower.gates"
         end)
       ~check:(fun _ _ (b : Ir.lowered) ->
         Qlint.Check_circuit.run ~stage:"lower" b.circuit)
       ~certify:
         (Pass.Cert
            (fun _ c src (b : Ir.lowered) ->
              Qcert.Pipeline.lower c ~src ~dst:b.circuit))
       (fun _ src ->
         let base = Qgate.Decompose.to_isa src in
         { Ir.base; circuit = base }))

let handopt_pre =
  Pass.P
    (Pass.make ~name:"handopt-pre" ~fingerprint:"handopt-pre" ~inp:Ir.Lowered
       ~out:Ir.Lowered
       ~check:(fun _ _ (b : Ir.lowered) ->
         Qlint.Check_circuit.run ~stage:"handopt" b.circuit)
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.lowered) (b : Ir.lowered) ->
              Qcert.Pipeline.handopt c ~name:"handopt-pre" ~src:a.circuit
                ~dst:b.circuit))
       (fun _ (a : Ir.lowered) ->
         { a with circuit = Handopt.optimize a.circuit }))

(* [lint] controls whether the structural check runs here or later: the
   strategies that contract the graph right after building it check once
   after [detect] instead *)
let gdg_of_lowered ~cost ~lint =
  Pass.P
    (Pass.make ~name:"gdg"
       ~fingerprint:("gdg@lowered:" ^ cost_tag cost)
       ~inp:Ir.Lowered ~out:Ir.Gdg_built
       ~note:(fun ctx _ (b : Ir.gdg_built) -> Pass.note_gdg ctx b.gdg)
       ?check:
         (if lint then
            Some
              (fun _ _ (b : Ir.gdg_built) ->
                Qlint.Check_gdg.run ~stage:"gdg" b.gdg)
          else None)
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.lowered) (b : Ir.gdg_built) ->
              Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit:a.circuit
                ~gdg:b.gdg))
       (fun ctx (a : Ir.lowered) ->
         { Ir.l = a;
           gdg = Gdg.of_circuit ~latency:(cost_fn cost ctx) a.circuit;
           merges = 0;
           route = None }))

let gdg_of_routed ~cost ~lint =
  Pass.P
    (Pass.make ~name:"gdg"
       ~fingerprint:("gdg@routed:" ^ cost_tag cost)
       ~inp:Ir.Routed ~out:Ir.Gdg_built
       ~note:(fun ctx _ (b : Ir.gdg_built) -> Pass.note_gdg ctx b.gdg)
       ?check:
         (if lint then
            Some
              (fun _ _ (b : Ir.gdg_built) ->
                Qlint.Check_gdg.run ~stage:"gdg" b.gdg)
          else None)
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.routed) (b : Ir.gdg_built) ->
              match a.rprogram with
              | Ir.Gates physical ->
                Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit:physical
                  ~gdg:b.gdg
              | Ir.Insts _ -> assert false))
       (fun ctx (a : Ir.routed) ->
         match a.rprogram with
         | Ir.Gates physical ->
           { Ir.l = a.l;
             gdg = Gdg.of_circuit ~latency:(cost_fn cost ctx) physical;
             merges = a.merges;
             route = Some a.route }
         | Ir.Insts _ -> invalid_arg "Stages.gdg_of_routed: instruction input"))

(* Diagonal-block contraction on the commutation oracle's windowed
   scanner: every detection query ticks [detect.checks] plus exactly one
   [detect.route.*] counter (structural / memo / phase_poly / dense /
   oversize, with a matching [.ms] histogram), mirroring the
   [commute.route.*] attribution — [qcc stats] aggregates both and
   checks the partition. *)
let detect ~cost =
  Pass.P
    (Pass.make ~name:"detect"
       ~fingerprint:("detect:" ^ cost_tag cost)
       ~inp:Ir.Gdg_built ~out:Ir.Gdg_built ~mutates:true
       ~note:(fun ctx (a : Ir.gdg_built) (b : Ir.gdg_built) ->
         Pass.note_int ctx "contractions" (b.merges - a.merges))
       ~check:(fun _ _ (b : Ir.gdg_built) ->
         Qlint.Check_gdg.run ~stage:"gdg" b.gdg)
       ~certify:
         (Pass.Cert_pre
            ( (fun (a : Ir.gdg_built) -> Gdg.insts a.gdg),
              fun _ c before (b : Ir.gdg_built) ->
                Qcert.Pipeline.contraction c ~before ~gdg:b.gdg ))
       (fun ctx (a : Ir.gdg_built) ->
         let n =
           Qgdg.Diagonal.detect_and_contract ~latency:(cost_fn cost ctx) a.gdg
         in
         { a with merges = a.merges + n }))

let cls_schedule =
  Pass.P
    (Pass.make ~name:"cls" ~fingerprint:"cls" ~inp:Ir.Gdg_built
       ~out:Ir.Scheduled
       ~check:(fun _ _ (b : Ir.scheduled) ->
         logical_schedule_diags b.gdg b.schedule)
       ~certify:
         (Pass.Cert
            (fun _ c _ (b : Ir.scheduled) ->
              Qcert.Pipeline.schedule c ~name:"cls" ~gdg:b.gdg b.schedule))
       (fun _ (a : Ir.gdg_built) ->
         { Ir.l = a.l;
           gdg = a.gdg;
           schedule = Qsched.Cls.schedule a.gdg;
           merges = a.merges;
           route = a.route }))

let place_of_lowered =
  Pass.P
    (Pass.make ~name:"place" ~fingerprint:"place@lowered" ~inp:Ir.Lowered
       ~out:Ir.Placed
       (fun ctx (a : Ir.lowered) ->
         { Ir.l = a;
           placement = Qmap.Placement.initial (topology ctx a) a.circuit;
           program = Ir.Gates a.circuit;
           merges = 0 }))

let place_of_scheduled =
  Pass.P
    (Pass.make ~name:"place" ~fingerprint:"place@scheduled" ~inp:Ir.Scheduled
       ~out:Ir.Placed
       (fun ctx (a : Ir.scheduled) ->
         { Ir.l = a.l;
           placement = Qmap.Placement.initial (topology ctx a.l) a.l.circuit;
           program = Ir.Insts (Qsched.Schedule.linearize a.schedule);
           merges = a.merges }))

(* relabel instructions to fresh consecutive ids (after routing mixes
   logical instructions with inserted swaps) *)
let renumber insts =
  List.mapi
    (fun id (i : Inst.t) -> Inst.make ~id ~latency:i.Inst.latency i.Inst.gates)
    insts

let route_insts ctx ~topology ~placement insts =
  let swap_latency = Backend.gate_cost ctx.Pass.backend (Gate.swap 0 1) in
  let swap_counter = ref 0 in
  let routed, final =
    Qmap.Router.route ~topology ~placement
      ~support:(fun (i : Inst.t) -> i.Inst.qubits)
      ~remap:(fun f (i : Inst.t) ->
        Inst.make ~id:i.Inst.id ~latency:i.Inst.latency
          (List.map (Gate.map_qubits f) i.Inst.gates))
      ~make_swap:(fun a b ->
        incr swap_counter;
        Inst.make ~id:(-1) ~latency:swap_latency [ Gate.swap a b ])
      insts
  in
  (renumber routed, !swap_counter, final)

let route =
  Pass.P
    (Pass.make ~name:"route" ~fingerprint:"route" ~inp:Ir.Placed ~out:Ir.Routed
       ~note:(fun ctx (a : Ir.placed) (b : Ir.routed) ->
         match a.program with
         | Ir.Insts _ -> Pass.note_int ctx "swaps" b.route.swaps
         | Ir.Gates _ -> ())
       ~check:(fun ctx (a : Ir.placed) (b : Ir.routed) ->
         let topology = topology ctx a.l in
         let initial = b.route.initial and final = b.route.final in
         match (a.program, b.rprogram) with
         | Ir.Gates logical, Ir.Gates physical ->
           routed_circuit_diags ~topology ~initial ~final ~logical ~physical
         | Ir.Insts logical, Ir.Insts routed ->
           routed_insts_diags ~topology ~initial ~final ~logical ~routed
         | _ -> assert false)
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.placed) (b : Ir.routed) ->
              match (a.program, b.rprogram) with
              | Ir.Gates logical, Ir.Gates physical ->
                Qcert.Pipeline.route_circuit c ~initial:b.route.initial
                  ~final:b.route.final ~logical ~physical
              | Ir.Insts logical, Ir.Insts routed ->
                Qcert.Pipeline.route_insts c ~initial:b.route.initial
                  ~final:b.route.final ~logical ~routed
              | _ -> assert false))
       (fun ctx (a : Ir.placed) ->
         let topology = topology ctx a.l in
         match a.program with
         | Ir.Gates c ->
           let physical, final =
             Qmap.Router.route_circuit ~placement:a.placement ~topology c
           in
           let swaps = count_swaps physical - count_swaps a.l.circuit in
           { Ir.l = a.l;
             route = { Ir.initial = a.placement; final; swaps };
             rprogram = Ir.Gates physical;
             merges = a.merges }
         | Ir.Insts insts ->
           let routed, swaps, final =
             route_insts ctx ~topology ~placement:a.placement insts
           in
           { Ir.l = a.l;
             route = { Ir.initial = a.placement; final; swaps };
             rprogram = Ir.Insts routed;
             merges = a.merges }))

(* a second peephole pass over the routed stream (swaps enable new
   cancellations) *)
let handopt_post =
  Pass.P
    (Pass.make ~name:"handopt-post" ~fingerprint:"handopt-post" ~inp:Ir.Routed
       ~out:Ir.Routed
       ~check:(fun _ _ (b : Ir.routed) ->
         match b.rprogram with
         | Ir.Gates c -> Qlint.Check_circuit.run ~stage:"handopt" c
         | Ir.Insts _ -> assert false)
       ~certify:
         (Pass.Cert
            (fun ctx c (a : Ir.routed) (b : Ir.routed) ->
              let n_sites =
                Qmap.Topology.n_sites (topology ctx a.l)
              in
              let src = flat_circuit ~n_sites a.rprogram in
              match b.rprogram with
              | Ir.Gates dst ->
                Qcert.Pipeline.handopt c ~name:"handopt-post" ~src ~dst
              | Ir.Insts _ -> assert false))
       (fun ctx (a : Ir.routed) ->
         let n_sites = Qmap.Topology.n_sites (topology ctx a.l) in
         let flat = flat_circuit ~n_sites a.rprogram in
         { a with rprogram = Ir.Gates (Handopt.optimize flat) }))

(* expand blocks back to gates so the final schedule recovers gate-level
   overlap; the commutativity gain is already baked into the routed
   order *)
let rebuild_serial =
  Pass.P
    (Pass.make ~name:"rebuild" ~fingerprint:"rebuild:serial" ~inp:Ir.Routed
       ~out:Ir.Gdg_built
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.routed) (b : Ir.gdg_built) ->
              let src =
                match a.rprogram with
                | Ir.Gates cct -> Circuit.gates cct
                | Ir.Insts insts -> flatten_insts insts
              in
              Qcert.Pipeline.rebuild c ~src ~gdg:b.gdg))
       (fun ctx (a : Ir.routed) ->
         let n_sites = Qmap.Topology.n_sites (topology ctx a.l) in
         let flat = flat_circuit ~n_sites a.rprogram in
         { Ir.l = a.l;
           gdg = Gdg.of_circuit ~latency:(cost_fn Serial ctx) flat;
           merges = a.merges;
           route = Some a.route }))

(* keep the routed blocks as instructions — aggregation continues from
   the grouping routing preserved *)
let rebuild_insts =
  Pass.P
    (Pass.make ~name:"rebuild" ~fingerprint:"rebuild:insts" ~inp:Ir.Routed
       ~out:Ir.Gdg_built
       ~certify:
         (Pass.Cert
            (fun _ c (a : Ir.routed) (b : Ir.gdg_built) ->
              let src =
                match a.rprogram with
                | Ir.Gates cct -> Circuit.gates cct
                | Ir.Insts insts -> flatten_insts insts
              in
              Qcert.Pipeline.rebuild c ~src ~gdg:b.gdg))
       (fun ctx (a : Ir.routed) ->
         match a.rprogram with
         | Ir.Insts insts ->
           let n_sites = Qmap.Topology.n_sites (topology ctx a.l) in
           { Ir.l = a.l;
             gdg = Gdg.of_insts ~n_qubits:n_sites insts;
             merges = a.merges;
             route = Some a.route }
         | Ir.Gates _ -> invalid_arg "Stages.rebuild_insts: gate input"))

let aggregate =
  Pass.P
    (Pass.make ~name:"aggregate" ~fingerprint:"aggregate" ~inp:Ir.Gdg_built
       ~out:Ir.Aggregated ~mutates:true
       ~note:(fun ctx (a : Ir.gdg_built) (b : Ir.aggregated) ->
         Pass.note_int ctx "merges" (b.merges - a.merges))
       ~check:(fun ctx _ (b : Ir.aggregated) ->
         aggregate_diags ~width_limit:ctx.Pass.backend.Backend.width_limit
           b.gdg)
       ~certify:
         (Pass.Cert_pre
            ( (fun (a : Ir.gdg_built) -> Gdg.insts a.gdg),
              fun ctx c before (b : Ir.aggregated) ->
                Qcert.Pipeline.aggregation c
                  ~width_limit:(max ctx.Pass.backend.Backend.width_limit 2)
                  ~before ~gdg:b.gdg ))
       (fun ctx (a : Ir.gdg_built) ->
         let route =
           match a.route with
           | Some r -> r
           | None -> invalid_arg "Stages.aggregate: unrouted GDG"
         in
         let stats =
           Qagg.Aggregator.run
             ~width_limit:ctx.Pass.backend.Backend.width_limit
             ~cost:(cost_fn Model ctx) a.gdg
         in
         { Ir.l = a.l;
           gdg = a.gdg;
           merges = a.merges + stats.Qagg.Aggregator.merges;
           route }))

(* the four final-schedule variants share name, hooks and shape; only
   the scheduler and the input stage differ *)
let final_schedule ~fingerprint ~inp ~sched ~unpack =
  Pass.P
    (Pass.make ~name:"schedule" ~fingerprint ~inp ~out:Ir.Scheduled
       ~check:(fun ctx _ (b : Ir.scheduled) -> final_diags ctx b)
       ~certify:
         (Pass.Cert
            (fun _ c _ (b : Ir.scheduled) ->
              Qcert.Pipeline.schedule c ~name:"schedule" ~gdg:b.gdg b.schedule))
       (fun _ a ->
         let l, gdg, merges, route = unpack a in
         { Ir.l; gdg; schedule = sched gdg; merges; route }))

let asap_final =
  final_schedule ~fingerprint:"schedule:asap@gdg" ~inp:Ir.Gdg_built
    ~sched:Qsched.Asap.schedule
    ~unpack:(fun (a : Ir.gdg_built) -> (a.l, a.gdg, a.merges, a.route))

let asap_final_agg =
  final_schedule ~fingerprint:"schedule:asap@agg" ~inp:Ir.Aggregated
    ~sched:Qsched.Asap.schedule
    ~unpack:(fun (a : Ir.aggregated) -> (a.l, a.gdg, a.merges, Some a.route))

let cls_final =
  final_schedule ~fingerprint:"schedule:cls@gdg" ~inp:Ir.Gdg_built
    ~sched:Qsched.Cls.schedule
    ~unpack:(fun (a : Ir.gdg_built) -> (a.l, a.gdg, a.merges, a.route))

let cls_final_agg =
  final_schedule ~fingerprint:"schedule:cls@agg" ~inp:Ir.Aggregated
    ~sched:Qsched.Cls.schedule
    ~unpack:(fun (a : Ir.aggregated) -> (a.l, a.gdg, a.merges, Some a.route))

(* ---- the five strategies as declarative pass sequences ---- *)

(* ISA baseline: program order, per-gate pulses, ASAP *)
let isa =
  [ lower; place_of_lowered; route;
    gdg_of_routed ~cost:Serial ~lint:true; asap_final ]

(* commutativity detection + CLS, gates still pulsed individually *)
let cls =
  [ lower; gdg_of_lowered ~cost:Serial ~lint:false; detect ~cost:Serial;
    cls_schedule; place_of_scheduled; route; rebuild_serial; cls_final ]

(* aggregation without commutativity-aware scheduling *)
let aggregation =
  [ lower; place_of_lowered; route; gdg_of_routed ~cost:Model ~lint:false;
    detect ~cost:Model; aggregate; asap_final_agg ]

(* the full pipeline *)
let cls_aggregation =
  [ lower; gdg_of_lowered ~cost:Model ~lint:false; detect ~cost:Model;
    cls_schedule; place_of_scheduled; route; rebuild_insts; aggregate;
    cls_final_agg ]

(* CLS + mechanical hand optimization *)
let cls_hand =
  [ lower; handopt_pre; gdg_of_lowered ~cost:Serial ~lint:true; cls_schedule;
    place_of_scheduled; route; handopt_post; rebuild_serial; cls_final ]
