(** Named, typed pipeline transformations.

    A pass maps one {!Ir} artifact to the next and carries its
    instrumentation as structured hooks rather than ad-hoc call sites:

    - [run] does the work, inside a qobs span named after the pass;
    - [note] attaches key figures (node counts, swaps, contractions) to
      that span and the metrics registry, still inside the span;
    - [note_after] does the same after the span closes, for figures that
      belong on the enclosing span (lowering's qubit/gate counts land on
      the ["compile"] span, as they always have);
    - [check] produces qlint diagnostics for the boundary just crossed
      (the driver accumulates them and fails fast on errors);
    - [certify] proves the boundary to {!Qcert.Pipeline}. In-place
      passes use {!Cert_pre} to capture the pre-state they are about to
      destroy; the snapshot is taken only when certification is on.

    The driver ({!Pipeline.run}) interprets the hooks in the fixed order
    run → note → note_after → check → certify, which reproduces the
    hand-written pipelines' instrumentation exactly. *)

type ctx = {
  backend : Backend.t;
  obs : Qobs.Trace.t;
  metrics : Qobs.Metrics.t;
  lint : Qlint.Diagnostic.t list ref option;
  cert : Qcert.Pipeline.ctx option;
}

let ctx ?(backend = Backend.default) ?(obs = Qobs.Trace.disabled)
    ?(metrics = Qobs.Metrics.disabled) ?lint ?cert () =
  { backend; obs; metrics; lint; cert }

let observing ctx =
  Qobs.Trace.enabled ctx.obs || Qobs.Metrics.enabled ctx.metrics

(* one span per pass; the disabled path short-circuits before allocating *)
let with_span ctx name f =
  if not (observing ctx) then f ()
  else begin
    let t0 = Qobs.Clock.now_ns () in
    let g0 = Qobs.Span.gc_now () in
    let finish () =
      Qobs.Metrics.observe ctx.metrics "pass.duration_ms"
        (Qobs.Clock.elapsed_ns t0 /. 1e6);
      if Qobs.Metrics.enabled ctx.metrics then begin
        let g1 = Qobs.Span.gc_now () in
        Qobs.Metrics.observe ctx.metrics "alloc.minor_words"
          (g1.Qobs.Span.minor_words -. g0.Qobs.Span.minor_words);
        Qobs.Metrics.observe ctx.metrics "alloc.major_words"
          (g1.Qobs.Span.major_words -. g0.Qobs.Span.major_words);
        Qobs.Metrics.incr ctx.metrics
          ~by:(g1.Qobs.Span.major_collections - g0.Qobs.Span.major_collections)
          "alloc.major_collections"
      end
    in
    match Qobs.Trace.with_span ctx.obs name f with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let note_gdg ctx gdg =
  if observing ctx then begin
    let nodes = Qgdg.Gdg.size gdg in
    let _, succ = Qgdg.Gdg.neighbor_tables gdg in
    let edges = Hashtbl.length succ in
    Qobs.Trace.attr_int ctx.obs "nodes" nodes;
    Qobs.Trace.attr_int ctx.obs "edges" edges;
    Qobs.Metrics.gauge ctx.metrics "gdg.nodes" (float_of_int nodes);
    Qobs.Metrics.gauge ctx.metrics "gdg.edges" (float_of_int edges)
  end

let note_int ctx key v =
  Qobs.Trace.attr_int ctx.obs key v;
  Qobs.Metrics.incr ctx.metrics ~by:v ("compile." ^ key)

type ('a, 'b) certifier =
  | Cert : (ctx -> Qcert.Pipeline.ctx -> 'a -> 'b -> unit) -> ('a, 'b) certifier
      (** certify from the input/output artifacts directly *)
  | Cert_pre :
      ('a -> 's) * (ctx -> Qcert.Pipeline.ctx -> 's -> 'b -> unit)
      -> ('a, 'b) certifier
      (** snapshot the input first — for passes that mutate it in place *)

type ('a, 'b) t = {
  name : string;  (** span name; also the row label in [qcc profile] *)
  fingerprint : string;
      (** distinguishes behavioral variants that share a name (cost
          model, input shape); part of the stage-cache key chain *)
  inp : 'a Ir.stage;
  out : 'b Ir.stage;
  mutates : bool;  (** updates its input artifact's GDG in place *)
  run : ctx -> 'a -> 'b;
  note : (ctx -> 'a -> 'b -> unit) option;
  note_after : (ctx -> 'a -> 'b -> unit) option;
  check : (ctx -> 'a -> 'b -> Qlint.Diagnostic.t list) option;
  certify : ('a, 'b) certifier option;
}

type packed = P : ('a, 'b) t -> packed

let make ~name ~fingerprint ~inp ~out ?(mutates = false) ?note ?note_after
    ?check ?certify run =
  { name; fingerprint; inp; out; mutates; run; note; note_after; check;
    certify }

let name (P p) = p.name
let fingerprint (P p) = p.fingerprint
let describe (P p) = (p.name, Ir.stage_name p.inp, Ir.stage_name p.out)
