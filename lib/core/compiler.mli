(** End-to-end compilation pipelines (paper Fig. 5).

    All strategies share the frontend (ISA lowering) and the mapping layer
    (recursive-bisection placement + SWAP routing on the device topology);
    they differ in commutativity detection, scheduling, aggregation and
    pulse costing:

    - [Isa]: route the gate stream in program order, cost each gate with
      the per-gate pulse table, ASAP-schedule.
    - [Cls]: contract diagonal blocks (commutativity detection), CLS on
      the logical GDG, route the linearization, CLS again on the physical
      GDG; blocks still cost the serial sum of their member gates (no
      custom pulses).
    - [Aggregation]: no commutativity-aware scheduling; contract diagonal
      blocks and run monotonic aggregation on the routed program-order
      GDG with optimal-control (latency-model) costing; ASAP.
    - [Cls_aggregation]: the full pipeline — detection, CLS, mapping,
      aggregation (SWAPs may merge into neighboring blocks), final CLS.
    - [Cls_hand]: hand-optimize (ZZ fusion, cancellations), CLS, route,
      hand-optimize again, final CLS; fused gates cost their direct-pulse
      times.

    The returned GDG and schedule are on physical (device-site) qubits. *)

type config = Backend.t = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
      (** default: smallest near-square grid fitting the circuit *)
  width_limit : int;  (** aggregation width bound (default 10) *)
}
(** Alias for {!Backend.t} — the compiler's view of the target machine.
    Kept as a transparent record so [{ default_config with ... }] call
    sites read naturally. *)

val default_config : config

type result = {
  strategy : Strategy.t;
  schedule : Qsched.Schedule.t;
  latency : float;  (** makespan, ns *)
  gdg : Qgdg.Gdg.t;
  initial_placement : Qmap.Placement.t;
      (** logical qubit → device site before the first instruction *)
  final_placement : Qmap.Placement.t;
      (** logical qubit → device site after the last instruction (differs
          from the initial placement by the net effect of routing SWAPs);
          needed to interpret measurement outcomes *)
  n_instructions : int;
  n_swaps_inserted : int;
  n_merges : int;  (** diagonal contractions + aggregation merges *)
  compile_time : float;
      (** wall-clock seconds on the monotonic clock ({!Qobs.Clock}) —
          {e not} CPU time *)
  diagnostics : Qlint.Diagnostic.t list;
      (** static-check findings accumulated across pass boundaries; always
          [[]] unless compiled with [~check:true] *)
  trace : Qobs.Span.t option;
      (** the root ["compile"] span with one child per pipeline pass (see
          {!passes}); [None] unless compiled with an enabled [~obs]
          collector *)
  certificate : Qcert.Certificate.t option;
      (** per-boundary translation-validation certificate; [None] unless
          compiled with [~certify:true] *)
}

val passes : Strategy.t -> string list
(** The span names a traced compile emits for the strategy, in pipeline
    order — each appears exactly once under the root ["compile"] span.
    Derived from the pass registry ({!Strategy.passes}). *)

val describe_passes : Strategy.t -> (string * string * string) list
(** [(name, input stage, output stage)] per pass, in pipeline order. *)

val canonical_passes : unit -> string list
(** The union of all strategies' passes in canonical pipeline order,
    derived from the registry (used by [qcc profile]'s pass table). *)

val compile :
  ?config:config -> ?check:bool -> ?certify:bool -> ?obs:Qobs.Trace.t ->
  ?metrics:Qobs.Metrics.t -> ?cache:Pipeline.Cache.t ->
  ?ledger:Qobs.Ledger.t -> ?source_label:string ->
  strategy:Strategy.t -> Qgate.Circuit.t ->
  result
(** [~check:true] runs the Qlint checker families at every pass boundary
    (lowered circuit, GDG construction, logical CLS schedule, routing,
    aggregation, final schedule). Warnings and infos accumulate into
    {!field:result.diagnostics}; the first boundary that produces an
    error-severity diagnostic aborts compilation by raising
    [Qlint.Report.Check_failed] carrying everything gathered so far.
    [~check:false] (the default) costs nothing.

    [~certify:true] additionally runs the Qcert translation validators at
    every pass boundary (lowering, GDG construction, diagonal
    contraction, CLS/final scheduling, routing replay, rebuilding,
    aggregation, and — on registers of at most
    {!Qcert.Pipeline.end_to_end_limit} sites — a dense end-to-end unitary
    check). The certificate lands in {!field:result.certificate}; the
    first refuted boundary aborts compilation by raising
    [Qcert.Certificate.Certification_failed] with the partial
    certificate, mirroring the [~check] behavior.

    [~obs] (default {!Qobs.Trace.disabled}) wraps every pass in a timed
    span — the qlint checkpoints run {e between} spans so checking cost
    never pollutes pass times, and certifiers get their own
    ["certify-<boundary>"] spans — and fills {!field:result.trace}.
    [~metrics] (default {!Qobs.Metrics.disabled}) receives the compiler's
    own counters/gauges and is installed as the ambient registry
    ({!Qobs.Metrics.with_ambient}) so the deep passes (commutation
    checks, routing, CLS, aggregation, latency model) record into it too,
    as do the certifiers ([qcert.proved] / [qcert.refuted] /
    [qcert.skipped] / [qcert.facts]). Both defaults are null collectors:
    the disabled path is one branch per seam, no allocation.

    [~cache] (default: none) shares stage artifacts across compiles —
    see {!Pipeline}. Results are identical with and without it.

    [~ledger] (default: none) appends one [qcc.ledger/1] row to the
    flight recorder after a successful compile: backend / source /
    pass-chain digests, per-pass wall time and GC allocation, the metric
    snapshot, and this run's stage-cache hit/miss deltas. When the
    caller supplies no [~obs]/[~metrics], private enabled collectors are
    created so every row carries full per-pass and per-route data — and
    each row's metric snapshot is then per-run, which is what
    [qcc stats] sums over. [~source_label] names the row's [source]
    field (e.g. the benchmark or file name). *)

val compile_all :
  ?config:config -> ?check:bool -> ?certify:bool -> ?obs:Qobs.Trace.t ->
  ?metrics:Qobs.Metrics.t -> ?cache:Pipeline.Cache.t ->
  ?ledger:Qobs.Ledger.t -> ?source_label:string -> ?jobs:int ->
  Qgate.Circuit.t ->
  (Strategy.t * result) list
(** All five strategies on one circuit (sharing the collectors). By
    default a fresh stage cache is created for the call, so the shared
    pipeline prefix (lowering everywhere; placement and routing between
    ISA and aggregation) is computed once per circuit.

    [?jobs] selects the driver. Omitted: the sequential driver — every
    strategy compiles on the calling domain with the caller's
    collectors and warm memos, exactly as before. [~jobs:n] (any
    [n >= 1]): the pooled driver ({!Parallel.map}) — strategies become
    jobs on a pool of [n] domains sharing the one compute-once stage
    cache (and the ledger, when given); every worker runs
    {!reset_all_memos} before its first job, metrics land as per-job
    shards merged in job-index order into the caller's registry, and an
    enabled [~obs] is replaced by a private per-job trace collector
    (each {!field:result.trace} is that job's root span; the caller's
    collector itself records nothing). Results — latencies, merges,
    swaps, diagnostics, certificates — are byte-identical for every
    [n], including [n = 1], which is the pooled driver's sequential
    reference. Ledger row {e order} is scheduling-dependent under
    [n > 1]; row contents are not. *)

val compile_matrix :
  ?config:config -> ?check:bool -> ?certify:bool ->
  ?metrics:Qobs.Metrics.t -> ?cache:Pipeline.Cache.t ->
  ?ledger:Qobs.Ledger.t -> ?jobs:int ->
  (string * Qgate.Circuit.t) list ->
  (string * (Strategy.t * result) list) list
(** The full benchmark×strategy matrix as one job pool: every (circuit,
    strategy) cell is an independent job ([jobs] defaults to 1 — the
    sequential reference on the calling domain), flattened
    benchmark-major so results regroup deterministically. One shared
    compute-once stage cache spans the whole matrix; each job's
    [source_label] (and its ledger row's [source]) is the given name.
    Same determinism contract and shard discipline as
    [compile_all ~jobs]. Backs [qcc compare -j] and the [par-scale]
    bench. *)

val blocks : result -> Qgate.Gate.t list list
(** Final aggregated instructions as member-gate lists (for
    verification). *)

val speedup : baseline:result -> result -> float
(** baseline latency / this latency. *)

val reset_all_memos : unit -> unit
(** Return the {e calling domain} to a cold start: clears the commutation
    decision/unitary memos ([Qgdg.Commute]), the block-summary and pair
    memos ([Qflow.Summary]) and the latency-cost memos
    ([Qcontrol.Latency_model]) — all per-domain tables. Idempotent; a
    compile after reset reports the same cache-miss counters as a fresh
    process. *)
