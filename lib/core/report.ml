let geometric_mean values =
  match values with
  | [] -> invalid_arg "Report.geometric_mean: empty"
  | _ ->
    if List.exists (fun v -> v <= 0.) values then
      invalid_arg "Report.geometric_mean: non-positive entry";
    let log_sum = List.fold_left (fun acc v -> acc +. Float.log v) 0. values in
    Float.exp (log_sum /. float_of_int (List.length values))

let normalized_latency ~baseline result =
  result.Compiler.latency /. baseline.Compiler.latency

let result_to_json (r : Compiler.result) =
  Qobs.Json.Obj
    [ ("strategy", Qobs.Json.Str (Strategy.to_string r.Compiler.strategy));
      ("latency_ns", Qobs.Json.Float r.Compiler.latency);
      ("instructions", Qobs.Json.Int r.Compiler.n_instructions);
      ("swaps_inserted", Qobs.Json.Int r.Compiler.n_swaps_inserted);
      ("merges", Qobs.Json.Int r.Compiler.n_merges);
      ("compile_time_s", Qobs.Json.Float r.Compiler.compile_time);
      ("utilization",
       Qobs.Json.Float (Qsched.Schedule.utilization r.Compiler.schedule));
      ("diagnostics", Qobs.Json.Int (List.length r.Compiler.diagnostics)) ]

let speedup_table_to_json ~rows =
  Qobs.Json.Obj
    [ ("schema", Qobs.Json.Str "qcc.speedup-table/1");
      ("baseline", Qobs.Json.Str (Strategy.to_string Strategy.Isa));
      ("rows",
       Qobs.Json.List
         (List.map
            (fun (name, results) ->
              let baseline = List.assoc_opt Strategy.Isa results in
              Qobs.Json.Obj
                [ ("benchmark", Qobs.Json.Str name);
                  ("results",
                   Qobs.Json.List
                     (List.map
                        (fun ((_ : Strategy.t), r) ->
                          let fields = result_to_json r in
                          match (fields, baseline) with
                          | Qobs.Json.Obj kvs, Some b ->
                            Qobs.Json.Obj
                              (kvs
                               @ [ ("normalized_latency",
                                    Qobs.Json.Float
                                      (normalized_latency ~baseline:b r)) ])
                          | _, _ -> fields)
                        results)) ])
            rows)) ]

let print_speedup_table ~header ?json rows =
  Printf.printf "%s\n" header;
  let strategies = Strategy.all in
  Printf.printf "%-16s" "benchmark";
  List.iter
    (fun s -> Printf.printf " %15s" (Strategy.to_string s))
    strategies;
  Printf.printf "\n";
  let per_strategy = Hashtbl.create 8 in
  List.iter
    (fun (name, results) ->
      Printf.printf "%-16s" name;
      let baseline =
        match List.assoc_opt Strategy.Isa results with
        | Some r -> r
        | None -> invalid_arg "Report: missing ISA baseline"
      in
      List.iter
        (fun s ->
          match List.assoc_opt s results with
          | None -> Printf.printf " %15s" "-"
          | Some r ->
            let norm = normalized_latency ~baseline r in
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt per_strategy s)
            in
            Hashtbl.replace per_strategy s (norm :: prev);
            Printf.printf " %15.3f" norm)
        strategies;
      Printf.printf "\n")
    rows;
  Printf.printf "%-16s" "geomean-speedup";
  List.iter
    (fun s ->
      match Hashtbl.find_opt per_strategy s with
      | None | Some [] -> Printf.printf " %15s" "-"
      | Some norms -> Printf.printf " %15.3f" (1. /. geometric_mean norms))
    strategies;
  Printf.printf "\n%!";
  match json with
  | None -> ()
  | Some path ->
    Qobs.Json.write_file path (speedup_table_to_json ~rows);
    Printf.printf "wrote %s\n%!" path

let print_kv pairs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter (fun (k, v) -> Printf.printf "  %-*s  %s\n" width k v) pairs;
  Printf.printf "%!"
