module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst

let log_src = Logs.Src.create "qcc" ~doc:"qcc compilation pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* re-export so existing [{ default_config with topology = ... }] call
   sites keep working; the pipeline itself consumes the Backend value *)
type config = Backend.t = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
  width_limit : int;
}

let default_config = Backend.default

type result = {
  strategy : Strategy.t;
  schedule : Qsched.Schedule.t;
  latency : float;
  gdg : Gdg.t;
  initial_placement : Qmap.Placement.t;
  final_placement : Qmap.Placement.t;
  n_instructions : int;
  n_swaps_inserted : int;
  n_merges : int;
  compile_time : float;
  diagnostics : Qlint.Diagnostic.t list;
  trace : Qobs.Span.t option;
  certificate : Qcert.Certificate.t option;
}

let passes strategy = List.map Pass.name (Strategy.passes strategy)

let describe_passes strategy = List.map Pass.describe (Strategy.passes strategy)

(* Canonical pass order across all strategies, derived from the
   registry: merge each strategy's list into the accumulated order,
   inserting new passes right after their predecessor. Longest pipelines
   anchor the order (hence the fold over [List.rev all]), so the result
   reads in pipeline order — and new passes appear automatically. *)
let canonical_passes () =
  let insert_after prev name acc =
    match prev with
    | None -> name :: acc
    | Some p ->
      let rec go = function
        | [] -> [ name ]
        | x :: rest when x = p -> x :: name :: rest
        | x :: rest -> x :: go rest
      in
      go acc
  in
  let merge acc names =
    let rec go prev acc = function
      | [] -> acc
      | name :: rest ->
        let acc =
          if List.mem name acc then acc else insert_after prev name acc
        in
        go (Some name) acc rest
    in
    go None acc names
  in
  List.fold_left
    (fun acc strategy -> merge acc (passes strategy))
    [] (List.rev Strategy.all)

(* the strategy's pass-chain identity, independent of source/backend *)
let chain_digest strategy =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (List.map Pass.fingerprint (Strategy.passes strategy))))

(* canonical QASM bytes, not Marshal: structurally equal circuits get
   equal digests, stable across runs (same fix as Pipeline.root_key) *)
let source_digest circuit =
  Digest.to_hex (Digest.string (Qgate.Qasm.to_string circuit))

let compile ?(config = default_config) ?(check = false) ?(certify = false)
    ?obs ?metrics ?cache ?ledger ?source_label ~strategy circuit =
  (* the ledger needs an enabled trace (per-pass rows) and registry
     (metric snapshot); give it private ones when the caller brought
     neither, so [--ledger] costs nothing to callers that stay dark *)
  let obs =
    match obs with
    | Some o -> o
    | None ->
      if Option.is_none ledger then Qobs.Trace.disabled
      else Qobs.Trace.create ()
  in
  let metrics =
    match metrics with
    | Some m -> m
    | None ->
      if Option.is_none ledger then Qobs.Metrics.disabled
      else Qobs.Metrics.create ()
  in
  let cache_hits0, cache_misses0 =
    match cache with
    | Some c -> (Pipeline.Cache.hits c, Pipeline.Cache.misses c)
    | None -> (0, 0)
  in
  let cert =
    if certify then
      Some
        (Qcert.Pipeline.create ~obs ~strategy:(Strategy.to_string strategy) ())
    else None
  in
  let body () =
    let t0 = Qobs.Clock.now_ns () in
    let lint = if check then Some (ref []) else None in
    let ctx = { Pass.backend = config; obs; metrics; lint; cert } in
    let costed =
      Qobs.Trace.with_span obs "compile" (fun () ->
          Qobs.Trace.attr_str obs "strategy" (Strategy.to_string strategy);
          let costed =
            Pipeline.run ~ctx ?cache (Strategy.passes strategy) circuit
          in
          (match cert with
           | Some c ->
             Qcert.Pipeline.end_to_end c
               ~n_sites:(Gdg.n_qubits costed.Ir.gdg)
               ~initial:costed.Ir.route.Ir.initial
               ~final:costed.Ir.route.Ir.final ~logical:costed.Ir.l.Ir.base
               costed.Ir.schedule
           | None -> ());
          costed)
    in
    let compile_time = Qobs.Clock.elapsed_ns t0 /. 1e9 in
    let latency = costed.Ir.latency in
    Qobs.Metrics.gauge metrics "compile.latency_ns" latency;
    Qobs.Metrics.gauge metrics "compile.time_s" compile_time;
    Log.info (fun m ->
        m "%s: %d instructions, latency %.1f ns, compiled in %.2f ms"
          (Strategy.to_string strategy)
          (Gdg.size costed.Ir.gdg)
          latency (compile_time *. 1e3));
    { strategy;
      schedule = costed.Ir.schedule;
      latency;
      gdg = costed.Ir.gdg;
      initial_placement = costed.Ir.route.Ir.initial;
      final_placement = costed.Ir.route.Ir.final;
      n_instructions = Gdg.size costed.Ir.gdg;
      n_swaps_inserted = costed.Ir.route.Ir.swaps;
      n_merges = costed.Ir.merges;
      compile_time;
      diagnostics =
        (match lint with
         | Some acc -> List.stable_sort Qlint.Diagnostic.compare (List.rev !acc)
         | None -> []);
      trace = Qobs.Trace.last_span obs;
      certificate = Option.map Qcert.Pipeline.finish cert }
  in
  let result =
    if Qobs.Metrics.enabled metrics then Qobs.Metrics.with_ambient metrics body
    else body ()
  in
  (match ledger with
   | None -> ()
   | Some l ->
     let cache_hits, cache_misses =
       match cache with
       | Some c ->
         ( Pipeline.Cache.hits c - cache_hits0,
           Pipeline.Cache.misses c - cache_misses0 )
       | None -> (0, 0)
     in
     Qobs.Ledger.append l
       (Qobs.Ledger.row ?source_label
          ~domain:(Domain.self () :> int)
          ~strategy:(Strategy.to_string strategy)
          ~backend_digest:(Digest.to_hex (Backend.fingerprint config))
          ~source_digest:(source_digest circuit)
          ~chain_digest:(chain_digest strategy) ~latency_ns:result.latency
          ~compile_time_s:result.compile_time ~cache_hits ~cache_misses
          ?trace:result.trace ~metrics ()));
  result

(* The single exhaustive memo-reset entry point: one call per memoized
   subsystem the compiler warms. domlint's DS020 check pins the set —
   every per-domain memo table must be reachable from a reset_* function,
   and this is the one callers (tests, benchmarks, domain pools) use to
   return the calling domain to a cold start. Idempotent. *)
let reset_all_memos () =
  Qgdg.Oracle.reset_memos ();
  Qgdg.Commute.reset_memos ();
  Qflow.Summary.reset_memo ();
  Qcontrol.Latency_model.reset_memos ()

(* Pooled jobs tick into per-job metrics shards, merged into the
   caller's registry in job-index order after the join — the merge law
   (Qobs.Metrics.merge) is commutative/associative, so the landed
   snapshot does not depend on which worker ran which job. *)
let make_shards metrics n =
  let shard_enabled =
    match metrics with Some m -> Qobs.Metrics.enabled m | None -> false
  in
  let shards =
    Array.init n (fun _ ->
        if shard_enabled then Qobs.Metrics.create () else Qobs.Metrics.disabled)
  in
  let shard_for i = if shard_enabled then Some shards.(i) else metrics in
  let land_shards () =
    if shard_enabled then
      Option.iter
        (fun m -> Array.iter (fun s -> Qobs.Metrics.absorb ~into:m s) shards)
        metrics
  in
  (shard_for, land_shards)

let compile_all ?config ?check ?certify ?obs ?metrics ?cache ?ledger
    ?source_label ?jobs circuit =
  (* one shared stage cache: the strategies fork from common prefixes
     (all five lower identically; isa and aggregation also share
     placement and routing), so the prefix is computed once *)
  let cache =
    match cache with Some c -> c | None -> Pipeline.Cache.create ()
  in
  match jobs with
  | None ->
    (* the sequential driver: caller's collectors, caller's warm memos *)
    List.map
      (fun strategy ->
        ( strategy,
          compile ?config ?check ?certify ?obs ?metrics ~cache ?ledger
            ?source_label ~strategy circuit ))
      Strategy.all
  | Some jobs ->
    let strategies = Array.of_list Strategy.all in
    let shard_for, land_shards = make_shards metrics (Array.length strategies) in
    let results =
      Parallel.map ~jobs ~init:reset_all_memos
        (fun i strategy ->
          (* an enabled caller trace cannot take concurrent spans; give
             each job a private collector so result.trace still lands *)
          let obs =
            match obs with
            | Some o when Qobs.Trace.enabled o -> Some (Qobs.Trace.create ())
            | other -> other
          in
          compile ?config ?check ?certify ?obs ?metrics:(shard_for i) ~cache
            ?ledger ?source_label ~strategy circuit)
        strategies
    in
    land_shards ();
    List.combine (Array.to_list strategies) (Array.to_list results)

let compile_matrix ?config ?check ?certify ?metrics ?cache ?ledger ?(jobs = 1)
    named =
  (* one shared stage cache across the whole benchmark×strategy matrix:
     within a circuit the strategies fork from common prefixes exactly
     as in [compile_all]; across circuits the keys differ at the root *)
  let cache =
    match cache with Some c -> c | None -> Pipeline.Cache.create ()
  in
  let strategies = Array.of_list Strategy.all in
  let n_strat = Array.length strategies in
  let job_arr =
    Array.of_list
      (List.concat_map
         (fun (name, circuit) ->
           List.map (fun s -> (name, s, circuit)) Strategy.all)
         named)
  in
  let shard_for, land_shards = make_shards metrics (Array.length job_arr) in
  let results =
    Parallel.map ~jobs ~init:reset_all_memos
      (fun i (label, strategy, circuit) ->
        compile ?config ?check ?certify ?metrics:(shard_for i) ~cache ?ledger
          ~source_label:label ~strategy circuit)
      job_arr
  in
  land_shards ();
  List.mapi
    (fun bi (name, _) ->
      ( name,
        List.mapi
          (fun si s -> (s, results.((bi * n_strat) + si)))
          (Array.to_list strategies) ))
    named

let blocks result =
  List.map (fun (i : Inst.t) -> i.Inst.gates) (Gdg.insts result.gdg)

let speedup ~baseline result =
  if result.latency <= 0. then infinity else baseline.latency /. result.latency
