module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

let log_src = Logs.Src.create "qcc" ~doc:"qcc compilation pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
  width_limit : int;
}

let default_config =
  { device = Qcontrol.Device.default; topology = None; width_limit = 10 }

type result = {
  strategy : Strategy.t;
  schedule : Qsched.Schedule.t;
  latency : float;
  gdg : Gdg.t;
  initial_placement : Qmap.Placement.t;
  final_placement : Qmap.Placement.t;
  n_instructions : int;
  n_swaps_inserted : int;
  n_merges : int;
  compile_time : float;
  diagnostics : Qlint.Diagnostic.t list;
  trace : Qobs.Span.t option;
  certificate : Qcert.Certificate.t option;
}

let passes = function
  | Strategy.Isa -> [ "lower"; "place"; "route"; "gdg"; "schedule" ]
  | Strategy.Cls ->
    [ "lower"; "gdg"; "detect"; "cls"; "place"; "route"; "rebuild"; "schedule" ]
  | Strategy.Aggregation ->
    [ "lower"; "place"; "route"; "gdg"; "detect"; "aggregate"; "schedule" ]
  | Strategy.Cls_aggregation ->
    [ "lower"; "gdg"; "detect"; "cls"; "place"; "route"; "rebuild";
      "aggregate"; "schedule" ]
  | Strategy.Cls_hand ->
    [ "lower"; "handopt-pre"; "gdg"; "cls"; "place"; "route"; "handopt-post";
      "rebuild"; "schedule" ]

let topology_of config circuit =
  match config.topology with
  | Some t -> t
  | None -> Qmap.Topology.grid_for (Circuit.n_qubits circuit)

let gate_cost device g = Qcontrol.Latency_model.gate_time device g
let serial_cost device gates = Qcontrol.Latency_model.isa_critical_path device gates

let opt_cost config gates =
  Qcontrol.Latency_model.block_time ~width_limit:config.width_limit
    config.device gates

(* ---- observability instrumentation ----

   [obs] collects one span per pass (the seams below mirror the qlint
   checkpoints); [metrics] is also installed as the ambient registry so
   the deep passes (Commute, Router, Cls, Aggregator, Latency_model) can
   tick counters without signature changes. Both default to the null
   collectors, which short-circuit before allocating anything. *)

type obs_ctx = { obs : Qobs.Trace.t; metrics : Qobs.Metrics.t }

let null_obs = { obs = Qobs.Trace.disabled; metrics = Qobs.Metrics.disabled }

let pass oc name f =
  if not (Qobs.Trace.enabled oc.obs || Qobs.Metrics.enabled oc.metrics) then
    f ()
  else begin
    let t0 = Qobs.Clock.now_ns () in
    let finish () =
      Qobs.Metrics.observe oc.metrics "pass.duration_ms"
        (Qobs.Clock.elapsed_ns t0 /. 1e6)
    in
    match Qobs.Trace.with_span oc.obs name f with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* per-pass key figures land as attributes on the enclosing span, and the
   sizes as gauges in the registry; guarded so the disabled path touches
   nothing *)
let note_gdg oc gdg =
  if Qobs.Trace.enabled oc.obs || Qobs.Metrics.enabled oc.metrics then begin
    let nodes = Gdg.size gdg in
    let _, succ = Gdg.neighbor_tables gdg in
    let edges = Hashtbl.length succ in
    Qobs.Trace.attr_int oc.obs "nodes" nodes;
    Qobs.Trace.attr_int oc.obs "edges" edges;
    Qobs.Metrics.gauge oc.metrics "gdg.nodes" (float_of_int nodes);
    Qobs.Metrics.gauge oc.metrics "gdg.edges" (float_of_int edges)
  end

let note_int oc key v =
  Qobs.Trace.attr_int oc.obs key v;
  Qobs.Metrics.incr oc.metrics ~by:v ("compile." ^ key)

(* ---- static-check instrumentation (the [~check:true] mode) ----

   [ctx] accumulates diagnostics across pipeline boundaries; an
   error-severity diagnostic fails fast with the structured report built
   so far ([Qlint.Report.Check_failed]). [None] disables everything at
   zero cost. Diagnostics are prepended (reverse order) and restored to
   boundary order in one pass at the end — appending here would be
   quadratic in the number of boundaries. *)

type lint_ctx = Qlint.Diagnostic.t list ref option

let collected_diags acc = List.rev !acc

let checkpoint (ctx : lint_ctx) f =
  match ctx with
  | None -> ()
  | Some acc ->
    let diags = f () in
    acc := List.rev_append diags !acc;
    if List.exists Qlint.Diagnostic.is_error diags then
      raise (Qlint.Report.Check_failed (Qlint.Report.of_list (collected_diags acc)))

(* ---- translation validation (the [~certify:true] mode) ----

   [cert_ctx] threads a [Qcert.Pipeline] context through the pipelines;
   [None] (the default) keeps every seam a single branch. Snapshots of a
   GDG's instruction list are taken only when certifying, right before
   the in-place passes (detect, aggregate) that consume them. *)

type cert_ctx = Qcert.Pipeline.ctx option

let certify_at (cctx : cert_ctx) f =
  match cctx with None -> () | Some c -> f c

let snapshot (cctx : cert_ctx) gdg =
  match cctx with None -> [] | Some _ -> Gdg.insts gdg

let check_circuit ctx ~stage circuit =
  checkpoint ctx (fun () -> Qlint.Check_circuit.run ~stage circuit)

let check_gdg ctx ~stage gdg =
  checkpoint ctx (fun () -> Qlint.Check_gdg.run ~stage gdg)

let check_logical_schedule ctx ~stage gdg schedule =
  checkpoint ctx (fun () ->
      let groups = Qgdg.Comm_group.build gdg in
      Qlint.Check_schedule.run ~stage ~original:gdg
        ~reorderable:(Qgdg.Comm_group.reorderable groups)
        schedule)

(* the routing boundary for instruction streams: placement consistency,
   site adjacency, and a full replay of the router's contract *)
let check_routed_insts ctx ~topology ~initial ~final ~logical ~routed =
  checkpoint ctx (fun () ->
      let gates insts =
        List.concat_map (fun (i : Inst.t) -> i.Inst.gates) insts
      in
      Qlint.Check_mapping.run ~stage:"route" ~topology ~initial ~final routed
      @ Qlint.Check_mapping.check_routing ~stage:"route" ~topology ~initial
          ~final ~logical:(gates logical) ~physical:(gates routed) ())

(* same boundary when the router ran over a plain gate stream *)
let check_routed_circuit ctx ~topology ~initial ~final ~logical ~physical =
  checkpoint ctx (fun () ->
      Qlint.Check_mapping.check_placement ~stage:"route"
        ~label:"initial placement" ~topology initial
      @ Qlint.Check_mapping.check_placement ~stage:"route"
          ~label:"final placement" ~topology final
      @ Qlint.Check_mapping.check_adjacency_circuit ~stage:"route" ~topology
          physical
      @ Qlint.Check_mapping.check_routing ~stage:"route" ~topology ~initial
          ~final ~logical:(Circuit.gates logical)
          ~physical:(Circuit.gates physical) ())

let check_aggregate ctx ~config gdg =
  checkpoint ctx (fun () ->
      (* diagonal detection may build 2-qubit blocks below any limit *)
      Qlint.Check_agg.run ~stage:"aggregate"
        ~width_limit:(max config.width_limit 2) gdg
      @ Qlint.Check_gdg.run ~stage:"aggregate" gdg)

(* the last boundary re-checks everything the earlier passes could have
   invalidated: graph structure, block policy, site adjacency and the
   final schedule's legality modulo declared commutations *)
let check_final ctx ~config ~topology gdg schedule =
  checkpoint ctx (fun () ->
      let groups = Qgdg.Comm_group.build gdg in
      Qlint.Check_gdg.run ~stage:"schedule" gdg
      @ Qlint.Check_agg.run ~stage:"schedule"
          ~width_limit:(max config.width_limit 2) gdg
      @ Qlint.Check_mapping.check_adjacency ~stage:"schedule" ~topology
          (Gdg.insts gdg)
      @ Qlint.Check_schedule.run ~stage:"schedule" ~original:gdg
          ~reorderable:(Qgdg.Comm_group.reorderable groups)
          schedule)

(* relabel instructions to fresh consecutive ids (after routing mixes
   logical instructions with inserted swaps) *)
let renumber insts =
  List.mapi
    (fun id (i : Inst.t) ->
      Inst.make ~id ~latency:i.Inst.latency i.Inst.gates)
    insts

let route_insts ~config ~topology ~placement insts =
  let swap_latency = gate_cost config.device (Gate.swap 0 1) in
  let swap_counter = ref 0 in
  let routed, final =
    Qmap.Router.route ~topology ~placement
      ~support:(fun (i : Inst.t) -> i.Inst.qubits)
      ~remap:(fun f (i : Inst.t) ->
        Inst.make ~id:i.Inst.id ~latency:i.Inst.latency
          (List.map (Gate.map_qubits f) i.Inst.gates))
      ~make_swap:(fun a b ->
        incr swap_counter;
        Inst.make ~id:(-1) ~latency:swap_latency [ Gate.swap a b ])
      insts
  in
  (renumber routed, !swap_counter, final)

let gdg_of_physical ~topology insts =
  Gdg.of_insts ~n_qubits:(Qmap.Topology.n_sites topology) insts

(* ISA baseline: program order, per-gate pulses, ASAP *)
let compile_isa ~config ~ctx ~cctx ~oc circuit =
  let topology = topology_of config circuit in
  let placement =
    pass oc "place" (fun () -> Qmap.Placement.initial topology circuit)
  in
  let physical, final =
    pass oc "route" (fun () ->
        Qmap.Router.route_circuit ~placement ~topology circuit)
  in
  check_routed_circuit ctx ~topology ~initial:placement ~final ~logical:circuit
    ~physical;
  certify_at cctx (fun c ->
      Qcert.Pipeline.route_circuit c ~initial:placement ~final
        ~logical:circuit ~physical);
  let gdg =
    pass oc "gdg" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun gates -> serial_cost config.device gates)
            physical
        in
        note_gdg oc g;
        g)
  in
  check_gdg ctx ~stage:"gdg" gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit:physical ~gdg);
  let swaps =
    Circuit.count (fun g -> g.Gate.kind = Gate.Swap) physical
    - Circuit.count (fun g -> g.Gate.kind = Gate.Swap) circuit
  in
  let schedule = pass oc "schedule" (fun () -> Qsched.Asap.schedule gdg) in
  check_final ctx ~config ~topology gdg schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"schedule" ~gdg schedule);
  (schedule, gdg, swaps, 0, placement, final)

(* commutativity detection + CLS, gates still pulsed individually *)
let compile_cls ~config ~ctx ~cctx ~oc circuit =
  let topology = topology_of config circuit in
  let gdg =
    pass oc "gdg" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun gates -> serial_cost config.device gates)
            circuit
        in
        note_gdg oc g;
        g)
  in
  certify_at cctx (fun c -> Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit ~gdg);
  let before_detect = snapshot cctx gdg in
  let merges =
    pass oc "detect" (fun () ->
        let n =
          Qgdg.Diagonal.detect_and_contract
            ~latency:(fun gates -> serial_cost config.device gates)
            gdg
        in
        note_int oc "contractions" n;
        n)
  in
  check_gdg ctx ~stage:"gdg" gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.contraction c ~before:before_detect ~gdg);
  let logical_schedule = pass oc "cls" (fun () -> Qsched.Cls.schedule gdg) in
  check_logical_schedule ctx ~stage:"cls" gdg logical_schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"cls" ~gdg logical_schedule);
  let placement =
    pass oc "place" (fun () -> Qmap.Placement.initial topology circuit)
  in
  let linear = Qsched.Schedule.linearize logical_schedule in
  let routed, swaps, final =
    pass oc "route" (fun () ->
        let routed, swaps, final =
          route_insts ~config ~topology ~placement linear
        in
        note_int oc "swaps" swaps;
        (routed, swaps, final))
  in
  check_routed_insts ctx ~topology ~initial:placement ~final ~logical:linear
    ~routed;
  certify_at cctx (fun c ->
      Qcert.Pipeline.route_insts c ~initial:placement ~final ~logical:linear
        ~routed);
  (* CLS gets no custom pulses: expand blocks back to gates so the final
     schedule recovers gate-level overlap; the commutativity gain is
     already baked into the routed order *)
  let physical =
    pass oc "rebuild" (fun () ->
        let flat =
          Circuit.make (Qmap.Topology.n_sites topology)
            (List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
        in
        Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
          flat)
  in
  certify_at cctx (fun c ->
      Qcert.Pipeline.rebuild c
        ~src:(List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
        ~gdg:physical);
  let schedule =
    pass oc "schedule" (fun () -> Qsched.Cls.schedule physical)
  in
  check_final ctx ~config ~topology physical schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"schedule" ~gdg:physical schedule);
  (schedule, physical, swaps, merges, placement, final)

(* aggregation without commutativity-aware scheduling *)
let compile_aggregation ~config ~ctx ~cctx ~oc circuit =
  let topology = topology_of config circuit in
  let placement =
    pass oc "place" (fun () -> Qmap.Placement.initial topology circuit)
  in
  let physical_circuit, final =
    pass oc "route" (fun () ->
        Qmap.Router.route_circuit ~placement ~topology circuit)
  in
  check_routed_circuit ctx ~topology ~initial:placement ~final ~logical:circuit
    ~physical:physical_circuit;
  certify_at cctx (fun c ->
      Qcert.Pipeline.route_circuit c ~initial:placement ~final
        ~logical:circuit ~physical:physical_circuit);
  let swaps =
    Circuit.count (fun g -> g.Gate.kind = Gate.Swap) physical_circuit
    - Circuit.count (fun g -> g.Gate.kind = Gate.Swap) circuit
  in
  let gdg =
    pass oc "gdg" (fun () ->
        let g =
          Gdg.of_circuit ~latency:(fun gates -> opt_cost config gates)
            physical_circuit
        in
        note_gdg oc g;
        g)
  in
  certify_at cctx (fun c ->
      Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit:physical_circuit ~gdg);
  let before_detect = snapshot cctx gdg in
  let d_merges =
    pass oc "detect" (fun () ->
        let n =
          Qgdg.Diagonal.detect_and_contract ~latency:(opt_cost config) gdg
        in
        note_int oc "contractions" n;
        n)
  in
  check_gdg ctx ~stage:"gdg" gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.contraction c ~before:before_detect ~gdg);
  let before_agg = snapshot cctx gdg in
  let stats =
    pass oc "aggregate" (fun () ->
        let stats =
          Qagg.Aggregator.run ~width_limit:config.width_limit
            ~cost:(opt_cost config) gdg
        in
        note_int oc "merges" stats.Qagg.Aggregator.merges;
        stats)
  in
  check_aggregate ctx ~config gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.aggregation c ~width_limit:(max config.width_limit 2)
        ~before:before_agg ~gdg);
  let schedule = pass oc "schedule" (fun () -> Qsched.Asap.schedule gdg) in
  check_final ctx ~config ~topology gdg schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"schedule" ~gdg schedule);
  ( schedule,
    gdg,
    swaps,
    d_merges + stats.Qagg.Aggregator.merges,
    placement,
    final )

(* the full pipeline *)
let compile_cls_aggregation ~config ~ctx ~cctx ~oc circuit =
  let topology = topology_of config circuit in
  let gdg =
    pass oc "gdg" (fun () ->
        let g =
          Gdg.of_circuit ~latency:(fun gates -> opt_cost config gates) circuit
        in
        note_gdg oc g;
        g)
  in
  certify_at cctx (fun c -> Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit ~gdg);
  let before_detect = snapshot cctx gdg in
  let d_merges =
    pass oc "detect" (fun () ->
        let n =
          Qgdg.Diagonal.detect_and_contract ~latency:(opt_cost config) gdg
        in
        note_int oc "contractions" n;
        n)
  in
  check_gdg ctx ~stage:"gdg" gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.contraction c ~before:before_detect ~gdg);
  let logical_schedule = pass oc "cls" (fun () -> Qsched.Cls.schedule gdg) in
  check_logical_schedule ctx ~stage:"cls" gdg logical_schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"cls" ~gdg logical_schedule);
  let placement =
    pass oc "place" (fun () -> Qmap.Placement.initial topology circuit)
  in
  let linear = Qsched.Schedule.linearize logical_schedule in
  let routed, swaps, final =
    pass oc "route" (fun () ->
        let routed, swaps, final =
          route_insts ~config ~topology ~placement linear
        in
        note_int oc "swaps" swaps;
        (routed, swaps, final))
  in
  check_routed_insts ctx ~topology ~initial:placement ~final ~logical:linear
    ~routed;
  certify_at cctx (fun c ->
      Qcert.Pipeline.route_insts c ~initial:placement ~final ~logical:linear
        ~routed);
  let physical =
    pass oc "rebuild" (fun () -> gdg_of_physical ~topology routed)
  in
  certify_at cctx (fun c ->
      Qcert.Pipeline.rebuild c
        ~src:(List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
        ~gdg:physical);
  let before_agg = snapshot cctx physical in
  let stats =
    pass oc "aggregate" (fun () ->
        let stats =
          Qagg.Aggregator.run ~width_limit:config.width_limit
            ~cost:(opt_cost config) physical
        in
        note_int oc "merges" stats.Qagg.Aggregator.merges;
        stats)
  in
  check_aggregate ctx ~config physical;
  certify_at cctx (fun c ->
      Qcert.Pipeline.aggregation c ~width_limit:(max config.width_limit 2)
        ~before:before_agg ~gdg:physical);
  let schedule =
    pass oc "schedule" (fun () -> Qsched.Cls.schedule physical)
  in
  check_final ctx ~config ~topology physical schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"schedule" ~gdg:physical schedule);
  ( schedule,
    physical,
    swaps,
    d_merges + stats.Qagg.Aggregator.merges,
    placement,
    final )

(* CLS + mechanical hand optimization *)
let compile_cls_hand ~config ~ctx ~cctx ~oc circuit =
  let topology = topology_of config circuit in
  let hand = pass oc "handopt-pre" (fun () -> Handopt.optimize circuit) in
  check_circuit ctx ~stage:"handopt" hand;
  certify_at cctx (fun c ->
      Qcert.Pipeline.handopt c ~name:"handopt-pre" ~src:circuit ~dst:hand);
  let gdg =
    pass oc "gdg" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun gates -> serial_cost config.device gates)
            hand
        in
        note_gdg oc g;
        g)
  in
  check_gdg ctx ~stage:"gdg" gdg;
  certify_at cctx (fun c ->
      Qcert.Pipeline.gdg_build c ~name:"gdg" ~circuit:hand ~gdg);
  let logical_schedule = pass oc "cls" (fun () -> Qsched.Cls.schedule gdg) in
  check_logical_schedule ctx ~stage:"cls" gdg logical_schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"cls" ~gdg logical_schedule);
  let placement =
    pass oc "place" (fun () -> Qmap.Placement.initial topology hand)
  in
  let linear = Qsched.Schedule.linearize logical_schedule in
  let routed, swaps, final =
    pass oc "route" (fun () ->
        let routed, swaps, final =
          route_insts ~config ~topology ~placement linear
        in
        note_int oc "swaps" swaps;
        (routed, swaps, final))
  in
  check_routed_insts ctx ~topology ~initial:placement ~final ~logical:linear
    ~routed;
  certify_at cctx (fun c ->
      Qcert.Pipeline.route_insts c ~initial:placement ~final ~logical:linear
        ~routed);
  (* a second peephole pass over the routed stream (swaps enable new
     cancellations), then the final commutativity-aware schedule *)
  let flat =
    Circuit.make (Qmap.Topology.n_sites topology)
      (List.concat_map (fun (i : Inst.t) -> i.Inst.gates) routed)
  in
  let hand2 = pass oc "handopt-post" (fun () -> Handopt.optimize flat) in
  check_circuit ctx ~stage:"handopt" hand2;
  certify_at cctx (fun c ->
      Qcert.Pipeline.handopt c ~name:"handopt-post" ~src:flat ~dst:hand2);
  let physical =
    pass oc "rebuild" (fun () ->
        Gdg.of_circuit ~latency:(fun gates -> serial_cost config.device gates)
          hand2)
  in
  certify_at cctx (fun c ->
      Qcert.Pipeline.rebuild c ~src:(Circuit.gates hand2) ~gdg:physical);
  let schedule =
    pass oc "schedule" (fun () -> Qsched.Cls.schedule physical)
  in
  check_final ctx ~config ~topology physical schedule;
  certify_at cctx (fun c ->
      Qcert.Pipeline.schedule c ~name:"schedule" ~gdg:physical schedule);
  (schedule, physical, swaps, 0, placement, final)

let compile ?(config = default_config) ?(check = false) ?(certify = false)
    ?(obs = Qobs.Trace.disabled) ?(metrics = Qobs.Metrics.disabled) ~strategy
    circuit =
  let oc = if Qobs.Trace.enabled obs || Qobs.Metrics.enabled metrics
    then { obs; metrics }
    else null_obs
  in
  let cctx : cert_ctx =
    if certify then
      Some
        (Qcert.Pipeline.create ~obs:oc.obs
           ~strategy:(Strategy.to_string strategy) ())
    else None
  in
  let body () =
    let t0 = Qobs.Clock.now_ns () in
    let ctx = if check then Some (ref []) else None in
    let schedule, gdg, n_swaps_inserted, n_merges, initial_placement,
        final_placement =
      Qobs.Trace.with_span oc.obs "compile" (fun () ->
          Qobs.Trace.attr_str oc.obs "strategy" (Strategy.to_string strategy);
          let source = circuit in
          let circuit =
            pass oc "lower" (fun () -> Qgate.Decompose.to_isa circuit)
          in
          if Qobs.Trace.enabled oc.obs || Qobs.Metrics.enabled oc.metrics
          then begin
            Qobs.Trace.attr_int oc.obs "qubits" (Circuit.n_qubits circuit);
            Qobs.Trace.attr_int oc.obs "gates" (Circuit.n_gates circuit);
            Qobs.Metrics.incr oc.metrics ~by:(Circuit.n_gates circuit)
              "lower.gates"
          end;
          check_circuit ctx ~stage:"lower" circuit;
          certify_at cctx (fun c ->
              Qcert.Pipeline.lower c ~src:source ~dst:circuit);
          let result =
            match strategy with
            | Strategy.Isa -> compile_isa ~config ~ctx ~cctx ~oc circuit
            | Strategy.Cls -> compile_cls ~config ~ctx ~cctx ~oc circuit
            | Strategy.Aggregation ->
              compile_aggregation ~config ~ctx ~cctx ~oc circuit
            | Strategy.Cls_aggregation ->
              compile_cls_aggregation ~config ~ctx ~cctx ~oc circuit
            | Strategy.Cls_hand -> compile_cls_hand ~config ~ctx ~cctx ~oc circuit
          in
          certify_at cctx (fun c ->
              let sched, gdg, _, _, initial, final = result in
              Qcert.Pipeline.end_to_end c ~n_sites:(Gdg.n_qubits gdg) ~initial
                ~final ~logical:circuit sched);
          result)
    in
    let compile_time = Qobs.Clock.elapsed_ns t0 /. 1e9 in
    let latency = schedule.Qsched.Schedule.makespan in
    Qobs.Metrics.gauge oc.metrics "compile.latency_ns" latency;
    Qobs.Metrics.gauge oc.metrics "compile.time_s" compile_time;
    Log.info (fun m ->
        m "%s: %d instructions, latency %.1f ns, compiled in %.2f ms"
          (Strategy.to_string strategy) (Gdg.size gdg) latency
          (compile_time *. 1e3));
    { strategy;
      schedule;
      latency;
      gdg;
      initial_placement;
      final_placement;
      n_instructions = Gdg.size gdg;
      n_swaps_inserted;
      n_merges;
      compile_time;
      diagnostics =
        (match ctx with
         | Some acc ->
           List.stable_sort Qlint.Diagnostic.compare (collected_diags acc)
         | None -> []);
      trace = Qobs.Trace.last_span oc.obs;
      certificate = Option.map Qcert.Pipeline.finish cctx }
  in
  if Qobs.Metrics.enabled oc.metrics then
    Qobs.Metrics.with_ambient oc.metrics body
  else body ()

let compile_all ?config ?check ?certify ?obs ?metrics circuit =
  List.map
    (fun strategy ->
      (strategy, compile ?config ?check ?certify ?obs ?metrics ~strategy circuit))
    Strategy.all

let blocks result =
  List.map (fun (i : Inst.t) -> i.Inst.gates) (Gdg.insts result.gdg)

let speedup ~baseline result =
  if result.latency <= 0. then infinity else baseline.latency /. result.latency
