(** The one pipeline driver.

    Interprets a declarative pass sequence ({!Strategy.passes}) over the
    typed {!Ir} artifacts, executing each pass's hooks — span, notes,
    lint checkpoint, certification boundary — in the fixed order the
    hand-written pipelines used. Composition is checked dynamically via
    the stage witnesses; a sequence whose stages do not line up raises
    {!Stage_mismatch} on the first bad edge.

    {2 Stage cache}

    With a {!Cache.t}, artifacts are memoized under provenance-chained
    content keys: the root key digests the backend and source circuit,
    and each pass extends the chain with its fingerprint. Strategies
    sharing a prefix of passes (every strategy lowers the same way; ISA
    and aggregation also share placement and routing) then compute that
    prefix once per circuit — [compile_all], [compare] and the pipeline
    bench fork per strategy from the shared artifacts. A hit skips only
    the work: notes, lint checks and certification still run, so
    results, diagnostics and certificates are identical with and without
    sharing. Cache-resident artifacts are never mutated — the in-place
    passes ([detect], [aggregate]) receive a private copy of the graph
    when sharing is on ({!Ir.clone}).

    Hits and misses are counted on the cache and ticked as the
    [pipeline.cache.hit] / [pipeline.cache.miss] metrics. The probe is
    one atomic critical section (lookup + counter bump together), so
    [hits + misses] always equals the number of probes, even with
    compiles racing on a domain pool. The cache is also {e compute-once}
    under concurrency: the first prober to miss a key claims it, and
    probers arriving while the artifact is in flight park on the cache's
    condition variable and receive the shared artifact when it lands
    (counted as hits) — so the hit/miss totals for a fixed job set are
    deterministic at any pool size. The root key digests the canonical
    QASM serialization of the source (not its [Marshal] bytes, which are
    sharing-sensitive), so structurally equal circuits share keys. *)

exception
  Stage_mismatch of { pass : string; expected : string; got : string }

module Cache : sig
  type t

  val create : unit -> t
  val hits : t -> int
  val misses : t -> int

  val length : t -> int
  (** Distinct artifacts currently held. *)

  val clear : t -> unit
end

val validate : Pass.packed list -> unit
(** Check that consecutive stages line up (and that the sequence starts
    from a source circuit) without running anything. Raises
    {!Stage_mismatch} on the first bad edge. *)

val run :
  ctx:Pass.ctx -> ?cache:Cache.t -> Pass.packed list -> Qgate.Circuit.t ->
  Ir.costed
(** Run the sequence on a source circuit. The last pass must produce a
    routed {!Ir.scheduled} artifact (raises {!Stage_mismatch} otherwise,
    [Invalid_argument] if it was never routed). *)
