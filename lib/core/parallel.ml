(* A fixed-size Domain-pool executor: [map ~jobs f arr] runs [f] over
   the array on [min jobs (Array.length arr)] fresh domains pulling job
   indices from one atomic counter, and slots each result by its job
   index — so the output (and anything else merged in index order, like
   per-job metrics shards) is byte-identical at any [~jobs].

   No Domainslib: the pool lives and dies inside one [map] call, so
   there is no module-toplevel state here for domlint to classify, and
   the only cross-domain writes are the atomic counters, the per-index
   result slots (distinct indices — race-free under the OCaml memory
   model) and whatever [f] itself shares behind locks. *)

(* the first failure wins, lowest job index first, so the caller sees a
   deterministic exception when several workers fail in one run;
   [init] failures are recorded as index -1 and outrank any job *)
let note_failure failure i e bt =
  let rec cas () =
    let cur = Atomic.get failure in
    let better =
      match cur with None -> true | Some (j, _, _) -> i < j
    in
    if better && not (Atomic.compare_and_set failure cur (Some (i, e, bt)))
    then cas ()
  in
  cas ()

let map ?(jobs = 1) ?(init = fun () -> ()) f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if jobs <= 1 then begin
    (* the sequential driver is the pool of one, caller's domain: [init]
       still runs (once) so a [~jobs:1] run sees the same cold start as
       every pooled worker *)
    init ();
    Array.mapi f arr
  end
  else begin
    let workers = min jobs n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      match init () with
      | exception e -> note_failure failure (-1) e (Printexc.get_raw_backtrace ())
      | () ->
        let rec loop () =
          (* stop pulling new jobs once any worker has failed: the run's
             result is already decided, finish draining cheaply *)
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f i arr.(i) with
               | b -> results.(i) <- Some b
               | exception e ->
                 note_failure failure i e (Printexc.get_raw_backtrace ()));
              loop ()
            end
          end
        in
        loop ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    (* join everything before deciding the outcome: on failure no worker
       is left orphaned, and on success the joins are the happens-before
       edges that make every result slot visible to the caller *)
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function Some b -> b | None -> assert false (* all slots filled *))
        results
  end
