(** Result formatting and aggregate statistics for the experiment
    harness. *)

val geometric_mean : float list -> float
(** Raises [Invalid_argument] on an empty list or non-positive entries. *)

val normalized_latency : baseline:Compiler.result -> Compiler.result -> float
(** this latency / baseline latency (the y-axis of Fig. 9). *)

val result_to_json : Compiler.result -> Qobs.Json.t
(** Headline figures of one compilation (latency, instruction/swap/merge
    counts, wall compile time, utilization) as a flat JSON object. *)

val speedup_table_to_json :
  rows:(string * (Strategy.t * Compiler.result) list) list -> Qobs.Json.t
(** The machine-readable twin of {!print_speedup_table}: per benchmark,
    every strategy's {!result_to_json} plus [normalized_latency] against
    the row's ISA baseline (schema [qcc.speedup-table/1]). *)

val print_speedup_table :
  header:string ->
  ?json:string ->
  (string * (Strategy.t * Compiler.result) list) list ->
  unit
(** One row per benchmark: normalized latency per strategy (ISA = 1.0)
    plus a geometric-mean footer, matching Fig. 9's layout. [?json]
    additionally writes {!speedup_table_to_json} to that path. *)

val print_kv : (string * string) list -> unit
(** Aligned key/value lines. *)
