type t = {
  device : Qcontrol.Device.t;
  topology : Qmap.Topology.t option;
  width_limit : int;
}

let default =
  { device = Qcontrol.Device.default; topology = None; width_limit = 10 }

let make ?(device = Qcontrol.Device.default) ?topology ?(width_limit = 10) () =
  { device; topology; width_limit }

let topology_for t circuit =
  match t.topology with
  | Some tp -> tp
  | None -> Qmap.Topology.grid_for (Qgate.Circuit.n_qubits circuit)

let gate_cost t g = Qcontrol.Latency_model.gate_time t.device g

let serial_cost t gates =
  Qcontrol.Latency_model.isa_critical_path t.device gates

let block_cost t gates =
  Qcontrol.Latency_model.block_time ~width_limit:t.width_limit t.device gates

(* Device, topology and the width limit are plain data (variants, floats
   and ints — no closures), so a Marshal image digests them faithfully. *)
let fingerprint t =
  Digest.string (Marshal.to_string (t.device, t.topology, t.width_limit) [])
