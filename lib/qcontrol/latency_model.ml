open Qnum
module Gate = Qgate.Gate

(* All three cost memos (per-gate-kind, per-segment-shape, per-block-
   shape) live in one per-domain slot: every entry is a pure function
   of its key, so per-domain re-warming keeps costs deterministic while
   no write can race. *)
type memo_state = {
  gate : (Device.t * Gate.kind, float) Hashtbl.t;
  segment : (Device.t * string, float) Hashtbl.t;
  block : (Device.t * int * string, float) Hashtbl.t;
}

let memos =
  Qobs.Domain_safe.Local.make (fun () ->
      { gate = Hashtbl.create 64;
        segment = Hashtbl.create 1024;
        block = Hashtbl.create 256 })
  [@@domain_safety domain_local]

(* idempotent; clears the calling domain's tables only *)
let reset_memos () =
  let m = Qobs.Domain_safe.Local.get memos in
  Hashtbl.reset m.gate;
  Hashtbl.reset m.segment;
  Hashtbl.reset m.block

let one_qubit_unitary_time device u =
  if Cmat.rows u <> 2 || Cmat.cols u <> 2 then
    invalid_arg "Latency_model.one_qubit_unitary_time: expected 2x2";
  let half_trace = Cx.abs (Cmat.trace u) /. 2. in
  let theta = 2. *. Float.acos (Float.min 1. half_trace) in
  Device.one_qubit_rotation_time device theta

(* factor a product-state 4x4 unitary U = A ⊗ B (up to phase) *)
let local_factors u =
  let block i j =
    Cmat.init 2 2 (fun r s -> Cmat.get u ((2 * i) + r) ((2 * j) + s))
  in
  (* pick the block with the largest norm as a reference copy of B *)
  let best = ref (0, 0) and best_norm = ref (-1.) in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let n = Cmat.frobenius_norm (block i j) in
      if n > !best_norm then begin
        best_norm := n;
        best := (i, j)
      end
    done
  done;
  let bi, bj = !best in
  let b_raw = block bi bj in
  (* unitarize: B = b_raw / sqrt(det) has unit determinant up to phase *)
  let scale = Cx.sqrt (Cmat.det b_raw) in
  let b = Cmat.scale (Cx.inv scale) b_raw in
  let a =
    Cmat.init 2 2 (fun i j ->
        Cx.scale 0.5 (Cmat.trace (Cmat.mul (Cmat.dagger b) (block i j))))
  in
  (a, b)

let two_qubit_unitary_time device u =
  let c = Weyl.coordinates u in
  let t_int = Weyl.interaction_time device c in
  if t_int <= 1e-9 then begin
    (* purely local content: both 1-qubit factors run in parallel *)
    let a, b = local_factors u in
    Float.max
      (one_qubit_unitary_time device a)
      (one_qubit_unitary_time device b)
  end
  else begin
    let half = Device.half_layer_time device in
    (* diagonal blocks pay basis-change conjugation on both sides; a block
       that is already a native canonical interaction needs no local
       layers; anything else pays one merged local layer (neighboring
       1-qubit gates are absorbed into it), anchoring CNOT at 47.1 ns *)
    let layers =
      if Cmat.is_diagonal ~eps:1e-9 u then
        match device.Device.interaction with Device.Zz -> 0. | _ -> 2.
      else if Cmat.equal_up_to_phase ~eps:1e-7 u (Weyl.canonical_gate c) then
        match device.Device.interaction with
        | Device.Xy -> 0.
        | Device.Zz -> 2.
        | Device.Heisenberg -> 1.
      else 1.
    in
    t_int +. (layers *. half)
  end

let rec gate_time device g =
  Qobs.Metrics.tick "latency_model.gate_queries";
  let kind = g.Gate.kind in
  let gate_memo = (Qobs.Domain_safe.Local.get memos).gate in
  match Hashtbl.find_opt gate_memo (device, kind) with
  | Some t -> t
  | None ->
    let t1 theta = Device.one_qubit_rotation_time device theta in
    let half = Device.half_layer_time device in
    let two_q extra_layers =
      let u = Qgate.Unitary.of_kind kind in
      let t_int = Weyl.interaction_time device (Weyl.coordinates u) in
      t_int +. (extra_layers *. half)
    in
    (* local-layer counts per architecture: a gate aligned with the native
       coupling direction needs none (iSWAP on XY, CPhase on ZZ, SWAP on
       Heisenberg); basis-changed realizations pay one or two pi/2 layers,
       calibrated on XY against the paper's Table 1 *)
    let two_q_layers =
      match (device.Device.interaction, kind) with
      | Device.Xy, (Gate.Cnot | Gate.Cz | Gate.Cphase _) -> 1.
      | Device.Xy, (Gate.Swap | Gate.Iswap | Gate.Sqrt_iswap) -> 0.
      | Device.Zz, (Gate.Cz | Gate.Cphase _ | Gate.Rzz _) -> 0.
      | Device.Zz, Gate.Cnot -> 1.
      | Device.Zz, (Gate.Swap | Gate.Iswap | Gate.Sqrt_iswap) -> 1.
      | Device.Heisenberg, (Gate.Swap | Gate.Sqrt_iswap) -> 0.
      | Device.Heisenberg, (Gate.Cnot | Gate.Cz | Gate.Cphase _ | Gate.Iswap)
        ->
        1.
      | _, (Gate.Rxx _ | Gate.Ryy _ | Gate.Rzz _) -> 2.
      | _, _ -> 1.
    in
    let t =
      match kind with
      | Gate.I -> 0.
      | Gate.X | Gate.Y | Gate.Z | Gate.H -> t1 Float.pi
      | Gate.S | Gate.Sdg -> t1 (Float.pi /. 2.)
      | Gate.T | Gate.Tdg -> t1 (Float.pi /. 4.)
      | Gate.Rx theta | Gate.Ry theta | Gate.Rz theta | Gate.Phase theta ->
        t1 theta
      | Gate.Cnot | Gate.Cz | Gate.Cphase _ | Gate.Swap | Gate.Iswap
      | Gate.Sqrt_iswap | Gate.Rxx _ | Gate.Ryy _ | Gate.Rzz _ ->
        two_q two_q_layers
      | Gate.Ccx -> isa_critical_path device (Qgate.Decompose.ccx 0 1 2)
    in
    Hashtbl.replace gate_memo (device, kind) t;
    t

and isa_critical_path device gates =
  let ready : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.fold_left
    (fun acc g ->
      let qs = Gate.qubits g in
      let start =
        List.fold_left
          (fun m q -> Float.max m (Option.value ~default:0. (Hashtbl.find_opt ready q)))
          0. qs
      in
      let finish = start +. gate_time device g in
      List.iter (fun q -> Hashtbl.replace ready q finish) qs;
      Float.max acc finish)
    0. gates

(* split a block into maximal runs confined to one qubit (pair); a run is
   closed as soon as one of its qubits is coupled elsewhere *)
let segments gates =
  let owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let segs : (int, Gate.t list * int list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let next_id = ref 0 in
  let close_segment id =
    let _, support = Hashtbl.find segs id in
    List.iter
      (fun q ->
        match Hashtbl.find_opt owner q with
        | Some o when o = id -> Hashtbl.remove owner q
        | Some _ | None -> ())
      support
  in
  let new_segment g qs =
    let id = !next_id in
    incr next_id;
    Hashtbl.replace segs id ([ g ], qs);
    order := id :: !order;
    List.iter (fun q -> Hashtbl.replace owner q id) qs;
    id
  in
  List.iter
    (fun g ->
      let qs = Gate.qubits g in
      let owners = List.sort_uniq compare (List.filter_map (Hashtbl.find_opt owner) qs) in
      match owners with
      | [] ->
        if List.length qs <= 2 then ignore (new_segment g qs)
        else begin
          (* wider-than-pair gate: its own segment, closed immediately *)
          let id = new_segment g qs in
          close_segment id
        end
      | [ id ] ->
        let seg_gates, support = Hashtbl.find segs id in
        let union = List.sort_uniq compare (qs @ support) in
        if List.length union <= 2 && List.length qs <= 2 then begin
          Hashtbl.replace segs id (g :: seg_gates, union);
          List.iter (fun q -> Hashtbl.replace owner q id) qs
        end
        else begin
          close_segment id;
          let nid = new_segment g qs in
          if List.length qs > 2 then close_segment nid
        end
      | _ :: _ :: _ ->
        let union_support =
          List.concat_map (fun id -> snd (Hashtbl.find segs id)) owners
        in
        let union = List.sort_uniq compare (qs @ union_support) in
        let all_gates =
          List.concat_map (fun id -> List.rev (fst (Hashtbl.find segs id))) owners
        in
        if List.length union <= 2 then begin
          (* merge (only possible when joining two 1-qubit runs) *)
          List.iter close_segment owners;
          List.iter (fun id -> Hashtbl.remove segs id) owners;
          order := List.filter (fun id -> not (List.mem id owners)) !order;
          let id = !next_id in
          incr next_id;
          Hashtbl.replace segs id (g :: List.rev all_gates, union);
          order := id :: !order;
          List.iter (fun q -> Hashtbl.replace owner q id) union
        end
        else begin
          List.iter close_segment owners;
          let nid = new_segment g qs in
          if List.length qs > 2 then close_segment nid
        end)
    gates;
  List.rev_map
    (fun id -> List.rev (fst (Hashtbl.find segs id)))
    !order

(* calibrated against the paper's Fig. 10: serialized applications keep
   gaining until the 10-qubit control limit, with critical-path
   instructions optimized to ~0.2-0.3 of their gate-based time *)
let width_discount k = Float.max 0.25 (1.4 /. float_of_int k)

(* order-preserving relabelling of a block onto 0..k-1, serialized as a
   content-addressed key: every cost below depends only on the relative
   qubit pattern, so congruent blocks on different wires share entries.
   Float parameters are keyed by their exact bit patterns via Marshal. *)
let block_shape support gates =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  let shape =
    List.map
      (fun g ->
        (g.Gate.kind, List.map (Hashtbl.find local) (Gate.qubits g)))
      gates
  in
  Marshal.to_string shape []

(* irreducible time of a <=2-qubit segment: the Weyl interaction time of
   its composed unitary (2q) or the geodesic rotation time (1q) — what no
   pulse optimizer can undercut on that segment's qubits. Memoized by
   relabelled shape ([memos].segment): the Weyl decomposition is by far
   the most expensive step of a block-cost query, and segment shapes
   recur constantly. *)
let segment_irreducible device seg =
  let segment_memo = (Qobs.Domain_safe.Local.get memos).segment in
  let support = List.sort_uniq compare (List.concat_map Gate.qubits seg) in
  let key = (device, block_shape support seg) in
  match Hashtbl.find_opt segment_memo key with
  | Some t -> t
  | None ->
    let t =
      match support with
      | [ _ ] ->
        let _, u = Qgate.Unitary.on_support seg in
        one_qubit_unitary_time device u
      | [ _; _ ] ->
        let _, u = Qgate.Unitary.on_support seg in
        Weyl.interaction_time device (Weyl.coordinates u)
      | _ -> isa_critical_path device seg
    in
    Hashtbl.replace segment_memo key t;
    t

(* whole-block costs, the analogue of the gate memo for aggregates,
   under the same relabelled {!block_shape} key ([memos].block) *)
let rec block_time ?(width_limit = 10) device gates =
  Qobs.Metrics.tick "latency_model.block_queries";
  if gates = [] then invalid_arg "Latency_model.block_time: empty block";
  let block_memo = (Qobs.Domain_safe.Local.get memos).block in
  let support = List.sort_uniq compare (List.concat_map Gate.qubits gates) in
  let key = (device, width_limit, block_shape support gates) in
  match Hashtbl.find_opt block_memo key with
  | Some t ->
    Qobs.Metrics.tick "latency_model.block_memo_hits";
    t
  | None ->
    let t = block_time_uncached ~width_limit device gates support in
    Hashtbl.replace block_memo key t;
    t

and block_time_uncached ~width_limit device gates support =
  let k = List.length support in
  let isa = isa_critical_path device gates in
  if k > width_limit then isa
  else if k = 1 then begin
    let _, u = Qgate.Unitary.on_support gates in
    Float.min isa (one_qubit_unitary_time device u)
  end
  else if k = 2 then begin
    let _, u = Qgate.Unitary.on_support gates in
    Float.min isa (two_qubit_unitary_time device u)
  end
  else begin
    let segs = segments gates in
    let costed =
      List.map (fun seg -> (seg, block_time ~width_limit device seg)) segs
    in
    (* makespan over segments with per-qubit availability *)
    let ready : (int, float) Hashtbl.t = Hashtbl.create 16 in
    let makespan =
      List.fold_left
        (fun acc (seg, cost) ->
          let qs =
            List.sort_uniq compare (List.concat_map Gate.qubits seg)
          in
          let start =
            List.fold_left
              (fun m q ->
                Float.max m (Option.value ~default:0. (Hashtbl.find_opt ready q)))
              0. qs
          in
          let finish = start +. cost in
          List.iter (fun q -> Hashtbl.replace ready q finish) qs;
          Float.max acc finish)
        0. costed
    in
    let hardest = List.fold_left (fun m (_, c) -> Float.max m c) 0. costed in
    (* per-qubit busy bound: a qubit cannot spend less than the sum of the
       irreducible interaction times of its segments — this keeps the
       width discount from crediting already-parallel content (the
       paper's Fig. 10 saturation for parallel applications) *)
    let busy : (int, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (seg, cost) ->
        (* a segment's share of its qubits' time cannot drop below its
           interaction content, nor below 3/4 of its own optimized pulse
           (cross-segment co-optimization recovers at most the local-layer
           slack, calibrated against the paper's Fig. 10 saturation) *)
        let share =
          Float.max (segment_irreducible device seg) (0.75 *. cost)
        in
        List.iter
          (fun q ->
            let prev = Option.value ~default:0. (Hashtbl.find_opt busy q) in
            Hashtbl.replace busy q (prev +. share))
          (List.sort_uniq compare (List.concat_map Gate.qubits seg)))
      costed;
    let busiest = Hashtbl.fold (fun _ v acc -> Float.max v acc) busy 0. in
    Float.min isa
      (Float.max busiest (Float.max hardest (width_discount k *. makespan)))
  end
