(** Pulse-latency model — the compiler's stand-in for the optimal control
    unit.

    The compiler loop only consumes the {e duration} of the optimized
    pulse for each candidate instruction; this module predicts it
    analytically (see DESIGN.md §4 for derivation and calibration):

    - 1-qubit content costs its geodesic rotation angle at full drive.
    - 2-qubit content costs the time-optimal XY interaction time derived
      from the Weyl coordinates, plus single-qubit layer overhead
      (π/2-layer units; diagonal blocks pay two basis-change layers).
    - Wider aggregates cost a width-discounted internal critical path over
      locally-optimized segments, floored by the hardest segment — larger
      aggregates optimize better (paper §4.3, Fig. 10), saturating at the
      optimal-control width limit.

    Anchors vs the paper's GRAPE-measured Table 1: CNOT 47.12 (47.1),
    Rx(1.26) 6.3 (6.1), H 15.7 (13.7), SWAP 58.9 (50.1),
    ZZ(5.67) block 31.0 (31.4). *)

val gate_time : Device.t -> Qgate.Gate.t -> float
(** Pulse time of a single ISA gate (the gate-based baseline's cost).
    [Ccx] is costed as the critical path of its standard decomposition. *)

val one_qubit_unitary_time : Device.t -> Qnum.Cmat.t -> float
(** Geodesic rotation time of an arbitrary 2×2 unitary (phase ignored). *)

val two_qubit_unitary_time : Device.t -> Qnum.Cmat.t -> float
(** Interaction time from Weyl coordinates plus local-layer overhead for a
    4×4 unitary. *)

val isa_critical_path : Device.t -> Qgate.Gate.t list -> float
(** Makespan of the gate list at per-gate ISA times, gates occupying
    exactly their qubits — the unoptimized cost of the block. *)

val block_time : ?width_limit:int -> Device.t -> Qgate.Gate.t list -> float
(** Optimized pulse time of an aggregated instruction (its member gates in
    time order). Never exceeds {!isa_critical_path}. [width_limit] (default
    10) is the optimal-control scalability bound: blocks wider than the
    limit fall back to the ISA critical path (the compiler never creates
    them, but the model stays total). Results are memoized per device and
    width limit under the block's relabelled shape (gate kinds, exact
    parameters, relative qubit pattern), so congruent blocks anywhere on
    the register cost one lookup after the first query. Raises
    [Invalid_argument] on an empty block. *)

val segments : Qgate.Gate.t list -> Qgate.Gate.t list list
(** The locally-optimizable segmentation used by {!block_time}: maximal
    runs of gates confined to one qubit pair (or one qubit), split when an
    interleaved gate couples a run's qubit elsewhere. Exposed for tests
    and for the aggregation heuristic. *)

val reset_memos : unit -> unit
(** Clear the calling domain's gate/segment/block cost memos (they are
    per-domain, see [Qobs.Domain_safe.Local]). Idempotent; subsequent
    queries re-warm from cold with identical results. *)
