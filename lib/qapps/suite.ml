type benchmark = {
  name : string;
  application : string;
  purpose : string;
  paper_qubits : int;
  circuit : Qgate.Circuit.t lazy_t;
}

let sqrt_target n =
  (* a perfect square so the oracle marks exactly one root *)
  let root = (1 lsl (n - 1)) + 1 in
  root * root

let all =
  [ { name = "maxcut-line";
      application = "QAOA";
      purpose = "MAXCUT on a linear graph";
      paper_qubits = 20;
      circuit = lazy (Qaoa.circuit (Graphs.line 20)) };
    { name = "maxcut-reg4";
      application = "QAOA";
      purpose = "MAXCUT on a random 4-regular graph";
      paper_qubits = 30;
      circuit = lazy (Qaoa.circuit (Graphs.regular4 ~seed:11 30)) };
    { name = "maxcut-cluster";
      application = "QAOA";
      purpose = "MAXCUT on a cluster graph";
      paper_qubits = 30;
      circuit = lazy (Qaoa.circuit (Graphs.cluster ~seed:12 ~clusters:6 ~size:5)) };
    { name = "ising-n30";
      application = "Ising model";
      purpose = "Find ground state of Ising model";
      paper_qubits = 30;
      circuit = lazy (Ising.circuit 30) };
    { name = "ising-n60";
      application = "Ising model";
      purpose = "Find ground state of Ising model";
      paper_qubits = 60;
      circuit = lazy (Ising.circuit 60) };
    { name = "sqrt-n3";
      application = "Square root";
      purpose = "Grover algorithm for polynomial search";
      paper_qubits = 17;
      circuit = lazy (Sqrt_poly.build ~n:3 ~target:(sqrt_target 3) ()).Sqrt_poly.circuit };
    { name = "sqrt-n4";
      application = "Square root";
      purpose = "Grover algorithm for polynomial search";
      paper_qubits = 30;
      circuit = lazy (Sqrt_poly.build ~n:4 ~target:(sqrt_target 4) ()).Sqrt_poly.circuit };
    { name = "sqrt-n5";
      application = "Square root";
      purpose = "Grover algorithm for polynomial search";
      paper_qubits = 47;
      circuit = lazy (Sqrt_poly.build ~n:5 ~target:(sqrt_target 5) ()).Sqrt_poly.circuit };
    { name = "uccsd-n4";
      application = "UCCSD";
      purpose = "UCCSD ansatz for VQE";
      paper_qubits = 4;
      circuit = lazy (Uccsd.circuit 4) };
    { name = "uccsd-n6";
      application = "UCCSD";
      purpose = "UCCSD ansatz for VQE";
      paper_qubits = 6;
      circuit = lazy (Uccsd.circuit 6) } ]
  [@@domain_safety
    unsafe
      "shared lazy circuits: concurrent Lazy.force raises RacyLazy -- force \
       on a single domain (e.g. before Domain.spawn); the suspensions are \
       pure, only the force itself races"]

let fig9 = List.filter (fun b -> b.name <> "ising-n60") all

let extended =
  all
  @ [ { name = "qft-n12";
        application = "QFT";
        purpose = "Quantum Fourier transform (Sec. 6.1's low-commutativity example)";
        paper_qubits = 12;
        circuit = lazy (Qft.circuit 12) };
      { name = "qft-n20";
        application = "QFT";
        purpose = "Quantum Fourier transform (Sec. 6.1's low-commutativity example)";
        paper_qubits = 20;
        circuit = lazy (Qft.circuit 20) };
      { name = "qaoa-line-20";
        application = "QAOA";
        purpose = "QAOA on a 20-vertex line (maxcut-line under its Fig. 4 name)";
        paper_qubits = 20;
        circuit = lazy (Qaoa.circuit (Graphs.line 20)) } ]
  [@@domain_safety
    unsafe
      "shared lazy circuits: concurrent Lazy.force raises RacyLazy -- force \
       on a single domain (e.g. before Domain.spawn); the suspensions are \
       pure, only the force itself races"]

let find name = List.find (fun b -> b.name = name) extended

let lowered b = Qgate.Decompose.to_isa (Lazy.force b.circuit)
