(** The action space of instruction aggregation (paper §4.1).

    Two instructions may aggregate when:
    + they overlap (share at least one qubit);
    + on every shared qubit they are either in the same commutation group
      (siblings in the quantum GDG) or in immediate parent–child chain
      position; and
    + the pulses can be made contiguous — with operator-level commutation
      groups this holds whenever condition 2 does, because any group
      member can be scheduled last (first) in its group.

    The aggregate's width must also stay within the optimal-control unit's
    limit. *)

val is_schedulable : Qgdg.Gdg.t -> Qgdg.Comm_group.t -> int -> int -> bool
(** [is_schedulable g groups a b] — may [a]'s block absorb [b] (with [a]'s
    members first)? [b] must not precede [a] on any shared qubit. *)

val merged_width : Qgdg.Gdg.t -> int -> int -> int

val positions : Qgdg.Gdg.t -> (int * int, int) Hashtbl.t
(** One pass over all chains: (qubit, id) → position in that qubit's
    chain. The incremental aggregator maintains this table across merges
    instead of rebuilding it per sweep. *)

val is_schedulable_tables :
  Qgdg.Comm_group.t ->
  pos:(int * int, int) Hashtbl.t ->
  succ:(int * int, int) Hashtbl.t ->
  Qgdg.Inst.t ->
  Qgdg.Inst.t ->
  bool
(** {!is_schedulable} against caller-maintained chain tables ([pos] as
    from {!positions}, [succ] keyed (id, qubit) as from
    {!Qgdg.Gdg.neighbor_tables}): O(shared qubits) lookups per check
    instead of O(chain) walks. Equivalent when the tables are current. *)

val candidates_of :
  Qgdg.Gdg.t ->
  Qgdg.Comm_group.t ->
  width_limit:int ->
  pos:(int * int, int) Hashtbl.t ->
  succ:(int * int, int) Hashtbl.t ->
  Qgdg.Inst.t ->
  (int * int) list
(** The schedulable pairs whose {e earlier} member is the given node:
    its immediate chain children and its later same-group siblings,
    width-filtered. {!candidates} is the union over all nodes; the
    incremental aggregator calls this for just the nodes a merge
    affected. *)

val candidates :
  Qgdg.Gdg.t -> Qgdg.Comm_group.t -> width_limit:int -> (int * int) list
(** All schedulable (a, b) pairs within the width limit: immediate
    children and later same-group siblings of each node. *)
