module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module Comm_group = Qgdg.Comm_group

(* position of [id] in the chain of qubit [q]; raises Not_found *)
let chain_pos g q id =
  let rec walk k = function
    | [] -> raise Not_found
    | (i : Inst.t) :: rest -> if i.Inst.id = id then k else walk (k + 1) rest
  in
  walk 0 (Gdg.chain g q)

let is_schedulable g groups a b =
  a <> b && Gdg.mem g a && Gdg.mem g b
  &&
  let ia = Gdg.find g a and ib = Gdg.find g b in
  let common = Inst.common_qubits ia ib in
  common <> []
  && List.for_all
       (fun q ->
         let pa = chain_pos g q a and pb = chain_pos g q b in
         pa < pb
         && (Comm_group.same_group groups ~qubit:q a b
             ||
             match Gdg.pred_on g b ~qubit:q with
             | Some p -> p.Inst.id = a
             | None -> false))
       common

let merged_width g a b =
  let ia = Gdg.find g a and ib = Gdg.find g b in
  List.length (List.sort_uniq compare (ia.Inst.qubits @ ib.Inst.qubits))

let positions g =
  let pos : (int * int, int) Hashtbl.t = Hashtbl.create (4 * Gdg.size g) in
  for q = 0 to Gdg.n_qubits g - 1 do
    List.iteri (fun k id -> Hashtbl.replace pos (q, id) k) (Gdg.chain_ids g q)
  done;
  pos

(* is_schedulable against caller-maintained chain tables: [pos] maps
   (qubit, id) to chain position, [succ] maps (id, qubit) to the chain
   successor. Equivalent to {!is_schedulable} when the tables are current
   (chain predecessor-of-b-is-a ⟺ chain successor-of-a-is-b), but each
   check is O(common) table lookups instead of O(chain) walks. *)
let is_schedulable_tables groups ~pos ~succ (ia : Inst.t) (ib : Inst.t) =
  let a = ia.Inst.id and b = ib.Inst.id in
  a <> b
  &&
  let common = Inst.common_qubits ia ib in
  common <> []
  && List.for_all
       (fun q ->
         Hashtbl.find pos (q, a) < Hashtbl.find pos (q, b)
         && (Comm_group.same_group groups ~qubit:q a b
             || Hashtbl.find_opt succ (a, q) = Some b))
       common

let candidates_of g groups ~width_limit ~pos ~succ (ia : Inst.t) =
  let a = ia.Inst.id in
  let later_partners =
    let children =
      List.filter_map (fun q -> Hashtbl.find_opt succ (a, q)) ia.Inst.qubits
    in
    let siblings =
      List.concat_map
        (fun q ->
          match
            List.find_opt (List.mem a) (Comm_group.groups_on groups q)
          with
          | None -> []
          | Some group ->
            let pa = Hashtbl.find pos (q, a) in
            List.filter (fun id -> Hashtbl.find pos (q, id) > pa) group)
        ia.Inst.qubits
    in
    List.sort_uniq compare (children @ siblings)
  in
  List.filter_map
    (fun b ->
      if b = a then None
      else
        let ib = Gdg.find g b in
        let width =
          List.length
            (List.sort_uniq compare (ia.Inst.qubits @ ib.Inst.qubits))
        in
        if width <= width_limit && is_schedulable_tables groups ~pos ~succ ia ib
        then Some (a, b)
        else None)
    later_partners

let candidates g groups ~width_limit =
  (* one pass over all chains precomputes positions and successor links so
     per-node work is O(degree), not O(chain length) *)
  let pos = positions g in
  let _, succ = Gdg.neighbor_tables g in
  let acc = ref [] in
  Gdg.iter_insts g (fun ia ->
      acc := candidates_of g groups ~width_limit ~pos ~succ ia @ !acc);
  List.sort compare !acc
