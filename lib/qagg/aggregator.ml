module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module Comm_group = Qgdg.Comm_group

type stats = {
  merges : int;
  rounds : int;
  initial_makespan : float;
  final_makespan : float;
}

type slack = {
  start : (int, float) Hashtbl.t;
  finish : (int, float) Hashtbl.t;
  latest_start : (int, float) Hashtbl.t;
  pred : (int * int, int) Hashtbl.t;
  succ : (int * int, int) Hashtbl.t;
  makespan : float;
}

(* one edge pass + one Kahn pass computes the topological order, the ASAP
   times, the makespan and the ALAP deadlines; called after every merge *)
let compute_slack g =
  let pred, succ = Gdg.neighbor_tables g in
  let n = Gdg.size g in
  let start = Hashtbl.create n and finish = Hashtbl.create n in
  let indeg = Hashtbl.create n in
  Gdg.iter_insts g (fun i -> Hashtbl.replace indeg i.Inst.id 0);
  Hashtbl.iter
    (fun _ s -> Hashtbl.replace indeg s (Hashtbl.find indeg s + 1))
    succ;
  let queue = Queue.create () in
  Hashtbl.iter (fun id d -> if d = 0 then Queue.add id queue) indeg;
  let order = ref [] in
  let makespan = ref 0. in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    let inst = Gdg.find g id in
    let s =
      List.fold_left
        (fun acc q ->
          match Hashtbl.find_opt pred (id, q) with
          | None -> acc
          | Some p -> Float.max acc (Hashtbl.find finish p))
        0. inst.Inst.qubits
    in
    let f = s +. inst.Inst.latency in
    Hashtbl.replace start id s;
    Hashtbl.replace finish id f;
    if f > !makespan then makespan := f;
    List.iter
      (fun q ->
        match Hashtbl.find_opt succ (id, q) with
        | None -> ()
        | Some c ->
          let d = Hashtbl.find indeg c - 1 in
          Hashtbl.replace indeg c d;
          if d = 0 then Queue.add c queue)
      inst.Inst.qubits
  done;
  if List.length !order <> n then failwith "Aggregator: cyclic dependence graph";
  let makespan = !makespan in
  let latest_start = Hashtbl.create n in
  List.iter
    (fun id ->
      let inst = Gdg.find g id in
      let latest_finish =
        List.fold_left
          (fun acc q ->
            match Hashtbl.find_opt succ (id, q) with
            | None -> acc
            | Some c -> Float.min acc (Hashtbl.find latest_start c))
          makespan inst.Inst.qubits
      in
      Hashtbl.replace latest_start id (latest_finish -. inst.Inst.latency))
    !order;
  { start; finish; latest_start; pred; succ; makespan }

(* merged block placed at a's start, delayed by b's predecessors on the
   qubits a does not cover; monotonic iff every successor's latest start
   and the makespan still hold under the pessimistic serial latency *)
let monotonic g slack a b ~merged_latency =
  let ia = Gdg.find g a and ib = Gdg.find g b in
  let delay =
    List.fold_left
      (fun acc q ->
        if Inst.acts_on ia q then acc
        else
          match Hashtbl.find_opt slack.pred (b, q) with
          | Some p when p <> a -> Float.max acc (Hashtbl.find slack.finish p)
          | Some _ | None -> acc)
      0. ib.Inst.qubits
  in
  let new_start = Float.max (Hashtbl.find slack.start a) delay in
  let new_finish = new_start +. merged_latency in
  let succ_of id qubits =
    List.filter_map (fun q -> Hashtbl.find_opt slack.succ (id, q)) qubits
  in
  let succs =
    List.filter
      (fun c -> c <> a && c <> b)
      (succ_of a ia.Inst.qubits @ succ_of b ib.Inst.qubits)
  in
  new_finish <= slack.makespan +. 1e-9
  && List.for_all
       (fun c -> new_finish <= Hashtbl.find slack.latest_start c +. 1e-9)
       succs

(* the monotonicity bound for a candidate merge: the paper's pessimistic
   serial sum by default, except that absorbing a single 1-qubit gate is
   bounded by the model's prediction — a lone rotation folds into the
   block's local layers, and pricing that is a cheap, reliable
   optimal-control query rather than speculation *)
let merge_bound ~pessimism (ia : Inst.t) (ib : Inst.t) ~predicted =
  let single_one_qubit (i : Inst.t) = Inst.width i = 1 in
  match pessimism with
  | `Model -> predicted
  | `Serial ->
    if single_one_qubit ia || single_one_qubit ib then predicted
    else ia.Inst.latency +. ib.Inst.latency

let run ?(width_limit = 10) ?(max_rounds = 8) ?(pessimism = `Model) ~cost g =
  let initial_makespan = Gdg.makespan g in
  let commute_cache : (int * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let commute (x : Inst.t) (y : Inst.t) =
    let key = (min x.Inst.id y.Inst.id, max x.Inst.id y.Inst.id) in
    match Hashtbl.find_opt commute_cache key with
    | Some v -> v
    | None ->
      let v = Qgdg.Commute.insts x y in
      Hashtbl.replace commute_cache key v;
      v
  in
  let cost_cache : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
  let merged_cost a b =
    match Hashtbl.find_opt cost_cache (a, b) with
    | Some v -> v
    | None ->
      let gates = (Gdg.find g a).Inst.gates @ (Gdg.find g b).Inst.gates in
      let v = cost gates in
      Hashtbl.replace cost_cache (a, b) v;
      v
  in
  let merges = ref 0 and rounds = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !rounds < max_rounds do
    incr rounds;
    let merged_this_round = ref 0 in
    (* inner sweeps: enumerate, then apply best-first with rechecks *)
    let sweep_again = ref true in
    while !sweep_again do
      sweep_again := false;
      let groups = ref (Comm_group.build ~commute g) in
      let slack = ref (compute_slack g) in
      let scored =
        Action.candidates g !groups ~width_limit
        |> List.filter_map (fun (a, b) ->
               Qobs.Metrics.tick "agg.attempted";
               let ia = Gdg.find g a and ib = Gdg.find g b in
               let predicted = merged_cost a b in
               let bound = merge_bound ~pessimism ia ib ~predicted in
               if monotonic g !slack a b ~merged_latency:bound then begin
                 let gain = ia.Inst.latency +. ib.Inst.latency -. predicted in
                 (* neutral-gain growth merges are allowed: they never
                    lengthen the schedule and enable later wide wins *)
                 if gain >= -1e-6 then Some (gain, a, b, predicted) else None
               end
               else begin
                 Qobs.Metrics.tick "agg.vetoed_monotonic";
                 None
               end)
        |> List.sort (fun (ga, a1, b1, _) (gb, a2, b2, _) ->
               match compare gb ga with
               | 0 -> compare (a1, b1) (a2, b2)
               | c -> c)
      in
      List.iter
        (fun (_, a, b, _) ->
          if
            Gdg.mem g a && Gdg.mem g b
            && Action.merged_width g a b <= width_limit
            && Action.is_schedulable g !groups a b
            &&
            let predicted = merged_cost a b in
            let bound =
              merge_bound ~pessimism (Gdg.find g a) (Gdg.find g b) ~predicted
            in
            monotonic g !slack a b ~merged_latency:bound
          then begin
            let predicted = merged_cost a b in
            match Gdg.merge g ~latency:predicted a b with
            | exception Invalid_argument _ -> ()
            | merged ->
              Qobs.Metrics.tick "agg.accepted";
              incr merges;
              incr merged_this_round;
              sweep_again := true;
              Comm_group.refresh ~commute !groups g
                ~qubits:merged.Inst.qubits;
              slack := compute_slack g
          end)
        scored
    done;
    (* optimal-control query: re-cost every block *)
    let recosted = ref false in
    List.iter
      (fun (i : Inst.t) ->
        let fresh = cost i.Inst.gates in
        if Float.abs (fresh -. i.Inst.latency) > 1e-9 then begin
          Gdg.set_latency g i.Inst.id fresh;
          recosted := true
        end)
      (Gdg.insts g);
    if !merged_this_round = 0 && not !recosted then continue_outer := false
  done;
  Qobs.Metrics.tick ~by:!rounds "agg.rounds";
  { merges = !merges;
    rounds = !rounds;
    initial_makespan;
    final_makespan = Gdg.makespan g }
