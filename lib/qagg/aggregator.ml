module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module Comm_group = Qgdg.Comm_group

type stats = {
  merges : int;
  rounds : int;
  initial_makespan : float;
  final_makespan : float;
}

(* Slack tables are flat arrays indexed by node id (the id space is dense:
   initial nodes plus one fresh id per merge, so capacity grows by
   doubling). [nan] marks an id with no live node in the float tables;
   [-1] marks a missing chain neighbour / position in the int tables,
   which are laid out [id * nq + qubit]. Array backing matters because
   62% of merges move the makespan and therefore reseed the full backward
   ALAP pass — that pass is a tight scan here instead of a hashtable
   drain. Every fold below reproduces the fold order of the hashtable
   version it replaced, so the computed floats are bit-identical. *)
type slack = {
  mutable start : float array;
  mutable finish : float array;
  mutable latest_start : float array;
  mutable pred : int array;
  mutable succ : int array;
  mutable pos : int array;  (* position within the qubit's chain *)
  mutable node : Inst.t option array;  (* id -> live instruction *)
  mutable stamp : int array;  (* worklist membership, epoch-tagged *)
  mutable epoch : int;
  nq : int;
  mutable makespan : float;
}

let ensure_capacity s id =
  let cap = Array.length s.start in
  if id >= cap then begin
    let ncap = max (id + 1) (2 * cap) in
    let grow_float a =
      let b = Array.make ncap nan in
      Array.blit a 0 b 0 cap;
      b
    and grow_int a =
      let b = Array.make (ncap * s.nq) (-1) in
      Array.blit a 0 b 0 (cap * s.nq);
      b
    in
    s.start <- grow_float s.start;
    s.finish <- grow_float s.finish;
    s.latest_start <- grow_float s.latest_start;
    s.pred <- grow_int s.pred;
    s.succ <- grow_int s.succ;
    s.pos <- grow_int s.pos;
    let node = Array.make ncap None in
    Array.blit s.node 0 node 0 cap;
    s.node <- node;
    let stamp = Array.make ncap 0 in
    Array.blit s.stamp 0 stamp 0 cap;
    s.stamp <- stamp
  end

(* one chain pass + one Kahn pass computes the topological order, the ASAP
   times, the makespan and the ALAP deadlines; the incremental path below
   maintains the same tables in place so this full pass only runs at
   round boundaries *)
let compute_slack g =
  let nq = Gdg.n_qubits g in
  let cap = Gdg.fresh_id g in
  let start = Array.make cap nan and finish = Array.make cap nan in
  let latest_start = Array.make cap nan in
  let pred = Array.make (cap * nq) (-1)
  and succ = Array.make (cap * nq) (-1)
  and pos = Array.make (cap * nq) (-1) in
  let indeg = Array.make cap 0 in
  for q = 0 to nq - 1 do
    let rec link k = function
      | x :: (y :: _ as rest) ->
        pos.(x * nq + q) <- k;
        succ.(x * nq + q) <- y;
        pred.(y * nq + q) <- x;
        indeg.(y) <- indeg.(y) + 1;
        link (k + 1) rest
      | [ x ] -> pos.(x * nq + q) <- k
      | [] -> ()
    in
    link 0 (Gdg.chain_ids g q)
  done;
  let node = Array.make cap None in
  let queue = Queue.create () in
  Gdg.iter_insts g (fun i ->
      node.(i.Inst.id) <- Some i;
      if indeg.(i.Inst.id) = 0 then Queue.add i.Inst.id queue);
  let order = ref [] in
  let seen = ref 0 in
  let makespan = ref 0. in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr seen;
    let inst = match node.(id) with Some i -> i | None -> assert false in
    let s =
      List.fold_left
        (fun acc q ->
          let p = pred.(id * nq + q) in
          if p < 0 then acc else Float.max acc finish.(p))
        0. inst.Inst.qubits
    in
    let f = s +. inst.Inst.latency in
    start.(id) <- s;
    finish.(id) <- f;
    if f > !makespan then makespan := f;
    List.iter
      (fun q ->
        let c = succ.(id * nq + q) in
        if c >= 0 then begin
          indeg.(c) <- indeg.(c) - 1;
          if indeg.(c) = 0 then Queue.add c queue
        end)
      inst.Inst.qubits
  done;
  if !seen <> Gdg.size g then failwith "Aggregator: cyclic dependence graph";
  let makespan = !makespan in
  List.iter
    (fun id ->
      let inst = match node.(id) with Some i -> i | None -> assert false in
      let latest_finish =
        List.fold_left
          (fun acc q ->
            let c = succ.(id * nq + q) in
            if c < 0 then acc else Float.min acc latest_start.(c))
          makespan inst.Inst.qubits
      in
      latest_start.(id) <- latest_finish -. inst.Inst.latency)
    !order;
  { start; finish; latest_start; pred; succ; pos; node;
    stamp = Array.make cap 0; epoch = 0; nq; makespan }

(* Incremental counterpart of {!compute_slack} after one accepted merge of
   [a] and [b] into [merged]. Only the chains of the merged support
   changed, so the pred/succ/position tables are patched for those chains
   alone, and the ASAP/ALAP times are re-propagated by worklist from the
   affected nodes — each recomputation uses exactly the folds of the full
   pass, and the fixpoint on a DAG is unique, so the resulting tables are
   identical to a from-scratch recomputation (the qcheck suite pins this
   against the retained reference aggregator). [old_chains] are the
   (qubit, chain ids) of the merged support captured before the merge. *)
let update_slack_after_merge g slack ~old_chains ~a ~b (merged : Inst.t) =
  ensure_capacity slack merged.Inst.id;
  let nq = slack.nq in
  (* the merge removed [a] and [b] and added [merged]; every other node
     record is untouched (latencies only change at round boundaries,
     which rebuild the slack wholesale), so the id->instruction cache is
     patched in place *)
  slack.node.(a) <- None;
  slack.node.(b) <- None;
  slack.node.(merged.Inst.id) <- Some merged;
  let node_of x =
    match slack.node.(x) with Some i -> i | None -> assert false
  in
  let new_chains =
    List.map (fun q -> (q, Gdg.chain_ids g q)) merged.Inst.qubits
  in
  (* 1. re-link the affected chains *)
  List.iter
    (fun (q, old_ids) ->
      List.iter
        (fun x ->
          slack.pos.(x * nq + q) <- -1;
          slack.pred.(x * nq + q) <- -1;
          slack.succ.(x * nq + q) <- -1)
        old_ids)
    old_chains;
  List.iter
    (fun (q, ids) ->
      List.iteri (fun k x -> slack.pos.(x * nq + q) <- k) ids;
      let rec link = function
        | x :: (y :: _ as rest) ->
          slack.succ.(x * nq + q) <- y;
          slack.pred.(y * nq + q) <- x;
          link rest
        | _ -> ()
      in
      link ids)
    new_chains;
  List.iter
    (fun x ->
      slack.start.(x) <- nan;
      slack.finish.(x) <- nan;
      slack.latest_start.(x) <- nan)
    [ a; b ];
  (* 2. forward ASAP re-propagation from the affected chains; a missing
     predecessor finish reads as 0 and is corrected when that predecessor
     lands (setting a value always re-pushes its successors) *)
  slack.epoch <- slack.epoch + 1;
  let fep = slack.epoch in
  let queue = Queue.create () in
  let push x =
    if slack.stamp.(x) <> fep then begin
      slack.stamp.(x) <- fep;
      Queue.add x queue
    end
  in
  List.iter (fun (_, ids) -> List.iter push ids) new_chains;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    slack.stamp.(x) <- 0;
    let inst = node_of x in
    let s =
      List.fold_left
        (fun acc q ->
          let p = slack.pred.(x * nq + q) in
          if p < 0 then acc
          else
            let f = slack.finish.(p) in
            Float.max acc (if Float.is_nan f then 0. else f))
        0. inst.Inst.qubits
    in
    let f = s +. inst.Inst.latency in
    if not (slack.start.(x) = s && slack.finish.(x) = f) then begin
      slack.start.(x) <- s;
      slack.finish.(x) <- f;
      List.iter
        (fun q ->
          let c = slack.succ.(x * nq + q) in
          if c >= 0 then push c)
        inst.Inst.qubits
    end
  done;
  (* 3. makespan: a cheap scan of the finish table (merges may shrink it,
     so a running max cannot be maintained); [nan] entries compare false *)
  let mk = ref 0. in
  Array.iter (fun f -> if f > !mk then mk := f) slack.finish;
  let mk = !mk in
  (* 4. backward ALAP re-propagation. Every deadline is anchored on the
     makespan, so when it moved all nodes are reseeded — in decreasing
     ASAP-start order, a reverse-topological order up to zero-latency
     ties, which the correction drain resolves; otherwise only the
     affected chains are reseeded. *)
  slack.epoch <- slack.epoch + 1;
  let bep = slack.epoch in
  let bqueue = Queue.create () in
  let bpush x =
    if slack.stamp.(x) <> bep then begin
      slack.stamp.(x) <- bep;
      Queue.add x bqueue
    end
  in
  if mk <> slack.makespan then begin
    slack.makespan <- mk;
    let n_alive = ref 0 in
    Array.iter (fun s -> if not (Float.is_nan s) then incr n_alive) slack.start;
    let ids = Array.make !n_alive 0 in
    let w = ref 0 in
    Array.iteri
      (fun id s ->
        if not (Float.is_nan s) then begin
          ids.(!w) <- id;
          incr w
        end)
      slack.start;
    Array.sort
      (fun i1 i2 ->
        (* all reseeded starts are live, hence non-nan, so the direct
           float comparisons order exactly like polymorphic compare *)
        let s1 = slack.start.(i1) and s2 = slack.start.(i2) in
        if s2 > s1 then 1
        else if s2 < s1 then -1
        else compare (i2 : int) i1)
      ids;
    Array.iter bpush ids
  end
  else List.iter (fun (_, ids) -> List.iter bpush ids) new_chains;
  while not (Queue.is_empty bqueue) do
    let x = Queue.pop bqueue in
    slack.stamp.(x) <- 0;
    let inst = node_of x in
    let latest_finish =
      List.fold_left
        (fun acc q ->
          let c = slack.succ.(x * nq + q) in
          if c < 0 then acc
          else
            let ls = slack.latest_start.(c) in
            if Float.is_nan ls then acc else Float.min acc ls)
        slack.makespan inst.Inst.qubits
    in
    let ls = latest_finish -. inst.Inst.latency in
    if slack.latest_start.(x) <> ls then begin
      slack.latest_start.(x) <- ls;
      List.iter
        (fun q ->
          let p = slack.pred.(x * nq + q) in
          if p >= 0 then bpush p)
        inst.Inst.qubits
    end
  done

(* merged block placed at a's start, delayed by b's predecessors on the
   qubits a does not cover; monotonic iff every successor's latest start
   and the makespan still hold under the pessimistic serial latency *)
let monotonic g slack a b ~merged_latency =
  let nq = slack.nq in
  let ia = Gdg.find g a and ib = Gdg.find g b in
  let delay =
    List.fold_left
      (fun acc q ->
        if Inst.acts_on ia q then acc
        else
          let p = slack.pred.(b * nq + q) in
          if p >= 0 && p <> a then Float.max acc slack.finish.(p) else acc)
      0. ib.Inst.qubits
  in
  let new_start = Float.max slack.start.(a) delay in
  let new_finish = new_start +. merged_latency in
  let succ_of id qubits =
    List.filter_map
      (fun q ->
        let c = slack.succ.(id * nq + q) in
        if c >= 0 then Some c else None)
      qubits
  in
  let succs =
    List.sort_uniq compare
      (List.filter
         (fun c -> c <> a && c <> b)
         (succ_of a ia.Inst.qubits @ succ_of b ib.Inst.qubits))
  in
  new_finish <= slack.makespan +. 1e-9
  && List.for_all
       (fun c -> new_finish <= slack.latest_start.(c) +. 1e-9)
       succs

(* the monotonicity bound for a candidate merge: the paper's pessimistic
   serial sum by default, except that absorbing a single 1-qubit gate is
   bounded by the model's prediction — a lone rotation folds into the
   block's local layers, and pricing that is a cheap, reliable
   optimal-control query rather than speculation *)
let merge_bound ~pessimism (ia : Inst.t) (ib : Inst.t) ~predicted =
  let single_one_qubit (i : Inst.t) = Inst.width i = 1 in
  match pessimism with
  | `Model -> predicted
  | `Serial ->
    if single_one_qubit ia || single_one_qubit ib then predicted
    else ia.Inst.latency +. ib.Inst.latency

let run ?(width_limit = 10) ?(max_rounds = 8) ?(pessimism = `Model) ~cost g =
  let initial_makespan = Gdg.makespan g in
  (* unordered id pairs packed into one int (ids stay far below 2^31):
     unboxed keys hash and compare without allocation in these innermost
     caches *)
  let pack a b = if a < b then (a lsl 31) lor b else (b lsl 31) lor a in
  let commute_cache : (int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let commute (x : Inst.t) (y : Inst.t) =
    let key = pack x.Inst.id y.Inst.id in
    match Hashtbl.find_opt commute_cache key with
    | Some v -> v
    | None ->
      let v = Qgdg.Commute.insts x y in
      Hashtbl.replace commute_cache key v;
      v
  in
  let cost_cache : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  let merged_cost a b =
    (* normalized key: candidates are always oriented earlier-first on
       every shared chain, so (a, b) and (b, a) are never both queried
       and the min/max normalization (as in commute_cache) cannot alias
       distinct blocks *)
    let key = pack a b in
    match Hashtbl.find_opt cost_cache key with
    | Some v -> v
    | None ->
      let gates = (Gdg.find g a).Inst.gates @ (Gdg.find g b).Inst.gates in
      let v = cost gates in
      Hashtbl.replace cost_cache key v;
      v
  in
  (* persistent state maintained across merges and sweeps: commutation
     groups (refreshed on the merged support, which the qgdg suite pins
     as equivalent to a rebuild), chain positions, slack tables, and the
     candidate universe indexed by shared qubit *)
  let groups = Comm_group.build ~commute g in
  let slack = ref (compute_slack g) in
  let rank id =
    let s = !slack in
    if id < Array.length s.start && not (Float.is_nan s.start.(id)) then
      s.start.(id)
    else neg_infinity
  in
  (* {!Action.is_schedulable_tables} against the array-backed chain
     tables: same per-qubit test, O(shared qubits) array reads *)
  let schedulable (ia : Inst.t) (ib : Inst.t) =
    let s = !slack in
    let nq = s.nq in
    let a = ia.Inst.id and b = ib.Inst.id in
    a <> b
    &&
    let common = Inst.common_qubits ia ib in
    common <> []
    && List.for_all
         (fun q ->
           s.pos.((a * nq) + q) < s.pos.((b * nq) + q)
           && (Comm_group.same_group groups ~qubit:q a b
               || s.succ.((a * nq) + q) = b))
         common
  in
  (* each pair is registered under (q, endpoint) for every qubit its
     endpoints share — its stored common-qubit list makes removal
     possible after an endpoint has been merged away, and the per-node
     registry lets a merge invalidate only the pairs touching the nodes
     whose chain neighbourhood or group actually changed *)
  let universe : (int * int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let reg : (int * int, (int * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  let reg_tbl key =
    match Hashtbl.find_opt reg key with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 8 in
      Hashtbl.replace reg key t;
      t
  in
  let add_pair ((a, b) as p) =
    if not (Hashtbl.mem universe p) then begin
      let common = Inst.common_qubits (Gdg.find g a) (Gdg.find g b) in
      Hashtbl.replace universe p common;
      List.iter
        (fun q ->
          Hashtbl.replace (reg_tbl (q, a)) p ();
          Hashtbl.replace (reg_tbl (q, b)) p ())
        common
    end
  in
  let remove_pair ((a, b) as p) =
    match Hashtbl.find_opt universe p with
    | None -> ()
    | Some common ->
      Hashtbl.remove universe p;
      List.iter
        (fun q ->
          (match Hashtbl.find_opt reg (q, a) with
          | Some t -> Hashtbl.remove t p
          | None -> ());
          match Hashtbl.find_opt reg (q, b) with
          | Some t -> Hashtbl.remove t p
          | None -> ())
        common
  in
  (* per-qubit candidate enumeration: a valid pair shares some qubit on
     which the two members are chain-adjacent or same-group, so walking
     one chain's consecutive pairs plus each group's ordered pairs
     (group lists preserve chain order) generates every candidate whose
     shared qubit this is — the union over qubits is exactly
     {!Action.candidates}, without the per-node group searches *)
  let pair_ok u v =
    Action.merged_width g u v <= width_limit
    && schedulable (Gdg.find g u) (Gdg.find g v)
  in
  let add_candidates_on q =
    let rec consec = function
      | u :: (v :: _ as rest) ->
        if pair_ok u v then add_pair (u, v);
        consec rest
      | _ -> ()
    in
    consec (Gdg.chain_ids g q);
    List.iter
      (fun group ->
        let rec pairs = function
          | [] -> ()
          | u :: rest ->
            List.iter (fun v -> if pair_ok u v then add_pair (u, v)) rest;
            pairs rest
        in
        pairs group)
      (Comm_group.groups_on groups q)
  in
  for q = 0 to Gdg.n_qubits g - 1 do
    add_candidates_on q
  done;
  (* After merging [a] and [b] into [merged], a pair's candidacy can flip
     only through a changed per-qubit certificate — same-group membership
     or chain adjacency on a shared qubit — and both are confined to a
     window around the splice. Groups outside the structurally-unchanged
     prefix/suffix of the old vs. new group lists ("middle" groups) hold
     every node whose group membership moved (equal-index ⟺ same-group
     survives an index shift, so untouched groups certify unchanged
     membership even when their positions slide); adjacency changes only
     at [merged]'s position and where [a]/[b] left their chains. The
     union of those nodes is the changed set: pairs registered under
     (q, changed node) are dropped, then each changed node re-proposes
     its chain-neighbour pairs and its current-group pairs, which covers
     every certificate a dropped-or-new candidate could hold on q.
     Positions only shift uniformly past the splice, so relative chain
     order — the remaining ingredient of candidacy — never changes for
     surviving pairs. *)
  let update_universe_after_merge ~a ~b (merged : Inst.t) ~old_groups
      ~old_neighbors =
    let s = !slack in
    let nq = s.nq in
    List.iter
      (fun q ->
        let old_gs = List.assoc q old_groups in
        let new_gs = Comm_group.groups_on groups q in
        let rec strip xs ys =
          match (xs, ys) with
          | x :: xs', y :: ys' when x = y -> strip xs' ys'
          | _ -> (xs, ys)
        in
        let mid_old, mid_new =
          let xs, ys = strip old_gs new_gs in
          let rx, ry = strip (List.rev xs) (List.rev ys) in
          (List.rev rx, List.rev ry)
        in
        let changed =
          List.sort_uniq compare
            (List.filter
               (fun x -> x >= 0)
               (a :: b :: merged.Inst.id
                :: s.pred.((merged.Inst.id * nq) + q)
                :: s.succ.((merged.Inst.id * nq) + q)
                :: (List.assoc q old_neighbors
                   @ List.concat mid_old @ List.concat mid_new)))
        in
        List.iter
          (fun x ->
            match Hashtbl.find_opt reg (q, x) with
            | None -> ()
            | Some pairs ->
              Hashtbl.fold (fun p () acc -> p :: acc) pairs []
              |> List.iter remove_pair)
          changed;
        List.iter
          (fun x ->
            if Gdg.mem g x then begin
              let p = s.pred.((x * nq) + q) and c = s.succ.((x * nq) + q) in
              if p >= 0 && pair_ok p x then add_pair (p, x);
              if c >= 0 && pair_ok x c then add_pair (x, c);
              match Comm_group.group_index groups ~qubit:q x with
              | exception Not_found -> ()
              | gi ->
                let group = List.nth (Comm_group.groups_on groups q) gi in
                (* group lists preserve chain order: members before [x]
                   are the earlier element of their pair *)
                let rec before = function
                  | [] -> ()
                  | w :: rest ->
                    if w = x then after rest
                    else begin
                      if pair_ok w x then add_pair (w, x);
                      before rest
                    end
                and after = function
                  | [] -> ()
                  | w :: rest ->
                    if pair_ok x w then add_pair (x, w);
                    after rest
                in
                before group
            end)
          changed)
      merged.Inst.qubits
  in
  let merges = ref 0 and rounds = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !rounds < max_rounds do
    incr rounds;
    let merged_this_round = ref 0 in
    (* inner sweeps: score the maintained universe, then apply best-first
       with rechecks against the live tables *)
    let sweep_again = ref true in
    while !sweep_again do
      sweep_again := false;
      let scored =
        Hashtbl.fold (fun p _ acc -> p :: acc) universe []
        |> List.filter_map (fun (a, b) ->
               Qobs.Metrics.tick "agg.attempted";
               let ia = Gdg.find g a and ib = Gdg.find g b in
               let predicted = merged_cost a b in
               let bound = merge_bound ~pessimism ia ib ~predicted in
               if monotonic g !slack a b ~merged_latency:bound then begin
                 let gain = ia.Inst.latency +. ib.Inst.latency -. predicted in
                 (* neutral-gain growth merges are allowed: they never
                    lengthen the schedule and enable later wide wins *)
                 if gain >= -1e-6 then Some (gain, a, b, predicted) else None
               end
               else begin
                 Qobs.Metrics.tick "agg.vetoed_monotonic";
                 None
               end)
        |> List.sort (fun (ga, a1, b1, _) (gb, a2, b2, _) ->
               match compare gb ga with
               | 0 -> compare (a1, b1) (a2, b2)
               | c -> c)
      in
      List.iter
        (fun (_, a, b, _) ->
          if
            Gdg.mem g a && Gdg.mem g b
            && Action.merged_width g a b <= width_limit
            && schedulable (Gdg.find g a) (Gdg.find g b)
            &&
            let predicted = merged_cost a b in
            let bound =
              merge_bound ~pessimism (Gdg.find g a) (Gdg.find g b) ~predicted
            in
            monotonic g !slack a b ~merged_latency:bound
          then begin
            let predicted = merged_cost a b in
            let old_chains =
              let ia = Gdg.find g a and ib = Gdg.find g b in
              List.map
                (fun q -> (q, Gdg.chain_ids g q))
                (List.sort_uniq compare (ia.Inst.qubits @ ib.Inst.qubits))
            in
            match Gdg.merge ~rank g ~latency:predicted a b with
            | exception Invalid_argument _ -> ()
            | merged ->
              Qobs.Metrics.tick "agg.accepted";
              incr merges;
              incr merged_this_round;
              sweep_again := true;
              (* pre-merge groups and splice neighbours, read before the
                 refresh / slack update overwrite them — the universe
                 diff needs both sides of the change *)
              let old_groups =
                List.map
                  (fun q -> (q, Comm_group.groups_on groups q))
                  merged.Inst.qubits
              in
              let old_neighbors =
                let s = !slack in
                let nq = s.nq in
                List.map
                  (fun q ->
                    ( q,
                      [ s.pred.((a * nq) + q); s.succ.((a * nq) + q);
                        s.pred.((b * nq) + q); s.succ.((b * nq) + q) ] ))
                  merged.Inst.qubits
              in
              Comm_group.refresh ~commute groups g ~qubits:merged.Inst.qubits;
              update_slack_after_merge g !slack ~old_chains ~a ~b merged;
              update_universe_after_merge ~a ~b merged ~old_groups
                ~old_neighbors
          end)
        scored
    done;
    (* optimal-control query: re-cost every block *)
    let recosted = ref false in
    List.iter
      (fun (i : Inst.t) ->
        let fresh = cost i.Inst.gates in
        if Float.abs (fresh -. i.Inst.latency) > 1e-9 then begin
          Gdg.set_latency g i.Inst.id fresh;
          recosted := true
        end)
      (Gdg.insts g);
    (* latencies moved globally, so the slack fixpoint is rebuilt once per
       round; groups, positions and the candidate universe are
       latency-independent and stay valid *)
    if !recosted then slack := compute_slack g;
    if !merged_this_round = 0 && not !recosted then continue_outer := false
  done;
  Qobs.Metrics.tick ~by:!rounds "agg.rounds";
  { merges = !merges;
    rounds = !rounds;
    initial_makespan;
    final_makespan = Gdg.makespan g }

(* The pre-incremental aggregator, kept verbatim as an executable
   specification: full slack recomputation after every accepted merge,
   full group rebuild and candidate re-enumeration per sweep, full
   topological cycle check inside every merge. The qcheck suite asserts
   {!run} is observationally identical (merge count, final makespan,
   certified result); it is also the honest baseline for the performance
   numbers in EXPERIMENTS.md. *)
let run_reference ?(width_limit = 10) ?(max_rounds = 8) ?(pessimism = `Model)
    ~cost g =
  let initial_makespan = Gdg.makespan g in
  let commute_cache : (int * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let commute (x : Inst.t) (y : Inst.t) =
    let key = (min x.Inst.id y.Inst.id, max x.Inst.id y.Inst.id) in
    match Hashtbl.find_opt commute_cache key with
    | Some v -> v
    | None ->
      let v = Qgdg.Commute.insts x y in
      Hashtbl.replace commute_cache key v;
      v
  in
  let cost_cache : (int * int, float) Hashtbl.t = Hashtbl.create 1024 in
  let merged_cost a b =
    let key = (min a b, max a b) in
    match Hashtbl.find_opt cost_cache key with
    | Some v -> v
    | None ->
      let gates = (Gdg.find g a).Inst.gates @ (Gdg.find g b).Inst.gates in
      let v = cost gates in
      Hashtbl.replace cost_cache key v;
      v
  in
  let merges = ref 0 and rounds = ref 0 in
  let continue_outer = ref true in
  while !continue_outer && !rounds < max_rounds do
    incr rounds;
    let merged_this_round = ref 0 in
    let sweep_again = ref true in
    while !sweep_again do
      sweep_again := false;
      let groups = ref (Comm_group.build ~commute g) in
      let slack = ref (compute_slack g) in
      let scored =
        Action.candidates g !groups ~width_limit
        |> List.filter_map (fun (a, b) ->
               let ia = Gdg.find g a and ib = Gdg.find g b in
               let predicted = merged_cost a b in
               let bound = merge_bound ~pessimism ia ib ~predicted in
               if monotonic g !slack a b ~merged_latency:bound then begin
                 let gain = ia.Inst.latency +. ib.Inst.latency -. predicted in
                 if gain >= -1e-6 then Some (gain, a, b, predicted) else None
               end
               else None)
        |> List.sort (fun (ga, a1, b1, _) (gb, a2, b2, _) ->
               match compare gb ga with
               | 0 -> compare (a1, b1) (a2, b2)
               | c -> c)
      in
      List.iter
        (fun (_, a, b, _) ->
          if
            Gdg.mem g a && Gdg.mem g b
            && Action.merged_width g a b <= width_limit
            && Action.is_schedulable g !groups a b
            &&
            let predicted = merged_cost a b in
            let bound =
              merge_bound ~pessimism (Gdg.find g a) (Gdg.find g b) ~predicted
            in
            monotonic g !slack a b ~merged_latency:bound
          then begin
            let predicted = merged_cost a b in
            match Gdg.merge g ~latency:predicted a b with
            | exception Invalid_argument _ -> ()
            | merged ->
              incr merges;
              incr merged_this_round;
              sweep_again := true;
              Comm_group.refresh ~commute !groups g
                ~qubits:merged.Inst.qubits;
              slack := compute_slack g
          end)
        scored
    done;
    let recosted = ref false in
    List.iter
      (fun (i : Inst.t) ->
        let fresh = cost i.Inst.gates in
        if Float.abs (fresh -. i.Inst.latency) > 1e-9 then begin
          Gdg.set_latency g i.Inst.id fresh;
          recosted := true
        end)
      (Gdg.insts g);
    if !merged_this_round = 0 && not !recosted then continue_outer := false
  done;
  { merges = !merges;
    rounds = !rounds;
    initial_makespan;
    final_makespan = Gdg.makespan g }
