(** Iterative monotonic-action instruction aggregation (paper §4.3).

    The search keeps parallelism intact by only executing {e monotonic}
    actions: merges that cannot lengthen the critical path even under a
    pessimistic (serial, unoptimized) latency for the new block. Each
    round performs the globally best action (largest predicted pulse-time
    gain), updates the GDG, and repeats; when no action remains, every
    aggregate is re-costed by the cost model (the optimal control query),
    which shortens blocks and may unlock further monotonic actions — the
    outer loop iterates to convergence.

    Slack-based monotonicity: with ASAP starts and ALAP deadlines computed
    once per round, the merged block (placed at the earlier member's
    start, delayed by the later member's other-qubit predecessors) must
    still meet every successor's latest start and the overall makespan.
    [pessimism] selects the duration used in that check: [`Serial] (the
    paper's rule) assumes the unoptimized serial sum of the two members;
    [`Model] (the default) trusts the cost model's predicted merged time —
    affordable here because the "optimal control query" is an O(1)
    analytic model rather than hours of GRAPE, and necessary for the
    paper's reported serial-application gains, which stall under serial
    pessimism when zero-slack side gates veto growth (see DESIGN.md). *)

type stats = {
  merges : int;
  rounds : int;  (** outer re-costing iterations *)
  initial_makespan : float;
  final_makespan : float;
}

val run :
  ?width_limit:int ->
  ?max_rounds:int ->
  ?pessimism:[ `Serial | `Model ] ->
  cost:(Qgate.Gate.t list -> float) ->
  Qgdg.Gdg.t ->
  stats
(** Aggregates in place. [width_limit] defaults to 10 (the optimal-control
    scalability bound, §2.5); [max_rounds] to 8. [cost] maps a member-gate
    block to its optimized pulse time.

    The search is incremental: after each accepted merge the ASAP/ALAP
    slack tables are re-propagated only through the merged node's affected
    cone, the chain-position and successor tables are patched for the
    merged support's chains, and the candidate universe is invalidated
    only for pairs both of whose endpoints act on those chains — a pair's
    candidacy reads nothing else, so everything outside that window is
    provably unchanged. The cycle check inside {!Qgdg.Gdg.merge} runs as a
    bounded reachability probe using the ASAP starts as ranks. The
    accepted-merge sequence is identical to {!run_reference}'s. *)

val run_reference :
  ?width_limit:int ->
  ?max_rounds:int ->
  ?pessimism:[ `Serial | `Model ] ->
  cost:(Qgate.Gate.t list -> float) ->
  Qgdg.Gdg.t ->
  stats
(** The pre-incremental aggregator, retained as an executable
    specification: full slack recomputation after every merge, full group
    rebuild and candidate re-enumeration per sweep. Same accepted merges,
    same final schedule, asymptotically slower — used by the equivalence
    tests and as the baseline for performance comparisons. *)
