(** SWAP-chain routing (paper §3.4.1).

    Two-qubit operations between non-neighboring sites are prepended with
    a sequence of SWAPs that walks one operand along a shortest path until
    the operands are adjacent. The router is generic over the item type so
    both plain gate streams and aggregated-instruction streams route
    through the same code. *)

val route :
  topology:Topology.t ->
  placement:Placement.t ->
  support:('a -> int list) ->
  remap:((int -> int) -> 'a -> 'a) ->
  make_swap:(int -> int -> 'a) ->
  'a list ->
  'a list * Placement.t
(** [route ~topology ~placement ~support ~remap ~make_swap items] returns
    the physical-site item stream (inserted swaps built by [make_swap] on
    site ids; items relabelled logical→site by [remap]) and the final
    placement. Items of support > 2 must already be site-local: the
    router raises [Invalid_argument] for non-adjacent supports wider than
    two qubits. *)

val route_circuit :
  ?placement:Placement.t -> topology:Topology.t -> Qgate.Circuit.t ->
  Qgate.Circuit.t * Placement.t
(** Route a plain circuit (default placement: {!Placement.initial}). The
    result's register is the device size; all 2-qubit gates are between
    adjacent sites. *)

val gate_respects_topology : topology:Topology.t -> Qgate.Gate.t -> bool
(** 2-qubit gates must join adjacent sites; wider gates must be
    site-local (pairwise adjacent); 1-qubit gates always pass. *)

val topology_violations :
  topology:Topology.t -> Qgate.Circuit.t -> (int * Qgate.Gate.t) list
(** Gates breaking {!gate_respects_topology}, with their stream index —
    the diagnostic-producing form of {!respects_topology}. *)

val respects_topology : topology:Topology.t -> Qgate.Circuit.t -> bool
(** [topology_violations] is empty. *)
