let route ~topology ~placement ~support ~remap ~make_swap items =
  let placement = ref placement in
  let out = ref [] in
  let emit x = out := x :: !out in
  let emit_swap x =
    Qobs.Metrics.tick "route.swaps";
    emit x
  in
  let adjacentize a_site b_site =
    (* walk the occupant of [a_site] along a shortest path towards
       [b_site], emitting SWAPs, until the two are neighbors; returns the
       final site of the walked qubit *)
    let rec go a_site =
      if Topology.connected topology a_site b_site then a_site
      else begin
        match Topology.path topology a_site b_site with
        | _ :: next :: _ ->
          emit_swap (make_swap a_site next);
          placement := Placement.apply_swap !placement a_site next;
          go next
        | _ -> raise Not_found
      end
    in
    go a_site
  in
  List.iter
    (fun item ->
      Qobs.Metrics.tick "route.instructions";
      let logical_support = support item in
      (match logical_support with
       | [] | [ _ ] -> ()
       | [ a; b ] ->
         let sa = Placement.site_of !placement a
         and sb = Placement.site_of !placement b in
         if not (Topology.connected topology sa sb) then
           ignore (adjacentize sa sb)
       | wider ->
         let sites = List.map (Placement.site_of !placement) wider in
         let rec all_pairs_adjacent = function
           | [] -> true
           | s :: rest ->
             List.for_all (fun r -> Topology.connected topology s r) rest
             && all_pairs_adjacent rest
         in
         if not (all_pairs_adjacent sites) then
           invalid_arg
             "Router.route: instruction wider than 2 qubits is not site-local");
      let p = !placement in
      emit (remap (fun logical -> Placement.site_of p logical) item))
    items;
  (List.rev !out, !placement)

let route_circuit ?placement ~topology circuit =
  let placement =
    match placement with
    | Some p -> p
    | None -> Placement.initial topology circuit
  in
  let items, final =
    route ~topology ~placement ~support:Qgate.Gate.qubits
      ~remap:Qgate.Gate.map_qubits
      ~make_swap:(fun a b -> Qgate.Gate.swap a b)
      (Qgate.Circuit.gates circuit)
  in
  (Qgate.Circuit.make (Topology.n_sites topology) items, final)

let gate_respects_topology ~topology g =
  match Qgate.Gate.qubits g with
  | [] | [ _ ] -> true
  | [ a; b ] -> Topology.connected topology a b
  | wider ->
    let rec ok = function
      | [] -> true
      | s :: rest ->
        List.for_all (fun r -> Topology.connected topology s r) rest && ok rest
    in
    ok wider

let topology_violations ~topology circuit =
  let violations = ref [] in
  List.iteri
    (fun index g ->
      let ok =
        (* out-of-range sites (impossible via Circuit.make, but gates are
           plain records) count as violations, not exceptions *)
        try gate_respects_topology ~topology g
        with Invalid_argument _ -> false
      in
      if not ok then violations := (index, g) :: !violations)
    (Qgate.Circuit.gates circuit);
  List.rev !violations

let respects_topology ~topology circuit =
  topology_violations ~topology circuit = []
