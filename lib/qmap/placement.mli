(** Initial qubit placement (paper §3.4.1).

    Frequently-interacting logical qubits are placed near each other by
    recursively bisecting the qubit interaction graph (the METIS-based
    strategy of [13, 19], here via {!Qgraph.Partition}) and laying the
    resulting order onto a contiguity-preserving site order of the device
    (a boustrophedon walk for grids). *)

type t = {
  logical_to_site : int array;
  site_to_logical : int array;  (** -1 for an unoccupied site *)
}

val identity : n_logical:int -> Topology.t -> t
(** Logical qubit [q] on site [q]. Raises [Invalid_argument] when the
    device is too small. *)

val initial : Topology.t -> Qgate.Circuit.t -> t
(** Interaction-graph-driven placement of the circuit's qubits. *)

val site_order : Topology.t -> int array
(** The linear site order used for layout (snake order on grids). *)

val apply_swap : t -> int -> int -> t
(** Exchange the occupants of two sites. *)

val site_of : t -> int -> int
val logical_at : t -> int -> int option
val equal : t -> t -> bool
val is_consistent : t -> bool

val permutation_unitary : n_qubits:int -> t -> Qnum.Cmat.t
(** The 2ⁿ permutation matrix sending logical qubit q's amplitude bit to
    its site (n_qubits = number of sites). Compiled site-space circuits
    satisfy U_sites · P_initial = P_final · U_logical, which is how tests
    and applications undo the mapping. *)
