type t = { logical_to_site : int array; site_to_logical : int array }

let site_order topo =
  match topo with
  | Topology.Line n | Topology.Full n -> Array.init n (fun k -> k)
  | Topology.Grid g ->
    let w = g.Qgraph.Grid.width and h = g.Qgraph.Grid.height in
    let order = Array.make (w * h) 0 in
    let k = ref 0 in
    for row = 0 to h - 1 do
      for col = 0 to w - 1 do
        let c = if row mod 2 = 0 then col else w - 1 - col in
        order.(!k) <- Qgraph.Grid.index g ~row ~col:c;
        incr k
      done
    done;
    order

let of_assignment ~n_sites logical_to_site =
  let site_to_logical = Array.make n_sites (-1) in
  Array.iteri
    (fun logical site ->
      if site < 0 || site >= n_sites then
        invalid_arg "Placement: site out of range";
      if site_to_logical.(site) <> -1 then
        invalid_arg "Placement: two logical qubits on one site";
      site_to_logical.(site) <- logical)
    logical_to_site;
  { logical_to_site; site_to_logical }

let identity ~n_logical topo =
  let n_sites = Topology.n_sites topo in
  if n_logical > n_sites then invalid_arg "Placement.identity: device too small";
  of_assignment ~n_sites (Array.init n_logical (fun q -> q))

let initial topo circuit =
  let n_logical = Qgate.Circuit.n_qubits circuit in
  let n_sites = Topology.n_sites topo in
  if n_logical > n_sites then invalid_arg "Placement.initial: device too small";
  let interaction = Qgate.Circuit.interaction_graph circuit in
  let logical_order = Qgraph.Partition.recursive_order interaction in
  let sites = site_order topo in
  let logical_to_site = Array.make n_logical 0 in
  Array.iteri
    (fun pos logical -> logical_to_site.(logical) <- sites.(pos))
    logical_order;
  of_assignment ~n_sites logical_to_site

let apply_swap p a b =
  let n_sites = Array.length p.site_to_logical in
  if a < 0 || b < 0 || a >= n_sites || b >= n_sites then
    invalid_arg "Placement.apply_swap: site out of range";
  let logical_to_site = Array.copy p.logical_to_site in
  let site_to_logical = Array.copy p.site_to_logical in
  let la = site_to_logical.(a) and lb = site_to_logical.(b) in
  site_to_logical.(a) <- lb;
  site_to_logical.(b) <- la;
  if la <> -1 then logical_to_site.(la) <- b;
  if lb <> -1 then logical_to_site.(lb) <- a;
  { logical_to_site; site_to_logical }

let site_of p logical = p.logical_to_site.(logical)

let logical_at p site =
  match p.site_to_logical.(site) with -1 -> None | l -> Some l

let equal a b =
  a.logical_to_site = b.logical_to_site
  && a.site_to_logical = b.site_to_logical

let is_consistent p =
  Array.for_all
    (fun site -> site >= 0 && site < Array.length p.site_to_logical)
    p.logical_to_site
  &&
  let ok = ref true in
  Array.iteri
    (fun logical site ->
      if p.site_to_logical.(site) <> logical then ok := false)
    p.logical_to_site;
  !ok

let permutation_unitary ~n_qubits p =
  let dim = 1 lsl n_qubits in
  let remap idx =
    let out = ref 0 in
    Array.iteri
      (fun logical site ->
        if (idx lsr (n_qubits - 1 - logical)) land 1 = 1 then
          out := !out lor (1 lsl (n_qubits - 1 - site)))
      p.logical_to_site;
    (* bits of unoccupied sites stay in place only if every logical bit is
       mapped; unmapped high bits (sites beyond the register) are dropped,
       which is fine because inputs never populate them *)
    !out
  in
  Qnum.Cmat.init dim dim (fun r c ->
      if r = remap c then Qnum.Cx.one else Qnum.Cx.zero)
