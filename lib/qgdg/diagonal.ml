let max_run_gates = 10

(* ---- reference implementations (pre-oracle), pinned by qcheck ---- *)

(* grow the longest contiguous run starting at [id] whose support stays
   within one qubit pair; each appended node must have its predecessor (on
   every qubit it shares with the run) inside the run, so the run is a
   schedulable contiguous block. [last_on] tracks, per qubit, the most
   recently appended run node touching it — appends only extend chains
   forward, so it is the chain-last run node on that qubit. *)
let grow_run_reference g id =
  let start = Gdg.find g id in
  let run = ref [ id ] in
  let run_mem = Hashtbl.create 8 in
  Hashtbl.replace run_mem id ();
  let gate_count = ref (List.length start.Inst.gates) in
  let support = ref start.Inst.qubits in
  let last_on = Hashtbl.create 4 in
  List.iter (fun q -> Hashtbl.replace last_on q id) start.Inst.qubits;
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let candidates =
      List.filter_map
        (fun q ->
          match Hashtbl.find_opt last_on q with
          | None -> None
          | Some last ->
            (match Gdg.succ_on g last ~qubit:q with
             | Some s when not (Hashtbl.mem run_mem s.Inst.id) -> Some s
             | Some _ | None -> None))
        !support
    in
    let eligible (c : Inst.t) =
      let union = List.sort_uniq compare (c.Inst.qubits @ !support) in
      List.length union <= 2
      && !gate_count + List.length c.Inst.gates <= max_run_gates
      && List.for_all
           (fun q ->
             (not (List.mem q !support))
             ||
             match Gdg.pred_on g c.Inst.id ~qubit:q with
             | Some p -> Hashtbl.mem run_mem p.Inst.id
             | None -> false)
           c.Inst.qubits
    in
    match List.find_opt eligible candidates with
    | Some c ->
      run := c.Inst.id :: !run;
      Hashtbl.replace run_mem c.Inst.id ();
      gate_count := !gate_count + List.length c.Inst.gates;
      support := List.sort_uniq compare (c.Inst.qubits @ !support);
      List.iter (fun q -> Hashtbl.replace last_on q c.Inst.id) c.Inst.qubits;
      continue_ := true
    | None -> ()
  done;
  List.rev !run

let diagonal_prefix_reference g run =
  (* longest prefix (>= 2 nodes) whose composed unitary is diagonal *)
  let rec prefixes acc rev_best = function
    | [] -> rev_best
    | id :: rest ->
      let acc = acc @ [ id ] in
      let gates = List.concat_map (fun i -> (Gdg.find g i).Inst.gates) acc in
      let rev_best =
        if List.length acc >= 2 && Commute.is_diagonal_block gates then Some acc
        else rev_best
      in
      prefixes acc rev_best rest
  in
  prefixes [] None run

let detect_and_contract_reference ~latency g =
  let merges = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let ids = List.map (fun (i : Inst.t) -> i.Inst.id) (Gdg.insts g) in
    List.iter
      (fun id ->
        if Gdg.mem g id then begin
          let run = grow_run_reference g id in
          match diagonal_prefix_reference g run with
          | Some (first :: (_ :: _ as rest)) ->
            let merged =
              List.fold_left
                (fun acc next ->
                  let gates =
                    (Gdg.find g acc).Inst.gates @ (Gdg.find g next).Inst.gates
                  in
                  (Gdg.merge g ~latency:(latency gates) acc next).Inst.id)
                first rest
            in
            ignore merged;
            incr merges;
            changed := true
          | Some _ | None -> ()
        end)
      ids
  done;
  !merges

(* ---- windowed detection over flat per-qubit frontier tables ---- *)

(* The reference costs O(sweeps × nodes × chain-length) in
   [Gdg.succ_on]/[pred_on] walks plus a full Kahn pass per merge. The
   production path below keeps flat pred/succ tables ([id*nq+q], -1
   absent) and an incremental ASAP schedule, patched only around each
   contraction the way Qagg patches its slack tables; the ASAP start
   doubles as the topological potential handed to [Gdg.merge ~rank], so
   acyclicity checks are bounded reachability probes instead of full
   topological passes. *)
type state = {
  g : Gdg.t;
  nq : int;
  mutable pred : int array;  (* id*nq+q -> chain predecessor id, -1 none *)
  mutable succ : int array;
  mutable start : float array;  (* ASAP start, nan = absent *)
  mutable finish : float array;
  mutable stamp : int array;  (* worklist dedup, epoch-stamped *)
  mutable epoch : int;
}

let ensure_capacity st id =
  let cap = Array.length st.start in
  if id >= cap then begin
    let ncap = max (id + 1) (2 * max 1 cap) in
    let grow_int a def =
      let b = Array.make (ncap * (Array.length a / max 1 cap)) def in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    let grow_float a =
      let b = Array.make ncap nan in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    st.pred <- grow_int st.pred (-1);
    st.succ <- grow_int st.succ (-1);
    st.stamp <- grow_int st.stamp 0;
    st.start <- grow_float st.start;
    st.finish <- grow_float st.finish
  end

let build_state g =
  let nq = max 1 (Gdg.n_qubits g) in
  let cap = max 1 (Gdg.next_id g) in
  let st =
    { g;
      nq;
      pred = Array.make (cap * nq) (-1);
      succ = Array.make (cap * nq) (-1);
      start = Array.make cap nan;
      finish = Array.make cap nan;
      stamp = Array.make cap 0;
      epoch = 0 }
  in
  let indeg = Array.make cap 0 in
  for q = 0 to Gdg.n_qubits g - 1 do
    let rec link = function
      | x :: (y :: _ as rest) ->
        st.succ.((x * nq) + q) <- y;
        st.pred.((y * nq) + q) <- x;
        indeg.(y) <- indeg.(y) + 1;
        link rest
      | _ -> ()
    in
    link (Gdg.chain_ids g q)
  done;
  (* forward ASAP pass (Kahn over the chain edges) *)
  let queue = Queue.create () in
  Gdg.iter_insts g (fun i ->
      if indeg.(i.Inst.id) = 0 then Queue.add i.Inst.id queue);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let inst = Gdg.find g id in
    let s =
      List.fold_left
        (fun acc q ->
          let p = st.pred.((id * nq) + q) in
          if p < 0 then acc else Float.max acc st.finish.(p))
        0. inst.Inst.qubits
    in
    st.start.(id) <- s;
    st.finish.(id) <- s +. inst.Inst.latency;
    List.iter
      (fun q ->
        let c = st.succ.((id * nq) + q) in
        if c >= 0 then begin
          indeg.(c) <- indeg.(c) - 1;
          if indeg.(c) = 0 then Queue.add c queue
        end)
      inst.Inst.qubits
  done;
  st

let rank st id =
  if id < Array.length st.start && not (Float.is_nan st.start.(id)) then
    st.start.(id)
  else neg_infinity

(* Incremental counterpart of {!build_state} after one accepted merge of
   [a] and [b] into [merged] (Qagg's slack-patching idiom): only the
   merged support's chains changed, so their pred/succ entries are
   re-linked and the ASAP times re-propagated by worklist from those
   chains — each recomputation uses exactly the folds of the full pass,
   and the fixpoint on a DAG is unique, so the tables equal a
   from-scratch recomputation. [old_chains] are the (qubit, chain ids) of
   the merged support captured before the merge. *)
let update_state_after_merge st ~old_chains ~a ~b (merged : Inst.t) =
  ensure_capacity st merged.Inst.id;
  let nq = st.nq in
  let a_id = a and b_id = b in
  let new_chains =
    List.map (fun q -> (q, Gdg.chain_ids st.g q)) merged.Inst.qubits
  in
  (* nodes whose chain predecessor was a merge endpoint: the only nodes
     (besides the merged one) whose ASAP inputs changed structurally —
     the seeds of the repropagation below *)
  let reseeds = ref [] in
  List.iter
    (fun (q, old_ids) ->
      let prev = ref (-1) in
      List.iter
        (fun x ->
          if (!prev = a_id || !prev = b_id) && x <> a_id && x <> b_id then
            reseeds := x :: !reseeds;
          prev := x;
          st.pred.((x * nq) + q) <- -1;
          st.succ.((x * nq) + q) <- -1)
        old_ids)
    old_chains;
  List.iter
    (fun (q, ids) ->
      let rec link = function
        | x :: (y :: _ as rest) ->
          st.succ.((x * nq) + q) <- y;
          st.pred.((y * nq) + q) <- x;
          link rest
        | _ -> ()
      in
      link ids)
    new_chains;
  st.start.(a) <- nan;
  st.finish.(a) <- nan;
  st.start.(b) <- nan;
  st.finish.(b) <- nan;
  st.epoch <- st.epoch + 1;
  let ep = st.epoch in
  let queue = Queue.create () in
  let push x =
    if st.stamp.(x) <> ep then begin
      st.stamp.(x) <- ep;
      Queue.add x queue
    end
  in
  (* seed only where an ASAP input changed: the merged node (fresh
     latency, inherited predecessors) and the old followers of the two
     endpoints (their chain predecessor is now the merged node or the
     endpoint's former predecessor); everything downstream is reached by
     the finish-changed cascade *)
  push merged.Inst.id;
  List.iter push !reseeds;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    st.stamp.(x) <- 0;
    let inst = Gdg.find st.g x in
    let s =
      List.fold_left
        (fun acc q ->
          let p = st.pred.((x * nq) + q) in
          if p < 0 then acc
          else
            let f = st.finish.(p) in
            Float.max acc (if Float.is_nan f then 0. else f))
        0. inst.Inst.qubits
    in
    let f = s +. inst.Inst.latency in
    if not (st.start.(x) = s && st.finish.(x) = f) then begin
      st.start.(x) <- s;
      st.finish.(x) <- f;
      List.iter
        (fun q ->
          let c = st.succ.((x * nq) + q) in
          if c >= 0 then push c)
        inst.Inst.qubits
    end
  done

(* table-backed [grow_run_reference]: identical runs (the qcheck suite
   pins the equality), with the support held as at most two sorted ints
   ([Int.compare] ordering — supports are non-negative, so this matches
   the reference's polymorphic sort) and run membership as a linear scan
   of the ≤ [max_run_gates]-node run array. Candidates are probed in
   ascending support-qubit order and the first eligible one is appended,
   exactly the reference's [filter_map] + [find_opt] order. *)
let grow_run_state st id =
  let g = st.g in
  let nq = st.nq in
  let start = Gdg.find g id in
  let run = Array.make (max_run_gates + 1) (-1) in
  run.(0) <- id;
  let run_len = ref 1 in
  let in_run x =
    let rec scan k = k < !run_len && (run.(k) = x || scan (k + 1)) in
    scan 0
  in
  let gate_count = ref (List.length start.Inst.gates) in
  (* sorted support, at most a pair: s0 < s1 when both present *)
  let s0 = ref (-1) and s1 = ref (-1) in
  let last0 = ref (-1) and last1 = ref (-1) in
  List.iter
    (fun q ->
      if !s0 < 0 then begin
        s0 := q;
        last0 := id
      end
      else if q < !s0 then begin
        s1 := !s0;
        last1 := !last0;
        s0 := q;
        last0 := id
      end
      else begin
        s1 := q;
        last1 := id
      end)
    start.Inst.qubits;
  (* reference eligibility: the union of supports stays within one
     qubit pair, the gate budget holds, and every qubit the candidate
     shares with the run has its chain predecessor inside the run
     (qubits fresh to the run always pass) *)
  let eligible (c : Inst.t) =
    let fresh =
      List.fold_left
        (fun acc q -> if q = !s0 || q = !s1 then acc else acc + 1)
        0 c.Inst.qubits
    in
    let width = (if !s0 >= 0 then 1 else 0) + (if !s1 >= 0 then 1 else 0) in
    width + fresh <= 2
    && !gate_count + List.length c.Inst.gates <= max_run_gates
    && List.for_all
         (fun q ->
           (q <> !s0 && q <> !s1)
           ||
           let p = st.pred.((c.Inst.id * nq) + q) in
           p >= 0 && in_run p)
         c.Inst.qubits
  in
  let append (c : Inst.t) =
    run.(!run_len) <- c.Inst.id;
    incr run_len;
    gate_count := !gate_count + List.length c.Inst.gates;
    List.iter
      (fun q ->
        if q = !s0 then last0 := c.Inst.id
        else if q = !s1 then last1 := c.Inst.id
        else if !s0 < 0 then begin
          s0 := q;
          last0 := c.Inst.id
        end
        else if !s1 < 0 then
          if q < !s0 then begin
            s1 := !s0;
            last1 := !last0;
            s0 := q;
            last0 := c.Inst.id
          end
          else begin
            s1 := q;
            last1 := c.Inst.id
          end
        else assert false)
      c.Inst.qubits
  in
  let candidate_on last q =
    if last < 0 then None
    else
      let sid = st.succ.((last * nq) + q) in
      if sid >= 0 && not (in_run sid) then Some (Gdg.find g sid) else None
  in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let pick =
      match candidate_on !last0 !s0 with
      | Some c when eligible c -> Some c
      | _ -> (
        if !s1 < 0 then None
        else
          match candidate_on !last1 !s1 with
          | Some c when eligible c -> Some c
          | _ -> None)
    in
    match pick with
    | Some c ->
      append c;
      continue_ := true
    | None -> ()
  done;
  Array.to_list (Array.sub run 0 !run_len)

let grow_run g id = grow_run_state (build_state g) id

(* longest prefix (>= 2 nodes) whose composed unitary is diagonal,
   decided by one incremental oracle scan over the run *)
let diagonal_prefix_state st run =
  let scan = Oracle.scan_create () in
  let best = ref 0 in
  List.iteri
    (fun k id ->
      Oracle.scan_push scan (Gdg.find st.g id).Inst.gates;
      if k >= 1 && Oracle.scan_is_diagonal scan then best := k + 1)
    run;
  if !best >= 2 then Some (List.filteri (fun k _ -> k < !best) run) else None

(* Invalidation window: a node's run outcome depends only on its forward
   cone along the chains — at most [max_run_gates] run nodes (every
   instruction carries at least one gate), one candidate hop beyond, and
   those candidates' chain predecessors, which are exactly the nodes a
   merge re-links (the merged node and its immediate neighbors). So after
   a contraction, only nodes within a bounded backward reach of the
   merged node and its neighbors can change their decision; everything
   else re-derives its previous no-merge outcome and is skipped on later
   sweeps. *)
let invalidate_depth = max_run_gates + 2

let mark_dirty st dirty (merged : Inst.t) =
  let nq = st.nq in
  let seeds = ref [ merged.Inst.id ] in
  List.iter
    (fun q ->
      let p = st.pred.((merged.Inst.id * nq) + q) in
      if p >= 0 then seeds := p :: !seeds;
      let s = st.succ.((merged.Inst.id * nq) + q) in
      if s >= 0 then seeds := s :: !seeds)
    merged.Inst.qubits;
  let frontier = ref !seeds in
  for _ = 0 to invalidate_depth do
    let next = ref [] in
    List.iter
      (fun x ->
        if not (Hashtbl.mem dirty x) then begin
          Hashtbl.replace dirty x ();
          match Gdg.find st.g x with
          | inst ->
            List.iter
              (fun q ->
                let p = st.pred.((x * nq) + q) in
                if p >= 0 && not (Hashtbl.mem dirty p) then next := p :: !next)
              inst.Inst.qubits
          | exception Not_found -> ()
        end)
      !frontier;
    frontier := !next
  done

let detect_and_contract ~latency g =
  let merges = ref 0 in
  let st = build_state g in
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let first_sweep = ref true in
  let changed = ref true in
  let sweeps = ref 0 and processed = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    let ids = List.map (fun (i : Inst.t) -> i.Inst.id) (Gdg.insts g) in
    List.iter
      (fun id ->
        if Gdg.mem g id && (!first_sweep || Hashtbl.mem dirty id) then begin
          incr processed;
          Hashtbl.remove dirty id;
          let run = grow_run_state st id in
          match diagonal_prefix_state st run with
          | Some (first :: (_ :: _ as rest)) ->
            let merged =
              List.fold_left
                (fun acc next ->
                  let ia = Gdg.find g acc and ib = Gdg.find g next in
                  let gates = ia.Inst.gates @ ib.Inst.gates in
                  let old_chains =
                    List.map
                      (fun q -> (q, Gdg.chain_ids g q))
                      (List.sort_uniq compare (ia.Inst.qubits @ ib.Inst.qubits))
                  in
                  let merged =
                    Gdg.merge g ~rank:(rank st) ~latency:(latency gates) acc
                      next
                  in
                  update_state_after_merge st ~old_chains ~a:acc ~b:next merged;
                  merged.Inst.id)
                first rest
            in
            mark_dirty st dirty (Gdg.find g merged);
            incr merges;
            changed := true
          | Some _ | None -> ()
        end)
      ids;
    first_sweep := false
  done;
  Qobs.Metrics.tick ~by:!sweeps "detect.sweeps";
  Qobs.Metrics.tick ~by:!processed "detect.nodes_scanned";
  !merges
