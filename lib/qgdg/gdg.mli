(** The gate dependence graph (paper §3.3, Fig. 6).

    Nodes are {!Inst} blocks; dependence is induced by per-qubit chains:
    each qubit orders the instructions acting on it, and an instruction's
    parents are its immediate chain predecessors. Commutation rules later
    relax this order (see {!Comm_group} and the CLS scheduler); the chains
    themselves always record one valid program order. *)

type t

val of_insts : n_qubits:int -> Inst.t list -> t
(** Builds chains in list order. Raises [Invalid_argument] on duplicate
    ids or out-of-range qubits. *)

val of_circuit :
  latency:(Qgate.Gate.t list -> float) -> Qgate.Circuit.t -> t
(** One singleton instruction per gate, costed by [latency]. *)

val n_qubits : t -> int
val size : t -> int
val find : t -> int -> Inst.t
(** Raises [Not_found]. *)

val mem : t -> int -> bool
val insts : t -> Inst.t list
(** All instructions in a topological order. *)

val iter_insts : t -> (Inst.t -> unit) -> unit
(** Iterate over all instructions in unspecified order (no topological
    sort — O(n)). *)

val fresh_id : t -> int
(** A node id never used in this graph (monotonically increasing). *)

val next_id : t -> int
(** The id {!fresh_id} would return, without allocating it — the
    capacity probe for flat [id]-indexed side tables. Callers sizing
    tables must use this (not {!fresh_id}) so probing does not perturb
    the merged-node id stream. *)

val chain : t -> int -> Inst.t list
(** The instruction chain on a qubit, in order. *)

val chain_ids : t -> int -> int list
(** The chain of qubit [q] as raw instruction ids, without resolving each
    node — O(1), for callers that maintain their own per-chain indexes. *)

val pred_on : t -> int -> qubit:int -> Inst.t option
(** Immediate predecessor of a node on one of its qubits. *)

val succ_on : t -> int -> qubit:int -> Inst.t option

val neighbor_tables :
  t -> (int * int, int) Hashtbl.t * (int * int, int) Hashtbl.t
(** [(pred, succ)] keyed by (instruction id, qubit), built in one pass
    over all chains — use these instead of repeated {!pred_on}/{!succ_on}
    queries in O(n) algorithms (ASAP/ALAP passes, aggregation rounds). *)

val parents : t -> int -> Inst.t list
(** Distinct immediate predecessors across the node's qubits. *)

val children : t -> int -> Inst.t list

val merge : ?rank:(int -> float) -> t -> latency:float -> int -> int -> Inst.t
(** [merge g ~latency a b] replaces nodes [a] and [b] by one block whose
    members are [a]'s followed by [b]'s, positioned at the earlier of the
    two on every shared qubit chain. The caller must have checked the
    action is schedulable ([Qagg.Action]); this function only re-checks
    that the result is acyclic and raises [Invalid_argument] otherwise
    (leaving the graph unchanged, fresh-id counter included). Without
    [rank], acyclicity is established by a full topological pass. With
    [rank] — a pre-merge ASAP start time per node id, [neg_infinity] when
    unknown — the check is a bounded reachability probe around the merged
    node: contraction can only create cycles through it, and any returning
    path stays below the largest predecessor rank, so only the time-window
    between the endpoints is explored. Both variants accept and reject
    identical merges; [rank] is purely a cost optimization. *)

val set_latency : t -> int -> float -> unit

val asap : t -> (int * (float * float)) list * float
(** Chain-order ASAP schedule: per-node (start, finish) and the makespan.
    This is the latency-weighted critical path used for monotonic-action
    checks (§4.3). *)

val makespan : t -> float

val all_gates : t -> Qgate.Gate.t list
(** Member gates of all instructions, in a topological program order. *)

val copy : t -> t

type problem =
  | Dangling_node of { qubit : int; id : int }
      (** a chain references an id with no node *)
  | Not_in_support of { qubit : int; id : int }
      (** a node sits on a qubit's chain without acting on that qubit *)
  | Missing_from_chain of { qubit : int; id : int }
      (** a node acts on a qubit but is absent from its chain *)
  | Duplicate_on_chain of { qubit : int; id : int }
  | Cycle of int list
      (** ids on or behind a dependence cycle *)

val problems : t -> problem list
(** All structural-invariant violations, in deterministic order (empty
    for a well-formed graph). Total even on corrupted graphs — the static
    checkers build diagnostics from this. *)

val problem_message : problem -> string

val validate : t -> unit
(** Raises [Failure] with the first {!problems} message, if any (used by
    tests). *)

val pp : Format.formatter -> t -> unit
