module Gate = Qgate.Gate

let max_check_width = 8

type klass = Identity | Diagonal | Clifford | Phase_linear | General

let klass_to_string = function
  | Identity -> "identity"
  | Diagonal -> "diagonal"
  | Clifford -> "clifford"
  | Phase_linear -> "phase-linear"
  | General -> "general"

type t = {
  digest : string;
  support : int list;
  klass : klass;
  in_clifford : bool;
  in_phase_poly : bool;
  all_diagonal : bool;
}

let all_diagonal gs = List.for_all (fun g -> Gate.is_diagonal_kind g.Gate.kind) gs

(* order-preserving relabelling of a gate list onto 0..|support|-1 *)
let relabel_onto support gs =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gs

let support_of gs = List.sort_uniq compare (List.concat_map Gate.qubits gs)

(* Every memo table of the detection layer lives in one per-domain slot
   (Domain.DLS): each entry is a pure function of its content-addressed
   key, so per-domain re-warming keeps results deterministic while no
   write can ever race across domains.

   - [classify]: digest of a relabelled block -> its summary payload.
   - [pair]: (digest_a, embedding_a, digest_b, embedding_b) -> pairwise
     commutation decision (the joint overlap pattern matters, so the two
     block digests alone are not a sufficient key; the embeddings — each
     support's positions inside the sorted joint support — restore
     exactly the information of the relabelled pair).
   - [diagonal]: digest of a relabelled prefix -> is the composed
     unitary diagonal (the detect pass's per-prefix question).
   - [unitary]: content-addressed block unitaries on their own support,
     bounded by total cached matrix cells and cleared wholesale when
     full. *)
type memo_state = {
  classify : (string, klass * bool * bool * bool) Hashtbl.t;
  pair : (string, bool) Hashtbl.t;
  diagonal : (string, bool) Hashtbl.t;
  unitary : (string, Qnum.Cmat.t) Hashtbl.t;
  mutable unitary_cells : int;
}

let memos =
  Qobs.Domain_safe.Local.make (fun () ->
      { classify = Hashtbl.create 1024;
        pair = Hashtbl.create 4096;
        diagonal = Hashtbl.create 1024;
        unitary = Hashtbl.create 256;
        unitary_cells = 0 })
  [@@domain_safety domain_local]

(* idempotent; clears the calling domain's tables only *)
let reset_memos () =
  let m = Qobs.Domain_safe.Local.get memos in
  Hashtbl.reset m.classify;
  Hashtbl.reset m.pair;
  Hashtbl.reset m.diagonal;
  Hashtbl.reset m.unitary;
  m.unitary_cells <- 0

let unitary_memo_cell_cap = 4_000_000

let unitary_on_own gates =
  let m = Qobs.Domain_safe.Local.get memos in
  let own = support_of gates in
  let k = List.length own in
  let local = relabel_onto own gates in
  let key = Marshal.to_string local [] in
  let u =
    match Hashtbl.find_opt m.unitary key with
    | Some u -> u
    | None ->
      let u = Qgate.Unitary.of_gates ~n_qubits:k local in
      if m.unitary_cells > unitary_memo_cell_cap then begin
        Hashtbl.reset m.unitary;
        m.unitary_cells <- 0
      end;
      m.unitary_cells <- m.unitary_cells + (1 lsl (2 * k));
      Hashtbl.replace m.unitary key u;
      u
  in
  (own, u)

(* the dense comparison on already-relabelled gates, support 0..n-1 *)
let dense_on ~n_qubits a_gates b_gates =
  Qobs.Metrics.tick "commute.unitary";
  let targets_a, ua = unitary_on_own a_gates in
  let targets_b, ub = unitary_on_own b_gates in
  Qnum.Cmat.commute_embedded ~eps:1e-9 ~n_qubits ~targets_a ua ~targets_b ub

(* ---- summaries ---- *)

let classify ~n_qubits local =
  let pp = Qdomain.Phase_poly.of_gates ~n_qubits local in
  let tb = Qdomain.Tableau.of_gates ~n_qubits local in
  let in_phase_poly = pp <> None in
  let in_clifford = tb <> None in
  let identity =
    (match tb with
     | Some t -> Qdomain.Tableau.equal t (Qdomain.Tableau.identity n_qubits)
     | None -> false)
    ||
    match pp with
    | Some p -> Qdomain.Phase_poly.equal p (Qdomain.Phase_poly.identity n_qubits)
    | None -> false
  in
  let all_diag = all_diagonal local in
  let diagonal =
    all_diag
    ||
    match pp with
    | Some p -> Qdomain.Phase_poly.is_linear_identity p
    | None -> false
  in
  let klass =
    if identity then Identity
    else if diagonal then Diagonal
    else if in_clifford then Clifford
    else if in_phase_poly then Phase_linear
    else General
  in
  (klass, in_clifford, in_phase_poly, all_diag)

let of_gates gs =
  let support = support_of gs in
  let local = relabel_onto support gs in
  let digest = Digest.to_hex (Digest.string (Marshal.to_string local [])) in
  let m = Qobs.Domain_safe.Local.get memos in
  let payload, hit =
    match Hashtbl.find_opt m.classify digest with
    | Some payload -> (payload, true)
    | None ->
      let payload = classify ~n_qubits:(List.length support) local in
      Hashtbl.replace m.classify digest payload;
      (payload, false)
  in
  let klass, in_clifford, in_phase_poly, all_diagonal = payload in
  ({ digest; support; klass; in_clifford; in_phase_poly; all_diagonal }, hit)

(* ---- pairwise commutation ---- *)

(* observability: every commutation query ticks "commute.checks"; queries
   resolved structurally (identical gates, disjoint supports, both sides
   diagonal) tick "commute.fast_path", as do the algebraic decisions,
   which additionally tick "commute.phase_poly" or "commute.tableau";
   joint supports too wide to check tick "commute.oversize"; only queries
   that actually build dense unitaries tick "commute.unitary" — the
   fast-path ratio is the headline number for the detection cost (no-ops
   unless a metrics registry is ambient, see Qobs.Metrics) *)
let fast_path () = Qobs.Metrics.tick "commute.fast_path"

(* Route attribution: on top of the legacy counters above, every query
   that ticks "commute.checks" resolves through exactly one route —
   structural / memo / phase_poly / tableau / dense / oversize — ticking
   "commute.route.<r>" and recording the query's wall time in
   "commute.route.<r>.ms". The per-route counters therefore sum to the
   decision count, which [qcc stats] checks and reports as the route mix.
   The clock is read only when a metrics registry is ambient, so the
   disabled path stays one branch. *)
let now_if_metrics () =
  if Qobs.Metrics.enabled (Qobs.Metrics.ambient ()) then
    Some (Qobs.Clock.now_ns ())
  else None

let route_structural = ("commute.route.structural", "commute.route.structural.ms")
let route_memo = ("commute.route.memo", "commute.route.memo.ms")
let route_phase_poly = ("commute.route.phase_poly", "commute.route.phase_poly.ms")
let route_tableau = ("commute.route.tableau", "commute.route.tableau.ms")
let route_dense = ("commute.route.dense", "commute.route.dense.ms")
let route_oversize = ("commute.route.oversize", "commute.route.oversize.ms")

let route (name, hist) t0 =
  match t0 with
  | None -> ()
  | Some t0 ->
    Qobs.Metrics.tick name;
    Qobs.Metrics.record hist (Qobs.Clock.elapsed_ns t0 /. 1e6)

type pair_route = Pair_phase_poly | Pair_tableau | Pair_undecided

(* The algebraic pair check shared by this module and Qflow.Summary,
   dispatched on the summaries' fragment-membership flags instead of
   re-attempting each abstract domain: a concatenation lies in a
   gate-wise fragment iff both blocks do, and fragment membership is
   label-independent, so the flag dispatch attempts exactly the domains
   the old attempt-and-fail dispatch would have succeeded on, with
   identical results.

   CNOT+diagonal fragment: the phase polynomials of a·b and b·a pin both
   operators exactly (global phase included), so strict equality decides
   commutation with no dense algebra at all.

   Clifford fragment: tableau equality decides equality of a·b and b·a up
   to global phase; when the tableaus agree the residual global phase is
   read off one statevector column (|0…0⟩), far cheaper than the 2^n×2^n
   products. Genuine phase mismatches are multiples of π/4 on amplitudes
   of modulus ≥ 2^{-n/2}, so the 1e-6 tolerance only absorbs float
   noise. *)
let algebraic_pair ~in_phase_poly ~in_clifford ~n_qubits a b =
  let pp =
    if not in_phase_poly then None
    else
      match
        ( Qdomain.Phase_poly.of_gates ~n_qubits (a @ b),
          Qdomain.Phase_poly.of_gates ~n_qubits (b @ a) )
      with
      | Some p_ab, Some p_ba ->
        Some (Qdomain.Phase_poly.strict_equal ~eps:1e-9 p_ab p_ba)
      | _ -> None
  in
  match pp with
  | Some r -> (r, Pair_phase_poly)
  | None ->
    if not in_clifford then (None, Pair_undecided)
    else (
      match
        ( Qdomain.Tableau.of_gates ~n_qubits (a @ b),
          Qdomain.Tableau.of_gates ~n_qubits (b @ a) )
      with
      | Some t_ab, Some t_ba ->
        let r =
          if not (Qdomain.Tableau.equal t_ab t_ba) then Some false
          else begin
            let s_ab = Qgate.Unitary.state_of_gates ~n_qubits (a @ b) in
            let s_ba = Qgate.Unitary.state_of_gates ~n_qubits (b @ a) in
            let ok = ref true in
            Array.iteri
              (fun i z ->
                if Qnum.Cx.abs (Qnum.Cx.sub z s_ba.(i)) > 1e-6 then ok := false)
              s_ab;
            Some !ok
          end
        in
        (r, Pair_tableau)
      | _ -> (None, Pair_undecided))

(* positions of a summary's support inside the sorted joint support —
   together with the two digests this determines the relabelled pair
   exactly, so the digest-pair memo key is as precise as marshalling the
   relabelled gate lists themselves, without rebuilding them *)
let embedding joint support =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) joint;
  List.map (fun q -> Hashtbl.find local q) support

(* Shared slow path: support width gate, then the klass-pair shortcut
   (two provably diagonal operators commute exactly), then the
   digest-pair memo, then the flag-dispatched algebraic domains, then the
   dense comparison. Callers have already dispatched the structural
   shortcuts. *)
let decide ~t0 sa sb a_gates b_gates =
  let support = List.sort_uniq compare (sa.support @ sb.support) in
  let n_qubits = List.length support in
  if n_qubits > max_check_width then begin
    Qobs.Metrics.tick "commute.oversize";
    route route_oversize t0;
    false
  end
  else if
    (sa.klass = Identity || sa.klass = Diagonal)
    && (sb.klass = Identity || sb.klass = Diagonal)
  then begin
    (* both operators are exactly diagonal (the affine test behind the
       Diagonal klass is exact boolean algebra) or scalar, so they
       commute as operators — every downstream check would return true *)
    fast_path ();
    route route_structural t0;
    true
  end
  else begin
    let key =
      Marshal.to_string
        (sa.digest, embedding support sa.support,
         sb.digest, embedding support sb.support)
        []
    in
    let m = Qobs.Domain_safe.Local.get memos in
    match Hashtbl.find_opt m.pair key with
    | Some r ->
      Qobs.Metrics.tick "commute.memo_hits";
      fast_path ();
      route route_memo t0;
      r
    | None ->
      let a = relabel_onto support a_gates in
      let b = relabel_onto support b_gates in
      let decision, taken =
        algebraic_pair
          ~in_phase_poly:(sa.in_phase_poly && sb.in_phase_poly)
          ~in_clifford:(sa.in_clifford && sb.in_clifford)
          ~n_qubits a b
      in
      let r =
        match (decision, taken) with
        | Some r, Pair_phase_poly ->
          Qobs.Metrics.tick "commute.phase_poly";
          fast_path ();
          route route_phase_poly t0;
          r
        | Some r, Pair_tableau ->
          Qobs.Metrics.tick "commute.tableau";
          fast_path ();
          route route_tableau t0;
          r
        | _ ->
          Qobs.Metrics.record "commute.dense.width" (float_of_int n_qubits);
          let r = dense_on ~n_qubits a b in
          route route_dense t0;
          r
      in
      Hashtbl.replace m.pair key r;
      r
  end

let blocks ?sa ?sb a b =
  Qobs.Metrics.tick "commute.checks";
  let t0 = now_if_metrics () in
  match (a, b) with
  | [], _ | _, [] ->
    fast_path ();
    route route_structural t0;
    true
  | _ ->
    let sa = match sa with Some s -> s | None -> fst (of_gates a) in
    let sb = match sb with Some s -> s | None -> fst (of_gates b) in
    let disjoint =
      not (List.exists (fun q -> List.mem q sb.support) sa.support)
    in
    if disjoint then begin
      fast_path ();
      route route_structural t0;
      true
    end
    else if sa.all_diagonal && sb.all_diagonal then begin
      fast_path ();
      route route_structural t0;
      true
    end
    else decide ~t0 sa sb a b

let gates a b =
  Qobs.Metrics.tick "commute.checks";
  let t0 = now_if_metrics () in
  if Gate.equal a b then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else if not (Gate.shares_qubit a b) then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else if Gate.is_diagonal_kind a.Gate.kind && Gate.is_diagonal_kind b.Gate.kind
  then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else
    let sa = fst (of_gates [ a ]) and sb = fst (of_gates [ b ]) in
    decide ~t0 sa sb [ a ] [ b ]

(* ---- incremental diagonal-prefix scanning (the detect pass) ---- *)

(* Route attribution mirrors the pairwise counters: every prefix decision
   ticks "detect.checks" and exactly one "detect.route.<r>" counter —
   structural / memo / phase_poly / dense / oversize — with a matching
   [.ms] histogram, so the per-route counters sum to the decision count
   ([qcc stats] checks the partition). *)
let detect_structural = ("detect.route.structural", "detect.route.structural.ms")
let detect_memo = ("detect.route.memo", "detect.route.memo.ms")
let detect_phase_poly = ("detect.route.phase_poly", "detect.route.phase_poly.ms")
let detect_dense = ("detect.route.dense", "detect.route.dense.ms")
let detect_oversize = ("detect.route.oversize", "detect.route.oversize.ms")

(* One scan composes a growing gate sequence once, so deciding every
   prefix of an n-gate run costs O(n) domain updates instead of the
   reference's O(n²) rebuild-and-recheck:

   - gates are relabelled onto first-seen order, which is prefix-stable
     (extending the run never changes the relabelling of an earlier
     gate) and label-independent, so congruent runs anywhere on the
     register share their per-prefix decisions;
   - the phase polynomial of the relabelled prefix is composed in place
     by [Phase_poly.apply_gate] and dies permanently once a gate escapes
     the CNOT+diagonal fragment (fragment membership is gate-wise);
   - the memo key is a byte buffer of the relabelled gates (encoded per
     gate by [add_gate_key], whose fixed-length-per-tag format keeps the
     concatenation prefix-free), digested per decision and cached in the
     per-domain [diagonal] table. *)
(* Compact injective gate encoding for the scan's memo key: one tag
   byte, the kind's parameters as raw IEEE bits, then the (relabelled)
   qubits as 16-bit little-endian ints. Every kind has a fixed arity and
   parameter count, so each gate's length is determined by its tag and
   the concatenation is uniquely decodable — the same prefix-freeness
   Marshal gave, at a fraction of the cost on this innermost loop. *)
let add_gate_key buf (g : Gate.t) =
  let tag t = Buffer.add_char buf (Char.chr t) in
  let param x = Buffer.add_int64_le buf (Int64.bits_of_float x) in
  (match g.Gate.kind with
   | Gate.I -> tag 0
   | Gate.X -> tag 1
   | Gate.Y -> tag 2
   | Gate.Z -> tag 3
   | Gate.H -> tag 4
   | Gate.S -> tag 5
   | Gate.Sdg -> tag 6
   | Gate.T -> tag 7
   | Gate.Tdg -> tag 8
   | Gate.Rx x -> tag 9; param x
   | Gate.Ry x -> tag 10; param x
   | Gate.Rz x -> tag 11; param x
   | Gate.Phase x -> tag 12; param x
   | Gate.Cnot -> tag 13
   | Gate.Cz -> tag 14
   | Gate.Cphase x -> tag 15; param x
   | Gate.Swap -> tag 16
   | Gate.Iswap -> tag 17
   | Gate.Sqrt_iswap -> tag 18
   | Gate.Rxx x -> tag 19; param x
   | Gate.Ryy x -> tag 20; param x
   | Gate.Rzz x -> tag 21; param x
   | Gate.Ccx -> tag 22);
  List.iter
    (fun q ->
      Buffer.add_char buf (Char.chr (q land 0xff));
      Buffer.add_char buf (Char.chr ((q lsr 8) land 0xff)))
    g.Gate.qubits

type scan = {
  mutable rev_gates : Gate.t list list;  (* node gate lists, newest first *)
  mutable all_diag : bool;
  relabel : (int, int) Hashtbl.t;
  mutable next_local : int;
  pp : Qdomain.Phase_poly.t;  (* on 2 local qubits; runs are pair-confined *)
  mutable pp_alive : bool;
  key : Buffer.t;
}

let scan_create () =
  { rev_gates = [];
    all_diag = true;
    relabel = Hashtbl.create 4;
    next_local = 0;
    pp = Qdomain.Phase_poly.identity 2;
    pp_alive = true;
    key = Buffer.create 64 }

let scan_push s gs =
  s.rev_gates <- gs :: s.rev_gates;
  List.iter
    (fun g ->
      if s.all_diag && not (Gate.is_diagonal_kind g.Gate.kind) then
        s.all_diag <- false;
      let lg =
        Gate.map_qubits
          (fun q ->
            match Hashtbl.find_opt s.relabel q with
            | Some k -> k
            | None ->
              let k = s.next_local in
              Hashtbl.replace s.relabel q k;
              s.next_local <- k + 1;
              k)
          g
      in
      add_gate_key s.key lg;
      if s.pp_alive then
        if s.next_local > 2 || not (Qdomain.Phase_poly.apply_gate s.pp lg) then
          s.pp_alive <- false)
    gs

(* Same decision chain as [Commute.is_diagonal_block], incrementally: the
   syntactic all-diagonal shortcut, the support-width gate, then the
   phase-polynomial affine test (exact boolean algebra, invariant under
   the injective relabelling and the padding to two local qubits), and
   the dense fallback on the original, unrelabelled gates — bit-for-bit
   the reference's [Unitary.on_support] comparison. *)
let scan_is_diagonal s =
  Qobs.Metrics.tick "detect.checks";
  let t0 = now_if_metrics () in
  if s.all_diag then begin
    route detect_structural t0;
    true
  end
  else if s.next_local > max_check_width then begin
    route detect_oversize t0;
    false
  end
  else begin
    let key = Digest.string (Buffer.contents s.key) in
    let m = Qobs.Domain_safe.Local.get memos in
    match Hashtbl.find_opt m.diagonal key with
    | Some r ->
      route detect_memo t0;
      r
    | None ->
      if s.pp_alive && s.next_local <= 2 then begin
        let r = Qdomain.Phase_poly.is_linear_identity s.pp in
        Hashtbl.replace m.diagonal key r;
        route detect_phase_poly t0;
        r
      end
      else begin
        let gates = List.concat (List.rev s.rev_gates) in
        let _, u = Qgate.Unitary.on_support gates in
        let r = Qnum.Cmat.is_diagonal ~eps:1e-9 u in
        Hashtbl.replace m.diagonal key r;
        route detect_dense t0;
        r
      end
  end
