module Gate = Qgate.Gate

let max_check_width = Oracle.max_check_width

let all_diagonal gs = List.for_all (fun g -> Gate.is_diagonal_kind g.Gate.kind) gs

(* order-preserving relabelling of a gate list onto 0..|support|-1 *)
let relabel_onto support gs =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gs

let is_diagonal_block gs =
  match gs with
  | [] -> true
  | _ when all_diagonal gs -> true
  | _ ->
    let support = List.sort_uniq compare (List.concat_map Gate.qubits gs) in
    List.length support <= max_check_width
    &&
    let n_qubits = List.length support in
    (* |x⟩ ↦ e^{iφ(x)}|Ax⊕c⟩ is diagonal iff the affine part is the
       identity, so CNOT+diagonal blocks (CNOT–Rz–CNOT contractions in
       particular) are decided without a dense unitary *)
    (match Qdomain.Phase_poly.of_gates ~n_qubits (relabel_onto support gs) with
    | Some p -> Qdomain.Phase_poly.is_linear_identity p
    | None ->
      let _, u = Qgate.Unitary.on_support gs in
      Qnum.Cmat.is_diagonal ~eps:1e-9 u)

let dense_commute a_gates b_gates =
  let support =
    List.sort_uniq compare
      (List.concat_map Gate.qubits a_gates @ List.concat_map Gate.qubits b_gates)
  in
  if List.length support > max_check_width then begin
    Qobs.Metrics.tick "commute.oversize";
    false
  end
  else
    Oracle.dense_on ~n_qubits:(List.length support)
      (relabel_onto support a_gates)
      (relabel_onto support b_gates)

(* The pre-oracle decision chain, retained memo-free as the reference the
   qcheck suite pins {!blocks} against: structural shortcuts, support
   width gate, then the attempt-and-fail algebraic dispatch (phase
   polynomial, then tableau), then the dense comparison. No metrics, no
   decision memo — results must be reproducible independently of any
   cache the oracle keeps (the unitary cache underneath [dense_on] is
   content-addressed and pure, so sharing it is sound). *)
let blocks_reference a b =
  match (a, b) with
  | [], _ | _, [] -> true
  | _ ->
    let qa = List.sort_uniq compare (List.concat_map Gate.qubits a) in
    let qb = List.sort_uniq compare (List.concat_map Gate.qubits b) in
    let disjoint = not (List.exists (fun q -> List.mem q qb) qa) in
    if disjoint then true
    else if all_diagonal a && all_diagonal b then true
    else begin
      let support = List.sort_uniq compare (qa @ qb) in
      if List.length support > max_check_width then false
      else begin
        let n_qubits = List.length support in
        let a = relabel_onto support a and b = relabel_onto support b in
        match
          ( Qdomain.Phase_poly.of_gates ~n_qubits (a @ b),
            Qdomain.Phase_poly.of_gates ~n_qubits (b @ a) )
        with
        | Some p_ab, Some p_ba -> (
          match Qdomain.Phase_poly.strict_equal ~eps:1e-9 p_ab p_ba with
          | Some r -> r
          | None -> Oracle.dense_on ~n_qubits a b)
        | _ -> (
          match
            ( Qdomain.Tableau.of_gates ~n_qubits (a @ b),
              Qdomain.Tableau.of_gates ~n_qubits (b @ a) )
          with
          | Some t_ab, Some t_ba ->
            if not (Qdomain.Tableau.equal t_ab t_ba) then false
            else begin
              let s_ab = Qgate.Unitary.state_of_gates ~n_qubits (a @ b) in
              let s_ba = Qgate.Unitary.state_of_gates ~n_qubits (b @ a) in
              let ok = ref true in
              Array.iteri
                (fun i z ->
                  if Qnum.Cx.abs (Qnum.Cx.sub z s_ba.(i)) > 1e-6 then
                    ok := false)
                s_ab;
              !ok
            end
          | _ -> Oracle.dense_on ~n_qubits a b)
      end
    end

let blocks a b = Oracle.blocks a b
let gates a b = Oracle.gates a b
let insts a b = Oracle.blocks a.Inst.gates b.Inst.gates

let insts_reference a b = blocks_reference a.Inst.gates b.Inst.gates

(* idempotent; clears the calling domain's oracle tables *)
let reset_memos () = Oracle.reset_memos ()
