module Gate = Qgate.Gate

let max_check_width = 8

let all_diagonal gs = List.for_all (fun g -> Gate.is_diagonal_kind g.Gate.kind) gs

(* order-preserving relabelling of a gate list onto 0..|support|-1 *)
let relabel_onto support gs =
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gs

let is_diagonal_block gs =
  match gs with
  | [] -> true
  | _ when all_diagonal gs -> true
  | _ ->
    let support = List.sort_uniq compare (List.concat_map Gate.qubits gs) in
    List.length support <= max_check_width
    &&
    let n_qubits = List.length support in
    (* |x⟩ ↦ e^{iφ(x)}|Ax⊕c⟩ is diagonal iff the affine part is the
       identity, so CNOT+diagonal blocks (CNOT–Rz–CNOT contractions in
       particular) are decided without a dense unitary *)
    (match Qdomain.Phase_poly.of_gates ~n_qubits (relabel_onto support gs) with
    | Some p -> Qdomain.Phase_poly.is_linear_identity p
    | None ->
      let _, u = Qgate.Unitary.on_support gs in
      Qnum.Cmat.is_diagonal ~eps:1e-9 u)

(* observability: every commutation query ticks "commute.checks"; queries
   resolved structurally (identical gates, disjoint supports, both sides
   diagonal) tick "commute.fast_path", as do the algebraic decisions,
   which additionally tick "commute.phase_poly" or "commute.tableau";
   joint supports too wide to check tick "commute.oversize"; only queries
   that actually build dense unitaries tick "commute.unitary" — the
   fast-path ratio is the headline number for the detection cost (no-ops
   unless a metrics registry is ambient, see Qobs.Metrics) *)
let fast_path () = Qobs.Metrics.tick "commute.fast_path"

(* Route attribution: on top of the legacy counters above, every query
   that ticks "commute.checks" resolves through exactly one route —
   structural / memo / phase_poly / tableau / dense / oversize — ticking
   "commute.route.<r>" and recording the query's wall time in
   "commute.route.<r>.ms". The per-route counters therefore sum to the
   decision count, which [qcc stats] checks and reports as the route mix.
   The clock is read only when a metrics registry is ambient, so the
   disabled path stays one branch. *)
let now_if_metrics () =
  if Qobs.Metrics.enabled (Qobs.Metrics.ambient ()) then
    Some (Qobs.Clock.now_ns ())
  else None

let route_structural = ("commute.route.structural", "commute.route.structural.ms")
let route_memo = ("commute.route.memo", "commute.route.memo.ms")
let route_phase_poly = ("commute.route.phase_poly", "commute.route.phase_poly.ms")
let route_tableau = ("commute.route.tableau", "commute.route.tableau.ms")
let route_dense = ("commute.route.dense", "commute.route.dense.ms")
let route_oversize = ("commute.route.oversize", "commute.route.oversize.ms")

let route (name, hist) t0 =
  match t0 with
  | None -> ()
  | Some t0 ->
    Qobs.Metrics.tick name;
    Qobs.Metrics.record hist (Qobs.Clock.elapsed_ns t0 /. 1e6)

(* Content-addressed cache of block unitaries on their own support. A
   block is re-checked against many partners, each time on a different
   joint support; building its unitary once on its own support and
   reading it through [Cmat.commute_embedded]'s structural embedding
   reproduces the [Unitary.of_gates]-on-the-joint-support comparison
   entry for entry. Bounded by total cached entries; cleared wholesale
   when full.

   Both memo tables live in one per-domain slot: a memo hit returns
   exactly what a recomputation would, so per-domain re-warming keeps
   results deterministic while no write can ever race. *)
type memo_state = {
  unitary : (string, Qnum.Cmat.t) Hashtbl.t;
  mutable unitary_cells : int;
  decision : (string, bool) Hashtbl.t;
}

let memos =
  Qobs.Domain_safe.Local.make (fun () ->
      { unitary = Hashtbl.create 256;
        unitary_cells = 0;
        decision = Hashtbl.create 4096 })
  [@@domain_safety domain_local]

let unitary_memo_cell_cap = 4_000_000

let unitary_on_own gates =
  let m = Qobs.Domain_safe.Local.get memos in
  let own = List.sort_uniq compare (List.concat_map Gate.qubits gates) in
  let k = List.length own in
  let local = relabel_onto own gates in
  let key = Marshal.to_string local [] in
  let u =
    match Hashtbl.find_opt m.unitary key with
    | Some u -> u
    | None ->
      let u = Qgate.Unitary.of_gates ~n_qubits:k local in
      if m.unitary_cells > unitary_memo_cell_cap then begin
        Hashtbl.reset m.unitary;
        m.unitary_cells <- 0
      end;
      m.unitary_cells <- m.unitary_cells + (1 lsl (2 * k));
      Hashtbl.replace m.unitary key u;
      u
  in
  (own, u)

(* the dense comparison on already-relabelled gates, support 0..n-1 *)
let dense_on ~n_qubits a_gates b_gates =
  Qobs.Metrics.tick "commute.unitary";
  let targets_a, ua = unitary_on_own a_gates in
  let targets_b, ub = unitary_on_own b_gates in
  Qnum.Cmat.commute_embedded ~eps:1e-9 ~n_qubits ~targets_a ua ~targets_b ub

let dense_commute a_gates b_gates =
  let support =
    List.sort_uniq compare
      (List.concat_map Gate.qubits a_gates @ List.concat_map Gate.qubits b_gates)
  in
  if List.length support > max_check_width then begin
    Qobs.Metrics.tick "commute.oversize";
    false
  end
  else
    dense_on ~n_qubits:(List.length support)
      (relabel_onto support a_gates)
      (relabel_onto support b_gates)

(* CNOT+diagonal fragment: the phase polynomials of a·b and b·a pin both
   operators exactly (global phase included), so strict equality decides
   commutation with no dense algebra at all *)
let phase_poly_commute ~n_qubits a b =
  match
    ( Qdomain.Phase_poly.of_gates ~n_qubits (a @ b),
      Qdomain.Phase_poly.of_gates ~n_qubits (b @ a) )
  with
  | Some p_ab, Some p_ba ->
    Qobs.Metrics.tick "commute.phase_poly";
    Qdomain.Phase_poly.strict_equal ~eps:1e-9 p_ab p_ba
  | _ -> None

(* Clifford fragment: tableau equality decides equality of a·b and b·a up
   to global phase; when the tableaus agree the residual global phase is
   read off one statevector column (|0…0⟩), far cheaper than the 2^n×2^n
   products. Genuine phase mismatches are multiples of π/4 on amplitudes
   of modulus ≥ 2^{-n/2}, so the 1e-6 tolerance only absorbs float
   noise. *)
let tableau_commute ~n_qubits a b =
  match
    ( Qdomain.Tableau.of_gates ~n_qubits (a @ b),
      Qdomain.Tableau.of_gates ~n_qubits (b @ a) )
  with
  | Some t_ab, Some t_ba ->
    Qobs.Metrics.tick "commute.tableau";
    if not (Qdomain.Tableau.equal t_ab t_ba) then Some false
    else begin
      let s_ab = Qgate.Unitary.state_of_gates ~n_qubits (a @ b) in
      let s_ba = Qgate.Unitary.state_of_gates ~n_qubits (b @ a) in
      let ok = ref true in
      Array.iteri
        (fun i z -> if Qnum.Cx.abs (Qnum.Cx.sub z s_ba.(i)) > 1e-6 then ok := false)
        s_ab;
      Some !ok
    end
  | _ -> None

(* The decision memo ([memos].decision) is content-addressed over
   relabelled queries: the decision depends only on the two gate lists
   up to a common qubit relabelling, and repetitive circuits (the same
   excitation or adder template stamped onto different qubit sets)
   re-ask structurally identical questions constantly — each distinct
   shape pays the algebraic/dense check once per domain
   ("commute.memo_hits" counts the reuse).

   Shared slow path: support width gate, then algebraic domains, then
   the dense comparison. Callers have already dispatched the structural
   shortcuts. *)
let decide ~t0 a_gates b_gates =
  let support =
    List.sort_uniq compare
      (List.concat_map Gate.qubits a_gates @ List.concat_map Gate.qubits b_gates)
  in
  if List.length support > max_check_width then begin
    Qobs.Metrics.tick "commute.oversize";
    route route_oversize t0;
    false
  end
  else begin
    let n_qubits = List.length support in
    let a = relabel_onto support a_gates in
    let b = relabel_onto support b_gates in
    let key = Marshal.to_string (a, b) [] in
    let m = Qobs.Domain_safe.Local.get memos in
    match Hashtbl.find_opt m.decision key with
    | Some r ->
      Qobs.Metrics.tick "commute.memo_hits";
      fast_path ();
      route route_memo t0;
      r
    | None ->
      let r =
        match phase_poly_commute ~n_qubits a b with
        | Some r ->
          fast_path ();
          route route_phase_poly t0;
          r
        | None -> (
          match tableau_commute ~n_qubits a b with
          | Some r ->
            fast_path ();
            route route_tableau t0;
            r
          | None ->
            Qobs.Metrics.record "commute.dense.width" (float_of_int n_qubits);
            let r = dense_on ~n_qubits a b in
            route route_dense t0;
            r)
      in
      Hashtbl.replace m.decision key r;
      r
  end

let blocks a b =
  Qobs.Metrics.tick "commute.checks";
  let t0 = now_if_metrics () in
  match (a, b) with
  | [], _ | _, [] ->
    fast_path ();
    route route_structural t0;
    true
  | _ ->
    let qa = List.sort_uniq compare (List.concat_map Gate.qubits a) in
    let qb = List.sort_uniq compare (List.concat_map Gate.qubits b) in
    let disjoint = not (List.exists (fun q -> List.mem q qb) qa) in
    if disjoint then begin
      fast_path ();
      route route_structural t0;
      true
    end
    else if all_diagonal a && all_diagonal b then begin
      fast_path ();
      route route_structural t0;
      true
    end
    else decide ~t0 a b

let gates a b =
  Qobs.Metrics.tick "commute.checks";
  let t0 = now_if_metrics () in
  if Gate.equal a b then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else if not (Gate.shares_qubit a b) then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else if Gate.is_diagonal_kind a.Gate.kind && Gate.is_diagonal_kind b.Gate.kind
  then begin
    fast_path ();
    route route_structural t0;
    true
  end
  else decide ~t0 [ a ] [ b ]

let insts a b = blocks a.Inst.gates b.Inst.gates

(* idempotent; clears the calling domain's tables only *)
let reset_memos () =
  let m = Qobs.Domain_safe.Local.get memos in
  Hashtbl.reset m.decision;
  Hashtbl.reset m.unitary;
  m.unitary_cells <- 0
