module Gate = Qgate.Gate

let max_check_width = 8

let all_diagonal gs = List.for_all (fun g -> Gate.is_diagonal_kind g.Gate.kind) gs

let is_diagonal_block gs =
  match gs with
  | [] -> true
  | _ when all_diagonal gs -> true
  | _ ->
    let support = List.sort_uniq compare (List.concat_map Gate.qubits gs) in
    List.length support <= max_check_width
    &&
    let _, u = Qgate.Unitary.on_support gs in
    Qnum.Cmat.is_diagonal ~eps:1e-9 u

(* observability: every commutation query ticks "commute.checks"; queries
   resolved structurally (identical gates, disjoint supports, both sides
   diagonal) tick "commute.fast_path", those needing a dense unitary
   comparison tick "commute.unitary" — the fast-path ratio is the headline
   number for the detection cost (no-ops unless a metrics registry is
   ambient, see Qobs.Metrics) *)
let fast_path () = Qobs.Metrics.tick "commute.fast_path"

let dense_commute a_gates b_gates =
  Qobs.Metrics.tick "commute.unitary";
  let support =
    List.sort_uniq compare
      (List.concat_map Gate.qubits a_gates @ List.concat_map Gate.qubits b_gates)
  in
  if List.length support > max_check_width then false
  else begin
    let local = Hashtbl.create 8 in
    List.iteri (fun k q -> Hashtbl.replace local q k) support;
    let relabel = List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) in
    let n_qubits = List.length support in
    let ua = Qgate.Unitary.of_gates ~n_qubits (relabel a_gates) in
    let ub = Qgate.Unitary.of_gates ~n_qubits (relabel b_gates) in
    Qnum.Cmat.commute ~eps:1e-9 ua ub
  end

let blocks a b =
  Qobs.Metrics.tick "commute.checks";
  match (a, b) with
  | [], _ | _, [] ->
    fast_path ();
    true
  | _ ->
    let qa = List.sort_uniq compare (List.concat_map Gate.qubits a) in
    let qb = List.sort_uniq compare (List.concat_map Gate.qubits b) in
    let disjoint = not (List.exists (fun q -> List.mem q qb) qa) in
    if disjoint then begin
      fast_path ();
      true
    end
    else if all_diagonal a && all_diagonal b then begin
      fast_path ();
      true
    end
    else dense_commute a b

let gates a b =
  Qobs.Metrics.tick "commute.checks";
  if Gate.equal a b then begin
    fast_path ();
    true
  end
  else if not (Gate.shares_qubit a b) then begin
    fast_path ();
    true
  end
  else if Gate.is_diagonal_kind a.Gate.kind && Gate.is_diagonal_kind b.Gate.kind
  then begin
    fast_path ();
    true
  end
  else dense_commute [ a ] [ b ]

let insts a b = blocks a.Inst.gates b.Inst.gates
