type t = {
  n_qubits : int;
  nodes : (int, Inst.t) Hashtbl.t;
  chains : int list array;
  mutable next : int;
}

let n_qubits g = g.n_qubits
let size g = Hashtbl.length g.nodes
let find g id = match Hashtbl.find_opt g.nodes id with
  | Some i -> i
  | None -> raise Not_found

let mem g id = Hashtbl.mem g.nodes id

let fresh_id g =
  let id = g.next in
  g.next <- id + 1;
  id

let next_id g = g.next

let of_insts ~n_qubits insts =
  let nodes = Hashtbl.create 64 in
  let chains = Array.make (max 1 n_qubits) [] in
  let next = ref 0 in
  List.iter
    (fun (i : Inst.t) ->
      if Hashtbl.mem nodes i.Inst.id then
        invalid_arg "Gdg.of_insts: duplicate instruction id";
      List.iter
        (fun q ->
          if q < 0 || q >= n_qubits then
            invalid_arg "Gdg.of_insts: qubit out of range")
        i.Inst.qubits;
      Hashtbl.replace nodes i.Inst.id i;
      if i.Inst.id >= !next then next := i.Inst.id + 1;
      List.iter (fun q -> chains.(q) <- i.Inst.id :: chains.(q)) i.Inst.qubits)
    insts;
  Array.iteri (fun q c -> chains.(q) <- List.rev c) chains;
  { n_qubits; nodes; chains; next = !next }

let of_circuit ~latency circuit =
  let insts =
    List.mapi
      (fun id gate -> Inst.of_gate ~id ~latency:(latency [ gate ]) gate)
      (Qgate.Circuit.gates circuit)
  in
  of_insts ~n_qubits:(Qgate.Circuit.n_qubits circuit) insts

(* per-(node, qubit) chain neighbors, built in one pass over all chains *)
let edge_tables g =
  let pred : (int * int, int) Hashtbl.t = Hashtbl.create (2 * size g) in
  let succ : (int * int, int) Hashtbl.t = Hashtbl.create (2 * size g) in
  Array.iteri
    (fun q chain ->
      let rec walk = function
        | [] | [ _ ] -> ()
        | x :: (y :: _ as rest) ->
          Hashtbl.replace succ (x, q) y;
          Hashtbl.replace pred (y, q) x;
          walk rest
      in
      walk chain)
    g.chains;
  (pred, succ)

(* Kahn topological order over per-qubit chain edges; nodes left with a
   positive in-degree sit on (or behind) a dependence cycle. Edges whose
   endpoint is not a live node (a dangling chain id) are skipped so the
   walk stays total on corrupted graphs. *)
let kahn g =
  let _, succ = edge_tables g in
  let indeg = Hashtbl.create (size g) in
  Hashtbl.iter (fun id _ -> Hashtbl.replace indeg id 0) g.nodes;
  let bump id d =
    match Hashtbl.find_opt indeg id with
    | None -> ()
    | Some v -> Hashtbl.replace indeg id (v + d)
  in
  Hashtbl.iter (fun _ s -> bump s 1) succ;
  let order = ref [] in
  let module Iset = Set.Make (Int) in
  let ready = ref Iset.empty in
  Hashtbl.iter (fun id d -> if d = 0 then ready := Iset.add id !ready) indeg;
  let emitted = ref 0 in
  while not (Iset.is_empty !ready) do
    let id = Iset.min_elt !ready in
    ready := Iset.remove id !ready;
    order := id :: !order;
    incr emitted;
    let inst = find g id in
    List.iter
      (fun q ->
        match Hashtbl.find_opt succ (id, q) with
        | None -> ()
        | Some s ->
          bump s (-1);
          if Hashtbl.find_opt indeg s = Some 0 then ready := Iset.add s !ready)
      inst.Inst.qubits
  done;
  let stuck =
    Hashtbl.fold (fun id d acc -> if d > 0 then id :: acc else acc) indeg []
  in
  (List.rev !order, List.sort compare stuck)

let topo_ids g =
  match kahn g with
  | order, [] -> order
  | _ -> failwith "Gdg: cyclic dependence graph"

let insts g = List.map (find g) (topo_ids g)
let iter_insts g f = Hashtbl.iter (fun _ i -> f i) g.nodes

let chain g q =
  if q < 0 || q >= g.n_qubits then invalid_arg "Gdg.chain: qubit out of range";
  List.map (find g) g.chains.(q)

let chain_ids g q =
  if q < 0 || q >= g.n_qubits then
    invalid_arg "Gdg.chain_ids: qubit out of range";
  g.chains.(q)

let neighbor_on g id ~qubit ~dir =
  if not (mem g id) then raise Not_found;
  let rec walk = function
    | [] | [ _ ] -> None
    | x :: (y :: _ as rest) ->
      if x = id && dir = `Succ then Some y
      else if y = id && dir = `Pred then Some x
      else walk rest
  in
  Option.map (find g) (walk g.chains.(qubit))

let pred_on g id ~qubit = neighbor_on g id ~qubit ~dir:`Pred
let succ_on g id ~qubit = neighbor_on g id ~qubit ~dir:`Succ
let neighbor_tables g = edge_tables g

let parents g id =
  let inst = find g id in
  inst.Inst.qubits
  |> List.filter_map (fun q -> pred_on g id ~qubit:q)
  |> List.sort_uniq (fun (a : Inst.t) b -> compare a.Inst.id b.Inst.id)

let children g id =
  let inst = find g id in
  inst.Inst.qubits
  |> List.filter_map (fun q -> succ_on g id ~qubit:q)
  |> List.sort_uniq (fun (a : Inst.t) b -> compare a.Inst.id b.Inst.id)

let set_latency g id latency =
  let inst = find g id in
  Hashtbl.replace g.nodes id { inst with Inst.latency }

let copy g =
  { n_qubits = g.n_qubits;
    nodes = Hashtbl.copy g.nodes;
    chains = Array.copy g.chains;
    next = g.next }

(* Bounded cycle check after contracting two nodes into [m]. Contracting
   a DAG can only create cycles through the contracted node, and such a
   cycle must re-enter [m] through one of its chain predecessors — all old
   nodes. [rank] is a pre-merge topological potential (ASAP start times):
   along every post-merge edge between old nodes, rank is non-decreasing
   (the edge either existed before or shortcuts an old path through a
   dropped occurrence of a merge endpoint). Every node on a path from a
   successor of [m] back into [m] therefore has rank at most the largest
   predecessor rank, so a BFS from [m]'s successors pruned at that bound
   is sound AND complete — and in the common accepted-merge case visits
   only the short time-window between the merge endpoints instead of the
   whole graph. Callers should return [neg_infinity] for unknown ids
   (never pruned, keeping the check sound). *)
let cycle_through g ~rank m =
  let inst = find g m in
  let preds = ref [] and succs = ref [] in
  List.iter
    (fun q ->
      let rec walk prev = function
        | [] -> ()
        | x :: rest ->
          if x = m then begin
            (match prev with Some p -> preds := p :: !preds | None -> ());
            match rest with y :: _ -> succs := y :: !succs | [] -> ()
          end
          else walk (Some x) rest
      in
      walk None g.chains.(q))
    inst.Inst.qubits;
  match !preds with
  | [] -> false
  | ps ->
    let bound = List.fold_left (fun acc p -> Float.max acc (rank p)) neg_infinity ps in
    (* lazy per-qubit successor index: only chains the BFS actually
       crosses get walked *)
    let next_tbl : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
    let next_on q id =
      let tbl =
        match Hashtbl.find_opt next_tbl q with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 16 in
          let rec idx = function
            | x :: (y :: _ as rest) ->
              Hashtbl.replace t x y;
              idx rest
            | _ -> ()
          in
          idx g.chains.(q);
          Hashtbl.replace next_tbl q t;
          t
      in
      Hashtbl.find_opt tbl id
    in
    let visited = Hashtbl.create 16 in
    let queue = Queue.create () in
    List.iter
      (fun s ->
        if rank s <= bound && not (Hashtbl.mem visited s) then begin
          Hashtbl.replace visited s ();
          Queue.add s queue
        end)
      !succs;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun q ->
          match next_on q x with
          | None -> ()
          | Some y ->
            if y = m then found := true
            else if (not (Hashtbl.mem visited y)) && rank y <= bound then begin
              Hashtbl.replace visited y ();
              Queue.add y queue
            end)
        (find g x).Inst.qubits
    done;
    !found

let merge ?rank g ~latency a b =
  if a = b then invalid_arg "Gdg.merge: cannot merge a node with itself";
  let ia = find g a and ib = find g b in
  let saved_chains = Array.copy g.chains in
  let saved_next = g.next in
  let merged = Inst.merge ~id:(fresh_id g) ~latency ia ib in
  let replace chain =
    (* put the merged node at the first occurrence of either id, drop the
       second occurrence *)
    let rec go seen = function
      | [] -> []
      | x :: rest when x = a || x = b ->
        if seen then go seen rest else merged.Inst.id :: go true rest
      | x :: rest -> x :: go seen rest
    in
    go false chain
  in
  List.iter
    (fun q -> g.chains.(q) <- replace g.chains.(q))
    merged.Inst.qubits;
  Hashtbl.remove g.nodes a;
  Hashtbl.remove g.nodes b;
  Hashtbl.replace g.nodes merged.Inst.id merged;
  let cyclic =
    match rank with
    | Some rank -> cycle_through g ~rank merged.Inst.id
    | None -> (match kahn g with _, [] -> false | _ -> true)
  in
  if cyclic then begin
    Array.blit saved_chains 0 g.chains 0 Array.(length saved_chains);
    Hashtbl.remove g.nodes merged.Inst.id;
    Hashtbl.replace g.nodes a ia;
    Hashtbl.replace g.nodes b ib;
    g.next <- saved_next;
    invalid_arg "Gdg.merge: merge would create a dependence cycle"
  end;
  merged

let asap g =
  let pred, _ = edge_tables g in
  let finish = Hashtbl.create (size g) in
  let entries = ref [] in
  let makespan = ref 0. in
  List.iter
    (fun id ->
      let inst = find g id in
      let start =
        List.fold_left
          (fun acc q ->
            match Hashtbl.find_opt pred (id, q) with
            | None -> acc
            | Some p -> Float.max acc (Hashtbl.find finish p))
          0. inst.Inst.qubits
      in
      let f = start +. inst.Inst.latency in
      Hashtbl.replace finish id f;
      entries := (id, (start, f)) :: !entries;
      if f > !makespan then makespan := f)
    (topo_ids g);
  (List.rev !entries, !makespan)

let makespan g = snd (asap g)

let all_gates g = List.concat_map (fun i -> i.Inst.gates) (insts g)

type problem =
  | Dangling_node of { qubit : int; id : int }
  | Not_in_support of { qubit : int; id : int }
  | Missing_from_chain of { qubit : int; id : int }
  | Duplicate_on_chain of { qubit : int; id : int }
  | Cycle of int list

let problem_message = function
  | Dangling_node { qubit; id } ->
    Printf.sprintf "Gdg: dangling node %d on qubit %d" id qubit
  | Not_in_support { qubit; id } ->
    Printf.sprintf "Gdg: node %d on chain %d but not in support" id qubit
  | Missing_from_chain { qubit; id } ->
    Printf.sprintf "Gdg: node %d missing from chain %d" id qubit
  | Duplicate_on_chain { qubit; id } ->
    Printf.sprintf "Gdg: duplicate node %d on qubit %d" id qubit
  | Cycle ids ->
    Printf.sprintf "Gdg: cyclic dependence through nodes %s"
      (String.concat ", " (List.map string_of_int ids))

let problems g =
  (* every chain id resolves; every node appears exactly once per support
     qubit and nowhere else; the graph is acyclic *)
  let probs = ref [] in
  let add p = probs := p :: !probs in
  Array.iteri
    (fun q chain ->
      List.iter
        (fun id ->
          match Hashtbl.find_opt g.nodes id with
          | None -> add (Dangling_node { qubit = q; id })
          | Some inst ->
            if not (Inst.acts_on inst q) then
              add (Not_in_support { qubit = q; id }))
        chain;
      let sorted = List.sort compare chain in
      let rec dups = function
        | x :: y :: rest when x = y ->
          add (Duplicate_on_chain { qubit = q; id = x });
          dups (List.filter (fun z -> z <> x) rest)
        | _ :: rest -> dups rest
        | [] -> ()
      in
      dups sorted)
    g.chains;
  let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) g.nodes []) in
  List.iter
    (fun id ->
      let inst = find g id in
      List.iter
        (fun q ->
          if q >= 0 && q < Array.length g.chains
             && not (List.mem id g.chains.(q)) then
            add (Missing_from_chain { qubit = q; id }))
        inst.Inst.qubits)
    ids;
  (match kahn g with _, [] -> () | _, stuck -> add (Cycle stuck));
  List.rev !probs

let validate g =
  match problems g with
  | [] -> ()
  | p :: _ -> failwith (problem_message p)

let pp ppf g =
  Format.fprintf ppf "@[<v>gdg: %d qubits, %d instructions@," g.n_qubits (size g);
  List.iter (fun i -> Format.fprintf ppf "  %a@," Inst.pp i) (insts g);
  Format.fprintf ppf "@]"
