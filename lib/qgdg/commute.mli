(** Commutation checks between gates and instruction blocks.

    The paper resolves commutation "by explicitly checking the equality of
    unitary operators ÂB̂ and B̂Â" (§3.3). This module decides exactly that
    on the joint support, with structural fast paths for the common cases
    of Table 2 (disjoint supports, diagonal×diagonal, identical gates) and
    two algebraic fast paths before the dense fallback: a phase-polynomial
    comparison for CNOT+diagonal blocks and a Pauli-tableau comparison
    (with a statevector tie-break for the residual global phase) for
    Clifford blocks. Dense unitaries are only built when the query escapes
    every one of these.

    When a metrics registry is ambient ({!Qobs.Metrics}), every query is
    attributed to exactly one route: [commute.route.structural] /
    [memo] / [phase_poly] / [tableau] / [dense] / [oversize] counters
    (summing to [commute.checks]) with matching [.ms] time histograms,
    and [commute.dense.width] records the joint support width of every
    dense fallback. *)

val gates : Qgate.Gate.t -> Qgate.Gate.t -> bool
(** Do two gates commute as operators? *)

val blocks : Qgate.Gate.t list -> Qgate.Gate.t list -> bool
(** Do two member-gate blocks commute as whole operators? Joint supports
    larger than {!max_check_width} qubits conservatively return [false]
    (unless disjoint or both diagonal). Since the oracle rewrite this is
    {!Oracle.blocks}: summaries are digest-memoized, the slow path
    dispatches on klass pairs and is memoized on digest pairs, and dense
    unitaries are the last resort. *)

val insts : Inst.t -> Inst.t -> bool

val blocks_reference : Qgate.Gate.t list -> Qgate.Gate.t list -> bool
(** The pre-oracle decision chain, retained memo-free (structural
    shortcuts, width gate, attempt-and-fail phase-polynomial then
    tableau dispatch, dense fallback) — the qcheck suite pins {!blocks}
    against it on random blocks and on every suite circuit. *)

val insts_reference : Inst.t -> Inst.t -> bool
(** {!blocks_reference} on the instructions' member gates. *)

val max_check_width : int
(** Support-size cap (8) above which the dense check is not attempted. *)

val dense_commute : Qgate.Gate.t list -> Qgate.Gate.t list -> bool
(** The reference dense comparison on the joint support (false beyond
    {!max_check_width}), with no algebraic fast paths — exposed so tests
    can cross-check the fast paths against it. *)

val reset_memos : unit -> unit
(** Clear the calling domain's oracle memos (classification, pair,
    diagonal and unitary tables — an alias of
    {!Oracle.reset_memos}). Benchmarks use this to measure cold-path
    timings reproducibly; results are unaffected (the memos are pure
    caches). *)

val is_diagonal_block : Qgate.Gate.t list -> bool
(** Is the composed unitary diagonal in the computational basis? True
    algebraically when all members are diagonal; otherwise checked
    densely on the support (false beyond {!max_check_width}). *)
