(** The commutation oracle: one summary-keyed entry point for every
    commutativity-detection decision (ROADMAP Open item 2).

    A block's {e summary} is its content digest (relabelled onto its own
    support), its sorted support, and its classification by the cheapest
    abstract domain that pins its semantics — identity / diagonal /
    Clifford / phase-linear / general — plus the raw fragment-membership
    flags the dispatcher routes on. Classification is memoized on the
    digest, so congruent blocks anywhere on the register (the same
    excitation or adder template stamped onto different qubit sets) are
    classified once per domain.

    Three consumers sit on top of the oracle: pairwise commutation
    ({!blocks} / {!gates}, re-exported by {!Commute}), diagonal-prefix
    recognition for the detect pass ({!scan_push} / {!scan_is_diagonal},
    consumed by {!Diagonal}), and CLS group construction
    ({!Comm_group.build} passes per-instruction summaries back into
    {!blocks}). All memo tables are per-domain (Domain.DLS) and cleared
    by {!reset_memos}, so [-j N] runs stay byte-identical. *)

type klass = Identity | Diagonal | Clifford | Phase_linear | General

val klass_to_string : klass -> string
(** Lower-case name: ["identity"] … ["general"]. *)

type t = {
  digest : string;  (** hex digest of the relabelled member list *)
  support : int list;  (** sorted qubit support *)
  klass : klass;
  in_clifford : bool;  (** tableau domain applies (independent of klass) *)
  in_phase_poly : bool;  (** phase-polynomial domain applies *)
  all_diagonal : bool;  (** every member gate is syntactically diagonal *)
}

val of_gates : Qgate.Gate.t list -> t * bool
(** The block's summary plus whether the classification was a memo hit
    (callers that meter cache traffic — {!Qflow.Summary} — tick on the
    flag; this module itself never ticks classification counters). *)

val max_check_width : int
(** Support-size cap (8) above which the dense check is not attempted. *)

val blocks : ?sa:t -> ?sb:t -> Qgate.Gate.t list -> Qgate.Gate.t list -> bool
(** Do two member-gate blocks commute as whole operators? Structural
    shortcuts (empty, disjoint supports, both sides syntactically
    diagonal), then the width gate, the klass-pair shortcut, the
    digest-pair memo, the flag-dispatched algebraic domains, and the
    dense comparison last. [sa]/[sb] supply precomputed summaries
    (callers holding per-instruction caches); otherwise summaries are
    computed (and digest-memoized) per call.

    Ticks [commute.checks] and exactly one [commute.route.<r>] counter
    (structural / memo / phase_poly / tableau / dense / oversize) with a
    matching [.ms] histogram, plus the legacy [commute.*] counters, when
    a metrics registry is ambient. *)

val gates : Qgate.Gate.t -> Qgate.Gate.t -> bool
(** Do two gates commute as operators? *)

type pair_route = Pair_phase_poly | Pair_tableau | Pair_undecided

val algebraic_pair :
  in_phase_poly:bool ->
  in_clifford:bool ->
  n_qubits:int ->
  Qgate.Gate.t list ->
  Qgate.Gate.t list ->
  bool option * pair_route
(** The algebraic-only pair check on an already-relabelled pair,
    dispatched on the blocks' fragment-membership flags: phase-polynomial
    strict equality when both blocks sit in the CNOT+diagonal fragment,
    else tableau equality (with a statevector-column global-phase
    tie-break) when both are Clifford, else undecided. No metrics, no
    memo — callers ({!decide}'s slow path, {!Qflow.Summary.commutes})
    own both. *)

val dense_on : n_qubits:int -> Qgate.Gate.t list -> Qgate.Gate.t list -> bool
(** The dense comparison on already-relabelled gates (support 0..n-1),
    through the content-addressed unitary cache; ticks
    [commute.unitary]. *)

val unitary_on_own : Qgate.Gate.t list -> int list * Qnum.Cmat.t
(** The block's unitary on its own sorted support (cached). *)

(** {2 Incremental diagonal-prefix scanning}

    The detect pass grows pair-confined runs and asks, per prefix,
    whether the composed unitary is diagonal. A scan composes the run
    once — syntactic diagonality, a first-seen relabelling (prefix-stable
    and label-independent), an in-place phase polynomial, and a
    prefix-free key buffer — so an n-gate run costs O(n) domain updates
    instead of the reference's O(n²) rebuild, and every decision is
    memoized per congruence class in the per-domain [diagonal] table.

    Every {!scan_is_diagonal} call ticks [detect.checks] and exactly one
    [detect.route.<r>] counter (structural / memo / phase_poly / dense /
    oversize) with a matching [.ms] histogram. *)

type scan

val scan_create : unit -> scan

val scan_push : scan -> Qgate.Gate.t list -> unit
(** Append the next run node's member gates to the scanned prefix. *)

val scan_is_diagonal : scan -> bool
(** Is the current prefix's composed unitary diagonal in the
    computational basis? Decision-identical to
    {!Commute.is_diagonal_block} on the concatenated prefix (the qcheck
    suite pins this). *)

val reset_memos : unit -> unit
(** Clear the calling domain's classification, pair, diagonal and
    unitary memos. Benchmarks use this to measure cold-path timings
    reproducibly; results are unaffected (the memos are pure caches). *)
