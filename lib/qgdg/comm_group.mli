(** Per-qubit commutation groups (paper §3.3.2).

    On each qubit, the instruction chain is partitioned into maximal runs
    of consecutive, pairwise-commuting instructions. Two instructions may
    be freely reordered iff they share a group on {e every} common qubit —
    e.g. the two CNOTs of a CNOT–Rz–CNOT structure share a group on the
    control qubit (an Rz there can travel through) but not on the target
    qubit. *)

type t

val build : ?commute:(Inst.t -> Inst.t -> bool) -> Gdg.t -> t
(** Pairwise operator-commutation checks along every chain. By default
    every check goes through the commutation oracle ({!Oracle.blocks})
    with a per-build summary cache keyed by instruction id — ids are
    unique and blocks immutable, so caching by id is sound, and each
    instruction is digested and classified once per build instead of
    once per pair probe. Callers that rebuild groups repeatedly (the
    aggregator) pass their own memoized [commute]. *)

val build_reference : Gdg.t -> t
(** {!build} over the memo-free pre-oracle decision chain
    ({!Commute.insts_reference}); the qcheck suite pins the default
    build's partitions against it on every suite circuit. *)

val refresh :
  ?commute:(Inst.t -> Inst.t -> bool) -> t -> Gdg.t -> qubits:int list -> unit
(** Recompute the groups of the listed qubits only — a merge changes
    membership solely on the merged instruction's support, so the
    aggregator refreshes incrementally instead of rebuilding all chains. *)

val groups_on : t -> int -> int list list
(** Ordered groups (of instruction ids) on a qubit. *)

val group_index : t -> qubit:int -> int -> int
(** Position of an instruction's group on a qubit.
    Raises [Not_found] when the instruction is not on that qubit. *)

val lookup : t -> qubit:int -> int -> int
(** Total {!group_index}: [-1] when the instruction is not on the
    qubit — the O(1) membership probe schedulers sit on. *)

val same_group : t -> qubit:int -> int -> int -> bool

val reorderable : t -> Inst.t -> Inst.t -> bool
(** Same group on every shared qubit (true for disjoint supports). *)
