(** Diagonal-unitary detection and contraction (paper §3.3.1, §4.2).

    Searches the GDG for contiguous runs confined to a single qubit pair
    whose composed unitary is diagonal — the CNOT–Rz–CNOT structures of
    QAOA/UCCSD circuits — and contracts each into one instruction. The
    contracted blocks commute with one another, which is what unlocks the
    commutativity-aware scheduler's freedom. Runs are limited to 2 qubits
    (to preserve parallelism) and [max_run_gates] member gates.

    The production path runs on the commutation oracle ({!Oracle}): flat
    per-qubit frontier tables replace the per-query chain walks, each
    run's prefixes are decided by one incremental phase-polynomial scan
    (digest-memoized per congruence class, attributed to
    [detect.route.*]), merges are validated by bounded reachability
    probes against an incrementally-maintained ASAP rank, and sweeps
    after the first revisit only the neighborhood each contraction
    invalidated. The pre-oracle implementation is retained as
    {!detect_and_contract_reference} and the qcheck suite pins both to
    identical merges and graphs on every suite circuit. *)

val max_run_gates : int
(** 10, the paper's practical bound on exhaustive block search. *)

val detect_and_contract :
  latency:(Qgate.Gate.t list -> float) -> Gdg.t -> int
(** Contract until fixpoint; returns the number of merges performed. The
    GDG is modified in place; merged instructions are re-costed with
    [latency]. *)

val detect_and_contract_reference :
  latency:(Qgate.Gate.t list -> float) -> Gdg.t -> int
(** The pre-oracle fixpoint (full re-sweep per round, per-prefix dense
    re-checks, full topological validation per merge), retained as the
    behavioural reference. *)

val grow_run : Gdg.t -> int -> int list
(** The longest contiguous run starting at a node whose support stays
    within one qubit pair (production table-backed bookkeeping; builds
    its tables per call — tests and one-off callers only). *)

val grow_run_reference : Gdg.t -> int -> int list
(** The list-based reference {!grow_run} (polymorphic sorts and chain
    walks), pinned equal to the production path by qcheck. *)
