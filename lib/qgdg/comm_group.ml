type t = {
  per_qubit : int list list array;  (** ordered groups of instruction ids *)
  nq : int;
  mutable index : int array;
      (** [id * nq + qubit] -> group position, [-1] when the instruction
          is not on that qubit. A flat array because [same_group] sits on
          the aggregator's innermost candidate test and every refresh
          rewrites a whole chain's entries. *)
}

let ensure_capacity t id =
  let cap = Array.length t.index / t.nq in
  if id >= cap then begin
    let ncap = max (id + 1) (2 * max 1 cap) in
    let index = Array.make (ncap * t.nq) (-1) in
    Array.blit t.index 0 index 0 (cap * t.nq);
    t.index <- index
  end

let groups_of_chain commute _g chain =
  (* the open group is kept as resolved instructions so each membership
     probe skips the node lookup *)
  let groups = ref [] and current = ref [] in
  let flush () =
    if !current <> [] then begin
      groups :=
        List.rev_map (fun (i : Inst.t) -> i.Inst.id) !current :: !groups;
      current := []
    end
  in
  List.iter
    (fun (inst : Inst.t) ->
      let commutes_with_all =
        List.for_all (fun prev -> commute prev inst) !current
      in
      if not commutes_with_all then flush ();
      current := inst :: !current)
    chain;
  flush ();
  List.rev !groups

let set_qubit t q ordered =
  List.iter
    (fun group -> List.iter (fun id -> t.index.((id * t.nq) + q) <- -1) group)
    t.per_qubit.(q);
  t.per_qubit.(q) <- ordered;
  List.iteri
    (fun pos group ->
      List.iter
        (fun id ->
          ensure_capacity t id;
          t.index.((id * t.nq) + q) <- pos)
        group)
    ordered

let refresh ?(commute = Commute.insts) t g ~qubits =
  List.iter
    (fun q -> set_qubit t q (groups_of_chain commute g (Gdg.chain g q)))
    (List.sort_uniq compare qubits)

(* The default build routes every pairwise check through the oracle with
   a per-build summary cache keyed by instruction id — ids are unique and
   blocks immutable, so caching per id is sound, and each instruction's
   digest/classification is computed once per build instead of once per
   pair probe. *)
let oracle_commute () =
  let summaries : (int, Oracle.t) Hashtbl.t = Hashtbl.create 256 in
  let summary_of (i : Inst.t) =
    match Hashtbl.find_opt summaries i.Inst.id with
    | Some s -> s
    | None ->
      let s = fst (Oracle.of_gates i.Inst.gates) in
      Hashtbl.replace summaries i.Inst.id s;
      s
  in
  fun a b ->
    Oracle.blocks ~sa:(summary_of a) ~sb:(summary_of b) a.Inst.gates
      b.Inst.gates

let build ?commute g =
  let commute =
    match commute with Some c -> c | None -> oracle_commute ()
  in
  let n = Gdg.n_qubits g in
  let nq = max 1 n in
  let t =
    { per_qubit = Array.make nq [];
      nq;
      index = Array.make (max 1 (Gdg.fresh_id g) * nq) (-1) }
  in
  refresh ~commute t g ~qubits:(List.init n (fun q -> q));
  t

let build_reference g = build ~commute:Commute.insts_reference g

let groups_on t q = t.per_qubit.(q)

let lookup t ~qubit id =
  let k = (id * t.nq) + qubit in
  if id >= 0 && k < Array.length t.index then t.index.(k) else -1

let group_index t ~qubit id =
  match lookup t ~qubit id with -1 -> raise Not_found | pos -> pos

let same_group t ~qubit a b =
  let x = lookup t ~qubit a in
  x >= 0 && x = lookup t ~qubit b

let reorderable t a b =
  List.for_all
    (fun q -> same_group t ~qubit:q a.Inst.id b.Inst.id)
    (Inst.common_qubits a b)
