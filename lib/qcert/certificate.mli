(** Certificates: the structured result of a certified compile.

    One {!boundary} record per certified pass boundary, each carrying a
    status, the dominant proof method, the number of elementary facts
    discharged, and any qlint-style diagnostics (QC0xx codes, see below).
    The whole-pipeline {!t} aggregates them; {!Certification_failed} is
    how [Qcc.Compiler.compile ~certify:true] fails fast, mirroring
    [Qlint.Report.Check_failed].

    QC code families (all distinct from qlint's QL0xx so [qcc lint] and
    [qcc certify] reports compose):

    - QC001 — a fact or boundary was skipped (width beyond every domain);
      warning severity: certification is sound but incomplete there.
    - QC01x — word equivalence: QC010 a rewritten segment's unitary
      changed, QC011 gate multiset mismatch, QC012 per-qubit gate order
      changed without justification.
    - QC02x — commutativity detection: QC020 a contracted block is not
      diagonal, QC021 contraction regrouping unexplained.
    - QC03x — scheduling: QC030 a schedule reorders non-commuting
      instructions, QC031 schedule/GDG instruction sets differ.
    - QC04x — routing: QC040 routed stream does not replay the placed
      logical stream, QC041 final placement mismatch.
    - QC05x — aggregation: QC050 an aggregate's unitary fails its
      cross-domain check, QC051 an aggregate exceeds the width limit,
      QC052 aggregation regrouping/reordering unexplained.
    - QC060 — end-to-end unitary mismatch (dense, small registers). *)

type status = Proved | Refuted | Skipped

val status_to_string : status -> string

(** What one boundary certifier established. *)
type outcome = {
  checks : int;  (** elementary facts discharged *)
  skipped : int;  (** facts out of reach of every domain *)
  method_ : string;  (** dominant proof method, e.g. "replay", "tableau" *)
  diags : Qlint.Diagnostic.t list;
}

val outcome :
  ?skipped:int -> ?diags:Qlint.Diagnostic.t list -> method_:string -> int ->
  outcome

val merge_outcomes : outcome list -> outcome
(** Sum checks/skips, concatenate diagnostics, join method names. *)

type boundary = {
  name : string;  (** pass-boundary name, matching {!Qcc.Compiler.passes} *)
  claim : string;  (** the proposition certified, human-readable *)
  status : status;
  bmethod : string;
  bchecks : int;
  bskipped : int;
  diagnostics : Qlint.Diagnostic.t list;
}

type t = {
  strategy : string;
  boundaries : boundary list;  (** in pipeline order *)
  proved : int;
  refuted : int;
  skipped : int;
  facts : int;  (** total elementary facts across boundaries *)
}

exception Certification_failed of t
(** Raised by certified compilation on the first refuted boundary; the
    payload ends with that boundary. A printer is registered. *)

val boundary_of_outcome : name:string -> claim:string -> outcome -> boundary
(** Status: [Refuted] when any diagnostic is error-severity; [Skipped]
    when nothing was checked but something was skipped; else [Proved]. *)

val make : strategy:string -> boundary list -> t
val ok : t -> bool
(** No refuted boundary. *)

val diagnostics : t -> Qlint.Diagnostic.t list
(** All boundary diagnostics, in pipeline order. *)

val summary_line : t -> string
(** e.g. ["cls_agg: CERTIFIED — 9 boundaries, 1284 facts (3 skipped)"]. *)

val pp : Format.formatter -> t -> unit
(** Summary line, one line per boundary, then any diagnostics. *)

val to_json : t -> Qobs.Json.t
(** Schema ["qcc.certificate/1"]. *)

val diag_to_json : Qlint.Diagnostic.t -> Qobs.Json.t
(** A diagnostic as a {!Qobs.Json} object (qlint's own emitter returns a
    raw string; certification reports embed diagnostics structurally). *)
