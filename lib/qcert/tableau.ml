(* re-export of {!Qdomain.Tableau}; see bitvec.ml for why *)
include Qdomain.Tableau
