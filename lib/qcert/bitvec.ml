(* re-export: the certification domains live in {!Qdomain} so that the
   compilation pipeline (Qgdg's commutation oracle) can use them without
   depending on the certifier; qcert keeps its historical module paths *)
include Qdomain.Bitvec
