(** Routing replay certificates.

    The router's contract is syntactic: the routed stream must be the
    placed image of the logical stream with SWAP instructions
    interleaved, where each inserted SWAP updates the tracked placement.
    The certifier replays the routed stream against the logical one,
    maintaining the placement; acceptance proves the semantic claim
    U_routed · P_initial = P_final · U_logical by construction (each
    inserted SWAP is absorbed into the placement permutation — "SWAPs
    cancel"). Mismatches are QC040; surviving placement or leftover
    logical instructions at the end are QC041. A program SWAP whose
    placed image coincides with a router-inserted SWAP is ambiguous; the
    replay backtracks over such choice points. *)

val insts :
  stage:string -> initial:Qmap.Placement.t -> final:Qmap.Placement.t ->
  logical:Qgdg.Inst.t list -> routed:Qgdg.Inst.t list ->
  Certificate.outcome
(** Replay an instruction stream (the CLS pipelines' routing boundary). *)

val circuit :
  stage:string -> initial:Qmap.Placement.t -> final:Qmap.Placement.t ->
  logical:Qgate.Circuit.t -> physical:Qgate.Circuit.t ->
  Certificate.outcome
(** Replay a plain gate stream (the program-order pipelines). *)
