module Gate = Qgate.Gate
module Inst = Qgdg.Inst
module Placement = Qmap.Placement
module D = Qlint.Diagnostic

let gates_equal = List.equal Gate.equal

(* one routed item is either the placed image of the next logical item
   or an inserted swap of two sites; [replay] walks the routed stream
   maintaining the placement, backtracking on ambiguity (bounded by
   [fuel]). Returns the number of matched items, or the position of the
   deepest mismatch for diagnostics. *)
let replay ~initial ~final ~logical ~routed =
  let logical = Array.of_list logical and routed = Array.of_list routed in
  let nl = Array.length logical and nr = Array.length routed in
  let fuel = ref 500_000 in
  let deepest = ref 0 in
  let saw_final_mismatch = ref false in
  let as_swap block =
    match block with
    | [ ({ Gate.kind = Gate.Swap; _ } as g) ] ->
      (match Gate.qubits g with [ a; b ] -> Some (a, b) | _ -> None)
    | _ -> None
  in
  let rec go p li ri =
    if !fuel <= 0 then `Out_of_fuel
    else begin
      decr fuel;
      if ri > !deepest then deepest := ri;
      if ri = nr then begin
        if li < nl then `Leftover_logical li
        else if not (Placement.equal p final) then begin
          saw_final_mismatch := true;
          `Final_mismatch
        end
        else `Ok
      end
      else begin
        let r = routed.(ri) in
        let via_logical =
          if li < nl then begin
            let image =
              List.map (Gate.map_qubits (Placement.site_of p)) logical.(li)
            in
            if gates_equal image r then Some (go p (li + 1) (ri + 1))
            else None
          end
          else None
        in
        match via_logical with
        | Some `Ok -> `Ok
        | Some `Out_of_fuel -> `Out_of_fuel
        | Some _ | None ->
          (* either not the next logical instruction's image, or that
             reading dead-ends later: try it as an inserted swap *)
          (match as_swap r with
           | Some (a, b) -> go (Placement.apply_swap p a b) li (ri + 1)
           | None -> `Mismatch ri)
      end
    end
  in
  match go initial 0 0 with
  | `Ok -> Ok nr
  | `Mismatch _ when !saw_final_mismatch ->
    (* some branch consumed every routed item and still missed the
       reported final placement — the sharper diagnosis *)
    Error `Final
  | `Mismatch ri -> Error (`Mismatch (max ri !deepest))
  | `Leftover_logical li -> Error (`Leftover li)
  | `Final_mismatch -> Error `Final
  | `Out_of_fuel -> Error `Fuel

let certify ~stage ~initial ~final ~logical ~routed ~ids =
  match replay ~initial ~final ~logical ~routed with
  | Ok n ->
    (* every routed item syntactically accounted for, plus the final
       placement identity *)
    Certificate.outcome ~method_:"replay" (n + 1)
  | Error (`Mismatch ri) ->
    Certificate.outcome ~method_:"replay" 0
      ~diags:
        [ D.make ~stage ?insts:(ids ri) ~code:"QC040" ~severity:D.Error
            (Printf.sprintf
               "routed stream diverges from the placed logical stream at \
                position %d" ri) ]
  | Error (`Leftover li) ->
    Certificate.outcome ~method_:"replay" 0
      ~diags:
        [ D.make ~stage ~code:"QC040" ~severity:D.Error
            (Printf.sprintf
               "routed stream ends with %d logical instructions unexecuted"
               (List.length logical - li)) ]
  | Error `Final ->
    Certificate.outcome ~method_:"replay" 0
      ~diags:
        [ D.make ~stage ~code:"QC041" ~severity:D.Error
            "replayed placement does not reach the reported final placement" ]
  | Error `Fuel ->
    Certificate.outcome ~method_:"replay" 0 ~skipped:1
      ~diags:
        [ D.make ~stage ~code:"QC001" ~severity:D.Warning
            "routing replay exceeded its backtracking budget" ]

let insts ~stage ~initial ~final ~logical ~routed =
  let routed_arr = Array.of_list routed in
  certify ~stage ~initial ~final
    ~logical:(List.map (fun (i : Inst.t) -> i.Inst.gates) logical)
    ~routed:(List.map (fun (i : Inst.t) -> i.Inst.gates) routed)
    ~ids:(fun ri ->
      if ri < Array.length routed_arr then
        Some [ routed_arr.(ri).Inst.id ]
      else None)

let circuit ~stage ~initial ~final ~logical ~physical =
  certify ~stage ~initial ~final
    ~logical:(List.map (fun g -> [ g ]) (Qgate.Circuit.gates logical))
    ~routed:(List.map (fun g -> [ g ]) (Qgate.Circuit.gates physical))
    ~ids:(fun _ -> None)
