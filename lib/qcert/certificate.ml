module D = Qlint.Diagnostic

type status = Proved | Refuted | Skipped

let status_to_string = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Skipped -> "skipped"

type outcome = {
  checks : int;
  skipped : int;
  method_ : string;
  diags : D.t list;
}

let outcome ?(skipped = 0) ?(diags = []) ~method_ checks =
  { checks; skipped; method_; diags }

let merge_outcomes outcomes =
  let methods =
    List.sort_uniq compare
      (List.concat_map
         (fun o -> if o.method_ = "" then [] else [ o.method_ ])
         outcomes)
  in
  { checks = List.fold_left (fun a o -> a + o.checks) 0 outcomes;
    skipped = List.fold_left (fun a o -> a + o.skipped) 0 outcomes;
    method_ = String.concat "+" methods;
    diags = List.concat_map (fun o -> o.diags) outcomes }

type boundary = {
  name : string;
  claim : string;
  status : status;
  bmethod : string;
  bchecks : int;
  bskipped : int;
  diagnostics : D.t list;
}

type t = {
  strategy : string;
  boundaries : boundary list;
  proved : int;
  refuted : int;
  skipped : int;
  facts : int;
}

exception Certification_failed of t

let boundary_of_outcome ~name ~claim o =
  let status =
    if List.exists D.is_error o.diags then Refuted
    else if o.checks = 0 && o.skipped > 0 then Skipped
    else Proved
  in
  { name;
    claim;
    status;
    bmethod = o.method_;
    bchecks = o.checks;
    bskipped = o.skipped;
    diagnostics = o.diags }

let make ~strategy boundaries =
  let count s = List.length (List.filter (fun b -> b.status = s) boundaries) in
  { strategy;
    boundaries;
    proved = count Proved;
    refuted = count Refuted;
    skipped = count Skipped;
    facts = List.fold_left (fun a b -> a + b.bchecks) 0 boundaries }

let ok t = t.refuted = 0
let diagnostics t = List.concat_map (fun b -> b.diagnostics) t.boundaries

let summary_line t =
  let skipped_facts =
    List.fold_left (fun a b -> a + b.bskipped) 0 t.boundaries
  in
  Printf.sprintf "%s: %s — %d boundaries, %d facts%s" t.strategy
    (if ok t then "CERTIFIED" else "REFUTED")
    (List.length t.boundaries) t.facts
    (if skipped_facts > 0 then Printf.sprintf " (%d skipped)" skipped_facts
     else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (summary_line t);
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-14s %-8s %-12s %5d facts%s  %s@," b.name
        (status_to_string b.status)
        b.bmethod b.bchecks
        (if b.bskipped > 0 then Printf.sprintf " (%d skipped)" b.bskipped
         else "")
        b.claim)
    t.boundaries;
  List.iter
    (fun d -> Format.fprintf ppf "  %a@," D.pp d)
    (diagnostics t);
  Format.fprintf ppf "@]"

open Qobs.Json

let diag_to_json (d : D.t) =
  Obj
    [ ("code", Str d.D.code);
      ("severity", Str (D.severity_to_string d.D.severity));
      ("message", Str d.D.message);
      ( "stage",
        match d.D.loc.D.stage with Some s -> Str s | None -> Null );
      ("insts", List (List.map (fun i -> Int i) d.D.loc.D.insts));
      ("qubits", List (List.map (fun q -> Int q) d.D.loc.D.qubits)) ]

let boundary_to_json b =
  Obj
    [ ("name", Str b.name);
      ("claim", Str b.claim);
      ("status", Str (status_to_string b.status));
      ("method", Str b.bmethod);
      ("checks", Int b.bchecks);
      ("skipped", Int b.bskipped);
      ("diagnostics", List (List.map diag_to_json b.diagnostics)) ]

let to_json t =
  Obj
    [ ("schema", Str "qcc.certificate/1");
      ("strategy", Str t.strategy);
      ("ok", Bool (ok t));
      ("proved", Int t.proved);
      ("refuted", Int t.refuted);
      ("skipped", Int t.skipped);
      ("facts", Int t.facts);
      ("boundaries", List (List.map boundary_to_json t.boundaries)) ]

(* module-init registration, never re-run after load *)
let () =
  Printexc.register_printer (function
    | Certification_failed t ->
      Some (Printf.sprintf "Qcert.Certificate.Certification_failed (%s)"
              (summary_line t))
    | _ -> None)
  [@@domain_safety frozen_after_init]
