(** Rewrite certificates for gate-stream optimizers.

    Lowering ([Qgate.Decompose.to_isa]) and peephole optimization
    ([Qcc.Handopt]) rewrite a gate stream in place while preserving the
    relative order of untouched gates. The certifier aligns the two
    streams on a longest common subsequence of identical gates
    (Hunt–Szymanski matching), splits both streams at the matched
    anchors, and proves each differing segment equivalent up to global
    phase with {!Domain.equal_gates}. A segment whose certificate fails
    is widened by fusing it with the following segment (absorbing the
    anchor between them into both sides) — rewrites such as
    Rz-across-a-disjoint-gate merges need the wider window. Segment-wise
    equivalence composes into equivalence of the whole streams.

    Failures are QC010 (error); a segment no domain can decide — only
    possible beyond {!Domain.dense_limit} qubits — degrades to a QC001
    warning (sound, incomplete). *)

val equivalence :
  stage:string -> src:Qgate.Gate.t list -> dst:Qgate.Gate.t list ->
  Certificate.outcome
