(* re-export of {!Qdomain.Phase_poly}; see bitvec.ml for why *)
include Qdomain.Phase_poly
