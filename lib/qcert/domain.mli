(** Decision procedures over the certification domains.

    Every question the per-boundary certifiers ask reduces to one of
    three judgments about gate words:

    - equivalence up to global phase ({!equal_gates}),
    - commutation of two blocks ({!blocks_commute}),
    - diagonality in the computational basis ({!is_diagonal_gates}).

    Each judgment tries, in order: syntactic fast paths, the complete
    symbolic domains ({!Tableau} for Clifford words, {!Phase_poly} for
    CNOT+diagonal words), and a dense-unitary fallback
    ({!Qgate.Unitary.on_support}) on supports of at most {!dense_limit}
    qubits. A [Proved]/[Refuted] answer is always sound; [Unknown] means
    the word left every domain and was too wide for the dense check. *)

type verdict = Proved | Refuted | Unknown

val verdict_to_string : verdict -> string

val dense_limit : int
(** Support width bound for the dense-unitary fallback (10). *)

val support : Qgate.Gate.t list -> int list
(** Sorted union of the gates' qubits. *)

val equal_gates :
  ?dense_limit:int -> Qgate.Gate.t list -> Qgate.Gate.t list ->
  verdict * string
(** [equal_gates a b] decides whether the two words implement the same
    unitary up to global phase on their joint support. The string names
    the deciding method ("identical", "tableau", "dense", "phase-poly",
    …). Qubit labels are taken as given (both words live in the same
    register); the joint support is relabelled internally. *)

val blocks_commute :
  ?dense_limit:int -> Qgate.Gate.t list -> Qgate.Gate.t list ->
  verdict * string
(** Whether the two blocks commute as operators up to global phase —
    i.e. the words [a·b] and [b·a] are equivalent. Disjoint supports,
    identical words and jointly-diagonal blocks are fast paths. *)

val is_diagonal_gates :
  ?dense_limit:int -> Qgate.Gate.t list -> verdict * string
(** Whether the word's unitary is diagonal in the computational basis
    (the semantic property {!Qgdg.Diagonal} relies on). *)

val dense_on_support : Qgate.Gate.t list -> Qnum.Cmat.t option
(** The word's unitary relabelled to its support, when the support is
    within {!dense_limit} (and the word nonempty); [None] otherwise. *)
