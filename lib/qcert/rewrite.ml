module Gate = Qgate.Gate
module D = Qlint.Diagnostic

type node = { si : int; dj : int; prev : node option }

(* longest common subsequence of identical gates, Hunt–Szymanski style:
   per-gate src position lists + a patience array of chain tails, O(r·log)
   in the number of matching position pairs *)
let lcs_anchors src dst =
  let ns = Array.length src and nd = Array.length dst in
  if ns = 0 || nd = 0 then []
  else begin
    let positions = Hashtbl.create 64 in
    Array.iteri
      (fun i g ->
        let l =
          match Hashtbl.find_opt positions g with Some l -> l | None -> []
        in
        (* prepended, so the list is naturally descending *)
        Hashtbl.replace positions g (i :: l))
      src;
    let slots = Array.make (min ns nd) None in
    let len = ref 0 in
    Array.iteri
      (fun j g ->
        match Hashtbl.find_opt positions g with
        | None -> ()
        | Some cands ->
          (* descending src positions: a smaller candidate of the same j
             can never chain onto a larger one *)
          List.iter
            (fun p ->
              let lo = ref 0 and hi = ref !len in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                match slots.(mid) with
                | Some n when n.si < p -> lo := mid + 1
                | _ -> hi := mid
              done;
              let prev = if !lo = 0 then None else slots.(!lo - 1) in
              slots.(!lo) <- Some { si = p; dj = j; prev };
              if !lo = !len then incr len)
            cands)
      dst;
    if !len = 0 then []
    else begin
      let rec unwind acc = function
        | None -> acc
        | Some n -> unwind ((n.si, n.dj) :: acc) n.prev
      in
      unwind [] slots.(!len - 1)
    end
  end

let slice arr lo hi = Array.to_list (Array.sub arr lo (hi - lo))

let equivalence ~stage ~src ~dst =
  if List.equal Gate.equal src dst then
    Certificate.outcome ~method_:"identical" 1
  else begin
    let src_arr = Array.of_list src and dst_arr = Array.of_list dst in
    let anchors = lcs_anchors src_arr dst_arr in
    (* split both streams at the anchors: segment k sits strictly between
       anchor k-1 and anchor k (with the stream ends as sentinels) *)
    let bounds = ((-1), (-1)) :: anchors in
    let n_seg = List.length bounds in
    let segs = Array.make n_seg ([], []) in
    let fences = Array.make (max 0 (n_seg - 1)) (Gate.id 0) in
    let rec fill k = function
      | [] -> ()
      | (i0, j0) :: rest ->
        let i1, j1 =
          match rest with
          | (i, j) :: _ -> (i, j)
          | [] -> (Array.length src_arr, Array.length dst_arr)
        in
        segs.(k) <- (slice src_arr (i0 + 1) i1, slice dst_arr (j0 + 1) j1);
        if k < n_seg - 1 then fences.(k) <- src_arr.(i1);
        fill (k + 1) rest
    in
    fill 0 bounds;
    let checks = ref (List.length anchors)
    and skipped = ref 0
    and diags = ref []
    and methods = ref [] in
    (* prove segments left to right; an undecided segment swallows the
       next fence and segment and is retried wider *)
    let rec prove k (s, d) =
      if s = [] && d = [] then next k
      else begin
        let verdict, meth = Domain.equal_gates s d in
        match verdict with
        | Domain.Proved ->
          incr checks;
          methods := meth :: !methods;
          next k
        | _ when k < n_seg - 1 ->
          let s2, d2 = segs.(k + 1) in
          let fence = fences.(k) in
          prove (k + 1) (s @ (fence :: s2), d @ (fence :: d2))
        | Domain.Refuted ->
          diags :=
            [ D.make ~stage ~qubits:(Domain.support (s @ d)) ~code:"QC010"
                ~severity:D.Error
                (Printf.sprintf
                   "rewritten segment is not equivalent to its source \
                    (%d -> %d gates, %s)"
                   (List.length s) (List.length d) meth) ]
        | Domain.Unknown ->
          incr skipped;
          diags :=
            [ D.make ~stage ~code:"QC001" ~severity:D.Warning
                (Printf.sprintf
                   "rewritten segment too wide for every domain \
                    (%d -> %d gates)"
                   (List.length s) (List.length d)) ]
      end
    and next k = if k < n_seg - 1 then prove (k + 1) segs.(k + 1) in
    prove 0 segs.(0);
    let method_ =
      match List.sort_uniq compare !methods with
      | [] -> "lcs"
      | ms -> "lcs+" ^ String.concat "+" ms
    in
    Certificate.outcome ~method_ !checks ~skipped:!skipped ~diags:!diags
  end
