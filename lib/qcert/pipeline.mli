(** Per-boundary certification driver for [Qcc.Compiler].

    A {!ctx} accumulates one {!Certificate.boundary} per certified pass
    seam; each entry point below corresponds to a pass name in
    [Qcc.Compiler.passes]. Certifiers run inside a ["certify-<name>"]
    trace span (kept out of the compiler's [pass.duration_ms] histogram)
    and tick the ambient metrics counters [qcert.proved] /
    [qcert.refuted] / [qcert.skipped] / [qcert.facts]. The first refuted
    boundary raises {!Certificate.Certification_failed} carrying the
    certificate built so far, mirroring the fail-fast behavior of
    [Qlint.Report.Check_failed] under [~check:true]. *)

type ctx

val create : ?obs:Qobs.Trace.t -> strategy:string -> unit -> ctx
val finish : ctx -> Certificate.t
(** The certificate of all boundaries recorded so far, in pipeline
    order. *)

val lower : ctx -> src:Qgate.Circuit.t -> dst:Qgate.Circuit.t -> unit
(** ISA lowering preserves the unitary up to global phase
    ({!Rewrite.equivalence}). *)

val handopt :
  ctx -> name:string -> src:Qgate.Circuit.t -> dst:Qgate.Circuit.t -> unit
(** Peephole optimization ([handopt-pre] / [handopt-post]) preserves the
    unitary up to global phase. *)

val gdg_build : ctx -> name:string -> circuit:Qgate.Circuit.t ->
  gdg:Qgdg.Gdg.t -> unit
(** The GDG's topological linearization is word-congruent to the input
    stream ({!Reorder.dependence}). *)

val contraction : ctx -> before:Qgdg.Inst.t list -> gdg:Qgdg.Gdg.t -> unit
(** Diagonal contraction: the instructions after [detect] regroup the
    snapshot [before] (QC021), and every contracted block is proved
    diagonal in the computational basis (QC020). *)

val schedule : ctx -> name:string -> gdg:Qgdg.Gdg.t -> Qsched.Schedule.t ->
  unit
(** The schedule executes the GDG's own instructions in an order whose
    inversions against the GDG's qubit chains all carry commutation
    certificates ({!Reorder.schedule}). *)

val route_insts : ctx -> initial:Qmap.Placement.t -> final:Qmap.Placement.t ->
  logical:Qgdg.Inst.t list -> routed:Qgdg.Inst.t list -> unit
(** Routing replay over an instruction stream ({!Route_check.insts}). *)

val route_circuit : ctx -> initial:Qmap.Placement.t ->
  final:Qmap.Placement.t -> logical:Qgate.Circuit.t ->
  physical:Qgate.Circuit.t -> unit
(** Routing replay over a plain gate stream ({!Route_check.circuit}). *)

val rebuild : ctx -> src:Qgate.Gate.t list -> gdg:Qgdg.Gdg.t -> unit
(** Rebuilding a GDG from the routed stream preserves the word under the
    dependence relation. *)

val aggregation : ctx -> width_limit:int -> before:Qgdg.Inst.t list ->
  gdg:Qgdg.Gdg.t -> unit
(** Aggregation: the instructions after [aggregate] regroup the snapshot
    [before] with certified reorderings (QC052) within [width_limit]
    (QC051); aggregates in the CNOT+diagonal fragment on at most 6 qubits
    additionally get a cross-domain unitary check (QC050). *)

val end_to_end_limit : int
(** Site-count bound for the dense whole-pipeline check (8). *)

val end_to_end : ctx -> n_sites:int -> initial:Qmap.Placement.t ->
  final:Qmap.Placement.t -> logical:Qgate.Circuit.t -> Qsched.Schedule.t ->
  unit
(** On registers of at most {!end_to_end_limit} sites, check
    U_routed · P_initial ≡ P_final · U_logical densely (QC060); wider
    registers record a skipped boundary (QC001). *)
