module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module D = Qlint.Diagnostic

type ctx = {
  strategy : string;
  obs : Qobs.Trace.t;
  mutable rev_boundaries : Certificate.boundary list;
}

let create ?(obs = Qobs.Trace.disabled) ~strategy () =
  { strategy; obs; rev_boundaries = [] }

let finish ctx = Certificate.make ~strategy:ctx.strategy (List.rev ctx.rev_boundaries)

(* run one boundary certifier under a "certify-<name>" span (deliberately
   not the compiler's [pass] helper: certification time must not pollute
   pass.duration_ms), tick the ambient qcert counters, and fail fast on
   refutation with the certificate built so far *)
let boundary ctx ~name ~claim f =
  let outcome =
    Qobs.Trace.with_span ctx.obs ("certify-" ^ name) (fun () ->
        let o = f () in
        Qobs.Trace.attr_int ctx.obs "checks" o.Certificate.checks;
        Qobs.Trace.attr_int ctx.obs "skipped" o.Certificate.skipped;
        Qobs.Trace.attr_str ctx.obs "method" o.Certificate.method_;
        o)
  in
  let b = Certificate.boundary_of_outcome ~name ~claim outcome in
  ctx.rev_boundaries <- b :: ctx.rev_boundaries;
  Qobs.Metrics.tick ~by:b.Certificate.bchecks "qcert.facts";
  (match b.Certificate.status with
   | Certificate.Proved -> Qobs.Metrics.tick "qcert.proved"
   | Certificate.Refuted -> Qobs.Metrics.tick "qcert.refuted"
   | Certificate.Skipped -> Qobs.Metrics.tick "qcert.skipped");
  if b.Certificate.status = Certificate.Refuted then
    raise (Certificate.Certification_failed (finish ctx))

let gates_of_insts insts =
  List.concat_map (fun (i : Inst.t) -> i.Inst.gates) insts

(* ---- boundary entry points, one per pass seam ---- *)

let lower ctx ~src ~dst =
  boundary ctx ~name:"lower"
    ~claim:"lowered stream \xe2\x89\xa1 source circuit up to global phase"
    (fun () ->
      Rewrite.equivalence ~stage:"lower" ~src:(Circuit.gates src)
        ~dst:(Circuit.gates dst))

let handopt ctx ~name ~src ~dst =
  boundary ctx ~name
    ~claim:"peephole-optimized stream \xe2\x89\xa1 its input up to global phase"
    (fun () ->
      Rewrite.equivalence ~stage:name ~src:(Circuit.gates src)
        ~dst:(Circuit.gates dst))

let gdg_build ctx ~name ~circuit ~gdg =
  boundary ctx ~name
    ~claim:"GDG linearization \xe2\x89\xa1 input stream under the dependence \
            relation"
    (fun () ->
      Reorder.dependence ~stage:name ~src:(Circuit.gates circuit)
        ~dst:(gates_of_insts (Gdg.insts gdg)))

(* a contracted block (Gdg.of_circuit starts from singletons, so any
   multi-gate instruction after [detect] is one) must be diagonal: that is
   the semantic fact Comm_group and CLS rely on downstream *)
let diagonality_outcome (i : Inst.t) =
  if List.length i.Inst.gates <= 1 then None
  else
    match Domain.is_diagonal_gates i.Inst.gates with
    | Domain.Proved, meth -> Some (Certificate.outcome ~method_:meth 1)
    | Domain.Refuted, meth ->
      Some
        (Certificate.outcome ~method_:meth 0
           ~diags:
             [ D.make ~stage:"detect" ~insts:[ i.Inst.id ]
                 ~qubits:i.Inst.qubits ~code:"QC020" ~severity:D.Error
                 (Printf.sprintf
                    "contracted instruction %d is not diagonal in the \
                     computational basis" i.Inst.id) ])
    | Domain.Unknown, _ ->
      Some
        (Certificate.outcome ~method_:"none" 0 ~skipped:1
           ~diags:
             [ D.make ~stage:"detect" ~insts:[ i.Inst.id ] ~code:"QC001"
                 ~severity:D.Warning
                 (Printf.sprintf
                    "contracted instruction %d too wide to prove diagonal"
                    i.Inst.id) ])

let contraction ctx ~before ~gdg =
  boundary ctx ~name:"detect"
    ~claim:"contracted blocks are diagonal and regroup the input \
            instructions"
    (fun () ->
      let after = Gdg.insts gdg in
      let regroup =
        Reorder.regroup ~stage:"detect" ~code_parse:"QC021"
          ~code_reorder:"QC021" ~before ~after ()
      in
      Certificate.merge_outcomes
        (regroup :: List.filter_map diagonality_outcome after))

let schedule ctx ~name ~gdg sched =
  boundary ctx ~name
    ~claim:"schedule replays a GDG topological order modulo certified \
            commutations"
    (fun () -> Reorder.schedule ~stage:name ~original:gdg sched)

let route_insts ctx ~initial ~final ~logical ~routed =
  boundary ctx ~name:"route"
    ~claim:"routed stream \xe2\x89\xa1 placed logical stream with absorbed \
            SWAPs"
    (fun () ->
      Route_check.insts ~stage:"route" ~initial ~final ~logical ~routed)

let route_circuit ctx ~initial ~final ~logical ~physical =
  boundary ctx ~name:"route"
    ~claim:"routed stream \xe2\x89\xa1 placed logical stream with absorbed \
            SWAPs"
    (fun () ->
      Route_check.circuit ~stage:"route" ~initial ~final ~logical ~physical)

let rebuild ctx ~src ~gdg =
  boundary ctx ~name:"rebuild"
    ~claim:"rebuilt GDG linearization \xe2\x89\xa1 routed stream under the \
            dependence relation"
    (fun () ->
      Reorder.dependence ~stage:"rebuild" ~src
        ~dst:(gates_of_insts (Gdg.insts gdg)))

(* cross-domain consistency: when an aggregate sits in the CNOT+diagonal
   fragment on a small support, its phase-polynomial matrix must agree
   with the dense product of its members — a check of the aggregated
   target unitary that also exercises the symbolic domain against the
   reference semantics *)
let cross_check_limit = 6

let cross_check_outcome (i : Inst.t) =
  let support = List.sort_uniq compare i.Inst.qubits in
  let k = List.length support in
  if List.length i.Inst.gates <= 1 || k = 0 || k > cross_check_limit then None
  else begin
    let index q =
      let rec find j = function
        | [] -> invalid_arg "Pipeline.cross_check"
        | s :: _ when s = q -> j
        | _ :: tl -> find (j + 1) tl
      in
      find 0 support
    in
    let local = List.map (Gate.map_qubits index) i.Inst.gates in
    match Phase_poly.of_gates ~n_qubits:k local with
    | None -> None
    | Some p ->
      let dense = Qgate.Unitary.of_gates ~n_qubits:k local in
      if Qnum.Cmat.equal_up_to_phase ~eps:1e-7 (Phase_poly.to_matrix p) dense
      then Some (Certificate.outcome ~method_:"cross-domain" 1)
      else
        Some
          (Certificate.outcome ~method_:"cross-domain" 0
             ~diags:
               [ D.make ~stage:"aggregate" ~insts:[ i.Inst.id ]
                   ~qubits:i.Inst.qubits ~code:"QC050" ~severity:D.Error
                   (Printf.sprintf
                      "aggregate %d: phase-polynomial unitary disagrees \
                       with the dense product of its members" i.Inst.id) ])
  end

let aggregation ctx ~width_limit ~before ~gdg =
  boundary ctx ~name:"aggregate"
    ~claim:"aggregates regroup the input instructions within the width \
            limit; target unitaries cross-checked"
    (fun () ->
      let after = Gdg.insts gdg in
      let regroup =
        Reorder.regroup ~stage:"aggregate" ~code_parse:"QC052"
          ~code_reorder:"QC052" ~width_limit ~before ~after ()
      in
      Certificate.merge_outcomes
        (regroup :: List.filter_map cross_check_outcome after))

(* ---- whole-pipeline dense check on small registers ---- *)

let end_to_end_limit = 8

let end_to_end ctx ~n_sites ~initial ~final ~logical sched =
  boundary ctx ~name:"end-to-end"
    ~claim:
      "U_routed \xc2\xb7 P_initial \xe2\x89\xa1 P_final \xc2\xb7 U_logical \
       (dense)"
    (fun () ->
      if n_sites > end_to_end_limit then
        Certificate.outcome ~method_:"dense" 0 ~skipped:1
          ~diags:
            [ D.make ~stage:"end-to-end" ~code:"QC001" ~severity:D.Warning
                (Printf.sprintf
                   "register of %d sites too wide for the dense \
                    end-to-end check (limit %d)" n_sites end_to_end_limit) ]
      else begin
        let embed c = Circuit.make n_sites (Circuit.gates c) in
        let u_sites = Circuit.unitary (embed (Qsched.Schedule.to_circuit sched)) in
        let u_logical = Circuit.unitary (embed logical) in
        let p_init = Qmap.Placement.permutation_unitary ~n_qubits:n_sites initial in
        let p_final = Qmap.Placement.permutation_unitary ~n_qubits:n_sites final in
        let lhs = Qnum.Cmat.mul u_sites p_init in
        let rhs = Qnum.Cmat.mul p_final u_logical in
        if Qnum.Cmat.equal_up_to_phase ~eps:1e-6 lhs rhs then
          Certificate.outcome ~method_:"dense" 1
        else
          Certificate.outcome ~method_:"dense" 0
            ~diags:
              [ D.make ~stage:"end-to-end" ~code:"QC060" ~severity:D.Error
                  "compiled unitary differs from the source circuit's \
                   unitary under the placement permutations" ]
      end)
