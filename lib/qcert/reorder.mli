(** Reordering and regrouping certificates.

    Three certifiers built on the projection lemma for trace monoids:
    two gate words over the dependence relation "shares a qubit" are
    equivalent iff they have the same gate multiset and identical
    per-qubit projections; any further reordering is legal exactly when
    every inverted pair commutes as operators, which {!Domain} decides
    pairwise. All three return an {!Certificate.outcome}; error-severity
    diagnostics mean refutation. *)

val dependence :
  stage:string -> src:Qgate.Gate.t list -> dst:Qgate.Gate.t list ->
  Certificate.outcome
(** Certify that the words are equal in the trace monoid — same multiset
    (QC011 otherwise) and same per-qubit projections (QC012) — which
    implies unitary equality outright. This covers GDG construction and
    rebuild boundaries, whose only freedom is interleaving
    disjoint-support gates. *)

val schedule :
  stage:string -> original:Qgdg.Gdg.t -> Qsched.Schedule.t ->
  Certificate.outcome
(** Certify that executing the schedule's linearization is equivalent to
    the GDG's program order: instruction sets must match (QC031), and
    every pair of instructions a qubit sees in inverted order must be
    proven to commute (QC030; proofs are memoized per pair). *)

val regroup :
  stage:string -> code_parse:string -> code_reorder:string ->
  ?width_limit:int -> before:Qgdg.Inst.t list -> after:Qgdg.Inst.t list ->
  unit -> Certificate.outcome
(** Certify an in-place grouping pass (diagonal contraction,
    aggregation): parse every after-instruction's member list as a
    concatenation of before-instruction gate lists ([code_parse] when
    impossible, or when some before-instruction is left over), enforce
    the width bound (QC051), then certify the realized constituent
    order by greedy block exchanges ([code_reorder]): iterated merges
    may hoist a whole intermediate aggregate past an earlier
    instruction, and the aggregate can commute as a block even when no
    member does individually, so each displaced run is certified at the
    finest granularity that proves it — member pairwise, member against
    the whole run, or run against run. *)
