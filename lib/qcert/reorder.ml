module Gate = Qgate.Gate
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module D = Qlint.Diagnostic

let gates_equal = List.equal Gate.equal

let err ~stage ?insts ?qubits code msg =
  D.make ~stage ?insts ?qubits ~code ~severity:D.Error msg

let warn ~stage ?insts ?qubits code msg =
  D.make ~stage ?insts ?qubits ~code ~severity:D.Warning msg

(* ---- word equivalence under the dependence relation ----

   Projection lemma: over the independence relation "disjoint supports",
   two words are congruent iff their gate multisets agree and, for every
   qubit, the subword of gates acting on that qubit is identical. Both
   sides are pure syntax — no commutation checks — yet congruence implies
   the unitaries are equal outright (adjacent independent gates commute
   exactly). *)
let dependence ~stage ~src ~dst =
  if gates_equal src dst then Certificate.outcome ~method_:"identical" 1
  else begin
    let diags = ref [] in
    let sorted w = List.sort Gate.compare w in
    if not (gates_equal (sorted src) (sorted dst)) then
      diags :=
        [ err ~stage "QC011"
            (Printf.sprintf
               "gate multiset changed across the boundary (%d -> %d gates)"
               (List.length src) (List.length dst)) ]
    else begin
      let qubits = Domain.support src in
      List.iter
        (fun q ->
          let proj w = List.filter (fun g -> Gate.acts_on g q) w in
          if not (gates_equal (proj src) (proj dst)) then
            diags :=
              err ~stage ~qubits:[ q ] "QC012"
                (Printf.sprintf
                   "gate order on qubit %d changed without a commutation \
                    certificate" q)
              :: !diags)
        qubits
    end;
    Certificate.outcome ~method_:"dependence"
      (1 + List.length (Domain.support src))
      ~diags:(List.rev !diags)
  end

(* ---- pairwise commutation with memoization ---- *)

type commute_cache = (int * int, Domain.verdict * string) Hashtbl.t

let commute_memo (cache : commute_cache) (a : Inst.t) (b : Inst.t) =
  let key = (min a.Inst.id b.Inst.id, max a.Inst.id b.Inst.id) in
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
    let v = Domain.blocks_commute a.Inst.gates b.Inst.gates in
    Hashtbl.add cache key v;
    v

(* certify every inversion between a reference instruction order (per
   qubit) and a realized order; shared by the schedule and regroup
   certifiers. [rank] positions an instruction in the realized word. *)
let certify_inversions ~stage ~code ~cache ~rank ~chain_of ~inst_of ~n_qubits
    ~checks ~skipped ~diags () =
  for q = 0 to n_qubits - 1 do
    let chain = chain_of q in
    let m = Array.length chain in
    if m * m > 4_000_000 then begin
      skipped := !skipped + 1;
      diags :=
        warn ~stage ~qubits:[ q ] "QC001"
          (Printf.sprintf
             "qubit %d: chain too long (%d) to enumerate inversions" q m)
        :: !diags
    end
    else
      for j = 1 to m - 1 do
        for i = 0 to j - 1 do
          if rank chain.(i) > rank chain.(j) then begin
            let a = inst_of chain.(i) and b = inst_of chain.(j) in
            match commute_memo cache a b with
            | Domain.Proved, _ -> incr checks
            | verdict, meth ->
              diags :=
                err ~stage ~insts:[ a.Inst.id; b.Inst.id ] ~qubits:[ q ] code
                  (Printf.sprintf
                     "instructions %d and %d reordered on qubit %d but their \
                      commutation is %s (%s)"
                     a.Inst.id b.Inst.id q
                     (Domain.verdict_to_string verdict)
                     meth)
                :: !diags
          end
        done
      done
  done

(* ---- realized-order justification by block exchanges ----

   The realized word need not be reachable from the input order by
   exchanges of *individual* instructions: iterated merges hoist whole
   intermediate aggregates past earlier instructions, and an aggregate
   can commute as a block while no member does individually (e.g. a
   swap-symmetric run of gates crossing a routing SWAP). Greedy
   certification: walk the realized order; whenever the next needed
   instruction sits deeper in the current word, exchange the displaced
   prefix B1 with the following run B2 whose members are all realized
   before B1, certifying the exchange at the finest granularity that
   proves it (member-pairwise, member-vs-block, block-vs-block) and
   falling back to a singleton B2 when the maximal run overshoots. Each
   certified exchange strictly reduces the inversion count against the
   realized order, so the walk terminates. *)
let certify_block_exchanges ~stage ~code ~cache ~rank ~inst_of ~n ~checks
    ~skipped ~diags () =
  if n > 8_000 then begin
    skipped := !skipped + 1;
    diags :=
      warn ~stage "QC001"
        (Printf.sprintf
           "word too long (%d instructions) to certify the realized order" n)
      :: !diags
  end
  else begin
    let c = Array.init n (fun i -> i) in
    (* target.(k) = the input index realized at position k *)
    let target = Array.make (max 1 n) 0 in
    for i = 0 to n - 1 do
      target.(rank i) <- i
    done;
    let fuel = ref 2_000_000 in
    let concat_gates arr =
      List.concat_map (fun idx -> (inst_of idx).Inst.gates) (Array.to_list arr)
    in
    let pair_verdict x y = commute_memo cache (inst_of x) (inst_of y) in
    (* x crosses the whole of [b2]: pairwise against every member, else as
       one block — a merged aggregate may commute only as a whole *)
    let crosses x b2 b2_gates =
      decr fuel;
      Array.for_all (fun y -> fst (pair_verdict x y) = Domain.Proved) b2
      || Array.length b2 > 1
         && fst (Domain.blocks_commute (inst_of x).Inst.gates
                   (Lazy.force b2_gates))
            = Domain.Proved
    in
    let exchange_proved b1 b2 =
      let b2_gates = lazy (concat_gates b2) in
      Array.for_all (fun x -> crosses x b2 b2_gates) b1
      || Array.length b1 > 1
         && fst (Domain.blocks_commute (concat_gates b1)
                   (Lazy.force b2_gates))
            = Domain.Proved
    in
    (* sharpest failing pair, for the diagnostic *)
    let failing_pair b1 b2 =
      let best = ref None in
      Array.iter
        (fun x ->
          Array.iter
            (fun y ->
              match pair_verdict x y with
              | Domain.Proved, _ -> ()
              | verdict, meth -> (
                match (!best, verdict) with
                | None, _ | Some (_, _, Domain.Unknown, _), Domain.Refuted ->
                  best := Some (x, y, verdict, meth)
                | _ -> ()))
            b2)
        b1;
      !best
    in
    let refuted = ref false in
    let k = ref 0 in
    while !k < n && (not !refuted) && !fuel > 0 do
      let t = target.(!k) in
      if c.(!k) = t then incr k
      else begin
        let p = ref !k in
        while c.(!p) <> t do
          incr p
        done;
        let p = !p in
        let min_b1 = ref max_int in
        for j = !k to p - 1 do
          min_b1 := min !min_b1 (rank c.(j))
        done;
        let q = ref p in
        while !q + 1 < n && rank c.(!q + 1) < !min_b1 do
          incr q
        done;
        let b1 = Array.sub c !k (p - !k) in
        let b2_max = Array.sub c p (!q - p + 1) in
        let b2_min = [| t |] in
        let b2 =
          if exchange_proved b1 b2_max then Some b2_max
          else if Array.length b2_max > 1 && exchange_proved b1 b2_min then
            Some b2_min
          else None
        in
        match b2 with
        | Some b2 ->
          incr checks;
          Array.blit b2 0 c !k (Array.length b2);
          Array.blit b1 0 c (!k + Array.length b2) (Array.length b1);
          incr k
        | None -> (
          match failing_pair b1 b2_min with
          | Some (x, y, Domain.Refuted, meth) ->
            refuted := true;
            let ix = inst_of x and iy = inst_of y in
            diags :=
              err ~stage ~insts:[ ix.Inst.id; iy.Inst.id ]
                ~qubits:(Inst.common_qubits ix iy) code
                (Printf.sprintf
                   "instructions %d and %d reordered but their commutation \
                    is refuted (%s), and no enclosing block exchange \
                    justifies the move"
                   ix.Inst.id iy.Inst.id meth)
              :: !diags
          | _ ->
            (* only Unknown verdicts: the move is unproven, not wrong —
               rotate anyway so later exchanges still get examined *)
            skipped := !skipped + 1;
            diags :=
              warn ~stage ~insts:[ (inst_of t).Inst.id ] "QC001"
                (Printf.sprintf
                   "could not prove the exchange moving instruction %d \
                    forward; remaining order checks are conditional"
                   (inst_of t).Inst.id)
              :: !diags;
            Array.blit b2_min 0 c !k 1;
            Array.blit b1 0 c (!k + 1) (Array.length b1);
            incr k)
      end
    done;
    if !fuel <= 0 && !k < n then begin
      skipped := !skipped + 1;
      diags :=
        warn ~stage "QC001"
          (Printf.sprintf
             "commutation budget exhausted after %d of %d realized positions"
             !k n)
        :: !diags
    end
  end

(* ---- schedule replay ≡ a GDG topological order ---- *)

let schedule ~stage ~original sched =
  let insts = Gdg.insts original in
  let entries = sched.Qsched.Schedule.entries in
  let gdg_ids = List.sort compare (List.map (fun i -> i.Inst.id) insts) in
  let sched_ids =
    List.sort compare
      (List.map (fun e -> e.Qsched.Schedule.inst.Inst.id) entries)
  in
  if gdg_ids <> sched_ids then
    Certificate.outcome ~method_:"replay" 0
      ~diags:
        [ err ~stage "QC031"
            (Printf.sprintf
               "schedule and GDG carry different instruction sets (%d vs %d \
                instructions)"
               (List.length sched_ids) (List.length gdg_ids)) ]
  else begin
    let checks = ref 1 and skipped = ref 0 and diags = ref [] in
    (* the schedule must execute the GDG's own blocks, not altered ones *)
    List.iter
      (fun (e : Qsched.Schedule.entry) ->
        let g = Gdg.find original e.Qsched.Schedule.inst.Inst.id in
        if gates_equal g.Inst.gates e.Qsched.Schedule.inst.Inst.gates then
          incr checks
        else
          diags :=
            err ~stage ~insts:[ g.Inst.id ] "QC031"
              (Printf.sprintf "instruction %d's members differ between \
                               schedule and GDG" g.Inst.id)
            :: !diags)
      entries;
    let rank = Hashtbl.create 64 in
    List.iteri
      (fun k (i : Inst.t) -> Hashtbl.replace rank i.Inst.id k)
      (Qsched.Schedule.linearize sched);
    let cache : commute_cache = Hashtbl.create 64 in
    certify_inversions ~stage ~code:"QC030" ~cache
      ~rank:(fun id -> Hashtbl.find rank id)
      ~chain_of:(fun q ->
        Array.of_list (List.map (fun i -> i.Inst.id) (Gdg.chain original q)))
      ~inst_of:(fun id -> Gdg.find original id)
      ~n_qubits:(Gdg.n_qubits original) ~checks ~skipped ~diags ();
    Certificate.outcome ~method_:"replay" !checks ~skipped:!skipped
      ~diags:(List.rev !diags)
  end

(* ---- regrouping (contraction / aggregation) ---- *)

(* parse [gates] as a concatenation of pool entries; pools map a member
   gate list to the queue of before-instruction indices carrying it, in
   program order (FIFO keeps identical blocks in their original relative
   order). Backtracking handles keys that are prefixes of one another. *)
let parse_concat ~pools ~by_first gates =
  let arr = Array.of_list gates in
  let n = Array.length arr in
  let fuel = ref 200_000 in
  let rec go pos =
    if !fuel <= 0 then None
    else begin
      decr fuel;
      if pos = n then Some []
      else
        match Hashtbl.find_opt by_first arr.(pos) with
        | None -> None
        | Some keys ->
          let try_key acc key =
            match acc with
            | Some _ -> acc
            | None ->
              let len = List.length key in
              let matches =
                pos + len <= n
                && List.for_all2 Gate.equal key
                     (Array.to_list (Array.sub arr pos len))
              in
              if not matches then None
              else
                match Hashtbl.find_opt pools key with
                | None | Some { contents = [] } -> None
                | Some q ->
                  let idx = List.hd !q in
                  q := List.tl !q;
                  (match go (pos + len) with
                   | Some rest -> Some (idx :: rest)
                   | None ->
                     q := idx :: !q;
                     None)
          in
          (* longest candidate first: the common case is an exact match *)
          let keys =
            List.sort
              (fun a b -> compare (List.length b) (List.length a))
              !keys
          in
          List.fold_left try_key None keys
    end
  in
  go 0

let regroup ~stage ~code_parse ~code_reorder ?width_limit ~before ~after () =
  let before_arr = Array.of_list before in
  let pools = Hashtbl.create 64 and by_first = Hashtbl.create 64 in
  Array.iteri
    (fun idx (i : Inst.t) ->
      let key = i.Inst.gates in
      (match Hashtbl.find_opt pools key with
       | Some q -> q := !q @ [ idx ]
       | None ->
         Hashtbl.add pools key (ref [ idx ]);
         let first = List.hd key in
         (match Hashtbl.find_opt by_first first with
          | Some ks -> if not (List.mem key !ks) then ks := key :: !ks
          | None -> Hashtbl.add by_first first (ref [ key ]))))
    before_arr;
  let checks = ref 0 and skipped = ref 0 and diags = ref [] in
  (* 1. every after-instruction is a concatenation of before-instructions *)
  let parses =
    List.map
      (fun (i : Inst.t) ->
        match parse_concat ~pools ~by_first i.Inst.gates with
        | Some constituents ->
          incr checks;
          (i, constituents)
        | None ->
          diags :=
            err ~stage ~insts:[ i.Inst.id ] code_parse
              (Printf.sprintf
                 "instruction %d's members are not a regrouping of the \
                  boundary's input instructions" i.Inst.id)
            :: !diags;
          (i, []))
      after
  in
  let leftovers =
    Hashtbl.fold (fun _ q acc -> acc + List.length !q) pools 0
  in
  if leftovers > 0 && !diags = [] then
    diags :=
      err ~stage code_parse
        (Printf.sprintf "%d input instructions vanished across the boundary"
           leftovers)
      :: !diags;
  if !diags <> [] then
    Certificate.outcome ~method_:"regroup" !checks ~diags:(List.rev !diags)
  else begin
    (* 2. width policy *)
    (match width_limit with
     | None -> ()
     | Some limit ->
       List.iter
         (fun (i : Inst.t) ->
           if Inst.width i > limit then
             diags :=
               err ~stage ~insts:[ i.Inst.id ] ~qubits:i.Inst.qubits "QC051"
                 (Printf.sprintf "instruction %d spans %d qubits (limit %d)"
                    i.Inst.id (Inst.width i) limit)
               :: !diags
           else incr checks)
         after);
    (* 3. the realized constituent order must be reachable from the input
       order by certified block exchanges *)
    let rank = Array.make (Array.length before_arr) 0 in
    let next = ref 0 in
    List.iter
      (fun (_, constituents) ->
        List.iter
          (fun idx ->
            rank.(idx) <- !next;
            incr next)
          constituents)
      parses;
    let cache : commute_cache = Hashtbl.create 64 in
    certify_block_exchanges ~stage ~code:code_reorder ~cache
      ~rank:(fun idx -> rank.(idx))
      ~inst_of:(fun idx -> before_arr.(idx))
      ~n:(Array.length before_arr) ~checks ~skipped ~diags ();
    Certificate.outcome ~method_:"regroup" !checks ~skipped:!skipped
      ~diags:(List.rev !diags)
  end
