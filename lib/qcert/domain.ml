module Gate = Qgate.Gate

type verdict = Proved | Refuted | Unknown

let verdict_to_string = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Unknown -> "unknown"

let dense_limit = 10
let default_dense = dense_limit

let support gates =
  List.sort_uniq compare (List.concat_map Gate.qubits gates)

(* relabel a word onto local indices of a (sorted) joint support *)
let relabel joint gates =
  let local = Hashtbl.create 16 in
  List.iteri (fun k q -> Hashtbl.replace local q k) joint;
  List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gates

let gates_equal = List.equal Gate.equal

let dense_on_support gates =
  match support gates with
  | [] -> None
  | joint when List.length joint <= dense_limit ->
    Some (Qgate.Unitary.of_gates ~n_qubits:(List.length joint)
            (relabel joint gates))
  | _ -> None

(* decide a ≡ b (up to global phase) for words already relabelled to a
   common register of [n] qubits *)
let equal_on ~dense_limit:dl n a b =
  if gates_equal a b then (Proved, "identical")
  else
    match (Tableau.of_gates ~n_qubits:n a, Tableau.of_gates ~n_qubits:n b) with
    | Some ta, Some tb ->
      (* complete on the Clifford fragment *)
      if Tableau.equal ta tb then (Proved, "tableau")
      else (Refuted, "tableau")
    | _ ->
      (* dense work is ~(|a|+|b|)·4ⁿ·2^arity flops; refuse pathological
         combinations of width and length rather than stall *)
      let affordable =
        n <= dl
        && (List.length a + List.length b) * (1 lsl (2 * n)) <= 100_000_000
      in
      if affordable then begin
        let ua = Qgate.Unitary.of_gates ~n_qubits:n a
        and ub = Qgate.Unitary.of_gates ~n_qubits:n b in
        if Qgate.Unitary.equal_up_to_global_phase ~eps:1e-7 ua ub then
          (Proved, "dense")
        else (Refuted, "dense")
      end
      else
        match
          (Phase_poly.of_gates ~n_qubits:n a, Phase_poly.of_gates ~n_qubits:n b)
        with
        | Some pa, Some pb ->
          (* sound both ways in practice; see the caveat in phase_poly.mli *)
          if Phase_poly.equal pa pb then (Proved, "phase-poly")
          else (Refuted, "phase-poly")
        | _ -> (Unknown, "too-wide")

let equal_gates ?(dense_limit = default_dense) a b =
  let joint = support (a @ b) in
  let n = List.length joint in
  if n = 0 then (Proved, "trivial")
  else equal_on ~dense_limit n (relabel joint a) (relabel joint b)

let is_diagonal_gates ?(dense_limit = default_dense) gates =
  if List.for_all (fun (g : Gate.t) -> Gate.is_diagonal_kind g.Gate.kind) gates
  then (Proved, "kinds")
  else
    let joint = support gates in
    let n = List.length joint in
    if n = 0 then (Proved, "trivial")
    else
      let local = relabel joint gates in
      match Phase_poly.of_gates ~n_qubits:n local with
      | Some p ->
        (* the affine part decides diagonality exactly on this fragment *)
        if Phase_poly.is_linear_identity p then (Proved, "phase-poly")
        else (Refuted, "phase-poly")
      | None ->
        if n <= dense_limit then
          if Qnum.Cmat.is_diagonal ~eps:1e-7
               (Qgate.Unitary.of_gates ~n_qubits:n local)
          then (Proved, "dense")
          else (Refuted, "dense")
        else (Unknown, "too-wide")

let blocks_commute ?(dense_limit = default_dense) a b =
  let sa = support a and sb = support b in
  if not (List.exists (fun q -> List.mem q sb) sa) then (Proved, "disjoint")
  else if gates_equal a b then (Proved, "identical")
  else
    let diag gates =
      match is_diagonal_gates ~dense_limit gates with
      | Proved, _ -> true
      | _ -> false
    in
    if diag a && diag b then (Proved, "diagonal")
    else
      let joint = List.sort_uniq compare (sa @ sb) in
      let n = List.length joint in
      let a = relabel joint a and b = relabel joint b in
      equal_on ~dense_limit n (a @ b) (b @ a)
