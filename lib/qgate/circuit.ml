type t = { n_qubits : int; gates : Gate.t list }

let check_gate n g =
  if List.exists (fun q -> q < 0 || q >= n) (Gate.qubits g) then
    invalid_arg
      (Printf.sprintf "Circuit: gate %s outside register of %d qubits"
         (Gate.to_string g) n)

let make n_qubits gates =
  if n_qubits < 0 then invalid_arg "Circuit.make: negative register";
  List.iter (check_gate n_qubits) gates;
  { n_qubits; gates }

let empty n_qubits = make n_qubits []

let append c g =
  check_gate c.n_qubits g;
  { c with gates = c.gates @ [ g ] }

let concat a b =
  if a.n_qubits <> b.n_qubits then
    invalid_arg "Circuit.concat: register size mismatch";
  { a with gates = a.gates @ b.gates }

let n_gates c = List.length c.gates
let n_qubits c = c.n_qubits
let gates c = c.gates
let count pred c = List.length (List.filter pred c.gates)
let two_qubit_count c = count (fun g -> Gate.arity g = 2) c

let depth c =
  let level = Array.make (max 1 c.n_qubits) 0 in
  List.fold_left
    (fun acc g ->
      let qs = Gate.qubits g in
      let d = 1 + List.fold_left (fun m q -> max m level.(q)) 0 qs in
      List.iter (fun q -> level.(q) <- d) qs;
      max acc d)
    0 c.gates

let critical_path_time latency c =
  let ready = Array.make (max 1 c.n_qubits) 0. in
  List.fold_left
    (fun acc g ->
      let qs = Gate.qubits g in
      let start = List.fold_left (fun m q -> Float.max m ready.(q)) 0. qs in
      let finish = start +. latency g in
      List.iter (fun q -> ready.(q) <- finish) qs;
      Float.max acc finish)
    0. c.gates

let used_qubits c =
  List.sort_uniq compare (List.concat_map Gate.qubits c.gates)

let interaction_graph c =
  let g = Qgraph.Graph.create c.n_qubits in
  List.iter
    (fun gate ->
      let rec pairs = function
        | [] -> ()
        | q :: rest ->
          List.iter (fun r -> Qgraph.Graph.add_edge g q r) rest;
          pairs rest
      in
      pairs (Gate.qubits gate))
    c.gates;
  g

let map_qubits f c =
  let gates = List.map (Gate.map_qubits f) c.gates in
  List.iter (check_gate c.n_qubits) gates;
  { c with gates }

let adjoint c = { c with gates = List.rev_map Gate.adjoint c.gates }

let unitary c =
  if c.n_qubits > 12 then
    invalid_arg "Circuit.unitary: register too large for dense unitary";
  Unitary.of_gates ~n_qubits:c.n_qubits c.gates

let equal_semantics ?(eps = 1e-9) a b =
  a.n_qubits = b.n_qubits
  && Unitary.equal_up_to_global_phase ~eps (unitary a) (unitary b)

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %d qubits, %d gates:@," c.n_qubits
    (n_gates c);
  List.iter (fun g -> Format.fprintf ppf "  %a@," Gate.pp g) c.gates;
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
