open Qnum

let c = Cx.make
let rl x = Cx.of_float x

let m2 a b cc d = Cmat.of_lists [ [ a; b ]; [ cc; d ] ]

let pauli_x = m2 Cx.zero Cx.one Cx.one Cx.zero
let pauli_y = m2 Cx.zero (c 0. (-1.)) (c 0. 1.) Cx.zero
let pauli_z = m2 Cx.one Cx.zero Cx.zero (rl (-1.))

let hadamard =
  let s = 1. /. Float.sqrt 2. in
  m2 (rl s) (rl s) (rl s) (rl (-.s))

let rot_x theta =
  let ct = rl (Float.cos (theta /. 2.)) in
  let st = c 0. (-.Float.sin (theta /. 2.)) in
  m2 ct st st ct

let rot_y theta =
  let ct = Float.cos (theta /. 2.) and st = Float.sin (theta /. 2.) in
  m2 (rl ct) (rl (-.st)) (rl st) (rl ct)

let rot_z theta =
  Cmat.diag [| Cx.cis (-.theta /. 2.); Cx.cis (theta /. 2.) |]

let phase_gate theta = Cmat.diag [| Cx.one; Cx.cis theta |]

let controlled u =
  (* |0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ u, control as the new most-significant qubit *)
  let d = Cmat.rows u in
  let m = Cmat.identity (2 * d) in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      Cmat.set m (d + i) (d + j) (Cmat.get u i j)
    done
  done;
  m

let cnot = controlled pauli_x
let cz_mat = controlled pauli_z

let swap_mat =
  Cmat.of_real_lists
    [ [ 1.; 0.; 0.; 0. ];
      [ 0.; 0.; 1.; 0. ];
      [ 0.; 1.; 0.; 0. ];
      [ 0.; 0.; 0.; 1. ] ]

let iswap_mat =
  Cmat.of_lists
    [ [ Cx.one; Cx.zero; Cx.zero; Cx.zero ];
      [ Cx.zero; Cx.zero; c 0. 1.; Cx.zero ];
      [ Cx.zero; c 0. 1.; Cx.zero; Cx.zero ];
      [ Cx.zero; Cx.zero; Cx.zero; Cx.one ] ]

let sqrt_iswap_mat =
  let s = 1. /. Float.sqrt 2. in
  Cmat.of_lists
    [ [ Cx.one; Cx.zero; Cx.zero; Cx.zero ];
      [ Cx.zero; rl s; c 0. s; Cx.zero ];
      [ Cx.zero; c 0. s; rl s; Cx.zero ];
      [ Cx.zero; Cx.zero; Cx.zero; Cx.one ] ]

(* exp(-i θ/2 σ⊗σ) for a Pauli pair whose square is the identity *)
let two_pauli_rotation sigma_pair theta =
  let cos_part = Cmat.scale_real (Float.cos (theta /. 2.)) (Cmat.identity 4) in
  let sin_part = Cmat.scale (c 0. (-.Float.sin (theta /. 2.))) sigma_pair in
  Cmat.add cos_part sin_part

let of_kind = function
  | Gate.I -> Cmat.identity 2
  | Gate.X -> pauli_x
  | Gate.Y -> pauli_y
  | Gate.Z -> pauli_z
  | Gate.H -> hadamard
  | Gate.S -> phase_gate (Float.pi /. 2.)
  | Gate.Sdg -> phase_gate (-.Float.pi /. 2.)
  | Gate.T -> phase_gate (Float.pi /. 4.)
  | Gate.Tdg -> phase_gate (-.Float.pi /. 4.)
  | Gate.Rx theta -> rot_x theta
  | Gate.Ry theta -> rot_y theta
  | Gate.Rz theta -> rot_z theta
  | Gate.Phase theta -> phase_gate theta
  | Gate.Cnot -> cnot
  | Gate.Cz -> cz_mat
  | Gate.Cphase theta ->
    Cmat.diag [| Cx.one; Cx.one; Cx.one; Cx.cis theta |]
  | Gate.Swap -> swap_mat
  | Gate.Iswap -> iswap_mat
  | Gate.Sqrt_iswap -> sqrt_iswap_mat
  | Gate.Rxx theta -> two_pauli_rotation (Cmat.kron pauli_x pauli_x) theta
  | Gate.Ryy theta -> two_pauli_rotation (Cmat.kron pauli_y pauli_y) theta
  | Gate.Rzz theta -> two_pauli_rotation (Cmat.kron pauli_z pauli_z) theta
  | Gate.Ccx -> controlled cnot

let of_gate ~n_qubits g =
  Cmat.embed ~n_qubits ~targets:(Gate.qubits g) (of_kind g.Gate.kind)

let of_gates ~n_qubits gates =
  List.fold_left
    (fun acc g ->
      Cmat.mul_embedded ~n_qubits ~targets:(Gate.qubits g)
        (of_kind g.Gate.kind) acc)
    (Cmat.identity (1 lsl n_qubits))
    gates

let equal_up_to_global_phase ?eps a b = Cmat.equal_up_to_phase ?eps a b

let state_of_gates ~n_qubits gates =
  let dim = 1 lsl n_qubits in
  let state = Array.make dim Cx.zero in
  state.(0) <- Cx.one;
  List.iter
    (fun (g : Gate.t) ->
      let targets = Gate.qubits g in
      let k = List.length targets in
      let u = of_kind g.Gate.kind in
      (* local bit (k-1-pos) of a gate-local index lives at global bit
         (n-1-q) for q the pos-th listed qubit — the same frame as
         Cmat.embed *)
      let target_bits =
        Array.of_list (List.map (fun q -> n_qubits - 1 - q) targets)
      in
      let mask =
        Array.fold_left (fun acc b -> acc lor (1 lsl b)) 0 target_bits
      in
      let dl = 1 lsl k in
      let idx = Array.make dl 0 in
      let amp = Array.make dl Cx.zero in
      for rest = 0 to dim - 1 do
        if rest land mask = 0 then begin
          for l = 0 to dl - 1 do
            let x = ref rest in
            for pos = 0 to k - 1 do
              if (l lsr (k - 1 - pos)) land 1 = 1 then
                x := !x lor (1 lsl target_bits.(pos))
            done;
            idx.(l) <- !x;
            amp.(l) <- state.(!x)
          done;
          for i = 0 to dl - 1 do
            let acc = ref Cx.zero in
            for j = 0 to dl - 1 do
              acc := Cx.add !acc (Cx.mul (Cmat.get u i j) amp.(j))
            done;
            state.(idx.(i)) <- !acc
          done
        end
      done)
    gates;
  state

let on_support gates =
  if gates = [] then invalid_arg "Unitary.on_support: empty gate list";
  let support =
    List.sort_uniq compare (List.concat_map Gate.qubits gates)
  in
  let local = Hashtbl.create 8 in
  List.iteri (fun k q -> Hashtbl.replace local q k) support;
  let relabelled =
    List.map (Gate.map_qubits (fun q -> Hashtbl.find local q)) gates
  in
  (support, of_gates ~n_qubits:(List.length support) relabelled)
