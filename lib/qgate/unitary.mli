(** Gate unitaries as dense matrices.

    Basis convention follows {!Qnum.Cmat}: qubit 0 is the most significant
    index bit. For a gate, local qubit order is the order of
    [Gate.qubits]. *)

val of_kind : Gate.kind -> Qnum.Cmat.t
(** The gate's matrix on its own 2^arity-dimensional space. *)

val of_gate : n_qubits:int -> Gate.t -> Qnum.Cmat.t
(** The gate lifted to the full 2ⁿ space. *)

val of_gates : n_qubits:int -> Gate.t list -> Qnum.Cmat.t
(** Product of lifted gates applied in list (time) order: for gate list
    [g1; g2; ...] the result is ... · U(g2) · U(g1). Each gate is applied
    locally ({!Qnum.Cmat.mul_embedded}), so the cost is 4ⁿ·2^arity per
    gate, not a full 8ⁿ matrix product. *)

val equal_up_to_global_phase :
  ?eps:float -> Qnum.Cmat.t -> Qnum.Cmat.t -> bool
(** [equal_up_to_global_phase u v] holds when [u = exp(iφ)·v] for some
    global phase φ (entrywise, absolute tolerance [eps], default [1e-9]) —
    the right notion of operator equality for circuits, since a global
    phase is unobservable. Use this rather than a fidelity threshold when
    exact equivalence (not approximation quality) is meant. *)

val state_of_gates : n_qubits:int -> Gate.t list -> Qnum.Cx.t array
(** The statevector obtained by applying the gates in list (time) order to
    |0…0⟩, indexed by the {!Qnum.Cmat} basis convention. Each gate costs
    2ⁿ·4^arity, so this is far cheaper than {!of_gates} when only one
    column of the joint unitary is needed (e.g. to separate two operators
    already known equal up to a global phase). *)

val on_support : Gate.t list -> int list * Qnum.Cmat.t
(** [on_support gates] computes the joint unitary of [gates] on the sorted
    union of their supports (relabelled locally); returns
    (support, unitary). Raises [Invalid_argument] on the empty list. *)

(** {1 Named constant matrices} *)

val pauli_x : Qnum.Cmat.t
val pauli_y : Qnum.Cmat.t
val pauli_z : Qnum.Cmat.t
val hadamard : Qnum.Cmat.t
