// A hand-written OpenQASM program using a custom parameterized gate,
// compile it with:
//   dune exec bin/qcc_cli.exe -- compare -f examples/zz_chain.qasm
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];

gate zzrot(theta) a, b { cx a,b; rz(theta) b; cx a,b; }
gate mix(beta) a { rx(2*beta) a; }

h q[0]; h q[1]; h q[2]; h q[3]; h q[4]; h q[5];
zzrot(pi/3) q[0], q[1];
zzrot(pi/3) q[1], q[2];
zzrot(pi/3) q[2], q[3];
zzrot(pi/3) q[3], q[4];
zzrot(pi/3) q[4], q[5];
mix(0.8) q[0]; mix(0.8) q[1]; mix(0.8) q[2];
mix(0.8) q[3]; mix(0.8) q[4]; mix(0.8) q[5];
