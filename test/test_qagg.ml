(* tests for the aggregation action space and the monotonic aggregator *)

open Qagg
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst

let device = Qcontrol.Device.default
let cost gs = Qcontrol.Latency_model.block_time device gs
let gdg_of gates n = Gdg.of_circuit ~latency:cost (Circuit.make n gates)
let zz theta a b = [ Gate.cnot a b; Gate.rz theta b; Gate.cnot a b ]

let action_cases =
  [ case "adjacent gates on shared qubit are schedulable" (fun () ->
        let g = gdg_of [ Gate.cnot 0 1; Gate.cnot 1 2 ] 3 in
        let groups = Qgdg.Comm_group.build g in
        check_bool "0 absorbs 1" true (Action.is_schedulable g groups 0 1);
        check_bool "wrong direction" false (Action.is_schedulable g groups 1 0));
    case "disjoint gates are not schedulable" (fun () ->
        let g = gdg_of [ Gate.h 0; Gate.h 1 ] 2 in
        let groups = Qgdg.Comm_group.build g in
        check_bool "no overlap" false (Action.is_schedulable g groups 0 1));
    case "non-adjacent non-commuting are rejected" (fun () ->
        let g = gdg_of [ Gate.h 0; Gate.x 0; Gate.h 0 ] 1 in
        let groups = Qgdg.Comm_group.build g in
        check_bool "h..h blocked by x" false (Action.is_schedulable g groups 0 2));
    case "same-group siblings are schedulable" (fun () ->
        (* rz and rzz commute: the first and third can merge past the second *)
        let g = gdg_of [ Gate.rz 0.1 0; Gate.rzz 0.2 0 1; Gate.rz 0.3 0 ] 2 in
        let groups = Qgdg.Comm_group.build g in
        check_bool "rz past rzz" true (Action.is_schedulable g groups 0 2));
    case "merged width" (fun () ->
        let g = gdg_of [ Gate.cnot 0 1; Gate.cnot 1 2 ] 3 in
        check_int "3 qubits" 3 (Action.merged_width g 0 1));
    case "candidates respect width limit" (fun () ->
        let g = gdg_of [ Gate.cnot 0 1; Gate.cnot 1 2 ] 3 in
        let groups = Qgdg.Comm_group.build g in
        check_bool "found at width 3" true
          (List.mem (0, 1) (Action.candidates g groups ~width_limit:3));
        check_bool "excluded at width 2" false
          (List.mem (0, 1) (Action.candidates g groups ~width_limit:2)));
    case "candidates on triangle qaoa" (fun () ->
        let g =
          Gdg.of_circuit ~latency:cost (Qapps.Qaoa.triangle_example ())
        in
        let groups = Qgdg.Comm_group.build g in
        let cands = Action.candidates g groups ~width_limit:10 in
        check_bool "non-empty" true (cands <> []);
        List.iter
          (fun (a, b) ->
            check_bool "each candidate is schedulable" true
              (Action.is_schedulable g groups a b))
          cands) ]

let semantics_preserved original g =
  let after = Circuit.make (Gdg.n_qubits g) (Gdg.all_gates g) in
  Circuit.equal_semantics ~eps:1e-8 original after

let aggregator_cases =
  [ case "staircase collapses to one block" (fun () ->
        let gates = List.init 5 (fun k -> Gate.cnot k (k + 1)) in
        let g = gdg_of gates 6 in
        let stats = Aggregator.run ~cost g in
        check_int "one instruction" 1 (Gdg.size g);
        check_bool "latency reduced" true
          (stats.Aggregator.final_makespan < stats.Aggregator.initial_makespan);
        Gdg.validate g);
    case "toffoli aggregates into one block" (fun () ->
        let circuit = Circuit.make 3 (Qgate.Decompose.ccx 0 1 2) in
        let g = Gdg.of_circuit ~latency:cost circuit in
        let stats = Aggregator.run ~cost g in
        check_bool "significant gain" true
          (stats.Aggregator.final_makespan < 0.6 *. stats.Aggregator.initial_makespan);
        check_bool "semantics" true (semantics_preserved circuit g));
    case "width limit respected" (fun () ->
        let gates = List.init 7 (fun k -> Gate.cnot k (k + 1)) in
        let g = gdg_of gates 8 in
        ignore (Aggregator.run ~width_limit:4 ~cost g);
        List.iter
          (fun (i : Inst.t) ->
            check_bool "width <= 4" true (Inst.width i <= 4))
          (Gdg.insts g);
        Gdg.validate g);
    case "makespan never increases" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        let g = Gdg.of_circuit ~latency:cost circuit in
        let stats = Aggregator.run ~cost g in
        check_bool "monotone" true
          (stats.Aggregator.final_makespan
           <= stats.Aggregator.initial_makespan +. 1e-6));
    case "serial pessimism is more conservative" (fun () ->
        let circuit = Circuit.make 3 (Qgate.Decompose.ccx 0 1 2) in
        let model_g = Gdg.of_circuit ~latency:cost circuit in
        let serial_g = Gdg.of_circuit ~latency:cost circuit in
        let m = Aggregator.run ~pessimism:`Model ~cost model_g in
        let s = Aggregator.run ~pessimism:`Serial ~cost serial_g in
        check_bool "model at least as aggressive" true
          (m.Aggregator.final_makespan <= s.Aggregator.final_makespan +. 1e-6));
    case "single instruction is a fixpoint" (fun () ->
        let g = gdg_of [ Gate.cnot 0 1 ] 2 in
        let stats = Aggregator.run ~cost g in
        check_int "no merges" 0 stats.Aggregator.merges);
    qcheck ~count:12 "aggregation preserves semantics on random circuits"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 4 12 in
        let circuit = Circuit.make 4 gates in
        let g = Gdg.of_circuit ~latency:cost circuit in
        ignore (Aggregator.run ~cost g);
        Gdg.validate g;
        semantics_preserved circuit g);
    qcheck ~count:12 "aggregation preserves semantics on commutative circuits"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 4 in
        let gates =
          List.concat
            (List.init 5 (fun _ ->
                 let a = Qgraph.Rand.int rng n in
                 let b = (a + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
                 zz (Qgraph.Rand.float rng 3.) (min a b) (max a b)))
        in
        let circuit = Circuit.make n gates in
        let g = Gdg.of_circuit ~latency:cost circuit in
        ignore
          (Qgdg.Diagonal.detect_and_contract ~latency:cost g);
        ignore (Aggregator.run ~cost g);
        Gdg.validate g;
        semantics_preserved circuit g);
    (* the incremental aggregator (maintained slack, windowed candidate
       universe, memoized caches) against the retained full-recompute
       reference: same accepted-merge count and final makespan, on the
       same starting graph *)
    qcheck ~count:10 "incremental aggregator matches the reference"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 4 12 in
        let circuit = Circuit.make 4 gates in
        let g = Gdg.of_circuit ~latency:cost circuit in
        let r = Gdg.copy g in
        let inc = Aggregator.run ~cost g in
        let ref_ = Aggregator.run_reference ~cost r in
        Gdg.validate g;
        inc.Aggregator.merges = ref_.Aggregator.merges
        && Float.abs
             (inc.Aggregator.final_makespan -. ref_.Aggregator.final_makespan)
           <= 1e-9
        && semantics_preserved circuit g);
    qcheck ~count:10 "incremental matches reference on commutative circuits"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 4 in
        let gates =
          List.concat
            (List.init 6 (fun _ ->
                 let a = Qgraph.Rand.int rng n in
                 let b = (a + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
                 zz (Qgraph.Rand.float rng 3.) (min a b) (max a b)))
        in
        let circuit = Circuit.make n gates in
        let g = Gdg.of_circuit ~latency:cost circuit in
        ignore (Qgdg.Diagonal.detect_and_contract ~latency:cost g);
        let r = Gdg.copy g in
        let inc = Aggregator.run ~cost g in
        let ref_ = Aggregator.run_reference ~cost r in
        Gdg.validate g;
        inc.Aggregator.merges = ref_.Aggregator.merges
        && Float.abs
             (inc.Aggregator.final_makespan -. ref_.Aggregator.final_makespan)
           <= 1e-9
        && semantics_preserved circuit g) ]

let suites =
  [ ("qagg.action", action_cases); ("qagg.aggregator", aggregator_cases) ]
