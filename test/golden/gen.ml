(* Regenerates the golden pass-manager regression data.

   Run from the repo root after an INTENTIONAL behavior change:

     dune exec test/golden/gen.exe

   writes test/golden/compile_golden.json (per benchmark x strategy:
   bit-exact latency, merge/swap/instruction counts, and certificate
   digests for the certified subset) and test/golden/compare_golden.json
   (the `qcc compare --json` speedup table over the CI smoke benchmarks,
   with the nondeterministic compile_time_s fields removed).

   The refactor-regression suite (test_passmgr.ml) and the CI compare
   smoke both diff against these files; they must only ever be
   regenerated when latencies/merges are *supposed* to change. *)

module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy
module Json = Qobs.Json

let benchmarks =
  [ "maxcut-line"; "maxcut-reg4"; "ising-n30"; "sqrt-n3"; "uccsd-n4";
    "uccsd-n6" ]

let certified = [ "maxcut-line"; "uccsd-n4" ]

let certificate_digest c =
  Digest.to_hex (Digest.string (Json.to_string (Qcert.Certificate.to_json c)))

let rec strip_compile_time = function
  | Json.Obj kvs ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "compile_time_s" then None
           else Some (k, strip_compile_time v))
         kvs)
  | Json.List vs -> Json.List (List.map strip_compile_time vs)
  | v -> v

let () =
  let dir = Filename.concat (Filename.concat "test" "golden") "" in
  let dir = if Sys.file_exists (dir ^ "gen.ml") then dir else "" in
  let compare_rows = ref [] in
  let entries =
    List.concat_map
      (fun name ->
        Printf.eprintf "golden: compiling %s...\n%!" name;
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
        let certify = List.mem name certified in
        let results = Compiler.compile_all ~certify circuit in
        if certify then compare_rows := (name, results) :: !compare_rows;
        List.map
          (fun ((s : Strategy.t), (r : Compiler.result)) ->
            Json.Obj
              ([ ("benchmark", Json.Str name);
                 ("strategy", Json.Str (Strategy.to_string s));
                 ("latency_hex", Json.Str (Printf.sprintf "%h" r.Compiler.latency));
                 ("merges", Json.Int r.Compiler.n_merges);
                 ("swaps", Json.Int r.Compiler.n_swaps_inserted);
                 ("instructions", Json.Int r.Compiler.n_instructions) ]
               @
               match r.Compiler.certificate with
               | Some c ->
                 [ ("certificate_digest", Json.Str (certificate_digest c)) ]
               | None -> []))
          results)
      benchmarks
  in
  let doc =
    Json.Obj
      [ ("schema", Json.Str "qcc.golden.compile/1");
        ("entries", Json.List entries) ]
  in
  Json.write_file (dir ^ "compile_golden.json") doc;
  Printf.eprintf "wrote %scompile_golden.json (%d entries)\n%!" dir
    (List.length entries);
  let table =
    strip_compile_time
      (Qcc.Report.speedup_table_to_json ~rows:(List.rev !compare_rows))
  in
  Json.write_file (dir ^ "compare_golden.json") table;
  Printf.eprintf "wrote %scompare_golden.json\n%!" dir
