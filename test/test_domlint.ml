(* domlint: the domain-safety analyzer over seeded sources, the DS0xx
   registry contract, and the runtime side of the discipline it gates —
   memo resets, metrics shard merging, concurrent ledger appends *)

open Util
module D = Domlint_lib
module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy
module Metrics = Qobs.Metrics

(* parse an inline implementation (and optional interface) and run the
   full scan → diagnose pipeline, as domlint does per file *)
let diags_of ?intf source =
  let structure = D.Scan.parse_implementation ~path:"seed.ml" source in
  let intf =
    match intf with
    | None -> D.Scan.No_intf
    | Some s -> D.Scan.intf_vals (D.Scan.parse_interface ~path:"seed.mli" s)
  in
  D.Check.diagnose [ D.Scan.scan_structure ~file:"seed.ml" ~intf structure ]

let codes_of diags = List.map (fun d -> d.D.Check.code) diags

let check_codes name expected diags =
  Alcotest.(check (list string)) name expected (codes_of diags)

let seeded_cases =
  [ case "DS010: private unclassified table" (fun () ->
        check_codes "codes" [ "DS010" ]
          (diags_of ~intf:"val get : string -> int option"
             "let counts = Hashtbl.create 8\nlet get k = Hashtbl.find_opt \
              counts k"));
    case "DS011: escaping unclassified ref" (fun () ->
        check_codes "codes" [ "DS011" ] (diags_of "let total = ref 0"));
    case "DS011: lazy escaping the module" (fun () ->
        check_codes "codes" [ "DS011" ]
          (diags_of "let table = lazy (List.init 10 string_of_int)"));
    case "DS020: domain_local memo without reset" (fun () ->
        check_codes "codes" [ "DS020" ]
          (diags_of
             "let memo = Domain.DLS.new_key (fun () -> Hashtbl.create 8) \
              [@@domain_safety domain_local]"));
    case "DS020 satisfied by a reset_* entry point" (fun () ->
        check_codes "codes" []
          (diags_of
             "let memo = Domain.DLS.new_key (fun () -> Hashtbl.create 8) \
              [@@domain_safety domain_local]\n\
              let reset_memo () = Hashtbl.reset (Domain.DLS.get memo)"));
    case "DS030: Random.self_init at module init" (fun () ->
        check_codes "codes" [ "DS030" ]
          (diags_of "let () = Random.self_init ()"));
    case "DS030: global Format mutation at module init" (fun () ->
        check_codes "codes" [ "DS030" ]
          (diags_of "let () = Format.set_margin 120"));
    case "DS040: malformed payload" (fun () ->
        check_codes "codes" [ "DS040" ]
          (diags_of "let r = ref 0 [@@domain_safety bogus]"));
    case "DS040: attribute on a plain function is stale" (fun () ->
        check_codes "codes" [ "DS040" ]
          (diags_of "let f x = x + 1 [@@domain_safety frozen_after_init]"));
    case "DS040: domain_local without a DLS slot" (fun () ->
        check_codes "codes" [ "DS040" ]
          (diags_of "let r = ref 0 [@@domain_safety domain_local]"));
    case "DS040: DLS slot not classified domain_local" (fun () ->
        check_codes "codes" [ "DS040" ]
          (diags_of
             "let slot = Domain.DLS.new_key (fun () -> 0) [@@domain_safety \
              frozen_after_init]"));
    case "classified frozen ref is clean" (fun () ->
        check_codes "codes" []
          (diags_of "let r = ref 0 [@@domain_safety frozen_after_init]"));
    case "unsafe with a reason is clean" (fun () ->
        check_codes "codes" []
          (diags_of
             "let l = lazy 42 [@@domain_safety unsafe \"forced before \
              spawn\"]"));
    case "allocation inside a function is not ambient" (fun () ->
        check_codes "codes" []
          (diags_of "let fresh () = Hashtbl.create 8\nlet f = fun () -> ref 0"));
    case "diagnostics are sorted by file, line, code" (fun () ->
        let diags =
          diags_of "let a = ref 0\nlet () = Random.self_init ()\nlet b = ref 1"
        in
        let lines = List.map (fun d -> d.D.Check.line) diags in
        check_bool "sorted" true (lines = List.sort compare lines)) ]

let report_cases =
  [ case "JSON report carries the qcc.domlint/1 schema" (fun () ->
        let structure =
          D.Scan.parse_implementation ~path:"seed.ml" "let r = ref 0"
        in
        let fr =
          D.Scan.scan_structure ~file:"seed.ml" ~intf:D.Scan.No_intf structure
        in
        let diags = D.Check.diagnose [ fr ] in
        let json =
          D.Ds_report.to_json ~files_scanned:1 ~sites:fr.D.Scan.sites ~diags
        in
        (match Qobs.Json.member "schema" json with
         | Some (Qobs.Json.Str s) -> Alcotest.(check string) "schema" "qcc.domlint/1" s
         | _ -> Alcotest.fail "no schema field");
        match Qobs.Json.member "errors" json with
        | Some (Qobs.Json.Int n) -> check_int "errors" 1 n
        | _ -> Alcotest.fail "no errors field");
    case "SARIF report resolves DS rules from the registry" (fun () ->
        let diags = diags_of "let r = ref 0" in
        let sarif = Qobs.Json.to_string (D.Ds_report.to_sarif ~diags) in
        let has re = Str.string_match (Str.regexp (".*" ^ re ^ ".*")) sarif 0 in
        check_bool "sarif version pinned" true (has "2\\.1\\.0");
        check_bool "rule id present" true (has "DS011");
        check_bool "registry summary flows into the rule" true
          (has "escaping the module")) ]

(* every code domlint can emit must be registered (and only those), so
   `qcc lint --explain DSxxx` and the README glossary stay single-source *)
let registry_cases =
  [ case "DS codes are registered, error-severity, one family" (fun () ->
        List.iter
          (fun code ->
            match Qlint.Registry.find code with
            | None -> Alcotest.failf "%s missing from Qlint.Registry" code
            | Some e ->
              Alcotest.(check string) "family" "domain-safety" e.Qlint.Registry.family;
              check_bool (code ^ " is error") true
                (e.Qlint.Registry.severity = Qlint.Diagnostic.Error))
          [ "DS010"; "DS011"; "DS020"; "DS030"; "DS040" ]);
    case "registry DS family matches the emitter exactly" (fun () ->
        let registered =
          List.sort compare
            (List.filter_map
               (fun (e : Qlint.Registry.entry) ->
                 if e.Qlint.Registry.family = "domain-safety" then
                   Some e.Qlint.Registry.code
                 else None)
               Qlint.Registry.all)
        in
        Alcotest.(check (list string))
          "codes" [ "DS010"; "DS011"; "DS020"; "DS030"; "DS040" ] registered);
    case "explain works for DS codes" (fun () ->
        match Qlint.Registry.explain "DS020" with
        | Some text -> (
          match Str.search_forward (Str.regexp_string "reset") text 0 with
          | (_ : int) -> ()
          | exception Not_found ->
            Alcotest.failf "DS020 explanation does not mention reset: %s" text)
        | None -> Alcotest.fail "no explanation for DS020") ]

(* ---- the runtime discipline the gate protects ---- *)

(* counter snapshot: every counter-valued metric (histograms carry wall
   times and are never run-reproducible) *)
let counters m =
  List.filter_map
    (fun n ->
      match Metrics.counter_value m n with 0 -> None | v -> Some (n, v))
    (Metrics.names m)

let reset_cases =
  [ case "reset_all_memos returns a domain to a cold start" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let run () =
          let m = Metrics.create () in
          ignore
            (Compiler.compile ~metrics:m ~strategy:Strategy.Cls_aggregation
               circuit);
          m
        in
        Compiler.reset_all_memos ();
        let cold1 = run () in
        let warm = run () in
        Compiler.reset_all_memos ();
        Compiler.reset_all_memos ();
        (* idempotent *)
        let cold2 = run () in
        Alcotest.(check (list (pair string int)))
          "cold counters reproduce after reset" (counters cold1)
          (counters cold2);
        check_bool "warm run reuses the decision memo" true
          (Metrics.counter_value warm "commute.memo_hits"
           >= Metrics.counter_value cold1 "commute.memo_hits"));
    case "latency memo reset is idempotent and re-warms identically"
      (fun () ->
        let device = Qcontrol.Device.default in
        let gates = [ Qgate.Gate.cnot 0 1; Qgate.Gate.rz 0.7 1 ] in
        let a = Qcontrol.Latency_model.block_time device gates in
        Qcontrol.Latency_model.reset_memos ();
        Qcontrol.Latency_model.reset_memos ();
        let b = Qcontrol.Latency_model.block_time device gates in
        check_float ~eps:0. "identical after reset" a b) ]

(* deterministic op stream from a seed: drives two registries apart so
   merge has real work to do *)
let apply_ops m rng n =
  let names = [| "a"; "b"; "c.count"; "d.ms" |] in
  for _ = 1 to n do
    let name = names.(Random.State.int rng (Array.length names)) in
    match Random.State.int rng 3 with
    | 0 -> Metrics.incr m ~by:(1 + Random.State.int rng 5) name
    | 1 -> Metrics.gauge m name (Random.State.float rng 100.)
    | _ -> Metrics.observe m name (Random.State.float rng 10.)
  done

let registry_of_seed seed n =
  let m = Metrics.create () in
  apply_ops m (Random.State.make [| seed |]) n;
  m

let snapshot m = Qobs.Json.to_string (Metrics.to_json m)

let merge_cases =
  [ qcheck ~count:100 "metrics merge is commutative"
      QCheck.(pair (int_range 0 100000) (int_range 0 100000))
      (fun (sa, sb) ->
        let a = registry_of_seed sa 40 and b = registry_of_seed sb 40 in
        snapshot (Metrics.merge a b) = snapshot (Metrics.merge b a));
    qcheck ~count:100 "metrics merge is associative"
      QCheck.(triple (int_range 0 100000) (int_range 0 100000)
                (int_range 0 100000))
      (fun (sa, sb, sc) ->
        let a = registry_of_seed sa 30
        and b = registry_of_seed sb 30
        and c = registry_of_seed sc 30 in
        snapshot (Metrics.merge (Metrics.merge a b) c)
        = snapshot (Metrics.merge a (Metrics.merge b c)));
    qcheck ~count:100 "merging the empty registry is identity"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let a = registry_of_seed seed 40 in
        snapshot (Metrics.merge a (Metrics.create ())) = snapshot a);
    case "merge does not mutate its arguments" (fun () ->
        let a = registry_of_seed 1 40 and b = registry_of_seed 2 40 in
        let sa = snapshot a and sb = snapshot b in
        ignore (Metrics.merge a b);
        Alcotest.(check string) "left untouched" sa (snapshot a);
        Alcotest.(check string) "right untouched" sb (snapshot b)) ]

let two_domain_cases =
  [ case "concurrent ticks in two domains lose no counts" (fun () ->
        let n = 20_000 in
        let worker k () =
          let m = Metrics.create () in
          Metrics.set_ambient m;
          for i = 1 to n do
            Metrics.tick "par.ticks";
            if i mod 100 = k then Metrics.record "par.ms" (float_of_int i)
          done;
          Metrics.set_ambient Metrics.disabled;
          m
        in
        let d1 = Domain.spawn (worker 0) and d2 = Domain.spawn (worker 1) in
        let m1 = Domain.join d1 and m2 = Domain.join d2 in
        check_int "ambient of this domain untouched" 0
          (Metrics.counter_value (Metrics.ambient ()) "par.ticks");
        let merged = Metrics.merge m1 m2 in
        check_int "no lost ticks" (2 * n)
          (Metrics.counter_value merged "par.ticks");
        (match Metrics.hist_value merged "par.ms" with
         | Some h -> check_int "no lost samples" (2 * (n / 100)) h.Metrics.n
         | None -> Alcotest.fail "histogram missing after merge");
        Alcotest.(check string) "merged snapshot order-independent"
          (snapshot (Metrics.merge m1 m2))
          (snapshot (Metrics.merge m2 m1))) ]

let ledger_cases =
  [ case "concurrent writers never tear a ledger row" (fun () ->
        let path = Filename.temp_file "qobs_ledger_par" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let ledger = Qobs.Ledger.open_file path in
            let writers = 4 and rows_per = 200 in
            let worker w () =
              for i = 1 to rows_per do
                Qobs.Ledger.append ledger
                  (Qobs.Json.Obj
                     [ ("writer", Qobs.Json.Int w); ("i", Qobs.Json.Int i);
                       (* bulk payload widens the window a torn write
                          would need to hit *)
                       ("pad", Qobs.Json.Str (String.make 256 'x')) ])
              done
            in
            let domains =
              List.init writers (fun w -> Domain.spawn (worker w))
            in
            List.iter Domain.join domains;
            Qobs.Ledger.close ledger;
            match Qobs.Ledger.read_file path with
            | Error msg -> Alcotest.failf "torn or invalid row: %s" msg
            | Ok rows ->
              check_int "all rows present" (writers * rows_per)
                (List.length rows);
              List.iteri
                (fun w_expect _ ->
                  let seen =
                    List.filter
                      (fun r ->
                        Qobs.Json.member "writer" r
                        = Some (Qobs.Json.Int w_expect))
                      rows
                  in
                  check_int
                    (Printf.sprintf "writer %d row count" w_expect)
                    rows_per (List.length seen))
                (List.init writers Fun.id))) ]

let suites =
  [ ("domlint.seeded", seeded_cases);
    ("domlint.report", report_cases);
    ("domlint.registry", registry_cases);
    ("domlint.reset", reset_cases);
    ("domlint.merge", merge_cases);
    ("domlint.par", two_domain_cases);
    ("domlint.ledger", ledger_cases) ]
