(* tests for Qcert translation validation: the abstract domains against
   dense references, each boundary certifier on hand-built cases, seeded
   miscompilation mutations, and the full certify matrix *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module Schedule = Qsched.Schedule
module Cmat = Qnum.Cmat
module D = Qlint.Diagnostic
module Cert = Qcert.Certificate
module Domain = Qcert.Domain

let verdict (v, _) = v
let codes (o : Cert.outcome) = List.map (fun d -> d.D.code) o.Cert.diags
let error_codes (o : Cert.outcome) =
  List.filter_map
    (fun (d : D.t) -> if D.is_error d then Some d.D.code else None)
    o.Cert.diags

let check_proved name o =
  check_bool name true (error_codes o = [] && o.Cert.checks > 0)

(* ---- abstract domains vs the dense reference ---- *)

let dense_commutes a b =
  let joint =
    List.sort_uniq compare (List.concat_map Gate.qubits (a @ b))
  in
  let n = List.fold_left (fun acc q -> max acc (q + 1)) 1 joint in
  let ua = Qgate.Unitary.of_gates ~n_qubits:n a
  and ub = Qgate.Unitary.of_gates ~n_qubits:n b in
  Cmat.equal_up_to_phase ~eps:1e-9 (Cmat.mul ua ub) (Cmat.mul ub ua)

let domain_cases =
  [ case "tableau proves clifford identities" (fun () ->
        check_bool "ss=z" true
          (verdict (Domain.equal_gates [ Gate.s 0; Gate.s 0 ] [ Gate.z 0 ])
           = Domain.Proved);
        check_bool "hzh=x" true
          (verdict
             (Domain.equal_gates
                [ Gate.h 0; Gate.z 0; Gate.h 0 ]
                [ Gate.x 0 ])
           = Domain.Proved);
        check_bool "h<>x" true
          (verdict (Domain.equal_gates [ Gate.h 0 ] [ Gate.x 0 ])
           = Domain.Refuted));
    case "tableau scales to 40 qubits" (fun () ->
        (* a CNOT ladder far beyond the dense limit: exchanging two
           disjoint-support rungs is legal, an extra X is not *)
        let ladder = List.init 39 (fun k -> Gate.cnot k (k + 1)) in
        let exchanged =
          match ladder with
          | a :: b :: c :: rest -> a :: c :: b :: rest
          | _ -> assert false
        in
        check_bool "exchange refuted" true
          (verdict (Domain.equal_gates ladder exchanged) = Domain.Refuted);
        let swapped_tail = ladder @ [ Gate.x 7 ] in
        check_bool "extra x refuted" true
          (verdict (Domain.equal_gates ladder swapped_tail) = Domain.Refuted);
        check_bool "itself proved" true
          (verdict
             (Domain.equal_gates ladder (List.map (fun g -> g) ladder))
           = Domain.Proved));
    case "phase polynomial scales to 40 qubits" (fun () ->
        let word =
          List.concat
            (List.init 20 (fun k ->
                 [ Gate.cnot (2 * k) (2 * k + 1); Gate.rz 0.3 (2 * k + 1) ]))
        in
        (* commuting diagonal rotations on distinct targets may reorder *)
        let reordered =
          match word with
          | a :: b :: c :: d :: rest -> c :: d :: a :: b :: rest
          | _ -> assert false
        in
        check_bool "reorder proved" true
          (verdict (Domain.equal_gates word reordered) = Domain.Proved);
        let wrong_angle =
          match word with
          | a :: Qgate.Gate.{ kind = _; qubits = _ } :: rest ->
            a :: Gate.rz 0.31 1 :: rest
          | _ -> assert false
        in
        check_bool "angle change refuted" true
          (verdict (Domain.equal_gates word wrong_angle) = Domain.Refuted));
    qcheck ~count:40 "phase-polynomial matrix agrees with dense product"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 2 in
        let gates =
          List.init 8 (fun _ ->
              let q = Qgraph.Rand.int rng n in
              match Qgraph.Rand.int rng 3 with
              | 0 -> Gate.cnot q ((q + 1) mod n)
              | 1 -> Gate.rz (Qgraph.Rand.float rng 6.28) q
              | _ -> Gate.t q)
        in
        match Qcert.Phase_poly.of_gates ~n_qubits:n gates with
        | None -> false
        | Some p ->
          Cmat.equal_up_to_phase ~eps:1e-7
            (Qcert.Phase_poly.to_matrix p)
            (Qgate.Unitary.of_gates ~n_qubits:n gates));
    qcheck ~count:40 "blocks_commute verdicts agree with the dense reference"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let block () = random_unitary_gates rng 3 3 in
        let a = block () and b = block () in
        match verdict (Domain.blocks_commute a b) with
        | Domain.Proved -> dense_commutes a b
        | Domain.Refuted -> not (dense_commutes a b)
        | Domain.Unknown -> true) ]

(* ---- word equivalence and reorder certificates ---- *)

let reorder_cases =
  [ case "dependence accepts disjoint interleavings only" (fun () ->
        let src = [ Gate.h 0; Gate.h 1; Gate.x 0 ] in
        check_proved "interleaved"
          (Qcert.Reorder.dependence ~stage:"t" ~src
             ~dst:[ Gate.h 1; Gate.h 0; Gate.x 0 ]);
        let o =
          Qcert.Reorder.dependence ~stage:"t" ~src
            ~dst:[ Gate.x 0; Gate.h 0; Gate.h 1 ]
        in
        check_bool "same-qubit reorder refuted" true
          (List.mem "QC012" (error_codes o));
        let o =
          Qcert.Reorder.dependence ~stage:"t" ~src ~dst:[ Gate.h 0; Gate.h 1 ]
        in
        check_bool "dropped gate refuted" true
          (List.mem "QC011" (error_codes o)));
    case "schedule replay certifies commuting exchanges" (fun () ->
        let c = Circuit.make 1 [ Gate.rz 0.4 0; Gate.rz 0.9 0 ] in
        let g = Gdg.of_circuit ~latency:(fun _ -> 1.) c in
        let entries =
          List.mapi
            (fun k (i : Inst.t) ->
              (* run the chain in reversed order: legal, both diagonal *)
              let start = float_of_int (1 - k) in
              { Schedule.inst = i; start; finish = start +. 1. })
            (Gdg.insts g)
        in
        check_proved "diagonal exchange"
          (Qcert.Reorder.schedule ~stage:"t" ~original:g
             (Schedule.make ~n_qubits:1 entries)));
    case "mutation: flipped commutation is caught (QC030)" (fun () ->
        let c = Circuit.make 1 [ Gate.h 0; Gate.t 0 ] in
        let g = Gdg.of_circuit ~latency:(fun _ -> 1.) c in
        let entries =
          List.mapi
            (fun k (i : Inst.t) ->
              let start = float_of_int (1 - k) in
              { Schedule.inst = i; start; finish = start +. 1. })
            (Gdg.insts g)
        in
        let o =
          Qcert.Reorder.schedule ~stage:"t" ~original:g
            (Schedule.make ~n_qubits:1 entries)
        in
        check_bool "QC030" true (List.mem "QC030" (error_codes o))) ]

(* ---- regrouping: contraction and aggregation certificates ---- *)

let inst id gates = Inst.make ~id ~latency:1. gates

let regroup_cases =
  [ case "regroup accepts a faithful merge" (fun () ->
        let before = [ inst 0 [ Gate.rz 0.2 0 ]; inst 1 [ Gate.rz 0.7 0 ] ] in
        let after = [ inst 10 [ Gate.rz 0.2 0; Gate.rz 0.7 0 ] ] in
        check_proved "merge"
          (Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC021"
             ~code_reorder:"QC021" ~before ~after ()));
    case "regroup certifies a commuting member exchange" (fun () ->
        let before = [ inst 0 [ Gate.rz 0.2 0 ]; inst 1 [ Gate.rz 0.7 0 ] ] in
        let after = [ inst 10 [ Gate.rz 0.7 0; Gate.rz 0.2 0 ] ] in
        check_proved "exchange"
          (Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC021"
             ~code_reorder:"QC021" ~before ~after ()));
    case "block exchange: aggregate commutes only as a whole" (fun () ->
        (* [x;x] = identity crosses the SWAP as a block though neither X
           does individually — the pattern iterated merges produce *)
        let before =
          [ inst 0 [ Gate.swap 0 1 ];
            inst 1 [ Gate.x 0 ];
            inst 2 [ Gate.x 0 ] ]
        in
        let after =
          [ inst 10 [ Gate.x 0; Gate.x 0 ]; inst 11 [ Gate.swap 0 1 ] ]
        in
        check_proved "block crossing"
          (Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC052"
             ~code_reorder:"QC052" ~before ~after ()));
    case "mutation: illegal exchange is caught (QC052)" (fun () ->
        let before = [ inst 0 [ Gate.x 0 ]; inst 1 [ Gate.h 0 ] ] in
        let after = [ inst 10 [ Gate.h 0; Gate.x 0 ] ] in
        let o =
          Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC052"
            ~code_reorder:"QC052" ~before ~after ()
        in
        check_bool "QC052" true (List.mem "QC052" (error_codes o)));
    case "mutation: vanished instruction is caught" (fun () ->
        let before = [ inst 0 [ Gate.x 0 ]; inst 1 [ Gate.h 1 ] ] in
        let after = [ inst 10 [ Gate.x 0 ] ] in
        let o =
          Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC021"
            ~code_reorder:"QC021" ~before ~after ()
        in
        check_bool "QC021" true (List.mem "QC021" (error_codes o)));
    case "mutation: widened aggregate is caught (QC051)" (fun () ->
        let before =
          [ inst 0 [ Gate.cnot 0 1 ]; inst 1 [ Gate.cnot 1 2 ] ]
        in
        let after = [ inst 10 [ Gate.cnot 0 1; Gate.cnot 1 2 ] ] in
        let o =
          Qcert.Reorder.regroup ~stage:"t" ~code_parse:"QC052"
            ~code_reorder:"QC052" ~width_limit:2 ~before ~after ()
        in
        check_bool "QC051" true (List.mem "QC051" (error_codes o))) ]

(* ---- routing replay ---- *)

let route_cases =
  let topo = Qmap.Topology.line 3 in
  let ident = Qmap.Placement.identity ~n_logical:3 topo in
  [ case "replay absorbs an inserted swap" (fun () ->
        let logical = [ inst 0 [ Gate.cnot 0 2 ] ] in
        let routed =
          [ inst 100 [ Gate.swap 1 2 ]; inst 0 [ Gate.cnot 0 1 ] ]
        in
        let final = Qmap.Placement.apply_swap ident 1 2 in
        check_proved "swap absorbed"
          (Qcert.Route_check.insts ~stage:"t" ~initial:ident ~final ~logical
             ~routed));
    case "mutation: dropped swap is caught (QC040/QC041)" (fun () ->
        let logical = [ inst 0 [ Gate.cnot 0 2 ] ] in
        let routed = [ inst 0 [ Gate.cnot 0 1 ] ] in
        let final = Qmap.Placement.apply_swap ident 1 2 in
        let o =
          Qcert.Route_check.insts ~stage:"t" ~initial:ident ~final ~logical
            ~routed
        in
        check_bool "caught" true
          (List.exists
             (fun c -> c = "QC040" || c = "QC041")
             (error_codes o)));
    case "mutation: wrong final placement is caught (QC041)" (fun () ->
        let logical = [ inst 0 [ Gate.cnot 0 1 ] ] in
        let routed = [ inst 0 [ Gate.cnot 0 1 ] ] in
        let final = Qmap.Placement.apply_swap ident 0 1 in
        let o =
          Qcert.Route_check.insts ~stage:"t" ~initial:ident ~final ~logical
            ~routed
        in
        check_bool "QC041" true (List.mem "QC041" (error_codes o))) ]

(* ---- rewrite equivalence (peephole boundaries) ---- *)

let rewrite_cases =
  [ case "rewrite proves a cancellation" (fun () ->
        check_proved "hh cancels"
          (Qcert.Rewrite.equivalence ~stage:"t"
             ~src:[ Gate.h 0; Gate.h 0; Gate.cnot 0 1 ]
             ~dst:[ Gate.cnot 0 1 ]));
    case "rewrite refutes a wrong rewrite (QC010)" (fun () ->
        let o =
          Qcert.Rewrite.equivalence ~stage:"t"
            ~src:[ Gate.h 0; Gate.cnot 0 1 ]
            ~dst:[ Gate.cnot 0 1 ]
        in
        check_bool "QC010" true (List.mem "QC010" (error_codes o))) ]

(* ---- certificates and the compiler integration ---- *)

let strategies = Qcc.Strategy.all

let compiler_cases =
  [ case "certify matrix: small benchmarks, all strategies" (fun () ->
        List.iter
          (fun bench ->
            let c = Qapps.Suite.lowered (Qapps.Suite.find bench) in
            List.iter
              (fun strategy ->
                let r = Qcc.Compiler.compile ~certify:true ~strategy c in
                match r.Qcc.Compiler.certificate with
                | None -> Alcotest.fail (bench ^ ": no certificate")
                | Some cert ->
                  check_bool
                    (Printf.sprintf "%s/%s certified" bench
                       (Qcc.Strategy.to_string strategy))
                    true
                    (Cert.ok cert && cert.Cert.refuted = 0
                     && cert.Cert.proved > 0))
              strategies)
          [ "maxcut-line"; "uccsd-n4" ]);
    case "uncertified compile carries no certificate" (fun () ->
        let c = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let r = Qcc.Compiler.compile ~strategy:Qcc.Strategy.Isa c in
        check_bool "none" true (r.Qcc.Compiler.certificate = None));
    case "a refuted boundary raises Certification_failed" (fun () ->
        let ctx = Qcert.Pipeline.create ~strategy:"test" () in
        let src = Circuit.make 1 [ Gate.h 0 ] in
        let dst = Circuit.make 1 [ Gate.x 0 ] in
        (try
           Qcert.Pipeline.lower ctx ~src ~dst;
           Alcotest.fail "expected Certification_failed"
         with Cert.Certification_failed cert ->
           check_bool "not ok" false (Cert.ok cert);
           check_int "one refuted" 1 cert.Cert.refuted));
    case "certificate json carries the schema and boundaries" (fun () ->
        let c = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let r =
          Qcc.Compiler.compile ~certify:true ~strategy:Qcc.Strategy.Cls c
        in
        match r.Qcc.Compiler.certificate with
        | None -> Alcotest.fail "no certificate"
        | Some cert ->
          let j = Qobs.Json.to_string (Cert.to_json cert) in
          let contains needle hay =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          check_bool "schema" true (contains "qcc.certificate/1" j);
          check_bool "boundaries" true (contains "\"boundaries\"" j));
    case "certify emits spans and counters" (fun () ->
        let obs = Qobs.Trace.create () in
        let metrics = Qobs.Metrics.create () in
        let c = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let r =
          Qcc.Compiler.compile ~certify:true ~obs ~metrics
            ~strategy:Qcc.Strategy.Isa c
        in
        check_bool "certificate present" true
          (r.Qcc.Compiler.certificate <> None);
        (match r.Qcc.Compiler.trace with
         | None -> Alcotest.fail "no trace"
         | Some root ->
           let rec spans (s : Qobs.Span.t) =
             s.Qobs.Span.name
             :: List.concat_map spans (Qobs.Span.children s)
           in
           check_bool "certify span present" true
             (List.exists
                (fun n ->
                  String.length n >= 8 && String.sub n 0 8 = "certify-")
                (spans root)));
        check_bool "proved counter" true
          (Qobs.Metrics.counter_value metrics "qcert.proved" > 0)) ]

(* ---- outcome bookkeeping ---- *)

let certificate_cases =
  [ case "merge_outcomes sums facts and keeps diagnostics" (fun () ->
        let a = Cert.outcome ~method_:"x" 2 in
        let b =
          Cert.outcome ~method_:"y" 1 ~skipped:1
            ~diags:[ D.make ~code:"QC001" ~severity:D.Warning "w" ]
        in
        let m = Cert.merge_outcomes [ a; b ] in
        check_int "checks" 3 m.Cert.checks;
        check_int "skipped" 1 m.Cert.skipped;
        check_int "diags" 1 (List.length m.Cert.diags));
    case "summary line counts boundaries" (fun () ->
        let o = Cert.outcome ~method_:"m" 1 in
        let b = Cert.boundary_of_outcome ~name:"n" ~claim:"c" o in
        let t = Cert.make ~strategy:"isa" [ b ] in
        check_bool "certified" true (Cert.ok t);
        check_int "proved" 1 t.Cert.proved) ]

let suites =
  [ ("qcert.domain", domain_cases);
    ("qcert.reorder", reorder_cases);
    ("qcert.regroup", regroup_cases);
    ("qcert.route", route_cases);
    ("qcert.rewrite", rewrite_cases);
    ("qcert.compiler", compiler_cases);
    ("qcert.certificate", certificate_cases) ]
