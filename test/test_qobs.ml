(* qobs: spans, metrics, JSON round-trips, and the compile-with-trace
   acceptance criterion (every pass appears exactly once per strategy). *)

module Json = Qobs.Json
module Span = Qobs.Span
module Trace = Qobs.Trace
module Metrics = Qobs.Metrics

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- clock ---- *)

let test_clock_monotonic () =
  let prev = ref (Qobs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Qobs.Clock.now_ns () in
    checkb "non-decreasing" true (t >= !prev);
    prev := t
  done;
  let t0 = Qobs.Clock.now_ns () in
  checkb "elapsed non-negative" true (Qobs.Clock.elapsed_ns t0 >= 0.)

(* ---- spans ---- *)

let test_span_nesting () =
  let tr = Trace.create () in
  let result =
    Trace.with_span tr "root" (fun () ->
        Trace.attr_int tr "gates" 7;
        Trace.with_span tr "child-a" (fun () -> ());
        Trace.with_span tr "child-b" (fun () ->
            Trace.with_span tr "grandchild" (fun () -> ()));
        17)
  in
  checki "body result" 17 result;
  match Trace.roots tr with
  | [ root ] ->
    check Alcotest.string "root name" "root" root.Span.name;
    checki "span count" 4 (Span.count root);
    (match Span.children root with
     | [ a; b ] ->
       check Alcotest.string "first child" "child-a" a.Span.name;
       check Alcotest.string "second child" "child-b" b.Span.name;
       checki "grandchild" 1 (List.length (Span.children b))
     | cs -> Alcotest.failf "expected 2 children, got %d" (List.length cs));
    checki "find_all" 1 (List.length (Span.find_all ~name:"grandchild" root));
    (match List.assoc_opt "gates" root.Span.attrs with
     | Some (Span.Int 7) -> ()
     | _ -> Alcotest.fail "attr gates=7 missing")
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_span_timing () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "inner" (fun () ->
             (* burn a little time so durations are visibly ordered *)
             let acc = ref 0. in
             for k = 1 to 10_000 do
               acc := !acc +. sqrt (float_of_int k)
             done;
             !acc)));
  match Trace.roots tr with
  | [ outer ] ->
    let inner = List.hd (Span.children outer) in
    checkb "outer stop >= start" true (outer.Span.stop_ns >= outer.Span.start_ns);
    checkb "inner within outer" true
      (inner.Span.start_ns >= outer.Span.start_ns
       && inner.Span.stop_ns <= outer.Span.stop_ns);
    checkb "outer >= inner duration" true
      (Span.duration_ns outer >= Span.duration_ns inner)
  | _ -> Alcotest.fail "expected 1 root"

let test_span_exception_safety () =
  let tr = Trace.create () in
  (try
     Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Trace.roots tr with
  | [ outer ] ->
    checkb "spans closed despite raise" true
      (List.for_all
         (fun (s : Span.t) -> s.Span.stop_ns >= s.Span.start_ns)
         (outer :: Span.children outer));
    (* collector still usable: the stack unwound *)
    ignore (Trace.with_span tr "after" (fun () -> ()));
    checki "new root recorded" 2 (List.length (Trace.roots tr))
  | _ -> Alcotest.fail "expected 1 root after exception"

(* ---- metrics ---- *)

let test_metrics_arithmetic () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  checki "counter" 5 (Metrics.counter_value m "c");
  Metrics.gauge m "g" 1.5;
  Metrics.gauge m "g" 2.5;
  check Alcotest.(option (float 1e-9)) "gauge last-write-wins" (Some 2.5)
    (Metrics.gauge_value m "g");
  Metrics.observe m "h" 1.;
  Metrics.observe m "h" 3.;
  Metrics.observe m "h" 2.;
  (match Metrics.hist_value m "h" with
   | Some { Metrics.n; sum; min; max } ->
     checki "hist n" 3 n;
     check Alcotest.(float 1e-9) "hist sum" 6. sum;
     check Alcotest.(float 1e-9) "hist min" 1. min;
     check Alcotest.(float 1e-9) "hist max" 3. max
   | None -> Alcotest.fail "histogram missing");
  (* kind fixed by first use: wrong-kind ops are ignored *)
  Metrics.gauge m "c" 9.;
  checki "counter survives gauge write" 5 (Metrics.counter_value m "c");
  check Alcotest.(list string) "names sorted" [ "c"; "g"; "h" ]
    (Metrics.names m)

let test_disabled_noop () =
  ignore (Trace.with_span Trace.disabled "x" (fun () -> 5));
  checki "disabled trace stays empty" 0
    (List.length (Trace.roots Trace.disabled));
  checkb "disabled trace flag" false (Trace.enabled Trace.disabled);
  Metrics.incr Metrics.disabled "c";
  Metrics.gauge Metrics.disabled "g" 1.;
  Metrics.observe Metrics.disabled "h" 1.;
  check Alcotest.(list string) "disabled metrics stay empty" []
    (Metrics.names Metrics.disabled);
  checki "disabled counter_value" 0 (Metrics.counter_value Metrics.disabled "c")

let test_ambient () =
  (* default ambient is the null registry: ticks vanish *)
  Metrics.tick "ambient.test";
  checki "default ambient disabled" 0
    (Metrics.counter_value (Metrics.ambient ()) "ambient.test");
  let m = Metrics.create () in
  Metrics.with_ambient m (fun () ->
      Metrics.tick "ambient.test";
      Metrics.tick ~by:2 "ambient.test");
  checki "ticks landed in installed registry" 3
    (Metrics.counter_value m "ambient.test");
  (* restored after the scope, also on exceptions *)
  (try Metrics.with_ambient m (fun () -> failwith "expected")
   with Failure _ -> ());
  checkb "ambient restored" true (Metrics.ambient () == Metrics.disabled)

(* ---- JSON ---- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Float x, Json.Float y -> x = y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         xs ys
  | a, b -> a = b

let test_json_roundtrip () =
  let samples =
    [ Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 3.5;
      Json.Float 0.001;
      Json.Float 1e22;
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ \n\t and control \001";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("b", Json.Obj [ ("nested", Json.Bool false) ]) ] ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.of_string s with
      | Ok j' ->
        checkb (Printf.sprintf "round-trip %s" s) true (json_equal j j')
      | Error e -> Alcotest.failf "parse of %s failed: %s" s e)
    samples;
  (* floats always reparse as Float, never Int *)
  (match Json.of_string (Json.to_string (Json.Float 4.0)) with
   | Ok (Json.Float 4.0) -> ()
   | _ -> Alcotest.fail "Float 4.0 must stay a float");
  (* non-finite floats degrade to null *)
  check Alcotest.string "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  (* parser: escapes and \u *)
  (match Json.of_string "\"a\\u0041\\n\"" with
   | Ok (Json.Str "aA\n") -> ()
   | _ -> Alcotest.fail "\\u escape");
  (match Json.of_string "{\"k\": [1, 2.5e1, true], \"m\": null}" with
   | Ok
       (Json.Obj
          [ ("k", Json.List [ Json.Int 1; Json.Float 25.; Json.Bool true ]);
            ("m", Json.Null) ]) -> ()
   | _ -> Alcotest.fail "mixed document");
  (match Json.of_string "{\"k\": }" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed input must be rejected")

let test_chrome_export () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "compile" (fun () ->
         Trace.attr_str tr "strategy" "isa";
         Trace.with_span tr "lower" (fun () -> ());
         Trace.with_span tr "schedule" (fun () -> ())));
  let doc = Trace.to_chrome tr in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome doc does not reparse: %s" e
  | Ok parsed ->
    (match Json.member "traceEvents" parsed with
     | Some (Json.List events) ->
       checkb "has events" true (List.length events >= 3);
       let complete =
         List.filter
           (fun e -> Json.member "ph" e = Some (Json.Str "X"))
           events
       in
       checki "one X event per span" 3 (List.length complete);
       List.iter
         (fun e ->
           List.iter
             (fun field ->
               checkb
                 (Printf.sprintf "event has %s" field)
                 true
                 (Json.member field e <> None))
             [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
         complete
     | _ -> Alcotest.fail "traceEvents missing")

(* ---- compile-with-trace acceptance ---- *)

let compile_traced strategy circuit =
  let obs = Trace.create () in
  let metrics = Metrics.create () in
  let r = Qcc.Compiler.compile ~obs ~metrics ~strategy circuit in
  (r, metrics)

let test_trace_passes_once_each () =
  let circuit =
    Qgate.Decompose.to_isa (Qapps.Qaoa.triangle_example ())
  in
  List.iter
    (fun strategy ->
      let r, _ = compile_traced strategy circuit in
      match r.Qcc.Compiler.trace with
      | None -> Alcotest.fail "traced compile must return a trace"
      | Some root ->
        check Alcotest.string "root span" "compile" root.Span.name;
        List.iter
          (fun pass ->
            checki
              (Printf.sprintf "%s: pass %s exactly once"
                 (Qcc.Strategy.to_string strategy) pass)
              1
              (List.length (Span.find_all ~name:pass root)))
          (Qcc.Compiler.passes strategy);
        (* no stray pass spans: children of the root are exactly the
           strategy's pass list, in order *)
        check Alcotest.(list string) "pass order"
          (Qcc.Compiler.passes strategy)
          (List.map (fun (s : Span.t) -> s.Span.name) (Span.children root)))
    Qcc.Strategy.all

let test_compile_metrics_populated () =
  let circuit =
    Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line")
  in
  let _, metrics =
    compile_traced Qcc.Strategy.Cls_aggregation circuit
  in
  let names = Metrics.names metrics in
  checkb
    (Printf.sprintf "at least 8 metrics, got %d: %s" (List.length names)
       (String.concat ", " names))
    true
    (List.length names >= 8);
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "metric %s present" expected) true
        (List.mem expected names))
    [ "lower.gates"; "commute.checks"; "cls.matched"; "agg.attempted";
      "latency_model.gate_queries"; "compile.latency_ns" ]

let test_untraced_compile_has_no_trace () =
  let circuit =
    Qgate.Decompose.to_isa (Qapps.Qaoa.triangle_example ())
  in
  let r = Qcc.Compiler.compile ~strategy:Qcc.Strategy.Isa circuit in
  checkb "no trace by default" true (r.Qcc.Compiler.trace = None)

let suites =
  [ ("qobs.clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
    ("qobs.span",
     [ Alcotest.test_case "nesting" `Quick test_span_nesting;
       Alcotest.test_case "timing" `Quick test_span_timing;
       Alcotest.test_case "exception-safety" `Quick test_span_exception_safety ]);
    ("qobs.metrics",
     [ Alcotest.test_case "arithmetic" `Quick test_metrics_arithmetic;
       Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
       Alcotest.test_case "ambient" `Quick test_ambient ]);
    ("qobs.json",
     [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
       Alcotest.test_case "chrome-export" `Quick test_chrome_export ]);
    ("qobs.compile",
     [ Alcotest.test_case "passes-once-each" `Quick test_trace_passes_once_each;
       Alcotest.test_case "metrics-populated" `Quick
         test_compile_metrics_populated;
       Alcotest.test_case "untraced-no-trace" `Quick
         test_untraced_compile_has_no_trace ]) ]
