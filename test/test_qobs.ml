(* qobs: spans, metrics, JSON round-trips, and the compile-with-trace
   acceptance criterion (every pass appears exactly once per strategy). *)

module Json = Qobs.Json
module Span = Qobs.Span
module Trace = Qobs.Trace
module Metrics = Qobs.Metrics

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- clock ---- *)

let test_clock_monotonic () =
  let prev = ref (Qobs.Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Qobs.Clock.now_ns () in
    checkb "non-decreasing" true (t >= !prev);
    prev := t
  done;
  let t0 = Qobs.Clock.now_ns () in
  checkb "elapsed non-negative" true (Qobs.Clock.elapsed_ns t0 >= 0.)

(* ---- spans ---- *)

let test_span_nesting () =
  let tr = Trace.create () in
  let result =
    Trace.with_span tr "root" (fun () ->
        Trace.attr_int tr "gates" 7;
        Trace.with_span tr "child-a" (fun () -> ());
        Trace.with_span tr "child-b" (fun () ->
            Trace.with_span tr "grandchild" (fun () -> ()));
        17)
  in
  checki "body result" 17 result;
  match Trace.roots tr with
  | [ root ] ->
    check Alcotest.string "root name" "root" root.Span.name;
    checki "span count" 4 (Span.count root);
    (match Span.children root with
     | [ a; b ] ->
       check Alcotest.string "first child" "child-a" a.Span.name;
       check Alcotest.string "second child" "child-b" b.Span.name;
       checki "grandchild" 1 (List.length (Span.children b))
     | cs -> Alcotest.failf "expected 2 children, got %d" (List.length cs));
    checki "find_all" 1 (List.length (Span.find_all ~name:"grandchild" root));
    (match List.assoc_opt "gates" root.Span.attrs with
     | Some (Span.Int 7) -> ()
     | _ -> Alcotest.fail "attr gates=7 missing")
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs)

let test_span_timing () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "inner" (fun () ->
             (* burn a little time so durations are visibly ordered *)
             let acc = ref 0. in
             for k = 1 to 10_000 do
               acc := !acc +. sqrt (float_of_int k)
             done;
             !acc)));
  match Trace.roots tr with
  | [ outer ] ->
    let inner = List.hd (Span.children outer) in
    checkb "outer stop >= start" true (outer.Span.stop_ns >= outer.Span.start_ns);
    checkb "inner within outer" true
      (inner.Span.start_ns >= outer.Span.start_ns
       && inner.Span.stop_ns <= outer.Span.stop_ns);
    checkb "outer >= inner duration" true
      (Span.duration_ns outer >= Span.duration_ns inner)
  | _ -> Alcotest.fail "expected 1 root"

let test_span_exception_safety () =
  let tr = Trace.create () in
  (try
     Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Trace.roots tr with
  | [ outer ] ->
    checkb "spans closed despite raise" true
      (List.for_all
         (fun (s : Span.t) -> s.Span.stop_ns >= s.Span.start_ns)
         (outer :: Span.children outer));
    (* collector still usable: the stack unwound *)
    ignore (Trace.with_span tr "after" (fun () -> ()));
    checki "new root recorded" 2 (List.length (Trace.roots tr))
  | _ -> Alcotest.fail "expected 1 root after exception"

(* ---- metrics ---- *)

let test_metrics_arithmetic () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  checki "counter" 5 (Metrics.counter_value m "c");
  Metrics.gauge m "g" 1.5;
  Metrics.gauge m "g" 2.5;
  check Alcotest.(option (float 1e-9)) "gauge last-write-wins" (Some 2.5)
    (Metrics.gauge_value m "g");
  Metrics.observe m "h" 1.;
  Metrics.observe m "h" 3.;
  Metrics.observe m "h" 2.;
  (match Metrics.hist_value m "h" with
   | Some { Metrics.n; sum; min; max } ->
     checki "hist n" 3 n;
     check Alcotest.(float 1e-9) "hist sum" 6. sum;
     check Alcotest.(float 1e-9) "hist min" 1. min;
     check Alcotest.(float 1e-9) "hist max" 3. max
   | None -> Alcotest.fail "histogram missing");
  (* kind fixed by first use: wrong-kind ops are ignored *)
  Metrics.gauge m "c" 9.;
  checki "counter survives gauge write" 5 (Metrics.counter_value m "c");
  check Alcotest.(list string) "names sorted" [ "c"; "g"; "h" ]
    (Metrics.names m)

let test_disabled_noop () =
  ignore (Trace.with_span Trace.disabled "x" (fun () -> 5));
  checki "disabled trace stays empty" 0
    (List.length (Trace.roots Trace.disabled));
  checkb "disabled trace flag" false (Trace.enabled Trace.disabled);
  Metrics.incr Metrics.disabled "c";
  Metrics.gauge Metrics.disabled "g" 1.;
  Metrics.observe Metrics.disabled "h" 1.;
  check Alcotest.(list string) "disabled metrics stay empty" []
    (Metrics.names Metrics.disabled);
  checki "disabled counter_value" 0 (Metrics.counter_value Metrics.disabled "c")

let test_ambient () =
  (* default ambient is the null registry: ticks vanish *)
  Metrics.tick "ambient.test";
  checki "default ambient disabled" 0
    (Metrics.counter_value (Metrics.ambient ()) "ambient.test");
  let m = Metrics.create () in
  Metrics.with_ambient m (fun () ->
      Metrics.tick "ambient.test";
      Metrics.tick ~by:2 "ambient.test");
  checki "ticks landed in installed registry" 3
    (Metrics.counter_value m "ambient.test");
  (* restored after the scope, also on exceptions *)
  (try Metrics.with_ambient m (fun () -> failwith "expected")
   with Failure _ -> ());
  checkb "ambient restored" true (Metrics.ambient () == Metrics.disabled)

let test_hist_quantiles () =
  let m = Metrics.create () in
  for v = 1 to 100 do
    Metrics.observe m "h" (float_of_int v)
  done;
  let q p =
    match Metrics.hist_quantile m "h" p with
    | Some v -> v
    | None -> Alcotest.fail "quantile missing"
  in
  (* extremes are exact *)
  check Alcotest.(float 1e-9) "q0 = min" 1. (q 0.);
  check Alcotest.(float 1e-9) "q1 = max" 100. (q 1.);
  (* interior quantiles are monotone, inside [min,max], and within one
     bucket ratio (sqrt 2) of the true rank value *)
  let p50 = q 0.5 and p90 = q 0.9 and p99 = q 0.99 in
  checkb "monotone" true (1. <= p50 && p50 <= p90 && p90 <= p99 && p99 <= 100.);
  let within true_v est =
    est >= true_v /. 1.5 && est <= Float.min 100. (true_v *. 1.5)
  in
  checkb (Printf.sprintf "p50 near 50 (got %g)" p50) true (within 50. p50);
  checkb (Printf.sprintf "p90 near 90 (got %g)" p90) true (within 90. p90);
  checkb (Printf.sprintf "p99 near 99 (got %g)" p99) true (within 99. p99);
  (* single-sample histogram: every quantile collapses to the sample *)
  Metrics.observe m "one" 7.;
  List.iter
    (fun p ->
      check Alcotest.(option (float 1e-9)) "single-sample quantile" (Some 7.)
        (Metrics.hist_quantile m "one" p))
    [ 0.; 0.5; 0.9; 0.99; 1. ]

let test_span_alloc () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "alloc" (fun () ->
         (* allocate enough that the minor-heap delta is unambiguous even
            though no minor collection runs inside the span *)
         Sys.opaque_identity (List.init 1000 (fun i -> (i, i)))));
  match Trace.roots tr with
  | [ root ] ->
    (match root.Span.gc with
     | None -> Alcotest.fail "span must carry a GC delta"
     | Some g ->
       checkb
         (Printf.sprintf "minor words counted (got %g)" g.Span.minor_words)
         true
         (g.Span.minor_words >= 2000.);
       checkb "major collections non-negative" true (g.Span.major_collections >= 0));
    (* the delta is exported under "alloc" *)
    (match Json.member "alloc" (Span.to_json root) with
     | Some (Json.Obj _) -> ()
     | _ -> Alcotest.fail "to_json must export the alloc object")
  | _ -> Alcotest.fail "expected 1 root"

(* ---- JSON ---- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Float x, Json.Float y -> x = y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
         xs ys
  | a, b -> a = b

let test_json_roundtrip () =
  let samples =
    [ Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 3.5;
      Json.Float 0.001;
      Json.Float 1e22;
      Json.Str "plain";
      Json.Str "esc \"quotes\" \\ \n\t and control \001";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
          ("b", Json.Obj [ ("nested", Json.Bool false) ]) ] ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.of_string s with
      | Ok j' ->
        checkb (Printf.sprintf "round-trip %s" s) true (json_equal j j')
      | Error e -> Alcotest.failf "parse of %s failed: %s" s e)
    samples;
  (* floats always reparse as Float, never Int *)
  (match Json.of_string (Json.to_string (Json.Float 4.0)) with
   | Ok (Json.Float 4.0) -> ()
   | _ -> Alcotest.fail "Float 4.0 must stay a float");
  (* non-finite floats degrade to null *)
  check Alcotest.string "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  (* parser: escapes and \u *)
  (match Json.of_string "\"a\\u0041\\n\"" with
   | Ok (Json.Str "aA\n") -> ()
   | _ -> Alcotest.fail "\\u escape");
  (match Json.of_string "{\"k\": [1, 2.5e1, true], \"m\": null}" with
   | Ok
       (Json.Obj
          [ ("k", Json.List [ Json.Int 1; Json.Float 25.; Json.Bool true ]);
            ("m", Json.Null) ]) -> ()
   | _ -> Alcotest.fail "mixed document");
  (match Json.of_string "{\"k\": }" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed input must be rejected")

let test_chrome_export () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "compile" (fun () ->
         Trace.attr_str tr "strategy" "isa";
         Trace.with_span tr "lower" (fun () -> ());
         Trace.with_span tr "schedule" (fun () -> ())));
  let doc = Trace.to_chrome tr in
  match Json.of_string (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome doc does not reparse: %s" e
  | Ok parsed ->
    (match Json.member "traceEvents" parsed with
     | Some (Json.List events) ->
       checkb "has events" true (List.length events >= 3);
       let complete =
         List.filter
           (fun e -> Json.member "ph" e = Some (Json.Str "X"))
           events
       in
       checki "one X event per span" 3 (List.length complete);
       List.iter
         (fun e ->
           List.iter
             (fun field ->
               checkb
                 (Printf.sprintf "event has %s" field)
                 true
                 (Json.member field e <> None))
             [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
         complete
     | _ -> Alcotest.fail "traceEvents missing")

(* ---- golden byte-pins: exporters must be byte-deterministic ---- *)

let test_metrics_json_golden () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "a.count";
  Metrics.gauge m "b.gauge" 1.5;
  Metrics.observe m "c.hist" 2.;
  let expected =
    "{\"a.count\":3,\"b.gauge\":1.5,\"c.hist\":{\"count\":1,\"max\":2.0,"
    ^ "\"mean\":2.0,\"min\":2.0,\"p50\":2.0,\"p90\":2.0,\"p99\":2.0,"
    ^ "\"sum\":2.0}}"
  in
  check Alcotest.string "metrics json bytes" expected
    (Json.to_string (Metrics.to_json m));
  (* re-export is byte-identical *)
  check Alcotest.string "re-export stable"
    (Json.to_string (Metrics.to_json m))
    (Json.to_string (Metrics.to_json m))

let test_chrome_golden () =
  (* synthetic span tree with pinned clock values: the exporter assigns
     ids in pre-order and sorts attrs by key, so the bytes are fixed *)
  let root = Span.make ~name:"root" ~start_ns:1000. in
  root.Span.stop_ns <- 5000.;
  let kid = Span.make ~name:"kid" ~start_ns:2000. in
  kid.Span.stop_ns <- 3000.;
  Span.add_attr kid "zeta" (Span.Int 9);
  Span.add_attr kid "alpha" (Span.Str "x");
  kid.Span.gc <-
    Some { Span.minor_words = 10.; major_words = 0.; major_collections = 1 };
  root.Span.rev_children <- [ kid ];
  let bytes =
    String.concat "\n"
      (List.map Json.to_string (Span.to_chrome_events root))
  in
  let expected =
    "{\"name\":\"root\",\"cat\":\"compile\",\"ph\":\"X\",\"id\":1,"
    ^ "\"ts\":1.0,\"dur\":4.0,\"pid\":1,\"tid\":1,\"args\":{}}"
    ^ "\n"
    ^ "{\"name\":\"kid\",\"cat\":\"compile\",\"ph\":\"X\",\"id\":2,"
    ^ "\"ts\":2.0,\"dur\":1.0,\"pid\":1,\"tid\":1,\"args\":{"
    ^ "\"alpha\":\"x\",\"zeta\":9,"
    ^ "\"major_collections\":1,\"major_words\":0.0,\"minor_words\":10.0}}"
  in
  check Alcotest.string "chrome event bytes" expected bytes

let test_chrome_roundtrip () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "compile" (fun () ->
         Trace.with_span tr "lower" (fun () -> ());
         Trace.with_span tr "detect" (fun () ->
             Trace.with_span tr "contract" (fun () -> ()));
         Trace.with_span tr "schedule" (fun () -> ())));
  let parsed =
    match Json.of_string (Json.to_string (Trace.to_chrome tr)) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome export does not reparse: %s" e
  in
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.List evs) ->
      List.filter (fun e -> Json.member "ph" e = Some (Json.Str "X")) evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let field name e =
    match Json.member name e with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Alcotest.failf "event missing %s" name
  in
  let name e =
    match Json.member "name" e with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail "event missing name"
  in
  (* pre-order ids: 1..n in emission order *)
  List.iteri
    (fun k e -> checki "sequential id" (k + 1) (int_of_float (field "id" e)))
    events;
  check Alcotest.(list string) "pre-order names"
    [ "compile"; "lower"; "detect"; "contract"; "schedule" ]
    (List.map name events);
  (* reconstruct the tree from interval containment and compare to the
     recorded spans: same nesting, monotone child start times *)
  let within child parent =
    field "ts" child >= field "ts" parent
    && field "ts" child +. field "dur" child
       <= field "ts" parent +. field "dur" parent +. 1e-6
  in
  let compile_e = List.hd events in
  let rest = List.tl events in
  List.iter
    (fun e -> checkb (name e ^ " within compile") true (within e compile_e))
    rest;
  let contract_e = List.find (fun e -> name e = "contract") events in
  let detect_e = List.find (fun e -> name e = "detect") events in
  checkb "contract within detect" true (within contract_e detect_e);
  let starts =
    List.map (fun e -> field "ts" e)
      (List.filter (fun e -> name e <> "contract") rest)
  in
  checkb "sibling starts monotone" true
    (List.sort compare starts = starts)

(* ---- ledger + stats round-trip ---- *)

let test_ledger_stats_roundtrip () =
  let tr = Trace.create () in
  ignore
    (Trace.with_span tr "compile" (fun () ->
         Trace.with_span tr "lower" (fun () -> ());
         Trace.with_span tr "schedule" (fun () -> ())));
  let root =
    match Trace.last_span tr with
    | Some s -> s
    | None -> Alcotest.fail "no root span"
  in
  let m = Metrics.create () in
  Metrics.incr m ~by:10 "commute.checks";
  Metrics.incr m ~by:4 "commute.route.memo";
  Metrics.incr m ~by:6 "commute.route.dense";
  Metrics.incr m ~by:3 "qflow.route.structural";
  Metrics.incr m ~by:5 "detect.checks";
  Metrics.incr m ~by:2 "detect.route.memo";
  Metrics.incr m ~by:3 "detect.route.phase_poly";
  let row1 =
    Qobs.Ledger.row ~source_label:"t1" ~strategy:"cls" ~backend_digest:"b"
      ~source_digest:"s" ~chain_digest:"c" ~latency_ns:100.
      ~compile_time_s:0.5 ~cache_hits:2 ~cache_misses:1 ~trace:root
      ~metrics:m ()
  in
  let row2 =
    Qobs.Ledger.row ~source_label:"t2" ~strategy:"isa" ~backend_digest:"b"
      ~source_digest:"s" ~chain_digest:"c2" ~latency_ns:50.
      ~compile_time_s:0.25 ~cache_hits:0 ~cache_misses:3
      ~metrics:(Metrics.create ()) ()
  in
  let path = Filename.temp_file "qobs_ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ledger = Qobs.Ledger.open_file path in
      Qobs.Ledger.append ledger row1;
      Qobs.Ledger.append ledger row2;
      Qobs.Ledger.append ledger
        (Json.Obj [ ("schema", Json.Str "not-a-ledger/9") ]);
      Qobs.Ledger.close ledger;
      let rows =
        match Qobs.Ledger.read_file path with
        | Ok rows -> rows
        | Error e -> Alcotest.failf "read_file: %s" e
      in
      checki "three rows read back" 3 (List.length rows);
      let t = Qobs.Stats.of_rows rows in
      checki "ledger rows" 2 t.Qobs.Stats.rows;
      checki "skipped foreign schema" 1 t.Qobs.Stats.skipped;
      checki "cache hits" 2 t.Qobs.Stats.cache_hits;
      checki "cache misses" 4 t.Qobs.Stats.cache_misses;
      check Alcotest.(float 1e-9) "hit rate" (2. /. 6.) (Qobs.Stats.hit_rate t);
      checki "commute checks" 10 t.Qobs.Stats.commute_checks;
      (* route mix survives the round-trip and sums to the check count *)
      let route name =
        match List.assoc_opt name t.Qobs.Stats.routes with
        | Some n -> n
        | None -> Alcotest.failf "route %s missing" name
      in
      checki "memo route" 4 (route "commute.route.memo");
      checki "dense route" 6 (route "commute.route.dense");
      checki "qflow route" 3 (route "qflow.route.structural");
      checki "route sum = checks" t.Qobs.Stats.commute_checks
        (route "commute.route.memo" + route "commute.route.dense");
      checki "detect checks" 5 t.Qobs.Stats.detect_checks;
      checki "detect route sum = detect checks" t.Qobs.Stats.detect_checks
        (Qobs.Stats.detect_route_sum t);
      (* per-pass aggregation: both passes of row1, once each *)
      List.iter
        (fun pass ->
          match
            List.find_opt
              (fun (p : Qobs.Stats.pass_stat) -> p.Qobs.Stats.pass = pass)
              t.Qobs.Stats.passes
          with
          | Some p ->
            checki (pass ^ " calls") 1 p.Qobs.Stats.calls;
            checkb (pass ^ " wall >= 0") true (p.Qobs.Stats.wall_ns >= 0.)
          | None -> Alcotest.failf "pass %s not aggregated" pass)
        [ "lower"; "schedule" ];
      (* stats json carries its schema marker *)
      (match Json.member "schema" (Qobs.Stats.to_json t) with
       | Some (Json.Str s) -> check Alcotest.string "stats schema" "qcc.stats/1" s
       | _ -> Alcotest.fail "stats schema missing");
      (* a self-diff is flat: every entry at ratio 1 *)
      let d = Qobs.Stats.diff ~base:t ~cur:t in
      List.iter
        (fun (e : Qobs.Stats.diff_entry) ->
          check Alcotest.(float 1e-9)
            (e.Qobs.Stats.name ^ " self-ratio")
            1.
            (Qobs.Stats.ratio e))
        d.Qobs.Stats.delta)

(* every ledger row's schema field is the pinned constant *)
let test_ledger_schema_pinned () =
  check Alcotest.string "ledger schema" "qcc.ledger/1" Qobs.Ledger.schema;
  let row =
    Qobs.Ledger.row ~strategy:"isa" ~backend_digest:"b" ~source_digest:"s"
      ~chain_digest:"c" ~latency_ns:1. ~compile_time_s:0.1 ~cache_hits:0
      ~cache_misses:0 ~metrics:Metrics.disabled ()
  in
  match Json.member "schema" row with
  | Some (Json.Str s) -> check Alcotest.string "row schema" "qcc.ledger/1" s
  | _ -> Alcotest.fail "row schema missing"

(* ---- route attribution invariant ---- *)

let test_route_sum_invariant () =
  let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
  let metrics = Metrics.create () in
  ignore (Qcc.Compiler.compile ~metrics ~strategy:Qcc.Strategy.Cls_aggregation circuit);
  let sum_routes prefix =
    List.fold_left
      (fun acc name ->
        if
          String.length name > String.length prefix
          && String.sub name 0 (String.length prefix) = prefix
          && not (Filename.check_suffix name ".ms")
        then acc + Metrics.counter_value metrics name
        else acc)
      0 (Metrics.names metrics)
  in
  let checks = Metrics.counter_value metrics "commute.checks" in
  checkb "commutation queries happened" true (checks > 0);
  checki "commute routes sum to checks" checks (sum_routes "commute.route.");
  let pair_checks = Metrics.counter_value metrics "qflow.pair.checks" in
  checki "qflow routes sum to pair checks" pair_checks
    (sum_routes "qflow.route.");
  let detect_checks = Metrics.counter_value metrics "detect.checks" in
  checkb "detection queries happened" true (detect_checks > 0);
  checki "detect routes sum to checks" detect_checks
    (sum_routes "detect.route.")

(* ---- compile-with-trace acceptance ---- *)

let compile_traced strategy circuit =
  let obs = Trace.create () in
  let metrics = Metrics.create () in
  let r = Qcc.Compiler.compile ~obs ~metrics ~strategy circuit in
  (r, metrics)

let test_trace_passes_once_each () =
  let circuit =
    Qgate.Decompose.to_isa (Qapps.Qaoa.triangle_example ())
  in
  List.iter
    (fun strategy ->
      let r, _ = compile_traced strategy circuit in
      match r.Qcc.Compiler.trace with
      | None -> Alcotest.fail "traced compile must return a trace"
      | Some root ->
        check Alcotest.string "root span" "compile" root.Span.name;
        List.iter
          (fun pass ->
            checki
              (Printf.sprintf "%s: pass %s exactly once"
                 (Qcc.Strategy.to_string strategy) pass)
              1
              (List.length (Span.find_all ~name:pass root)))
          (Qcc.Compiler.passes strategy);
        (* no stray pass spans: children of the root are exactly the
           strategy's pass list, in order *)
        check Alcotest.(list string) "pass order"
          (Qcc.Compiler.passes strategy)
          (List.map (fun (s : Span.t) -> s.Span.name) (Span.children root)))
    Qcc.Strategy.all

let test_compile_metrics_populated () =
  let circuit =
    Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line")
  in
  let _, metrics =
    compile_traced Qcc.Strategy.Cls_aggregation circuit
  in
  let names = Metrics.names metrics in
  checkb
    (Printf.sprintf "at least 8 metrics, got %d: %s" (List.length names)
       (String.concat ", " names))
    true
    (List.length names >= 8);
  List.iter
    (fun expected ->
      checkb (Printf.sprintf "metric %s present" expected) true
        (List.mem expected names))
    [ "lower.gates"; "commute.checks"; "cls.matched"; "agg.attempted";
      "latency_model.gate_queries"; "compile.latency_ns" ]

let test_untraced_compile_has_no_trace () =
  let circuit =
    Qgate.Decompose.to_isa (Qapps.Qaoa.triangle_example ())
  in
  let r = Qcc.Compiler.compile ~strategy:Qcc.Strategy.Isa circuit in
  checkb "no trace by default" true (r.Qcc.Compiler.trace = None)

let suites =
  [ ("qobs.clock", [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ]);
    ("qobs.span",
     [ Alcotest.test_case "nesting" `Quick test_span_nesting;
       Alcotest.test_case "timing" `Quick test_span_timing;
       Alcotest.test_case "exception-safety" `Quick test_span_exception_safety ]);
    ("qobs.metrics",
     [ Alcotest.test_case "arithmetic" `Quick test_metrics_arithmetic;
       Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
       Alcotest.test_case "span-alloc" `Quick test_span_alloc;
       Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
       Alcotest.test_case "ambient" `Quick test_ambient ]);
    ("qobs.json",
     [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
       Alcotest.test_case "chrome-export" `Quick test_chrome_export;
       Alcotest.test_case "metrics-golden" `Quick test_metrics_json_golden;
       Alcotest.test_case "chrome-golden" `Quick test_chrome_golden;
       Alcotest.test_case "chrome-roundtrip" `Quick test_chrome_roundtrip ]);
    ("qobs.ledger",
     [ Alcotest.test_case "stats-roundtrip" `Quick test_ledger_stats_roundtrip;
       Alcotest.test_case "schema-pinned" `Quick test_ledger_schema_pinned;
       Alcotest.test_case "route-sum" `Quick test_route_sum_invariant ]);
    ("qobs.compile",
     [ Alcotest.test_case "passes-once-each" `Quick test_trace_passes_once_each;
       Alcotest.test_case "metrics-populated" `Quick
         test_compile_metrics_populated;
       Alcotest.test_case "untraced-no-trace" `Quick
         test_untraced_compile_has_no_trace ]) ]
