(* a second layer of property tests: cross-module invariants that random
   inputs exercise harder than hand-picked cases *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Cmat = Qnum.Cmat

let device = Qcontrol.Device.default

let qasm_properties =
  [ qcheck ~count:30 "qasm print/parse is the identity on circuits"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 4 in
        let gates = random_unitary_gates rng n 15 in
        let c = Circuit.make n gates in
        let once = Qgate.Qasm.of_string (Qgate.Qasm.to_string c) in
        (* textual round-trip is exact: same gate list, not just same
           semantics *)
        List.length (Circuit.gates once) = List.length gates
        && List.for_all2
             (fun a b -> Gate.name a = Gate.name b && Gate.qubits a = Gate.qubits b)
             (Circuit.gates once) gates
        && Qgate.Qasm.to_string once = Qgate.Qasm.to_string c);
    (* the same round-trip over the real benchmark suite, cross-checked by
       the qcert equivalence engine: a certifier refutation here would mean
       either the printer/parser or the certifier itself is wrong *)
    case "qasm round-trip on suite circuits, qcert cross-check" (fun () ->
        List.iter
          (fun name ->
            let c = Qapps.Suite.lowered (Qapps.Suite.find name) in
            let rt = Qgate.Qasm.of_string (Qgate.Qasm.to_string c) in
            check_int
              (name ^ " register width") (Circuit.n_qubits c)
              (Circuit.n_qubits rt);
            check_bool
              (name ^ " gate-for-gate equal") true
              (List.equal Gate.equal (Circuit.gates c) (Circuit.gates rt));
            let o =
              Qcert.Rewrite.equivalence ~stage:"qasm" ~src:(Circuit.gates c)
                ~dst:(Circuit.gates rt)
            in
            check_bool (name ^ " certified equivalent") true
              (o.Qcert.Certificate.diags = [] && o.Qcert.Certificate.checks > 0))
          [ "maxcut-line"; "ising-n30"; "uccsd-n4" ]) ]

let fenwick_properties =
  [ qcheck ~count:50 "bravyi-kitaev index sets are disjoint and in range"
      QCheck.(pair (int_range 1 64) (int_range 0 1000))
      (fun (n, j0) ->
        let j = j0 mod n in
        let u = Qapps.Fermion.update_set ~n j in
        let p = Qapps.Fermion.parity_set ~n j in
        let f = Qapps.Fermion.flip_set ~n j in
        let in_range l = List.for_all (fun q -> q >= 0 && q < n) l in
        let disjoint a b = not (List.exists (fun q -> List.mem q b) a) in
        in_range u && in_range p && in_range f
        (* update set lies strictly above j, parity and flip strictly
           below *)
        && List.for_all (fun q -> q > j) u
        && List.for_all (fun q -> q < j) p
        && List.for_all (fun q -> q < j) f
        && disjoint u p
        (* the flip set stores occupations summed into j: always part of
           the parity data of modes below j *)
        && List.for_all (fun q -> List.mem q p || q >= j) f) ]

let weyl_properties =
  [ qcheck ~count:30 "interaction time is subadditive under composition"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let u = random_unitary rng 2 8 and v = random_unitary rng 2 8 in
        let t w = Qcontrol.Weyl.interaction_time device (Qcontrol.Weyl.coordinates w) in
        (* composing cannot need more interaction than the sum of parts *)
        t (Cmat.mul u v) <= t u +. t v +. 1e-6);
    qcheck ~count:30 "interaction time vanishes exactly on local unitaries"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let a = random_unitary rng 1 6 and b = random_unitary rng 1 6 in
        let u = Cmat.kron a b in
        Qcontrol.Weyl.interaction_time device (Qcontrol.Weyl.coordinates u)
        < 0.1) ]

let schedule_properties =
  [ case "utilization of a parallel layer is 1" (fun () ->
        let g =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 5.)
            (Circuit.make 4 [ Gate.h 0; Gate.h 1; Gate.h 2; Gate.h 3 ])
        in
        check_float ~eps:1e-9 "full" 1. (Qsched.Schedule.utilization (Qsched.Asap.schedule g)));
    case "utilization of a serial chain is 1/n-ish" (fun () ->
        let g =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 5.)
            (Circuit.make 3 [ Gate.h 0; Gate.x 0; Gate.h 0 ])
        in
        check_float ~eps:1e-9 "one third" (1. /. 3.)
          (Qsched.Schedule.utilization (Qsched.Asap.schedule g)));
    case "qubit busy time" (fun () ->
        let g =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 4.)
            (Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ])
        in
        let s = Qsched.Asap.schedule g in
        check_float ~eps:1e-9 "q0" 8. (Qsched.Schedule.qubit_busy_time s 0);
        check_float ~eps:1e-9 "q1" 4. (Qsched.Schedule.qubit_busy_time s 1));
    qcheck ~count:20 "cls utilization never exceeds 1" QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 4 12 in
        let g =
          Qgdg.Gdg.of_circuit
            ~latency:(fun gs -> Qcontrol.Latency_model.isa_critical_path device gs)
            (Circuit.make 4 gates)
        in
        let u = Qsched.Schedule.utilization (Qsched.Cls.schedule g) in
        u >= 0. && u <= 1. +. 1e-9) ]

let alap_properties =
  [ case "alap preserves the makespan" (fun () ->
        let g =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 3.)
            (Circuit.make 3 [ Gate.h 0; Gate.cnot 0 1; Gate.cnot 1 2; Gate.h 0 ])
        in
        let asap = Qsched.Asap.schedule g and alap = Qsched.Alap.schedule g in
        check_float ~eps:1e-9 "same makespan" asap.Qsched.Schedule.makespan
          alap.Qsched.Schedule.makespan;
        check_bool "valid" true (Qsched.Schedule.no_qubit_overlap alap));
    case "slack is nonnegative and zero on the critical path" (fun () ->
        let g =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 2.)
            (Circuit.make 3 [ Gate.h 0; Gate.cnot 0 1; Gate.h 2 ])
        in
        List.iter (fun (_, s) -> check_bool "nonneg" true (s >= -1e-9)) (Qsched.Alap.slack g);
        let critical = Qsched.Alap.critical_path g in
        check_bool "h2 has slack" true
          (not
             (List.exists
                (fun (i : Qgdg.Inst.t) ->
                  List.exists (fun gg -> Gate.equal gg (Gate.h 2)) i.Qgdg.Inst.gates)
                critical));
        check_int "chain is critical" 2 (List.length critical));
    qcheck ~count:20 "alap starts never precede asap starts"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 4 10 in
        let g = Qgdg.Gdg.of_circuit ~latency:(fun _ -> 1.5) (Circuit.make 4 gates) in
        List.for_all (fun (_, s) -> s >= -1e-9) (Qsched.Alap.slack g)) ]

let handopt_properties =
  [ qcheck ~count:25 "handopt never increases gate count"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 25 in
        let c = Circuit.make 3 gates in
        Circuit.n_gates (Qcc.Handopt.optimize c) <= Circuit.n_gates c);
    qcheck ~count:25 "handopt is idempotent" QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 20 in
        let once = Qcc.Handopt.optimize (Circuit.make 3 gates) in
        let twice = Qcc.Handopt.optimize once in
        Circuit.gates once = Circuit.gates twice) ]

let latency_properties =
  [ qcheck ~count:25 "block time is invariant under qubit relabeling"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 8 in
        let t = Qcontrol.Latency_model.block_time device gates in
        let shifted = List.map (Gate.map_qubits (fun q -> q + 4)) gates in
        Float.abs (Qcontrol.Latency_model.block_time device shifted -. t) < 1e-6);
    qcheck ~count:25 "gate time independent of qubit labels"
      QCheck.(int_range 0 100000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let theta = Qgraph.Rand.float rng 6.28 in
        Float.abs
          (Qcontrol.Latency_model.gate_time device (Gate.rz theta 0)
          -. Qcontrol.Latency_model.gate_time device (Gate.rz theta 5))
        < 1e-9) ]

let suites =
  [ ("properties.qasm", qasm_properties);
    ("properties.fenwick", fenwick_properties);
    ("properties.weyl", weyl_properties);
    ("properties.schedule", schedule_properties);
    ("properties.alap", alap_properties);
    ("properties.handopt", handopt_properties);
    ("properties.latency", latency_properties) ]
