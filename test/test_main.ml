let () =
  Alcotest.run "qagg"
    (Test_qnum.suites @ Test_qgraph.suites @ Test_qgate.suites
     @ Test_qcontrol.suites @ Test_qsim.suites @ Test_qgdg.suites
     @ Test_qsched.suites @ Test_qmap.suites @ Test_qagg.suites
     @ Test_qarith.suites @ Test_qapps.suites @ Test_qcc.suites
     @ Test_noise.suites @ Test_fermion.suites @ Test_tools.suites
     @ Test_pipeline.suites @ Test_passmgr.suites @ Test_properties.suites
     @ Test_qlint.suites @ Test_qflow.suites @ Test_qobs.suites
     @ Test_qcert.suites @ Test_domlint.suites @ Test_parallel.suites)
