(* The parallel compile drivers: Parallel.map's slotting and failure
   contract, the determinism of the pooled drivers against their
   sequential reference, and the canonical (sharing-insensitive) stage
   cache root key. *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy
module Parallel = Qcc.Parallel
module Cache = Qcc.Pipeline.Cache
module Metrics = Qobs.Metrics

(* ------------------------------------------------------------------ *)
(* Parallel.map: slotting, init, failure propagation                   *)

let map_matches_mapi () =
  let arr = Array.init 100 (fun i -> i * 3) in
  let f i x = (i, x + 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array (pair int int)))
        (Printf.sprintf "map ~jobs:%d slots by index" jobs)
        (Array.mapi f arr)
        (Parallel.map ~jobs f arr))
    [ 1; 2; 3; 8; 200 ]

let map_empty_and_init () =
  check_int "empty input, no work" 0
    (Array.length (Parallel.map ~jobs:4 (fun _ x -> x) [||]));
  (* init runs once per worker, before any job on that worker *)
  let inits = Atomic.make 0 in
  let out =
    Parallel.map ~jobs:3 ~init:(fun () -> Atomic.incr inits)
      (fun i x -> i + x)
      (Array.make 12 0)
  in
  check_int "12 jobs ran" 12 (Array.length out);
  let n = Atomic.get inits in
  check_bool
    (Printf.sprintf "init ran once per worker (got %d, want 1..3)" n)
    true
    (n >= 1 && n <= 3)

let map_reraises_lowest_failure () =
  (* several workers can fail; the caller must see the lowest job index's
     exception, deterministically, with all domains joined *)
  (match
     Parallel.map ~jobs:4
       (fun i _ -> if i mod 3 = 2 then failwith (Printf.sprintf "job %d" i))
       (Array.make 16 ())
   with
  | _ -> Alcotest.fail "expected a re-raised worker exception"
  | exception Failure msg -> Alcotest.(check string) "lowest failing job" "job 2" msg);
  (* init failures outrank any job failure *)
  (match
     Parallel.map ~jobs:2 ~init:(fun () -> failwith "init down")
       (fun i _ -> i)
       (Array.make 4 ())
   with
  | _ -> Alcotest.fail "expected the init exception"
  | exception Failure msg -> Alcotest.(check string) "init failure wins" "init down" msg);
  (* the pool was joined cleanly both times: a fresh map still works *)
  Alcotest.(check (array int))
    "pool reusable after failure" [| 0; 2; 4; 6 |]
    (Parallel.map ~jobs:4 (fun i _ -> 2 * i) (Array.make 4 ()))

(* ------------------------------------------------------------------ *)
(* Metrics shards: absorb/merge law                                    *)

let absorb_folds_shards () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "jobs" ~by:2;
  Metrics.gauge a "peak" 1.5;
  Metrics.incr b "jobs" ~by:3;
  Metrics.gauge b "peak" 0.5;
  Metrics.observe b "t" 4.0;
  let into = Metrics.create () in
  Metrics.incr into "jobs";
  Metrics.absorb ~into a;
  Metrics.absorb ~into b;
  check_int "counters add" 6 (Metrics.counter_value into "jobs");
  (match Metrics.gauge_value into "peak" with
  | Some v -> check_float "gauges keep the max" 1.5 v
  | None -> Alcotest.fail "gauge lost in absorb");
  (match Metrics.hist_value into "t" with
  | Some h -> check_int "hist count crossed over" 1 h.Metrics.n
  | None -> Alcotest.fail "hist lost in absorb");
  (* the shard order a pool joins in cannot matter *)
  Alcotest.(check string)
    "merge commutes (snapshot bytes)"
    (Qobs.Json.to_string (Metrics.to_json (Metrics.merge a b)))
    (Qobs.Json.to_string (Metrics.to_json (Metrics.merge b a)));
  Metrics.absorb ~into:Metrics.disabled a (* must not raise *)

(* ------------------------------------------------------------------ *)
(* Stage-cache root key: canonical bytes, not Marshal sharing          *)

let root_key_ignores_sharing () =
  (* one gate value used twice marshals with a back-reference; two
     independently built (structurally equal) gates marshal as two
     blocks. The old Marshal-based root key split these into distinct
     cache keys; the canonical-QASM key must not. *)
  let g = Gate.rz 0.5 0 in
  let shared = Circuit.make 2 [ g; g; Gate.cnot 0 1 ] in
  let rebuilt = Circuit.make 2 [ Gate.rz 0.5 0; Gate.rz 0.5 0; Gate.cnot 0 1 ] in
  check_bool "Marshal bytes differ (sharing), so the old key split"
    false
    (String.equal (Marshal.to_string shared []) (Marshal.to_string rebuilt []));
  let cache = Cache.create () in
  let r1 = Compiler.compile ~cache ~strategy:Strategy.Isa shared in
  let misses = Cache.misses cache in
  check_bool "first compile populated the cache" true (misses > 0);
  let hits = Cache.hits cache in
  let r2 = Compiler.compile ~cache ~strategy:Strategy.Isa rebuilt in
  check_int "equal circuit adds no misses" misses (Cache.misses cache);
  check_bool "equal circuit re-reads every stage" true (Cache.hits cache > hits);
  check_float "identical latency through the shared entries"
    r1.Compiler.latency r2.Compiler.latency

(* ------------------------------------------------------------------ *)
(* Pooled drivers: byte-identical to the sequential reference          *)

let fingerprint (r : Compiler.result) =
  let digest =
    match r.Compiler.certificate with
    | Some c ->
      Digest.to_hex
        (Digest.string (Qobs.Json.to_string (Qcert.Certificate.to_json c)))
    | None -> "<uncertified>"
  in
  (Printf.sprintf "%h" r.Compiler.latency, r.Compiler.n_merges, digest)

(* the deterministic slice of the merged snapshot: totals that depend
   only on the job set, not on scheduling. Wall-time gauges/hists and
   the memo-warmth-sensitive route counters — commute.route.* and
   qflow.summary.* — legitimately vary with the pool size; the
   compute-once cache and the per-query commute/agg/qcert totals must
   not. *)
let deterministic_counters m =
  List.map
    (fun name -> (name, Metrics.counter_value m name))
    [ "pipeline.cache.hit"; "pipeline.cache.miss"; "commute.checks";
      "agg.attempted"; "agg.accepted"; "agg.vetoed_monotonic";
      "qcert.proved"; "qcert.refuted"; "qcert.skipped"; "qcert.facts" ]

let small_circuits =
  lazy
    (let rng = Qgraph.Rand.create 7 in
     let open Gate in
     [ Circuit.make 3
         [ h 0; cnot 0 1; rz 0.7 1; cnot 1 2; rz 0.3 2; cnot 0 1; rx 0.2 0 ];
       Circuit.make 4 (random_unitary_gates rng 4 10) ])

let run_subset ~jobs subset =
  let arr = Array.of_list subset in
  let merged = Metrics.create () in
  let shards = Array.map (fun _ -> Metrics.create ()) arr in
  let cache = Cache.create () in
  let results =
    Parallel.map ~jobs ~init:Compiler.reset_all_memos
      (fun i (strategy, circuit) ->
        Compiler.compile ~certify:true ~metrics:shards.(i) ~cache ~strategy
          circuit)
      arr
  in
  Array.iter (fun s -> Metrics.absorb ~into:merged s) shards;
  (Array.map fingerprint results, deterministic_counters merged)

let qcheck_pool_determinism =
  let circuits = Lazy.force small_circuits in
  let all_jobs =
    List.concat_map
      (fun c -> List.map (fun s -> (s, c)) Strategy.all)
      circuits
  in
  qcheck ~count:5 "pooled compile subsets are byte-identical to jobs:1"
    QCheck.(pair (int_range 2 8) (int_range 1 1023))
    (fun (pool, mask) ->
      let subset =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) all_jobs
      in
      subset = [] || run_subset ~jobs:1 subset = run_subset ~jobs:pool subset)

let compile_all_jobs_matches_sequential () =
  let circuit = List.hd (Lazy.force small_circuits) in
  let reference =
    List.map
      (fun (s, r) -> (s, fingerprint r))
      (Compiler.compile_all ~certify:true circuit)
  in
  List.iter
    (fun jobs ->
      Alcotest.(check (list (pair string (triple string int string))))
        (Printf.sprintf "compile_all ~jobs:%d" jobs)
        (List.map (fun (s, fp) -> (Strategy.to_string s, fp)) reference)
        (List.map
           (fun (s, r) -> (Strategy.to_string s, fingerprint r))
           (Compiler.compile_all ~certify:true ~jobs circuit)))
    [ 1; 3 ]

let compile_matrix_regroups () =
  let named =
    List.mapi
      (fun i c -> (Printf.sprintf "c%d" i, c))
      (Lazy.force small_circuits)
  in
  let seq = Compiler.compile_matrix ~certify:true named in
  let par = Compiler.compile_matrix ~certify:true ~jobs:4 named in
  List.iter2
    (fun (name, rs) (name', rs') ->
      Alcotest.(check string) "benchmark order" name name';
      List.iter2
        (fun (s, r) (s', r') ->
          Alcotest.(check string) "strategy order" (Strategy.to_string s)
            (Strategy.to_string s');
          Alcotest.(check (triple string int string))
            (Printf.sprintf "%s/%s identical" name (Strategy.to_string s))
            (fingerprint r) (fingerprint r'))
        rs rs')
    seq par

let suites =
  [ ( "parallel",
      [ case "map matches Array.mapi at every pool size" map_matches_mapi;
        case "map on empty input; init once per worker" map_empty_and_init;
        case "lowest-index worker failure re-raises; pool joins"
          map_reraises_lowest_failure;
        case "metrics shards absorb under the merge law" absorb_folds_shards;
        case "cache root key ignores Marshal sharing" root_key_ignores_sharing;
        qcheck_pool_determinism;
        slow_case "compile_all ?jobs matches the sequential driver"
          compile_all_jobs_matches_sequential;
        slow_case "compile_matrix regroups benchmark-major"
          compile_matrix_regroups ] ) ]
