(* tests for the Qlint static checkers: diagnostics, the five checker
   families, and the compiler's ~check:true mode *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module Schedule = Qsched.Schedule
module D = Qlint.Diagnostic

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags
let errors diags = List.filter D.is_error diags

(* hand-built records bypass the constructors' validation, standing in
   for IR corrupted by a buggy pass *)
let raw_gate kind qubits = { Gate.kind; qubits }
let raw_inst id gates qubits latency = { Inst.id; gates; qubits; latency }

let entry id gates start finish =
  { Schedule.inst = Inst.make ~id ~latency:(finish -. start) gates;
    start;
    finish }

let diagnostic_cases =
  [ case "report sorts errors first and counts" (fun () ->
        let w = D.make ~code:"QL013" ~severity:D.Warning "w" in
        let e = D.make ~code:"QL030" ~severity:D.Error "e" in
        let r = Qlint.Report.of_list [ w; e ] in
        (match Qlint.Report.diagnostics r with
         | [ first; _ ] -> check_bool "error first" true (D.is_error first)
         | _ -> Alcotest.fail "expected two diagnostics");
        check_bool "has errors" true (Qlint.Report.has_errors r);
        Alcotest.(check string) "summary" "1 error, 1 warning"
          (Qlint.Report.summary r));
    case "json escapes and carries location" (fun () ->
        let d =
          D.make ~stage:"cls" ~insts:[ 3; 7 ] ~qubits:[ 2 ]
            ~interval:(1., 2.5) ~code:"QL030" ~severity:D.Error "say \"hi\""
        in
        let j = D.to_json d in
        check_bool "escaped quote" true
          (let rec has i =
             i + 9 <= String.length j
             && (String.sub j i 9 = "say \\\"hi\\" || has (i + 1))
           in
           has 0);
        check_bool "insts listed" true
          (let rec has i =
             i + 5 <= String.length j
             && (String.sub j i 5 = "[3,7]" || has (i + 1))
           in
           has 0)) ]

let circuit_cases =
  [ case "clean circuit has no findings" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ] in
        check_int "none" 0 (List.length (Qlint.Check_circuit.run c)));
    case "out-of-range and duplicate operands" (fun () ->
        let gates =
          [ raw_gate Gate.H [ 5 ]; raw_gate Gate.Cnot [ 1; 1 ] ]
        in
        Alcotest.(check (list string)) "codes" [ "QL010"; "QL011" ]
          (List.sort compare
             (codes (Qlint.Check_circuit.check_gates ~n_qubits:2 gates))));
    case "arity mismatch" (fun () ->
        let gates = [ raw_gate Gate.Cnot [ 0 ] ] in
        check_bool "QL012" true
          (List.mem "QL012"
             (codes (Qlint.Check_circuit.check_gates ~n_qubits:2 gates))));
    case "unused register qubit is a warning" (fun () ->
        let c = Circuit.make 3 [ Gate.h 0; Gate.x 1 ] in
        let diags = Qlint.Check_circuit.run ~warn_unused:true c in
        Alcotest.(check (list string)) "codes" [ "QL013" ] (codes diags);
        check_int "no errors" 0 (List.length (errors diags)));
    case "qasm parse failure is QL015" (fun () ->
        let diags = Qlint.Check_circuit.lint_qasm_string "qreg q[" in
        Alcotest.(check (list string)) "codes" [ "QL015" ] (codes diags));
    case "qasm repeated operand is QL011" (fun () ->
        let diags =
          Qlint.Check_circuit.lint_qasm_string
            "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n"
        in
        Alcotest.(check (list string)) "codes" [ "QL011" ] (codes diags)) ]

let gdg_cases =
  [ case "well-formed gdg has no findings" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun _ -> 1.)
            (Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ])
        in
        check_int "none" 0 (List.length (Qlint.Check_gdg.run g)));
    case "duplicate chain entry is QL024" (fun () ->
        (* a support listing qubit 0 twice threads the node onto chain 0
           twice *)
        let i = raw_inst 0 [ Gate.h 0 ] [ 0; 0 ] 1. in
        let g = Gdg.of_insts ~n_qubits:1 [ i ] in
        check_bool "QL024" true (List.mem "QL024" (codes (Qlint.Check_gdg.run g))));
    case "duplicate instruction id is QL025" (fun () ->
        let i = Inst.of_gate ~id:4 ~latency:1. (Gate.h 0) in
        let diags = Qlint.Check_gdg.check_insts ~n_qubits:1 [ i; i ] in
        check_bool "QL025" true (List.mem "QL025" (codes diags)));
    case "empty block and negative latency" (fun () ->
        let empty = raw_inst 0 [] [] 1. in
        let negative = raw_inst 1 [ Gate.h 0 ] [ 0 ] (-2.) in
        let diags =
          Qlint.Check_gdg.check_insts ~n_qubits:1 [ empty; negative ]
        in
        check_bool "QL027" true (List.mem "QL027" (codes diags));
        check_bool "QL028" true (List.mem "QL028" (codes diags))) ]

let schedule_cases =
  [ case "corrupted schedule names pair, qubit and interval" (fun () ->
        (* the required acceptance case: two instructions double-book
           qubit 2 over [3, 5] *)
        let s =
          Schedule.make ~n_qubits:3
            [ entry 0 [ Gate.h 2 ] 0. 5.; entry 1 [ Gate.x 2 ] 3. 8. ]
        in
        (match errors (Qlint.Check_schedule.run s) with
         | [ d ] ->
           Alcotest.(check string) "code" "QL030" d.D.code;
           Alcotest.(check (list int)) "both instructions" [ 0; 1 ]
             d.D.loc.D.insts;
           Alcotest.(check (list int)) "shared qubit" [ 2 ] d.D.loc.D.qubits;
           (match d.D.loc.D.interval with
            | Some (lo, hi) ->
              check_float "overlap start" 3. lo;
              check_float "overlap end" 5. hi
            | None -> Alcotest.fail "missing interval")
         | l -> Alcotest.failf "expected one error, got %d" (List.length l));
        ());
    case "legal back-to-back schedule is clean" (fun () ->
        let s =
          Schedule.make ~n_qubits:1
            [ entry 0 [ Gate.h 0 ] 0. 2.; entry 1 [ Gate.x 0 ] 2. 4. ]
        in
        check_int "none" 0 (List.length (Qlint.Check_schedule.run s)));
    case "duration != latency is a warning" (fun () ->
        let e = entry 0 [ Gate.h 0 ] 0. 2. in
        let stretched = { e with Schedule.finish = 3. } in
        let s = Schedule.make ~n_qubits:1 [ stretched ] in
        let diags = Qlint.Check_schedule.run s in
        check_bool "QL032" true (List.mem "QL032" (codes diags));
        check_int "warning only" 0 (List.length (errors diags)));
    case "scheduling an instruction twice is QL036" (fun () ->
        let e = entry 0 [ Gate.h 0 ] 0. 1. in
        let late = { e with Schedule.start = 5.; finish = 6. } in
        let s = Schedule.make ~n_qubits:1 [ e; late ] in
        check_bool "QL036" true
          (List.mem "QL036" (codes (Qlint.Check_schedule.run s))));
    case "chain-order violation is QL031" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun _ -> 1.)
            (Circuit.make 1 [ Gate.h 0; Gate.x 0 ])
        in
        (* schedule the successor before its chain predecessor, with a
           gap so no QL030 fires *)
        let a = Gdg.find g 0 and b = Gdg.find g 1 in
        let s =
          Schedule.make ~n_qubits:1
            [ { Schedule.inst = b; start = 0.; finish = 1. };
              { Schedule.inst = a; start = 2.; finish = 3. } ]
        in
        let diags = Qlint.Check_schedule.run ~original:g s in
        Alcotest.(check (list string)) "codes" [ "QL031" ]
          (codes (errors diags));
        (* the same inversion is legal once declared commuting *)
        check_int "commuting pair is fine" 0
          (List.length
             (errors
                (Qlint.Check_schedule.run ~original:g
                   ~reorderable:(fun _ _ -> true)
                   s))));
    case "schedule / gdg coverage mismatch is QL034" (fun () ->
        let g =
          Gdg.of_circuit
            ~latency:(fun _ -> 1.)
            (Circuit.make 2 [ Gate.h 0; Gate.h 1 ])
        in
        let s =
          Schedule.make ~n_qubits:2
            [ { Schedule.inst = Gdg.find g 0; start = 0.; finish = 1. };
              { Schedule.inst = Inst.of_gate ~id:9 ~latency:1. (Gate.x 1);
                start = 0.;
                finish = 1. } ]
        in
        let qcodes = codes (Qlint.Check_schedule.run ~original:g s) in
        check_int "one missing + one foreign" 2
          (List.length (List.filter (fun c -> c = "QL034") qcodes))) ]

let mapping_cases =
  [ case "non-adjacent gate is QL040" (fun () ->
        let topology = Qmap.Topology.line 3 in
        let i = Inst.of_gate ~id:0 ~latency:1. (Gate.cnot 0 2) in
        let diags = Qlint.Check_mapping.check_adjacency ~topology [ i ] in
        Alcotest.(check (list string)) "codes" [ "QL040" ] (codes diags));
    case "corrupted placement is QL041" (fun () ->
        let topology = Qmap.Topology.line 2 in
        let p = Qmap.Placement.identity ~n_logical:2 topology in
        p.Qmap.Placement.site_to_logical.(0) <- 1;
        check_bool "QL041" true
          (List.mem "QL041"
             (codes (Qlint.Check_mapping.check_placement ~topology p))));
    case "site outside the device is QL043" (fun () ->
        let topology = Qmap.Topology.line 2 in
        let i = raw_inst 0 [ raw_gate Gate.Cnot [ 0; 5 ] ] [ 0; 5 ] 1. in
        check_bool "QL043" true
          (List.mem "QL043"
             (codes (Qlint.Check_mapping.check_adjacency ~topology [ i ]))));
    case "routing replay accepts the real router" (fun () ->
        let topology = Qmap.Topology.line 4 in
        let circuit =
          Circuit.make 4 [ Gate.cnot 0 3; Gate.cnot 1 2; Gate.cnot 0 1 ]
        in
        let initial = Qmap.Placement.initial topology circuit in
        let physical, final =
          Qmap.Router.route_circuit ~placement:initial ~topology circuit
        in
        check_int "clean replay" 0
          (List.length
             (Qlint.Check_mapping.check_routing ~topology ~initial ~final
                ~logical:(Circuit.gates circuit)
                ~physical:(Circuit.gates physical) ())));
    case "dropped swap fails the replay with QL042" (fun () ->
        let topology = Qmap.Topology.line 4 in
        let circuit = Circuit.make 4 [ Gate.cnot 0 3; Gate.cnot 0 1 ] in
        let initial = Qmap.Placement.initial topology circuit in
        let physical, final =
          Qmap.Router.route_circuit ~placement:initial ~topology circuit
        in
        let drop_first_swap gates =
          let rec go = function
            | [] -> []
            | (g : Gate.t) :: rest when g.Gate.kind = Gate.Swap -> rest
            | g :: rest -> g :: go rest
          in
          go gates
        in
        let doctored = drop_first_swap (Circuit.gates physical) in
        check_bool "swap was there to drop" true
          (List.length doctored < List.length (Circuit.gates physical));
        check_bool "QL042" true
          (List.mem "QL042"
             (codes
                (Qlint.Check_mapping.check_routing ~topology ~initial ~final
                   ~logical:(Circuit.gates circuit) ~physical:doctored ())))) ]

let agg_cases =
  [ case "width over the limit is QL050" (fun () ->
        let i =
          Inst.make ~id:0 ~latency:1. [ Gate.cnot 0 1; Gate.cnot 2 3 ]
        in
        let g = Gdg.of_insts ~n_qubits:4 [ i ] in
        check_bool "QL050" true
          (List.mem "QL050" (codes (Qlint.Check_agg.run ~width_limit:3 g))));
    case "support not the member union is QL051" (fun () ->
        let i = raw_inst 0 [ Gate.cnot 0 1 ] [ 0 ] 1. in
        let g = Gdg.of_insts ~n_qubits:2 [ i ] in
        check_bool "QL051" true
          (List.mem "QL051" (codes (Qlint.Check_agg.run ~width_limit:4 g))));
    case "legal blocks are clean" (fun () ->
        let g =
          Gdg.of_insts ~n_qubits:2
            [ Inst.make ~id:0 ~latency:1. [ Gate.cnot 0 1; Gate.rz 0.3 1 ] ]
        in
        check_int "none" 0
          (List.length (Qlint.Check_agg.run ~width_limit:2 g))) ]

let compiler_cases =
  [ case "check mode passes on a real benchmark" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let r =
          Qcc.Compiler.compile ~check:true
            ~strategy:Qcc.Strategy.Cls_aggregation circuit
        in
        check_int "no diagnostics" 0 (List.length r.Qcc.Compiler.diagnostics));
    case "check mode is off by default" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "sqrt-n3") in
        let r = Qcc.Compiler.compile ~strategy:Qcc.Strategy.Isa circuit in
        check_int "empty" 0 (List.length r.Qcc.Compiler.diagnostics)) ]

(* perturb a legal schedule onto a neighbor's busy interval and require
   the detector to name exactly that pair and qubit *)
let perturbation_prop seed =
  let rng = Qgraph.Rand.create seed in
  let n = 3 + Qgraph.Rand.int rng 3 in
  let gates = random_unitary_gates rng n 12 in
  let g = Gdg.of_circuit ~latency:(fun _ -> 1.) (Circuit.make n gates) in
  let s = Qsched.Asap.schedule g in
  if not (Schedule.no_qubit_overlap s) then false
  else begin
    (* pick a qubit with at least two entries and slide the second onto
       the first's interval *)
    let on_qubit q =
      List.filter
        (fun (e : Schedule.entry) -> Inst.acts_on e.Schedule.inst q)
        s.Schedule.entries
    in
    let rec pick q =
      if q >= n then None
      else
        match on_qubit q with
        | a :: b :: _ -> Some (q, a, b)
        | _ -> pick (q + 1)
    in
    match pick 0 with
    | None -> true (* nothing to corrupt on this draw *)
    | Some (q, a, b) ->
      let duration = b.Schedule.finish -. b.Schedule.start in
      let start = (a.Schedule.start +. a.Schedule.finish) /. 2. in
      let moved = { b with Schedule.start; finish = start +. duration } in
      let corrupted =
        Schedule.make ~n_qubits:s.Schedule.n_qubits
          (List.map
             (fun (e : Schedule.entry) ->
               if e.Schedule.inst.Inst.id = b.Schedule.inst.Inst.id then moved
               else e)
             s.Schedule.entries)
      in
      let expected =
        List.sort compare
          [ a.Schedule.inst.Inst.id; b.Schedule.inst.Inst.id ]
      in
      List.exists
        (fun (x, y, cq) ->
          cq = q
          && List.sort compare
               [ x.Schedule.inst.Inst.id; y.Schedule.inst.Inst.id ]
             = expected)
        (Schedule.conflicts corrupted)
      && List.exists
           (fun (d : D.t) ->
             d.D.code = "QL030" && d.D.loc.D.qubits = [ q ]
             && List.sort compare d.D.loc.D.insts = expected)
           (Qlint.Check_schedule.run corrupted)
  end

let property_cases =
  [ qcheck ~count:60 "perturbed schedules are pinpointed"
      QCheck.(int_range 0 100_000)
      perturbation_prop ]

let suites =
  [ ("qlint.diagnostic", diagnostic_cases);
    ("qlint.circuit", circuit_cases);
    ("qlint.gdg", gdg_cases);
    ("qlint.schedule", schedule_cases);
    ("qlint.mapping", mapping_cases);
    ("qlint.agg", agg_cases);
    ("qlint.compiler", compiler_cases);
    ("qlint.property", property_cases) ]
