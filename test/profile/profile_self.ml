(* profile-self: the observability layer must profile the compiler clean.

   Compiles two small benchmarks with tracing and metrics enabled, writes
   the Chrome trace_event and metrics JSON files, re-parses both with the
   qobs JSON parser, and validates their structure: every expected pass
   span present exactly once, trace events carry the required fields, and
   the metrics registry holds at least eight distinct series. Runs under
   `dune runtest`; any regression in the emitted JSON fails the build. *)

module Json = Qobs.Json

let benchmarks = [ "maxcut-line"; "uccsd-n4" ]
let strategy = Qcc.Strategy.Cls_aggregation
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "profile-self FAILED: %s\n" msg)
    fmt

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Json.of_string (String.trim contents) with
  | Ok doc -> Some doc
  | Error e ->
    fail "%s does not parse: %s" path e;
    None

let check_trace_file label path expected_passes =
  match parse_file path with
  | None -> ()
  | Some doc ->
    (match Json.member "traceEvents" doc with
     | Some (Json.List events) ->
       let complete =
         List.filter (fun e -> Json.member "ph" e = Some (Json.Str "X")) events
       in
       if complete = [] then fail "%s: no complete events" label;
       List.iter
         (fun e ->
           List.iter
             (fun field ->
               if Json.member field e = None then
                 fail "%s: event missing %S" label field)
             [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
         complete;
       let count name =
         List.length
           (List.filter
              (fun e -> Json.member "name" e = Some (Json.Str name))
              complete)
       in
       List.iter
         (fun pass ->
           let n = count pass in
           if n <> 1 then fail "%s: pass %S appears %d times" label pass n)
         ("compile" :: expected_passes)
     | _ -> fail "%s: traceEvents missing" label)

let check_metrics_file label path =
  match parse_file path with
  | None -> ()
  | Some (Json.Obj fields) ->
    if List.length fields < 8 then
      fail "%s: only %d metrics (need >= 8): %s" label (List.length fields)
        (String.concat ", " (List.map fst fields))
  | Some _ -> fail "%s: metrics file is not an object" label

let () =
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      let obs = Qobs.Trace.create () in
      let metrics = Qobs.Metrics.create () in
      let r = Qcc.Compiler.compile ~obs ~metrics ~strategy circuit in
      let label =
        Printf.sprintf "%s / %s" name (Qcc.Strategy.to_string strategy)
      in
      let trace_path = Printf.sprintf "profile_self_%s_trace.json" name in
      let metrics_path = Printf.sprintf "profile_self_%s_metrics.json" name in
      Qobs.Trace.write_chrome_file trace_path obs;
      Qobs.Metrics.write_file metrics_path metrics;
      (match r.Qcc.Compiler.trace with
       | None -> fail "%s: traced compile returned no trace" label
       | Some _ -> ());
      check_trace_file label trace_path (Qcc.Compiler.passes strategy);
      check_metrics_file label metrics_path;
      Sys.remove trace_path;
      Sys.remove metrics_path;
      if !failures = 0 then Printf.printf "profile-self %-28s ok\n" label)
    benchmarks;
  if !failures > 0 then exit 1
