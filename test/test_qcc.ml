(* tests for the frontend, hand optimization and end-to-end compilation *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy

let frontend_cases =
  [ case "flatten loop unrolling" (fun () ->
        let p =
          Qfront.Program.make ~n_qubits:1 ~modules:[]
            [ Qfront.Program.Repeat (3, [ Qfront.Program.Apply (Gate.x 0) ]) ]
        in
        check_int "three x" 3 (Circuit.n_gates (Qfront.Lower.flatten p)));
    case "flatten module call with remap" (fun () ->
        let bell =
          { Qfront.Program.name = "bell";
            arity = 2;
            body =
              [ Qfront.Program.Apply (Gate.h 0); Qfront.Program.Apply (Gate.cnot 0 1) ] }
        in
        let p =
          Qfront.Program.make ~n_qubits:4 ~modules:[ bell ]
            [ Qfront.Program.Call ("bell", [ 2; 3 ]) ]
        in
        let c = Qfront.Lower.flatten p in
        check_bool "remapped" true
          (Circuit.gates c = [ Gate.h 2; Gate.cnot 2 3 ]));
    case "nested modules" (fun () ->
        let inner =
          { Qfront.Program.name = "inner"; arity = 1;
            body = [ Qfront.Program.Apply (Gate.x 0) ] }
        in
        let outer =
          { Qfront.Program.name = "outer"; arity = 2;
            body =
              [ Qfront.Program.Call ("inner", [ 1 ]);
                Qfront.Program.Apply (Gate.cnot 0 1) ] }
        in
        let p =
          Qfront.Program.make ~n_qubits:3 ~modules:[ inner; outer ]
            [ Qfront.Program.Call ("outer", [ 0; 2 ]) ]
        in
        check_bool "flattened" true
          (Circuit.gates (Qfront.Lower.flatten p) = [ Gate.x 2; Gate.cnot 0 2 ]));
    case "unknown module raises" (fun () ->
        let p =
          Qfront.Program.make ~n_qubits:1 ~modules:[]
            [ Qfront.Program.Call ("ghost", [ 0 ]) ]
        in
        check_bool "raises" true
          (try ignore (Qfront.Lower.flatten p); false
           with Qfront.Lower.Lowering_error _ -> true));
    case "arity mismatch raises" (fun () ->
        let m =
          { Qfront.Program.name = "m"; arity = 2;
            body = [ Qfront.Program.Apply (Gate.cnot 0 1) ] }
        in
        let p =
          Qfront.Program.make ~n_qubits:2 ~modules:[ m ]
            [ Qfront.Program.Call ("m", [ 0 ]) ]
        in
        check_bool "raises" true
          (try ignore (Qfront.Lower.flatten p); false
           with Qfront.Lower.Lowering_error _ -> true));
    case "recursion guard" (fun () ->
        let m =
          { Qfront.Program.name = "loop"; arity = 1;
            body = [ Qfront.Program.Call ("loop", [ 0 ]) ] }
        in
        let p =
          Qfront.Program.make ~n_qubits:1 ~modules:[ m ]
            [ Qfront.Program.Call ("loop", [ 0 ]) ]
        in
        check_bool "raises" true
          (try ignore (Qfront.Lower.flatten p); false
           with Qfront.Lower.Lowering_error _ -> true)) ]

let handopt_semantics original =
  let optimized = Qcc.Handopt.optimize original in
  Circuit.equal_semantics ~eps:1e-8 original optimized

let handopt_cases =
  [ case "cancels adjacent cnots" (fun () ->
        let c = Circuit.make 2 [ Gate.cnot 0 1; Gate.cnot 0 1 ] in
        check_int "empty" 0 (Circuit.n_gates (Qcc.Handopt.optimize c)));
    case "cancels h pairs across other qubits" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.x 1; Gate.h 0 ] in
        check_int "one x left" 1 (Circuit.n_gates (Qcc.Handopt.optimize c)));
    case "does not cancel across blockers" (fun () ->
        let c = Circuit.make 1 [ Gate.h 0; Gate.x 0; Gate.h 0 ] in
        check_int "kept" 3 (Circuit.n_gates (Qcc.Handopt.optimize c)));
    case "merges rotations" (fun () ->
        let c = Circuit.make 1 [ Gate.rz 0.3 0; Gate.rz 0.4 0 ] in
        match Circuit.gates (Qcc.Handopt.optimize c) with
        | [ { Gate.kind = Gate.Rz a; _ } ] -> check_float ~eps:1e-12 "sum" 0.7 a
        | _ -> Alcotest.fail "expected one rz");
    case "drops zero rotations" (fun () ->
        let c = Circuit.make 1 [ Gate.rx 0.5 0; Gate.rx (-0.5) 0 ] in
        check_int "empty" 0 (Circuit.n_gates (Qcc.Handopt.optimize c)));
    case "fuses cnot-rz-cnot" (fun () ->
        let c = Circuit.make 2 [ Gate.cnot 0 1; Gate.rz 0.9 1; Gate.cnot 0 1 ] in
        match Circuit.gates (Qcc.Handopt.optimize c) with
        | [ { Gate.kind = Gate.Rzz a; _ } ] -> check_float ~eps:1e-12 "angle" 0.9 a
        | gs -> Alcotest.failf "expected one rzz, got %d gates" (List.length gs));
    case "fusion blocked by control interference" (fun () ->
        let c =
          Circuit.make 3
            [ Gate.cnot 0 1; Gate.cnot 2 0; Gate.rz 0.9 1; Gate.cnot 0 1 ]
        in
        (* the cnot(2,0) interposes on the control: no fusion *)
        check_bool "no rzz" true
          (List.for_all
             (fun g -> match g.Gate.kind with Gate.Rzz _ -> false | _ -> true)
             (Circuit.gates (Qcc.Handopt.optimize c))));
    case "fuse count on qaoa" (fun () ->
        let c = Qapps.Qaoa.triangle_example () in
        check_int "three fusions" 3 (Qcc.Handopt.fuse_count c));
    case "merges fused rzz with neighbors" (fun () ->
        let c =
          Circuit.make 2
            [ Gate.cnot 0 1; Gate.rz 0.5 1; Gate.cnot 0 1; Gate.cnot 0 1;
              Gate.rz 0.25 1; Gate.cnot 0 1 ]
        in
        match Circuit.gates (Qcc.Handopt.optimize c) with
        | [ { Gate.kind = Gate.Rzz a; _ } ] -> check_float ~eps:1e-12 "merged" 0.75 a
        | gs -> Alcotest.failf "expected one rzz, got %d" (List.length gs));
    qcheck ~count:20 "handopt preserves semantics" QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 20 in
        handopt_semantics (Circuit.make 3 gates));
    case "handopt preserves qaoa semantics" (fun () ->
        check_bool "triangle" true (handopt_semantics (Qapps.Qaoa.triangle_example ()))) ]

let line3 =
  { Compiler.default_config with Compiler.topology = Some (Qmap.Topology.line 3) }

let compiler_cases =
  [ case "all strategies beat or match nothing-worse-than-2x" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        let results = Compiler.compile_all ~config:line3 circuit in
        let isa = List.assoc Strategy.Isa results in
        List.iter
          (fun (s, r) ->
            check_bool
              (Printf.sprintf "%s sane" (Strategy.to_string s))
              true
              (r.Compiler.latency > 0.
               && r.Compiler.latency < 1.2 *. isa.Compiler.latency))
          results);
    case "cls+aggregation wins on the triangle" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        let results = Compiler.compile_all ~config:line3 circuit in
        let isa = List.assoc Strategy.Isa results in
        let agg = List.assoc Strategy.Cls_aggregation results in
        let speedup = Compiler.speedup ~baseline:isa agg in
        (* paper: 2.97x on this example *)
        check_bool "between 2x and 4.5x" true (speedup > 2.0 && speedup < 4.5));
    case "schedules respect the topology" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        List.iter
          (fun strategy ->
            let r = Compiler.compile ~config:line3 ~strategy circuit in
            List.iter
              (fun block ->
                List.iter
                  (fun g ->
                    match Gate.qubits g with
                    | [ a; b ] ->
                      check_bool "adjacent sites" true
                        (Qmap.Topology.connected (Qmap.Topology.line 3) a b)
                    | _ -> ())
                  block)
              (Compiler.blocks r))
          Strategy.all);
    case "schedules have no qubit overlap" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        List.iter
          (fun strategy ->
            let r = Compiler.compile ~config:line3 ~strategy circuit in
            check_bool
              (Strategy.to_string strategy)
              true
              (Qsched.Schedule.no_qubit_overlap r.Compiler.schedule))
          Strategy.all);
    case "width limit respected end to end" (fun () ->
        let circuit = Qapps.Qaoa.circuit (Qapps.Graphs.line 6) in
        let config = { Compiler.default_config with Compiler.width_limit = 3 } in
        let r = Compiler.compile ~config ~strategy:Strategy.Cls_aggregation circuit in
        List.iter
          (fun block ->
            let support =
              List.sort_uniq compare (List.concat_map Gate.qubits block)
            in
            check_bool "width <= 3" true (List.length support <= 3))
          (Compiler.blocks r));
    case "aggregation latency sane on small ising" (fun () ->
        let circuit = Qapps.Ising.circuit ~steps:1 6 in
        let results = Compiler.compile_all circuit in
        let isa = List.assoc Strategy.Isa results in
        let agg = List.assoc Strategy.Cls_aggregation results in
        check_bool "strictly better" true (agg.Compiler.latency < isa.Compiler.latency));
    case "semantic equivalence of compiled blocks up to placement" (fun () ->
        (* U_sites . P_initial = P_final . U_logical *)
        let circuit = Qapps.Qaoa.triangle_example () in
        List.iter
          (fun topology ->
            let config =
              { Compiler.default_config with Compiler.topology = Some topology }
            in
            let n = Qmap.Topology.n_sites topology in
            List.iter
              (fun strategy ->
                let r = Compiler.compile ~config ~strategy circuit in
                let gates = List.concat (Compiler.blocks r) in
                let u_sites = Circuit.unitary (Circuit.make n gates) in
                let u_logical =
                  Circuit.unitary
                    (Circuit.make n (Circuit.gates circuit))
                in
                let p_init =
                  Qmap.Placement.permutation_unitary ~n_qubits:n
                    r.Compiler.initial_placement
                in
                let p_final =
                  Qmap.Placement.permutation_unitary ~n_qubits:n
                    r.Compiler.final_placement
                in
                check_mat_phase ~eps:1e-8
                  (Strategy.to_string strategy)
                  (Qnum.Cmat.mul p_final u_logical)
                  (Qnum.Cmat.mul u_sites p_init))
              [ Strategy.Isa; Strategy.Cls; Strategy.Aggregation;
                Strategy.Cls_aggregation ])
          [ Qmap.Topology.full 3; Qmap.Topology.line 3 ]);
    case "strategy string roundtrip" (fun () ->
        List.iter
          (fun s ->
            check_bool "roundtrip" true
              (Strategy.of_string (Strategy.to_string s) = s))
          Strategy.all;
        List.iter
          (fun (alias, s) ->
            check_bool ("alias " ^ alias) true (Strategy.of_string alias = s))
          Strategy.aliases;
        Alcotest.check_raises "unknown raises"
          (Invalid_argument
             "Strategy.of_string: unknown \"warp\" (expected isa | cls | \
              aggregation | cls+aggregation | cls+hand)") (fun () ->
            ignore (Strategy.of_string "warp")));
    case "report geomean" (fun () ->
        check_float ~eps:1e-9 "geomean" 2. (Qcc.Report.geometric_mean [ 1.; 4. ]);
        Alcotest.check_raises "empty raises"
          (Invalid_argument "Report.geometric_mean: empty") (fun () ->
            ignore (Qcc.Report.geometric_mean []))) ]

let integration_cases =
  [ slow_case "uccsd-n4 pipeline matches paper ordering" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "uccsd-n4") in
        let results = Compiler.compile_all circuit in
        let latency s = (List.assoc s results).Compiler.latency in
        (* paper ordering: cls+agg < hand < cls <= isa for serial encodings *)
        check_bool "agg beats hand" true
          (latency Strategy.Cls_aggregation < latency Strategy.Cls_hand);
        check_bool "hand beats cls" true
          (latency Strategy.Cls_hand < latency Strategy.Cls);
        check_bool "cls no worse than isa (within 5%)" true
          (latency Strategy.Cls <= 1.05 *. latency Strategy.Isa));
    slow_case "verification passes on compiled uccsd-n4" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "uccsd-n4") in
        let r = Compiler.compile ~strategy:Strategy.Cls_aggregation circuit in
        let rng = Qgraph.Rand.create 11 in
        let report =
          Qsim.Verify.verify_sampled ~samples:6 ~max_pulse_width:0 rng
            Qcontrol.Device.default (Compiler.blocks r)
        in
        check_int "all pass" report.Qsim.Verify.n_checked report.Qsim.Verify.n_passed);
    slow_case "qaoa end to end solves maxcut" (fun () ->
        (* compile a QAOA ring, run the aggregated blocks through the
           simulator and check the cut expectation is preserved *)
        let graph = Qgraph.Graph.of_edges 5 (List.init 5 (fun k -> (k, (k + 1) mod 5))) in
        let circuit = Qapps.Qaoa.circuit ~gamma:0.4 ~beta:1.2 graph in
        let config =
          { Compiler.default_config with
            Compiler.topology = Some (Qmap.Topology.full 5) }
        in
        let r = Compiler.compile ~config ~strategy:Strategy.Cls_aggregation circuit in
        let compiled = Circuit.make 5 (List.concat (Compiler.blocks r)) in
        let st c = Qsim.State.apply_circuit (Qsim.State.zero 5) c in
        (* measure the compiled state against the graph relabelled onto
           the final sites of each logical vertex *)
        let site_graph =
          Qgraph.Graph.of_edges 5
            (List.map
               (fun (u, v, _) ->
                 ( Qmap.Placement.site_of r.Compiler.final_placement u,
                   Qmap.Placement.site_of r.Compiler.final_placement v ))
               (Qgraph.Graph.edges graph))
        in
        let e_orig = Qapps.Qaoa.cut_expectation graph (Qsim.State.probability (st circuit)) in
        let e_comp =
          Qapps.Qaoa.cut_expectation site_graph (Qsim.State.probability (st compiled))
        in
        check_float ~eps:1e-6 "same expectation" e_orig e_comp;
        check_bool "beats random" true (e_comp > 2.5)) ]

let suites =
  [ ("qfront.lower", frontend_cases);
    ("qcc.handopt", handopt_cases);
    ("qcc.compiler", compiler_cases);
    ("qcc.integration", integration_cases) ]
