(* tests for the Qflow abstract-interpretation engine and the semantic /
   aggregation-opportunity lints it powers (QL06x / QL07x), plus the
   diagnostic registry, report determinism and SARIF output *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg
module A = Qflow.Absval
module T = Qflow.Transfer
module D = Qlint.Diagnostic

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags

let count_code c diags =
  List.length (List.filter (fun (d : D.t) -> d.D.code = c) diags)

(* ---------- lattice laws ---------- *)

let lattice_cases =
  [ case "chain order: rank is monotone and leq total on the chain" (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check_bool
                  (Printf.sprintf "leq %s %s" (A.to_string a) (A.to_string b))
                  (A.rank a <= A.rank b) (A.leq a b))
              A.all)
          A.all);
    case "join is least upper bound" (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let j = A.join a b in
                check_bool "upper a" true (A.leq a j);
                check_bool "upper b" true (A.leq b j);
                check_bool "commutes" true (A.equal j (A.join b a));
                (* least: any other upper bound dominates the join *)
                List.iter
                  (fun u ->
                    if A.leq a u && A.leq b u then
                      check_bool "least" true (A.leq j u))
                  A.all)
              A.all)
          A.all);
    case "bottom and top bracket the chain" (fun () ->
        List.iter
          (fun v ->
            check_bool "bottom leq" true (A.leq A.bottom v);
            check_bool "leq top" true (A.leq v A.top))
          A.all);
    case "to_string / of_string round-trip" (fun () ->
        List.iter
          (fun v ->
            match A.of_string (A.to_string v) with
            | Some v' -> check_bool (A.to_string v) true (A.equal v v')
            | None -> Alcotest.failf "of_string failed on %s" (A.to_string v))
          A.all) ]

(* ---------- transfer functions ---------- *)

let st n = Array.make n A.Zero

let transfer_cases =
  [ case "x promotes Zero to Basis, h to Stabilizer, t to Diag" (fun () ->
        let s = st 1 in
        T.apply s (Gate.x 0);
        check_bool "x" true (A.equal s.(0) A.Basis);
        T.apply s (Gate.h 0);
        check_bool "h" true (A.equal s.(0) A.Stabilizer);
        T.apply s (Gate.t 0);
        check_bool "t" true (A.equal s.(0) A.Diag));
    case "clifford diagonal keeps Stabilizer, rz leaves Basis alone" (fun () ->
        let s = st 1 in
        T.apply s (Gate.h 0);
        T.apply s (Gate.s 0);
        check_bool "s on stab" true (A.equal s.(0) A.Stabilizer);
        let s = st 1 in
        T.apply s (Gate.x 0);
        T.apply s (Gate.rz 0.3 0);
        check_bool "rz on basis" true (A.equal s.(0) A.Basis));
    case "entangling gates send both qubits to Top" (fun () ->
        let s = st 2 in
        T.apply s (Gate.h 0);
        T.apply s (Gate.cnot 0 1);
        check_bool "control" true (A.equal s.(0) A.Top);
        check_bool "target" true (A.equal s.(1) A.Top));
    case "cnot with definite control stays a product state" (fun () ->
        let s = st 2 in
        T.apply s (Gate.x 0);
        T.apply s (Gate.h 1);
        T.apply s (Gate.cnot 0 1);
        check_bool "control kept" true (A.equal s.(0) A.Basis);
        check_bool "target in class" true (A.equal s.(1) A.Stabilizer));
    case "deadness: zero-controlled and full-turn gates" (fun () ->
        let s = st 2 in
        check_bool "cnot zero control" true (T.dead s (Gate.cnot 0 1));
        check_bool "cz zero side" true (T.dead s (Gate.cz 0 1));
        check_bool "swap on zeros" true (T.dead s (Gate.swap 0 1));
        check_bool "rz full turn" true
          (T.dead s (Gate.rz (2. *. Float.pi) 0));
        check_bool "z on zero" true (T.dead s (Gate.z 0));
        check_bool "h not dead" false (T.dead s (Gate.h 0));
        check_bool "x not dead" false (T.dead s (Gate.x 0)));
    case "rzz with one Zero qubit is NOT dead" (fun () ->
        (* Rzz(θ) on |0⟩⊗ψ applies Rz(-ish) phases to ψ — a relative
           phase, not a global one *)
        let s = st 2 in
        T.apply s (Gate.h 1);
        check_bool "not dead" false (T.dead s (Gate.rzz 0.7 0 1));
        (* but with BOTH qubits ⊑ Basis it only contributes a global
           phase *)
        let s = st 2 in
        T.apply s (Gate.x 1);
        check_bool "dead on basis pair" true (T.dead s (Gate.rzz 0.7 0 1)));
    case "dead gates are exactly identity up to global phase" (fun () ->
        (* concrete spot-check of the soundness claim: prefix then a
           dead gate; statevector unchanged up to phase *)
        let prefix = [ Gate.x 0; Gate.h 1 ] in
        let s = st 3 in
        List.iter (T.apply s) prefix;
        let g = Gate.cnot 2 1 in
        check_bool "dead" true (T.dead s g);
        let sv gs =
          Qsim.State.of_vec 3
            (Qnum.Vec.of_array (Qgate.Unitary.state_of_gates ~n_qubits:3 gs))
        in
        let fid = Qsim.State.fidelity (sv (prefix @ [ g ])) (sv prefix) in
        check_float ~eps:1e-9 "fidelity" 1.0 fid) ]

(* ---------- analysis drivers ---------- *)

let analysis_cases =
  [ case "circuit analysis finds dead zero-controlled prefix gates" (fun () ->
        let c = Circuit.make 2 [ Gate.cnot 0 1; Gate.h 0; Gate.cnot 0 1 ] in
        let r = Qflow.Analysis.circuit c in
        (match r.Qflow.Analysis.dead with
         | [ (0, _) ] -> ()
         | l -> Alcotest.failf "expected gate 0 dead, got %d" (List.length l));
        check_bool "q0 top" true (A.equal r.Qflow.Analysis.final.(0) A.Top));
    case "gdg analysis agrees with circuit analysis on singletons" (fun () ->
        let gates = [ Gate.h 0; Gate.cnot 0 1; Gate.t 2; Gate.x 2 ] in
        let c = Circuit.make 3 gates in
        let cr = Qflow.Analysis.circuit c in
        let g = Gdg.of_circuit ~latency:(fun _ -> 10.) c in
        let gr = Qflow.Analysis.gdg g in
        Array.iteri
          (fun q v ->
            check_bool
              (Printf.sprintf "q%d" q)
              true
              (A.equal v gr.Qflow.Analysis.final.(q)))
          cr.Qflow.Analysis.final;
        check_int "steps = insts on a DAG" (List.length gates)
          gr.Qflow.Analysis.steps);
    case "gdg analysis flags dead members inside blocks" (fun () ->
        let insts =
          [ Inst.make ~id:0 ~latency:10. [ Gate.x 0 ];
            Inst.make ~id:1 ~latency:20. [ Gate.cnot 1 0; Gate.h 1 ] ]
        in
        let g = Gdg.of_insts ~n_qubits:2 insts in
        let r = Qflow.Analysis.gdg g in
        let info =
          List.find
            (fun (i : Qflow.Analysis.inst_info) -> i.Qflow.Analysis.inst_id = 1)
            r.Qflow.Analysis.insts
        in
        (* q1 is still Zero when inst 1 runs, so its cnot is dead *)
        check_bool "member 0 dead" true
          (List.mem 0 info.Qflow.Analysis.dead_members)) ]

(* ---------- summaries ---------- *)

let summary_cases =
  [ case "klass classification by cheapest domain" (fun () ->
        let k gs = (Qflow.Summary.of_gates gs).Qflow.Summary.klass in
        check_bool "identity" true (k [ Gate.h 0; Gate.h 0 ] = Qflow.Summary.Identity);
        check_bool "diagonal" true (k [ Gate.t 0; Gate.cz 0 1 ] = Qflow.Summary.Diagonal);
        check_bool "clifford" true (k [ Gate.h 0; Gate.cnot 0 1 ] = Qflow.Summary.Clifford);
        check_bool "phase-linear" true
          (k [ Gate.cnot 0 1; Gate.t 1 ] = Qflow.Summary.Phase_linear);
        check_bool "general" true (k [ Gate.rx 0.3 0 ] = Qflow.Summary.General));
    case "summaries are content-addressed across qubit relabelings" (fun () ->
        Qflow.Summary.reset_memo ();
        let m = Qobs.Metrics.create () in
        Qobs.Metrics.with_ambient m (fun () ->
            let template q r = [ Gate.h q; Gate.cnot q r; Gate.t r ] in
            ignore (Qflow.Summary.of_gates (template 0 1));
            ignore (Qflow.Summary.of_gates (template 4 7));
            ignore (Qflow.Summary.of_gates (template 2 3)));
        check_int "one miss" 1 (Qobs.Metrics.counter_value m "qflow.summary.miss");
        check_int "two hits" 2 (Qobs.Metrics.counter_value m "qflow.summary.hit");
        let s1 = Qflow.Summary.of_gates [ Gate.h 0; Gate.cnot 0 1; Gate.t 1 ]
        and s2 = Qflow.Summary.of_gates [ Gate.h 4; Gate.cnot 4 7; Gate.t 7 ] in
        Alcotest.(check string) "same digest" s1.Qflow.Summary.digest
          s2.Qflow.Summary.digest;
        check_bool "different support" false
          (s1.Qflow.Summary.support = s2.Qflow.Summary.support));
    case "commutes: disjoint, diagonal pairs, and anti-commuting paulis"
      (fun () ->
        let s gs = Qflow.Summary.of_gates gs in
        let a = [ Gate.h 0 ] and b = [ Gate.h 5 ] in
        check_bool "disjoint" true
          (Qflow.Summary.commutes ~a ~b (s a) (s b) = Some true);
        let a = [ Gate.t 0; Gate.rzz 0.4 0 1 ] and b = [ Gate.cz 1 2 ] in
        check_bool "diagonal x diagonal" true
          (Qflow.Summary.commutes ~a ~b (s a) (s b) = Some true);
        let a = [ Gate.z 0 ] and b = [ Gate.x 0 ] in
        check_bool "z vs x" true
          (Qflow.Summary.commutes ~a ~b (s a) (s b) = Some false);
        let a = [ Gate.z 0 ] and b = [ Gate.cnot 0 1 ] in
        check_bool "z vs control of cnot" true
          (Qflow.Summary.commutes ~a ~b (s a) (s b) = Some true);
        let a = [ Gate.z 0 ] and b = [ Gate.cnot 1 0 ] in
        check_bool "z vs target of cnot" true
          (Qflow.Summary.commutes ~a ~b (s a) (s b) = Some false)) ]

(* ---------- QL06x / QL07x lints: seeded witnesses per code ---------- *)

let probabilities_of gates n =
  let s =
    List.fold_left Qsim.State.apply_gate (Qsim.State.zero n) gates
  in
  Qsim.State.probabilities s

let semantic_cases =
  [ case "QL060 witness: zero-controlled cnot" (fun () ->
        let c = Circuit.make 2 [ Gate.cnot 0 1 ] in
        let ds = Qlint.Check_semantic.run c in
        check_int "one QL060" 1 (count_code "QL060" ds));
    case "QL061 witness: adjacent x;x pair, reported once" (fun () ->
        let c = Circuit.make 1 [ Gate.x 0; Gate.x 0 ] in
        let ds = Qlint.Check_semantic.run c in
        check_int "one QL061" 1 (count_code "QL061" ds);
        check_int "no QL060" 0 (count_code "QL060" ds));
    case "QL060/QL061 mutual exclusion: dead pair reports dead only"
      (fun () ->
        (* both cnots are zero-controlled, hence dead — not a pair *)
        let c = Circuit.make 2 [ Gate.cnot 0 1; Gate.cnot 0 1 ] in
        let ds = Qlint.Check_semantic.run c in
        check_int "two QL060" 2 (count_code "QL060" ds);
        check_int "no QL061" 0 (count_code "QL061" ds));
    case "QL062 witness: trailing t preserves all probabilities" (fun () ->
        let gates = [ Gate.h 0; Gate.cnot 0 1; Gate.t 1 ] in
        let c = Circuit.make 2 gates in
        let ds = Qlint.Check_semantic.run c in
        check_int "one QL062" 1 (count_code "QL062" ds);
        let with_t = probabilities_of gates 2
        and without = probabilities_of [ Gate.h 0; Gate.cnot 0 1 ] 2 in
        Array.iteri
          (fun k p -> check_float ~eps:1e-9 (string_of_int k) p without.(k))
          with_t);
    case "QL063 witness: dirtied ancilla flagged, clean one not" (fun () ->
        let dirty = Circuit.make 2 [ Gate.x 1 ] in
        check_int "flagged" 1
          (count_code "QL063" (Qlint.Check_semantic.run ~ancillas:[ 1 ] dirty));
        let clean = Circuit.make 2 [ Gate.h 0 ] in
        check_int "clean" 0
          (count_code "QL063" (Qlint.Check_semantic.run ~ancillas:[ 1 ] clean));
        check_int "undeclared never fires" 0
          (count_code "QL063" (Qlint.Check_semantic.run dirty)));
    case "QL070 witness: adjacent diagonal singletons" (fun () ->
        let g =
          Gdg.of_insts ~n_qubits:1
            [ Inst.make ~id:0 ~latency:10. [ Gate.t 0 ];
              Inst.make ~id:1 ~latency:10. [ Gate.s 0 ] ]
        in
        let ds = Qlint.Check_aggop.run ~width_limit:4 g in
        check_int "one QL070" 1 (count_code "QL070" ds));
    case "QL070 silent on non-commuting neighbors" (fun () ->
        let g =
          Gdg.of_insts ~n_qubits:1
            [ Inst.make ~id:0 ~latency:10. [ Gate.z 0 ];
              Inst.make ~id:1 ~latency:10. [ Gate.x 0 ] ]
        in
        check_int "none" 0
          (count_code "QL070" (Qlint.Check_aggop.run ~width_limit:4 g)));
    case "QL071 witness: serially-costed diagonal aggregate" (fun () ->
        let cost _ = 25. in
        let block = [ Gate.rz 0.3 0; Gate.rz 0.4 1 ] in
        let serial = Gdg.of_insts ~n_qubits:2
            [ Inst.make ~id:0 ~latency:50. block ]
        and packed = Gdg.of_insts ~n_qubits:2
            [ Inst.make ~id:0 ~latency:25. block ]
        in
        check_int "serial flagged" 1
          (count_code "QL071"
             (Qlint.Check_aggop.run ~gate_time:cost ~width_limit:4 serial));
        check_int "packed clean" 0
          (count_code "QL071"
             (Qlint.Check_aggop.run ~gate_time:cost ~width_limit:4 packed));
        check_int "skipped without a cost model" 0
          (count_code "QL071" (Qlint.Check_aggop.run ~width_limit:4 serial))) ]

(* ---------- the dead-gate-removal property ---------- *)

(* random circuits biased toward zero-controlled / diagonal-on-basis
   structure so QL060 fires often; ≤ 6 qubits keeps the dense check
   cheap *)
let random_lintable_gates rng n depth =
  let gates = ref [] in
  for _ = 1 to depth do
    let q = Qgraph.Rand.int rng n in
    let r = (q + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
    let angle = Qgraph.Rand.float rng (4. *. Float.pi) in
    let g =
      match Qgraph.Rand.int rng 10 with
      | 0 -> Gate.h q
      | 1 -> Gate.x q
      | 2 -> Gate.z q
      | 3 -> Gate.t q
      | 4 -> Gate.rz angle q
      | 5 | 6 -> Gate.cnot q r
      | 7 -> Gate.cz q r
      | 8 -> Gate.rzz angle q r
      | _ -> Gate.swap q r
    in
    gates := g :: !gates
  done;
  List.rev !gates

let property_cases =
  [ qcheck ~count:60 "removing QL060-dead gates preserves the statevector"
      QCheck.(pair (int_range 2 6) (int_bound 0xFFFFFF))
      (fun (n, seed) ->
        let rng = Qgraph.Rand.create (seed + 1) in
        let gates = random_lintable_gates rng n 25 in
        let r = Qflow.Analysis.gates ~n_qubits:n gates in
        let dead = Hashtbl.create 8 in
        List.iter
          (fun (k, _) -> Hashtbl.replace dead k ())
          r.Qflow.Analysis.dead;
        let kept =
          List.filteri (fun i _ -> not (Hashtbl.mem dead i)) gates
        in
        let sv gs =
          Qsim.State.of_vec n
            (Qnum.Vec.of_array (Qgate.Unitary.state_of_gates ~n_qubits:n gs))
        in
        let fid = Qsim.State.fidelity (sv gates) (sv kept) in
        fid > 1. -. 1e-9);
    qcheck ~count:40 "dropping QL062 trailing-diagonal gates preserves output \
                      probabilities"
      QCheck.(pair (int_range 2 5) (int_bound 0xFFFFFF))
      (fun (n, seed) ->
        let rng = Qgraph.Rand.create (seed + 7) in
        let gates = random_lintable_gates rng n 20 in
        let ds = Qlint.Check_semantic.run (Circuit.make n gates) in
        let drop = Hashtbl.create 8 in
        List.iter
          (fun (d : D.t) ->
            if d.D.code = "QL062" then
              match d.D.loc.D.gate_index with
              | Some k -> Hashtbl.replace drop k ()
              | None -> ())
          ds;
        let kept = List.filteri (fun i _ -> not (Hashtbl.mem drop i)) gates in
        let p_all = probabilities_of gates n
        and p_kept = probabilities_of kept n in
        Array.for_all
          (fun ok -> ok)
          (Array.mapi (fun k p -> Float.abs (p -. p_kept.(k)) < 1e-9) p_all)) ]

(* ---------- registry / docs ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mli_of_family = function
  | "circuit" -> "check_circuit.mli"
  | "gdg" -> "check_gdg.mli"
  | "schedule" -> "check_schedule.mli"
  | "mapping" -> "check_mapping.mli"
  | "aggregation" -> "check_agg.mli"
  | "semantic" -> "check_semantic.mli"
  | "aggop" -> "check_aggop.mli"
  | "pipeline" -> "check_pipeline.mli"
  (* DS0xx is emitted by tools/domlint, not a qlint checker; the codes
     are documented where they are registered *)
  | "domain-safety" -> "registry.mli"
  | f -> Alcotest.failf "unknown family %s" f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let registry_cases =
  [ case "codes are unique and sorted" (fun () ->
        let cs =
          List.map (fun (e : Qlint.Registry.entry) -> e.Qlint.Registry.code)
            Qlint.Registry.all
        in
        check_bool "sorted" true (List.sort compare cs = cs);
        check_int "unique" (List.length cs)
          (List.length (List.sort_uniq compare cs)));
    case "every code explains and belongs to a titled family" (fun () ->
        List.iter
          (fun (e : Qlint.Registry.entry) ->
            (match Qlint.Registry.explain e.Qlint.Registry.code with
             | Some _ -> ()
             | None -> Alcotest.failf "no explain for %s" e.Qlint.Registry.code);
            ignore (Qlint.Registry.family_title e.Qlint.Registry.family))
          Qlint.Registry.all;
        check_bool "unknown rejected" true (Qlint.Registry.find "QL999" = None));
    case "every code is documented in its family's .mli" (fun () ->
        List.iter
          (fun (e : Qlint.Registry.entry) ->
            let doc =
              read_file
                (Filename.concat "../lib/qlint"
                   (mli_of_family e.Qlint.Registry.family))
            in
            check_bool e.Qlint.Registry.code true
              (contains ~needle:e.Qlint.Registry.code doc))
          Qlint.Registry.all);
    case "README glossary block is registry-derived" (fun () ->
        let readme = read_file "../README.md" in
        let begin_mark = "<!-- ql-glossary:begin -->\n"
        and end_mark = "<!-- ql-glossary:end -->" in
        let rec find_from i needle =
          if i + String.length needle > String.length readme then
            Alcotest.failf "README marker %s missing" needle
          else if String.sub readme i (String.length needle) = needle then i
          else find_from (i + 1) needle
        in
        let b = find_from 0 begin_mark + String.length begin_mark in
        let e = find_from b end_mark in
        Alcotest.(check string) "glossary in sync"
          (Qlint.Registry.markdown_glossary ())
          (String.sub readme b (e - b))) ]

(* ---------- report determinism + SARIF ---------- *)

let mk ?stage ?insts ?gate_index code severity msg =
  D.make ?stage ?insts ?gate_index ~code ~severity msg

let report_cases =
  [ case "of_list is order-insensitive and dedups exact duplicates" (fun () ->
        let d1 = mk ~stage:"cls" ~insts:[ 3 ] "QL030" D.Error "double-booked"
        and d2 = mk ~stage:"agg" ~insts:[ 1; 2 ] "QL050" D.Error "too wide"
        and d3 = mk ~stage:"input" ~gate_index:4 "QL060" D.Warning "dead"
        and d4 = mk "QL070" D.Info "merge opportunity" in
        let expect =
          Qlint.Report.diagnostics (Qlint.Report.of_list [ d1; d2; d3; d4 ])
        in
        List.iter
          (fun perm ->
            let got = Qlint.Report.diagnostics (Qlint.Report.of_list perm) in
            check_int "length" (List.length expect) (List.length got);
            List.iter2
              (fun (a : D.t) (b : D.t) ->
                check_bool "same order" true (D.equal a b))
              expect got)
          [ [ d4; d3; d2; d1 ];
            [ d2; d1; d4; d3 ];
            [ d1; d1; d2; d2; d3; d4; d4 ] ];
        check_bool "severity first" true
          (match expect with
           | first :: _ -> first.D.code = "QL030"
           | [] -> false));
    case "worst / has_at_least drive the threshold gate" (fun () ->
        let w = Qlint.Report.of_list [ mk "QL060" D.Warning "w" ] in
        check_bool "worst" true (Qlint.Report.worst w = Some D.Warning);
        check_bool "warning trips" true (Qlint.Report.has_at_least D.Warning w);
        check_bool "error does not" false (Qlint.Report.has_at_least D.Error w);
        check_bool "empty" true (Qlint.Report.worst Qlint.Report.empty = None)) ]

let sarif_cases =
  [ case "sarif output is valid 2.1.0 with a registry-derived rule catalog"
      (fun () ->
        let r =
          Qlint.Report.of_list
            [ mk ~stage:"input" ~gate_index:2 "QL060" D.Warning "dead gate";
              mk ~stage:"cls" ~insts:[ 3; 7 ] "QL030" D.Error "double-booked" ]
        in
        let s = Qlint.Sarif.to_string r in
        match Qobs.Json.of_string s with
        | Error e -> Alcotest.failf "sarif does not parse: %s" e
        | Ok j ->
          let str_member k o =
            match Qobs.Json.member k o with
            | Some (Qobs.Json.Str s) -> s
            | _ -> Alcotest.failf "missing %s" k
          in
          Alcotest.(check string) "version" "2.1.0" (str_member "version" j);
          let run0 =
            match Qobs.Json.member "runs" j with
            | Some (Qobs.Json.List [ r ]) -> r
            | _ -> Alcotest.fail "expected one run"
          in
          let driver =
            match
              Option.bind
                (Qobs.Json.member "tool" run0)
                (Qobs.Json.member "driver")
            with
            | Some d -> d
            | None -> Alcotest.fail "no driver"
          in
          (match Qobs.Json.member "rules" driver with
           | Some (Qobs.Json.List rules) ->
             check_int "two rules" 2 (List.length rules)
           | _ -> Alcotest.fail "no rules");
          (match Qobs.Json.member "results" run0 with
           | Some (Qobs.Json.List results) ->
             check_int "two results" 2 (List.length results);
             (match results with
              | first :: _ ->
                Alcotest.(check string) "errors first" "QL030"
                  (str_member "ruleId" first);
                Alcotest.(check string) "level" "error"
                  (str_member "level" first)
              | [] -> Alcotest.fail "empty results")
           | _ -> Alcotest.fail "no results")) ]

let suites =
  [ ("qflow.lattice", lattice_cases);
    ("qflow.transfer", transfer_cases);
    ("qflow.analysis", analysis_cases);
    ("qflow.summary", summary_cases);
    ("qlint.semantic", semantic_cases);
    ("qflow.properties", property_cases);
    ("qlint.registry", registry_cases);
    ("qlint.report", report_cases);
    ("qlint.sarif", sarif_cases) ]
