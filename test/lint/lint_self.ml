(* lint-self: the compiler must lint its own output clean.

   Compiles three benchmarks under the cls and aggregation strategies
   with [~check:true] and fails if any diagnostic (of any severity)
   survives — the pipeline's IR is expected to be not just legal but
   warning-free. Runs under `dune runtest`. *)

let benchmarks = [ "maxcut-line"; "sqrt-n3"; "uccsd-n4" ]
let strategies = [ Qcc.Strategy.Cls; Qcc.Strategy.Aggregation ]

let () =
  let failures = ref 0 in
  List.iter
    (fun name ->
      let circuit = Qapps.Suite.lowered (Qapps.Suite.find name) in
      List.iter
        (fun strategy ->
          let label =
            Printf.sprintf "%s / %s" name (Qcc.Strategy.to_string strategy)
          in
          match Qcc.Compiler.compile ~check:true ~strategy circuit with
          | r ->
            let report = Qlint.Report.of_list r.Qcc.Compiler.diagnostics in
            if Qlint.Report.diagnostics report = [] then
              Printf.printf "lint-self %-28s ok\n" label
            else begin
              incr failures;
              Printf.printf "lint-self %-28s FAILED (%s)\n" label
                (Qlint.Report.summary report);
              Format.printf "%a" Qlint.Report.pp_text report
            end
          | exception Qlint.Report.Check_failed report ->
            incr failures;
            Printf.printf "lint-self %-28s FAILED (check aborted: %s)\n"
              label
              (Qlint.Report.summary report);
            Format.printf "%a" Qlint.Report.pp_text report)
        strategies)
    benchmarks;
  if !failures > 0 then exit 1
