(* tests for the gate dependence graph, commutation and diagonal blocks *)

open Qgdg
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit

let unit_latency _ = 1.0
let sum_latency gates = float_of_int (List.length gates)

let zz a b = [ Gate.cnot a b; Gate.rz 5.67 b; Gate.cnot a b ]

(* generators for the algebraic commutation fast paths: Clifford blocks
   exercise the tableau route, CNOT+Rz blocks the phase-polynomial route *)
let random_clifford_gates rng n depth =
  List.init depth (fun _ ->
      let q = Qgraph.Rand.int rng n in
      let other () = (q + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
      match Qgraph.Rand.int rng 8 with
      | 0 -> Gate.h q
      | 1 -> Gate.s q
      | 2 -> Gate.sdg q
      | 3 -> Gate.x q
      | 4 -> Gate.z q
      | 5 -> Gate.cnot q (other ())
      | 6 -> Gate.cz q (other ())
      | _ -> Gate.swap q (other ()))

let random_cnot_rz_gates rng n depth =
  List.init depth (fun _ ->
      let q = Qgraph.Rand.int rng n in
      if Qgraph.Rand.bool rng then Gate.rz (Qgraph.Rand.float rng 6.28) q
      else Gate.cnot q ((q + 1 + Qgraph.Rand.int rng (n - 1)) mod n))

let qaoa_triangle () =
  Gdg.of_circuit ~latency:unit_latency (Qapps.Qaoa.triangle_example ())

let inst_cases =
  [ case "make computes support" (fun () ->
        let i = Inst.make ~id:0 ~latency:1.0 [ Gate.cnot 3 1; Gate.h 3 ] in
        Alcotest.(check (list int)) "sorted support" [ 1; 3 ] i.Inst.qubits;
        check_int "width" 2 (Inst.width i));
    case "empty raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Inst.make: empty gate list")
          (fun () -> ignore (Inst.make ~id:0 ~latency:1.0 [])));
    case "merge keeps order" (fun () ->
        let a = Inst.of_gate ~id:0 ~latency:1. (Gate.h 0) in
        let b = Inst.of_gate ~id:1 ~latency:1. (Gate.cnot 0 1) in
        let m = Inst.merge ~id:2 ~latency:2. a b in
        check_bool "h first" true (Gate.equal (Gate.h 0) (List.hd m.Inst.gates));
        check_int "two members" 2 (List.length m.Inst.gates));
    case "unitary on support" (fun () ->
        let i = Inst.make ~id:0 ~latency:1.0 (zz 4 2) in
        let support, u = Inst.unitary_on_support i in
        Alcotest.(check (list int)) "support" [ 2; 4 ] support;
        check_bool "diagonal" true (Qnum.Cmat.is_diagonal ~eps:1e-9 u)) ]

let commute_cases =
  [ case "disjoint gates commute" (fun () ->
        check_bool "h0 vs h1" true (Commute.gates (Gate.h 0) (Gate.h 1)));
    case "diagonal gates commute" (fun () ->
        check_bool "rz vs cz" true (Commute.gates (Gate.rz 0.3 0) (Gate.cz 0 1));
        check_bool "rzz vs rzz shared" true
          (Commute.gates (Gate.rzz 0.5 0 1) (Gate.rzz 0.7 1 2)));
    case "table 2: control commutes with rz" (fun () ->
        check_bool "rz on control" true (Commute.gates (Gate.rz 0.4 0) (Gate.cnot 0 1));
        check_bool "rz on target" false (Commute.gates (Gate.rz 0.4 1) (Gate.cnot 0 1)));
    case "table 2: cnots with shared control" (fun () ->
        check_bool "shared control" true (Commute.gates (Gate.cnot 0 1) (Gate.cnot 0 2));
        check_bool "shared target" true (Commute.gates (Gate.cnot 0 2) (Gate.cnot 1 2));
        check_bool "control-target clash" false
          (Commute.gates (Gate.cnot 0 1) (Gate.cnot 1 2)));
    case "x and rx commute" (fun () ->
        check_bool "same axis" true (Commute.gates (Gate.x 0) (Gate.rx 1.1 0)));
    case "h and x do not commute" (fun () ->
        check_bool "h x" false (Commute.gates (Gate.h 0) (Gate.x 0)));
    case "blocks: zz structures commute" (fun () ->
        check_bool "zz 01 vs zz 12" true (Commute.blocks (zz 0 1) (zz 1 2)));
    case "blocks: cnot chains do not" (fun () ->
        check_bool "cnot vs zz on target" false
          (Commute.blocks [ Gate.cnot 0 1 ] (zz 1 2) |> fun r ->
           (* cnot(0,1) vs diagonal zz(1,2): cnot's target is in zz support *)
           r));
    case "is_diagonal_block" (fun () ->
        check_bool "zz block" true (Commute.is_diagonal_block (zz 0 1));
        check_bool "with stray h" false
          (Commute.is_diagonal_block (zz 0 1 @ [ Gate.h 0 ]));
        check_bool "empty" true (Commute.is_diagonal_block []));
    qcheck ~count:40 "commute agrees with dense check" QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 2 in
        match gates with
        | [ a; b ] ->
          let sup = List.sort_uniq compare (Gate.qubits a @ Gate.qubits b) in
          let relabel = List.mapi (fun k q -> (q, k)) sup in
          let f q = List.assoc q relabel in
          let n = List.length sup in
          let ua = Qgate.Unitary.of_gates ~n_qubits:n [ Gate.map_qubits f a ] in
          let ub = Qgate.Unitary.of_gates ~n_qubits:n [ Gate.map_qubits f b ] in
          Commute.gates a b = Qnum.Cmat.commute ~eps:1e-9 ua ub
        | _ -> true);
    (* the dispatching oracle (tableau / phase-polynomial fast paths plus
       the embedded dense fallback) against the one-shot dense check, on
       blocks whose joint support stays within the 8-qubit check width *)
    qcheck ~count:25 "blocks agrees with dense on random Clifford blocks"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 7 in
        let a = random_clifford_gates rng n 5 in
        let b = random_clifford_gates rng n 5 in
        Commute.blocks a b = Commute.dense_commute a b);
    qcheck ~count:25 "blocks agrees with dense on CNOT+Rz blocks"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 7 in
        let a = random_cnot_rz_gates rng n 6 in
        let b = random_cnot_rz_gates rng n 6 in
        Commute.blocks a b = Commute.dense_commute a b);
    case "blocks: anti-commuting Paulis rejected" (fun () ->
        check_bool "x vs z" false (Commute.blocks [ Gate.x 0 ] [ Gate.z 0 ]);
        check_bool "x vs y" false (Commute.blocks [ Gate.x 0 ] [ Gate.y 0 ]);
        check_bool "h vs h" true (Commute.blocks [ Gate.h 0 ] [ Gate.h 0 ]));
    (* the oracle dispatcher against the retained pre-oracle decision
       chain: memoization, summary shortcuts and route dispatch must not
       change a single verdict *)
    qcheck ~count:25 "blocks matches blocks_reference on Clifford blocks"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 5 in
        let a = random_clifford_gates rng n 5 in
        let b = random_clifford_gates rng n 5 in
        Commute.blocks a b = Commute.blocks_reference a b);
    qcheck ~count:25 "blocks matches blocks_reference on CNOT+Rz blocks"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 5 in
        let a = random_cnot_rz_gates rng n 6 in
        let b = random_cnot_rz_gates rng n 6 in
        Commute.blocks a b = Commute.blocks_reference a b) ]

let gdg_cases =
  [ case "of_circuit sizes" (fun () ->
        let g = qaoa_triangle () in
        check_int "one node per gate" 15 (Gdg.size g);
        check_int "qubits" 3 (Gdg.n_qubits g));
    case "chains in program order" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.h 1 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let chain0 = List.map (fun i -> i.Inst.id) (Gdg.chain g 0) in
        Alcotest.(check (list int)) "qubit 0" [ 0; 1 ] chain0;
        let chain1 = List.map (fun i -> i.Inst.id) (Gdg.chain g 1) in
        Alcotest.(check (list int)) "qubit 1" [ 1; 2 ] chain1);
    case "parents and children" (fun () ->
        let c = Circuit.make 3 [ Gate.h 0; Gate.cnot 0 1; Gate.cnot 1 2 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        check_int "cnot01 has one parent" 1 (List.length (Gdg.parents g 1));
        check_int "h has no parents" 0 (List.length (Gdg.parents g 0));
        check_int "cnot01 has one child" 1 (List.length (Gdg.children g 1)));
    case "asap makespan unit latencies" (fun () ->
        let c = Circuit.make 3 [ Gate.h 0; Gate.h 1; Gate.cnot 0 1; Gate.cnot 1 2 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        check_float "depth 3" 3. (Gdg.makespan g));
    case "asap respects latencies" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ] in
        let g = Gdg.of_circuit ~latency:(fun gs ->
            if List.exists (fun x -> Gate.arity x = 2) gs then 10. else 2.) c in
        check_float "2 + 10" 12. (Gdg.makespan g));
    case "merge combines and keeps acyclicity" (fun () ->
        let c = Circuit.make 2 (zz 0 1) in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let merged = Gdg.merge g ~latency:2.0 0 1 in
        check_int "size shrinks" 2 (Gdg.size g);
        check_int "two members" 2 (List.length merged.Inst.gates);
        Gdg.validate g);
    case "merge cycle rollback" (fun () ->
        (* A(0,1) ; B(1,2) ; C(0,2): merging A with C around B creates a
           cycle through B and must be rejected, leaving the graph valid *)
        let c = Circuit.make 3 [ Gate.cnot 0 1; Gate.cnot 1 2; Gate.cnot 0 2 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        check_bool "raises" true
          (try
             ignore (Gdg.merge g ~latency:2.0 0 2);
             false
           with Invalid_argument _ -> true);
        Gdg.validate g;
        check_int "unchanged" 3 (Gdg.size g));
    case "merge self raises" (fun () ->
        let g = qaoa_triangle () in
        Alcotest.check_raises "raises"
          (Invalid_argument "Gdg.merge: cannot merge a node with itself")
          (fun () -> ignore (Gdg.merge g ~latency:1.0 2 2)));
    case "all_gates preserves count" (fun () ->
        let g = qaoa_triangle () in
        check_int "15 gates" 15 (List.length (Gdg.all_gates g)));
    case "set_latency" (fun () ->
        let g = qaoa_triangle () in
        Gdg.set_latency g 0 42.0;
        check_float "updated" 42.0 (Gdg.find g 0).Inst.latency);
    case "neighbor tables match pred_on" (fun () ->
        let g = qaoa_triangle () in
        let pred, succ = Gdg.neighbor_tables g in
        List.iter
          (fun (i : Inst.t) ->
            List.iter
              (fun q ->
                let via_table = Hashtbl.find_opt pred (i.Inst.id, q) in
                let direct =
                  Option.map (fun (p : Inst.t) -> p.Inst.id)
                    (Gdg.pred_on g i.Inst.id ~qubit:q)
                in
                check_bool "pred agrees" true (via_table = direct);
                let via_table = Hashtbl.find_opt succ (i.Inst.id, q) in
                let direct =
                  Option.map (fun (s : Inst.t) -> s.Inst.id)
                    (Gdg.succ_on g i.Inst.id ~qubit:q)
                in
                check_bool "succ agrees" true (via_table = direct))
              i.Inst.qubits)
          (Gdg.insts g)) ]

let comm_group_cases =
  [ case "cnot-rz-cnot groups on control vs target" (fun () ->
        let c = Circuit.make 2 (zz 0 1) in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let groups = Comm_group.build g in
        (* the two CNOTs share a group on the control qubit... *)
        check_bool "same group on control" true (Comm_group.same_group groups ~qubit:0 0 2);
        (* ...but not on the target, where the Rz separates them *)
        check_bool "split on target" false (Comm_group.same_group groups ~qubit:1 0 2));
    case "group count on serial chain" (fun () ->
        let c = Circuit.make 1 [ Gate.h 0; Gate.x 0; Gate.h 0 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let groups = Comm_group.build g in
        check_int "three singleton groups" 3 (List.length (Comm_group.groups_on groups 0)));
    case "commuting run forms one group" (fun () ->
        let c = Circuit.make 3 [ Gate.rzz 0.1 0 1; Gate.rzz 0.2 1 2; Gate.rz 0.3 1 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let groups = Comm_group.build g in
        check_int "one group on qubit 1" 1 (List.length (Comm_group.groups_on groups 1)));
    case "reorderable requires all common qubits" (fun () ->
        let c = Circuit.make 2 (zz 0 1) in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let groups = Comm_group.build g in
        check_bool "cnots not reorderable" false
          (Comm_group.reorderable groups (Gdg.find g 0) (Gdg.find g 2)));
    case "refresh matches rebuild" (fun () ->
        let g = qaoa_triangle () in
        let a = Comm_group.build g in
        ignore (Gdg.merge g ~latency:3.0 4 5);
        Comm_group.refresh a g
          ~qubits:(List.init (Gdg.n_qubits g) (fun q -> q));
        let b = Comm_group.build g in
        for q = 0 to Gdg.n_qubits g - 1 do
          Alcotest.(check (list (list int)))
            (Printf.sprintf "qubit %d" q)
            (Comm_group.groups_on b q) (Comm_group.groups_on a q)
        done);
    case "oracle build matches reference on every suite circuit" (fun () ->
        List.iter
          (fun (b : Qapps.Suite.benchmark) ->
            let circuit = Qapps.Suite.lowered b in
            let g = Gdg.of_circuit ~latency:sum_latency circuit in
            let oracle = Comm_group.build g in
            let reference = Comm_group.build_reference g in
            for q = 0 to Gdg.n_qubits g - 1 do
              Alcotest.(check (list (list int)))
                (Printf.sprintf "%s qubit %d" b.Qapps.Suite.name q)
                (Comm_group.groups_on reference q)
                (Comm_group.groups_on oracle q)
            done)
          Qapps.Suite.all) ]

let diagonal_cases =
  [ case "contracts cnot-rz-cnot" (fun () ->
        let c = Circuit.make 2 (zz 0 1) in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let merges = Diagonal.detect_and_contract ~latency:sum_latency g in
        check_bool "merged" true (merges >= 1);
        check_int "single block" 1 (Gdg.size g);
        Gdg.validate g);
    case "contracted block is diagonal" (fun () ->
        let c = Circuit.make 2 (zz 0 1) in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        ignore (Diagonal.detect_and_contract ~latency:sum_latency g);
        List.iter
          (fun (i : Inst.t) ->
            if List.length i.Inst.gates > 1 then
              check_bool "diagonal" true (Commute.is_diagonal_block i.Inst.gates))
          (Gdg.insts g));
    case "does not contract non-diagonal runs" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.h 1 ] in
        let g = Gdg.of_circuit ~latency:unit_latency c in
        let merges = Diagonal.detect_and_contract ~latency:sum_latency g in
        check_int "no merges" 0 merges;
        check_int "unchanged" 3 (Gdg.size g));
    case "respects run gate budget" (fun () ->
        (* a long diagonal chain on one pair: blocks stay <= max_run_gates *)
        let gates = List.concat (List.init 8 (fun _ -> zz 0 1)) in
        let g = Gdg.of_circuit ~latency:unit_latency (Circuit.make 2 gates) in
        ignore (Diagonal.detect_and_contract ~latency:sum_latency g);
        List.iter
          (fun (i : Inst.t) ->
            check_bool "size bounded" true
              (List.length i.Inst.gates <= Diagonal.max_run_gates))
          (Gdg.insts g));
    case "triangle qaoa contracts three blocks" (fun () ->
        let g = qaoa_triangle () in
        let merges = Diagonal.detect_and_contract ~latency:sum_latency g in
        check_int "three zz merges" 3 merges;
        Gdg.validate g);
    case "semantics preserved" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        let g = Gdg.of_circuit ~latency:unit_latency circuit in
        ignore (Diagonal.detect_and_contract ~latency:sum_latency g);
        let after = Circuit.make 3 (Gdg.all_gates g) in
        check_bool "unitary equal" true (Circuit.equal_semantics circuit after));
    (* run growth: the table-backed production bookkeeping against the
       list-based reference, plus the structural invariants every run
       must satisfy *)
    qcheck ~count:30 "grow_run matches reference and its invariants"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 2 + Qgraph.Rand.int rng 4 in
        let gates = random_unitary_gates rng n (10 + Qgraph.Rand.int rng 30) in
        let g = Gdg.of_circuit ~latency:unit_latency (Circuit.make n gates) in
        List.for_all
          (fun (i : Inst.t) ->
            let run = Diagonal.grow_run g i.Inst.id in
            let reference = Diagonal.grow_run_reference g i.Inst.id in
            let support =
              List.sort_uniq compare
                (List.concat_map
                   (fun id -> (Gdg.find g id).Inst.qubits)
                   run)
            in
            let gate_count =
              List.fold_left
                (fun acc id ->
                  acc + List.length (Gdg.find g id).Inst.gates)
                0 run
            in
            run = reference
            && List.hd run = i.Inst.id
            && List.length support <= 2
            && gate_count <= Diagonal.max_run_gates)
          (Gdg.insts g));
    case "oracle detect matches reference on every suite circuit" (fun () ->
        let shape g =
          List.map
            (fun (i : Inst.t) -> (i.Inst.id, i.Inst.qubits, i.Inst.gates))
            (Gdg.insts g)
        in
        List.iter
          (fun (b : Qapps.Suite.benchmark) ->
            let circuit = Qapps.Suite.lowered b in
            let g_new = Gdg.of_circuit ~latency:sum_latency circuit in
            let g_ref = Gdg.of_circuit ~latency:sum_latency circuit in
            let merges_new =
              Diagonal.detect_and_contract ~latency:sum_latency g_new
            in
            let merges_ref =
              Diagonal.detect_and_contract_reference ~latency:sum_latency g_ref
            in
            check_int
              (Printf.sprintf "%s merges" b.Qapps.Suite.name)
              merges_ref merges_new;
            check_bool
              (Printf.sprintf "%s graphs identical" b.Qapps.Suite.name)
              true
              (shape g_new = shape g_ref);
            Gdg.validate g_new;
            (* the contracted graphs must also schedule identically *)
            check_float
              (Printf.sprintf "%s cls makespan" b.Qapps.Suite.name)
              (Qsched.Cls.makespan g_ref) (Qsched.Cls.makespan g_new))
          Qapps.Suite.all) ]

let suites =
  [ ("qgdg.inst", inst_cases);
    ("qgdg.commute", commute_cases);
    ("qgdg.gdg", gdg_cases);
    ("qgdg.comm_group", comm_group_cases);
    ("qgdg.diagonal", diagonal_cases) ]
