(* tests for schedules, the ASAP baseline and the CLS scheduler *)

open Qsched
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Gdg = Qgdg.Gdg
module Inst = Qgdg.Inst

let unit_latency _ = 1.0
let zz theta a b = [ Gate.cnot a b; Gate.rz theta b; Gate.cnot a b ]

let gdg_of gates n = Gdg.of_circuit ~latency:unit_latency (Circuit.make n gates)

let contract g =
  ignore
    (Qgdg.Diagonal.detect_and_contract
       ~latency:(fun gs -> float_of_int (List.length gs))
       g);
  g

let schedule_cases =
  [ case "makespan computed" (fun () ->
        let i = Inst.of_gate ~id:0 ~latency:5. (Gate.h 0) in
        let s =
          Schedule.make ~n_qubits:1
            [ { Schedule.inst = i; start = 2.; finish = 7. } ]
        in
        check_float "makespan" 7. s.Schedule.makespan);
    case "entries sorted by start" (fun () ->
        let mk id st =
          { Schedule.inst = Inst.of_gate ~id ~latency:1. (Gate.h id);
            start = st;
            finish = st +. 1. }
        in
        let s = Schedule.make ~n_qubits:3 [ mk 0 5.; mk 1 1.; mk 2 3. ] in
        Alcotest.(check (list int)) "order" [ 1; 2; 0 ]
          (List.map (fun (i : Inst.t) -> i.Inst.id) (Schedule.linearize s)));
    case "negative duration raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Schedule.make: negative duration") (fun () ->
            ignore
              (Schedule.make ~n_qubits:1
                 [ { Schedule.inst = Inst.of_gate ~id:0 ~latency:1. (Gate.h 0);
                     start = 3.;
                     finish = 1. } ])));
    case "overlap detection" (fun () ->
        let mk id st =
          { Schedule.inst = Inst.of_gate ~id ~latency:2. (Gate.h 0);
            start = st;
            finish = st +. 2. }
        in
        let bad = Schedule.make ~n_qubits:1 [ mk 0 0.; mk 1 1. ] in
        check_bool "overlap caught" false (Schedule.no_qubit_overlap bad);
        let good = Schedule.make ~n_qubits:1 [ mk 0 0.; mk 1 2. ] in
        check_bool "ok" true (Schedule.no_qubit_overlap good));
    case "empty schedule is overlap-free" (fun () ->
        let s = Schedule.make ~n_qubits:4 [] in
        check_bool "no overlap" true (Schedule.no_qubit_overlap s);
        check_float "makespan" 0. s.Schedule.makespan;
        check_int "no conflicts" 0 (List.length (Schedule.conflicts s)));
    case "zero-duration entries may share an instant" (fun () ->
        (* two zero-length virtual instructions at t=1 on the same qubit:
           the half-open busy intervals [1,1) are empty, so no conflict *)
        let mk id =
          { Schedule.inst = Inst.of_gate ~id ~latency:0. (Gate.rz 0.3 0);
            start = 1.;
            finish = 1. }
        in
        let s = Schedule.make ~n_qubits:1 [ mk 0; mk 1 ] in
        check_bool "no overlap" true (Schedule.no_qubit_overlap s));
    case "zero-duration entry at a busy instant does not conflict" (fun () ->
        (* a virtual (zero-latency) instruction fired at the very moment
           a long one starts on the same qubit — legal, its busy interval
           is empty (seen in CLS on uccsd-n6 with zero-cost Rz gates) *)
        let long =
          { Schedule.inst = Inst.of_gate ~id:0 ~latency:47. (Gate.h 0);
            start = 10.;
            finish = 57. }
        in
        let virt =
          { Schedule.inst = Inst.of_gate ~id:1 ~latency:0. (Gate.rz 0.1 0);
            start = 10.;
            finish = 10. }
        in
        let s = Schedule.make ~n_qubits:1 [ long; virt ] in
        check_bool "no overlap" true (Schedule.no_qubit_overlap s));
    case "back-to-back finish = start does not conflict" (fun () ->
        let mk id st =
          { Schedule.inst = Inst.of_gate ~id ~latency:2. (Gate.h 0);
            start = st;
            finish = st +. 2. }
        in
        let s = Schedule.make ~n_qubits:1 [ mk 0 0.; mk 1 2.; mk 2 4. ] in
        check_bool "meeting endpoints legal" true
          (Schedule.no_qubit_overlap s));
    case "conflicts names the pair, qubit and window" (fun () ->
        let mk id q st fin =
          { Schedule.inst = Inst.of_gate ~id ~latency:(fin -. st) (Gate.h q);
            start = st;
            finish = fin }
        in
        (* qubit 2 double-booked over [3, 5]; qubit 1 untouched *)
        let s =
          Schedule.make ~n_qubits:3
            [ mk 0 2 0. 5.; mk 1 2 3. 8.; mk 2 1 0. 8. ]
        in
        (match Schedule.conflicts s with
         | [ (a, b, q) ] ->
           check_int "earlier" 0 a.Schedule.inst.Inst.id;
           check_int "later" 1 b.Schedule.inst.Inst.id;
           check_int "qubit" 2 q;
           check_float "overlap start" 3. b.Schedule.start;
           check_float "overlap end" 5.
             (Float.min a.Schedule.finish b.Schedule.finish)
         | l -> Alcotest.failf "expected one conflict, got %d" (List.length l)));
    case "respects_order on empty schedule of empty gdg" (fun () ->
        let g = Gdg.of_insts ~n_qubits:2 [] in
        check_bool "vacuously ordered" true
          (Schedule.respects_order ~original:g
             (Schedule.make ~n_qubits:2 []))) ]

let asap_cases =
  [ case "respects dependencies" (fun () ->
        let g = gdg_of [ Gate.h 0; Gate.cnot 0 1; Gate.h 1 ] 2 in
        let s = Asap.schedule g in
        check_float "makespan 3" 3. s.Schedule.makespan;
        check_bool "no overlap" true (Schedule.no_qubit_overlap s);
        check_bool "order kept" true (Schedule.respects_order ~original:g s));
    case "parallelizes independent gates" (fun () ->
        let g = gdg_of [ Gate.h 0; Gate.h 1; Gate.h 2 ] 3 in
        check_float "all at once" 1. (Asap.schedule g).Schedule.makespan) ]

let cls_cases =
  [ case "cls on serial circuit equals asap" (fun () ->
        let g = gdg_of [ Gate.h 0; Gate.x 0; Gate.h 0 ] 1 in
        check_float "serial" 3. (Cls.makespan g));
    case "cls exploits zz commutativity" (fun () ->
        (* 4-ring of ZZ blocks, contracted: CLS fits them in two layers *)
        let gates =
          zz 1. 0 1 @ zz 1. 1 2 @ zz 1. 2 3 @ zz 1. 3 0
        in
        let g = contract (gdg_of gates 4) in
        let asap = Asap.schedule g in
        let cls = Cls.schedule g in
        check_bool "cls at least as good" true
          (cls.Schedule.makespan <= asap.Schedule.makespan +. 1e-9);
        check_float "two layers" 6. cls.Schedule.makespan);
    case "cls without commutativity matches chain order" (fun () ->
        let g = gdg_of [ Gate.cnot 0 1; Gate.cnot 1 2; Gate.cnot 2 3 ] 4 in
        check_float "serial chain" 3. (Cls.makespan g));
    case "cls schedules all instructions exactly once" (fun () ->
        let g = contract (gdg_of (zz 1. 0 1 @ zz 2. 1 2 @ [ Gate.h 0; Gate.rx 0.4 2 ]) 3) in
        let s = Cls.schedule g in
        check_int "count" (Gdg.size g) (List.length s.Schedule.entries);
        check_bool "no overlap" true (Schedule.no_qubit_overlap s));
    case "cls legality via commutation" (fun () ->
        let g = contract (gdg_of (zz 1. 0 1 @ zz 2. 1 2) 3) in
        let groups = Qgdg.Comm_group.build g in
        let s = Cls.schedule g in
        check_bool "order or commuting" true
          (Schedule.respects_order
             ~reorderable:(Qgdg.Comm_group.reorderable groups)
             ~original:g s));
    case "cls preserves semantics on qaoa ring" (fun () ->
        let circuit =
          Qapps.Qaoa.circuit (Qgraph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ])
        in
        let g =
          Gdg.of_circuit ~latency:unit_latency circuit |> contract
        in
        let s = Cls.schedule g in
        check_bool "unitary preserved" true
          (Circuit.equal_semantics ~eps:1e-8 circuit (Schedule.to_circuit s)));
    case "cls handles wide instructions" (fun () ->
        let wide = Inst.make ~id:0 ~latency:5. [ Gate.cnot 0 1; Gate.cnot 1 2 ] in
        let tail = Inst.of_gate ~id:1 ~latency:1. (Gate.h 1) in
        let g = Gdg.of_insts ~n_qubits:3 [ wide; tail ] in
        let s = Cls.schedule g in
        check_float "serialized" 6. s.Schedule.makespan);
    qcheck ~count:25 "cls never loses to chain asap on random commutative circuits"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let n = 4 + Qgraph.Rand.int rng 3 in
        let gates =
          List.concat
            (List.init 6 (fun _ ->
                 let a = Qgraph.Rand.int rng n in
                 let b = (a + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
                 zz (Qgraph.Rand.float rng 3.) (min a b) (max a b)))
        in
        let g = contract (gdg_of gates n) in
        let cls = Cls.makespan g in
        let asap = (Asap.schedule g).Schedule.makespan in
        cls <= asap +. 1e-6);
    qcheck ~count:25 "cls schedules are always overlap-free"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 4 15 in
        let g = contract (gdg_of gates 4) in
        let s = Cls.schedule g in
        Schedule.no_qubit_overlap s
        && List.length s.Schedule.entries = Gdg.size g) ]

let suites =
  [ ("qsched.schedule", schedule_cases);
    ("qsched.asap", asap_cases);
    ("qsched.cls", cls_cases) ]
