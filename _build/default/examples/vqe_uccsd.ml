(* VQE with a UCCSD ansatz: the paper's §6.4 chemistry workload.

   Builds the Jordan–Wigner UCCSD ansatz on 4 spin orbitals, compiles it
   under every strategy, and evaluates the energy of a transverse-field
   Ising test Hamiltonian under the compiled program to confirm the
   aggressive pulse-level rewriting did not change the physics.

     dune exec examples/vqe_uccsd.exe *)

module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy
module State = Qsim.State

let energy state hamiltonian_terms =
  List.fold_left
    (fun acc term -> acc +. State.expectation state term)
    0. hamiltonian_terms

let () =
  let n = 4 in
  let ansatz = Qapps.Uccsd.circuit ~seed:3 n in
  Printf.printf "UCCSD-n%d ansatz: %d gates over %d excitations\n" n
    (Qgate.Circuit.n_gates ansatz)
    (List.length (Qapps.Uccsd.excitations n));

  let hamiltonian = Qapps.Ising.hamiltonian_terms ~j_coupling:1.0 ~field:0.6 n in

  let results = Compiler.compile_all ansatz in
  let isa = List.assoc Strategy.Isa results in
  Printf.printf "\n%-18s %12s %9s\n" "strategy" "latency (ns)" "speedup";
  List.iter
    (fun (s, r) ->
      Printf.printf "%-18s %12.1f %8.2fx\n" (Strategy.to_string s)
        r.Compiler.latency
        (Compiler.speedup ~baseline:isa r))
    results;

  (* energy under the logical ansatz *)
  let reference =
    energy (State.apply_circuit (State.zero n) ansatz) hamiltonian
  in

  (* energy under the compiled instruction stream, measured at the final
     sites of the logical qubits *)
  let agg = List.assoc Strategy.Cls_aggregation results in
  let n_sites =
    Qgate.Circuit.n_qubits (Qsched.Schedule.to_circuit agg.Compiler.schedule)
  in
  let compiled = Qgate.Circuit.make n_sites (List.concat (Compiler.blocks agg)) in
  let final_state = State.apply_circuit (State.zero n_sites) compiled in
  let site_of q = Qmap.Placement.site_of agg.Compiler.final_placement q in
  let relabelled_terms =
    List.map
      (fun (term : Qgate.Pauli.t) ->
        let ops = Array.make n_sites Qgate.Pauli.Pi in
        Array.iteri (fun q op -> ops.(site_of q) <- op) term.Qgate.Pauli.ops;
        Qgate.Pauli.make term.Qgate.Pauli.coeff ops)
      hamiltonian
  in
  let compiled_energy = energy final_state relabelled_terms in
  Printf.printf "\nenergy check: logical %.6f vs compiled %.6f (delta %.2e)\n"
    reference compiled_energy
    (Float.abs (reference -. compiled_energy));
  Printf.printf
    "paper §6.4: aggregation achieves 3.12x more latency reduction than\n\
     hand optimization on UCCSD-n4; compare the table above.\n"
