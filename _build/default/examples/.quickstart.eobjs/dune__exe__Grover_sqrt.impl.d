examples/grover_sqrt.ml: Array Printf Qapps Qcc Qgate
