examples/grover_sqrt.mli:
