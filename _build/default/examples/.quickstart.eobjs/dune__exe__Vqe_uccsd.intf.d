examples/vqe_uccsd.mli:
