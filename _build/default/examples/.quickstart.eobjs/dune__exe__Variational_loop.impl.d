examples/variational_loop.ml: Array List Printf Qapps Qcc Qgate Qgraph Qmap Qopt Qsim Sys
