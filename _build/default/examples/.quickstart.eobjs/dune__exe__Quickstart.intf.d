examples/quickstart.mli:
