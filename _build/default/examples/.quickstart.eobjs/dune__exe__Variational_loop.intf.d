examples/variational_loop.mli:
