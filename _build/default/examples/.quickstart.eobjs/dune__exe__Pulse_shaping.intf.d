examples/pulse_shaping.mli:
