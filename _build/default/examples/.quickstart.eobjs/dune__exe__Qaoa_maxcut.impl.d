examples/qaoa_maxcut.ml: Array Hashtbl List Option Printf Qapps Qcc Qgate Qgraph Qmap Qsched Qsim
