examples/vqe_uccsd.ml: Array Float List Printf Qapps Qcc Qgate Qmap Qsched Qsim
