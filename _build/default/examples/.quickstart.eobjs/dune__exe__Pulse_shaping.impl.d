examples/pulse_shaping.ml: Filename Format Printf Qapps Qcontrol Qgate Qnum Qsim Qviz String Sys
