examples/quickstart.ml: List Printf Qapps Qcc Qgate Qmap String
