(* Pulse shaping with GRAPE: the optimal control unit on its own.

   Synthesizes control pulses for an iSWAP and for the QAOA diagonal block
   CNOT·Rz(γ)·CNOT, verifies them against the target unitaries with the
   Schrödinger integrator, and binary-searches the minimum pulse duration
   — the paper's per-instruction pulse time (§2.5, Fig. 3/4).

     dune exec examples/pulse_shaping.exe *)

module Grape = Qcontrol.Grape
module Gate = Qgate.Gate

let device = Qcontrol.Device.default

let out_dir = "pulse-plots"

let synthesize name target duration =
  Printf.printf "\n--- %s (duration %.1f ns) ---\n%!" name duration;
  let problem =
    { Grape.n_qubits = 2;
      couplings = [ (0, 1) ];
      target;
      duration;
      n_steps = 40;
      device }
  in
  let r = Grape.optimize ~target_fidelity:0.995 problem in
  Printf.printf "fidelity %.5f after %d iterations (converged %b)\n"
    r.Grape.fidelity r.Grape.iterations r.Grape.converged;
  (* independent verification through the pulse simulator *)
  let realized =
    Qsim.Pulse_sim.unitary ~device ~n_qubits:2 ~couplings:[ (0, 1) ]
      r.Grape.pulse
  in
  Printf.printf "pulse-sim cross-check fidelity: %.5f, leakage proxy %.5f\n"
    (Qnum.Cmat.fidelity target realized)
    (Qsim.Pulse_sim.leakage_proxy r.Grape.pulse);
  Format.printf "%a@." Qcontrol.Pulse.pp r.Grape.pulse;
  (* the Fig. 4(c,d)-style picture *)
  (try Sys.mkdir out_dir 0o755 with Sys_error _ -> ());
  let file =
    Filename.concat out_dir
      (String.map (fun c -> if c = ' ' || c = '/' then '_' else c) name
       ^ ".svg")
  in
  Qviz.Pulse_plot.write_svg ~title:name file r.Grape.pulse;
  Printf.printf "wrote %s\n" file

let () =
  let model_iswap =
    Qcontrol.Latency_model.gate_time device (Gate.iswap 0 1)
  in
  synthesize "iSWAP" (Qgate.Unitary.of_kind Gate.Iswap) (model_iswap *. 1.3);

  let gamma = Qapps.Qaoa.default_gamma in
  let _, zz_target =
    Qgate.Unitary.on_support [ Gate.cnot 0 1; Gate.rz gamma 1; Gate.cnot 0 1 ]
  in
  let model_zz =
    Qcontrol.Latency_model.block_time device
      [ Gate.cnot 0 1; Gate.rz gamma 1; Gate.cnot 0 1 ]
  in
  synthesize
    (Printf.sprintf "CNOT-Rz(%.2f)-CNOT diagonal block" gamma)
    zz_target (model_zz *. 1.4);

  (* the paper's notion of an instruction's pulse time: the shortest
     duration at which the optimizer still converges *)
  Printf.printf "\n--- minimum-duration search for the diagonal block ---\n%!";
  let problem =
    { Grape.n_qubits = 2;
      couplings = [ (0, 1) ];
      target = zz_target;
      duration = model_zz *. 2.0;
      n_steps = 50;
      device }
  in
  let duration, result =
    Grape.minimum_duration_search ~fidelity:0.99 ~resolution:4. problem
  in
  Printf.printf
    "GRAPE minimum duration: %.1f ns at fidelity %.4f (latency model predicts %.1f ns; paper's Table 1 G-instructions: 31-42 ns)\n"
    duration result.Grape.fidelity model_zz
