(* Quickstart: compile a small circuit under every strategy.

   Builds the paper's Fig. 4 example (QAOA for MAXCUT on a triangle,
   mapped to a 3-qubit line), compiles it five ways and prints the pulse
   latencies, then shows the aggregated instructions the full pipeline
   produced.

     dune exec examples/quickstart.exe *)

let () =
  let circuit = Qapps.Qaoa.triangle_example () in
  Printf.printf "input circuit: %d qubits, %d gates\n"
    (Qgate.Circuit.n_qubits circuit)
    (Qgate.Circuit.n_gates circuit);
  List.iter
    (fun g -> Printf.printf "  %s\n" (Qgate.Gate.to_string g))
    (Qgate.Circuit.gates circuit);

  let config =
    { Qcc.Compiler.default_config with
      Qcc.Compiler.topology = Some (Qmap.Topology.line 3) }
  in
  let results = Qcc.Compiler.compile_all ~config circuit in
  let isa = List.assoc Qcc.Strategy.Isa results in

  Printf.printf "\n%-18s %12s %10s %8s\n" "strategy" "latency (ns)" "speedup"
    "blocks";
  List.iter
    (fun (s, r) ->
      Printf.printf "%-18s %12.1f %9.2fx %8d\n" (Qcc.Strategy.to_string s)
        r.Qcc.Compiler.latency
        (Qcc.Compiler.speedup ~baseline:isa r)
        r.Qcc.Compiler.n_instructions)
    results;

  let agg = List.assoc Qcc.Strategy.Cls_aggregation results in
  Printf.printf
    "\naggregated instructions of the full pipeline (paper Fig. 4(b)):\n";
  List.iteri
    (fun k block ->
      Printf.printf "  G%d: %s\n" (k + 1)
        (String.concat "; " (List.map Qgate.Gate.to_string block)))
    (Qcc.Compiler.blocks agg);

  Printf.printf
    "\npaper reference: gate-based 381.9 ns, aggregated 128.3 ns (2.97x)\n"
