(* Grover square-root search: the paper's reversible-logic workload.

   Builds the square-root oracle (reversible squarer + comparator) for a
   2-bit input, simulates the full Grover circuit to find x with x² = 9,
   and compiles the 3-bit instance to show the aggregation gains on
   deeply serial circuits.

     dune exec examples/grover_sqrt.exe *)

module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy

let () =
  (* search: which x has x^2 = 9? *)
  let t = Qapps.Sqrt_poly.build ~n:2 ~target:9 () in
  Printf.printf "searching x with x^2 = %d over %d candidates (%d qubits)\n"
    t.Qapps.Sqrt_poly.target 4
    (Qgate.Circuit.n_qubits t.Qapps.Sqrt_poly.circuit);
  let probs = Qapps.Sqrt_poly.success_probability t in
  Array.iteri (fun x p -> Printf.printf "  P(x = %d) = %.4f\n" x p) probs;
  let best = ref 0 in
  Array.iteri (fun x p -> if p > probs.(!best) then best := x) probs;
  Printf.printf "found x = %d (indeed %d^2 = %d)\n\n" !best !best (!best * !best);

  (* compile the 3-bit instance (the paper's sqrt-n3, 17 qubits) *)
  let b = Qapps.Suite.find "sqrt-n3" in
  let circuit = Qapps.Suite.lowered b in
  Printf.printf "compiling %s: %d qubits, %d gates after ISA lowering\n"
    b.Qapps.Suite.name
    (Qgate.Circuit.n_qubits circuit)
    (Qgate.Circuit.n_gates circuit);
  let isa = Compiler.compile ~strategy:Strategy.Isa circuit in
  let agg = Compiler.compile ~strategy:Strategy.Cls_aggregation circuit in
  let hand = Compiler.compile ~strategy:Strategy.Cls_hand circuit in
  Printf.printf "  gate-based        %10.1f ns\n" isa.Compiler.latency;
  Printf.printf "  cls+hand          %10.1f ns (%.2fx)\n" hand.Compiler.latency
    (Compiler.speedup ~baseline:isa hand);
  Printf.printf "  cls+aggregation   %10.1f ns (%.2fx, %d instructions from %d gates)\n"
    agg.Compiler.latency
    (Compiler.speedup ~baseline:isa agg)
    agg.Compiler.n_instructions
    (Qgate.Circuit.n_gates circuit);
  Printf.printf
    "\nserial reversible logic is where aggregation helps most (paper §6.2):\n\
     blocks absorb the Toffoli chains and routing swaps into wide custom pulses.\n"
