(* A full hybrid variational loop with partial compilation.

   QAOA and VQE re-run the same circuit structure with new angles on
   every optimizer step; recompiling from scratch each time is the
   compile-time problem the paper's §9 raises, and partial compilation is
   its proposed answer. This example optimizes the (γ, β) angles of a
   6-vertex ring MAXCUT QAOA with Nelder–Mead, rebinding the angles of
   the *already aggregated* schedule at each step (Qcc.Partial), and
   compares the cost of a rebind against a from-scratch compile.

     dune exec examples/variational_loop.exe *)

module Compiler = Qcc.Compiler
module State = Qsim.State

let () =
  let n = 6 in
  let graph =
    Qgraph.Graph.of_edges n (List.init n (fun k -> (k, (k + 1) mod n)))
  in
  let config =
    { Compiler.default_config with
      Compiler.topology = Some (Qmap.Topology.line n) }
  in
  (* one full compilation fixes the instruction structure and mapping *)
  let t0 = Sys.time () in
  let base =
    Compiler.compile ~config ~strategy:Qcc.Strategy.Cls_aggregation
      (Qapps.Qaoa.circuit graph)
  in
  let full_compile_time = Sys.time () -. t0 in

  (* the measurement side: expected cut of the compiled program's output *)
  let site_graph =
    Qgraph.Graph.of_edges n
      (List.map
         (fun (u, v, _) ->
           ( Qmap.Placement.site_of base.Compiler.final_placement u,
             Qmap.Placement.site_of base.Compiler.final_placement v ))
         (Qgraph.Graph.edges graph))
  in
  let rebind_time = ref 0. in
  let expected_cut gamma beta =
    let t0 = Sys.time () in
    let r = Qcc.Partial.rebind_rotations ~config base ~gamma ~beta in
    rebind_time := !rebind_time +. (Sys.time () -. t0);
    let circuit = Qgate.Circuit.make n (List.concat (Compiler.blocks r)) in
    let st = State.apply_circuit (State.zero n) circuit in
    Qapps.Qaoa.cut_expectation site_graph (State.probability st)
  in

  let objective x = -.expected_cut x.(0) x.(1) in
  let result =
    Qopt.Nelder_mead.minimize ~max_iterations:120 ~tolerance:1e-6
      ~f:objective [| 0.5; 0.5 |]
  in
  let gamma = result.Qopt.Nelder_mead.x.(0)
  and beta = result.Qopt.Nelder_mead.x.(1) in
  let best = -.result.Qopt.Nelder_mead.value in
  let optimal, _ = Qapps.Graphs.max_cut_brute_force graph in

  Printf.printf "optimized angles: gamma = %.4f, beta = %.4f\n" gamma beta;
  Printf.printf "expected cut %.3f of optimal %.1f (ratio %.3f)\n" best optimal
    (best /. optimal);
  Printf.printf "optimizer: %d evaluations in %d iterations (converged %b)\n"
    result.Qopt.Nelder_mead.evaluations result.Qopt.Nelder_mead.iterations
    result.Qopt.Nelder_mead.converged;
  let final = Qcc.Partial.rebind_rotations ~config base ~gamma ~beta in
  Printf.printf "final schedule latency: %.1f ns (%d aggregated instructions)\n"
    final.Compiler.latency final.Compiler.n_instructions;
  Printf.printf
    "partial compilation: %.1f ms per rebind vs %.1f ms full compile (%.0fx)\n"
    (1000. *. !rebind_time /. float_of_int result.Qopt.Nelder_mead.evaluations)
    (1000. *. full_compile_time)
    (full_compile_time
    /. (!rebind_time /. float_of_int result.Qopt.Nelder_mead.evaluations))
