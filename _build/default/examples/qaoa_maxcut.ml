(* QAOA MAXCUT end to end: generate, compile, simulate, measure.

   A one-level QAOA circuit for MAXCUT on an 8-vertex ring is compiled
   with the aggregated-instruction pipeline onto a 3x3 grid; the compiled
   instruction stream is then run through the state-vector simulator and
   sampled. The example reports the latency improvement and checks that
   the compiled program still finds the optimal cut.

     dune exec examples/qaoa_maxcut.exe *)

module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy
module State = Qsim.State

let () =
  let n = 8 in
  let graph =
    Qgraph.Graph.of_edges n (List.init n (fun k -> (k, (k + 1) mod n)))
  in
  (* variational angles chosen to favor large cuts at level 1 *)
  let circuit = Qapps.Qaoa.circuit ~gamma:0.4 ~beta:1.2 graph in
  Printf.printf "QAOA level 1 on an %d-ring: %d gates\n" n
    (Qgate.Circuit.n_gates circuit);

  let results = Compiler.compile_all circuit in
  let isa = List.assoc Strategy.Isa results in
  let agg = List.assoc Strategy.Cls_aggregation results in
  Printf.printf "gate-based latency %.1f ns, aggregated %.1f ns (%.2fx)\n"
    isa.Compiler.latency agg.Compiler.latency
    (Compiler.speedup ~baseline:isa agg);

  (* run the compiled site-space program *)
  let n_sites = Qgate.Circuit.n_qubits (Qsched.Schedule.to_circuit agg.Compiler.schedule) in
  let compiled =
    Qgate.Circuit.make n_sites (List.concat (Compiler.blocks agg))
  in
  let final = State.apply_circuit (State.zero n_sites) compiled in

  (* logical qubit q was measured at its final site *)
  let site_of q = Qmap.Placement.site_of agg.Compiler.final_placement q in
  let rng = Qgraph.Rand.create 2026 in
  let shots = 512 in
  let best_cut = ref 0. and histogram = Hashtbl.create 32 in
  List.iter
    (fun outcome ->
      let side =
        Array.init n (fun q ->
            (outcome lsr (n_sites - 1 - site_of q)) land 1 = 1)
      in
      let cut = Qgraph.Graph.cut_weight graph side in
      if cut > !best_cut then best_cut := cut;
      let key = cut in
      Hashtbl.replace histogram key
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    (State.sample rng final shots);

  let optimal, _ = Qapps.Graphs.max_cut_brute_force graph in
  Printf.printf "\ncut-value histogram over %d shots:\n" shots;
  List.iter
    (fun (cut, count) -> Printf.printf "  cut %4.1f: %4d shots\n" cut count)
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []));
  Printf.printf "best sampled cut %.1f of optimal %.1f\n" !best_cut optimal;
  if !best_cut < optimal then
    Printf.printf "(increase shots or tune angles to hit the optimum)\n"
