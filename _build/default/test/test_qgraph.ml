(* tests for graphs, matching, partitioning, grids and the PRNG *)

open Qgraph
open Util

let graph_cases =
  [ case "add and query edges" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1); (1, 2) ] in
        check_bool "has 0-1" true (Graph.has_edge g 0 1);
        check_bool "symmetric" true (Graph.has_edge g 1 0);
        check_bool "no 0-2" false (Graph.has_edge g 0 2);
        check_int "n_edges" 2 (Graph.n_edges g));
    case "self loop raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Graph.add_edge: self-loop")
          (fun () -> Graph.add_edge (Graph.create 3) 1 1));
    case "weights accumulate" (fun () ->
        let g = Graph.create 2 in
        Graph.add_edge ~weight:1.5 g 0 1;
        Graph.add_edge ~weight:2.0 g 0 1;
        check_float "weight" 3.5 (Graph.weight g 0 1));
    case "remove edge" (fun () ->
        let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
        Graph.remove_edge g 0 1;
        check_bool "gone" false (Graph.has_edge g 0 1);
        check_bool "other kept" true (Graph.has_edge g 1 2));
    case "neighbors sorted" (fun () ->
        let g = Graph.of_edges 5 [ (2, 4); (2, 0); (2, 3) ] in
        Alcotest.(check (list int)) "neighbors" [ 0; 3; 4 ] (Graph.neighbors g 2));
    case "degree" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
        check_int "deg 0" 3 (Graph.degree g 0);
        check_int "deg 1" 1 (Graph.degree g 1));
    case "bfs distances on path" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
        let d = Graph.bfs_distances g 0 in
        Alcotest.(check (array int)) "dist" [| 0; 1; 2; 3 |] d);
    case "bfs unreachable" (fun () ->
        let g = Graph.of_edges 3 [ (0, 1) ] in
        check_int "unreachable" max_int (Graph.bfs_distances g 0).(2));
    case "shortest path endpoints" (fun () ->
        let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
        let p = Graph.shortest_path g 1 4 in
        check_int "length" 3 (List.length p);
        check_int "starts" 1 (List.hd p);
        check_int "ends" 4 (List.nth p (List.length p - 1)));
    case "shortest path no route" (fun () ->
        let g = Graph.of_edges 3 [ (0, 1) ] in
        Alcotest.check_raises "raises" Not_found (fun () ->
            ignore (Graph.shortest_path g 0 2)));
    case "connected components" (fun () ->
        let g = Graph.of_edges 5 [ (0, 1); (2, 3) ] in
        let comps = Graph.connected_components g in
        check_int "three components" 3 (List.length comps);
        check_bool "connected" false (Graph.is_connected g));
    case "cut weight" (fun () ->
        let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
        let side = [| true; false; true; false |] in
        check_float "full cut" 4. (Graph.cut_weight g side);
        check_float "empty cut" 0. (Graph.cut_weight g [| true; true; true; true |]));
    case "induced subgraph" (fun () ->
        let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
        let sub, back = Graph.induced g [ 1; 2; 3 ] in
        check_int "size" 3 (Graph.n_vertices sub);
        check_int "edges" 2 (Graph.n_edges sub);
        check_int "back map" 1 back.(0)) ]

let matching_cases =
  let edge u v label = { Matching.u; v; label } in
  [ case "path graph matching" (fun () ->
        (* path 0-1-2-3: maximal matchings have size >= 1; ours should find 2 *)
        let edges = [ edge 0 1 "a"; edge 1 2 "b"; edge 2 3 "c" ] in
        let m = Matching.maximal_edges ~n:4 edges in
        check_bool "valid" true (Matching.is_matching ~n:4 m);
        check_bool "maximal" true (Matching.is_maximal ~n:4 ~candidates:edges m));
    case "self loops occupy one vertex" (fun () ->
        let edges = [ edge 0 0 "x"; edge 0 1 "y"; edge 1 1 "z" ] in
        let m = Matching.maximal_edges ~n:2 edges in
        check_bool "valid" true (Matching.is_matching ~n:2 m);
        check_bool "maximal" true (Matching.is_maximal ~n:2 ~candidates:edges m));
    case "star graph picks one" (fun () ->
        let edges = [ edge 0 1 1; edge 0 2 2; edge 0 3 3 ] in
        let m = Matching.maximal_edges ~n:4 edges in
        check_int "one edge" 1 (List.length m));
    case "disjoint edges all picked" (fun () ->
        let edges = [ edge 0 1 1; edge 2 3 2; edge 4 5 3 ] in
        let m = Matching.maximal_edges ~n:6 edges in
        check_int "all three" 3 (List.length m));
    case "empty input" (fun () ->
        check_int "empty" 0 (List.length (Matching.maximal_edges ~n:3 [])));
    case "out of range raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Matching: vertex out of range")
          (fun () -> ignore (Matching.maximal_edges ~n:2 [ edge 0 5 () ])));
    qcheck ~count:60 "random graphs give valid maximal matchings"
      QCheck.(pair (int_range 2 12) (int_range 0 10000))
      (fun (n, seed) ->
        let rng = Rand.create seed in
        let edges =
          List.init (2 * n) (fun k ->
              let u = Rand.int rng n and v = Rand.int rng n in
              edge u v k)
        in
        let m = Matching.maximal_edges ~n edges in
        Matching.is_matching ~n m && Matching.is_maximal ~n ~candidates:edges m) ]

let partition_cases =
  [ case "two cliques split cleanly" (fun () ->
        (* K4 + K4 joined by one edge: the bisection should cut only it *)
        let g = Graph.create 8 in
        List.iter
          (fun base ->
            for u = 0 to 3 do
              for v = u + 1 to 3 do
                Graph.add_edge g (base + u) (base + v)
              done
            done)
          [ 0; 4 ];
        Graph.add_edge g 0 4;
        let side = Partition.bisect g in
        check_float "cut weight 1" 1. (Graph.cut_weight g side));
    case "balanced sizes" (fun () ->
        let g = Graphs_helper.ring 7 in
        let side = Partition.bisect g in
        let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 side in
        check_int "|A| = 4" 4 count);
    case "recursive order covers all vertices" (fun () ->
        let g = Graphs_helper.ring 10 in
        let order = Partition.recursive_order g in
        Alcotest.(check (list int)) "is a permutation"
          (List.init 10 (fun k -> k))
          (List.sort compare (Array.to_list order)));
    case "ring order keeps most neighbors adjacent" (fun () ->
        let g = Graphs_helper.ring 8 in
        let order = Partition.recursive_order g in
        let position = Array.make 8 0 in
        Array.iteri (fun pos v -> position.(v) <- pos) order;
        (* at least half the ring edges should land within distance 2 *)
        let close =
          List.length
            (List.filter
               (fun (u, v, _) -> abs (position.(u) - position.(v)) <= 2)
               (Graph.edges g))
        in
        check_bool "locality preserved" true (close >= 4)) ]

let grid_cases =
  [ case "square_for sizes" (fun () ->
        let g = Grid.square_for 17 in
        check_bool "fits" true (Grid.size g >= 17);
        check_bool "near square" true
          (g.Grid.width - g.Grid.height >= 0 && g.Grid.width - g.Grid.height <= 1));
    case "coords roundtrip" (fun () ->
        let g = Grid.make ~width:4 ~height:3 in
        for k = 0 to Grid.size g - 1 do
          let r, c = Grid.coords g k in
          check_int "roundtrip" k (Grid.index g ~row:r ~col:c)
        done);
    case "adjacency" (fun () ->
        let g = Grid.make ~width:3 ~height:3 in
        check_bool "right neighbor" true (Grid.adjacent g 0 1);
        check_bool "below neighbor" true (Grid.adjacent g 0 3);
        check_bool "diagonal not adjacent" false (Grid.adjacent g 0 4);
        check_bool "row wrap not adjacent" false (Grid.adjacent g 2 3));
    case "manhattan distance" (fun () ->
        let g = Grid.make ~width:4 ~height:4 in
        check_int "corner to corner" 6 (Grid.distance g 0 15));
    case "graph edge count" (fun () ->
        (* w x h grid has w(h-1) + h(w-1) edges *)
        let g = Grid.make ~width:3 ~height:4 in
        check_int "edges" ((3 * 3) + (4 * 2)) (Graph.n_edges (Grid.graph g))) ]

let rand_cases =
  [ case "determinism" (fun () ->
        let a = Rand.create 42 and b = Rand.create 42 in
        for _ = 1 to 20 do
          check_int "same stream" (Rand.int a 1000) (Rand.int b 1000)
        done);
    case "different seeds differ" (fun () ->
        let a = Rand.create 1 and b = Rand.create 2 in
        let xs = List.init 10 (fun _ -> Rand.int a 1_000_000) in
        let ys = List.init 10 (fun _ -> Rand.int b 1_000_000) in
        check_bool "streams differ" true (xs <> ys));
    case "int bounds" (fun () ->
        let rng = Rand.create 7 in
        for _ = 1 to 1000 do
          let v = Rand.int rng 17 in
          check_bool "in range" true (v >= 0 && v < 17)
        done);
    case "float bounds" (fun () ->
        let rng = Rand.create 8 in
        for _ = 1 to 1000 do
          let v = Rand.float rng 2.5 in
          check_bool "in range" true (v >= 0. && v < 2.5)
        done);
    case "float roughly uniform" (fun () ->
        let rng = Rand.create 9 in
        let n = 10_000 in
        let acc = ref 0. in
        for _ = 1 to n do
          acc := !acc +. Rand.float rng 1.0
        done;
        check_bool "mean near 0.5" true (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.02));
    case "shuffle permutes" (fun () ->
        let rng = Rand.create 10 in
        let a = Array.init 20 (fun k -> k) in
        Rand.shuffle rng a;
        Alcotest.(check (list int)) "same multiset"
          (List.init 20 (fun k -> k))
          (List.sort compare (Array.to_list a)));
    case "pick_distinct" (fun () ->
        let rng = Rand.create 11 in
        let picked = Rand.pick_distinct rng 5 10 in
        check_int "count" 5 (List.length picked);
        check_int "distinct" 5 (List.length (List.sort_uniq compare picked)));
    case "pick_distinct too many raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Rand.pick_distinct: k > n")
          (fun () -> ignore (Rand.pick_distinct (Rand.create 1) 5 3)));
    case "split independence" (fun () ->
        let parent = Rand.create 13 in
        let child = Rand.split parent in
        let xs = List.init 5 (fun _ -> Rand.int parent 1000) in
        let ys = List.init 5 (fun _ -> Rand.int child 1000) in
        check_bool "streams differ" true (xs <> ys)) ]

let suites =
  [ ("qgraph.graph", graph_cases);
    ("qgraph.matching", matching_cases);
    ("qgraph.partition", partition_cases);
    ("qgraph.grid", grid_cases);
    ("qgraph.rand", rand_cases) ]
