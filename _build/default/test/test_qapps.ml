(* tests for the benchmark generators and program characteristics *)

open Qapps
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit

let graphs_cases =
  [ case "line structure" (fun () ->
        let g = Graphs.line 5 in
        check_int "edges" 4 (Qgraph.Graph.n_edges g);
        check_bool "connected" true (Qgraph.Graph.is_connected g));
    case "regular4 degrees" (fun () ->
        let g = Graphs.regular4 ~seed:3 12 in
        for v = 0 to 11 do
          check_int "degree 4" 4 (Qgraph.Graph.degree g v)
        done;
        check_bool "connected" true (Qgraph.Graph.is_connected g));
    case "regular4 deterministic per seed" (fun () ->
        let a = Graphs.regular4 ~seed:5 10 and b = Graphs.regular4 ~seed:5 10 in
        check_bool "same edges" true (Qgraph.Graph.edges a = Qgraph.Graph.edges b);
        let c = Graphs.regular4 ~seed:6 10 in
        check_bool "different seed differs" true (Qgraph.Graph.edges a <> Qgraph.Graph.edges c));
    case "cluster structure" (fun () ->
        let g = Graphs.cluster ~seed:1 ~clusters:3 ~size:4 in
        check_int "vertices" 12 (Qgraph.Graph.n_vertices g);
        (* 3 complete K4s = 18 edges + ring joins *)
        check_bool "edge count" true (Qgraph.Graph.n_edges g >= 18 + 2);
        check_bool "connected" true (Qgraph.Graph.is_connected g));
    case "brute force maxcut on square" (fun () ->
        let g = Qgraph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
        let value, side = Graphs.max_cut_brute_force g in
        check_float "cut 4" 4. value;
        check_float "side achieves it" 4. (Qgraph.Graph.cut_weight g side)) ]

let qaoa_cases =
  [ case "structure of one level" (fun () ->
        let g = Graphs.line 4 in
        let c = Qaoa.circuit g in
        (* 4 H + 3 edges x 3 gates + 4 Rx *)
        check_int "gate count" (4 + 9 + 4) (Circuit.n_gates c));
    case "levels multiply the body" (fun () ->
        let g = Graphs.line 3 in
        let c1 = Qaoa.circuit ~levels:1 g and c2 = Qaoa.circuit ~levels:2 g in
        check_int "body doubled"
          ((2 * (Circuit.n_gates c1 - 3)) + 3)
          (Circuit.n_gates c2));
    case "triangle example matches paper shape" (fun () ->
        let c = Qaoa.triangle_example () in
        check_int "3 qubits" 3 (Circuit.n_qubits c);
        check_int "6 cnots" 6 (Circuit.count (fun g -> g.Gate.kind = Gate.Cnot) c));
    case "qaoa improves over uniform guessing" (fun () ->
        (* expectation of the cut after one QAOA level on a 4-ring must beat
           the uniform-random expectation (=2) for these angles *)
        let g = Qgraph.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
        let c = Qaoa.circuit ~gamma:0.5 ~beta:1.18 g in
        let st = Qsim.State.apply_circuit (Qsim.State.zero 4) c in
        let expectation = Qaoa.cut_expectation g (Qsim.State.probability st) in
        check_bool "beats random" true (expectation > 2.2));
    case "cut_expectation of basis state" (fun () ->
        let g = Qgraph.Graph.of_edges 2 [ (0, 1) ] in
        (* probability 1 on |01> : cut = 1 *)
        let prob z = if z = 1 then 1.0 else 0.0 in
        check_float "cut 1" 1. (Qaoa.cut_expectation g prob)) ]

let ising_cases =
  [ case "gate structure" (fun () ->
        let c = Ising.circuit ~steps:1 4 in
        (* 4 H + 3 pairs x 3 + 4 Rx *)
        check_int "count" (4 + 9 + 4) (Circuit.n_gates c));
    case "even-odd layering is shallow" (fun () ->
        let c = Ising.circuit ~steps:1 8 in
        check_bool "depth below serial" true (Circuit.depth c <= 9));
    case "hamiltonian terms" (fun () ->
        let terms = Ising.hamiltonian_terms 4 in
        check_int "3 zz + 4 x" 7 (List.length terms));
    case "trotter approximates exact evolution" (fun () ->
        (* small dt: one step of the circuit vs exact exp(-iHt) on 3 qubits *)
        let n = 3 and dt = 0.05 in
        let c = Ising.circuit ~dt ~steps:1 n in
        (* drop the state-prep layer (first n Hadamards) *)
        let gates = List.filteri (fun k _ -> k >= n) (Circuit.gates c) in
        let u_trotter = Qgate.Unitary.of_gates ~n_qubits:n gates in
        let h =
          List.fold_left
            (fun acc term -> Qnum.Cmat.add acc (Qgate.Pauli.matrix term))
            (Qnum.Cmat.zeros 8 8)
            (Ising.hamiltonian_terms n)
        in
        let u_exact = Qnum.Expm.propagator h dt in
        check_bool "close" true
          (Qnum.Cmat.fidelity u_exact u_trotter > 0.999)) ]

let sqrt_cases =
  [ case "oracle marks exactly the roots" (fun () ->
        (* classical check on the flag via phase kickback is not visible in
           Rev_sim; instead verify the squarer+comparator structure via the
           full state vector on n = 2 *)
        let t = Sqrt_poly.build ~n:2 ~target:9 () in
        let probs = Sqrt_poly.success_probability t in
        (* x = 3 squares to 9: one Grover iteration on 4 candidates makes
           the marked state certain *)
        check_bool "root amplified" true (probs.(3) > 0.95);
        check_bool "others suppressed" true (probs.(0) < 0.05));
    case "no root leaves uniform" (fun () ->
        (* target 7 is not a square: diffusion leaves the uniform state *)
        let t = Sqrt_poly.build ~n:2 ~target:7 () in
        let probs = Sqrt_poly.success_probability t in
        Array.iter (fun p -> check_bool "uniform" true (Float.abs (p -. 0.25) < 0.01)) probs);
    case "circuit is within register" (fun () ->
        let t = Sqrt_poly.build ~n:3 ~target:25 () in
        check_int "qubits" 17 (Circuit.n_qubits t.Sqrt_poly.circuit));
    case "target out of range raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Sqrt_poly.build: target out of range") (fun () ->
            ignore (Sqrt_poly.build ~n:2 ~target:16 ()))) ]

let uccsd_cases =
  [ case "excitation count at half filling" (fun () ->
        (* n=4: occ {0,1}, virt {2,3}: 4 singles + 1x1 doubles *)
        check_int "n4" 5 (List.length (Uccsd.excitations 4));
        (* n=6: 9 singles + 3x3 doubles *)
        check_int "n6" 18 (List.length (Uccsd.excitations 6)));
    case "odd count raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Uccsd.excitations: need an even count of at least 4")
          (fun () -> ignore (Uccsd.excitations 5)));
    case "single excitation strings" (fun () ->
        match Uccsd.strings_of_excitation ~n:4 ~theta:0.4 (Uccsd.Single (0, 2)) with
        | [ (a1, s1); (a2, s2) ] ->
          check_float "half angle" 0.2 a1;
          check_float "negated" (-0.2) a2;
          Alcotest.(check string) "XZY" "1*XZYI" (Qgate.Pauli.to_string s1);
          Alcotest.(check string) "YZX" "1*YZXI" (Qgate.Pauli.to_string s2)
        | _ -> Alcotest.fail "expected two strings");
    case "double excitation yields 8 strings" (fun () ->
        check_int "8" 8
          (List.length
             (Uccsd.strings_of_excitation ~n:4 ~theta:1.0 (Uccsd.Double (0, 1, 2, 3)))));
    case "ansatz unitary on 4 qubits" (fun () ->
        let c = Uccsd.circuit 4 in
        check_bool "unitary by construction" true
          (Qnum.Cmat.is_unitary ~eps:1e-8 (Circuit.unitary c)));
    case "deterministic per seed" (fun () ->
        let a = Uccsd.circuit ~seed:1 4 and b = Uccsd.circuit ~seed:1 4 in
        check_bool "equal" true (Circuit.gates a = Circuit.gates b)) ]

let characteristics_cases =
  [ case "qaoa is commutative, sqrt is not" (fun () ->
        let qaoa = Characteristics.analyze (Suite.lowered (Suite.find "maxcut-line")) in
        let sqrt3 = Characteristics.analyze (Suite.lowered (Suite.find "sqrt-n3")) in
        check_bool "qaoa more commutative" true
          (qaoa.Characteristics.commutativity > sqrt3.Characteristics.commutativity);
        check_bool "qaoa high" true
          (qaoa.Characteristics.commutativity_level = Characteristics.High));
    case "ising is parallel, uccsd is not" (fun () ->
        let ising = Characteristics.analyze (Suite.lowered (Suite.find "ising-n30")) in
        let uccsd = Characteristics.analyze (Suite.lowered (Suite.find "uccsd-n6")) in
        check_bool "parallelism ordering" true
          (ising.Characteristics.parallelism > uccsd.Characteristics.parallelism));
    case "line is more local than cluster" (fun () ->
        let line = Characteristics.analyze (Suite.lowered (Suite.find "maxcut-line")) in
        let cluster = Characteristics.analyze (Suite.lowered (Suite.find "maxcut-cluster")) in
        check_bool "locality ordering" true
          (line.Characteristics.spatial_locality
           > cluster.Characteristics.spatial_locality)) ]

let suite_cases =
  [ case "ten instances" (fun () -> check_int "count" 10 (List.length Suite.all));
    case "fig9 drops one ising" (fun () ->
        check_int "nine" 9 (List.length Suite.fig9));
    case "find known and unknown" (fun () ->
        check_int "found" 4 (Suite.find "uccsd-n4").Suite.paper_qubits;
        Alcotest.check_raises "raises" Not_found (fun () -> ignore (Suite.find "nope")));
    case "lowered circuits contain only isa gates" (fun () ->
        List.iter
          (fun name ->
            let c = Suite.lowered (Suite.find name) in
            check_bool name true
              (List.for_all
                 (fun g -> Qgate.Decompose.isa_kind g.Gate.kind)
                 (Circuit.gates c)))
          [ "maxcut-line"; "sqrt-n3"; "uccsd-n4"; "ising-n30" ]) ]

let suites =
  [ ("qapps.graphs", graphs_cases);
    ("qapps.qaoa", qaoa_cases);
    ("qapps.ising", ising_cases);
    ("qapps.sqrt", sqrt_cases);
    ("qapps.uccsd", uccsd_cases);
    ("qapps.characteristics", characteristics_cases);
    ("qapps.suite", suite_cases) ]
