(* tests for topologies, placement and routing *)

open Qmap
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit

let topology_cases =
  [ case "line connectivity" (fun () ->
        let t = Topology.line 5 in
        check_bool "adjacent" true (Topology.connected t 2 3);
        check_bool "not adjacent" false (Topology.connected t 0 2));
    case "full connectivity" (fun () ->
        let t = Topology.full 4 in
        check_bool "any pair" true (Topology.connected t 0 3);
        check_bool "not self" false (Topology.connected t 1 1));
    case "grid_for covers" (fun () ->
        let t = Topology.grid_for 7 in
        check_bool "enough sites" true (Topology.n_sites t >= 7));
    case "path endpoints and adjacency" (fun () ->
        let t = Topology.grid_for 9 in
        let p = Topology.path t 0 8 in
        check_int "starts at 0" 0 (List.hd p);
        check_int "ends at 8" 8 (List.nth p (List.length p - 1));
        let rec steps = function
          | a :: (b :: _ as rest) ->
            check_bool "each hop adjacent" true (Topology.connected t a b);
            steps rest
          | _ -> ()
        in
        steps p);
    case "distance on line" (fun () ->
        check_int "0 to 4" 4 (Topology.distance (Topology.line 5) 0 4)) ]

let placement_cases =
  [ case "identity placement" (fun () ->
        let p = Placement.identity ~n_logical:3 (Topology.line 5) in
        check_int "q1 on site 1" 1 (Placement.site_of p 1);
        check_bool "consistent" true (Placement.is_consistent p);
        check_bool "site 4 empty" true (Placement.logical_at p 4 = None));
    case "too small device raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Placement.identity: device too small") (fun () ->
            ignore (Placement.identity ~n_logical:5 (Topology.line 3))));
    case "initial placement is a valid assignment" (fun () ->
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let p = Placement.initial (Topology.grid_for 20) circuit in
        check_bool "consistent" true (Placement.is_consistent p));
    case "initial placement puts interacting qubits close" (fun () ->
        (* a line interaction graph placed on a grid: average distance of
           interacting pairs must be far below random placement (~3.0) *)
        let circuit = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-line") in
        let topo = Topology.grid_for 20 in
        let p = Placement.initial topo circuit in
        let interaction = Circuit.interaction_graph circuit in
        let dists =
          List.map
            (fun (u, v, _) ->
              float_of_int
                (Topology.distance topo (Placement.site_of p u) (Placement.site_of p v)))
            (Qgraph.Graph.edges interaction)
        in
        let mean = List.fold_left ( +. ) 0. dists /. float_of_int (List.length dists) in
        check_bool "mean distance < 1.7" true (mean < 1.7));
    case "apply_swap exchanges occupants" (fun () ->
        let p = Placement.identity ~n_logical:2 (Topology.line 3) in
        let p = Placement.apply_swap p 0 2 in
        check_int "q0 moved" 2 (Placement.site_of p 0);
        check_bool "consistent" true (Placement.is_consistent p);
        check_bool "site 0 now empty" true (Placement.logical_at p 0 = None));
    case "snake order visits adjacent cells" (fun () ->
        let topo = Topology.grid_for 9 in
        let order = Placement.site_order topo in
        let g = Topology.graph topo in
        for k = 0 to Array.length order - 2 do
          check_bool "consecutive adjacent" true
            (Qgraph.Graph.has_edge g order.(k) order.(k + 1))
        done) ]

let router_cases =
  [ case "already-local circuit unchanged" (fun () ->
        let c = Circuit.make 3 [ Gate.cnot 0 1; Gate.cnot 1 2 ] in
        let placement = Placement.identity ~n_logical:3 (Topology.line 3) in
        let routed, _ = Router.route_circuit ~placement ~topology:(Topology.line 3) c in
        check_int "no swaps" 2 (Circuit.n_gates routed));
    case "inserts swaps for distant pair" (fun () ->
        let c = Circuit.make 4 [ Gate.cnot 0 3 ] in
        let placement = Placement.identity ~n_logical:4 (Topology.line 4) in
        let routed, final = Router.route_circuit ~placement ~topology:(Topology.line 4) c in
        check_bool "swaps added" true (Circuit.n_gates routed > 1);
        check_bool "topology respected" true
          (Router.respects_topology ~topology:(Topology.line 4) routed);
        check_bool "final placement consistent" true (Placement.is_consistent final));
    case "routing preserves semantics up to final placement" (fun () ->
        (* undo the final permutation with swaps and compare unitaries *)
        let c =
          Circuit.make 4
            [ Gate.h 0; Gate.cnot 0 3; Gate.rz 0.7 3; Gate.cnot 1 2; Gate.cnot 0 2 ]
        in
        let topology = Topology.line 4 in
        let placement = Placement.identity ~n_logical:4 topology in
        let routed, final = Router.route_circuit ~placement ~topology c in
        (* routed = P . logical, with P the permutation sending logical
           qubit q's bit to its final site *)
        let perm = Array.init 4 (fun q -> Placement.site_of final q) in
        let remap idx =
          let out = ref 0 in
          for q = 0 to 3 do
            if (idx lsr (3 - q)) land 1 = 1 then
              out := !out lor (1 lsl (3 - perm.(q)))
          done;
          !out
        in
        let p =
          Qnum.Cmat.init 16 16 (fun r c ->
              if r = remap c then Qnum.Cx.one else Qnum.Cx.zero)
        in
        let u_routed = Circuit.unitary routed in
        let u_expected = Qnum.Cmat.mul p (Circuit.unitary c) in
        check_mat_phase ~eps:1e-8 "semantics" u_expected u_routed);
    case "full topology never inserts swaps" (fun () ->
        let c = Circuit.make 5 [ Gate.cnot 0 4; Gate.cnot 1 3 ] in
        let routed, _ = Router.route_circuit ~topology:(Topology.full 5) c in
        check_int "same gates" 2 (Circuit.n_gates routed));
    case "benchmark circuit routes onto grid" (fun () ->
        let c = Qapps.Suite.lowered (Qapps.Suite.find "maxcut-cluster") in
        let topology = Topology.grid_for 30 in
        let routed, _ = Router.route_circuit ~topology c in
        check_bool "respects topology" true (Router.respects_topology ~topology routed));
    qcheck ~count:20 "random circuits route validly onto lines"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 5 12 in
        let c = Circuit.make 5 gates in
        let topology = Topology.line 5 in
        let routed, final = Router.route_circuit ~topology c in
        Router.respects_topology ~topology routed && Placement.is_consistent final) ]

let suites =
  [ ("qmap.topology", topology_cases);
    ("qmap.placement", placement_cases);
    ("qmap.router", router_cases) ]
