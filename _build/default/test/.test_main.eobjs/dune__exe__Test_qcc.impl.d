test/test_qcc.ml: Alcotest List Printf QCheck Qapps Qcc Qcontrol Qfront Qgate Qgraph Qmap Qnum Qsched Qsim Util
