test/test_qgdg.ml: Alcotest Comm_group Commute Diagonal Gdg Hashtbl Inst List Option Printf QCheck Qapps Qgate Qgdg Qgraph Qnum Util
