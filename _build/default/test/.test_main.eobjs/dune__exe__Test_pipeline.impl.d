test/test_pipeline.ml: Float List Printf QCheck Qcc Qgate Qgraph Qmap Qnum Qsched Util
