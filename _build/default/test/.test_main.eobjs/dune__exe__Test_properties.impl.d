test/test_properties.ml: Float List QCheck Qapps Qcc Qcontrol Qgate Qgdg Qgraph Qnum Qsched Util
