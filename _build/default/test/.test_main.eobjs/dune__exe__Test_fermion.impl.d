test/test_fermion.ml: Alcotest Fermion List Qapps Qgate Qnum Uccsd Util
