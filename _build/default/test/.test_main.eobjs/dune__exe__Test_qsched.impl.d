test/test_qsched.ml: Alcotest Asap Cls List QCheck Qapps Qgate Qgdg Qgraph Qsched Schedule Util
