test/test_tools.ml: Alcotest Array Float List Qapps Qcc Qcontrol Qgate Qgdg Qmap Qnum Qopt Qsched Qviz Str String Util
