test/graphs_helper.ml: List Qgraph
