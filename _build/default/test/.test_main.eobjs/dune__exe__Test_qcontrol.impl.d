test/test_qcontrol.ml: Alcotest Device Float Grape Hamiltonian Latency_model List Printf Pulse QCheck Qcontrol Qgate Qgraph Qnum String Util Weyl
