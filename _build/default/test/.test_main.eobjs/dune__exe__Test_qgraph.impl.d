test/test_qgraph.ml: Alcotest Array Float Graph Graphs_helper Grid List Matching Partition QCheck Qgraph Rand Util
