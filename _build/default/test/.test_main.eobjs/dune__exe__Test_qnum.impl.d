test/test_qnum.ml: Alcotest Array Cmat Cx Eig Expm Float Gen List Poly QCheck Qgate Qgraph Qnum Util Vec
