test/test_qarith.ml: Adder Alcotest Array Comparator List Mcx Qarith Qgate Rev_sim Square Util
