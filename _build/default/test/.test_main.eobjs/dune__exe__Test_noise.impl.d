test/test_noise.ml: Alcotest Array Float Lazy List Printf Qapps Qcc Qcontrol Qgate Qgdg Qgraph Qmap Qnum Qsched Qsim Util
