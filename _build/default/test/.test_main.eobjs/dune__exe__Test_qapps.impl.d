test/test_qapps.ml: Alcotest Array Characteristics Float Graphs Ising List Qaoa Qapps Qgate Qgraph Qnum Qsim Sqrt_poly Suite Uccsd Util
