test/test_qagg.ml: Action Aggregator List QCheck Qagg Qapps Qcontrol Qgate Qgdg Qgraph Util
