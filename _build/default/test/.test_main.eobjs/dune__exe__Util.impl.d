test/util.ml: Alcotest Cmat Float List QCheck QCheck_alcotest Qgate Qgraph Qnum Random
