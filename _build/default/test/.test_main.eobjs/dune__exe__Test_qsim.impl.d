test/test_qsim.ml: Alcotest List Pulse_sim Qcontrol Qgate Qgraph Qnum Qsim State Util Verify
