test/test_qgate.ml: Alcotest Circuit Decompose Float Gate List Pauli Printf Qapps Qasm Qgate Qgraph Qnum Unitary Util
