test/test_qmap.ml: Alcotest Array List Placement QCheck Qapps Qgate Qgraph Qmap Qnum Router Topology Util
