(* tests for the fermionic operator algebra and both qubit encodings *)

open Qapps
open Util
module Cx = Qnum.Cx
module Cmat = Qnum.Cmat

let encodings = [ Fermion.Jordan_wigner; Fermion.Bravyi_kitaev ]

let anti x y = Cmat.add (Cmat.mul x y) (Cmat.mul y x)

let fermion_cases =
  [ case "bravyi-kitaev index sets (known values, n = 8)" (fun () ->
        (* mode 0 updates qubits 1, 3, 7 in the Fenwick tree over 8 modes *)
        Alcotest.(check (list int)) "update 0" [ 1; 3; 7 ] (Fermion.update_set ~n:8 0);
        Alcotest.(check (list int)) "update 2" [ 3; 7 ] (Fermion.update_set ~n:8 2);
        Alcotest.(check (list int)) "parity 4" [ 3 ] (Fermion.parity_set ~n:8 4);
        Alcotest.(check (list int)) "parity 5" [ 4; 3 ] (Fermion.parity_set ~n:8 5);
        Alcotest.(check (list int)) "flip 3" [ 2; 1 ] (Fermion.flip_set ~n:8 3);
        Alcotest.(check (list int)) "flip 2" [] (Fermion.flip_set ~n:8 2));
    case "canonical anticommutation relations" (fun () ->
        List.iter
          (fun enc ->
            let n = 4 in
            let dim = 1 lsl n in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                let ai = Fermion.matrix_of_sum (Fermion.lowering enc ~n i) in
                let aj = Fermion.matrix_of_sum (Fermion.lowering enc ~n j) in
                let ajd = Fermion.matrix_of_sum (Fermion.raising enc ~n j) in
                check_mat ~eps:1e-9 "anticommutator zero" (Cmat.zeros dim dim) (anti ai aj);
                let expect = if i = j then Cmat.identity dim else Cmat.zeros dim dim in
                check_mat ~eps:1e-9 "anticommutator delta" expect (anti ai ajd)
              done
            done)
          encodings);
    case "number operator is a projector" (fun () ->
        List.iter
          (fun enc ->
            let n = 4 in
            let num = Fermion.matrix_of_sum (Fermion.number_operator enc ~n 2) in
            check_mat ~eps:1e-9 "n² = n" num (Cmat.mul num num);
            check_bool "hermitian" true (Cmat.is_hermitian ~eps:1e-9 num))
          encodings);
    case "encodings are isospectral" (fun () ->
        (* total number operator has the same trace and square trace *)
        let n = 4 in
        let total enc =
          List.fold_left
            (fun acc j ->
              Cmat.add acc (Fermion.matrix_of_sum (Fermion.number_operator enc ~n j)))
            (Cmat.zeros 16 16)
            (List.init n (fun j -> j))
        in
        let jw = total Fermion.Jordan_wigner and bk = total Fermion.Bravyi_kitaev in
        check_bool "trace" true (Cx.equal ~eps:1e-9 (Cmat.trace jw) (Cmat.trace bk));
        check_bool "trace of square" true
          (Cx.equal ~eps:1e-9
             (Cmat.trace (Cmat.mul jw jw))
             (Cmat.trace (Cmat.mul bk bk))));
    case "bravyi-kitaev strings are lighter than jordan-wigner at scale" (fun () ->
        (* the BK advantage: O(log n) weight vs O(n) chains *)
        let n = 16 in
        let weight enc j =
          List.fold_left
            (fun acc (_, p) -> max acc (Qgate.Pauli.weight p))
            0
            (Fermion.lowering enc ~n j)
        in
        check_bool "lighter on the last mode" true
          (weight Fermion.Bravyi_kitaev (n - 1) < weight Fermion.Jordan_wigner (n - 1)));
    case "excitation rotations reproduce the exact exponential" (fun () ->
        List.iter
          (fun enc ->
            let n = 4 and theta = 0.37 in
            let rotations =
              Fermion.single_excitation_rotations enc ~n ~theta ~i:0 ~a:2
            in
            let gates =
              List.concat_map
                (fun (angle, p) -> Qgate.Pauli.rotation_circuit ~theta:angle p)
                rotations
            in
            let generator =
              Fermion.add_sums
                (Fermion.mul_sums (Fermion.raising enc ~n 2) (Fermion.lowering enc ~n 0))
                (Fermion.scale_sum (Cx.of_float (-1.))
                   (Fermion.mul_sums (Fermion.raising enc ~n 0)
                      (Fermion.lowering enc ~n 2)))
            in
            let exact =
              Qnum.Expm.expm (Cmat.scale_real theta (Fermion.matrix_of_sum generator))
            in
            check_mat_phase ~eps:1e-7
              (Fermion.encoding_name enc)
              exact
              (Qgate.Circuit.unitary (Qgate.Circuit.make n gates)))
          encodings);
    case "double excitation rotations are exact too" (fun () ->
        List.iter
          (fun enc ->
            let n = 4 and theta = 0.21 in
            let rotations =
              Fermion.double_excitation_rotations enc ~n ~theta ~i:0 ~j:1 ~a:2 ~b:3
            in
            check_int "eight strings" 8 (List.length rotations);
            let gates =
              List.concat_map
                (fun (angle, p) -> Qgate.Pauli.rotation_circuit ~theta:angle p)
                rotations
            in
            let u = Qgate.Circuit.unitary (Qgate.Circuit.make n gates) in
            check_bool "unitary" true (Cmat.is_unitary ~eps:1e-8 u))
          encodings);
    case "repeated modes raise" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Fermion.double_excitation_rotations: modes must be distinct")
          (fun () ->
            ignore
              (Fermion.double_excitation_rotations Fermion.Jordan_wigner ~n:4
                 ~theta:0.1 ~i:0 ~j:0 ~a:2 ~b:3)));
    case "uccsd under both encodings is unitary and distinct" (fun () ->
        let jw = Uccsd.circuit ~encoding:Fermion.Jordan_wigner 4 in
        let bk = Uccsd.circuit ~encoding:Fermion.Bravyi_kitaev 4 in
        check_bool "jw unitary" true
          (Cmat.is_unitary ~eps:1e-8 (Qgate.Circuit.unitary jw));
        check_bool "bk unitary" true
          (Cmat.is_unitary ~eps:1e-8 (Qgate.Circuit.unitary bk));
        check_bool "different circuits" true
          (Qgate.Circuit.gates jw <> Qgate.Circuit.gates bk)) ]

let suites = [ ("qapps.fermion", fermion_cases) ]
