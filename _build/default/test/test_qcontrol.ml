(* tests for the control layer: device, pulses, Hamiltonians, Weyl
   coordinates, GRAPE and the latency model *)

open Qcontrol
open Util
module Gate = Qgate.Gate

let device = Device.default
let quarter_pi = Float.pi /. 4.

let device_cases =
  [ case "default limits" (fun () ->
        check_float "mu2" 0.02 device.Device.mu2;
        check_float "mu1 is 5x mu2" (5. *. device.Device.mu2) device.Device.mu1);
    case "rotation time geodesic reduction" (fun () ->
        (* 2π - 0.3 is geodesically 0.3 *)
        check_float ~eps:1e-9 "wraps"
          (Device.one_qubit_rotation_time device 0.3)
          (Device.one_qubit_rotation_time device ((2. *. Float.pi) -. 0.3)));
    case "rotation time of pi" (fun () ->
        check_float ~eps:1e-9 "pi rotation" (Float.pi /. 0.2)
          (Device.one_qubit_rotation_time device Float.pi));
    case "negative limits raise" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Device.make: non-positive limit")
          (fun () -> ignore (Device.make ~mu2:(-1.) ~mu1:0.1 ()))) ]

let pulse_cases =
  [ case "duration" (fun () ->
        let p = Pulse.constant ~dt:0.5 ~labels:[| "x0" |] ~steps:8 [| 0.1 |] in
        check_float "4 ns" 4. (Pulse.duration p);
        check_int "steps" 8 (Pulse.n_steps p));
    case "concat" (fun () ->
        let a = Pulse.constant ~dt:1. ~labels:[| "x0" |] ~steps:3 [| 0.1 |] in
        let b = Pulse.constant ~dt:1. ~labels:[| "x0" |] ~steps:2 [| -0.1 |] in
        let c = Pulse.concat a b in
        check_int "steps" 5 (Pulse.n_steps c);
        check_float "max amp" 0.1 (Pulse.max_amplitude c "x0"));
    case "concat mismatched labels raises" (fun () ->
        let a = Pulse.constant ~dt:1. ~labels:[| "x0" |] ~steps:1 [| 0.1 |] in
        let b = Pulse.constant ~dt:1. ~labels:[| "y0" |] ~steps:1 [| 0.1 |] in
        Alcotest.check_raises "raises" (Invalid_argument "Pulse.concat: channel mismatch")
          (fun () -> ignore (Pulse.concat a b)));
    case "clip" (fun () ->
        let p = Pulse.constant ~dt:1. ~labels:[| "x0" |] ~steps:2 [| 0.5 |] in
        let clipped = Pulse.clip ~limits:(fun _ -> 0.2) p in
        check_float "clipped" 0.2 (Pulse.max_amplitude clipped "x0"));
    case "unknown channel raises" (fun () ->
        let p = Pulse.constant ~dt:1. ~labels:[| "x0" |] ~steps:1 [| 0.1 |] in
        Alcotest.check_raises "raises" Not_found (fun () ->
            ignore (Pulse.max_amplitude p "zz"))) ]

let hamiltonian_cases =
  [ case "channel count" (fun () ->
        let chans =
          Hamiltonian.channels ~device ~n_qubits:3
            ~couplings:(Hamiltonian.line_couplings 3)
        in
        (* 2 drives per qubit + 2 couplings *)
        check_int "count" 8 (List.length chans));
    case "limits per channel kind" (fun () ->
        let chans =
          Hamiltonian.channels ~device ~n_qubits:2 ~couplings:[ (0, 1) ]
        in
        List.iter
          (fun ch ->
            let expected =
              if String.length ch.Hamiltonian.label >= 2
                 && String.sub ch.Hamiltonian.label 0 2 = "xy"
              then device.Device.mu2
              else device.Device.mu1
            in
            check_float ch.Hamiltonian.label expected ch.Hamiltonian.limit)
          chans);
    case "operators hermitian" (fun () ->
        let chans =
          Hamiltonian.channels ~device ~n_qubits:2 ~couplings:[ (0, 1) ]
        in
        List.iter
          (fun ch ->
            check_bool ch.Hamiltonian.label true
              (Qnum.Cmat.is_hermitian ~eps:1e-12 ch.Hamiltonian.operator))
          chans);
    case "xy exchange drives iswap" (fun () ->
        (* exp(+i (π/4) (XX+YY)) = iSWAP: evolve with amplitude -µ for
           t = π/(4µ) *)
        let h = Hamiltonian.xy_exchange ~n_qubits:2 0 1 in
        let t = Float.pi /. (4. *. device.Device.mu2) in
        let u = Qnum.Expm.propagator (Qnum.Cmat.scale_real (-.device.Device.mu2) h) t in
        check_mat_phase ~eps:1e-8 "iswap" (Qgate.Unitary.of_kind Gate.Iswap) u);
    case "repeated coupling raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Hamiltonian.channels: repeated coupling") (fun () ->
            ignore
              (Hamiltonian.channels ~device ~n_qubits:2 ~couplings:[ (0, 1); (1, 0) ])));
    case "total sums amplitudes" (fun () ->
        let chans = Hamiltonian.channels ~device ~n_qubits:1 ~couplings:[] in
        let h = Hamiltonian.total chans [| 0.3; 0. |] in
        check_mat ~eps:1e-12 "0.3 X"
          (Qnum.Cmat.scale_real 0.3 Qgate.Unitary.pauli_x)
          h) ]

let weyl_known =
  [ ("cnot", Qgate.Unitary.of_kind Gate.Cnot, (quarter_pi, 0., 0.));
    ("cz", Qgate.Unitary.of_kind Gate.Cz, (quarter_pi, 0., 0.));
    ("iswap", Qgate.Unitary.of_kind Gate.Iswap, (quarter_pi, quarter_pi, 0.));
    ("swap", Qgate.Unitary.of_kind Gate.Swap, (quarter_pi, quarter_pi, quarter_pi));
    ("sqrt_iswap", Qgate.Unitary.of_kind Gate.Sqrt_iswap,
     (quarter_pi /. 2., quarter_pi /. 2., 0.));
    ("identity", Qnum.Cmat.identity 4, (0., 0., 0.));
    ("rzz(1.0)", Qgate.Unitary.of_kind (Gate.Rzz 1.0), (0.5, 0., 0.)) ]

let weyl_cases =
  List.map
    (fun (name, u, (e1, e2, e3)) ->
      case (Printf.sprintf "coordinates of %s" name) (fun () ->
          let c = Weyl.coordinates u in
          check_float ~eps:1e-5 "c1" e1 c.Weyl.c1;
          check_float ~eps:1e-5 "c2" e2 c.Weyl.c2;
          check_float ~eps:1e-5 "c3" e3 c.Weyl.c3))
    weyl_known
  @ [ case "non-unitary raises" (fun () ->
          Alcotest.check_raises "raises"
            (Invalid_argument "Weyl.coordinates: matrix is not unitary")
            (fun () ->
              ignore (Weyl.coordinates (Qnum.Cmat.scale_real 2. (Qnum.Cmat.identity 4)))));
      case "wrong size raises" (fun () ->
          Alcotest.check_raises "raises"
            (Invalid_argument "Weyl.coordinates: expected a 4x4 matrix")
            (fun () -> ignore (Weyl.coordinates (Qnum.Cmat.identity 2))));
      case "interaction times at anchors" (fun () ->
          check_float ~eps:0.1 "iswap" 39.27 (Weyl.interaction_time device Weyl.iswap_coords);
          check_float ~eps:0.1 "cnot" 39.27 (Weyl.interaction_time device Weyl.cnot_coords);
          check_float ~eps:0.1 "swap" 58.9 (Weyl.interaction_time device Weyl.swap_coords));
      case "canonical gate reproduces its coordinates" (fun () ->
          let c = { Weyl.c1 = 0.5; c2 = 0.3; c3 = 0.1 } in
          let back = Weyl.coordinates (Weyl.canonical_gate c) in
          check_float ~eps:1e-6 "c1" c.Weyl.c1 back.Weyl.c1;
          check_float ~eps:1e-6 "c2" c.Weyl.c2 back.Weyl.c2;
          check_float ~eps:1e-6 "c3" c.Weyl.c3 back.Weyl.c3);
      qcheck ~count:40 "coordinates invariant under local gates"
        QCheck.(int_range 0 100000)
        (fun seed ->
          let rng = Qgraph.Rand.create seed in
          let u = random_unitary rng 2 10 in
          let local q =
            Qgate.Unitary.of_gates ~n_qubits:2
              [ Qgate.Gate.rz (Qgraph.Rand.float rng 6.) q;
                Qgate.Gate.ry (Qgraph.Rand.float rng 6.) q ]
          in
          let dressed = Qnum.Cmat.mul (local 0) (Qnum.Cmat.mul u (local 1)) in
          let a = Weyl.coordinates u and b = Weyl.coordinates dressed in
          (* near-degenerate spectra limit root-finder accuracy to ~1e-4
             and boundary snapping adds up to 5e-4; 2e-3 rad is 0.1 ns *)
          Float.abs (a.Weyl.c1 -. b.Weyl.c1) < 2e-3
          && Float.abs (a.Weyl.c2 -. b.Weyl.c2) < 2e-3
          && Float.abs (a.Weyl.c3 -. b.Weyl.c3) < 2e-3);
      qcheck ~count:40 "coordinates live in the chamber"
        QCheck.(int_range 0 100000)
        (fun seed ->
          let u = random_unitary (Qgraph.Rand.create seed) 2 12 in
          let c = Weyl.coordinates u in
          c.Weyl.c1 >= c.Weyl.c2 && c.Weyl.c2 >= c.Weyl.c3 && c.Weyl.c3 >= 0.
          && c.Weyl.c1 <= quarter_pi +. 1e-9) ]

let latency_cases =
  let gt g = Latency_model.gate_time device g in
  [ case "table 1 anchors" (fun () ->
        check_float ~eps:0.1 "cnot" 47.12 (gt (Gate.cnot 0 1));
        check_float ~eps:0.1 "swap" 58.90 (gt (Gate.swap 0 1));
        check_float ~eps:0.1 "iswap" 39.27 (gt (Gate.iswap 0 1));
        check_float ~eps:0.1 "h" 15.71 (gt (Gate.h 0));
        check_float ~eps:0.1 "rx(1.26)" 6.3 (gt (Gate.rx 1.26 0)));
    case "identity gate free" (fun () -> check_float "id" 0. (gt (Gate.id 0)));
    case "ccx costed via decomposition" (fun () ->
        check_bool "order of magnitude" true
          (gt (Gate.ccx 0 1 2) > 250. && gt (Gate.ccx 0 1 2) < 400.));
    case "zz block matches paper G4" (fun () ->
        let zz = [ Gate.cnot 0 1; Gate.rz 5.67 1; Gate.cnot 0 1 ] in
        let t = Latency_model.block_time device zz in
        check_bool "30-32 ns (paper 31.4)" true (t > 29. && t < 33.));
    case "block never beats interaction bound" (fun () ->
        let gates = [ Gate.cnot 0 1 ] in
        check_bool "cnot block >= 39.27" true
          (Latency_model.block_time device gates >= 39.2));
    case "block never exceeds isa critical path" (fun () ->
        let gates =
          [ Gate.h 0; Gate.cnot 0 1; Gate.t 1; Gate.cnot 1 2; Gate.rz 0.3 2 ]
        in
        check_bool "bounded" true
          (Latency_model.block_time device gates
           <= Latency_model.isa_critical_path device gates +. 1e-9));
    case "wider than limit falls back to isa" (fun () ->
        let gates = List.init 4 (fun k -> Gate.cnot k (k + 1)) in
        check_float ~eps:1e-9 "fallback"
          (Latency_model.isa_critical_path device gates)
          (Latency_model.block_time ~width_limit:3 device gates));
    case "empty block raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Latency_model.block_time: empty block") (fun () ->
            ignore (Latency_model.block_time device [])));
    case "isa critical path parallelism" (fun () ->
        let gates = [ Gate.h 0; Gate.h 1 ] in
        check_float ~eps:1e-9 "parallel"
          (gt (Gate.h 0))
          (Latency_model.isa_critical_path device gates));
    case "segments split on interleaving" (fun () ->
        let gates = [ Gate.cnot 0 1; Gate.cnot 1 2; Gate.cnot 0 1 ] in
        check_int "three segments" 3 (List.length (Latency_model.segments gates)));
    case "segments keep same-pair runs together" (fun () ->
        let gates = [ Gate.cnot 0 1; Gate.rz 0.3 1; Gate.cnot 0 1; Gate.h 0 ] in
        check_int "one segment" 1 (List.length (Latency_model.segments gates)));
    case "segments partition the gates" (fun () ->
        let gates =
          [ Gate.h 0; Gate.cnot 0 1; Gate.cnot 2 3; Gate.t 2; Gate.cnot 1 2 ]
        in
        let segs = Latency_model.segments gates in
        check_int "total gates" (List.length gates)
          (List.length (List.concat segs)));
    case "one_qubit_unitary_time of H" (fun () ->
        check_float ~eps:1e-6 "pi rotation" (Float.pi /. 0.2)
          (Latency_model.one_qubit_unitary_time device Qgate.Unitary.hadamard));
    case "two_qubit local content only" (fun () ->
        let u = Qnum.Cmat.kron Qgate.Unitary.hadamard (Qnum.Cmat.identity 2) in
        check_float ~eps:1e-6 "local H" (Float.pi /. 0.2)
          (Latency_model.two_qubit_unitary_time device u));
    qcheck ~count:30 "block time monotone bounds" QCheck.(int_range 0 10000)
      (fun seed ->
        let rng = Qgraph.Rand.create seed in
        let gates = random_unitary_gates rng 3 8 in
        let t = Latency_model.block_time device gates in
        t >= 0. && t <= Latency_model.isa_critical_path device gates +. 1e-9) ]

let grape_cases =
  [ slow_case "converges for X gate" (fun () ->
        let p =
          { Grape.n_qubits = 1; couplings = []; target = Qgate.Unitary.pauli_x;
            duration = 20.; n_steps = 40; device }
        in
        let r = Grape.optimize ~max_iterations:600 p in
        check_bool "fidelity >= 0.999" true (r.Grape.fidelity >= 0.999));
    slow_case "converges for hadamard" (fun () ->
        let p =
          { Grape.n_qubits = 1; couplings = []; target = Qgate.Unitary.hadamard;
            duration = 20.; n_steps = 40; device }
        in
        let r = Grape.optimize ~max_iterations:800 p in
        check_bool "fidelity >= 0.999" true (r.Grape.fidelity >= 0.999));
    slow_case "converges for iswap" (fun () ->
        let p =
          { Grape.n_qubits = 2; couplings = [ (0, 1) ];
            target = Qgate.Unitary.of_kind Gate.Iswap; duration = 50.;
            n_steps = 50; device }
        in
        let r = Grape.optimize ~max_iterations:1000 p in
        check_bool "fidelity >= 0.999" true (r.Grape.fidelity >= 0.999));
    slow_case "pulse propagator matches reported fidelity" (fun () ->
        let target = Qgate.Unitary.of_kind (Gate.Rzz 5.67) in
        let p =
          { Grape.n_qubits = 2; couplings = [ (0, 1) ]; target; duration = 45.;
            n_steps = 45; device }
        in
        let r = Grape.optimize ~max_iterations:800 ~target_fidelity:0.99 p in
        let u =
          Grape.propagator_of_pulse ~device ~n_qubits:2 ~couplings:[ (0, 1) ]
            r.Grape.pulse
        in
        check_float ~eps:1e-6 "consistent" r.Grape.fidelity (Qnum.Cmat.fidelity target u));
    case "respects amplitude limits" (fun () ->
        let p =
          { Grape.n_qubits = 1; couplings = []; target = Qgate.Unitary.pauli_x;
            duration = 16.; n_steps = 16; device }
        in
        let r = Grape.optimize ~max_iterations:50 p in
        check_bool "x0 within mu1" true
          (Pulse.max_amplitude r.Grape.pulse "x0" <= device.Device.mu1 +. 1e-12));
    case "deterministic for fixed seed" (fun () ->
        let p =
          { Grape.n_qubits = 1; couplings = []; target = Qgate.Unitary.pauli_y;
            duration = 18.; n_steps = 18; device }
        in
        let a = Grape.optimize ~seed:3 ~max_iterations:40 p in
        let b = Grape.optimize ~seed:3 ~max_iterations:40 p in
        check_float ~eps:0. "same fidelity" a.Grape.fidelity b.Grape.fidelity);
    slow_case "minimum duration search brackets the model" (fun () ->
        (* the shortest GRAPE-feasible pulse for a diagonal block must be
           at least the Weyl interaction bound and at most the bracket *)
        let target = Qgate.Unitary.of_kind (Gate.Rzz 1.2) in
        let t_int =
          Weyl.interaction_time device (Weyl.coordinates target)
        in
        let p =
          { Grape.n_qubits = 2; couplings = [ (0, 1) ]; target;
            duration = 60.; n_steps = 40; device }
        in
        let duration, r = Grape.minimum_duration_search ~fidelity:0.98 ~resolution:6. p in
        check_bool "converged at the found duration" true r.Grape.converged;
        check_bool "above interaction bound" true (duration >= t_int -. 6.);
        check_bool "below bracket" true (duration <= 60.));
    case "too-short duration fails to converge" (fun () ->
        (* an X gate needs ~15.7 ns at full drive; 4 ns cannot reach it *)
        let p =
          { Grape.n_qubits = 1; couplings = []; target = Qgate.Unitary.pauli_x;
            duration = 4.; n_steps = 8; device }
        in
        let r = Grape.optimize ~max_iterations:300 p in
        check_bool "not converged" false r.Grape.converged) ]

let suites =
  [ ("qcontrol.device", device_cases);
    ("qcontrol.pulse", pulse_cases);
    ("qcontrol.hamiltonian", hamiltonian_cases);
    ("qcontrol.weyl", weyl_cases);
    ("qcontrol.latency_model", latency_cases);
    ("qcontrol.grape", grape_cases) ]
