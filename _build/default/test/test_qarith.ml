(* tests for the reversible-arithmetic substrate *)

open Qarith
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit

let rev_sim_cases =
  [ case "x flips a bit" (fun () ->
        let c = Circuit.make 2 [ Gate.x 1 ] in
        check_int "flip" 1 (Rev_sim.run_int c ~n_qubits:2 0));
    case "cnot copies" (fun () ->
        let c = Circuit.make 2 [ Gate.cnot 0 1 ] in
        check_int "10 -> 11" 3 (Rev_sim.run_int c ~n_qubits:2 2);
        check_int "00 -> 00" 0 (Rev_sim.run_int c ~n_qubits:2 0));
    case "ccx truth table" (fun () ->
        let c = Circuit.make 3 [ Gate.ccx 0 1 2 ] in
        check_int "110 -> 111" 7 (Rev_sim.run_int c ~n_qubits:3 6);
        check_int "100 -> 100" 4 (Rev_sim.run_int c ~n_qubits:3 4));
    case "swap exchanges" (fun () ->
        let c = Circuit.make 2 [ Gate.swap 0 1 ] in
        check_int "10 -> 01" 1 (Rev_sim.run_int c ~n_qubits:2 2));
    case "non-classical raises" (fun () ->
        check_bool "raises" true
          (try
             ignore (Rev_sim.run (Circuit.make 1 [ Gate.h 0 ]) [| false |]);
             false
           with Invalid_argument _ -> true));
    case "is_classical" (fun () ->
        check_bool "ccx" true (Rev_sim.is_classical (Gate.ccx 0 1 2));
        check_bool "h" false (Rev_sim.is_classical (Gate.h 0)));
    case "bit conversions" (fun () ->
        check_int "roundtrip" 11 (Rev_sim.int_of_bits (Rev_sim.bits_of_int ~width:4 11));
        Alcotest.(check (list bool)) "lsb first" [ true; true; false; true ]
          (Rev_sim.bits_of_int ~width:4 11)) ]

let run_adder n a b =
  let a_reg = List.init n (fun k -> k) and b_reg = List.init n (fun k -> n + k) in
  let anc = 2 * n and cout = (2 * n) + 1 in
  let circ =
    Circuit.make ((2 * n) + 2)
      (Adder.ripple_add ~a:a_reg ~b:b_reg ~ancilla:anc ~carry_out:cout)
  in
  let input = Array.make ((2 * n) + 2) false in
  List.iteri (fun k q -> input.(q) <- (a lsr k) land 1 = 1) a_reg;
  List.iteri (fun k q -> input.(q) <- (b lsr k) land 1 = 1) b_reg;
  let out = Rev_sim.run circ input in
  let b_out = Rev_sim.int_of_bits (List.map (fun q -> out.(q)) b_reg) in
  let a_out = Rev_sim.int_of_bits (List.map (fun q -> out.(q)) a_reg) in
  let carry = out.(cout) in
  let ancilla_clean = not out.(anc) in
  (a_out, b_out, carry, ancilla_clean)

let adder_cases =
  [ case "exhaustive 3-bit addition" (fun () ->
        for a = 0 to 7 do
          for b = 0 to 7 do
            let a_out, b_out, carry, clean = run_adder 3 a b in
            check_int "sum" ((a + b) mod 8) b_out;
            check_bool "carry" ((a + b) >= 8) carry;
            check_int "a preserved" a a_out;
            check_bool "ancilla restored" true clean
          done
        done);
    case "modular adder drops carry" (fun () ->
        let n = 3 in
        let a_reg = List.init n (fun k -> k) and b_reg = List.init n (fun k -> n + k) in
        let circ =
          Circuit.make ((2 * n) + 1)
            (Adder.ripple_add_mod ~a:a_reg ~b:b_reg ~ancilla:(2 * n))
        in
        let input = Array.make ((2 * n) + 1) false in
        List.iteri (fun k q -> input.(q) <- (6 lsr k) land 1 = 1) a_reg;
        List.iteri (fun k q -> input.(q) <- (5 lsr k) land 1 = 1) b_reg;
        let out = Rev_sim.run circ input in
        check_int "6+5 mod 8" 3
          (Rev_sim.int_of_bits (List.map (fun q -> out.(q)) b_reg)));
    case "adder is reversible" (fun () ->
        let n = 3 in
        let a_reg = List.init n (fun k -> k) and b_reg = List.init n (fun k -> n + k) in
        let gates = Adder.ripple_add_mod ~a:a_reg ~b:b_reg ~ancilla:(2 * n) in
        let forward = Circuit.make ((2 * n) + 1) gates in
        let backward = Circuit.make ((2 * n) + 1) (List.rev gates) in
        (* MAJ/UMA blocks are made of self-inverse gates *)
        for v = 0 to 63 do
          let mid = Rev_sim.run_int forward ~n_qubits:7 (v * 2) in
          let back = Rev_sim.run_int backward ~n_qubits:7 mid in
          check_int "roundtrip" (v * 2) back
        done);
    case "register overlap raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Adder: overlapping registers")
          (fun () ->
            ignore (Adder.ripple_add_mod ~a:[ 0; 1 ] ~b:[ 1; 2 ] ~ancilla:3)));
    case "width mismatch raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Adder: registers must have equal non-zero width")
          (fun () -> ignore (Adder.ripple_add_mod ~a:[ 0 ] ~b:[ 1; 2 ] ~ancilla:3))) ]

let mcx_cases =
  [ case "two controls is toffoli" (fun () ->
        match Mcx.mcx ~controls:[ 0; 1 ] ~target:2 ~ancillas:[] with
        | [ g ] -> check_bool "ccx" true (Gate.equal (Gate.ccx 0 1 2) g)
        | _ -> Alcotest.fail "expected one gate");
    case "exhaustive 4-control mcx" (fun () ->
        let circ =
          Circuit.make 7 (Mcx.mcx ~controls:[ 0; 1; 2; 3 ] ~target:4 ~ancillas:[ 5; 6 ])
        in
        for v = 0 to 15 do
          let input = Array.make 7 false in
          List.iteri (fun k q -> input.(q) <- (v lsr k) land 1 = 1) [ 0; 1; 2; 3 ];
          let out = Rev_sim.run circ input in
          check_bool "target" (v = 15) out.(4);
          check_bool "ancillas clean" true (not out.(5) && not out.(6))
        done);
    case "too few ancillas raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Mcx.mcx: not enough ancillas")
          (fun () ->
            ignore (Mcx.mcx ~controls:[ 0; 1; 2; 3 ] ~target:4 ~ancillas:[ 5 ])));
    case "flip_zero_controls" (fun () ->
        (* value 5 = 101 (lsb first on [0;1;2]): bit 1 is zero *)
        let gates = Mcx.flip_zero_controls [ 0; 1; 2 ] ~value:5 in
        check_int "one flip" 1 (List.length gates);
        check_bool "on qubit 1" true (Gate.equal (Gate.x 1) (List.hd gates))) ]

let squarer_cases =
  [ case "exhaustive squaring up to 4 bits" (fun () ->
        List.iter
          (fun n ->
            let l = Square.layout n in
            let circ = Circuit.make l.Square.total_qubits (Square.circuit l) in
            for x = 0 to (1 lsl n) - 1 do
              let input = Array.make l.Square.total_qubits false in
              List.iteri (fun k q -> input.(q) <- (x lsr k) land 1 = 1) l.Square.x;
              let out = Rev_sim.run circ input in
              let acc = Rev_sim.int_of_bits (List.map (fun q -> out.(q)) l.Square.acc) in
              let x_back = Rev_sim.int_of_bits (List.map (fun q -> out.(q)) l.Square.x) in
              check_int "square" (x * x) acc;
              check_int "input preserved" x x_back;
              check_bool "scratch clean" true
                (List.for_all (fun q -> not out.(q)) l.Square.row && not out.(l.Square.carry))
            done)
          [ 2; 3; 4 ]);
    case "uncompute inverts" (fun () ->
        let l = Square.layout 3 in
        let circ =
          Circuit.make l.Square.total_qubits (Square.circuit l @ Square.uncompute l)
        in
        for x = 0 to 7 do
          let input = Array.make l.Square.total_qubits false in
          List.iteri (fun k q -> input.(q) <- (x lsr k) land 1 = 1) l.Square.x;
          let out = Rev_sim.run circ input in
          check_bool "identity" true (out = input)
        done);
    case "layout sizes" (fun () ->
        let l = Square.layout 3 in
        check_int "17 qubits (paper sqrt-n3)" 17 l.Square.total_qubits;
        check_int "acc width" 6 (List.length l.Square.acc));
    case "too narrow raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Square.layout: width must be at least 2") (fun () ->
            ignore (Square.layout 1))) ]

let comparator_cases =
  [ case "exhaustive 3-bit less-than" (fun () ->
        let n = 3 in
        let a_reg = List.init n (fun k -> k) and b_reg = List.init n (fun k -> n + k) in
        let ancilla = 2 * n and flag = (2 * n) + 1 in
        let circ =
          Circuit.make ((2 * n) + 2)
            (Comparator.less_than ~a:a_reg ~b:b_reg ~ancilla ~flag)
        in
        for a = 0 to 7 do
          for b = 0 to 7 do
            let input = Array.make ((2 * n) + 2) false in
            List.iteri (fun k q -> input.(q) <- (a lsr k) land 1 = 1) a_reg;
            List.iteri (fun k q -> input.(q) <- (b lsr k) land 1 = 1) b_reg;
            let out = Rev_sim.run circ input in
            check_bool "flag" (a < b) out.(flag);
            check_int "a restored" a
              (Rev_sim.int_of_bits (List.map (fun q -> out.(q)) a_reg));
            check_int "b restored" b
              (Rev_sim.int_of_bits (List.map (fun q -> out.(q)) b_reg));
            check_bool "ancilla clean" true (not out.(ancilla))
          done
        done);
    case "less-than xors a set flag" (fun () ->
        let circ =
          Circuit.make 6
            (Comparator.less_than ~a:[ 0; 1 ] ~b:[ 2; 3 ] ~ancilla:4 ~flag:5)
        in
        (* a = 1, b = 3 (a < b), flag preset to 1: must flip to 0 *)
        let input = [| true; false; true; true; false; true |] in
        check_bool "flag flipped off" false (Rev_sim.run circ input).(5));
    case "equal_const exhaustive" (fun () ->
        let a_reg = [ 0; 1; 2 ] and ancillas = [ 3 ] and flag = 4 in
        let circ =
          Circuit.make 5 (Comparator.equal_const ~a:a_reg ~value:5 ~ancillas ~flag)
        in
        for a = 0 to 7 do
          let input = Array.make 5 false in
          List.iteri (fun k q -> input.(q) <- (a lsr k) land 1 = 1) a_reg;
          let out = Rev_sim.run circ input in
          check_bool "flag" (a = 5) out.(flag);
          check_bool "ancilla clean" true (not out.(3))
        done);
    case "overlap raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Comparator: overlapping qubits") (fun () ->
            ignore
              (Comparator.less_than ~a:[ 0; 1 ] ~b:[ 1; 2 ] ~ancilla:3 ~flag:4))) ]

let suites =
  [ ("qarith.rev_sim", rev_sim_cases);
    ("qarith.comparator", comparator_cases);
    ("qarith.adder", adder_cases);
    ("qarith.mcx", mcx_cases);
    ("qarith.square", squarer_cases) ]
