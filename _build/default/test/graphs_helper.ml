(* small graph constructors shared by tests *)

let ring n =
  Qgraph.Graph.of_edges n (List.init n (fun k -> (k, (k + 1) mod n)))

let path n =
  Qgraph.Graph.of_edges n (List.init (n - 1) (fun k -> (k, k + 1)))
