(* shared helpers for the test suite *)

open Qnum

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_mat ?(eps = 1e-9) name expected actual =
  if not (Cmat.equal ~eps expected actual) then
    Alcotest.failf "%s: matrices differ by %g (eps %g)" name
      (Cmat.max_abs_diff expected actual)
      eps

let check_mat_phase ?(eps = 1e-9) name expected actual =
  if not (Cmat.equal_up_to_phase ~eps expected actual) then
    Alcotest.failf "%s: matrices differ up to phase" name

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  (* pin the generator seed so runs are reproducible *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |])
    (QCheck.Test.make ~count ~name gen prop)

(* deterministic random unitary on [n] qubits built from a seeded gate walk *)
let random_unitary_gates rng n depth =
  let gates = ref [] in
  for _ = 1 to depth do
    let q = Qgraph.Rand.int rng n in
    let choice = Qgraph.Rand.int rng 5 in
    let angle = Qgraph.Rand.float rng (2. *. Float.pi) in
    let g =
      match choice with
      | 0 -> Qgate.Gate.rx angle q
      | 1 -> Qgate.Gate.ry angle q
      | 2 -> Qgate.Gate.rz angle q
      | 3 -> Qgate.Gate.h q
      | _ ->
        if n < 2 then Qgate.Gate.rx angle q
        else begin
          let r = (q + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
          Qgate.Gate.cnot q r
        end
    in
    gates := g :: !gates
  done;
  List.rev !gates

let random_unitary rng n depth =
  Qgate.Unitary.of_gates ~n_qubits:n (random_unitary_gates rng n depth)
