(* tests for the state-vector simulator, pulse simulation and verification *)

open Qsim
open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit

let device = Qcontrol.Device.default

let state_cases =
  [ case "zero state" (fun () ->
        let st = State.zero 3 in
        check_float "P(|000>)" 1. (State.probability st 0);
        check_int "dim" 8 (State.dim st));
    case "x flips" (fun () ->
        let st = State.apply_gate (State.zero 2) (Gate.x 0) in
        (* qubit 0 is the most significant bit *)
        check_float "P(|10>)" 1. (State.probability st 2));
    case "hadamard superposition" (fun () ->
        let st = State.apply_gate (State.zero 1) (Gate.h 0) in
        check_float ~eps:1e-12 "P(0)" 0.5 (State.probability st 0);
        check_float ~eps:1e-12 "P(1)" 0.5 (State.probability st 1));
    case "bell state" (fun () ->
        let st =
          State.apply_circuit (State.zero 2)
            (Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ])
        in
        check_float ~eps:1e-12 "P(00)" 0.5 (State.probability st 0);
        check_float ~eps:1e-12 "P(11)" 0.5 (State.probability st 3);
        check_float ~eps:1e-12 "P(01)" 0. (State.probability st 1));
    case "ghz state on 5 qubits" (fun () ->
        let gates = Gate.h 0 :: List.init 4 (fun k -> Gate.cnot k (k + 1)) in
        let st = State.apply_circuit (State.zero 5) (Circuit.make 5 gates) in
        check_float ~eps:1e-12 "P(00000)" 0.5 (State.probability st 0);
        check_float ~eps:1e-12 "P(11111)" 0.5 (State.probability st 31));
    case "apply agrees with dense unitary" (fun () ->
        let rng = Qgraph.Rand.create 17 in
        let gates = random_unitary_gates rng 3 12 in
        let circuit = Circuit.make 3 gates in
        let via_sim = State.apply_circuit (State.basis 3 5) circuit in
        let u = Circuit.unitary circuit in
        let via_mat = Qnum.Cmat.apply u (State.amplitudes (State.basis 3 5)) in
        check_bool "same amplitudes" true
          (Qnum.Vec.equal ~eps:1e-9 via_mat (State.amplitudes via_sim)));
    case "norm preserved" (fun () ->
        let rng = Qgraph.Rand.create 23 in
        let gates = random_unitary_gates rng 4 30 in
        let st = State.apply_circuit (State.zero 4) (Circuit.make 4 gates) in
        check_float ~eps:1e-9 "norm 1" 1. (Qnum.Vec.norm2 (State.amplitudes st)));
    case "expectation of Z on |1>" (fun () ->
        let st = State.apply_gate (State.zero 1) (Gate.x 0) in
        check_float ~eps:1e-12 "<Z> = -1" (-1.)
          (State.expectation st (Qgate.Pauli.of_string 1.0 "Z")));
    case "expectation of X on |+>" (fun () ->
        let st = State.apply_gate (State.zero 1) (Gate.h 0) in
        check_float ~eps:1e-12 "<X> = 1" 1.
          (State.expectation st (Qgate.Pauli.of_string 1.0 "X")));
    case "expectation with coefficient and identity" (fun () ->
        let st = State.zero 2 in
        check_float ~eps:1e-12 "2.5 * <II>" 2.5
          (State.expectation st (Qgate.Pauli.of_string 2.5 "II"));
        check_float ~eps:1e-12 "<ZZ> on |00>" 1.
          (State.expectation st (Qgate.Pauli.of_string 1.0 "ZZ")));
    case "measurement statistics on |+>" (fun () ->
        let st = State.apply_gate (State.zero 1) (Gate.h 0) in
        let rng = Qgraph.Rand.create 31 in
        let shots = State.sample rng st 2000 in
        let ones = List.length (List.filter (( = ) 1) shots) in
        check_bool "roughly half" true (ones > 850 && ones < 1150));
    case "measurement of basis state is deterministic" (fun () ->
        let rng = Qgraph.Rand.create 5 in
        let st = State.basis 3 6 in
        check_bool "always 6" true
          (List.for_all (( = ) 6) (State.sample rng st 50)));
    case "fidelity of orthogonal states" (fun () ->
        check_float "0" 0. (State.fidelity (State.basis 2 0) (State.basis 2 3)));
    case "of_vec rejects unnormalized" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "State.of_vec: not normalized")
          (fun () ->
            ignore (State.of_vec 1 (Qnum.Vec.of_array [| Qnum.Cx.of_float 2.; Qnum.Cx.zero |])))) ]

let pulse_sim_cases =
  [ case "zero pulse is identity" (fun () ->
        let pulse =
          Qcontrol.Pulse.constant ~dt:1. ~labels:[| "x0"; "y0" |] ~steps:5
            [| 0.; 0. |]
        in
        let u = Pulse_sim.unitary ~device ~n_qubits:1 ~couplings:[] pulse in
        check_mat ~eps:1e-12 "identity" (Qnum.Cmat.identity 2) u);
    case "constant x drive rotates" (fun () ->
        (* amplitude µ for t: angle 2µt about x *)
        let t = 10. and amp = 0.05 in
        let pulse =
          Qcontrol.Pulse.constant ~dt:1. ~labels:[| "x0"; "y0" |]
            ~steps:(int_of_float t) [| amp; 0. |]
        in
        let u = Pulse_sim.unitary ~device ~n_qubits:1 ~couplings:[] pulse in
        check_mat_phase ~eps:1e-9 "Rx(2 µ t)"
          (Qgate.Unitary.of_kind (Gate.Rx (2. *. amp *. t)))
          u);
    case "evolve matches unitary" (fun () ->
        let pulse =
          Qcontrol.Pulse.constant ~dt:0.5
            ~labels:[| "x0"; "y0"; "x1"; "y1"; "xy0-1" |] ~steps:20
            [| 0.03; -0.01; 0.; 0.02; 0.015 |]
        in
        let couplings = [ (0, 1) ] in
        let u = Pulse_sim.unitary ~device ~n_qubits:2 ~couplings pulse in
        let st = Pulse_sim.evolve ~device ~couplings (State.zero 2) pulse in
        let expect = Qnum.Cmat.apply u (State.amplitudes (State.zero 2)) in
        check_bool "same" true
          (Qnum.Vec.equal ~eps:1e-9 expect (State.amplitudes st)));
    case "leakage proxy" (fun () ->
        let pulse =
          Qcontrol.Pulse.constant ~dt:1. ~labels:[| "a"; "b" |] ~steps:2
            [| 0.1; 0.3 |]
        in
        check_float ~eps:1e-12 "mean square" ((0.01 +. 0.09) /. 2.)
          (Pulse_sim.leakage_proxy pulse)) ]

let verify_cases =
  [ case "unitary-only check passes for valid blocks" (fun () ->
        let o =
          Verify.verify_block ~max_pulse_width:0 device
            [ Gate.cnot 0 1; Gate.rz 0.4 1; Gate.cnot 0 1 ]
        in
        check_bool "passed" true o.Verify.passed;
        check_bool "no pulse" true (o.Verify.pulse_fidelity = None));
    slow_case "pulse check verifies a diagonal block" (fun () ->
        let o =
          Verify.verify_block ~max_pulse_width:2 ~slack:2.0 device
            [ Gate.cnot 0 1; Gate.rz 5.67 1; Gate.cnot 0 1 ]
        in
        check_bool "passed" true o.Verify.passed;
        (match o.Verify.pulse_fidelity with
         | Some f -> check_bool "fidelity high" true (f >= 0.99)
         | None -> Alcotest.fail "expected a pulse check"));
    case "sampling caps the block count" (fun () ->
        let rng = Qgraph.Rand.create 1 in
        let blocks = List.init 30 (fun k -> [ Gate.h (k mod 3) ]) in
        let r = Verify.verify_sampled ~samples:7 ~max_pulse_width:0 rng device blocks in
        check_int "7 sampled" 7 r.Verify.n_checked);
    case "empty block raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Verify.verify_block: empty block") (fun () ->
            ignore (Verify.verify_block device []))) ]

let suites =
  [ ("qsim.state", state_cases);
    ("qsim.pulse_sim", pulse_sim_cases);
    ("qsim.verify", verify_cases) ]
