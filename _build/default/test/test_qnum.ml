(* unit + property tests for the numerical substrate *)

open Qnum
open Util

let c = Cx.make

(* --- Cx --- *)

let cx_cases =
  [ case "add" (fun () ->
        check_bool "1+2i + 3+4i" true (Cx.equal (c 4. 6.) (Cx.add (c 1. 2.) (c 3. 4.))));
    case "mul" (fun () ->
        check_bool "(1+2i)(3+4i) = -5+10i" true
          (Cx.equal (c (-5.) 10.) (Cx.mul (c 1. 2.) (c 3. 4.))));
    case "i squared" (fun () ->
        check_bool "i*i = -1" true (Cx.equal (Cx.of_float (-1.)) (Cx.mul Cx.i Cx.i)));
    case "div" (fun () ->
        check_bool "z/z = 1" true (Cx.equal Cx.one (Cx.div (c 2. 3.) (c 2. 3.))));
    case "div by zero" (fun () ->
        Alcotest.check_raises "raises" Division_by_zero (fun () ->
            ignore (Cx.div Cx.one Cx.zero)));
    case "conj" (fun () ->
        check_bool "conj" true (Cx.equal (c 1. (-2.)) (Cx.conj (c 1. 2.))));
    case "abs" (fun () -> check_float "3-4i" 5. (Cx.abs (c 3. (-4.))));
    case "arg quadrant" (fun () ->
        check_float "arg(-1+0i)" Float.pi (Cx.arg (c (-1.) 0.)));
    case "arg zero" (fun () -> check_float "arg 0" 0. (Cx.arg Cx.zero));
    case "sqrt of -1" (fun () ->
        check_bool "sqrt(-1) = i" true (Cx.equal Cx.i (Cx.sqrt (Cx.of_float (-1.)))));
    case "exp of i pi" (fun () ->
        check_bool "exp(i pi) = -1" true
          (Cx.equal ~eps:1e-12 (Cx.of_float (-1.)) (Cx.exp (c 0. Float.pi))));
    case "cis" (fun () ->
        check_bool "cis(pi/2) = i" true (Cx.equal ~eps:1e-12 Cx.i (Cx.cis (Float.pi /. 2.))));
    case "polar" (fun () ->
        check_bool "polar 2 0" true (Cx.equal (c 2. 0.) (Cx.polar 2. 0.)));
    case "pow fourth root" (fun () ->
        let z = Cx.pow (Cx.of_float 16.) (Cx.of_float 0.25) in
        check_bool "16^(1/4) = 2" true (Cx.equal ~eps:1e-9 (Cx.of_float 2.) z));
    case "pow of zero" (fun () ->
        check_bool "0^w" true (Cx.equal Cx.zero (Cx.pow Cx.zero (c 0.3 0.))));
    qcheck "sqrt squares back" QCheck.(pair (float_bound_exclusive 10.) (float_bound_exclusive 10.))
      (fun (re, im) ->
        let z = c re im in
        let s = Cx.sqrt z in
        Cx.equal ~eps:1e-6 z (Cx.mul s s));
    qcheck "log-exp roundtrip" QCheck.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
      (fun (re, im) ->
        QCheck.assume (Float.abs re +. Float.abs im > 1e-3);
        let z = c re im in
        Cx.equal ~eps:1e-9 z (Cx.exp (Cx.log z)));
    qcheck "mul commutes" QCheck.(quad (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (a, b, x, y) ->
        Cx.equal ~eps:1e-9 (Cx.mul (c a b) (c x y)) (Cx.mul (c x y) (c a b)));
    qcheck "norm2 multiplicative" QCheck.(quad (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (a, b, x, y) ->
        let lhs = Cx.norm2 (Cx.mul (c a b) (c x y)) in
        let rhs = Cx.norm2 (c a b) *. Cx.norm2 (c x y) in
        Float.abs (lhs -. rhs) <= 1e-6 *. (1. +. Float.abs rhs)) ]

(* --- Vec --- *)

let vec_cases =
  [ case "basis is normalized" (fun () ->
        check_float "norm" 1. (Vec.norm (Vec.basis 8 3)));
    case "dot orthogonal" (fun () ->
        check_bool "e0 . e1 = 0" true
          (Cx.equal Cx.zero (Vec.dot (Vec.basis 4 0) (Vec.basis 4 1))));
    case "dot conjugates the left side" (fun () ->
        let v = Vec.of_array [| Cx.i |] in
        check_bool "⟨i|i⟩ = 1" true (Cx.equal Cx.one (Vec.dot v v)));
    case "add sub roundtrip" (fun () ->
        let a = Vec.init 5 (fun k -> c (float_of_int k) 1.) in
        let b = Vec.init 5 (fun k -> c 2. (float_of_int (-k))) in
        check_bool "a+b-b = a" true (Vec.equal a (Vec.sub (Vec.add a b) b)));
    case "scale" (fun () ->
        let v = Vec.scale (c 0. 1.) (Vec.basis 2 0) in
        check_bool "i*e0" true (Cx.equal Cx.i (Vec.get v 0)));
    case "normalize zero raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Vec.normalize: zero vector")
          (fun () -> ignore (Vec.normalize (Vec.create 3))));
    case "dimension mismatch raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Vec.dot: dimension mismatch")
          (fun () -> ignore (Vec.dot (Vec.create 2) (Vec.create 3))));
    qcheck "cauchy-schwarz" QCheck.(list_of_size (Gen.return 6) (float_range (-2.) 2.))
      (fun xs ->
        QCheck.assume (List.length xs = 6);
        let a = Vec.init 3 (fun k -> c (List.nth xs k) 0.) in
        let b = Vec.init 3 (fun k -> c (List.nth xs (k + 3)) 0.) in
        Cx.abs (Vec.dot a b) <= (Vec.norm a *. Vec.norm b) +. 1e-9) ]

(* --- Cmat --- *)

let rng = Qgraph.Rand.create 99

let rand_mat n m =
  Cmat.init n m (fun _ _ ->
      c (Qgraph.Rand.float rng 2. -. 1.) (Qgraph.Rand.float rng 2. -. 1.))

let cmat_cases =
  [ case "identity multiplication" (fun () ->
        let m = rand_mat 4 4 in
        check_mat "I*m = m" m (Cmat.mul (Cmat.identity 4) m);
        check_mat "m*I = m" m (Cmat.mul m (Cmat.identity 4)));
    case "mul dimensions" (fun () ->
        let a = rand_mat 2 3 and b = rand_mat 3 4 in
        let p = Cmat.mul a b in
        check_int "rows" 2 (Cmat.rows p);
        check_int "cols" 4 (Cmat.cols p));
    case "mul mismatch raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Cmat.mul: dimension mismatch")
          (fun () -> ignore (Cmat.mul (rand_mat 2 3) (rand_mat 2 3))));
    case "mul associativity" (fun () ->
        let a = rand_mat 3 3 and b = rand_mat 3 3 and d = rand_mat 3 3 in
        check_mat ~eps:1e-9 "(ab)d = a(bd)"
          (Cmat.mul (Cmat.mul a b) d)
          (Cmat.mul a (Cmat.mul b d)));
    case "dagger involution" (fun () ->
        let m = rand_mat 3 2 in
        check_mat "m†† = m" m (Cmat.dagger (Cmat.dagger m)));
    case "dagger antihomomorphism" (fun () ->
        let a = rand_mat 3 3 and b = rand_mat 3 3 in
        check_mat ~eps:1e-9 "(ab)† = b†a†"
          (Cmat.dagger (Cmat.mul a b))
          (Cmat.mul (Cmat.dagger b) (Cmat.dagger a)));
    case "trace cyclic" (fun () ->
        let a = rand_mat 3 3 and b = rand_mat 3 3 in
        check_bool "tr(ab) = tr(ba)" true
          (Cx.equal ~eps:1e-9 (Cmat.trace (Cmat.mul a b)) (Cmat.trace (Cmat.mul b a))));
    case "kron dimensions" (fun () ->
        let k = Cmat.kron (rand_mat 2 3) (rand_mat 4 5) in
        check_int "rows" 8 (Cmat.rows k);
        check_int "cols" 15 (Cmat.cols k));
    case "kron mixed-product" (fun () ->
        let a = rand_mat 2 2 and b = rand_mat 2 2 in
        let x = rand_mat 2 2 and y = rand_mat 2 2 in
        check_mat ~eps:1e-9 "(a⊗b)(x⊗y) = ax ⊗ by"
          (Cmat.mul (Cmat.kron a b) (Cmat.kron x y))
          (Cmat.kron (Cmat.mul a x) (Cmat.mul b y)));
    case "kron identity" (fun () ->
        check_mat "I2 ⊗ I2 = I4" (Cmat.identity 4)
          (Cmat.kron (Cmat.identity 2) (Cmat.identity 2)));
    case "pow" (fun () ->
        let m = rand_mat 3 3 in
        check_mat ~eps:1e-6 "m^3" (Cmat.mul m (Cmat.mul m m)) (Cmat.pow m 3);
        check_mat "m^0 = I" (Cmat.identity 3) (Cmat.pow m 0));
    case "one-by-one matrices behave" (fun () ->
        let m = Cmat.diag [| c 2. 1. |] in
        check_bool "det" true (Cx.equal (c 2. 1.) (Cmat.det m));
        check_bool "trace" true (Cx.equal (c 2. 1.) (Cmat.trace m));
        check_mat "identity product" m (Cmat.mul m (Cmat.identity 1)));
    case "zero-dimension matrices" (fun () ->
        let e = Cmat.create 0 0 in
        check_int "rows" 0 (Cmat.rows e);
        check_bool "det of empty is 1" true (Cx.equal Cx.one (Cmat.det e)));
    case "det of identity" (fun () ->
        check_bool "det I = 1" true (Cx.equal Cx.one (Cmat.det (Cmat.identity 5))));
    case "det multiplicative" (fun () ->
        let a = rand_mat 3 3 and b = rand_mat 3 3 in
        check_bool "det(ab) = det a det b" true
          (Cx.equal ~eps:1e-6
             (Cmat.det (Cmat.mul a b))
             (Cx.mul (Cmat.det a) (Cmat.det b))));
    case "det singular" (fun () ->
        let m = Cmat.of_real_lists [ [ 1.; 2. ]; [ 2.; 4. ] ] in
        check_bool "det = 0" true (Cx.equal ~eps:1e-12 Cx.zero (Cmat.det m)));
    case "diag and diagonal" (fun () ->
        let d = [| c 1. 0.; c 0. 2.; c 3. 4. |] in
        let m = Cmat.diag d in
        check_bool "roundtrip" true
          (Array.for_all2 (fun a b -> Cx.equal a b) d (Cmat.diagonal m));
        check_bool "is_diagonal" true (Cmat.is_diagonal m));
    case "is_unitary detects non-unitary" (fun () ->
        check_bool "random not unitary" false (Cmat.is_unitary (rand_mat 3 3)));
    case "is_hermitian" (fun () ->
        let m = rand_mat 3 3 in
        let h = Cmat.add m (Cmat.dagger m) in
        check_bool "m + m† hermitian" true (Cmat.is_hermitian h));
    case "equal_up_to_phase" (fun () ->
        let m = rand_mat 3 3 in
        let rotated = Cmat.scale (Cx.cis 1.234) m in
        check_bool "phase-rotated equal" true (Cmat.equal_up_to_phase m rotated);
        check_bool "different not equal" false
          (Cmat.equal_up_to_phase m (Cmat.add m (Cmat.identity 3))));
    case "apply matches mul" (fun () ->
        let m = rand_mat 4 4 in
        let v = Vec.init 4 (fun k -> c (float_of_int k) 0.5) in
        let direct = Cmat.apply m v in
        let via_col = Cmat.mul m (Cmat.init 4 1 (fun i _ -> Vec.get v i)) in
        for i = 0 to 3 do
          check_bool "entry" true
            (Cx.equal ~eps:1e-9 (Vec.get direct i) (Cmat.get via_col i 0))
        done);
    case "fidelity of identical unitaries" (fun () ->
        let u = random_unitary (Qgraph.Rand.create 5) 2 12 in
        check_float ~eps:1e-9 "fid = 1" 1. (Cmat.fidelity u u));
    case "fidelity phase-insensitive" (fun () ->
        let u = random_unitary (Qgraph.Rand.create 6) 2 12 in
        check_float ~eps:1e-9 "fid = 1" 1.
          (Cmat.fidelity u (Cmat.scale (Cx.cis 0.7) u)));
    case "embed single qubit on msb" (fun () ->
        let x = Qgate.Unitary.pauli_x in
        let e = Cmat.embed ~n_qubits:2 ~targets:[ 0 ] x in
        check_mat "X ⊗ I" (Cmat.kron x (Cmat.identity 2)) e);
    case "embed single qubit on lsb" (fun () ->
        let x = Qgate.Unitary.pauli_x in
        let e = Cmat.embed ~n_qubits:2 ~targets:[ 1 ] x in
        check_mat "I ⊗ X" (Cmat.kron (Cmat.identity 2) x) e);
    case "embed order matters" (fun () ->
        let cnot = Qgate.Unitary.of_kind Qgate.Gate.Cnot in
        let fwd = Cmat.embed ~n_qubits:2 ~targets:[ 0; 1 ] cnot in
        let rev = Cmat.embed ~n_qubits:2 ~targets:[ 1; 0 ] cnot in
        check_mat "forward is cnot" cnot fwd;
        check_bool "reversed differs" false (Cmat.equal fwd rev));
    case "embed duplicate raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Cmat.embed: duplicate target")
          (fun () ->
            ignore
              (Cmat.embed ~n_qubits:2 ~targets:[ 0; 0 ]
                 (Qgate.Unitary.of_kind Qgate.Gate.Cnot))));
    case "permute_qubits swap" (fun () ->
        let cnot = Qgate.Unitary.of_kind Qgate.Gate.Cnot in
        let swapped = Cmat.permute_qubits [| 1; 0 |] cnot in
        let expect = Cmat.embed ~n_qubits:2 ~targets:[ 1; 0 ] cnot in
        check_mat "swapped cnot" expect swapped);
    case "permute identity" (fun () ->
        let u = random_unitary (Qgraph.Rand.create 7) 3 15 in
        check_mat "id perm" u (Cmat.permute_qubits [| 0; 1; 2 |] u));
    qcheck ~count:30 "unitary products stay unitary" QCheck.(int_range 0 10000)
      (fun seed ->
        let u = random_unitary (Qgraph.Rand.create seed) 2 10 in
        Cmat.is_unitary ~eps:1e-8 u) ]

(* --- Expm --- *)

let expm_cases =
  [ case "expm of zero" (fun () ->
        check_mat "e^0 = I" (Cmat.identity 3) (Expm.expm (Cmat.zeros 3 3)));
    case "expm of diagonal" (fun () ->
        let m = Cmat.diag [| c 1. 0.; c 0. 2. |] in
        let e = Expm.expm m in
        check_bool "e^1" true (Cx.equal ~eps:1e-9 (Cx.of_float (Float.exp 1.)) (Cmat.get e 0 0));
        check_bool "e^2i" true (Cx.equal ~eps:1e-9 (Cx.cis 2.) (Cmat.get e 1 1)));
    case "expm of pauli x rotation" (fun () ->
        (* e^{-i θ/2 X} = Rx(θ) *)
        let theta = 0.7 in
        let h = Cmat.scale (c 0. (-.theta /. 2.)) Qgate.Unitary.pauli_x in
        check_mat ~eps:1e-10 "matches Rx"
          (Qgate.Unitary.of_kind (Qgate.Gate.Rx theta))
          (Expm.expm h));
    case "propagator is unitary" (fun () ->
        let h = Qgate.Unitary.pauli_y in
        check_bool "unitary" true (Cmat.is_unitary ~eps:1e-10 (Expm.propagator h 3.0)));
    case "propagator additivity" (fun () ->
        let h =
          Cmat.add Qgate.Unitary.pauli_z
            (Cmat.scale_real 0.3 Qgate.Unitary.pauli_x)
        in
        check_mat ~eps:1e-9 "U(2t) = U(t)U(t)"
          (Expm.propagator h 2.4)
          (Cmat.mul (Expm.propagator h 1.2) (Expm.propagator h 1.2)));
    case "large norm scaling" (fun () ->
        let h = Cmat.scale_real 50. Qgate.Unitary.pauli_x in
        check_bool "still unitary" true
          (Cmat.is_unitary ~eps:1e-8 (Expm.propagator h 1.0)));
    case "non-square raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Expm.expm: not square")
          (fun () -> ignore (Expm.expm (Cmat.zeros 2 3)))) ]

(* --- Poly / Eig --- *)

let poly_cases =
  [ case "eval horner" (fun () ->
        (* p(z) = 1 + 2z + z², p(3) = 16 *)
        let p = [| Cx.one; Cx.of_float 2.; Cx.one |] in
        check_bool "p(3)" true (Cx.equal (Cx.of_float 16.) (Poly.eval p (Cx.of_float 3.))));
    case "derive" (fun () ->
        let p = [| Cx.one; Cx.of_float 2.; Cx.of_float 3. |] in
        let d = Poly.derive p in
        check_bool "p' = 2 + 6z" true
          (Cx.equal (Cx.of_float 2.) d.(0) && Cx.equal (Cx.of_float 6.) d.(1)));
    case "roots of quadratic" (fun () ->
        (* z² + 1: roots ±i *)
        let roots = Poly.roots [| Cx.one; Cx.zero; Cx.one |] in
        let has z = Array.exists (fun r -> Cx.equal ~eps:1e-8 r z) roots in
        check_bool "i" true (has Cx.i);
        check_bool "-i" true (has (Cx.neg Cx.i)));
    case "roots of quartic with known roots" (fun () ->
        let expected = [| c 1. 0.; c (-2.) 0.; c 0. 3.; c 1. 1. |] in
        let p = Poly.of_roots expected in
        let roots = Poly.roots p in
        Array.iter
          (fun e ->
            check_bool "found" true
              (Array.exists (fun r -> Cx.equal ~eps:1e-6 r e) roots))
          expected);
    case "roots evaluate to zero" (fun () ->
        let p = [| c 2. 1.; c 0. (-1.); c 1. 1.; Cx.one |] in
        Array.iter
          (fun r -> check_bool "p(r) ~ 0" true (Cx.abs (Poly.eval p r) < 1e-7))
          (Poly.roots p));
    case "roots of linear polynomial" (fun () ->
        let roots = Poly.roots [| Cx.of_float (-3.); Cx.of_float 1.5 |] in
        check_int "one root" 1 (Array.length roots);
        check_bool "z = 2" true (Cx.equal ~eps:1e-9 (Cx.of_float 2.) roots.(0)));
    case "repeated roots found with multiplicity" (fun () ->
        (* (z-1)^3: accuracy degrades to ~tol^(1/3) for triple roots *)
        let p = Poly.of_roots [| Cx.one; Cx.one; Cx.one |] in
        let roots = Poly.roots p in
        check_int "three roots" 3 (Array.length roots);
        Array.iter
          (fun r -> check_bool "near 1" true (Cx.abs (Cx.sub r Cx.one) < 1e-3))
          roots);
    case "monic of zero polynomial raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Poly.monic: zero polynomial")
          (fun () -> ignore (Poly.monic [| Cx.zero; Cx.zero |])));
    case "eigenvalues of diagonal" (fun () ->
        let m = Cmat.diag [| c 2. 0.; c 0. 1.; c (-1.) 1. |] in
        let eigs = Eig.eigenvalues m in
        Array.iter
          (fun e ->
            check_bool "eig present" true
              (Array.exists (fun d -> Cx.equal ~eps:1e-7 d e) eigs))
          [| c 2. 0.; c 0. 1.; c (-1.) 1. |]);
    case "eigenvalues of pauli x" (fun () ->
        let eigs = Eig.eigenvalues Qgate.Unitary.pauli_x in
        let has v = Array.exists (fun e -> Cx.equal ~eps:1e-8 e (Cx.of_float v)) eigs in
        check_bool "+1" true (has 1.);
        check_bool "-1" true (has (-1.)));
    case "char poly of 2x2" (fun () ->
        (* [[1, 2], [3, 4]]: z² - 5z - 2 *)
        let m = Cmat.of_real_lists [ [ 1.; 2. ]; [ 3.; 4. ] ] in
        let p = Eig.char_poly m in
        check_bool "c0 = -2" true (Cx.equal ~eps:1e-12 (Cx.of_float (-2.)) p.(0));
        check_bool "c1 = -5" true (Cx.equal ~eps:1e-12 (Cx.of_float (-5.)) p.(1));
        check_bool "c2 = 1" true (Cx.equal ~eps:1e-12 Cx.one p.(2)));
    qcheck ~count:25 "eigenvalue phases of unitaries are unit modulus"
      QCheck.(int_range 0 10000)
      (fun seed ->
        let u = random_unitary (Qgraph.Rand.create seed) 2 8 in
        Array.for_all
          (fun e -> Float.abs (Cx.abs e -. 1.) < 1e-5)
          (Eig.eigenvalues u)) ]

let suites =
  [ ("qnum.cx", cx_cases);
    ("qnum.vec", vec_cases);
    ("qnum.cmat", cmat_cases);
    ("qnum.expm", expm_cases);
    ("qnum.poly_eig", poly_cases) ]
