(* tests for the optimizer, partial compilation, Trotter builder and the
   visualization/export tooling *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Compiler = Qcc.Compiler

let nelder_mead_cases =
  [ case "quadratic bowl" (fun () ->
        let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) in
        let r = Qopt.Nelder_mead.minimize ~f [| 0.; 0. |] in
        check_bool "converged" true r.Qopt.Nelder_mead.converged;
        check_float ~eps:1e-3 "x0" 3. r.Qopt.Nelder_mead.x.(0);
        check_float ~eps:1e-3 "x1" (-1.) r.Qopt.Nelder_mead.x.(1));
    case "rosenbrock valley" (fun () ->
        let f x =
          (100. *. ((x.(1) -. (x.(0) ** 2.)) ** 2.)) +. ((1. -. x.(0)) ** 2.)
        in
        let r = Qopt.Nelder_mead.minimize ~max_iterations:5000 ~f [| -1.2; 1. |] in
        check_bool "near optimum" true (r.Qopt.Nelder_mead.value < 1e-4));
    case "1d function" (fun () ->
        let r = Qopt.Nelder_mead.minimize ~f:(fun x -> Float.cos x.(0)) [| 2.5 |] in
        check_float ~eps:1e-3 "pi" Float.pi r.Qopt.Nelder_mead.x.(0));
    case "empty start raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Nelder_mead.minimize: empty start point") (fun () ->
            ignore (Qopt.Nelder_mead.minimize ~f:(fun _ -> 0.) [||])));
    case "golden section" (fun () ->
        let x, v =
          Qopt.Nelder_mead.minimize_scalar ~f:(fun x -> (x -. 1.5) ** 2.) 0. 4.
        in
        check_float ~eps:1e-6 "argmin" 1.5 x;
        check_float ~eps:1e-9 "min" 0. v);
    case "deterministic" (fun () ->
        let f x = ((x.(0) -. 0.5) ** 2.) +. (0.3 *. Float.sin x.(0)) in
        let a = Qopt.Nelder_mead.minimize ~f [| 2. |] in
        let b = Qopt.Nelder_mead.minimize ~f [| 2. |] in
        check_float ~eps:0. "same" a.Qopt.Nelder_mead.value b.Qopt.Nelder_mead.value) ]

let line n =
  { Compiler.default_config with
    Compiler.topology = Some (Qmap.Topology.line n) }

let partial_cases =
  [ case "rebinding preserves structure" (fun () ->
        let circuit = Qapps.Qaoa.circuit (Qapps.Graphs.line 4) in
        let base =
          Compiler.compile ~config:(line 4) ~strategy:Qcc.Strategy.Cls_aggregation
            circuit
        in
        let rebound = Qcc.Partial.rebind_rotations ~config:(line 4) base ~gamma:1.0 ~beta:0.3 in
        check_int "same instruction count" base.Compiler.n_instructions
          rebound.Compiler.n_instructions;
        check_bool "schedule valid" true
          (Qsched.Schedule.no_qubit_overlap rebound.Compiler.schedule));
    case "rebinding changes semantics as requested" (fun () ->
        let circuit = Qapps.Qaoa.circuit ~gamma:0.7 ~beta:0.2 (Qapps.Graphs.line 3) in
        let base =
          Compiler.compile ~config:(line 3) ~strategy:Qcc.Strategy.Cls_aggregation
            circuit
        in
        let rebound = Qcc.Partial.rebind_rotations ~config:(line 3) base ~gamma:1.3 ~beta:0.4 in
        (* the rebound blocks must equal a fresh compile of the new-angle
           circuit semantically *)
        let reference = Qapps.Qaoa.circuit ~gamma:1.3 ~beta:0.4 (Qapps.Graphs.line 3) in
        let compiled =
          Circuit.make 3 (List.concat (Compiler.blocks rebound))
        in
        let p_init =
          Qmap.Placement.permutation_unitary ~n_qubits:3
            rebound.Compiler.initial_placement
        in
        let p_final =
          Qmap.Placement.permutation_unitary ~n_qubits:3
            rebound.Compiler.final_placement
        in
        check_mat_phase ~eps:1e-8 "semantics"
          (Qnum.Cmat.mul p_final (Circuit.unitary reference))
          (Qnum.Cmat.mul (Circuit.unitary compiled) p_init));
    case "identity rebinding is a fixpoint" (fun () ->
        let circuit = Qapps.Qaoa.circuit (Qapps.Graphs.line 4) in
        let base =
          Compiler.compile ~config:(line 4) ~strategy:Qcc.Strategy.Cls_aggregation
            circuit
        in
        let same = Qcc.Partial.reparameterize ~config:(line 4) base (fun g -> g) in
        check_float ~eps:1e-9 "latency unchanged" base.Compiler.latency
          same.Compiler.latency);
    case "shape-changing rebinding raises" (fun () ->
        let circuit = Qapps.Qaoa.circuit (Qapps.Graphs.line 3) in
        let base =
          Compiler.compile ~config:(line 3) ~strategy:Qcc.Strategy.Cls_aggregation
            circuit
        in
        Alcotest.check_raises "raises"
          (Invalid_argument
             "Partial.reparameterize: rebinding must preserve gate kind and qubits")
          (fun () ->
            ignore
              (Qcc.Partial.reparameterize ~config:(line 3) base (fun g ->
                   match g.Gate.kind with
                   | Gate.Rz _ -> Gate.h (List.hd (Gate.qubits g))
                   | _ -> g)))) ]

let trotter_cases =
  [ case "first order approximates exact" (fun () ->
        let n = 3 in
        let terms = Qapps.Ising.hamiltonian_terms n in
        let exact = Qapps.Trotter.exact ~n ~time:0.4 terms in
        let approx =
          Circuit.unitary (Qapps.Trotter.circuit ~n ~time:0.4 ~steps:20 terms)
        in
        check_bool "close" true (Qnum.Cmat.fidelity exact approx > 0.999));
    case "second order beats first at equal steps" (fun () ->
        let n = 3 in
        let terms = Qapps.Ising.hamiltonian_terms n in
        let exact = Qapps.Trotter.exact ~n ~time:0.8 terms in
        let err order =
          1.
          -. Qnum.Cmat.fidelity exact
               (Circuit.unitary
                  (Qapps.Trotter.circuit ~order ~n ~time:0.8 ~steps:4 terms))
        in
        check_bool "ordering" true
          (err Qapps.Trotter.Second < err Qapps.Trotter.First));
    case "error shrinks with steps" (fun () ->
        let n = 2 in
        let terms =
          [ Qgate.Pauli.of_string 0.7 "ZZ"; Qgate.Pauli.of_string 0.4 "XI";
            Qgate.Pauli.of_string 0.3 "IY" ]
        in
        let exact = Qapps.Trotter.exact ~n ~time:1.0 terms in
        let err steps =
          1.
          -. Qnum.Cmat.fidelity exact
               (Circuit.unitary (Qapps.Trotter.circuit ~n ~time:1.0 ~steps terms))
        in
        check_bool "monotone-ish" true (err 16 < err 2));
    case "bad inputs raise" (fun () ->
        Alcotest.check_raises "steps"
          (Invalid_argument "Trotter.circuit: non-positive step count") (fun () ->
            ignore (Qapps.Trotter.circuit ~n:2 ~time:1. ~steps:0 []));
        Alcotest.check_raises "register"
          (Invalid_argument "Trotter.circuit: term register size mismatch")
          (fun () ->
            ignore
              (Qapps.Trotter.circuit ~n:3 ~time:1. ~steps:1
                 [ Qgate.Pauli.of_string 1. "ZZ" ]))) ]

let compiled_line () =
  Compiler.compile ~config:(line 4) ~strategy:Qcc.Strategy.Cls_aggregation
    (Qapps.Qaoa.circuit (Qapps.Graphs.line 4))

let viz_cases =
  [ case "dot output is structurally sound" (fun () ->
        let r = compiled_line () in
        let dot = Qviz.Dot.of_gdg r.Compiler.gdg in
        check_bool "digraph" true
          (String.length dot > 20 && String.sub dot 0 7 = "digraph");
        (* one node line per instruction *)
        let count needle =
          let re = Str.regexp_string needle in
          let rec go pos acc =
            match Str.search_forward re dot pos with
            | pos -> go (pos + 1) (acc + 1)
            | exception Not_found -> acc
          in
          go 0 0
        in
        ignore count;
        check_bool "balanced braces" true
          (String.contains dot '{' && dot.[String.length dot - 2] = '}'));
    case "dot marks the critical path" (fun () ->
        let r = compiled_line () in
        let dot = Qviz.Dot.of_gdg r.Compiler.gdg in
        check_bool "has highlight" true
          (try
             ignore (Str.search_forward (Str.regexp_string "#ffb3b3") dot 0);
             true
           with Not_found -> false));
    case "json has one entry per instruction" (fun () ->
        let r = compiled_line () in
        let json = Qviz.Timeline.to_json r.Compiler.schedule in
        let count =
          let re = Str.regexp_string "\"id\":" in
          let rec go pos acc =
            match Str.search_forward re json pos with
            | pos -> go (pos + 1) (acc + 1)
            | exception Not_found -> acc
          in
          go 0 0
        in
        check_int "entries" r.Compiler.n_instructions count);
    case "svg timeline is well formed" (fun () ->
        let r = compiled_line () in
        let svg = Qviz.Timeline.to_svg r.Compiler.schedule in
        check_bool "svg element" true
          (String.sub svg 0 4 = "<svg");
        check_bool "closes" true
          (try
             ignore (Str.search_forward (Str.regexp_string "</svg>") svg 0);
             true
           with Not_found -> false);
        (* one rect per (instruction, qubit) plus the background *)
        let rects =
          let re = Str.regexp_string "<rect" in
          let rec go pos acc =
            match Str.search_forward re svg pos with
            | pos -> go (pos + 1) (acc + 1)
            | exception Not_found -> acc
          in
          go 0 0
        in
        let expected =
          1
          + List.fold_left
              (fun acc (e : Qsched.Schedule.entry) ->
                acc + Qgdg.Inst.width e.Qsched.Schedule.inst)
              0 r.Compiler.schedule.Qsched.Schedule.entries
        in
        check_int "rect count" expected rects);
    case "pulse svg renders all channels" (fun () ->
        let pulse =
          Qcontrol.Pulse.constant ~dt:1. ~labels:[| "x0"; "y0"; "xy0-1" |]
            ~steps:10 [| 0.05; -0.02; 0.01 |]
        in
        let svg = Qviz.Pulse_plot.to_svg pulse in
        let polylines =
          let re = Str.regexp_string "<polyline" in
          let rec go pos acc =
            match Str.search_forward re svg pos with
            | pos -> go (pos + 1) (acc + 1)
            | exception Not_found -> acc
          in
          go 0 0
        in
        check_int "three channels" 3 polylines) ]

let suites =
  [ ("qopt.nelder_mead", nelder_mead_cases);
    ("qcc.partial", partial_cases);
    ("qapps.trotter", trotter_cases);
    ("qviz", viz_cases) ]
