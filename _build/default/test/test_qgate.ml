(* tests for the gate layer: gates, unitaries, circuits, decompositions,
   Pauli strings and QASM round-trips *)

open Qgate
open Util

let all_kinds =
  [ Gate.I; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T;
    Gate.Tdg; Gate.Rx 0.3; Gate.Ry 0.4; Gate.Rz 0.5; Gate.Phase 0.6;
    Gate.Cnot; Gate.Cz; Gate.Cphase 0.7; Gate.Swap; Gate.Iswap;
    Gate.Sqrt_iswap; Gate.Rxx 0.8; Gate.Ryy 0.9; Gate.Rzz 1.0; Gate.Ccx ]

let u2 gates = Unitary.of_gates ~n_qubits:2 gates
let u3 gates = Unitary.of_gates ~n_qubits:3 gates

let gate_cases =
  [ case "arity mismatch raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Gate.make: arity mismatch")
          (fun () -> ignore (Gate.make Gate.Cnot [ 0 ])));
    case "repeated qubit raises" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Gate.make: repeated qubit")
          (fun () -> ignore (Gate.make Gate.Cnot [ 1; 1 ])));
    case "arity per kind" (fun () ->
        check_int "1q" 1 (Gate.kind_arity Gate.H);
        check_int "2q" 2 (Gate.kind_arity Gate.Iswap);
        check_int "3q" 3 (Gate.kind_arity Gate.Ccx));
    case "adjoint pairs" (fun () ->
        check_bool "S† = Sdg" true (Gate.equal (Gate.sdg 0) (Gate.adjoint (Gate.s 0)));
        check_bool "T† = Tdg" true (Gate.equal (Gate.tdg 0) (Gate.adjoint (Gate.t 0)));
        check_bool "Rx† negates" true
          (Gate.equal (Gate.rx (-0.5) 1) (Gate.adjoint (Gate.rx 0.5 1))));
    case "adjoint of iswap raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Gate.adjoint: iswap family has no in-vocabulary adjoint")
          (fun () -> ignore (Gate.adjoint (Gate.iswap 0 1))));
    case "adjoint is inverse (unitary level)" (fun () ->
        List.iter
          (fun kind ->
            match kind with
            | Gate.Iswap | Gate.Sqrt_iswap -> ()
            | _ ->
              let qs = List.init (Gate.kind_arity kind) (fun k -> k) in
              let g = Gate.make kind qs in
              let n = Gate.kind_arity kind in
              let u = Unitary.of_gates ~n_qubits:n [ g; Gate.adjoint g ] in
              check_mat ~eps:1e-9
                (Printf.sprintf "%s adjoint" (Gate.name g))
                (Qnum.Cmat.identity (1 lsl n))
                u)
          all_kinds);
    case "diagonal kinds are diagonal" (fun () ->
        List.iter
          (fun kind ->
            let d = Gate.is_diagonal_kind kind in
            let m = Unitary.of_kind kind in
            check_bool
              (Printf.sprintf "%s diagonality"
                 (Gate.name (Gate.make kind (List.init (Gate.kind_arity kind) (fun k -> k)))))
              d
              (Qnum.Cmat.is_diagonal ~eps:1e-12 m))
          all_kinds);
    case "symmetric kinds are swap-invariant" (fun () ->
        List.iter
          (fun kind ->
            if Gate.kind_arity kind = 2 then begin
              let m = Unitary.of_kind kind in
              let swapped = Qnum.Cmat.permute_qubits [| 1; 0 |] m in
              check_bool
                (Printf.sprintf "symmetry of %s"
                   (Gate.name (Gate.make kind [ 0; 1 ])))
                (Gate.is_symmetric_kind kind)
                (Qnum.Cmat.equal ~eps:1e-12 m swapped)
            end)
          all_kinds);
    case "map_qubits collapse raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Gate.map_qubits: renaming collapses qubits")
          (fun () -> ignore (Gate.map_qubits (fun _ -> 0) (Gate.cnot 0 1))));
    case "common qubits" (fun () ->
        Alcotest.(check (list int)) "overlap" [ 1 ]
          (Gate.common_qubits (Gate.cnot 0 1) (Gate.cnot 1 2))) ]

let unitary_cases =
  [ case "all gates unitary" (fun () ->
        List.iter
          (fun kind ->
            check_bool "unitary" true
              (Qnum.Cmat.is_unitary ~eps:1e-9 (Unitary.of_kind kind)))
          all_kinds);
    case "cnot truth table" (fun () ->
        let m = Unitary.of_kind Gate.Cnot in
        (* |10> -> |11>, |11> -> |10> *)
        check_bool "10->11" true (Qnum.Cx.equal Qnum.Cx.one (Qnum.Cmat.get m 3 2));
        check_bool "11->10" true (Qnum.Cx.equal Qnum.Cx.one (Qnum.Cmat.get m 2 3));
        check_bool "00->00" true (Qnum.Cx.equal Qnum.Cx.one (Qnum.Cmat.get m 0 0)));
    case "hadamard squares to identity" (fun () ->
        check_mat "H² = I" (Qnum.Cmat.identity 2)
          (Qnum.Cmat.mul Unitary.hadamard Unitary.hadamard));
    case "pauli algebra" (fun () ->
        let x = Unitary.pauli_x and y = Unitary.pauli_y and z = Unitary.pauli_z in
        check_mat ~eps:1e-12 "XY = iZ"
          (Qnum.Cmat.scale Qnum.Cx.i z)
          (Qnum.Cmat.mul x y));
    case "s gate squared is z" (fun () ->
        check_mat_phase "S² = Z" (Unitary.of_kind Gate.Z)
          (u2 [ Gate.s 0; Gate.s 0 ] |> fun _ ->
           Unitary.of_gates ~n_qubits:1 [ Gate.s 0; Gate.s 0 ]));
    case "rz vs phase differ by global phase" (fun () ->
        check_mat_phase "Rz(θ) ~ P(θ)"
          (Unitary.of_kind (Gate.Rz 0.9))
          (Unitary.of_kind (Gate.Phase 0.9)));
    case "sqrt_iswap squares to iswap" (fun () ->
        check_mat ~eps:1e-12 "√iSWAP²"
          (Unitary.of_kind Gate.Iswap)
          (u2 [ Gate.sqrt_iswap 0 1; Gate.sqrt_iswap 0 1 ]));
    case "cnot-rz-cnot equals rzz" (fun () ->
        check_mat ~eps:1e-12 "diagonal block"
          (u2 [ Gate.rzz 5.67 0 1 ])
          (u2 [ Gate.cnot 0 1; Gate.rz 5.67 1; Gate.cnot 0 1 ]));
    case "of_gates composes in time order" (fun () ->
        (* X then H on one qubit: matrix product is H·X *)
        let composed = Unitary.of_gates ~n_qubits:1 [ Gate.x 0; Gate.h 0 ] in
        check_mat ~eps:1e-12 "H*X"
          (Qnum.Cmat.mul Unitary.hadamard Unitary.pauli_x)
          composed);
    case "on_support relabels" (fun () ->
        let support, u = Unitary.on_support [ Gate.cnot 5 2 ] in
        Alcotest.(check (list int)) "support" [ 2; 5 ] support;
        (* qubit 5 is the control but comes second in the sorted support *)
        check_mat "relabelled"
          (Qnum.Cmat.embed ~n_qubits:2 ~targets:[ 1; 0 ] (Unitary.of_kind Gate.Cnot))
          u);
    case "on_support empty raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Unitary.on_support: empty gate list") (fun () ->
            ignore (Unitary.on_support []))) ]

let circuit_cases =
  [ case "make validates range" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Circuit: gate cx q1,q5 outside register of 3 qubits")
          (fun () -> ignore (Circuit.make 3 [ Gate.cnot 1 5 ])));
    case "depth of layered circuit" (fun () ->
        let c =
          Circuit.make 4
            [ Gate.h 0; Gate.h 1; Gate.h 2; Gate.h 3; Gate.cnot 0 1; Gate.cnot 2 3 ]
        in
        check_int "depth 2" 2 (Circuit.depth c));
    case "depth serial chain" (fun () ->
        let c = Circuit.make 3 [ Gate.cnot 0 1; Gate.cnot 1 2; Gate.cnot 0 1 ] in
        check_int "depth 3" 3 (Circuit.depth c));
    case "critical path with latencies" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.h 1; Gate.cnot 0 1 ] in
        let latency g = if Gate.arity g = 2 then 10. else 1. in
        check_float "1 + 10" 11. (Circuit.critical_path_time latency c));
    case "two_qubit_count" (fun () ->
        let c = Circuit.make 3 [ Gate.h 0; Gate.cnot 0 1; Gate.swap 1 2; Gate.t 2 ] in
        check_int "count" 2 (Circuit.two_qubit_count c));
    case "interaction graph weights" (fun () ->
        let c = Circuit.make 3 [ Gate.cnot 0 1; Gate.cnot 0 1; Gate.cz 1 2 ] in
        let g = Circuit.interaction_graph c in
        check_float "0-1 weight" 2. (Qgraph.Graph.weight g 0 1);
        check_float "1-2 weight" 1. (Qgraph.Graph.weight g 1 2));
    case "adjoint reverses semantics" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.rz 0.4 1 ] in
        let id = Circuit.concat c (Circuit.adjoint c) in
        check_mat ~eps:1e-9 "c c† = I" (Qnum.Cmat.identity 4) (Circuit.unitary id));
    case "equal_semantics catches difference" (fun () ->
        let a = Circuit.make 2 [ Gate.cnot 0 1 ] in
        let b = Circuit.make 2 [ Gate.cnot 1 0 ] in
        check_bool "different" false (Circuit.equal_semantics a b));
    case "map_qubits relabels" (fun () ->
        let c = Circuit.make 3 [ Gate.cnot 0 1 ] in
        let m = Circuit.map_qubits (fun q -> 2 - q) c in
        check_bool "relabelled" true
          (Gate.equal (Gate.cnot 2 1) (List.hd (Circuit.gates m)))) ]

let decompose_cases =
  [ case "ccx decomposition" (fun () ->
        check_mat_phase "toffoli" (u3 [ Gate.ccx 0 1 2 ]) (u3 (Decompose.ccx 0 1 2)));
    case "swap to cnots" (fun () ->
        check_mat_phase "swap" (u2 [ Gate.swap 0 1 ]) (u2 (Decompose.swap_to_cnots 0 1)));
    case "cz to std" (fun () ->
        check_mat_phase "cz" (u2 [ Gate.cz 0 1 ]) (u2 (Decompose.cz_to_std 0 1)));
    case "cphase to std" (fun () ->
        check_mat_phase "cp" (u2 [ Gate.cphase 1.1 0 1 ]) (u2 (Decompose.cphase_to_std 1.1 0 1)));
    case "rzz to std" (fun () ->
        check_mat_phase "rzz" (u2 [ Gate.rzz 0.7 0 1 ]) (u2 (Decompose.rzz_to_std 0.7 0 1)));
    case "rxx to std" (fun () ->
        check_mat_phase "rxx" (u2 [ Gate.rxx 0.7 0 1 ]) (u2 (Decompose.rxx_to_std 0.7 0 1)));
    case "ryy to std" (fun () ->
        check_mat_phase "ryy" (u2 [ Gate.ryy 0.7 0 1 ]) (u2 (Decompose.ryy_to_std 0.7 0 1)));
    case "iswap via interactions" (fun () ->
        check_mat_phase "iswap" (u2 [ Gate.iswap 0 1 ]) (u2 (Decompose.iswap_to_interactions 0 1)));
    case "cnot via iswap" (fun () ->
        check_mat_phase "cnot" (u2 [ Gate.cnot 0 1 ]) (u2 (Decompose.cnot_via_iswap 0 1)));
    case "to_isa produces only isa kinds" (fun () ->
        let c =
          Circuit.make 4
            [ Gate.ccx 0 1 2; Gate.iswap 2 3; Gate.rzz 0.4 0 3; Gate.cz 1 2;
              Gate.cphase 0.9 0 1; Gate.sqrt_iswap 1 3 ]
        in
        let lowered = Decompose.to_isa c in
        check_bool "all isa" true
          (List.for_all (fun g -> Decompose.isa_kind g.Gate.kind) (Circuit.gates lowered)));
    case "to_isa preserves semantics" (fun () ->
        let c = Circuit.make 3 [ Gate.ccx 0 1 2; Gate.cz 0 2; Gate.rzz 0.8 1 2 ] in
        check_bool "semantics" true (Circuit.equal_semantics ~eps:1e-8 c (Decompose.to_isa c)));
    case "to_isa leaves isa circuits alone" (fun () ->
        let c = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.swap 0 1 ] in
        check_int "unchanged" 3 (Circuit.n_gates (Decompose.to_isa c))) ]

let pauli_cases =
  [ case "of_string roundtrip" (fun () ->
        let p = Pauli.of_string 1.5 "IXYZ" in
        check_int "qubits" 4 (Pauli.n_qubits p);
        Alcotest.(check string) "print" "1.5*IXYZ" (Pauli.to_string p));
    case "of_string bad char raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Pauli.of_string: bad character q") (fun () ->
            ignore (Pauli.of_string 1.0 "IXq")));
    case "support and weight" (fun () ->
        let p = Pauli.of_string 1.0 "IXIZ" in
        Alcotest.(check (list int)) "support" [ 1; 3 ] (Pauli.support p);
        check_int "weight" 2 (Pauli.weight p));
    case "commutation rules" (fun () ->
        let xx = Pauli.of_string 1.0 "XX" and zz = Pauli.of_string 1.0 "ZZ" in
        let xi = Pauli.of_string 1.0 "XI" and zi = Pauli.of_string 1.0 "ZI" in
        check_bool "XX,ZZ commute" true (Pauli.commutes xx zz);
        check_bool "XI,ZI anticommute" false (Pauli.commutes xi zi));
    case "commutes matches matrices" (fun () ->
        let strings = [ "XY"; "ZI"; "YY"; "IZ"; "XZ" ] in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let pa = Pauli.of_string 1.0 a and pb = Pauli.of_string 1.0 b in
                check_bool
                  (Printf.sprintf "%s vs %s" a b)
                  (Qnum.Cmat.commute ~eps:1e-9 (Pauli.matrix pa) (Pauli.matrix pb))
                  (Pauli.commutes pa pb))
              strings)
          strings);
    case "matrix of ZZ" (fun () ->
        let m = Pauli.matrix (Pauli.of_string 1.0 "ZZ") in
        check_mat "Z⊗Z" (Qnum.Cmat.kron Unitary.pauli_z Unitary.pauli_z) m);
    case "mul_phase XY = iZ per site" (fun () ->
        let x = Pauli.of_string 1.0 "X" and y = Pauli.of_string 1.0 "Y" in
        let phase, prod = Pauli.mul_phase x y in
        check_bool "phase i" true (Qnum.Cx.equal Qnum.Cx.i phase);
        Alcotest.(check string) "Z" "1*Z" (Pauli.to_string prod));
    case "rotation circuit implements exp" (fun () ->
        List.iter
          (fun s ->
            let p = Pauli.of_string 1.0 s in
            let theta = 0.83 in
            let gates = Pauli.rotation_circuit ~theta p in
            let circuit = Circuit.make (Pauli.n_qubits p) gates in
            (* exp(-i θ/2 P) *)
            let h = Qnum.Cmat.scale (Qnum.Cx.make 0. (-.theta /. 2.)) (Pauli.matrix p) in
            check_mat_phase ~eps:1e-8
              (Printf.sprintf "exp rotation %s" s)
              (Qnum.Expm.expm h)
              (Circuit.unitary circuit))
          [ "Z"; "XI"; "ZZ"; "XY"; "IZX"; "YZY" ]);
    case "identity string yields no gates" (fun () ->
        check_int "empty" 0
          (List.length (Pauli.rotation_circuit ~theta:0.5 (Pauli.of_string 1.0 "III")))) ]

let qasm_cases =
  [ case "parse basic program" (fun () ->
        let src =
          "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
           h q[0];\ncx q[0],q[1];\nrz(pi/4) q[2];\nbarrier q;\nmeasure q -> c;\n"
        in
        let c = Qasm.of_string src in
        check_int "qubits" 3 (Circuit.n_qubits c);
        check_int "gates" 3 (Circuit.n_gates c));
    case "angle expressions" (fun () ->
        let c = Qasm.of_string "qreg q[1]; rx(2*pi/4 - 0.5) q[0];" in
        match Circuit.gates c with
        | [ { Gate.kind = Gate.Rx a; _ } ] ->
          check_float ~eps:1e-12 "angle" ((Float.pi /. 2.) -. 0.5) a
        | _ -> Alcotest.fail "expected one rx");
    case "negative and nested parens" (fun () ->
        let c = Qasm.of_string "qreg q[1]; rz(-(1+2)*2) q[0];" in
        match Circuit.gates c with
        | [ { Gate.kind = Gate.Rz a; _ } ] -> check_float "angle" (-6.) a
        | _ -> Alcotest.fail "expected one rz");
    case "comments stripped" (fun () ->
        let c = Qasm.of_string "// header\nqreg q[2]; h q[0]; // trailing\ncx q[0],q[1];" in
        check_int "gates" 2 (Circuit.n_gates c));
    case "unknown gate raises" (fun () ->
        Alcotest.check_raises "raises"
          (Qasm.Parse_error "unsupported statement \"bogus q[0]\"") (fun () ->
            ignore (Qasm.of_string "qreg q[2]; bogus q[0];")));
    case "unknown register raises" (fun () ->
        check_bool "raises parse error" true
          (try
             ignore (Qasm.of_string "qreg q[2]; h r[0];");
             false
           with Qasm.Parse_error _ -> true));
    case "roundtrip preserves semantics" (fun () ->
        let original =
          Circuit.make 3
            [ Gate.h 0; Gate.cnot 0 1; Gate.rz 0.123456789 2; Gate.swap 1 2;
              Gate.cphase 2.5 0 2; Gate.ccx 0 1 2; Gate.rzz (-0.7) 0 1 ]
        in
        let parsed = Qasm.of_string (Qasm.to_string original) in
        check_int "gate count" (Circuit.n_gates original) (Circuit.n_gates parsed);
        check_bool "same semantics" true (Circuit.equal_semantics ~eps:1e-8 original parsed));
    case "user gate definitions expand" (fun () ->
        let src =
          "OPENQASM 2.0;\nqreg q[3];\n\
           gate bell a, b { h a; cx a,b; }\n\
           bell q[0], q[1];\nbell q[1], q[2];\n"
        in
        let c = Qasm.of_string src in
        check_int "four gates" 4 (Circuit.n_gates c);
        check_bool "first is h q0" true
          (Gate.equal (Gate.h 0) (List.hd (Circuit.gates c))));
    case "parameterized gate definitions" (fun () ->
        let src =
          "qreg q[2];\n\
           gate zz(theta) a, b { cx a,b; rz(theta/2) b; cx a,b; }\n\
           zz(pi) q[0], q[1];\n"
        in
        let c = Qasm.of_string src in
        check_int "three gates" 3 (Circuit.n_gates c);
        (match Circuit.gates c with
         | [ _; { Gate.kind = Gate.Rz a; _ }; _ ] ->
           check_float ~eps:1e-12 "substituted" (Float.pi /. 2.) a
         | _ -> Alcotest.fail "unexpected expansion"));
    case "nested gate definitions" (fun () ->
        let src =
          "qreg q[2];\n\
           gate flip a { x a; }\n\
           gate twice a, b { flip a; flip b; flip a; }\n\
           twice q[1], q[0];\n"
        in
        let c = Qasm.of_string src in
        check_int "three x" 3 (Circuit.n_gates c);
        check_bool "maps formals" true
          (Gate.equal (Gate.x 1) (List.hd (Circuit.gates c))));
    case "unknown parameter in body raises" (fun () ->
        check_bool "raises" true
          (try
             ignore
               (Qasm.of_string
                  "qreg q[1]; gate g a { rz(oops) a; } g q[0];");
             false
           with Qasm.Parse_error _ -> true));
    case "roundtrip of generated benchmark" (fun () ->
        let c = Qapps.Qaoa.triangle_example () in
        let parsed = Qasm.of_string (Qasm.to_string c) in
        check_bool "semantics" true (Circuit.equal_semantics ~eps:1e-8 c parsed)) ]

let suites =
  [ ("qgate.gate", gate_cases);
    ("qgate.unitary", unitary_cases);
    ("qgate.circuit", circuit_cases);
    ("qgate.decompose", decompose_cases);
    ("qgate.pauli", pauli_cases);
    ("qgate.qasm", qasm_cases) ]
