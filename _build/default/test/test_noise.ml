(* tests for the density-matrix simulator, noise channels and the
   latency-fidelity connection, plus the QFT benchmark and the
   Appendix-A architecture models *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Density = Qsim.Density
module State = Qsim.State

let density_cases =
  [ case "zero state is pure with trace 1" (fun () ->
        let d = Density.zero 2 in
        check_float ~eps:1e-12 "trace" 1. (Density.trace d);
        check_float ~eps:1e-12 "purity" 1. (Density.purity d));
    case "unitary evolution preserves purity" (fun () ->
        let d =
          Density.apply_circuit (Density.zero 2)
            (Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.rz 0.7 1 ])
        in
        check_float ~eps:1e-9 "trace" 1. (Density.trace d);
        check_float ~eps:1e-9 "purity" 1. (Density.purity d));
    case "density matches state vector" (fun () ->
        let circuit = Circuit.make 3 [ Gate.h 0; Gate.cnot 0 1; Gate.cnot 1 2 ] in
        let st = State.apply_circuit (State.zero 3) circuit in
        let d = Density.apply_circuit (Density.zero 3) circuit in
        check_float ~eps:1e-9 "fidelity 1" 1. (Density.fidelity_to_state d st);
        let probs_d = Density.probabilities d in
        Array.iteri
          (fun k p -> check_float ~eps:1e-9 "probs agree" (State.probability st k) p)
          probs_d);
    case "amplitude damping decays |1>" (fun () ->
        let d = Density.apply_gate (Density.zero 1) (Gate.x 0) in
        let d = Density.apply_kraus d ~qubit:0 (Density.amplitude_damping ~gamma:0.3) in
        let probs = Density.probabilities d in
        check_float ~eps:1e-9 "P(1) reduced" 0.7 probs.(1);
        check_float ~eps:1e-9 "P(0) grows" 0.3 probs.(0));
    case "phase damping kills coherence, keeps populations" (fun () ->
        let d = Density.apply_gate (Density.zero 1) (Gate.h 0) in
        let d = Density.apply_kraus d ~qubit:0 (Density.phase_damping ~lambda:1.0) in
        let probs = Density.probabilities d in
        check_float ~eps:1e-9 "P(0)" 0.5 probs.(0);
        check_float ~eps:1e-9 "purity halves" 0.5 (Density.purity d));
    case "non-trace-preserving kraus raises" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Density.apply_kraus: operators are not trace-preserving")
          (fun () ->
            ignore
              (Density.apply_kraus (Density.zero 1) ~qubit:0
                 [ Qnum.Cmat.scale_real 0.5 Qgate.Unitary.pauli_x ])));
    case "idle decay matches T1 law" (fun () ->
        let t1 = 100. and t2 = 100. in
        let d = Density.apply_gate (Density.zero 1) (Gate.x 0) in
        let d = Density.idle ~t1 ~t2 ~duration:50. d 0 in
        check_float ~eps:1e-9 "P(1) = e^{-t/T1}" (Float.exp (-0.5))
          (Density.probabilities d).(1));
    case "idle coherence matches T2 law" (fun () ->
        let t1 = 200. and t2 = 120. in
        let d = Density.apply_gate (Density.zero 1) (Gate.h 0) in
        let d = Density.idle ~t1 ~t2 ~duration:60. d 0 in
        (* off-diagonal element of rho decays as e^{-t/T2} *)
        let m = Density.matrix d in
        check_float ~eps:1e-9 "coherence" (0.5 *. Float.exp (-.(60. /. 120.)))
          (Qnum.Cx.abs (Qnum.Cmat.get m 0 1)));
    case "t2 > 2 t1 rejected" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Density.idle: T2 must not exceed 2*T1") (fun () ->
            ignore (Density.idle ~t1:10. ~t2:30. ~duration:1. (Density.zero 1) 0))) ]

let noisy_cases =
  [ case "noiseless limit gives fidelity 1" (fun () ->
        let gdg =
          Qgdg.Gdg.of_circuit ~latency:(fun _ -> 10.)
            (Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1 ])
        in
        let s = Qsched.Asap.schedule gdg in
        let f =
          Qsim.Noisy_sim.schedule_fidelity
            ~noise:{ Qsim.Noisy_sim.t1 = 1e15; t2 = 1e15 } s
        in
        check_float ~eps:1e-9 "fidelity" 1. f);
    case "longer schedules lose more fidelity" (fun () ->
        let circuit = Circuit.make 2 [ Gate.h 0; Gate.cnot 0 1; Gate.rz 0.4 1 ] in
        let schedule_with scale =
          let gdg = Qgdg.Gdg.of_circuit ~latency:(fun _ -> scale) circuit in
          Qsched.Asap.schedule gdg
        in
        let noise = { Qsim.Noisy_sim.t1 = 3_000.; t2 = 2_000. } in
        let fast = Qsim.Noisy_sim.schedule_fidelity ~noise (schedule_with 10.) in
        let slow = Qsim.Noisy_sim.schedule_fidelity ~noise (schedule_with 100.) in
        check_bool "monotone in latency" true (fast > slow);
        check_bool "both physical" true (slow > 0. && fast <= 1. +. 1e-9));
    case "aggregated compilation preserves more fidelity" (fun () ->
        let graph =
          Qgraph.Graph.of_edges 5 (List.init 5 (fun k -> (k, (k + 1) mod 5)))
        in
        let circuit = Qapps.Qaoa.circuit ~gamma:0.4 ~beta:1.2 graph in
        let config =
          { Qcc.Compiler.default_config with
            Qcc.Compiler.topology = Some (Qmap.Topology.line 5) }
        in
        let fid strategy =
          let r = Qcc.Compiler.compile ~config ~strategy circuit in
          Qsim.Noisy_sim.schedule_fidelity r.Qcc.Compiler.schedule
        in
        check_bool "agg beats isa" true
          (fid Qcc.Strategy.Cls_aggregation > fid Qcc.Strategy.Isa));
    case "survival estimate decays" (fun () ->
        let a = Qsim.Noisy_sim.survival_estimate ~n_qubits:3 100. in
        let b = Qsim.Noisy_sim.survival_estimate ~n_qubits:3 1000. in
        check_bool "monotone" true (a > b && b > 0.)) ]

let qft_cases =
  [ case "matches dft matrix up to 4 qubits" (fun () ->
        List.iter
          (fun n ->
            check_mat_phase ~eps:1e-8
              (Printf.sprintf "qft %d" n)
              (Qapps.Qft.matrix n)
              (Circuit.unitary (Qapps.Qft.circuit n)))
          [ 1; 2; 3; 4 ]);
    case "gate count" (fun () ->
        (* n H + n(n-1)/2 controlled phases + floor(n/2) swaps *)
        let n = 5 in
        check_int "count" (5 + 10 + 2) (Circuit.n_gates (Qapps.Qft.circuit n)));
    case "approximate qft drops small rotations" (fun () ->
        let full = Circuit.n_gates (Qapps.Qft.circuit 6) in
        let approx = Circuit.n_gates (Qapps.Qft.circuit ~approximation:2 6) in
        check_bool "fewer gates" true (approx < full));
    case "qft has low commutativity" (fun () ->
        let c =
          Qapps.Characteristics.analyze
            (Qgate.Decompose.to_isa (Qapps.Qft.circuit 8))
        in
        check_bool "below qaoa" true (c.Qapps.Characteristics.commutativity < 0.9));
    case "suite exposes qft instances" (fun () ->
        check_int "12 qubits" 12
          (Circuit.n_qubits (Lazy.force (Qapps.Suite.find "qft-n12").Qapps.Suite.circuit))) ]

let arch_cases =
  let dev i = Qcontrol.Device.with_interaction i Qcontrol.Device.default in
  let gt i g = Qcontrol.Latency_model.gate_time (dev i) g in
  [ case "iswap is native-fast on xy" (fun () ->
        check_bool "xy < zz" true
          (gt Qcontrol.Device.Xy (Gate.iswap 0 1)
           < gt Qcontrol.Device.Zz (Gate.iswap 0 1)));
    case "cphase is native-fast on zz" (fun () ->
        check_bool "zz <= xy" true
          (gt Qcontrol.Device.Zz (Gate.cz 0 1) <= gt Qcontrol.Device.Xy (Gate.cz 0 1)));
    case "swap is native-fast on heisenberg (appendix a)" (fun () ->
        let h = gt Qcontrol.Device.Heisenberg (Gate.swap 0 1) in
        check_bool "beats xy" true (h < gt Qcontrol.Device.Xy (Gate.swap 0 1));
        check_bool "beats zz" true (h < gt Qcontrol.Device.Zz (Gate.swap 0 1));
        (* a single Heisenberg segment: pi/4 / mu2 *)
        check_float ~eps:0.1 "39.3 ns" 39.27 h);
    case "grape synthesizes cphase on a zz device" (fun () ->
        let device = dev Qcontrol.Device.Zz in
        let p =
          { Qcontrol.Grape.n_qubits = 2;
            couplings = [ (0, 1) ];
            target = Qgate.Unitary.of_kind (Gate.Cphase 1.2);
            duration = 45.;
            n_steps = 45;
            device }
        in
        let r = Qcontrol.Grape.optimize ~max_iterations:800 ~target_fidelity:0.99 p in
        check_bool "converges" true (r.Qcontrol.Grape.fidelity >= 0.99));
    case "interaction times ordering for canonical classes" (fun () ->
        let c = Qcontrol.Weyl.swap_coords in
        let t i = Qcontrol.Weyl.interaction_time (dev i) c in
        check_bool "heisenberg fastest for swap" true
          (t Qcontrol.Device.Heisenberg < t Qcontrol.Device.Xy
           && t Qcontrol.Device.Xy < t Qcontrol.Device.Zz));
    case "compilation end to end on each architecture" (fun () ->
        let circuit = Qapps.Qaoa.triangle_example () in
        List.iter
          (fun i ->
            let config =
              { Qcc.Compiler.default_config with
                Qcc.Compiler.device = dev i;
                topology = Some (Qmap.Topology.line 3) }
            in
            let r =
              Qcc.Compiler.compile ~config ~strategy:Qcc.Strategy.Cls_aggregation
                circuit
            in
            check_bool
              (Qcontrol.Device.interaction_name i)
              true
              (r.Qcc.Compiler.latency > 0.))
          [ Qcontrol.Device.Xy; Qcontrol.Device.Zz; Qcontrol.Device.Heisenberg ]) ]

let suites =
  [ ("qsim.density", density_cases);
    ("qsim.noisy", noisy_cases);
    ("qapps.qft", qft_cases);
    ("qcontrol.architectures", arch_cases) ]
