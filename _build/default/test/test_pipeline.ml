(* pipeline fuzzing: compile random circuits under every strategy and
   check the global invariants that no unit test pins down individually:
   schedules are overlap-free, respect the device topology and the width
   limit, and implement the original unitary up to the qubit placement *)

open Util
module Gate = Qgate.Gate
module Circuit = Qgate.Circuit
module Compiler = Qcc.Compiler
module Strategy = Qcc.Strategy

let topologies n =
  [ Qmap.Topology.line n; Qmap.Topology.full n; Qmap.Topology.grid_for n ]

let permutation_ok ~n circuit (r : Compiler.result) =
  let n_sites = Qgate.Circuit.n_qubits (Qsched.Schedule.to_circuit r.Compiler.schedule) in
  if n_sites > 5 then true (* keep dense checks small *)
  else begin
    let gates = List.concat (Compiler.blocks r) in
    let padded = Circuit.make n_sites (Circuit.gates circuit) in
    let u_sites = Circuit.unitary (Circuit.make n_sites gates) in
    let u_logical = Circuit.unitary padded in
    let p_init =
      Qmap.Placement.permutation_unitary ~n_qubits:n_sites
        r.Compiler.initial_placement
    in
    let p_final =
      Qmap.Placement.permutation_unitary ~n_qubits:n_sites
        r.Compiler.final_placement
    in
    ignore n;
    Qnum.Cmat.equal_up_to_phase ~eps:1e-7
      (Qnum.Cmat.mul p_final u_logical)
      (Qnum.Cmat.mul u_sites p_init)
  end

let random_mixed_circuit rng n =
  (* a mix of plain rotations, entanglers and diagonal blocks so every
     pipeline stage has something to chew on *)
  let gates = ref [] in
  for _ = 1 to 4 + Qgraph.Rand.int rng 14 do
    let q = Qgraph.Rand.int rng n in
    let r = (q + 1 + Qgraph.Rand.int rng (n - 1)) mod n in
    let theta = Qgraph.Rand.float rng 6.28 in
    let g =
      match Qgraph.Rand.int rng 8 with
      | 0 -> [ Gate.h q ]
      | 1 -> [ Gate.rx theta q ]
      | 2 -> [ Gate.rz theta q ]
      | 3 -> [ Gate.t q ]
      | 4 -> [ Gate.cnot q r ]
      | 5 -> [ Gate.swap q r ]
      | 6 -> [ Gate.cnot q r; Gate.rz theta r; Gate.cnot q r ]
      | _ -> [ Gate.cz q r ]
    in
    gates := !gates @ g
  done;
  Circuit.make n !gates

let check_result ~topology ~width circuit (r : Compiler.result) =
  let schedule = r.Compiler.schedule in
  Qsched.Schedule.no_qubit_overlap schedule
  && List.for_all
       (fun block ->
         let support =
           List.sort_uniq compare (List.concat_map Gate.qubits block)
         in
         List.length support <= max width 3
         && List.for_all
              (fun g ->
                match Gate.qubits g with
                | [ a; b ] -> Qmap.Topology.connected topology a b
                | _ -> true)
              block)
       (Compiler.blocks r)
  && permutation_ok ~n:(Circuit.n_qubits circuit) circuit r

let fuzz_strategy strategy =
  qcheck ~count:15
    (Printf.sprintf "pipeline invariants: %s" (Strategy.to_string strategy))
    QCheck.(pair (int_range 2 4) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Qgraph.Rand.create seed in
      let circuit = random_mixed_circuit rng n in
      List.for_all
        (fun topology ->
          let width = 2 + Qgraph.Rand.int rng 6 in
          let config =
            { Compiler.default_config with
              Compiler.topology = Some topology;
              width_limit = width }
          in
          let r = Compiler.compile ~config ~strategy circuit in
          check_result ~topology ~width circuit r)
        (topologies n))

let failure_injection_cases =
  [ case "compiling an empty circuit" (fun () ->
        let r =
          Compiler.compile ~strategy:Strategy.Cls_aggregation (Circuit.empty 3)
        in
        check_float "zero latency" 0. r.Compiler.latency;
        check_int "no instructions" 0 r.Compiler.n_instructions);
    case "single-gate circuit" (fun () ->
        let r =
          Compiler.compile ~strategy:Strategy.Cls_aggregation
            (Circuit.make 1 [ Gate.h 0 ])
        in
        check_int "one instruction" 1 r.Compiler.n_instructions);
    case "circuit with idle qubits" (fun () ->
        (* qubits 1..3 never touched: compiles and schedules fine *)
        let r =
          Compiler.compile ~strategy:Strategy.Cls_aggregation
            (Circuit.make 4 [ Gate.x 0 ])
        in
        check_bool "latency positive" true (r.Compiler.latency > 0.));
    case "device too small raises" (fun () ->
        let config =
          { Compiler.default_config with
            Compiler.topology = Some (Qmap.Topology.line 2) }
        in
        check_bool "raises" true
          (try
             ignore
               (Compiler.compile ~config ~strategy:Strategy.Isa
                  (Circuit.make 3 [ Gate.cnot 0 2 ]));
             false
           with Invalid_argument _ -> true));
    case "duplicate-angle degenerate rotations survive" (fun () ->
        (* zero-angle rotations must not break costing or scheduling *)
        let c =
          Circuit.make 2 [ Gate.rz 0. 0; Gate.rx 0. 1; Gate.cnot 0 1; Gate.rz 0. 1 ]
        in
        let r = Compiler.compile ~strategy:Strategy.Cls_aggregation c in
        check_bool "finite" true (Float.is_finite r.Compiler.latency)) ]

let suites =
  [ ("pipeline.fuzz",
     List.map fuzz_strategy Strategy.all @ failure_injection_cases) ]
