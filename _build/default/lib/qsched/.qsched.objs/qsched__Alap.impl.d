lib/qsched/alap.ml: Float Hashtbl List Qgdg Schedule
