lib/qsched/schedule.ml: Float Format Hashtbl List Option Qgate Qgdg
