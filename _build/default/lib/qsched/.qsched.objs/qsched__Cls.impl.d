lib/qsched/cls.ml: Array Float Hashtbl List Qgdg Qgraph Schedule
