lib/qsched/schedule.mli: Format Qgate Qgdg
