lib/qsched/alap.mli: Qgdg Schedule
