lib/qsched/cls.mli: Qgdg Schedule
