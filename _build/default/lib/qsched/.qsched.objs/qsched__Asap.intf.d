lib/qsched/asap.mli: Qgdg Schedule
