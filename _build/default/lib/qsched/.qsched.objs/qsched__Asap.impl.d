lib/qsched/asap.ml: List Qgdg Schedule
