module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

let alap_starts g =
  let _, succ = Gdg.neighbor_tables g in
  let _, makespan = Gdg.asap g in
  let latest_start = Hashtbl.create (Gdg.size g) in
  List.iter
    (fun (i : Inst.t) ->
      let latest_finish =
        List.fold_left
          (fun acc q ->
            match Hashtbl.find_opt succ (i.Inst.id, q) with
            | None -> acc
            | Some c -> Float.min acc (Hashtbl.find latest_start c))
          makespan i.Inst.qubits
      in
      Hashtbl.replace latest_start i.Inst.id (latest_finish -. i.Inst.latency))
    (List.rev (Gdg.insts g));
  latest_start

let schedule g =
  let latest_start = alap_starts g in
  let entries =
    List.map
      (fun (i : Inst.t) ->
        let start = Hashtbl.find latest_start i.Inst.id in
        { Schedule.inst = i; start; finish = start +. i.Inst.latency })
      (Gdg.insts g)
  in
  Schedule.make ~n_qubits:(Gdg.n_qubits g) entries

let slack g =
  let latest_start = alap_starts g in
  let asap, _ = Gdg.asap g in
  List.map
    (fun (id, (start, _)) -> (id, Hashtbl.find latest_start id -. start))
    asap

let critical_path g =
  slack g
  |> List.filter (fun (_, s) -> s <= 1e-9)
  |> List.map (fun (id, _) -> Gdg.find g id)
