(** Baseline list scheduler: chain-order as-soon-as-possible.

    Every instruction starts as soon as its chain predecessors on all its
    qubits have finished — the standard logical scheduling of gate-based
    compilation (paper Fig. 5, left), with no commutativity reasoning. *)

val schedule : Qgdg.Gdg.t -> Schedule.t
