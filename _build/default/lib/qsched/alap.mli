(** As-late-as-possible scheduling and slack analysis.

    The ALAP deadlines complement the ASAP starts: their difference is the
    slack that the monotonic-action check consumes, the quantity Fig. 8's
    action-space discussion is about. Exposed for analysis tooling and for
    the scheduler tests. *)

val schedule : Qgdg.Gdg.t -> Schedule.t
(** Every instruction starts as late as the chain successors allow while
    preserving the ASAP makespan. *)

val slack : Qgdg.Gdg.t -> (int * float) list
(** Per-instruction slack (ALAP start − ASAP start), in topological
    order. Zero-slack instructions form the critical path. *)

val critical_path : Qgdg.Gdg.t -> Qgdg.Inst.t list
(** The zero-slack instructions, in topological order. *)
