let schedule g =
  let timed, _ = Qgdg.Gdg.asap g in
  let entries =
    List.map
      (fun (id, (start, finish)) ->
        { Schedule.inst = Qgdg.Gdg.find g id; start; finish })
      timed
  in
  Schedule.make ~n_qubits:(Qgdg.Gdg.n_qubits g) entries
