(** Commutativity-aware Logical Scheduling — CLS (paper §3.3.2, Alg. 1).

    An event-driven list scheduler over the GDG's per-qubit commutation
    groups: at each time point the candidate instructions are those whose
    every qubit has them in its {e current} commutation group and free;
    conflicts (shared qubits) are resolved by scheduling a maximal
    matching of the candidates' computational graph (qubits as vertices,
    instructions as edges, 1-qubit instructions as self-loops — Fig. 7).
    Instructions wider than two qubits (post-aggregation) claim their
    qubits greedily before the matching round. *)

val schedule : Qgdg.Gdg.t -> Schedule.t
(** Raises [Failure] on a malformed (cyclic) GDG. *)

val makespan : Qgdg.Gdg.t -> float
