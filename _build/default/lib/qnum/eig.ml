let char_poly m =
  if not (Cmat.is_square m) then invalid_arg "Eig.char_poly: not square";
  let n = Cmat.rows m in
  (* Faddeev–LeVerrier: M_1 = M, c_{n-1} = -tr M_1,
     M_k = M (M_{k-1} + c_{n-k+1} I), c_{n-k} = -tr(M_k)/k.
     p(z) = z^n + c_{n-1} z^{n-1} + ... + c_0 *)
  let coeffs = Array.make (n + 1) Cx.zero in
  coeffs.(n) <- Cx.one;
  let mk = ref (Cmat.copy m) in
  for k = 1 to n do
    if k > 1 then
      mk :=
        Cmat.mul m
          (Cmat.add !mk (Cmat.scale coeffs.(n - k + 1) (Cmat.identity n)));
    coeffs.(n - k) <- Cx.scale (-1. /. float_of_int k) (Cmat.trace !mk)
  done;
  coeffs

let eigenvalues ?(tol = 1e-13) m =
  if Cmat.rows m = 0 then [||] else Poly.roots ~tol (char_poly m)
