let expm ?(tol = 1e-14) m =
  if not (Cmat.is_square m) then invalid_arg "Expm.expm: not square";
  let n = Cmat.rows m in
  if n = 0 then Cmat.identity 0
  else begin
    (* scale so the scaled matrix has small norm, Taylor-expand, then square *)
    let norm = Cmat.frobenius_norm m in
    let s =
      if norm <= 0.5 then 0
      else int_of_float (Float.ceil (Float.log (norm /. 0.5) /. Float.log 2.))
    in
    let scaled = Cmat.scale_real (1. /. Float.pow 2. (float_of_int s)) m in
    let sum = ref (Cmat.identity n) in
    let term = ref (Cmat.identity n) in
    let k = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      term := Cmat.scale_real (1. /. float_of_int !k) (Cmat.mul !term scaled);
      sum := Cmat.add !sum !term;
      incr k;
      if Cmat.frobenius_norm !term <= tol || !k > 60 then continue_ := false
    done;
    let result = ref !sum in
    for _ = 1 to s do
      result := Cmat.mul !result !result
    done;
    !result
  end

let propagator h dt =
  expm (Cmat.scale (Cx.make 0. (-.dt)) h)
