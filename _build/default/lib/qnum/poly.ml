type t = Cx.t array

let eval p z =
  let acc = ref Cx.zero in
  for k = Array.length p - 1 downto 0 do
    acc := Cx.add (Cx.mul !acc z) p.(k)
  done;
  !acc

let derive p =
  let n = Array.length p in
  if n <= 1 then [| Cx.zero |]
  else Array.init (n - 1) (fun k -> Cx.scale (float_of_int (k + 1)) p.(k + 1))

let degree p =
  let d = ref (-1) in
  Array.iteri (fun k c -> if not (Cx.is_zero ~eps:0. c) then d := k) p;
  !d

let monic p =
  let d = degree p in
  if d < 0 then invalid_arg "Poly.monic: zero polynomial";
  let lead = p.(d) in
  Array.init (d + 1) (fun k -> Cx.div p.(k) lead)

let roots ?(iterations = 500) ?(tol = 1e-13) p =
  let p = monic p in
  let n = Array.length p - 1 in
  if n < 1 then invalid_arg "Poly.roots: degree must be at least 1";
  (* start from non-real points spread on a circle sized by a root bound *)
  let bound =
    Array.fold_left (fun acc c -> Float.max acc (Cx.abs c)) 0. p +. 1.
  in
  let z =
    Array.init n (fun k ->
        Cx.polar (0.5 *. bound)
          ((2. *. Float.pi *. float_of_int k /. float_of_int n) +. 0.4))
  in
  let step () =
    let worst = ref 0. in
    for k = 0 to n - 1 do
      let denom = ref Cx.one in
      for j = 0 to n - 1 do
        if j <> k then denom := Cx.mul !denom (Cx.sub z.(k) z.(j))
      done;
      if Cx.abs !denom > 1e-300 then begin
        let delta = Cx.div (eval p z.(k)) !denom in
        z.(k) <- Cx.sub z.(k) delta;
        let d = Cx.abs delta in
        if d > !worst then worst := d
      end
      else
        (* perturb coincident iterates so the iteration can separate them *)
        z.(k) <- Cx.add z.(k) (Cx.make 1e-6 1e-6)
    done;
    !worst
  in
  let rec loop remaining =
    if remaining > 0 then begin
      let change = step () in
      if change > tol then loop (remaining - 1)
    end
  in
  loop iterations;
  z

let of_roots rs =
  let p = ref [| Cx.one |] in
  Array.iter
    (fun r ->
      let old = !p in
      let n = Array.length old in
      let next = Array.make (n + 1) Cx.zero in
      (* multiply by (z - r) *)
      for k = 0 to n - 1 do
        next.(k + 1) <- Cx.add next.(k + 1) old.(k);
        next.(k) <- Cx.sub next.(k) (Cx.mul r old.(k))
      done;
      p := next)
    rs;
  !p
