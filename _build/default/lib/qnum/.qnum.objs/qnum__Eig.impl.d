lib/qnum/eig.ml: Array Cmat Cx Poly
