lib/qnum/vec.ml: Array Cx Float Format
