lib/qnum/poly.mli: Cx
