lib/qnum/expm.mli: Cmat
