lib/qnum/vec.mli: Cx Format
