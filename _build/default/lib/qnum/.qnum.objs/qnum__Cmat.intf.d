lib/qnum/cmat.mli: Cx Format Vec
