lib/qnum/cx.ml: Float Format
