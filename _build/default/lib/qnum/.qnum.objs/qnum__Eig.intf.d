lib/qnum/eig.mli: Cmat Cx Poly
