lib/qnum/cx.mli: Format
