lib/qnum/cmat.ml: Array Cx Float Format Hashtbl List Printf Vec
