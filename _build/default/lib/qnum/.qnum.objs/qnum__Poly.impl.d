lib/qnum/poly.ml: Array Cx Float
