lib/qnum/expm.ml: Cmat Cx Float
