(** Complex polynomials and root finding.

    Coefficients are stored lowest-degree first: [c.(k)] multiplies z^k.
    Root finding uses the Durand–Kerner (Weierstrass) simultaneous
    iteration, which is robust for the low-degree (≤ 8) characteristic
    polynomials this project needs. *)

type t = Cx.t array
(** [c] represents the polynomial Σ c.(k)·z^k. *)

val eval : t -> Cx.t -> Cx.t
(** Horner evaluation. *)

val derive : t -> t

val monic : t -> t
(** Divide by the leading coefficient. Raises [Invalid_argument] when all
    coefficients are zero. *)

val roots : ?iterations:int -> ?tol:float -> t -> Cx.t array
(** All complex roots (with multiplicity) of a degree-n polynomial, n ≥ 1.
    [iterations] caps the Durand–Kerner sweeps (default 500); [tol] is the
    convergence threshold on the max root update (default 1e-13). *)

val of_roots : Cx.t array -> t
(** Monic polynomial with the given roots. *)
