type t = { re : float; im : float }

let make re im = { re; im }
let zero = { re = 0.; im = 0. }
let one = { re = 1.; im = 0. }
let i = { re = 0.; im = 1. }
let of_float x = { re = x; im = 0. }
let re z = z.re
let im z = z.im
let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im);
    im = (a.re *. b.im) +. (a.im *. b.re) }

let conj a = { re = a.re; im = -.a.im }
let scale s a = { re = s *. a.re; im = s *. a.im }
let norm2 a = (a.re *. a.re) +. (a.im *. a.im)
let abs a = Float.hypot a.re a.im

let div a b =
  let d = norm2 b in
  if d = 0. then raise Division_by_zero;
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d;
    im = ((a.im *. b.re) -. (a.re *. b.im)) /. d }

let inv a = div one a
let arg a = if a.re = 0. && a.im = 0. then 0. else Float.atan2 a.im a.re

let sqrt a =
  let m = abs a in
  if m = 0. then zero
  else begin
    let r = Float.sqrt ((m +. a.re) /. 2.) in
    let s = Float.sqrt ((m -. a.re) /. 2.) in
    { re = r; im = (if a.im >= 0. then s else -.s) }
  end

let polar r theta = { re = r *. Float.cos theta; im = r *. Float.sin theta }
let cis theta = polar 1. theta
let exp a = polar (Float.exp a.re) a.im
let log a = { re = Float.log (abs a); im = arg a }
let pow z w = if z.re = 0. && z.im = 0. then zero else exp (mul w (log z))

let equal ?(eps = 1e-12) a b =
  Float.abs (a.re -. b.re) <= eps && Float.abs (a.im -. b.im) <= eps

let is_real ?(eps = 1e-12) a = Float.abs a.im <= eps
let is_zero ?(eps = 1e-12) a = Float.abs a.re <= eps && Float.abs a.im <= eps
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg

let pp ppf z =
  if z.im >= 0. then Format.fprintf ppf "%g+%gi" z.re z.im
  else Format.fprintf ppf "%g-%gi" z.re (Float.abs z.im)

let to_string z = Format.asprintf "%a" pp z
