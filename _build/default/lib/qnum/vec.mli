(** Dense complex vectors.

    Backed by two mutable float arrays (real and imaginary parts) so the
    state-vector simulator can update amplitudes in place. *)

type t

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val dim : t -> int

val init : int -> (int -> Cx.t) -> t
val of_array : Cx.t array -> t
val to_array : t -> Cx.t array
val copy : t -> t

val get : t -> int -> Cx.t
val set : t -> int -> Cx.t -> unit

val basis : int -> int -> t
(** [basis n k] is the [n]-dimensional standard basis vector e_k. *)

val scale : Cx.t -> t -> t
val scale_inplace : Cx.t -> t -> unit
val add : t -> t -> t
val sub : t -> t -> t

val dot : t -> t -> Cx.t
(** [dot a b] is the Hermitian inner product ⟨a|b⟩ = Σ conj(a_k)·b_k. *)

val norm2 : t -> float
(** Squared 2-norm. *)

val norm : t -> float

val normalize : t -> t
(** [normalize v] raises [Invalid_argument] on the zero vector. *)

val equal : ?eps:float -> t -> t -> bool

val max_abs_diff : t -> t -> float

val map : (Cx.t -> Cx.t) -> t -> t
val iteri : (int -> Cx.t -> unit) -> t -> unit
val fold : ('a -> Cx.t -> 'a) -> 'a -> t -> 'a

val unsafe_re : t -> float array
(** Underlying real-part array; mutations are visible in the vector. *)

val unsafe_im : t -> float array
(** Underlying imaginary-part array; mutations are visible in the vector. *)

val pp : Format.formatter -> t -> unit
