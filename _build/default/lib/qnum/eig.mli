(** Eigenvalues of small complex matrices.

    Computes the characteristic polynomial by the Faddeev–LeVerrier
    recurrence and extracts its roots with {!Poly.roots}. Intended for the
    4×4 matrices arising in the Weyl (canonical) decomposition of two-qubit
    unitaries; works for any modest dimension. *)

val char_poly : Cmat.t -> Poly.t
(** Characteristic polynomial det(zI − M), monic, lowest degree first.
    Raises [Invalid_argument] on non-square input. *)

val eigenvalues : ?tol:float -> Cmat.t -> Cx.t array
(** All eigenvalues with multiplicity. *)
