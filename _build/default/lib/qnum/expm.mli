(** Matrix exponential via scaling-and-squaring with a Taylor series.

    Accurate and simple for the small (≤ 2¹⁰) matrices this project
    manipulates. For skew-Hermitian arguments (the [-iH·dt] propagator case)
    the result is unitary to within the series tolerance. *)

val expm : ?tol:float -> Cmat.t -> Cmat.t
(** [expm m] is e^m for square [m]. [tol] bounds the truncated-term norm
    (default [1e-14]). Raises [Invalid_argument] on non-square input. *)

val propagator : Cmat.t -> float -> Cmat.t
(** [propagator h dt] is [exp (-i·h·dt)] for a Hamiltonian [h]: the
    Schrödinger time-evolution operator over a step of duration [dt]. *)
