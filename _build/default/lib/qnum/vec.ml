type t = { re : float array; im : float array }

let create n = { re = Array.make n 0.; im = Array.make n 0. }
let dim v = Array.length v.re

let init n f =
  let v = create n in
  for k = 0 to n - 1 do
    let z = f k in
    v.re.(k) <- Cx.re z;
    v.im.(k) <- Cx.im z
  done;
  v

let of_array a = init (Array.length a) (fun k -> a.(k))
let to_array v = Array.init (dim v) (fun k -> Cx.make v.re.(k) v.im.(k))
let copy v = { re = Array.copy v.re; im = Array.copy v.im }
let get v k = Cx.make v.re.(k) v.im.(k)

let set v k z =
  v.re.(k) <- Cx.re z;
  v.im.(k) <- Cx.im z

let basis n k =
  let v = create n in
  v.re.(k) <- 1.;
  v

let scale_inplace z v =
  let zr = Cx.re z and zi = Cx.im z in
  for k = 0 to dim v - 1 do
    let r = v.re.(k) and i = v.im.(k) in
    v.re.(k) <- (zr *. r) -. (zi *. i);
    v.im.(k) <- (zr *. i) +. (zi *. r)
  done

let scale z v =
  let w = copy v in
  scale_inplace z w;
  w

let add a b =
  if dim a <> dim b then invalid_arg "Vec.add: dimension mismatch";
  init (dim a) (fun k -> Cx.add (get a k) (get b k))

let sub a b =
  if dim a <> dim b then invalid_arg "Vec.sub: dimension mismatch";
  init (dim a) (fun k -> Cx.sub (get a k) (get b k))

let dot a b =
  if dim a <> dim b then invalid_arg "Vec.dot: dimension mismatch";
  let re = ref 0. and im = ref 0. in
  for k = 0 to dim a - 1 do
    let ar = a.re.(k) and ai = a.im.(k) in
    let br = b.re.(k) and bi = b.im.(k) in
    re := !re +. (ar *. br) +. (ai *. bi);
    im := !im +. (ar *. bi) -. (ai *. br)
  done;
  Cx.make !re !im

let norm2 v =
  let acc = ref 0. in
  for k = 0 to dim v - 1 do
    acc := !acc +. (v.re.(k) *. v.re.(k)) +. (v.im.(k) *. v.im.(k))
  done;
  !acc

let norm v = Float.sqrt (norm2 v)

let normalize v =
  let n = norm v in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  scale (Cx.of_float (1. /. n)) v

let max_abs_diff a b =
  if dim a <> dim b then invalid_arg "Vec.max_abs_diff: dimension mismatch";
  let worst = ref 0. in
  for k = 0 to dim a - 1 do
    let d = Cx.abs (Cx.sub (get a k) (get b k)) in
    if d > !worst then worst := d
  done;
  !worst

let equal ?(eps = 1e-9) a b = dim a = dim b && max_abs_diff a b <= eps
let map f v = init (dim v) (fun k -> f (get v k))

let iteri f v =
  for k = 0 to dim v - 1 do
    f k (get v k)
  done

let fold f acc v =
  let acc = ref acc in
  for k = 0 to dim v - 1 do
    acc := f !acc (get v k)
  done;
  !acc

let unsafe_re v = v.re
let unsafe_im v = v.im

let pp ppf v =
  Format.fprintf ppf "[@[<hov>";
  iteri
    (fun k z ->
      if k > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf z)
    v;
  Format.fprintf ppf "@]]"
