(** Complex scalars.

    A small, self-contained complex-number module used throughout the
    numerical substrate. Values are immutable records of two floats. *)

type t = { re : float; im : float }

val make : float -> float -> t
(** [make re im] is the complex number [re + i*im]. *)

val zero : t
val one : t
val i : t
(** The imaginary unit. *)

val of_float : float -> t
(** [of_float x] is the real number [x] viewed as a complex number. *)

val re : t -> float
val im : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] when [b] is exactly zero. *)

val inv : t -> t
val conj : t -> t
val scale : float -> t -> t
(** [scale s z] is [s * z] for a real scalar [s]. *)

val norm2 : t -> float
(** [norm2 z] is the squared modulus [re² + im²]. *)

val abs : t -> float
(** [abs z] is the modulus |z|, computed without overflow via [Float.hypot]. *)

val arg : t -> float
(** [arg z] is the principal argument in (-π, π]. [arg zero] is [0.]. *)

val sqrt : t -> t
(** Principal square root. *)

val exp : t -> t
(** Complex exponential. *)

val log : t -> t
(** Principal branch of the complex logarithm. *)

val pow : t -> t -> t
(** [pow z w] is [exp (w * log z)]; [pow zero _] is [zero]. *)

val polar : float -> float -> t
(** [polar r theta] is [r * exp (i * theta)]. *)

val cis : float -> t
(** [cis theta] is [exp (i * theta)]. *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [eps]
    (default [1e-12]). *)

val is_real : ?eps:float -> t -> bool
val is_zero : ?eps:float -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
