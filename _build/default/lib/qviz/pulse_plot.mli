(** SVG rendering of control pulses — the Fig. 4(c,d) picture.

    Each channel's piecewise-constant amplitude sequence becomes a step
    polyline over the time axis, one color per channel, with a legend —
    the same layout the paper uses to contrast gate-based concatenated
    pulses against aggregated optimized pulses. *)

val to_svg : ?width:int -> ?height:int -> ?title:string -> Qcontrol.Pulse.t -> string
(** Self-contained SVG (default 860×360). *)

val write_svg :
  ?width:int -> ?height:int -> ?title:string -> string -> Qcontrol.Pulse.t -> unit
