(** Schedule timelines: JSON export and SVG Gantt rendering.

    The SVG is the literal picture of the compiled program — one lane per
    qubit, one rectangle per instruction spanning its pulse duration —
    the visual counterpart of the latencies every experiment reports. *)

val to_json : Qsched.Schedule.t -> string
(** `{"n_qubits": …, "makespan": …, "entries": [{"id", "start",
    "finish", "qubits", "gates"}…]}` — minimal, dependency-free JSON. *)

val to_svg :
  ?width:int -> ?lane_height:int -> Qsched.Schedule.t -> string
(** A self-contained SVG document ([width] px wide, default 900; lanes
    [lane_height] px tall, default 26). Instructions spanning several
    qubits draw one rectangle across their lanes; colors cycle per
    instruction. *)

val write_json : string -> Qsched.Schedule.t -> unit
val write_svg : ?width:int -> ?lane_height:int -> string -> Qsched.Schedule.t -> unit
