(** Graphviz export of gate dependence graphs.

    Renders the GDG in the style of the paper's Fig. 6: one node per
    instruction (multi-gate aggregates show their member list), one edge
    per immediate per-qubit dependence, labelled with the qubit. *)

val of_gdg : ?highlight_critical:bool -> Qgdg.Gdg.t -> string
(** DOT source. With [highlight_critical] (default true), zero-slack
    instructions — the critical path the paper draws in red — are
    colored. *)

val write_file : ?highlight_critical:bool -> string -> Qgdg.Gdg.t -> unit
