module Inst = Qgdg.Inst
module Gdg = Qgdg.Gdg

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_gdg ?(highlight_critical = true) g =
  let critical =
    if highlight_critical then
      List.map (fun (i : Inst.t) -> i.Inst.id) (Qsched.Alap.critical_path g)
    else []
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph gdg {\n";
  Buffer.add_string buf "  rankdir=TB;\n";
  Buffer.add_string buf
    "  node [shape=box, style=filled, fillcolor=white, fontname=\"monospace\"];\n";
  List.iter
    (fun (i : Inst.t) ->
      let members =
        String.concat "\\n"
          (List.map (fun g -> escape (Qgate.Gate.to_string g)) i.Inst.gates)
      in
      let color =
        if List.mem i.Inst.id critical then ", fillcolor=\"#ffb3b3\"" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"#%d (%.1f ns)\\n%s\"%s];\n" i.Inst.id
           i.Inst.id i.Inst.latency members color))
    (Gdg.insts g);
  let _, succ = Gdg.neighbor_tables g in
  Hashtbl.iter
    (fun (id, q) s ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"q%d\"];\n" id s q))
    succ;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight_critical path g =
  let oc = open_out path in
  output_string oc (of_gdg ?highlight_critical g);
  close_out oc
