lib/qviz/pulse_plot.mli: Qcontrol
