lib/qviz/dot.ml: Buffer Hashtbl List Printf Qgate Qgdg Qsched String
