lib/qviz/pulse_plot.ml: Array Buffer Float Printf Qcontrol
