lib/qviz/timeline.ml: Array Buffer Float List Printf Qgate Qgdg Qsched String
