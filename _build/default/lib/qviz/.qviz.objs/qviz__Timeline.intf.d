lib/qviz/timeline.mli: Qsched
