lib/qviz/dot.mli: Qgdg
