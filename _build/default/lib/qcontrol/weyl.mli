(** Weyl-chamber canonical coordinates of two-qubit unitaries.

    Every U ∈ U(4) factors as k₁ · CAN(c₁,c₂,c₃) · k₂ with k₁, k₂ local
    (1-qubit ⊗ 1-qubit) and CAN(c) = exp(i(c₁·XX + c₂·YY + c₃·ZZ)). The
    coordinates are the complete invariant of local equivalence and
    determine the minimal interaction time under a given coupling — which
    is all the latency model needs.

    This module computes coordinates only (no local factors): eigenphases
    of M·Mᵀ in the magic basis, canonicalized into
    0 ≤ c₃ ≤ c₂ ≤ c₁ ≤ π/4. The canonicalization quotients by mirror
    symmetry (c₃ ↔ -c₃), which is time-neutral under the XY interaction
    because the drift is real: conjugating any control sequence implements
    the mirrored gate in the same duration. *)

type coords = { c1 : float; c2 : float; c3 : float }
(** Canonical, with π/4 ≥ c1 ≥ c2 ≥ c3 ≥ 0. *)

val coordinates : Qnum.Cmat.t -> coords
(** Raises [Invalid_argument] unless the input is a 4×4 unitary. *)

val canonical_gate : coords -> Qnum.Cmat.t
(** CAN(c) = exp(i(c₁·XX + c₂·YY + c₃·ZZ)). *)

val interaction_time : Device.t -> coords -> float
(** Minimal evolution time under the device's coupling (|µ| ≤ µ₂) with
    fast local rotations — see DESIGN.md §4 for constructions and
    matching lower bounds. XY: max((c₁+c₂+c₃)/(2µ₂), c₁/µ₂); ZZ:
    (c₁+c₂+c₃)/µ₂; Heisenberg: c₁/µ₂. Anchors on the default XY device:
    iSWAP 39.3 ns, CNOT 39.3 ns, SWAP 58.9 ns; on Heisenberg, SWAP runs
    in 39.3 ns (the quantum-dot native gate of Appendix A). *)

val cnot_coords : coords
val iswap_coords : coords
val swap_coords : coords
